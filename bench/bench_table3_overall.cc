// Reproduces Table III: overall full-ranking performance of all baselines
// and LC-Rec on the three datasets. Absolute numbers differ from the
// paper (synthetic data, small substrate models); the comparison of
// interest is the ordering: LC-Rec > generative index baselines (TIGER,
// P5-CID) and feature-aware baselines (FDSA, S3-Rec) > ID-only models.

#include <cstdio>
#include <ctime>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace lcrec;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  // The headline comparison runs at full dataset scale: the generative
  // models need the full training-example pool to reach their asymptote.
  if (!flags.scale_given) flags.scale = 1.0;
  obs::ResultEmitter emitter = bench::MakeEmitter("table3", flags);

  std::printf("Table III analogue: overall performance (scale %.2f, "
              "%d eval users, beam 20)\n",
              flags.scale, flags.max_users);
  for (data::Domain dom : {data::Domain::kInstruments, data::Domain::kArts,
                           data::Domain::kGames}) {
    data::Dataset d = data::Dataset::Make(dom, flags.scale, flags.seed);
    std::printf("\n=== %s (%d users, %d items) ===\n", d.name().c_str(),
                d.num_users(), d.num_items());
    bench::PrintMetricsHeader();

    rec::RankingMetrics best_baseline;
    // Traditional + feature-aware scoring baselines.
    for (auto& model : bench::MakeScoringBaselines(flags, d.name())) {
      std::clock_t t0 = std::clock();
      model->Fit(d);
      rec::RankingMetrics m =
          rec::EvaluateScoring(*model, d, flags.max_users);
      bench::PrintMetricsRow(model->name(), m);
      bench::EmitMetricsRow(emitter, d.name() + "/" + model->name(), m);
      if (m.ndcg10 > best_baseline.ndcg10) best_baseline = m;
      (void)t0;
    }
    // Generative index-based baselines.
    {
      baselines::Tiger::Options opt = bench::MakeTigerOptions(flags);
      opt.source = baselines::Tiger::IndexSource::kCollaborative;
      baselines::Tiger p5(opt);
      p5.Fit(d);
      rec::RankingMetrics m = rec::EvaluateGenerative(
          [&](const std::vector<int>& h) { return p5.TopKIds(h, 10); }, d,
          flags.max_users);
      bench::PrintMetricsRow(p5.name(), m);
      bench::EmitMetricsRow(emitter, d.name() + "/" + p5.name(), m);
      if (m.ndcg10 > best_baseline.ndcg10) best_baseline = m;
    }
    {
      baselines::Tiger tiger(bench::MakeTigerOptions(flags));
      tiger.Fit(d);
      rec::RankingMetrics m = rec::EvaluateGenerative(
          [&](const std::vector<int>& h) { return tiger.TopKIds(h, 10); }, d,
          flags.max_users);
      bench::PrintMetricsRow(tiger.name(), m);
      bench::EmitMetricsRow(emitter, d.name() + "/" + tiger.name(), m);
      if (m.ndcg10 > best_baseline.ndcg10) best_baseline = m;
    }
    // LC-Rec.
    {
      rec::LcRec lcrec(bench::MakeLcRecConfig(flags, d.name()));
      lcrec.Fit(d);
      rec::RankingMetrics m = rec::EvaluateGenerative(
          [&](const std::vector<int>& h) { return lcrec.TopKIds(h, 10); }, d,
          flags.max_users);
      bench::PrintMetricsRow("LC-Rec", m);
      bench::EmitMetricsRow(emitter, d.name() + "/LC-Rec", m);
      if (best_baseline.ndcg10 > 0.0) {
        double improvement = 100.0 * (m.ndcg10 - best_baseline.ndcg10) /
                             best_baseline.ndcg10;
        std::printf("LC-Rec improvement over best baseline: NDCG@10 %+.1f%%\n",
                    improvement);
        emitter.Emit(d.name() + "/LC-Rec/ndcg10_improvement_pct", improvement);
      }
    }
  }
  std::printf(
      "\nPaper (Table III): LC-Rec best on all datasets and metrics, average "
      "+25.5%% over all baselines in full ranking.\n");
  return 0;
}

// Micro-benchmarks of the core kernels (google-benchmark), including the
// KV-cache claim of Section III-D2: incremental decoding with a KV cache
// vs. re-encoding the full prefix at every generated token.

#include <benchmark/benchmark.h>

#include "core/graph.h"
#include "core/linalg.h"
#include "core/rng.h"
#include "llm/minillm.h"
#include "quant/rqvae.h"
#include "quant/sinkhorn.h"

namespace {

using namespace lcrec;

void BM_MatMul(benchmark::State& state) {
  int64_t n = state.range(0);
  core::Rng rng(1);
  core::Tensor a = rng.GaussianTensor({n, n}, 1.0);
  core::Tensor b = rng.GaussianTensor({n, n}, 1.0);
  for (auto _ : state) {
    core::Tensor c = core::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_Sinkhorn(benchmark::State& state) {
  int64_t n = state.range(0);
  core::Rng rng(2);
  core::Tensor cost = rng.GaussianTensor({n, 64}, 1.0);
  for (int64_t i = 0; i < cost.size(); ++i) cost.at(i) = std::abs(cost.at(i));
  for (auto _ : state) {
    core::Tensor q = quant::SinkhornKnopp(cost, 0.05, 50);
    benchmark::DoNotOptimize(q.data());
  }
}
BENCHMARK(BM_Sinkhorn)->Arg(128)->Arg(512);

void BM_RqVaeQuantize(benchmark::State& state) {
  core::Rng rng(3);
  quant::RqVaeConfig cfg;
  cfg.input_dim = 48;
  cfg.levels = 4;
  cfg.codebook_size = 64;
  quant::RqVae vae(cfg);
  core::Tensor data = rng.GaussianTensor({state.range(0), 48}, 1.0);
  for (auto _ : state) {
    auto q = vae.QuantizeAll(data);
    benchmark::DoNotOptimize(q.codes.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RqVaeQuantize)->Arg(256)->Arg(1024);

llm::MiniLlm& SharedModel() {
  static llm::MiniLlm* model = [] {
    llm::MiniLlmConfig cfg;
    cfg.vocab_size = 512;
    cfg.d_model = 48;
    cfg.n_layers = 2;
    cfg.n_heads = 4;
    cfg.d_ff = 128;
    cfg.max_seq = 160;
    return new llm::MiniLlm(cfg);
  }();
  return *model;
}

/// Generate `gen` tokens after a prompt of length `T` using the KV cache:
/// cost O(T + gen) forwards of one token.
void BM_DecodeWithKvCache(benchmark::State& state) {
  llm::MiniLlm& model = SharedModel();
  int prompt_len = static_cast<int>(state.range(0));
  const int kGen = 4;  // H = 4 index levels per item
  std::vector<int> prompt(prompt_len, 5);
  for (auto _ : state) {
    llm::MiniLlm::KvCache cache = model.MakeCache();
    core::Tensor logits = model.Forward(cache, prompt);
    for (int g = 0; g < kGen; ++g) {
      logits = model.Forward(cache, {7 + g});
    }
    benchmark::DoNotOptimize(logits.data());
  }
}
BENCHMARK(BM_DecodeWithKvCache)->Arg(32)->Arg(64)->Arg(128);

/// The same generation re-encoding the whole prefix every step:
/// O(H * T) token forwards (the paper's un-cached complexity).
void BM_DecodeWithoutKvCache(benchmark::State& state) {
  llm::MiniLlm& model = SharedModel();
  int prompt_len = static_cast<int>(state.range(0));
  const int kGen = 4;
  std::vector<int> tokens(prompt_len, 5);
  for (auto _ : state) {
    core::Tensor logits;
    for (int g = 0; g < kGen; ++g) {
      llm::MiniLlm::KvCache cache = model.MakeCache();
      logits = model.Forward(cache, tokens);
      tokens.push_back(7 + g);
    }
    tokens.resize(static_cast<size_t>(prompt_len));
    benchmark::DoNotOptimize(logits.data());
  }
}
BENCHMARK(BM_DecodeWithoutKvCache)->Arg(32)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();

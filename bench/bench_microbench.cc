// Micro-benchmarks of the core kernels (google-benchmark), including the
// KV-cache claim of Section III-D2: incremental decoding with a KV cache
// vs. re-encoding the full prefix at every generated token.
//
// Also drives a small instrumented end-to-end workload (RQ-VAE training,
// alignment tuning, constrained beam search, evaluation) and exports the
// resulting lcrec.* metrics as JSONL rows via --metrics-out=PATH, or as
// Prometheus text exposition via --prom-out=PATH:
//   bench_microbench --quick --metrics-out=m.jsonl --prom-out=m.prom
// --quick runs only the workload; without it the google-benchmark suite
// follows (unrecognized flags are forwarded to google-benchmark).

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/graph.h"
#include "core/linalg.h"
#include "core/rng.h"
#include "llm/minillm.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "quant/rqvae.h"
#include "quant/sinkhorn.h"

namespace {

using namespace lcrec;

void BM_MatMul(benchmark::State& state) {
  int64_t n = state.range(0);
  core::Rng rng(1);
  core::Tensor a = rng.GaussianTensor({n, n}, 1.0);
  core::Tensor b = rng.GaussianTensor({n, n}, 1.0);
  for (auto _ : state) {
    core::Tensor c = core::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_Sinkhorn(benchmark::State& state) {
  int64_t n = state.range(0);
  core::Rng rng(2);
  core::Tensor cost = rng.GaussianTensor({n, 64}, 1.0);
  for (int64_t i = 0; i < cost.size(); ++i) cost.at(i) = std::abs(cost.at(i));
  for (auto _ : state) {
    core::Tensor q = quant::SinkhornKnopp(cost, 0.05, 50);
    benchmark::DoNotOptimize(q.data());
  }
}
BENCHMARK(BM_Sinkhorn)->Arg(128)->Arg(512);

void BM_RqVaeQuantize(benchmark::State& state) {
  core::Rng rng(3);
  quant::RqVaeConfig cfg;
  cfg.input_dim = 48;
  cfg.levels = 4;
  cfg.codebook_size = 64;
  quant::RqVae vae(cfg);
  core::Tensor data = rng.GaussianTensor({state.range(0), 48}, 1.0);
  for (auto _ : state) {
    auto q = vae.QuantizeAll(data);
    benchmark::DoNotOptimize(q.codes.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RqVaeQuantize)->Arg(256)->Arg(1024);

llm::MiniLlm& SharedModel() {
  static llm::MiniLlm* model = [] {
    llm::MiniLlmConfig cfg;
    cfg.vocab_size = 512;
    cfg.d_model = 48;
    cfg.n_layers = 2;
    cfg.n_heads = 4;
    cfg.d_ff = 128;
    cfg.max_seq = 160;
    return new llm::MiniLlm(cfg);
  }();
  return *model;
}

/// Generate `gen` tokens after a prompt of length `T` using the KV cache:
/// cost O(T + gen) forwards of one token.
void BM_DecodeWithKvCache(benchmark::State& state) {
  llm::MiniLlm& model = SharedModel();
  int prompt_len = static_cast<int>(state.range(0));
  const int kGen = 4;  // H = 4 index levels per item
  std::vector<int> prompt(prompt_len, 5);
  for (auto _ : state) {
    llm::MiniLlm::KvCache cache = model.MakeCache();
    core::Tensor logits = model.Forward(cache, prompt);
    for (int g = 0; g < kGen; ++g) {
      logits = model.Forward(cache, {7 + g});
    }
    benchmark::DoNotOptimize(logits.data());
  }
}
BENCHMARK(BM_DecodeWithKvCache)->Arg(32)->Arg(64)->Arg(128);

/// The same generation re-encoding the whole prefix every step:
/// O(H * T) token forwards (the paper's un-cached complexity).
void BM_DecodeWithoutKvCache(benchmark::State& state) {
  llm::MiniLlm& model = SharedModel();
  int prompt_len = static_cast<int>(state.range(0));
  const int kGen = 4;
  std::vector<int> tokens(prompt_len, 5);
  for (auto _ : state) {
    core::Tensor logits;
    for (int g = 0; g < kGen; ++g) {
      llm::MiniLlm::KvCache cache = model.MakeCache();
      logits = model.Forward(cache, tokens);
      tokens.push_back(7 + g);
    }
    tokens.resize(static_cast<size_t>(prompt_len));
    benchmark::DoNotOptimize(logits.data());
  }
}
BENCHMARK(BM_DecodeWithoutKvCache)->Arg(32)->Arg(64)->Arg(128);

/// Exercises every instrumented subsystem once so the metrics registry
/// holds real trainer/beam-search/RQ-VAE telemetry to export.
void RunInstrumentedWorkload(const lcrec::bench::Flags& flags) {
  using namespace lcrec;
  obs::ScopedSpan span("bench.microbench_workload");
  data::Dataset d = data::Dataset::Make(data::Domain::kInstruments,
                                        flags.scale, flags.seed);
  rec::LcRecConfig cfg = bench::MakeLcRecConfig(flags);
  rec::LcRec model(cfg);
  model.Fit(d);
  int users = std::min(flags.max_users, d.num_users());
  rec::EvaluateGenerative(
      [&](const std::vector<int>& h) { return model.TopKIds(h, 10); }, d,
      users);
}

/// Dumps the whole metrics registry through the shared bench row schema.
void EmitRegistry(lcrec::obs::ResultEmitter& emitter) {
  using lcrec::obs::MetricSample;
  for (const MetricSample& s :
       lcrec::obs::MetricsRegistry::Global().Samples()) {
    if (s.type == "histogram") {
      emitter.Emit(s.name + "/count", static_cast<double>(s.count));
      emitter.Emit(s.name + "/mean", s.mean);
      emitter.Emit(s.name + "/min", s.min);
      emitter.Emit(s.name + "/max", s.max);
      emitter.Emit(s.name + "/p50", s.p50);
      emitter.Emit(s.name + "/p95", s.p95);
      emitter.Emit(s.name + "/p99", s.p99);
    } else {
      emitter.Emit(s.name, s.value);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lcrec;
  // Known lcrec flags are consumed here; everything else is forwarded to
  // google-benchmark (--benchmark_filter=..., etc.).
  bench::Flags flags;
  flags.scale = 0.2;
  flags.max_users = 40;
  flags.llm_epochs = 4;
  std::string prom_out;
  std::vector<char*> fwd;
  fwd.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    char* a = argv[i];
    if (std::strcmp(a, "--quick") == 0) {
      flags.quick = true;
      flags.scale = 0.15;
      flags.max_users = 25;
      flags.llm_epochs = 3;
    } else if (std::strncmp(a, "--metrics-out=", 14) == 0) {
      flags.metrics_out = a + 14;
    } else if (std::strncmp(a, "--prom-out=", 11) == 0) {
      prom_out = a + 11;
    } else if (std::strncmp(a, "--ckpt-dir=", 11) == 0) {
      flags.ckpt_dir = a + 11;
    } else if (std::strncmp(a, "--ckpt-every=", 13) == 0) {
      flags.ckpt_every = std::atoi(a + 13);
    } else if (std::strcmp(a, "--resume") == 0) {
      flags.resume = true;
    } else if (std::strncmp(a, "--scale=", 8) == 0) {
      flags.scale = std::atof(a + 8);
    } else if (std::strncmp(a, "--users=", 8) == 0) {
      flags.max_users = std::atoi(a + 8);
    } else if (std::strncmp(a, "--llm-epochs=", 13) == 0) {
      flags.llm_epochs = std::atoi(a + 13);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      flags.seed = static_cast<uint64_t>(std::atoll(a + 7));
    } else {
      fwd.push_back(a);
    }
  }
  obs::DebugServer::MaybeStartFromEnv();  // LCREC_DEBUG_PORT => debugz up

  std::printf("instrumented workload: scale %.2f, %d users, %d epochs%s\n",
              flags.scale, flags.max_users, flags.llm_epochs,
              flags.quick ? " (--quick)" : "");
  RunInstrumentedWorkload(flags);
  obs::ResultEmitter emitter = bench::MakeEmitter("microbench", flags);
  EmitRegistry(emitter);
  if (!flags.metrics_out.empty()) {
    std::printf("metrics written to %s\n", flags.metrics_out.c_str());
  }
  if (!prom_out.empty()) {
    obs::MetricsRegistry::Global().DumpPrometheusFile(prom_out);
    std::printf("prometheus exposition written to %s\n", prom_out.c_str());
  }

  if (flags.quick) return 0;  // workload only; skip the kernel suite
  int fwd_argc = static_cast<int>(fwd.size());
  benchmark::Initialize(&fwd_argc, fwd.data());
  if (benchmark::ReportUnrecognizedArguments(fwd_argc, fwd.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

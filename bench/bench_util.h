#ifndef LCREC_BENCH_BENCH_UTIL_H_
#define LCREC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/bert4rec.h"
#include "obs/export.h"
#include "baselines/caser.h"
#include "baselines/fdsa.h"
#include "baselines/fmlp.h"
#include "baselines/gru4rec.h"
#include "baselines/hgn.h"
#include "baselines/s3rec.h"
#include "baselines/sasrec.h"
#include "baselines/tiger.h"
#include "data/dataset.h"
#include "obs/debugz.h"
#include "rec/lcrec.h"
#include "rec/recommender.h"

namespace lcrec::bench {

/// Common command-line flags of the experiment binaries.
///   --quick               quarter-size run for smoke testing
///   --scale=X             dataset scale multiplier
///   --users=N             max evaluated users per dataset
///   --llm-epochs=N        LC-Rec / TIGER tuning epochs
///   --baseline-epochs=N   scoring-baseline epochs
///   --seed=N              global seed
///   --metrics-out=PATH    machine-readable result rows as JSONL
///   --ckpt-dir=PATH       crash-safe checkpoint root (scoped per
///                         domain/variant and per model, see ckpt_scope)
///   --ckpt-every=N        LLM: optimizer steps between mid-epoch saves;
///                         baselines/RQ-VAE: epochs between saves
///   --resume              resume from the newest valid checkpoint
/// Binaries may pick per-experiment defaults (e.g. Table III runs at
/// scale 1.0) when a flag is not given explicitly.
struct Flags {
  double scale = 0.6;
  int max_users = 120;
  int llm_epochs = 16;
  int baseline_epochs = 25;
  uint64_t seed = 19;
  bool quick = false;
  std::string metrics_out;        // empty => no JSONL result sink
  std::string ckpt_dir;           // empty => checkpointing off
  int ckpt_every = 0;
  bool resume = false;
  bool scale_given = false;       // --scale was passed explicitly
  bool llm_epochs_given = false;  // --llm-epochs was passed explicitly

  static Flags Parse(int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strcmp(a, "--quick") == 0) {
        f.quick = true;
        f.scale = 0.2;
        f.scale_given = true;
        f.max_users = 60;
        f.llm_epochs = 6;
        f.llm_epochs_given = true;
        f.baseline_epochs = 10;
      } else if (std::strncmp(a, "--scale=", 8) == 0) {
        f.scale = std::atof(a + 8);
        f.scale_given = true;
      } else if (std::strncmp(a, "--users=", 8) == 0) {
        f.max_users = std::atoi(a + 8);
      } else if (std::strncmp(a, "--llm-epochs=", 13) == 0) {
        f.llm_epochs = std::atoi(a + 13);
        f.llm_epochs_given = true;
      } else if (std::strncmp(a, "--baseline-epochs=", 18) == 0) {
        f.baseline_epochs = std::atoi(a + 18);
      } else if (std::strncmp(a, "--seed=", 7) == 0) {
        f.seed = static_cast<uint64_t>(std::atoll(a + 7));
      } else if (std::strncmp(a, "--metrics-out=", 14) == 0) {
        f.metrics_out = a + 14;
      } else if (std::strncmp(a, "--ckpt-dir=", 11) == 0) {
        f.ckpt_dir = a + 11;
      } else if (std::strncmp(a, "--ckpt-every=", 13) == 0) {
        f.ckpt_every = std::atoi(a + 13);
      } else if (std::strcmp(a, "--resume") == 0) {
        f.resume = true;
      } else {
        std::fprintf(stderr, "unknown flag %s\n", a);
        std::exit(2);
      }
    }
    // Every experiment binary is live-inspectable when asked: set
    // LCREC_DEBUG_PORT and the debugz HTTP surface comes up before any
    // training starts. Unset, this is a no-op.
    obs::DebugServer::MaybeStartFromEnv();
    return f;
  }
};

/// A checkpoint directory identifies ONE training run: a bench that
/// trains the same model several times (per domain, per ablation
/// variant) must give each instance its own scope, or a resume will
/// load a finished checkpoint from a sibling instance whose tensors
/// happen to have the same shapes and silently skip training.
inline std::string ScopedCkptRoot(const Flags& f,
                                  const std::string& ckpt_scope) {
  if (f.ckpt_dir.empty() || ckpt_scope.empty()) return f.ckpt_dir;
  return f.ckpt_dir + "/" + ckpt_scope;
}

inline baselines::BaselineConfig MakeBaselineConfig(
    const Flags& f, const std::string& ckpt_scope = "") {
  baselines::BaselineConfig cfg;
  cfg.d_model = 32;
  cfg.d_ff = 64;
  cfg.epochs = f.baseline_epochs;
  cfg.seed = f.seed + 100;
  // Each baseline checkpoints under <ckpt-dir>[/<scope>]/<model-name>.
  cfg.ckpt_dir = ScopedCkptRoot(f, ckpt_scope);
  cfg.ckpt_every = f.ckpt_every;
  cfg.resume = f.resume;
  return cfg;
}

inline rec::LcRecConfig MakeLcRecConfig(const Flags& f,
                                        const std::string& ckpt_scope = "") {
  rec::LcRecConfig cfg = rec::LcRecConfig::Small();
  cfg.trainer.epochs = f.llm_epochs;
  cfg.seed = f.seed + 200;
  const std::string root = ScopedCkptRoot(f, ckpt_scope);
  if (!root.empty()) {
    cfg.trainer.ckpt_dir = root + "/lcrec";
    cfg.trainer.ckpt_every = f.ckpt_every;
    cfg.trainer.resume = f.resume;
    cfg.rqvae.ckpt_dir = root + "/rqvae";
    cfg.rqvae.ckpt_every = f.ckpt_every;
    cfg.rqvae.resume = f.resume;
  }
  return cfg;
}

inline baselines::Tiger::Options MakeTigerOptions(const Flags& f) {
  baselines::Tiger::Options opt;
  opt.epochs = f.llm_epochs;
  opt.seed = f.seed + 300;
  return opt;
}

/// The scoring baselines of Table III, in the paper's column order.
inline std::vector<std::unique_ptr<rec::ScoringRecommender>>
MakeScoringBaselines(const Flags& f, const std::string& ckpt_scope = "") {
  baselines::BaselineConfig cfg = MakeBaselineConfig(f, ckpt_scope);
  std::vector<std::unique_ptr<rec::ScoringRecommender>> models;
  models.push_back(std::make_unique<baselines::Caser>(cfg));
  models.push_back(std::make_unique<baselines::Hgn>(cfg));
  models.push_back(std::make_unique<baselines::Gru4Rec>(cfg));
  models.push_back(std::make_unique<baselines::Bert4Rec>(cfg));
  models.push_back(std::make_unique<baselines::SasRec>(cfg));
  models.push_back(std::make_unique<baselines::FmlpRec>(cfg));
  models.push_back(std::make_unique<baselines::Fdsa>(cfg));
  models.push_back(std::make_unique<baselines::S3Rec>(
      cfg, f.quick ? 3 : 8));
  return models;
}

inline void PrintMetricsRow(const std::string& name,
                            const rec::RankingMetrics& m) {
  std::printf("%-16s  %7.4f  %7.4f  %7.4f  %7.4f  %7.4f\n", name.c_str(),
              m.hr1, m.hr5, m.hr10, m.ndcg5, m.ndcg10);
}

inline void PrintMetricsHeader() {
  std::printf("%-16s  %7s  %7s  %7s  %7s  %7s\n", "model", "HR@1", "HR@5",
              "HR@10", "NDCG@5", "NDCG@10");
}

/// The run configuration as a JSON object, stored in every emitted row
/// so downstream tooling can reconstruct the run without the log.
inline std::string FlagsConfigJson(const Flags& f) {
  return "{\"scale\":" + obs::JsonNumber(f.scale) +
         ",\"users\":" + std::to_string(f.max_users) +
         ",\"llm_epochs\":" + std::to_string(f.llm_epochs) +
         ",\"baseline_epochs\":" + std::to_string(f.baseline_epochs) +
         ",\"seed\":" + std::to_string(f.seed) +
         ",\"quick\":" + (f.quick ? "true" : "false") +
         ",\"resume\":" + (f.resume ? "true" : "false") + "}";
}

/// The shared machine-readable result sink of all bench binaries
/// (--metrics-out=PATH; disabled when the flag is absent). Rows follow
/// one schema: {"bench":...,"metric":...,"value":...,"config":{...}}.
inline obs::ResultEmitter MakeEmitter(const std::string& bench,
                                      const Flags& f) {
  return obs::ResultEmitter(bench, f.metrics_out, FlagsConfigJson(f));
}

/// Emits the five ranking metrics as rows "<prefix>/hr1" ... Pair of
/// PrintMetricsRow: human table row + machine rows from one call site.
inline void EmitMetricsRow(obs::ResultEmitter& emitter,
                           const std::string& prefix,
                           const rec::RankingMetrics& m) {
  emitter.Emit(prefix + "/hr1", m.hr1);
  emitter.Emit(prefix + "/hr5", m.hr5);
  emitter.Emit(prefix + "/hr10", m.hr10);
  emitter.Emit(prefix + "/ndcg5", m.ndcg5);
  emitter.Emit(prefix + "/ndcg10", m.ndcg10);
}

}  // namespace lcrec::bench

#endif  // LCREC_BENCH_BENCH_UTIL_H_

// Reproduces Table V: pairwise accuracy against semantically similar
// negative items. For each test user the model must prefer the true next
// item over (1) the language-similar negative (nearest neighbour under
// text embeddings), (2) the collaboratively-similar negative (nearest
// neighbour under trained SASRec item embeddings), (3) a random negative.
// Rows: SASRec, LLaMA (zero-shot language LM analogue), ChatGPT (larger
// zero-shot LM analogue), LC-Rec (Title), LC-Rec.

#include <cstdio>

#include "bench/bench_util.h"
#include "rec/negatives.h"
#include "rec/zeroshot.h"
#include "text/encoder.h"

int main(int argc, char** argv) {
  using namespace lcrec;
  bench::Flags flags = bench::Flags::Parse(argc, argv);

  obs::ResultEmitter emitter = bench::MakeEmitter("table5", flags);

  data::Dataset d =
      data::Dataset::Make(data::Domain::kGames, flags.scale, flags.seed);
  int users = std::min(flags.max_users, d.num_users());
  std::printf("Table V analogue: accuracy vs hard negatives on %s "
              "(%d users)\n\n",
              d.name().c_str(), users);

  // Negative sets.
  text::TextEncoder enc(48, flags.seed);
  std::vector<std::string> docs;
  for (int i = 0; i < d.num_items(); ++i) docs.push_back(d.ItemDocument(i));
  core::Tensor text_emb = enc.EncodeBatch(docs);
  std::vector<int> lang_negs = rec::HardNegatives(d, text_emb);

  baselines::SasRec sasrec(bench::MakeBaselineConfig(flags));
  sasrec.Fit(d);
  std::vector<int> collab_negs = rec::HardNegatives(d, *sasrec.ItemEmbeddings());

  core::Rng rng(flags.seed + 7);
  std::vector<int> rand_negs = rec::RandomNegatives(d, rng);

  std::printf("%-16s  %10s  %14s  %10s\n", "model", "Language", "Collaborative",
              "Random");
  auto report = [&](const std::string& name,
                    const std::function<float(const std::vector<int>&, int)>&
                        scorer) {
    double lang = rec::PairwiseAccuracy(scorer, d, lang_negs, users);
    double collab = rec::PairwiseAccuracy(scorer, d, collab_negs, users);
    double random = rec::PairwiseAccuracy(scorer, d, rand_negs, users);
    std::printf("%-16s  %10.2f  %14.2f  %10.2f\n", name.c_str(), 100.0 * lang,
                100.0 * collab, 100.0 * random);
    emitter.Emit(name + "/language", lang);
    emitter.Emit(name + "/collaborative", collab);
    emitter.Emit(name + "/random", random);
  };

  report("SASRec", [&](const std::vector<int>& h, int item) {
    return sasrec.ScoreAllItems(h)[static_cast<size_t>(item)];
  });
  {
    rec::ZeroShotLm::Options opt;  // small budget = "LLaMA" analogue
    opt.epochs = flags.quick ? 1 : 2;
    opt.seed = flags.seed + 8;
    rec::ZeroShotLm llama(opt);
    llama.Fit(d);
    report("LLaMA*", [&](const std::vector<int>& h, int item) {
      return llama.ScoreCandidate(h, item);
    });
  }
  {
    rec::ZeroShotLm::Options opt;  // larger budget = "ChatGPT" analogue
    opt.epochs = flags.quick ? 2 : 6;
    opt.d_model = 48;
    opt.d_ff = 128;
    opt.seed = flags.seed + 9;
    rec::ZeroShotLm chatgpt(opt);
    chatgpt.Fit(d);
    report("ChatGPT*", [&](const std::vector<int>& h, int item) {
      return chatgpt.ScoreCandidate(h, item);
    });
  }
  {
    rec::LcRec lcrec(bench::MakeLcRecConfig(flags));
    lcrec.Fit(d);
    report("LC-Rec (Title)", [&](const std::vector<int>& h, int item) {
      return lcrec.ScoreCandidate(h, item, /*by_title=*/true);
    });
    report("LC-Rec", [&](const std::vector<int>& h, int item) {
      return lcrec.ScoreCandidate(h, item, /*by_title=*/false);
    });
  }
  std::printf(
      "\n* zero-shot rows use language-only pretrained stand-ins "
      "(see DESIGN.md).\n"
      "Paper (Table V): LC-Rec best on all three columns (75.7 / 60.0 / "
      "90.2); zero-shot LLMs near chance on collaborative negatives.\n");
  return 0;
}

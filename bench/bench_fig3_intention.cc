// Reproduces Figure 3: item prediction from user intentions on Games.
// Compares DSSM (two-tower retrieval), LC-Rec, and LC-Rec (Zero-Shot):
// the variant tuned WITHOUT the intention task (ITE), probing whether the
// other alignment tasks alone link intentions to item indices.

#include <cstdio>

#include "baselines/dssm.h"
#include "bench/bench_util.h"
#include "rec/metrics.h"

int main(int argc, char** argv) {
  using namespace lcrec;
  bench::Flags flags = bench::Flags::Parse(argc, argv);

  obs::ResultEmitter emitter = bench::MakeEmitter("fig3", flags);

  data::Dataset d =
      data::Dataset::Make(data::Domain::kGames, flags.scale, flags.seed);
  std::printf("Figure 3 analogue: intention-based item prediction on %s "
              "(%d eval users)\n\n",
              d.name().c_str(), flags.max_users);

  // Test intentions are generated from the held-out test target of each
  // user (stand-in for GPT-3.5 extraction from its review).
  int users = std::min(flags.max_users, d.num_users());
  core::Rng rng(flags.seed + 5);
  std::vector<std::string> queries(static_cast<size_t>(users));
  for (int u = 0; u < users; ++u) {
    queries[static_cast<size_t>(u)] = d.IntentionFor(d.TestTarget(u), rng);
  }

  bench::PrintMetricsHeader();
  {
    baselines::Dssm::Options opt;
    opt.epochs = flags.quick ? 10 : 30;
    opt.seed = flags.seed + 6;
    baselines::Dssm dssm(opt);
    dssm.Fit(d);
    rec::RankingMetrics acc;
    for (int u = 0; u < users; ++u) {
      acc.AddRank(rec::RankInList(
          dssm.TopKIds(queries[static_cast<size_t>(u)], 10),
          d.TestTarget(u)));
    }
    bench::PrintMetricsRow("DSSM", acc.Mean());
    bench::EmitMetricsRow(emitter, "DSSM", acc.Mean());
  }
  auto eval_lcrec = [&](rec::LcRec& model, const std::string& label) {
    rec::RankingMetrics acc;
    for (int u = 0; u < users; ++u) {
      std::vector<int> ids;
      for (const auto& s :
           model.TopKFromIntention(queries[static_cast<size_t>(u)], 10)) {
        ids.push_back(s.item);
      }
      acc.AddRank(rec::RankInList(ids, d.TestTarget(u)));
    }
    bench::PrintMetricsRow(label, acc.Mean());
    bench::EmitMetricsRow(emitter, label, acc.Mean());
  };
  {
    rec::LcRecConfig cfg = bench::MakeLcRecConfig(flags, "zeroshot");
    cfg.mixture.ite = false;  // never trained on the intention task
    rec::LcRec zero(cfg);
    zero.Fit(d);
    eval_lcrec(zero, "LC-Rec(ZeroShot)");
  }
  {
    rec::LcRec full(bench::MakeLcRecConfig(flags, "full"));
    full.Fit(d);
    eval_lcrec(full, "LC-Rec");
  }
  std::printf(
      "\nPaper (Figure 3): LC-Rec > DSSM; the zero-shot variant still links "
      "intentions to indices well above chance.\n");
  return 0;
}

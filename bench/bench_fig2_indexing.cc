// Reproduces Figure 2: HR@5 / NDCG@5 on Games for four indexing methods
// (Vanilla ID, Random Indices, LC-Rec w/o USM, LC-Rec) under (a) SEQ-only
// tuning and (b) with the full alignment mixture. Expected shape: LC-Rec
// indexing best; alignment tasks lift every indexing method.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace lcrec;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  if (!flags.llm_epochs_given) flags.llm_epochs = 10;  // internal comparison
  if (!flags.scale_given) flags.scale = 0.5;
  if (flags.max_users > 80) flags.max_users = 80;

  obs::ResultEmitter emitter = bench::MakeEmitter("fig2", flags);

  data::Dataset d =
      data::Dataset::Make(data::Domain::kGames, flags.scale, flags.seed);
  std::printf("Figure 2 analogue: indexing methods on %s (%d items, "
              "%d eval users)\n\n",
              d.name().c_str(), d.num_items(), flags.max_users);
  std::printf("%-18s  %-9s  %7s  %7s  %10s\n", "indexing", "tuning", "HR@5",
              "NDCG@5", "conflicts");

  const quant::IndexScheme schemes[] = {
      quant::IndexScheme::kVanillaId, quant::IndexScheme::kRandom,
      quant::IndexScheme::kNoUsm, quant::IndexScheme::kLcRec};
  for (quant::IndexScheme scheme : schemes) {
    for (bool align : {false, true}) {
      rec::LcRecConfig cfg = bench::MakeLcRecConfig(flags);
      cfg.scheme = scheme;
      cfg.mixture = align ? tasks::TaskMixture::All()
                          : tasks::TaskMixture::SeqOnly();
      rec::LcRec model(cfg);
      model.Fit(d);
      rec::RankingMetrics m = rec::EvaluateGenerative(
          [&](const std::vector<int>& h) { return model.TopKIds(h, 10); }, d,
          flags.max_users);
      std::printf("%-18s  %-9s  %7.4f  %7.4f  %10d\n",
                  quant::IndexSchemeName(scheme).c_str(),
                  align ? "w/ ALIGN" : "SEQ", m.hr5, m.ndcg5,
                  model.indexing().ConflictCount());
      std::string prefix = quant::IndexSchemeName(scheme) + "/" +
                           (align ? "align" : "seq");
      bench::EmitMetricsRow(emitter, prefix, m);
      emitter.Emit(prefix + "/conflicts", model.indexing().ConflictCount());
    }
  }
  std::printf(
      "\nPaper (Figure 2): LC-Rec > w/o USM > Random > Vanilla under both "
      "tunings; ALIGN boosts every indexing.\n");
  return 0;
}

// Reproduces the case studies of Figures 5 and 6.
//
// Figure 5(a): generate an item's title conditioned on progressively more
// of its index tokens — content should converge to the true title, with
// coarse-to-fine refinement.
// Figure 6: fraction of generated-content changes caused by each index
// level — should decrease with level (level 1 carries the most
// semantics).
// Figure 5(b): related-item generation from indices vs. recall by text
// embedding similarity.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/linalg.h"
#include "text/encoder.h"
#include "text/vocab.h"

namespace {

/// Word-level edit distance, used to quantify generation changes.
int EditDistance(const std::vector<std::string>& a,
                 const std::vector<std::string>& b) {
  size_t n = a.size(), m = b.size();
  std::vector<int> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lcrec;
  bench::Flags flags = bench::Flags::Parse(argc, argv);

  obs::ResultEmitter emitter = bench::MakeEmitter("fig56", flags);

  data::Dataset d =
      data::Dataset::Make(data::Domain::kGames, flags.scale, flags.seed);
  rec::LcRec model(bench::MakeLcRecConfig(flags));
  model.Fit(d);
  int levels = model.indexing().levels();

  std::printf("Figure 5(a) analogue: title generation from index prefixes\n");
  for (int item : {0, 7, 21}) {
    if (item >= d.num_items()) continue;
    std::printf("\nitem %d true title: %s\n", item, d.item(item).title.c_str());
    for (int lv = 1; lv <= levels; ++lv) {
      std::printf("  %d level%s: %s\n", lv, lv > 1 ? "s" : " ",
                  model.GenerateTitleFromIndices(item, lv).c_str());
    }
  }

  // Figure 6: proportion of content change caused by each added level.
  std::printf("\nFigure 6 analogue: content change per added index level\n");
  int sample = std::min(60, d.num_items());
  std::vector<double> change(static_cast<size_t>(levels), 0.0);
  double total_change = 0.0;
  for (int item = 0; item < sample; ++item) {
    std::vector<std::string> prev;
    for (int lv = 1; lv <= levels; ++lv) {
      std::vector<std::string> words =
          text::Tokenize(model.GenerateTitleFromIndices(item, lv));
      if (lv > 1) {
        int dist = EditDistance(prev, words);
        change[static_cast<size_t>(lv - 1)] += dist;
        total_change += dist;
      } else {
        change[0] += static_cast<double>(words.size());
        total_change += static_cast<double>(words.size());
      }
      prev = std::move(words);
    }
  }
  for (int lv = 0; lv < levels; ++lv) {
    double pct = total_change > 0.0
                     ? 100.0 * change[static_cast<size_t>(lv)] / total_change
                     : 0.0;
    std::printf("  level %d: %.1f%% of content changes\n", lv + 1, pct);
    emitter.Emit("content_change_pct/level" + std::to_string(lv + 1), pct);
  }

  // Figure 5(b): related item via generation vs text-embedding recall.
  std::printf("\nFigure 5(b) analogue: related-item generation vs text "
              "similarity recall\n");
  text::TextEncoder enc(48, flags.seed);
  std::vector<std::string> docs;
  for (int i = 0; i < d.num_items(); ++i) docs.push_back(d.ItemDocument(i));
  core::Tensor emb = enc.EncodeBatch(docs);
  core::Tensor sim = core::CosineSimilarity(emb, emb);
  int gen_same_subcat = 0, cos_same_subcat = 0, cases = 0;
  for (int item = 0; item < std::min(40, d.num_items()); ++item) {
    // Generated related item: top beam continuation after the source item.
    auto related = model.TopK({item}, 2);
    int gen = -1;
    for (const auto& r : related) {
      if (r.item != item) {
        gen = r.item;
        break;
      }
    }
    // Text-similarity recall.
    int cos = -1;
    float best = -2.0f;
    for (int j = 0; j < d.num_items(); ++j) {
      if (j == item) continue;
      float s = sim.at(static_cast<int64_t>(item) * d.num_items() + j);
      if (s > best) {
        best = s;
        cos = j;
      }
    }
    if (gen < 0 || cos < 0) continue;
    ++cases;
    gen_same_subcat += d.item(gen).subcategory == d.item(item).subcategory;
    cos_same_subcat += d.item(cos).subcategory == d.item(item).subcategory;
    if (item < 3) {
      std::printf("  source: %s\n    generated: %s\n    cosine   : %s\n",
                  d.item(item).title.c_str(), d.item(gen).title.c_str(),
                  d.item(cos).title.c_str());
    }
  }
  if (cases > 0) {
    std::printf(
        "  same-subcategory rate: generated %.1f%%  vs  cosine recall "
        "%.1f%%  (%d cases)\n",
        100.0 * gen_same_subcat / cases, 100.0 * cos_same_subcat / cases,
        cases);
    emitter.Emit("same_subcategory_rate/generated",
                 static_cast<double>(gen_same_subcat) / cases);
    emitter.Emit("same_subcategory_rate/cosine",
                 static_cast<double>(cos_same_subcat) / cases);
  }
  std::printf(
      "\nPaper: content converges to the target title as levels are added; "
      "change fraction decreases with level; generated related items fit "
      "the recommendation context better than pure text recall.\n");
  return 0;
}

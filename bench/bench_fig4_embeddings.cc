// Reproduces Figure 4: PCA visualization of LLM token embeddings. The
// paper contrasts (a) tuning only with sequential item prediction — index
// tokens form an isolated cluster away from language tokens — with (b)
// full LC-Rec alignment tuning — index tokens mix into the language
// semantic space. We print the 2-D PCA summary plus a quantitative
// cluster-separation statistic (distance between centroids over mean
// within-group spread); smaller = better integrated.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/linalg.h"

namespace {

using lcrec::core::Pca;
using lcrec::core::Tensor;

struct Summary {
  double cx, cy;       // centroid
  double spread;       // mean distance to centroid
};

Summary Summarize(const Tensor& pts) {
  Summary s{0.0, 0.0, 0.0};
  int64_t n = pts.rows();
  for (int64_t i = 0; i < n; ++i) {
    s.cx += pts.at(i, 0);
    s.cy += pts.at(i, 1);
  }
  s.cx /= static_cast<double>(n);
  s.cy /= static_cast<double>(n);
  for (int64_t i = 0; i < n; ++i) {
    double dx = pts.at(i, 0) - s.cx, dy = pts.at(i, 1) - s.cy;
    s.spread += std::sqrt(dx * dx + dy * dy);
  }
  s.spread /= static_cast<double>(n);
  return s;
}

double SeparationScore(const Tensor& index_emb, const Tensor& text_emb) {
  // Joint PCA to 2-D, then centroid distance / mean spread.
  int64_t d = index_emb.cols();
  Tensor all({index_emb.rows() + text_emb.rows(), d});
  for (int64_t i = 0; i < index_emb.size(); ++i) all.at(i) = index_emb.at(i);
  for (int64_t i = 0; i < text_emb.size(); ++i) {
    all.at(index_emb.size() + i) = text_emb.at(i);
  }
  Pca pca(all, 2);
  Tensor pi = pca.Transform(index_emb);
  Tensor pt = pca.Transform(text_emb);
  Summary si = Summarize(pi), st = Summarize(pt);
  double dx = si.cx - st.cx, dy = si.cy - st.cy;
  double dist = std::sqrt(dx * dx + dy * dy);
  std::printf("  index tokens: centroid (%+.3f, %+.3f) spread %.3f  [%lld]\n",
              si.cx, si.cy, si.spread, static_cast<long long>(pi.rows()));
  std::printf("  text tokens : centroid (%+.3f, %+.3f) spread %.3f  [%lld]\n",
              st.cx, st.cy, st.spread, static_cast<long long>(pt.rows()));
  return dist / (0.5 * (si.spread + st.spread));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lcrec;
  bench::Flags flags = bench::Flags::Parse(argc, argv);

  obs::ResultEmitter emitter = bench::MakeEmitter("fig4", flags);

  data::Dataset d =
      data::Dataset::Make(data::Domain::kGames, flags.scale, flags.seed);
  std::printf("Figure 4 analogue: token-embedding integration on %s\n\n",
              d.name().c_str());

  double sep_seq = 0.0, sep_full = 0.0;
  {
    std::printf("(a) Fine-tuning only with sequential item prediction:\n");
    rec::LcRecConfig cfg = bench::MakeLcRecConfig(flags, "seq_only");
    cfg.mixture = tasks::TaskMixture::SeqOnly();
    rec::LcRec model(cfg);
    model.Fit(d);
    sep_seq = SeparationScore(model.IndexTokenEmbeddings(),
                              model.TextTokenEmbeddings());
    std::printf("  separation score: %.3f\n\n", sep_seq);
  }
  {
    std::printf("(b) LC-Rec with the full alignment-task mixture:\n");
    rec::LcRec model(bench::MakeLcRecConfig(flags, "full"));
    model.Fit(d);
    sep_full = SeparationScore(model.IndexTokenEmbeddings(),
                               model.TextTokenEmbeddings());
    std::printf("  separation score: %.3f\n\n", sep_full);
  }
  emitter.Emit("separation/seq_only", sep_seq);
  emitter.Emit("separation/lcrec", sep_full);
  std::printf("separation SEQ-only %.3f vs LC-Rec %.3f -> %s\n", sep_seq,
              sep_full,
              sep_full < sep_seq
                  ? "alignment tuning integrates index tokens (paper shape)"
                  : "WARNING: expected LC-Rec to reduce separation");
  std::printf(
      "\nPaper (Figure 4): without alignment the index tokens form an "
      "isolated cluster; with LC-Rec they overlap the language tokens.\n");
  return 0;
}

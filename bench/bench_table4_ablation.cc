// Reproduces Table IV: ablation of the semantic alignment tasks on the
// Arts and Games datasets. Rows add tasks cumulatively: SEQ, +MUT, +ASY,
// +ITE, +PER. Expected shape: each added alignment task improves over
// plain sequential tuning.

#include <cstdio>

#include "bench/bench_util.h"
#include "tasks/instructions.h"

int main(int argc, char** argv) {
  using namespace lcrec;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  if (!flags.llm_epochs_given) flags.llm_epochs = 10;  // internal comparison
  if (!flags.scale_given) flags.scale = 0.5;
  if (flags.max_users > 80) flags.max_users = 80;

  std::vector<std::pair<std::string, tasks::TaskMixture>> rows;
  tasks::TaskMixture m = tasks::TaskMixture::SeqOnly();
  rows.emplace_back("SEQ", m);
  m.mut = true;
  rows.emplace_back("+MUT", m);
  m.asy = true;
  rows.emplace_back("+ASY", m);
  m.ite = true;
  rows.emplace_back("+ITE", m);
  m.per = true;
  rows.emplace_back("+PER", m);

  obs::ResultEmitter emitter = bench::MakeEmitter("table4", flags);

  std::printf("Table IV analogue: alignment-task ablation (scale %.2f, "
              "%d eval users)\n",
              flags.scale, flags.max_users);
  for (data::Domain dom : {data::Domain::kArts, data::Domain::kGames}) {
    data::Dataset d = data::Dataset::Make(dom, flags.scale, flags.seed);
    std::printf("\n=== %s ===\n", d.name().c_str());
    bench::PrintMetricsHeader();
    for (const auto& [label, mixture] : rows) {
      rec::LcRecConfig cfg =
          bench::MakeLcRecConfig(flags, d.name() + "/" + label);
      cfg.mixture = mixture;
      rec::LcRec model(cfg);
      model.Fit(d);
      rec::RankingMetrics metrics = rec::EvaluateGenerative(
          [&](const std::vector<int>& h) { return model.TopKIds(h, 10); }, d,
          flags.max_users);
      bench::PrintMetricsRow(label, metrics);
      bench::EmitMetricsRow(emitter, d.name() + "/" + label, metrics);
    }
  }
  std::printf(
      "\nPaper (Table IV): monotone improvement from SEQ to +PER on both "
      "datasets (e.g. Games NDCG@10 0.0535 -> 0.0681).\n");
  return 0;
}

// Benchmark regression gate (DESIGN.md §6): runs a fixed microbench
// suite over the hot kernels, writes a BENCH_<git-sha>.json record
// (manifest + throughput/latency metrics), and diffs it against a
// committed baseline with per-metric tolerance bands. Exit status:
//   0  no regression (or --record / no baseline given)
//   1  regression or baseline metric missing from this run
//
// Usage:
//   bench_perfgate --baseline=bench/baseline.json [--out=PATH] [--reps=N]
//   bench_perfgate --record=bench/baseline.json   # re-record the baseline
//
// LCREC_PERFGATE_SLOWDOWN_US=N injects an N-microsecond sleep into every
// timed repetition — a synthetic regression used to prove the gate fails
// readably (tests/obs_prof_test.cc and scripts/perf_regress.sh --selftest).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/linalg.h"
#include "core/rng.h"
#include "core/tensor.h"
#include "llm/minillm.h"
#include "net/rpc.h"
#include "net/service.h"
#include "obs/export.h"
#include "obs/perfgate.h"
#include "obs/sync.h"
#include "obs/trace.h"
#include "quant/indexing.h"
#include "quant/rqvae.h"
#include "quant/sinkhorn.h"
#include "serve/server.h"
#include "text/vocab.h"

namespace {

using namespace lcrec;

struct GateFlags {
  std::string baseline;  // compare against this record
  std::string record;    // write the record here and exit 0
  std::string out;       // current record path; default BENCH_<sha>.json
  int reps = 20;

  static GateFlags Parse(int argc, char** argv) {
    GateFlags f;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--baseline=", 11) == 0) {
        f.baseline = a + 11;
      } else if (std::strncmp(a, "--record=", 9) == 0) {
        f.record = a + 9;
      } else if (std::strncmp(a, "--out=", 6) == 0) {
        f.out = a + 6;
      } else if (std::strncmp(a, "--reps=", 7) == 0) {
        f.reps = std::atoi(a + 7);
      } else {
        std::fprintf(stderr, "unknown flag %s\n", a);
        std::exit(2);
      }
    }
    if (f.reps < 3) f.reps = 3;
    return f;
  }
};

/// Timing result of one kernel: per-rep wall milliseconds.
struct KernelTiming {
  std::vector<double> ms;

  double Mean() const {
    double s = 0.0;
    for (double v : ms) s += v;
    return ms.empty() ? 0.0 : s / static_cast<double>(ms.size());
  }

  double Quantile(double q) const {
    if (ms.empty()) return 0.0;
    std::vector<double> sorted = ms;
    std::sort(sorted.begin(), sorted.end());
    double pos = q * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }
};

/// Runs `fn` `reps` times after 3 warmup reps. The synthetic-slowdown
/// hook is applied inside the timed region on purpose: the gate must
/// see it.
KernelTiming TimeKernel(const std::function<void()>& fn, int reps) {
  long slowdown_us = std::atol(obs::EnvOr("LCREC_PERFGATE_SLOWDOWN_US").c_str());
  for (int i = 0; i < 3; ++i) fn();
  KernelTiming t;
  t.ms.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    if (slowdown_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(slowdown_us));
    }
    auto end = std::chrono::steady_clock::now();
    t.ms.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
  }
  return t;
}

/// Tolerance bands are deliberately loose: the gate targets order-of-
/// magnitude regressions (an accidental O(n^2) path, a lost
/// optimization), not CI scheduler noise.
constexpr double kLatencyTolerance = 0.60;
constexpr double kThroughputTolerance = 0.60;

void AddLatency(obs::PerfRecord* rec, const std::string& kernel,
                const KernelTiming& t) {
  rec->metrics[kernel + "/p50_ms"] = {t.Quantile(0.50), kLatencyTolerance};
  rec->metrics[kernel + "/mean_ms"] = {t.Mean(), kLatencyTolerance};
}

void AddGflops(obs::PerfRecord* rec, const std::string& kernel,
               const KernelTiming& t, double flops_per_rep) {
  double p50_s = t.Quantile(0.50) / 1e3;
  double gflops = p50_s > 0.0 ? flops_per_rep / p50_s / 1e9 : 0.0;
  rec->metrics[kernel + "/gflops"] = {gflops, kThroughputTolerance};
}

obs::PerfRecord RunSuite(int reps) {
  obs::ScopedSpan span("bench.perfgate_suite");
  obs::PerfRecord rec;
  rec.manifest = obs::CollectRunManifest();
  core::Rng rng(7);

  {
    const int64_t n = 128;
    core::Tensor a = rng.GaussianTensor({n, n}, 1.0);
    core::Tensor b = rng.GaussianTensor({n, n}, 1.0);
    KernelTiming t = TimeKernel(
        [&] {
          core::Tensor c = core::MatMul(a, b);
          if (c.at(0) > 1e30f) std::abort();  // keep the result live
        },
        reps);
    AddLatency(&rec, "matmul128", t);
    AddGflops(&rec, "matmul128", t, 2.0 * n * n * n);

    KernelTiming tnt = TimeKernel(
        [&] {
          core::Tensor c = core::MatMulNT(a, b);
          if (c.at(0) > 1e30f) std::abort();
        },
        reps);
    AddLatency(&rec, "matmulnt128", tnt);
    AddGflops(&rec, "matmulnt128", tnt, 2.0 * n * n * n);
  }

  {
    const int64_t ma = 256, mb = 64, d = 64;
    core::Tensor a = rng.GaussianTensor({ma, d}, 1.0);
    core::Tensor b = rng.GaussianTensor({mb, d}, 1.0);
    KernelTiming t = TimeKernel(
        [&] {
          core::Tensor c = core::SquaredDistances(a, b);
          if (c.at(0) > 1e30f) std::abort();
        },
        reps);
    AddLatency(&rec, "sqdist", t);
    AddGflops(&rec, "sqdist", t, 3.0 * ma * mb * d);
  }

  {
    core::Tensor cost = rng.GaussianTensor({256, 64}, 1.0);
    for (int64_t i = 0; i < cost.size(); ++i) {
      cost.at(i) = std::abs(cost.at(i));
    }
    KernelTiming t = TimeKernel(
        [&] {
          core::Tensor q = quant::SinkhornKnopp(cost, 0.05, 50);
          if (q.at(0) > 1e30f) std::abort();
        },
        reps);
    AddLatency(&rec, "sinkhorn", t);
  }

  {
    quant::RqVaeConfig cfg;
    cfg.input_dim = 48;
    cfg.levels = 4;
    cfg.codebook_size = 64;
    quant::RqVae vae(cfg);
    const int64_t items = 256;
    core::Tensor data = rng.GaussianTensor({items, 48}, 1.0);
    KernelTiming t = TimeKernel(
        [&] {
          auto q = vae.QuantizeAll(data);
          if (q.codes.empty()) std::abort();
        },
        reps);
    AddLatency(&rec, "rqvae_quantize", t);
    double p50_s = t.Quantile(0.50) / 1e3;
    rec.metrics["rqvae_quantize/items_per_sec"] = {
        p50_s > 0.0 ? static_cast<double>(items) / p50_s : 0.0,
        kThroughputTolerance};
  }

  {
    llm::MiniLlmConfig cfg;
    cfg.vocab_size = 512;
    cfg.d_model = 48;
    cfg.n_layers = 2;
    cfg.n_heads = 4;
    cfg.d_ff = 128;
    cfg.max_seq = 160;
    llm::MiniLlm model(cfg);
    std::vector<int> prompt(32, 5);
    KernelTiming t = TimeKernel(
        [&] {
          llm::MiniLlm::KvCache cache = model.MakeCache();
          core::Tensor logits = model.Forward(cache, prompt);
          for (int g = 0; g < 4; ++g) logits = model.Forward(cache, {7 + g});
          if (logits.at(0) > 1e30f) std::abort();
        },
        reps);
    AddLatency(&rec, "llm_decode", t);
  }

  {
    // Online serving: closed-loop replay of a small repeat-heavy trace
    // against lcrec::serve::Server (bench_serve.cc is the full harness;
    // this keeps serve/req_per_sec and serve/p95_ms under the gate). A
    // fresh server per rep includes cache cold-start in every sample.
    core::Rng srng(11);
    quant::ItemIndexing indexing =
        quant::ItemIndexing::Random(/*items=*/48, /*levels=*/3,
                                    /*codes=*/6, srng);
    quant::PrefixTrie trie(indexing);
    text::Vocabulary vocab;
    for (const std::string& tok : indexing.AllTokenStrings()) {
      vocab.AddToken(tok);
    }
    llm::MiniLlmConfig cfg;
    cfg.vocab_size = vocab.size();
    cfg.d_model = 32;
    cfg.n_heads = 4;
    cfg.n_layers = 2;
    cfg.d_ff = 64;
    cfg.max_seq = 64;
    llm::MiniLlm model(cfg);
    llm::IndexTokenMap token_map(indexing, vocab);
    int v = vocab.size();
    serve::PromptBuilder builder = [v](const std::vector<int>& history) {
      std::vector<int> prompt = {text::Vocabulary::kBos};
      for (int item : history) prompt.push_back(4 + (item % (v - 4)));
      return prompt;
    };
    // The gate holds serve/req_per_sec to its baseline with the
    // deadlock detector in the release default (report): the detector's
    // hot-path cost is part of what the tolerance protects.
    obs::SetDeadlockMode(obs::DeadlockMode::kReport);
    // 64 requests over 12 histories, head-skewed like real traffic.
    std::vector<std::vector<int>> trace;
    core::Rng trng(13);
    for (int i = 0; i < 64; ++i) {
      int h = static_cast<int>(
          std::min(trng.Below(12), std::min(trng.Below(12), trng.Below(12))));
      trace.push_back({h, 2 * h + 1, h + 7});
    }
    std::vector<double> request_ms;
    KernelTiming t = TimeKernel(
        [&] {
          serve::ServerOptions opts;
          opts.max_batch_lanes = 8;
          serve::Server server(model, trie, token_map, builder, opts);
          std::atomic<size_t> next{0};
          std::vector<std::thread> clients;
          std::vector<std::vector<double>> lat(8);
          for (int c = 0; c < 8; ++c) {
            clients.emplace_back([&, c] {
              for (;;) {
                size_t i = next.fetch_add(1);
                if (i >= trace.size()) break;
                serve::RecommendRequest req;
                req.history = trace[i];
                auto t0 = std::chrono::steady_clock::now();
                serve::RecommendResponse resp = server.Recommend(req);
                auto t1 = std::chrono::steady_clock::now();
                if (resp.status != serve::Status::kOk) std::abort();
                lat[static_cast<size_t>(c)].push_back(
                    std::chrono::duration<double, std::milli>(t1 - t0)
                        .count());
              }
            });
          }
          for (auto& c : clients) c.join();
          for (const auto& per_thread : lat) {
            request_ms.insert(request_ms.end(), per_thread.begin(),
                              per_thread.end());
          }
        },
        reps);
    double p50_s = t.Quantile(0.50) / 1e3;
    rec.metrics["serve/req_per_sec"] = {
        p50_s > 0.0 ? static_cast<double>(trace.size()) / p50_s : 0.0,
        kThroughputTolerance};
    std::sort(request_ms.begin(), request_ms.end());
    double p95 = request_ms.empty()
                     ? 0.0
                     : request_ms[static_cast<size_t>(
                           0.95 * static_cast<double>(request_ms.size() - 1))];
    rec.metrics["serve/p95_ms"] = {p95, kLatencyTolerance};
  }

  {
    // Loopback RPC round-trips (ISSUE 10): 32 Ping echoes through
    // net::RpcServer's poll loop + dispatcher pool and back, on one warm
    // channel. Holds the per-call wire overhead — frame encode/decode,
    // CRC, poll wakeups, syscalls — to a baseline alongside the
    // in-process serve numbers above (bench_serve --net measures the
    // full sharded path; this is the irreducible per-frame cost).
    net::RpcServer rpc;
    rpc.Handle(net::kMethodPing,
               [](const std::string& request, std::string* response,
                  std::string* /*error*/) {
                 *response = request;
                 return true;
               });
    if (!rpc.Start()) std::abort();
    net::RpcClientOptions copts;
    copts.port = rpc.port();
    net::RpcClient client(copts);
    std::string err;
    if (!net::CallPing(&client, &err)) std::abort();  // warm the channel
    KernelTiming t = TimeKernel(
        [&] {
          for (int i = 0; i < 32; ++i) {
            std::string error;
            if (!net::CallPing(&client, &error)) std::abort();
          }
        },
        reps);
    AddLatency(&rec, "net_rpc32", t);
    double p50_s = t.Quantile(0.50) / 1e3;
    rec.metrics["net_rpc32/roundtrips_per_sec"] = {
        p50_s > 0.0 ? 32.0 / p50_s : 0.0, kThroughputTolerance};
    rpc.Stop();
  }

  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  GateFlags flags = GateFlags::Parse(argc, argv);

  std::printf("perfgate: running suite (%d reps per kernel)...\n", flags.reps);
  obs::PerfRecord current = RunSuite(flags.reps);

  if (!flags.record.empty()) {
    if (!obs::WritePerfRecordFile(flags.record, current)) {
      std::fprintf(stderr, "perfgate: cannot write %s\n",
                   flags.record.c_str());
      return 2;
    }
    std::printf("perfgate: baseline recorded to %s (%zu metrics)\n",
                flags.record.c_str(), current.metrics.size());
    return 0;
  }

  std::string out = flags.out;
  if (out.empty()) out = "BENCH_" + current.manifest.git_sha + ".json";
  if (obs::WritePerfRecordFile(out, current)) {
    std::printf("perfgate: record written to %s\n", out.c_str());
  }

  if (flags.baseline.empty()) {
    std::printf("perfgate: no --baseline given; record-only run\n");
    return 0;
  }

  obs::PerfRecord baseline;
  if (!obs::ReadPerfRecordFile(flags.baseline, &baseline)) {
    std::fprintf(stderr, "perfgate: cannot read baseline %s\n",
                 flags.baseline.c_str());
    return 2;
  }

  std::printf("baseline: sha %s, recorded %s\n",
              baseline.manifest.git_sha.c_str(),
              baseline.manifest.timestamp.c_str());
  obs::PerfGateResult result = obs::ComparePerf(baseline, current);
  std::fputs(obs::FormatPerfDiff(result).c_str(), stdout);
  return result.ok ? 0 : 1;
}

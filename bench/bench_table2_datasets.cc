// Reproduces Table II: statistics of the three preprocessed datasets
// (synthetic analogues of Amazon Instruments / Arts / Games; see
// DESIGN.md for the substitution).

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace lcrec;
  bench::Flags flags = bench::Flags::Parse(argc, argv);

  obs::ResultEmitter emitter = bench::MakeEmitter("table2", flags);

  std::printf("Table II analogue: dataset statistics (scale %.2f)\n\n",
              flags.scale);
  std::printf("%-12s  %8s  %8s  %14s  %9s  %8s\n", "Dataset", "#Users",
              "#Items", "#Interactions", "Sparsity", "Avg.len");
  for (data::Domain dom : {data::Domain::kInstruments, data::Domain::kArts,
                           data::Domain::kGames}) {
    data::Dataset d = data::Dataset::Make(dom, flags.scale, flags.seed);
    data::DatasetStats s = d.Stats();
    std::printf("%-12s  %8d  %8d  %14lld  %8.2f%%  %8.2f\n",
                d.name().c_str(), s.num_users, s.num_items,
                static_cast<long long>(s.num_interactions),
                100.0 * s.sparsity, s.avg_len);
    emitter.Emit(d.name() + "/num_users", s.num_users);
    emitter.Emit(d.name() + "/num_items", s.num_items);
    emitter.Emit(d.name() + "/num_interactions",
                 static_cast<double>(s.num_interactions));
    emitter.Emit(d.name() + "/sparsity", s.sparsity);
    emitter.Emit(d.name() + "/avg_len", s.avg_len);
  }
  std::printf(
      "\nPaper (Table II): Instruments 24,773u/9,923i; Arts 45,142u/20,957i;"
      " Games 50,547u/16,860i — same ordering and sparsity regime.\n");
  return 0;
}

// Load-test harness for lcrec::serve::Server (DESIGN.md §10): replays a
// Zipfian request trace against the online server in closed-loop
// (fixed concurrency, back-to-back) and open-loop (target QPS, latency
// measured from the scheduled arrival) modes, and against the
// sequential single-request decoder as the baseline the server must
// beat. Emits a BENCH_<git-sha>.json PerfRecord (serve/req_per_sec,
// serve/p95_ms, ...) compatible with scripts/perf_regress.sh.
//
// Usage:
//   bench_serve [--requests=N] [--concurrency=N] [--qps=X] [--zipf=S]
//               [--catalog=N] [--seed=N] [--out=PATH] [--smoke]
//               [--trace-requests[=PATH]] [--debug-port=N] [--chaos]
//               [--net] [--net-target=HOST:PORT]
//
// --smoke is the CI gate mode: a small trace at low QPS that must
// complete with zero shed requests (exit 1 otherwise).
//
// --net additionally pushes a decode-heavy trace through the lcrec::net
// RPC front (ISSUE 10): in-process clusters of 1, 2, and 4 workers
// (each its own serve::Server + net::RpcServer over the shared model)
// behind a net::Router, driven over real loopback sockets in open loop
// at --net-qps (default 2000 — above single-worker capacity, so the
// measured rate is sustained capacity, not the offered rate). Records
// the wire-level throughput/latency (net/req_per_sec, net/p50_ms,
// net/p95_ms — the gap vs serve/req_per_sec is the codec + TCP
// overhead) and the scaling curve (net/speedup_2w_x, net/speedup_4w_x).
// Zero failed requests is a hard line (exit 1).
//
// --net-target=HOST:PORT is the external-load mode: open-loop socket
// load at --qps against an already-running router or worker, exiting
// non-zero if any request fails or resolves non-kOk. scripts/ci.sh's
// `net` gate uses it as the load generator while it SIGTERMs a worker
// mid-run — the exit code asserts the drain handoff dropped nothing.
// No record is written in this mode.
//
// --chaos additionally replays the closed loop with deadlines against a
// server under seeded chaos injection (decode delays + failures, queue
// pressure) and records how serving degrades rather than how fast it
// goes: availability, the degraded-response rate by ladder tier, and the
// p99 under injected stalls (serve_chaos/* in the record, wide bands —
// the healthy serve/req_per_sec baseline is measured before chaos arms
// and stays the perfgate number).
//
// --debug-port=N (0 = ephemeral) additionally starts the debugz HTTP
// surface and measures the cost of observing the server while it
// serves: a /statusz scrape loop during a timed decode-heavy run
// (serve/statusz_scrape_us) and a /profilez capture during a second
// identical run, which must move the serve p95 by < 5% (plus a small
// absolute slack for cache-hit-fast runs) or the bench exits non-zero
// (serve/profilez_p95_delta_pct in the record).
//
// --trace-requests samples every request (trace_sample_n=1), writes the
// closed-loop run's request-scoped async spans as a Chrome trace (PATH,
// default serve_trace.json — load in chrome://tracing or Perfetto), and
// prints a few per-request stage timelines. Independent of tracing, the
// record always includes tail attribution: the mean per-stage breakdown
// of requests at or above the closed-loop p95 (serve_tail/*_us), which
// names the stage a tail regression lives in.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "llm/generate.h"
#include "llm/minillm.h"
#include "net/router.h"
#include "net/rpc.h"
#include "net/service.h"
#include "obs/debugz.h"
#include "obs/export.h"
#include "obs/http.h"
#include "obs/perfgate.h"
#include "obs/sync.h"
#include "obs/trace.h"
#include "quant/indexing.h"
#include "serve/chaos.h"
#include "serve/server.h"
#include "text/vocab.h"

namespace {

using namespace lcrec;

struct ServeFlags {
  int requests = 400;
  int concurrency = 8;
  double qps = 60.0;
  double zipf = 1.1;     // history-reuse skew (0 = uniform)
  int catalog = 64;      // distinct histories in the trace
  uint64_t seed = 19;
  std::string out;
  bool smoke = false;
  bool chaos = false;
  bool net = false;             // in-process 1/2/4-worker socket curve
  double net_qps = 2000.0;      // offered rate for the --net curve
  std::string net_target;       // "host:port": external open-loop load
  bool trace_requests = false;
  std::string trace_out = "serve_trace.json";
  int debug_port = -1;  // >= 0: start debugz + scrape-under-load runs

  static ServeFlags Parse(int argc, char** argv) {
    ServeFlags f;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--requests=", 11) == 0) {
        f.requests = std::atoi(a + 11);
      } else if (std::strncmp(a, "--concurrency=", 14) == 0) {
        f.concurrency = std::atoi(a + 14);
      } else if (std::strncmp(a, "--qps=", 6) == 0) {
        f.qps = std::atof(a + 6);
      } else if (std::strncmp(a, "--zipf=", 7) == 0) {
        f.zipf = std::atof(a + 7);
      } else if (std::strncmp(a, "--catalog=", 10) == 0) {
        f.catalog = std::atoi(a + 10);
      } else if (std::strncmp(a, "--seed=", 7) == 0) {
        f.seed = static_cast<uint64_t>(std::atoll(a + 7));
      } else if (std::strncmp(a, "--out=", 6) == 0) {
        f.out = a + 6;
      } else if (std::strcmp(a, "--trace-requests") == 0) {
        f.trace_requests = true;
      } else if (std::strncmp(a, "--trace-requests=", 17) == 0) {
        f.trace_requests = true;
        f.trace_out = a + 17;
      } else if (std::strncmp(a, "--debug-port=", 13) == 0) {
        f.debug_port = std::atoi(a + 13);
      } else if (std::strcmp(a, "--chaos") == 0) {
        f.chaos = true;
      } else if (std::strcmp(a, "--net") == 0) {
        f.net = true;
      } else if (std::strncmp(a, "--net-qps=", 10) == 0) {
        f.net_qps = std::atof(a + 10);
      } else if (std::strncmp(a, "--net-target=", 13) == 0) {
        f.net_target = a + 13;
      } else if (std::strcmp(a, "--smoke") == 0) {
        f.smoke = true;
        f.requests = 48;
        f.concurrency = 4;
        f.qps = 20.0;
        f.catalog = 16;
      } else {
        std::fprintf(stderr, "unknown flag %s\n", a);
        std::exit(2);
      }
    }
    return f;
  }
};

/// The benched system: a tiny untrained MiniLlm (decode cost does not
/// depend on the weights) over a random item index shared by the server
/// and the sequential baseline.
struct Bench {
  text::Vocabulary vocab;
  quant::ItemIndexing indexing = quant::ItemIndexing::VanillaId(1);
  std::unique_ptr<quant::PrefixTrie> trie;
  std::unique_ptr<llm::MiniLlm> model;
  std::unique_ptr<llm::IndexTokenMap> token_map;
  int beam_size = 8;

  explicit Bench(uint64_t seed) {
    core::Rng rng(seed);
    indexing = quant::ItemIndexing::Random(/*items=*/48, /*levels=*/3,
                                           /*codes=*/6, rng);
    trie = std::make_unique<quant::PrefixTrie>(indexing);
    for (const std::string& tok : indexing.AllTokenStrings()) {
      vocab.AddToken(tok);
    }
    llm::MiniLlmConfig cfg;
    cfg.vocab_size = vocab.size();
    cfg.d_model = 32;
    cfg.n_heads = 4;
    cfg.n_layers = 2;
    cfg.d_ff = 64;
    cfg.max_seq = 64;
    cfg.seed = 3;
    model = std::make_unique<llm::MiniLlm>(cfg);
    token_map = std::make_unique<llm::IndexTokenMap>(indexing, vocab);
  }

  serve::PromptBuilder Builder() const {
    int v = vocab.size();
    return [v](const std::vector<int>& history) {
      std::vector<int> prompt = {text::Vocabulary::kBos};
      for (int item : history) prompt.push_back(4 + (item % (v - 4)));
      return prompt;
    };
  }
};

/// Zipfian trace: request r asks for history rank drawn with
/// P(rank) ~ 1/(rank+1)^s — the head histories repeat (cacheable), the
/// tail stays cold, like production recommendation traffic.
std::vector<std::vector<int>> MakeTrace(const ServeFlags& f) {
  std::vector<std::vector<int>> histories;
  for (int h = 0; h < f.catalog; ++h) {
    histories.push_back({h, 2 * h + 1, 3 * h + 2, h + 7});
  }
  std::vector<double> cdf(histories.size());
  double acc = 0.0;
  for (size_t r = 0; r < histories.size(); ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), f.zipf);
    cdf[r] = acc;
  }
  core::Rng rng(f.seed + 1);
  std::vector<std::vector<int>> trace;
  trace.reserve(static_cast<size_t>(f.requests));
  for (int i = 0; i < f.requests; ++i) {
    double u = rng.Uniform() * acc;
    size_t rank = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    if (rank >= histories.size()) rank = histories.size() - 1;
    trace.push_back(histories[rank]);
  }
  return trace;
}

double Quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  double pos = q * static_cast<double>(v.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

struct LoadResult {
  double wall_s = 0.0;
  double req_per_sec = 0.0;
  std::vector<double> latency_ms;
  serve::ServerStats stats;
  int errors = 0;  // non-kOk responses
  /// Per-request stage breakdowns, aligned with latency_ms (closed loop
  /// only; empty elsewhere).
  std::vector<serve::RequestDebug> debugs;
};

/// Sequential single-request baseline: one thread, one GenerateItems per
/// trace entry, no batching, no caching — the floor the server must
/// beat by >= 3x at concurrency >= 8 (ISSUE acceptance).
LoadResult RunSequential(const Bench& bench,
                         const std::vector<std::vector<int>>& trace,
                         int top_n) {
  serve::PromptBuilder builder = bench.Builder();
  LoadResult result;
  auto start = std::chrono::steady_clock::now();
  for (const auto& history : trace) {
    auto t0 = std::chrono::steady_clock::now();
    auto items = llm::GenerateItems(*bench.model, builder(history),
                                    *bench.trie, *bench.token_map,
                                    bench.beam_size, top_n);
    if (items.empty()) ++result.errors;
    auto t1 = std::chrono::steady_clock::now();
    result.latency_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  auto end = std::chrono::steady_clock::now();
  result.wall_s = std::chrono::duration<double>(end - start).count();
  result.req_per_sec =
      result.wall_s > 0.0 ? static_cast<double>(trace.size()) / result.wall_s
                          : 0.0;
  return result;
}

/// Closed loop: `concurrency` client threads issue trace entries
/// back-to-back; latency is per-call wall time.
LoadResult RunClosedLoop(const Bench& bench,
                         const std::vector<std::vector<int>>& trace,
                         int concurrency, int top_n) {
  serve::ServerOptions opts;
  opts.beam_size = bench.beam_size;
  opts.max_batch_lanes = concurrency;
  serve::Server server(*bench.model, *bench.trie, *bench.token_map,
                       bench.Builder(), opts);

  std::atomic<size_t> next{0};
  std::vector<std::vector<double>> lat(static_cast<size_t>(concurrency));
  std::vector<std::vector<serve::RequestDebug>> dbg(
      static_cast<size_t>(concurrency));
  std::atomic<int> errors{0};
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < concurrency; ++c) {
    clients.emplace_back([&, c] {
      for (;;) {
        size_t i = next.fetch_add(1);
        if (i >= trace.size()) break;
        serve::RecommendRequest req;
        req.history = trace[i];
        req.top_n = top_n;
        auto t0 = std::chrono::steady_clock::now();
        serve::RecommendResponse resp = server.Recommend(req);
        auto t1 = std::chrono::steady_clock::now();
        if (resp.status != serve::Status::kOk) errors.fetch_add(1);
        lat[static_cast<size_t>(c)].push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
        dbg[static_cast<size_t>(c)].push_back(std::move(resp.debug));
      }
    });
  }
  for (auto& c : clients) c.join();
  auto end = std::chrono::steady_clock::now();

  LoadResult result;
  result.wall_s = std::chrono::duration<double>(end - start).count();
  result.req_per_sec =
      result.wall_s > 0.0 ? static_cast<double>(trace.size()) / result.wall_s
                          : 0.0;
  for (size_t t = 0; t < lat.size(); ++t) {
    result.latency_ms.insert(result.latency_ms.end(), lat[t].begin(),
                             lat[t].end());
    result.debugs.insert(result.debugs.end(),
                         std::make_move_iterator(dbg[t].begin()),
                         std::make_move_iterator(dbg[t].end()));
  }
  result.errors = errors.load();
  result.stats = server.stats();
  return result;
}

/// Tail attribution: the mean per-stage time of the requests at or above
/// the p95 latency — where did the slow requests actually spend it?
/// Stage durations are gap-free (obs::RequestTimeline), so the returned
/// means sum to roughly the mean tail latency.
std::map<std::string, double> TailStageBreakdownUs(const LoadResult& r) {
  std::map<std::string, double> sum_us;
  if (r.debugs.size() != r.latency_ms.size() || r.debugs.empty()) {
    return sum_us;
  }
  double p95 = Quantile(r.latency_ms, 0.95);
  int tail = 0;
  for (size_t i = 0; i < r.debugs.size(); ++i) {
    if (r.latency_ms[i] < p95) continue;
    ++tail;
    for (const obs::StageSpan& s : r.debugs[i].stages) {
      sum_us[s.stage] += s.dur_us;
    }
  }
  if (tail > 0) {
    for (auto& kv : sum_us) kv.second /= static_cast<double>(tail);
  }
  return sum_us;
}

/// Open loop: arrivals scheduled at `qps`; worker threads pick up each
/// arrival no earlier than its scheduled time, and latency counts from
/// the schedule, so queueing delay under load is visible. (With all
/// workers busy, arrivals are effectively delayed — the usual pooled
/// open-loop caveat.)
LoadResult RunOpenLoop(const Bench& bench,
                       const std::vector<std::vector<int>>& trace,
                       int concurrency, double qps, int top_n) {
  serve::ServerOptions opts;
  opts.beam_size = bench.beam_size;
  opts.max_batch_lanes = concurrency;
  serve::Server server(*bench.model, *bench.trie, *bench.token_map,
                       bench.Builder(), opts);

  auto start = std::chrono::steady_clock::now();
  std::vector<std::chrono::steady_clock::time_point> arrival(trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    arrival[i] = start + std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(
                                 static_cast<double>(i) / qps));
  }

  std::atomic<size_t> next{0};
  std::vector<std::vector<double>> lat(static_cast<size_t>(concurrency));
  std::atomic<int> errors{0};
  std::vector<std::thread> workers;
  for (int c = 0; c < concurrency; ++c) {
    workers.emplace_back([&, c] {
      for (;;) {
        size_t i = next.fetch_add(1);
        if (i >= trace.size()) break;
        std::this_thread::sleep_until(arrival[i]);
        serve::RecommendRequest req;
        req.history = trace[i];
        req.top_n = top_n;
        serve::RecommendResponse resp = server.Recommend(req);
        auto t1 = std::chrono::steady_clock::now();
        if (resp.status != serve::Status::kOk) errors.fetch_add(1);
        lat[static_cast<size_t>(c)].push_back(
            std::chrono::duration<double, std::milli>(t1 - arrival[i])
                .count());
      }
    });
  }
  for (auto& w : workers) w.join();
  auto end = std::chrono::steady_clock::now();

  LoadResult result;
  result.wall_s = std::chrono::duration<double>(end - start).count();
  result.req_per_sec =
      result.wall_s > 0.0 ? static_cast<double>(trace.size()) / result.wall_s
                          : 0.0;
  for (const auto& per_thread : lat) {
    result.latency_ms.insert(result.latency_ms.end(), per_thread.begin(),
                             per_thread.end());
  }
  result.errors = errors.load();
  result.stats = server.stats();
  return result;
}

/// Timed closed loop against an existing server: `concurrency` clients
/// issue mostly-distinct histories (cycling far past the result-cache
/// capacity, so the server keeps decoding) until the deadline. Used by
/// the debugz scrape-cost measurement, which needs runs long enough to
/// overlap a 1-second /profilez capture — the fixed-size trace replay
/// finishes in milliseconds.
std::vector<double> RunTimedDecodeLoad(serve::Server& server, int concurrency,
                                       double seconds) {
  std::atomic<bool> stop{false};
  std::vector<std::vector<double>> lat(static_cast<size_t>(concurrency));
  std::vector<std::thread> clients;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(seconds));
  for (int c = 0; c < concurrency; ++c) {
    clients.emplace_back([&, c] {
      int n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (std::chrono::steady_clock::now() >= deadline) break;
        serve::RecommendRequest req;
        req.history = {c, (n % 2503) + 1, 2 * c + 3, n % 17};
        req.top_n = 10;
        auto t0 = std::chrono::steady_clock::now();
        serve::RecommendResponse resp = server.Recommend(req);
        auto t1 = std::chrono::steady_clock::now();
        if (resp.status == serve::Status::kOk) {
          lat[static_cast<size_t>(c)].push_back(
              std::chrono::duration<double, std::milli>(t1 - t0).count());
        }
        ++n;
      }
    });
  }
  for (auto& c : clients) c.join();
  std::vector<double> all;
  for (const auto& per_thread : lat) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  return all;
}

/// The observer-effect measurement behind --debug-port: how much does
/// watching the server cost the server? Two timed decode-heavy runs on
/// one server: the first with a /statusz scrape loop (mean scrape wall
/// time => serve/statusz_scrape_us), the second with a /profilez
/// capture in flight for ~2/3 of the run. The p95 under profiling must
/// stay within 5% (+ 0.25 ms absolute slack, so microsecond-scale p95s
/// don't fail on jitter) of the scrape-only baseline.
bool RunDebugzMeasurement(const Bench& bench, const ServeFlags& flags,
                          obs::PerfRecord* rec) {
  serve::ServerOptions opts;
  opts.beam_size = bench.beam_size;
  opts.max_batch_lanes = flags.concurrency;
  opts.debug_port = flags.debug_port;
  serve::Server server(*bench.model, *bench.trie, *bench.token_map,
                       bench.Builder(), opts);
  obs::DebugServer& debugz = obs::DebugServer::Global();
  if (!debugz.running()) {
    std::fprintf(stderr, "bench_serve: debugz failed to start on port %d\n",
                 flags.debug_port);
    return false;
  }
  const int port = debugz.port();
  const double kRunSeconds = 1.5;
  std::printf("debugz: serving on 127.0.0.1:%d, two %.1fs timed runs\n", port,
              kRunSeconds);

  // Run 1: baseline latencies with a continuous /statusz scrape loop.
  std::atomic<bool> stop_scraper{false};
  std::vector<double> scrape_us;
  std::atomic<int> scrape_errors{0};
  std::thread scraper([&] {
    while (!stop_scraper.load(std::memory_order_relaxed)) {
      obs::HttpResponse response;
      auto t0 = std::chrono::steady_clock::now();
      bool ok = obs::HttpGet("127.0.0.1", port, "/statusz", &response);
      auto t1 = std::chrono::steady_clock::now();
      if (ok && response.status == 200) {
        scrape_us.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      } else {
        scrape_errors.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
  std::vector<double> base_lat =
      RunTimedDecodeLoad(server, flags.concurrency, kRunSeconds);
  stop_scraper.store(true);
  scraper.join();
  if (scrape_us.empty() || scrape_errors.load() > 0) {
    std::fprintf(stderr, "bench_serve: /statusz scrape loop failed (%d errors, %zu ok)\n",
                 scrape_errors.load(), scrape_us.size());
    return false;
  }

  // Run 2: identical load with a 1s /profilez capture in flight.
  std::atomic<bool> profilez_ok{false};
  std::thread profiler([&] {
    obs::HttpResponse response;
    if (obs::HttpGet("127.0.0.1", port, "/profilez?seconds=1&hz=197",
                     &response) &&
        response.status == 200 && !response.body.empty()) {
      profilez_ok.store(true);
    }
  });
  std::vector<double> prof_lat =
      RunTimedDecodeLoad(server, flags.concurrency, kRunSeconds);
  profiler.join();
  if (!profilez_ok.load()) {
    std::fprintf(stderr, "bench_serve: /profilez capture failed\n");
    return false;
  }

  double scrape_mean_us = 0.0;
  for (double us : scrape_us) scrape_mean_us += us;
  scrape_mean_us /= static_cast<double>(scrape_us.size());
  double p95_base = Quantile(base_lat, 0.95);
  double p95_prof = Quantile(prof_lat, 0.95);
  double delta_pct =
      p95_base > 0.0 ? (p95_prof - p95_base) / p95_base * 100.0 : 0.0;
  std::printf(
      "debugz: %zu /statusz scrapes, mean %.1f us; p95 %.3f ms -> %.3f ms "
      "under /profilez (%+.1f%%)\n",
      scrape_us.size(), scrape_mean_us, p95_base, p95_prof, delta_pct);

  // Wide tolerance bands: scrape cost and the profiling delta are noise-
  // dominated at this scale; the hard <5% assertion below is the gate.
  rec->metrics["serve/statusz_scrape_us"] = {scrape_mean_us, 1.0};
  rec->metrics["serve/profilez_p95_delta_pct"] = {delta_pct, 1.0};

  if (p95_prof > p95_base * 1.05 + 0.25) {
    std::fprintf(stderr,
                 "bench_serve: /profilez capture moved serve p95 by %.1f%% "
                 "(%.3f ms -> %.3f ms), above the 5%% budget\n",
                 delta_pct, p95_base, p95_prof);
    return false;
  }
  return true;
}

/// The --chaos measurement: how does serving DEGRADE, not how fast does
/// it go. A closed-loop replay with per-request deadlines against a
/// server whose decode path is under seeded injection (latency spikes,
/// failures, queue pressure). What matters is availability (every
/// request still resolves kOk from some ladder tier), which tiers
/// absorbed the faults, and the latency tail under stalls.
struct ChaosResult {
  double wall_s = 0.0;
  std::vector<double> latency_ms;
  serve::ServerStats stats;
  int total = 0;
  int ok = 0;
  int degraded_by_level[4] = {0, 0, 0, 0};  // indexed by DegradeLevel
};

ChaosResult RunChaosLoop(const Bench& bench,
                         const std::vector<std::vector<int>>& trace,
                         int concurrency, int top_n, uint64_t seed) {
  constexpr double kDeadlineMs = 100.0;
  constexpr double kDelayMs = 25.0;
  std::vector<serve::chaos::ChaosSpec> specs(3);
  specs[0].site = serve::chaos::ChaosSpec::Site::kDecode;
  specs[0].mode = serve::chaos::ChaosSpec::Mode::kDelay;
  specs[0].rate = 0.25;
  specs[0].param_ms = kDelayMs;
  specs[1].site = serve::chaos::ChaosSpec::Site::kDecode;
  specs[1].mode = serve::chaos::ChaosSpec::Mode::kFail;
  specs[1].rate = 0.25;
  specs[2].site = serve::chaos::ChaosSpec::Site::kQueue;
  specs[2].mode = serve::chaos::ChaosSpec::Mode::kFull;
  specs[2].rate = 0.10;
  serve::chaos::ArmChaos(specs, seed);

  serve::ServerOptions opts;
  opts.beam_size = bench.beam_size;
  opts.max_batch_lanes = concurrency;
  opts.cache_ttl_ms = 50.0;  // repeats can age into the stale tier
  opts.slow_request_ms = 0.0;
  serve::Server server(*bench.model, *bench.trie, *bench.token_map,
                       bench.Builder(), opts);

  std::atomic<size_t> next{0};
  std::vector<std::vector<double>> lat(static_cast<size_t>(concurrency));
  std::atomic<int> ok{0};
  std::atomic<int> by_level[4] = {0, 0, 0, 0};
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < concurrency; ++c) {
    clients.emplace_back([&, c] {
      for (;;) {
        size_t i = next.fetch_add(1);
        if (i >= trace.size()) break;
        serve::RecommendRequest req;
        req.history = trace[i];
        req.top_n = top_n;
        req.deadline_ms = kDeadlineMs;
        auto t0 = std::chrono::steady_clock::now();
        serve::RecommendResponse resp = server.Recommend(req);
        auto t1 = std::chrono::steady_clock::now();
        if (resp.status == serve::Status::kOk) ok.fetch_add(1);
        by_level[static_cast<int>(resp.degrade)].fetch_add(1);
        lat[static_cast<size_t>(c)].push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  for (auto& c : clients) c.join();
  auto end = std::chrono::steady_clock::now();
  serve::chaos::DisarmChaos();

  ChaosResult result;
  result.wall_s = std::chrono::duration<double>(end - start).count();
  result.total = static_cast<int>(trace.size());
  result.ok = ok.load();
  for (int l = 0; l < 4; ++l) result.degraded_by_level[l] = by_level[l].load();
  for (const auto& per_thread : lat) {
    result.latency_ms.insert(result.latency_ms.end(), per_thread.begin(),
                             per_thread.end());
  }
  result.stats = server.stats();
  return result;
}

/// One socket-load result: latencies measured at the RPC client, so
/// they include codec, TCP, the router hop, and the worker's serve path.
struct NetLoadResult {
  double wall_s = 0.0;
  double req_per_sec = 0.0;
  std::vector<double> latency_ms;
  int failed = 0;  // calls that failed after every retry/failover
  int errors = 0;  // answered, but status != kOk (sheds)
};

/// Open loop over the wire: arrivals scheduled at `qps`, latency counted
/// from the schedule (same semantics as RunOpenLoop, through sockets).
NetLoadResult RunNetOpenLoop(net::RpcClient* client,
                             const std::vector<std::vector<int>>& trace,
                             int concurrency, double qps, int top_n) {
  auto start = std::chrono::steady_clock::now();
  std::vector<std::chrono::steady_clock::time_point> arrival(trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    arrival[i] = start + std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(
                                 static_cast<double>(i) / qps));
  }

  std::atomic<size_t> next{0};
  std::vector<std::vector<double>> lat(static_cast<size_t>(concurrency));
  std::atomic<int> failed{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> workers;
  for (int c = 0; c < concurrency; ++c) {
    workers.emplace_back([&, c] {
      for (;;) {
        size_t i = next.fetch_add(1);
        if (i >= trace.size()) break;
        std::this_thread::sleep_until(arrival[i]);
        serve::RecommendRequest req;
        req.history = trace[i];
        req.top_n = top_n;
        serve::RecommendResponse resp;
        std::string error;
        bool ok = net::CallRecommend(client, req, &resp, &error);
        auto t1 = std::chrono::steady_clock::now();
        if (!ok) {
          failed.fetch_add(1);
          continue;
        }
        if (resp.status != serve::Status::kOk) errors.fetch_add(1);
        lat[static_cast<size_t>(c)].push_back(
            std::chrono::duration<double, std::milli>(t1 - arrival[i])
                .count());
      }
    });
  }
  for (auto& w : workers) w.join();
  auto end = std::chrono::steady_clock::now();

  NetLoadResult result;
  result.wall_s = std::chrono::duration<double>(end - start).count();
  result.req_per_sec =
      result.wall_s > 0.0 ? static_cast<double>(trace.size()) / result.wall_s
                          : 0.0;
  for (const auto& per_thread : lat) {
    result.latency_ms.insert(result.latency_ms.end(), per_thread.begin(),
                             per_thread.end());
  }
  result.failed = failed.load();
  result.errors = errors.load();
  return result;
}

/// An in-process sharded cluster: W workers (each its own serve::Server
/// + net::RpcServer sharing the benched model read-only) behind one
/// net::Router — the same one-box topology the CI net gate runs with
/// real processes, minus the fork/exec, so the curve is cheap to sweep.
struct NetCluster {
  std::vector<std::unique_ptr<serve::Server>> servers;
  std::vector<std::unique_ptr<net::RpcServer>> rpcs;
  std::unique_ptr<net::Router> router;

  bool Start(const Bench& bench, int workers, int concurrency,
             std::string* error) {
    net::RouterOptions ropts;
    for (int w = 0; w < workers; ++w) {
      serve::ServerOptions sopts;
      sopts.beam_size = bench.beam_size;
      sopts.max_batch_lanes = concurrency;
      servers.push_back(std::make_unique<serve::Server>(
          *bench.model, *bench.trie, *bench.token_map, bench.Builder(),
          sopts));
      net::RpcServerOptions wopts;
      wopts.dispatch_threads = concurrency;
      rpcs.push_back(std::make_unique<net::RpcServer>(wopts));
      net::RegisterRecommendService(rpcs.back().get(), servers.back().get());
      if (!rpcs.back()->Start(error)) return false;
      ropts.workers.push_back("127.0.0.1:" +
                              std::to_string(rpcs.back()->port()));
    }
    ropts.server.dispatch_threads = concurrency;
    ropts.client.max_retries = 2;
    ropts.client.backoff_ms = 1.0;
    router = std::make_unique<net::Router>(ropts);
    return router->Start(error);
  }

  void Stop() {
    if (router) router->Stop();
    for (auto& r : rpcs) r->Stop();
  }
};

/// The --net measurement: open-loop socket load pushed through the RPC
/// front at 1, 2, and 4 workers, with arrivals scheduled at --net-qps —
/// above capacity by default, so the measured rate is each cluster
/// size's sustained capacity and the speedup entries are the sharding
/// scaling curve. The 1-worker numbers are the wire overhead (read them
/// against serve/req_per_sec). Zero failed requests is a hard line.
///
/// The curve uses a decode-heavy trace (every history distinct) rather
/// than the Zipfian one: sharding splits a repeat-heavy trace's result
/// cache across workers, so the Zipfian curve would measure cache
/// fragmentation, not serving capacity. What sharding buys is decode
/// throughput — that is what the curve should show, and on a one-core
/// box it honestly shows ~1x.
bool RunNetCurve(const Bench& bench, const ServeFlags& flags, int top_n,
                 obs::PerfRecord* rec) {
  constexpr double kNetTolerance = 0.60;
  constexpr int kWorkerCounts[] = {1, 2, 4};
  std::vector<std::vector<int>> trace;
  trace.reserve(static_cast<size_t>(flags.requests));
  for (int i = 0; i < flags.requests; ++i) {
    trace.push_back(
        {(i % 2503) + 1, (i * 7 + 3) % 1709, i % 17, (i * 13 + 5) % 127});
  }
  double rps_1w = 0.0;
  bool ok = true;
  for (int workers : kWorkerCounts) {
    NetCluster cluster;
    std::string error;
    if (!cluster.Start(bench, workers, flags.concurrency, &error)) {
      std::fprintf(stderr,
                   "bench_serve: net cluster (%d workers) failed to start: "
                   "%s\n",
                   workers, error.c_str());
      cluster.Stop();
      return false;
    }
    net::RpcClientOptions copts;
    copts.host = "127.0.0.1";
    copts.port = cluster.router->port();
    copts.max_retries = 2;
    copts.backoff_ms = 1.0;
    net::RpcClient client(copts);
    if (!net::CallPing(&client, &error)) {
      std::fprintf(stderr, "bench_serve: net cluster ping failed: %s\n",
                   error.c_str());
      cluster.Stop();
      return false;
    }
    NetLoadResult r = RunNetOpenLoop(&client, trace, flags.concurrency,
                                     flags.net_qps, top_n);
    cluster.Stop();

    char name[32];
    std::snprintf(name, sizeof(name), "net %dw", workers);
    std::printf(
        "%-10s  %7.1f req/s  p50 %7.2f ms  p95 %7.2f ms  failed %d  "
        "non-ok %d\n",
        name, r.req_per_sec, Quantile(r.latency_ms, 0.50),
        Quantile(r.latency_ms, 0.95), r.failed, r.errors);
    if (r.failed != 0) {
      std::fprintf(stderr,
                   "bench_serve: net FAIL (%d of %zu requests failed at %d "
                   "workers)\n",
                   r.failed, trace.size(), workers);
      ok = false;
    }
    if (workers == 1) {
      rps_1w = r.req_per_sec;
      rec->metrics["net/req_per_sec"] = {r.req_per_sec, kNetTolerance};
      rec->metrics["net/p50_ms"] = {Quantile(r.latency_ms, 0.50),
                                    kNetTolerance};
      rec->metrics["net/p95_ms"] = {Quantile(r.latency_ms, 0.95),
                                    kNetTolerance};
    } else {
      // Wide band: multi-worker scaling on a shared box is scheduler-
      // noise-bound; the curve is informative, not a gate.
      double speedup = rps_1w > 0.0 ? r.req_per_sec / rps_1w : 0.0;
      rec->metrics["net/speedup_" + std::to_string(workers) + "w_x"] = {
          speedup, 1.0};
      std::printf("net: %d workers vs 1 = %.2fx\n", workers, speedup);
    }
  }
  return ok;
}

/// The --net-target mode: open-loop load against an externally-running
/// router/worker; exit status is the verdict (0 = every request landed).
int RunNetTarget(const ServeFlags& flags, int top_n) {
  std::string host;
  int port = 0;
  if (!net::ParseEndpoint(flags.net_target, &host, &port)) {
    std::fprintf(stderr,
                 "bench_serve: bad --net-target '%s' (want host:port)\n",
                 flags.net_target.c_str());
    return 2;
  }
  net::RpcClientOptions copts;
  copts.host = host;
  copts.port = port;
  copts.max_retries = 3;
  copts.backoff_ms = 5.0;
  net::RpcClient client(copts);
  std::string error;
  if (!net::CallPing(&client, &error)) {
    std::fprintf(stderr, "bench_serve: cannot reach %s: %s\n",
                 flags.net_target.c_str(), error.c_str());
    return 2;
  }
  std::vector<std::vector<int>> trace = MakeTrace(flags);
  NetLoadResult r = RunNetOpenLoop(&client, trace, flags.concurrency,
                                   flags.qps, top_n);
  std::printf(
      "net-target  %7.1f req/s  p50 %7.2f ms  p95 %7.2f ms  failed %d  "
      "non-ok %d\n",
      r.req_per_sec, Quantile(r.latency_ms, 0.50),
      Quantile(r.latency_ms, 0.95), r.failed, r.errors);
  if (r.failed != 0 || r.errors != 0) {
    std::fprintf(stderr,
                 "bench_serve: net-target FAIL (%d failed, %d non-ok of "
                 "%zu requests)\n",
                 r.failed, r.errors, trace.size());
    return 1;
  }
  std::printf("bench_serve: net-target PASS (%zu requests, zero failures)\n",
              trace.size());
  return 0;
}

void PrintResult(const char* name, const LoadResult& r) {
  std::printf(
      "%-10s  %7.1f req/s  p50 %7.2f ms  p95 %7.2f ms  p99 %7.2f ms\n", name,
      r.req_per_sec, Quantile(r.latency_ms, 0.50), Quantile(r.latency_ms, 0.95),
      Quantile(r.latency_ms, 0.99));
  std::printf(
      "%-10s  decoded %lld  cache_hits %lld  coalesced %lld  inline %lld  "
      "shed %lld  errors %d\n",
      "", static_cast<long long>(r.stats.decoded),
      static_cast<long long>(r.stats.cache_hits),
      static_cast<long long>(r.stats.coalesced),
      static_cast<long long>(r.stats.inline_fast_path),
      static_cast<long long>(r.stats.shed_queue_full +
                             r.stats.shed_deadline),
      r.errors);
}

}  // namespace

int main(int argc, char** argv) {
  ServeFlags flags = ServeFlags::Parse(argc, argv);
  constexpr int kTopN = 10;
  constexpr double kServeTolerance = 0.60;  // match the perfgate bands

  // External-load mode: drive a running router, report, exit. No local
  // model, no record — the target cluster owns its numbers.
  if (!flags.net_target.empty()) {
    return RunNetTarget(flags, kTopN);
  }

  std::printf(
      "bench_serve: %d requests, catalog %d, zipf %.2f, concurrency %d, "
      "qps %.1f%s\n",
      flags.requests, flags.catalog, flags.zipf, flags.concurrency, flags.qps,
      flags.smoke ? " [smoke]" : "");

  // The headline numbers are measured with the deadlock detector in its
  // release default (report) so the record reflects what production
  // pays; an explicit LCREC_DEADLOCK in the environment still wins.
  if (std::getenv("LCREC_DEADLOCK") == nullptr) {
    obs::SetDeadlockMode(obs::DeadlockMode::kReport);
  }

  Bench bench(flags.seed);
  std::vector<std::vector<int>> trace = MakeTrace(flags);

  auto mutex_wait_total_us = [] {
    long long total = 0;
    for (const obs::MutexStatsRow& row : obs::MutexStatsSnapshot()) {
      total += row.wait_total_us;
    }
    return total;
  };

  LoadResult seq = RunSequential(bench, trace, kTopN);
  PrintResult("sequential", seq);
  if (flags.trace_requests) obs::TraceRecorder::Global().SetEnabled(true);
  long long wait_before_us = mutex_wait_total_us();
  LoadResult closed = RunClosedLoop(bench, trace, flags.concurrency, kTopN);
  long long mutex_wait_us = mutex_wait_total_us() - wait_before_us;
  if (flags.trace_requests) {
    obs::TraceRecorder::Global().SetEnabled(false);
    obs::TraceRecorder::Global().WriteChromeTraceFile(flags.trace_out);
    std::printf("bench_serve: request trace (%zu events) written to %s\n",
                obs::TraceRecorder::Global().event_count(),
                flags.trace_out.c_str());
    // A few sample timelines so the stage names are visible without
    // opening the trace.
    int shown = 0;
    for (const serve::RequestDebug& d : closed.debugs) {
      if (d.stages.size() < 4 || shown >= 3) continue;
      std::printf("  request %llu:",
                  static_cast<unsigned long long>(d.request_id));
      for (const obs::StageSpan& s : d.stages) {
        std::printf(" %s %.0fus", s.stage, s.dur_us);
      }
      std::printf("\n");
      ++shown;
    }
  }
  PrintResult("closed", closed);

  // Detector cost, measured directly: the same closed-loop replay with
  // lock-discipline tracking off entirely (raw std::mutex cost). The
  // delta is recorded, not gated — serve/req_per_sec above, measured in
  // report mode, is what the perf baseline holds to tolerance.
  obs::DeadlockMode bench_mode = obs::GetDeadlockMode();
  obs::SetDeadlockMode(obs::DeadlockMode::kOff);
  LoadResult closed_off =
      RunClosedLoop(bench, trace, flags.concurrency, kTopN);
  obs::SetDeadlockMode(bench_mode);
  double detector_off_delta_pct =
      closed.req_per_sec > 0.0
          ? (closed_off.req_per_sec - closed.req_per_sec) /
                closed.req_per_sec * 100.0
          : 0.0;
  std::printf(
      "lock discipline: closed-loop mutex wait %lld us; detector %s %.1f "
      "req/s vs off %.1f req/s (off is %+.1f%%)\n",
      mutex_wait_us, obs::DeadlockModeName(bench_mode), closed.req_per_sec,
      closed_off.req_per_sec, detector_off_delta_pct);

  LoadResult open =
      RunOpenLoop(bench, trace, flags.concurrency, flags.qps, kTopN);
  PrintResult("open", open);

  std::map<std::string, double> tail = TailStageBreakdownUs(closed);
  if (!tail.empty()) {
    std::printf("closed-loop tail (>= p95) mean stage breakdown:\n");
    for (const auto& kv : tail) {
      std::printf("  %-14s %9.1f us\n", kv.first.c_str(), kv.second);
    }
  }

  double speedup =
      seq.req_per_sec > 0.0 ? closed.req_per_sec / seq.req_per_sec : 0.0;
  std::printf("speedup: closed-loop vs sequential = %.2fx\n", speedup);

  obs::PerfRecord rec;
  rec.manifest = obs::CollectRunManifest();
  rec.metrics["serve/req_per_sec"] = {closed.req_per_sec, kServeTolerance};
  rec.metrics["serve/p50_ms"] = {Quantile(closed.latency_ms, 0.50),
                                 kServeTolerance};
  rec.metrics["serve/p95_ms"] = {Quantile(closed.latency_ms, 0.95),
                                 kServeTolerance};
  rec.metrics["serve/p99_ms"] = {Quantile(closed.latency_ms, 0.99),
                                 kServeTolerance};
  rec.metrics["serve/speedup_vs_sequential_x"] = {speedup, kServeTolerance};
  rec.metrics["serve_open/req_per_sec"] = {open.req_per_sec, kServeTolerance};
  rec.metrics["serve_open/p95_ms"] = {Quantile(open.latency_ms, 0.95),
                                      kServeTolerance};
  rec.metrics["sequential/req_per_sec"] = {seq.req_per_sec, kServeTolerance};
  // Shed breakdown and serve-path mix. Counts are usually 0 at bench
  // load (the smoke gate demands it); a nonzero baseline would make a
  // shed regression visible in the perf diff.
  double n_closed = static_cast<double>(closed.stats.requests);
  rec.metrics["serve/shed_queue_full"] = {
      static_cast<double>(closed.stats.shed_queue_full), kServeTolerance};
  rec.metrics["serve/shed_deadline"] = {
      static_cast<double>(closed.stats.shed_deadline), kServeTolerance};
  rec.metrics["serve_open/shed_queue_full"] = {
      static_cast<double>(open.stats.shed_queue_full), kServeTolerance};
  rec.metrics["serve_open/shed_deadline"] = {
      static_cast<double>(open.stats.shed_deadline), kServeTolerance};
  if (n_closed > 0.0) {
    rec.metrics["serve/cache_hit_rate"] = {
        static_cast<double>(closed.stats.cache_hits) / n_closed, 1.0};
    rec.metrics["serve/coalesce_rate"] = {
        static_cast<double>(closed.stats.coalesced) / n_closed, 1.0};
    rec.metrics["serve/inline_rate"] = {
        static_cast<double>(closed.stats.inline_fast_path) / n_closed, 1.0};
  }
  // Tail attribution (mean us per stage for closed-loop requests >= p95).
  // Wide band: tail composition is the noisiest thing measured here.
  for (const auto& kv : tail) {
    rec.metrics["serve_tail/" + kv.first + "_us"] = {kv.second, 1.0};
  }
  // Lock discipline: total mutex wait accumulated during the closed
  // loop, and the throughput delta with the detector fully off. Both
  // are wide-band diagnostics — contention is scheduling-noise-bound.
  rec.metrics["serve/mutex_wait_us"] = {static_cast<double>(mutex_wait_us),
                                        1.0};
  rec.metrics["serve/detector_off_delta_pct"] = {detector_off_delta_pct, 1.0};

  // --chaos: degradation under injected faults, measured AFTER the
  // healthy runs above (the injector is process-wide; serve/req_per_sec
  // must stay a chaos-free perfgate number). All serve_chaos/* bands are
  // wide: the mix of tiers is seeded but scheduling-dependent.
  bool chaos_ok = true;
  if (flags.chaos) {
    ChaosResult cr = RunChaosLoop(bench, trace, flags.concurrency, kTopN,
                                  flags.seed);
    double n = static_cast<double>(cr.total);
    double availability = n > 0.0 ? static_cast<double>(cr.ok) / n : 0.0;
    int degraded = cr.degraded_by_level[1] + cr.degraded_by_level[2] +
                   cr.degraded_by_level[3];
    double p99 = Quantile(cr.latency_ms, 0.99);
    std::printf(
        "chaos       availability %.3f  degraded %d/%d (budget_capped %d, "
        "stale_cache %d, popularity %d)  p99 %7.2f ms\n",
        availability, degraded, cr.total, cr.degraded_by_level[1],
        cr.degraded_by_level[2], cr.degraded_by_level[3], p99);
    std::printf(
        "chaos       decode_failures %lld  retries %lld  "
        "breaker_short_circuits %lld  watchdog_fires %lld\n",
        static_cast<long long>(cr.stats.decode_failures),
        static_cast<long long>(cr.stats.decode_retries),
        static_cast<long long>(cr.stats.breaker_short_circuits),
        static_cast<long long>(cr.stats.watchdog_fires));
    rec.metrics["serve_chaos/availability"] = {availability, 1.0};
    rec.metrics["serve_chaos/p50_ms"] = {Quantile(cr.latency_ms, 0.50), 1.0};
    rec.metrics["serve_chaos/p99_ms"] = {p99, 1.0};
    if (n > 0.0) {
      rec.metrics["serve_chaos/degraded_rate"] = {degraded / n, 1.0};
      rec.metrics["serve_chaos/budget_capped_rate"] = {
          cr.degraded_by_level[1] / n, 1.0};
      rec.metrics["serve_chaos/stale_cache_rate"] = {
          cr.degraded_by_level[2] / n, 1.0};
      rec.metrics["serve_chaos/popularity_rate"] = {
          cr.degraded_by_level[3] / n, 1.0};
    }
    // Availability is the one hard line: with the ladder on, injected
    // faults must never surface as client-visible errors.
    if (cr.ok != cr.total) {
      std::fprintf(stderr,
                   "bench_serve: chaos FAIL (%d/%d requests not kOk under "
                   "injection)\n",
                   cr.total - cr.ok, cr.total);
      chaos_ok = false;
    }
  }
  bool debugz_ok = true;
  if (flags.debug_port >= 0) {
    debugz_ok = RunDebugzMeasurement(bench, flags, &rec);
  }
  // --net: the socket-level curve, after the healthy in-process numbers
  // (the clusters would otherwise compete for cores with the runs the
  // perf baseline holds).
  bool net_ok = true;
  if (flags.net) {
    net_ok = RunNetCurve(bench, flags, kTopN, &rec);
  }
  std::string out = flags.out;
  if (out.empty()) out = "BENCH_" + rec.manifest.git_sha + ".json";
  if (obs::WritePerfRecordFile(out, rec)) {
    std::printf("bench_serve: record written to %s\n", out.c_str());
  } else {
    std::fprintf(stderr, "bench_serve: cannot write %s\n", out.c_str());
    return 2;
  }
  if (!debugz_ok || !chaos_ok || !net_ok) {
    return 1;  // record written first: the numbers that failed
  }

  if (flags.smoke) {
    int64_t sheds =
        closed.stats.shed_queue_full + closed.stats.shed_deadline +
        open.stats.shed_queue_full + open.stats.shed_deadline;
    int errors = seq.errors + closed.errors + open.errors;
    if (sheds != 0 || errors != 0) {
      std::fprintf(stderr,
                   "bench_serve: smoke FAIL (%lld sheds, %d errors at low "
                   "QPS)\n",
                   static_cast<long long>(sheds), errors);
      return 1;
    }
    std::printf("bench_serve: smoke PASS (zero sheds, zero errors)\n");
  }
  return 0;
}

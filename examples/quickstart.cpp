// Quickstart: build a synthetic dataset, fit LC-Rec end-to-end, and print
// top-10 recommendations for a few users.
//
//   ./build/examples/quickstart
//
// The pipeline (Figure 1 of the paper):
//   1. encode item text        -> text embeddings
//   2. RQ-VAE + uniform semantic mapping  -> conflict-free item indices
//   3. extend the LLM vocabulary with the index tokens
//   4. alignment tuning (SEQ + MUT + ASY + ITE + PER)
//   5. trie-constrained beam search over the whole item set

#include <cstdio>

#include "data/dataset.h"
#include "rec/lcrec.h"
#include "rec/recommender.h"

int main() {
  using namespace lcrec;

  // A small Video-Games-like dataset (synthetic analogue of the paper's
  // Amazon subset; 5-core filtered, leave-one-out protocol).
  data::Dataset dataset = data::Dataset::Make(data::Domain::kGames, 0.3, 7);
  data::DatasetStats stats = dataset.Stats();
  std::printf("dataset: %d users, %d items, %lld interactions\n",
              stats.num_users, stats.num_items,
              static_cast<long long>(stats.num_interactions));

  rec::LcRecConfig config = rec::LcRecConfig::Small();
  config.verbose = true;
  rec::LcRec model(config);
  model.Fit(dataset);
  std::printf("item indices: %d levels, 0 conflicts: %s\n",
              model.indexing().levels(),
              model.indexing().ConflictCount() == 0 ? "yes" : "NO");

  // Recommend for three users and compare with the held-out test item.
  for (int user = 0; user < 3; ++user) {
    std::printf("\nuser %d history (last 3):", user);
    const auto history = dataset.TestContext(user);
    for (size_t i = history.size() >= 3 ? history.size() - 3 : 0;
         i < history.size(); ++i) {
      std::printf("  [%s]", dataset.item(history[i]).title.c_str());
    }
    std::printf("\n  held-out next item: %s\n",
                dataset.item(dataset.TestTarget(user)).title.c_str());
    int rank = 1;
    for (const auto& r : model.TopK(history, 5)) {
      std::printf("  #%d (%.2f) %s  %s\n", rank++, r.logprob,
                  model.indexing().ItemTokenText(r.item).c_str(),
                  dataset.item(r.item).title.c_str());
    }
  }

  // Full-ranking evaluation over the test split.
  rec::RankingMetrics metrics = rec::EvaluateGenerative(
      [&](const std::vector<int>& h) { return model.TopKIds(h, 10); },
      dataset, 100);
  std::printf("\nfull ranking (100 users): %s\n", metrics.ToString().c_str());
  return 0;
}

// Cold-start / extensibility demo: one advertised property of learned
// semantic indices (Section III-B1) is that NEW items can be indexed
// without retraining the quantizer — the trained RQ-VAE encoder simply
// quantizes their text embeddings, and the new code sequences plug into
// the prefix trie.
//
//   ./build/examples/cold_start

#include <cstdio>

#include "data/dataset.h"
#include "quant/indexing.h"
#include "quant/rqvae.h"
#include "text/encoder.h"

int main() {
  using namespace lcrec;

  // Train the quantizer on the first 80% of the catalog; hold out the
  // rest as "cold" items the RQ-VAE has never seen.
  data::Dataset dataset = data::Dataset::Make(data::Domain::kGames, 0.4, 29);
  int n = dataset.num_items();
  int n_warm = n * 8 / 10;
  std::printf("catalog: %d items (%d warm, %d cold)\n", n, n_warm, n - n_warm);

  text::TextEncoder encoder(48);
  std::vector<std::string> docs;
  for (int i = 0; i < n; ++i) docs.push_back(dataset.ItemDocument(i));
  core::Tensor all_emb = encoder.EncodeBatch(docs);
  core::Tensor warm_emb({n_warm, 48});
  for (int i = 0; i < n_warm; ++i) {
    for (int j = 0; j < 48; ++j) warm_emb.at(i, j) = all_emb.at(i, j);
  }

  quant::RqVaeConfig cfg;
  cfg.input_dim = 48;
  cfg.levels = 4;
  cfg.codebook_size = 48;
  cfg.epochs = 120;
  quant::RqVae vae(cfg);
  vae.Train(warm_emb);

  // Quantize the FULL catalog with the warm-trained model. Cold items get
  // valid, meaningful indices without any retraining.
  auto q = vae.QuantizeAll(all_emb);
  int64_t coherent = 0, total = 0;
  for (int i = n_warm; i < n; ++i) {
    // A cold index is "coherent" if some warm item with the same level-1
    // code shares the cold item's subcategory.
    bool ok = false;
    for (int w = 0; w < n_warm; ++w) {
      if (q.codes[static_cast<size_t>(w)][0] ==
              q.codes[static_cast<size_t>(i)][0] &&
          dataset.item(w).subcategory == dataset.item(i).subcategory) {
        ok = true;
        break;
      }
    }
    coherent += ok;
    ++total;
  }
  std::printf("cold items whose level-1 code matches a same-subcategory warm "
              "item: %.1f%%\n",
              100.0 * static_cast<double>(coherent) /
                  static_cast<double>(total));

  std::printf("\nsample cold-item indices:\n");
  for (int i = n_warm; i < std::min(n, n_warm + 5); ++i) {
    std::string tokens;
    for (size_t h = 0; h < q.codes[static_cast<size_t>(i)].size(); ++h) {
      tokens += quant::ItemIndexing::TokenString(
          static_cast<int>(h), q.codes[static_cast<size_t>(i)][h]);
    }
    std::printf("  %-28s %s\n", tokens.c_str(),
                dataset.item(i).title.c_str());
  }
  std::printf(
      "\nVanilla IDs cannot do this: a new item would be out-of-vocabulary "
      "(the OOV issue of Section III-B1).\n");
  return 0;
}

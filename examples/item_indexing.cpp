// Item-indexing walkthrough: train the RQ-VAE on item text embeddings and
// inspect the learned tree-structured indices (Section III-B).
//
//   ./build/examples/item_indexing
//
// Shows: conflict counts with and without uniform semantic mapping, the
// shared-prefix structure among same-subcategory items, and the prefix
// trie used for constrained decoding.

#include <cstdio>
#include <map>

#include "data/dataset.h"
#include "quant/indexing.h"
#include "quant/rqvae.h"
#include "text/encoder.h"

int main() {
  using namespace lcrec;

  data::Dataset dataset = data::Dataset::Make(data::Domain::kArts, 0.4, 11);
  std::printf("catalog: %d items\n", dataset.num_items());

  // 1. Text embeddings (stand-in for frozen LLaMA encodings).
  text::TextEncoder encoder(48);
  std::vector<std::string> docs;
  for (int i = 0; i < dataset.num_items(); ++i) {
    docs.push_back(dataset.ItemDocument(i));
  }
  core::Tensor embeddings = encoder.EncodeBatch(docs);

  // 2. RQ-VAE training (Eqs. 3-5 + Algorithm 1).
  quant::RqVaeConfig cfg;
  cfg.input_dim = 48;
  cfg.levels = 4;
  cfg.codebook_size = 48;
  cfg.epochs = 120;
  quant::RqVae vae(cfg);
  float loss = vae.Train(embeddings);
  std::printf("RQ-VAE trained: final loss %.4f, reconstruction MSE %.5f\n",
              loss, vae.ReconstructionError(embeddings));

  // 3. Index construction with vs. without uniform semantic mapping.
  quant::ItemIndexing no_usm =
      quant::ItemIndexing::FromRqVae(vae, embeddings, false);
  quant::ItemIndexing with_usm =
      quant::ItemIndexing::FromRqVae(vae, embeddings, true);
  auto raw = vae.QuantizeAll(embeddings);
  std::map<std::vector<int>, int> uniq;
  for (const auto& c : raw.codes) ++uniq[c];
  int raw_conflicts = 0;
  for (const auto& [c, n] : uniq) {
    (void)c;
    if (n > 1) raw_conflicts += n;
  }
  std::printf("conflicts: raw RQ %d -> USM %d (supplementary-level variant "
              "uses up to %d levels)\n",
              raw_conflicts, with_usm.ConflictCount(), no_usm.levels());

  // 4. Same-subcategory items share index prefixes.
  std::printf("\nsample indices (same subcategory -> shared prefix):\n");
  int shown = 0;
  for (int i = 0; i < dataset.num_items() && shown < 6; ++i) {
    if (dataset.item(i).subcategory != dataset.item(0).subcategory) continue;
    std::printf("  %-28s %s\n", with_usm.ItemTokenText(i).c_str(),
                dataset.item(i).title.c_str());
    ++shown;
  }
  int64_t same_match = 0, same_total = 0, diff_match = 0, diff_total = 0;
  for (int i = 0; i < dataset.num_items(); ++i) {
    for (int j = i + 1; j < dataset.num_items(); ++j) {
      bool prefix = with_usm.codes(i)[0] == with_usm.codes(j)[0];
      if (dataset.item(i).subcategory == dataset.item(j).subcategory) {
        same_match += prefix;
        ++same_total;
      } else {
        diff_match += prefix;
        ++diff_total;
      }
    }
  }
  std::printf("\nlevel-1 code agreement: same subcategory %.1f%%, different "
              "subcategory %.1f%%\n",
              100.0 * same_match / same_total, 100.0 * diff_match / diff_total);

  // 5. The prefix trie for constrained decoding.
  quant::PrefixTrie trie(with_usm);
  std::printf("\ntrie: %zu level-1 branches; every item reachable: %s\n",
              trie.NextCodes({}).size(),
              [&] {
                for (int i = 0; i < with_usm.num_items(); ++i) {
                  if (trie.ItemAt(with_usm.codes(i)) != i) return false;
                }
                return true;
              }()
                  ? "yes"
                  : "no");
  return 0;
}

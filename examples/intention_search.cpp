// Intention-based retrieval (Section III-C3b / Figure 3): after alignment
// tuning, the LLM can act as a "search engine" mapping a free-text user
// intention directly to item indices.
//
//   ./build/examples/intention_search

#include <cstdio>

#include "data/dataset.h"
#include "rec/lcrec.h"

int main() {
  using namespace lcrec;

  data::Dataset dataset =
      data::Dataset::Make(data::Domain::kInstruments, 0.35, 23);
  rec::LcRecConfig config = rec::LcRecConfig::Small();
  rec::LcRec model(config);
  std::printf("fitting LC-Rec on %s (%d items)...\n", dataset.name().c_str(),
              dataset.num_items());
  model.Fit(dataset);

  core::Rng rng(5);
  int hits_at_5 = 0;
  const int kQueries = 8;
  for (int q = 0; q < kQueries; ++q) {
    int target = dataset.TestTarget(q);
    std::string intention = dataset.IntentionFor(target, rng);
    std::printf("\nquery: \"%s\"\n  (hidden target: %s)\n", intention.c_str(),
                dataset.item(target).title.c_str());
    int rank = 1;
    bool hit = false;
    for (const auto& r : model.TopKFromIntention(intention, 5)) {
      bool is_target = r.item == target;
      hit |= is_target;
      std::printf("  #%d%s %s\n", rank++, is_target ? " <== target" : "",
                  dataset.item(r.item).title.c_str());
    }
    hits_at_5 += hit;
  }
  std::printf("\nHR@5 over %d intention queries: %.2f\n", kQueries,
              static_cast<double>(hits_at_5) / kQueries);
  return 0;
}

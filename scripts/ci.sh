#!/usr/bin/env bash
# One-shot CI driver: every gate the repo has, in dependency order, with
# a pass/fail summary table at the end. Exit code is non-zero when any
# gate fails (skipped gates do not fail the run).
#
#   scripts/ci.sh            # tier-1 tests, fault suite, serve smoke,
#                            # flightrec crash-dump smoke, debugz probe,
#                            # deadlock-detector probe, chaos-injection
#                            # probe, sharded-cluster drain handoff,
#                            # lint, strict build, ASan+UBSan
#   scripts/ci.sh debugz     # just the named gate(s) — build runs first
#                            # automatically unless it was named
#   LCREC_CI_PERF=1 scripts/ci.sh   # additionally run the perf gate
#
# Individual gates reuse their own scratch build trees (build-strict/,
# build-asan/), so repeat runs only pay incremental rebuilds.

set -uo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build"
jobs="$(nproc 2>/dev/null || echo 4)"

declare -a gate_names=()
declare -a gate_results=()
declare -a gate_times=()

run_gate() {
  local name="$1"
  shift
  local start end rc
  echo
  echo "=== gate: ${name} ==="
  start=$(date +%s)
  "$@"
  rc=$?
  end=$(date +%s)
  gate_names+=("${name}")
  gate_times+=("$((end - start))s")
  if [[ ${rc} -eq 0 ]]; then
    gate_results+=("PASS")
  else
    gate_results+=("FAIL")
  fi
  return ${rc}
}

overall=0

gate_build() {
  cmake -S "${repo_root}" -B "${build_dir}" >/dev/null &&
    cmake --build "${build_dir}" -j "${jobs}"
}
gate_tests() {
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" \
    -E "check_warnings|check_sanitize_asan|check_sanitize_tsan|perf_regress"
}
gate_fault() {
  # Crash-safety suite: checkpoint fuzzing, fault-injected atomic writes,
  # resume equivalence, health rollback. Default-on (no env gate) — these
  # are plain unit tests, just grouped under their own CTest label.
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" -L fault
}
gate_lint() {
  "${build_dir}/tools/lcrec_lint" --root "${repo_root}" &&
    "${build_dir}/tools/lcrec_lint" --root "${repo_root}" --selftest
}
gate_warnings() {
  LCREC_STRICT=1 "${repo_root}/scripts/check_warnings.sh"
}
gate_asan() {
  LCREC_SANITIZE=1 "${repo_root}/scripts/check_sanitize.sh" asan
}
gate_tsan() {
  LCREC_SANITIZE=1 "${repo_root}/scripts/check_sanitize.sh" tsan
}
gate_perf() {
  LCREC_PERF=1 "${repo_root}/scripts/perf_regress.sh" \
    "${build_dir}/bench/bench_perfgate"
}
gate_serve() {
  # Online-serving smoke: a small load-test replay at low QPS must finish
  # with zero shed requests and zero errors (bench_serve exits non-zero
  # otherwise). The record lands in the build tree, not the checkout.
  "${build_dir}/bench/bench_serve" --smoke \
    --out="${build_dir}/bench_serve_smoke.json"
}

gate_debugz() {
  # Live-introspection smoke: the probe embeds a serve::Server with an
  # ephemeral debug port, scrapes all eight debugz endpoints over HTTP
  # under client load (Prometheus conformance via the shared checker,
  # JSON/JSONL shape, llm.* frames in a /profilez capture), then forces
  # a ckpt health trip and requires /healthz to flip to 503 naming the
  # subsystem and step. Self-checking: exits non-zero on any violation.
  "${build_dir}/tools/debugz_probe"
}

gate_deadlock() {
  # Lock-discipline gate, end to end: a seeded lock-order inversion must
  # be detected on the first cycle-creating acquisition (one thread, no
  # actual deadlock, no timeout) with a report naming both mutexes and
  # both acquisition paths; fatal mode must abort the process with the
  # same report on stderr; and a correctly-ordered multi-threaded run
  # must finish with zero findings.
  local probe="${build_dir}/tools/deadlock_probe"
  local out="${build_dir}/deadlock_probe.log"
  if ! "${probe}" --cycle >"${out}" 2>&1; then
    echo "deadlock: --cycle exited non-zero (report mode must not kill" \
         "the process)"
    cat "${out}"
    return 1
  fi
  local want
  for want in "lock-order cycle" "probe.a" "probe.b" \
              "this acquisition" "conflicting edge"; do
    if ! grep -qF "${want}" "${out}"; then
      echo "deadlock: cycle report is missing '${want}'"
      cat "${out}"
      return 1
    fi
  done
  if "${probe}" --cycle-fatal >/dev/null 2>"${out}"; then
    echo "deadlock: --cycle-fatal unexpectedly exited 0"
    return 1
  fi
  if ! grep -qF "lock-order cycle" "${out}"; then
    echo "deadlock: fatal-mode stderr lacks the cycle report"
    cat "${out}"
    return 1
  fi
  if ! "${probe}" >"${out}" 2>&1 || ! grep -qF "OK (0 findings)" "${out}"; then
    echo "deadlock: clean correctly-ordered run reported findings"
    cat "${out}"
    return 1
  fi
  echo "deadlock: inversion detected in report and fatal modes; clean" \
       "run 0 findings"
}

gate_chaos() {
  # Resilient-serving gate: the probe embeds a serve::Server with the
  # degradation ladder on and drives deadline-bearing load while the
  # chaos injector (armed here through the real LCREC_CHAOS env grammar)
  # fires decode delays, decode failures, and queue pressure. The probe
  # itself asserts the contract — no crash, every request resolves kOk
  # from some ladder tier, latency stays inside the degrade bound, every
  # degraded response is labeled with its tier, and the terminal-state
  # counters sum — and a --healthy control run must show zero
  # degradation with chaos disarmed.
  LCREC_CHAOS="decode:delay:0.25:25,decode:fail:0.25,queue:full:0.1" \
  LCREC_CHAOS_SEED=42 \
    "${build_dir}/tools/chaos_probe" || return 1
  LCREC_CHAOS= "${build_dir}/tools/chaos_probe" --healthy
}

gate_net() {
  # Sharded-cluster gate (ISSUE 10): a router process fronting two real
  # worker processes takes an open-loop socket load burst while one
  # worker is SIGTERMed mid-load. The drain handoff contract: the killed
  # worker finishes its in-flight requests and exits 0 ("drained
  # clean"), the load generator sees zero failed requests
  # (bench_serve --net-target exits non-zero otherwise), and the
  # router's debugz /statusz names both shards with the right health —
  # the killed shard down, the survivor up.
  local dir="${build_dir}/net_gate"
  rm -rf "${dir}" && mkdir -p "${dir}"
  local worker_a worker_b router_pid bench_pid
  "${build_dir}/tools/lcrec_worker" --port-file="${dir}/wa.port" \
    >"${dir}/worker_a.log" 2>&1 &
  worker_a=$!
  "${build_dir}/tools/lcrec_worker" --port-file="${dir}/wb.port" \
    >"${dir}/worker_b.log" 2>&1 &
  worker_b=$!
  local i
  for i in $(seq 1 100); do
    [[ -s "${dir}/wa.port" && -s "${dir}/wb.port" ]] && break
    sleep 0.1
  done
  if [[ ! -s "${dir}/wa.port" || ! -s "${dir}/wb.port" ]]; then
    echo "net: workers did not write port files"
    kill "${worker_a}" "${worker_b}" 2>/dev/null
    return 1
  fi
  local pa pb
  pa="$(cat "${dir}/wa.port")"
  pb="$(cat "${dir}/wb.port")"
  "${build_dir}/tools/lcrec_router" \
    --workers="127.0.0.1:${pa},127.0.0.1:${pb}" \
    --port-file="${dir}/router.port" \
    --debug-port=0 --debug-port-file="${dir}/debug.port" \
    >"${dir}/router.log" 2>&1 &
  router_pid=$!
  for i in $(seq 1 100); do
    [[ -s "${dir}/router.port" && -s "${dir}/debug.port" ]] && break
    sleep 0.1
  done
  if [[ ! -s "${dir}/router.port" || ! -s "${dir}/debug.port" ]]; then
    echo "net: router did not write its port files"
    kill "${router_pid}" "${worker_a}" "${worker_b}" 2>/dev/null
    return 1
  fi
  local rport dport
  rport="$(cat "${dir}/router.port")"
  dport="$(cat "${dir}/debug.port")"

  "${build_dir}/bench/bench_serve" --net-target="127.0.0.1:${rport}" \
    --requests=240 --qps=400 --concurrency=8 \
    >"${dir}/bench.log" 2>&1 &
  bench_pid=$!
  sleep 0.3
  kill -TERM "${worker_a}"
  local worker_rc=0 bench_rc=0
  wait "${worker_a}" || worker_rc=$?
  wait "${bench_pid}" || bench_rc=$?
  local fail=0
  if [[ ${worker_rc} -ne 0 ]] ||
     ! grep -q "drained clean" "${dir}/worker_a.log"; then
    echo "net: killed worker did not drain clean (rc ${worker_rc})"
    cat "${dir}/worker_a.log"
    fail=1
  fi
  if [[ ${bench_rc} -ne 0 ]]; then
    echo "net: requests failed across the drain handoff (rc ${bench_rc})"
    cat "${dir}/bench.log"
    fail=1
  fi

  # Per-shard health over the router's debugz (bash /dev/tcp: no curl
  # dependency; the server closes after the response, so cat sees EOF).
  local statusz=""
  if exec 3<>"/dev/tcp/127.0.0.1/${dport}" 2>/dev/null; then
    printf 'GET /statusz HTTP/1.1\r\nHost: ci\r\nConnection: close\r\n\r\n' >&3
    statusz="$(cat <&3)"
    exec 3<&- 3>&-
  fi
  if ! grep -q "shard 0 127.0.0.1:${pa} down" <<<"${statusz}"; then
    echo "net: /statusz does not show the killed shard down"
    grep "shard" <<<"${statusz}" || printf '%s\n' "${statusz}" | head -20
    fail=1
  fi
  if ! grep -q "shard 1 127.0.0.1:${pb} up" <<<"${statusz}"; then
    echo "net: /statusz does not show the surviving shard up"
    grep "shard" <<<"${statusz}" || printf '%s\n' "${statusz}" | head -20
    fail=1
  fi

  kill -TERM "${router_pid}" "${worker_b}" 2>/dev/null
  local router_rc=0 wb_rc=0
  wait "${router_pid}" || router_rc=$?
  wait "${worker_b}" || wb_rc=$?
  if [[ ${router_rc} -ne 0 || ${wb_rc} -ne 0 ]]; then
    echo "net: clean shutdown failed (router rc ${router_rc}, worker B" \
         "rc ${wb_rc})"
    fail=1
  fi
  if [[ ${fail} -eq 0 ]]; then
    echo "net: drain handoff clean (worker drained, zero failed requests," \
         "per-shard health correct)"
  fi
  return ${fail}
}

gate_flightrec() {
  # Flight-recorder smoke: a forced LCREC_CHECK failure in a child
  # process must leave a parseable black-box dump on stderr containing
  # the shed events recorded just before the crash.
  local probe="${build_dir}/tools/flightrec_probe"
  local log="${build_dir}/flightrec_probe.log"
  if "${probe}" --crash >/dev/null 2>"${log}"; then
    echo "flightrec: probe --crash unexpectedly exited 0"
    return 1
  fi
  if ! grep -q '^=== flight recorder dump (' "${log}"; then
    echo "flightrec: dump start marker missing from stderr"
    return 1
  fi
  if ! grep -q '^=== end flight recorder dump ===$' "${log}"; then
    echo "flightrec: dump end marker missing from stderr"
    return 1
  fi
  local dump sheds malformed
  dump="$(sed -n '/^=== flight recorder dump (/,/^=== end flight recorder dump ===$/p' \
    "${log}" | sed '1d;$d')"
  if [[ -z "${dump}" ]]; then
    echo "flightrec: dump is empty"
    return 1
  fi
  sheds="$(printf '%s\n' "${dump}" | grep -c '"detail":"shed_queue_full"')"
  if [[ "${sheds}" -lt 5 ]]; then
    echo "flightrec: expected >= 5 shed_queue_full events, got ${sheds}"
    return 1
  fi
  # Every dump line must be one JSON object with the documented fields.
  malformed="$(printf '%s\n' "${dump}" | grep -vcE \
    '^\{"ts_us":[0-9.e+-]+,"tid":[0-9]+,"kind":"[a-z_]+","detail":"[^"]*","a":-?[0-9]+,"b":-?[0-9]+\}$')"
  if [[ "${malformed}" -ne 0 ]]; then
    echo "flightrec: ${malformed} malformed JSONL line(s) in dump"
    printf '%s\n' "${dump}" | head -5
    return 1
  fi
  echo "flightrec: dump OK ($(printf '%s\n' "${dump}" | wc -l) events," \
    "${sheds} sheds)"
}

# Gate selection: with positional args, run only the named gates (the
# build gate is prepended automatically — everything needs binaries).
# Unknown names fail fast so a typo can't silently skip a gate.
known_gates="build tier1_tests fault serve_smoke flightrec debugz \
deadlock chaos net lcrec_lint check_warnings asan_ubsan tsan perf_regress"
selected=("$@")
if [[ ${#selected[@]} -gt 0 ]]; then
  for g in "${selected[@]}"; do
    if ! grep -qw "${g}" <<<"${known_gates}"; then
      echo "ci.sh: unknown gate '${g}' (known: ${known_gates})" >&2
      exit 2
    fi
  done
  if ! grep -qw "build" <<<"${selected[*]}"; then
    selected=("build" "${selected[@]}")
  fi
fi

wants() {
  # True when gate $1 should run this invocation.
  [[ ${#selected[@]} -eq 0 ]] && return 0
  grep -qw "$1" <<<"${selected[*]}"
}

wants build          && { run_gate "build"          gate_build     || overall=1; }
wants tier1_tests    && { run_gate "tier1_tests"    gate_tests     || overall=1; }
wants fault          && { run_gate "fault"          gate_fault     || overall=1; }
wants serve_smoke    && { run_gate "serve_smoke"    gate_serve     || overall=1; }
wants flightrec      && { run_gate "flightrec"      gate_flightrec || overall=1; }
wants debugz         && { run_gate "debugz"         gate_debugz    || overall=1; }
wants deadlock       && { run_gate "deadlock"       gate_deadlock  || overall=1; }
wants chaos          && { run_gate "chaos"          gate_chaos     || overall=1; }
wants net            && { run_gate "net"            gate_net       || overall=1; }
wants lcrec_lint     && { run_gate "lcrec_lint"     gate_lint      || overall=1; }
wants check_warnings && { run_gate "check_warnings" gate_warnings  || overall=1; }
wants asan_ubsan     && { run_gate "asan_ubsan"     gate_asan      || overall=1; }
wants tsan           && { run_gate "tsan"           gate_tsan      || overall=1; }
# perf_regress is opt-in: env flag for full runs, or named explicitly.
if [[ "${LCREC_CI_PERF:-0}" == "1" && ${#selected[@]} -eq 0 ]] ||
   { [[ ${#selected[@]} -gt 0 ]] && grep -qw perf_regress <<<"${selected[*]}"; }; then
  run_gate "perf_regress" gate_perf || overall=1
fi

echo
echo "=== ci summary ==="
printf "%-16s %-6s %s\n" "gate" "result" "time"
for i in "${!gate_names[@]}"; do
  printf "%-16s %-6s %s\n" "${gate_names[$i]}" "${gate_results[$i]}" \
    "${gate_times[$i]}"
done
if [[ ${overall} -eq 0 ]]; then
  echo "ci: ALL GATES GREEN"
else
  echo "ci: FAILURES (see above)"
fi
exit ${overall}

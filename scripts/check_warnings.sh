#!/usr/bin/env bash
# Warning-hygiene gate: configure and build the whole tree with
# -Wall -Wextra -Werror in a scratch build directory. Any new warning
# anywhere in src/, tests/, bench/, or examples/ fails the build. When
# the compiler is clang, clang's thread-safety analysis runs too
# (-Wthread-safety), checking the LCREC_GUARDED_BY annotations in
# src/obs/ (see src/obs/sync.h); gcc compiles the annotations away.
#
# Opt-in: heavy (full rebuild), so it only runs when LCREC_STRICT=1 is
# set; otherwise it prints "[skipped]" and exits 0 (the CTest entry maps
# that marker to a SKIP). The CMake cache in the scratch tree is reused
# across runs; only the first run pays the configure.
#
#   LCREC_STRICT=1 scripts/check_warnings.sh
#   LCREC_STRICT=1 ctest -R check_warnings --output-on-failure

set -euo pipefail

if [[ "${LCREC_STRICT:-0}" != "1" ]]; then
  echo "check_warnings [skipped] (set LCREC_STRICT=1 to enable)"
  exit 0
fi

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${LCREC_STRICT_BUILD_DIR:-${repo_root}/build-strict}"
jobs="$(nproc 2>/dev/null || echo 4)"

strict_flags="-Wall -Wextra -Werror"
compiler="${CXX:-c++}"
if "${compiler}" --version 2>/dev/null | grep -qi clang; then
  strict_flags="${strict_flags} -Wthread-safety"
fi

echo "check_warnings: ${strict_flags} build in ${build_dir}"
if [[ ! -f "${build_dir}/CMakeCache.txt" ]]; then
  cmake -S "${repo_root}" -B "${build_dir}" \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS="${strict_flags}" \
    >/dev/null
fi
cmake --build "${build_dir}" -j "${jobs}"
echo "check_warnings: OK (no warnings under -Werror)"

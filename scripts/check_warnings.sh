#!/usr/bin/env bash
# Warning-hygiene gate: configure and build the whole tree with
# -Wall -Wextra -Werror in a scratch build directory. Any new warning
# anywhere in src/, tests/, bench/, or examples/ fails the build.
#
# Opt-in: heavy (full reconfigure + rebuild), so it only runs when
# LCREC_STRICT=1 is set; otherwise it prints "[skipped]" and exits 0
# (the CTest entry maps that marker to a SKIP).
#
#   LCREC_STRICT=1 scripts/check_warnings.sh
#   LCREC_STRICT=1 ctest -R check_warnings --output-on-failure

set -euo pipefail

if [[ "${LCREC_STRICT:-0}" != "1" ]]; then
  echo "check_warnings [skipped] (set LCREC_STRICT=1 to enable)"
  exit 0
fi

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${LCREC_STRICT_BUILD_DIR:-${repo_root}/build-strict}"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "check_warnings: -Wall -Wextra -Werror build in ${build_dir}"
cmake -S "${repo_root}" -B "${build_dir}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror" \
  >/dev/null
cmake --build "${build_dir}" -j "${jobs}"
echo "check_warnings: OK (no warnings under -Werror)"

#!/usr/bin/env bash
# Sanitizer gate: build and test the tree under sanitizers in scratch
# build directories (gitignored via the build-* pattern).
#
#   asan mode (default): ASan + UBSan, full ctest suite.
#   tsan mode          : TSan, the threaded tests only — the obs suites
#                        plus the online-serving server/batch tests (the
#                        rest of the repo is single-threaded by design).
#
# Opt-in: heavy (separate build tree), so it only runs when
# LCREC_SANITIZE=1 is set; otherwise it prints "[skipped]" and exits 0
# (the CTest entry maps that marker to a SKIP).
#
#   LCREC_SANITIZE=1 scripts/check_sanitize.sh          # asan
#   LCREC_SANITIZE=1 scripts/check_sanitize.sh tsan
#   LCREC_SANITIZE=1 ctest -R check_sanitize --output-on-failure
#
# The CMake cache in each scratch tree is reused across runs; only the
# first run pays the full configure + build.

set -euo pipefail

mode="${1:-asan}"

if [[ "${LCREC_SANITIZE:-0}" != "1" ]]; then
  echo "check_sanitize(${mode}) [skipped] (set LCREC_SANITIZE=1 to enable)"
  exit 0
fi

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

case "${mode}" in
  asan)
    sanitizers="address;undefined"
    build_dir="${repo_root}/build-asan"
    ;;
  tsan)
    sanitizers="thread"
    build_dir="${repo_root}/build-tsan"
    ;;
  *)
    echo "check_sanitize: unknown mode '${mode}' (want asan or tsan)" >&2
    exit 2
    ;;
esac

echo "check_sanitize(${mode}): -fsanitize=${sanitizers} build in ${build_dir}"
# Always (re)configure: with a warm cache this is ~a second, and a stale
# scratch tree otherwise misses targets added since it was first set up
# ("No rule to make target ..." under --target builds).
cmake -S "${repo_root}" -B "${build_dir}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DLCREC_SANITIZE="${sanitizers}" \
  >/dev/null

if [[ "${mode}" == "tsan" ]]; then
  # gcc's TSan runtime predates large-ASLR kernels; probe with a trivial
  # program and skip gracefully (reduced entropy via setarch -R as a
  # fallback) rather than failing the gate on an unsupported host.
  probe_dir="$(mktemp -d)"
  trap 'rm -rf "${probe_dir}"' EXIT
  echo 'int main(){return 0;}' > "${probe_dir}/probe.cc"
  c++ -fsanitize=thread -o "${probe_dir}/probe" "${probe_dir}/probe.cc"
  launcher=()
  if ! "${probe_dir}/probe" >/dev/null 2>&1; then
    if setarch "$(uname -m)" -R "${probe_dir}/probe" >/dev/null 2>&1; then
      launcher=(setarch "$(uname -m)" -R)
      echo "check_sanitize(tsan): ASLR entropy too high for the TSan" \
           "runtime; running tests under setarch -R"
    else
      echo "check_sanitize(tsan) [skipped] (TSan runtime unsupported on" \
           "this kernel/compiler combination)"
      exit 0
    fi
  fi

  # obs_sync_test runs the deadlock detector itself under TSan (the
  # sanitizer build compiles with LCREC_DEADLOCK_DEFAULT_FATAL, so the
  # whole list also exercises the fatal-mode instrumentation paths).
  cmake --build "${build_dir}" -j "${jobs}" \
    --target obs_test obs_sync_test obs_http_test obs_prof_test \
    obs_flightrec_test obs_slo_test llm_test llm_batch_test serve_test \
    serve_resilience_test net_rpc_test net_router_test
  for t in obs_test obs_sync_test obs_http_test obs_prof_test \
           obs_flightrec_test obs_slo_test llm_test llm_batch_test \
           serve_test serve_resilience_test net_rpc_test net_router_test; do
    echo "check_sanitize(tsan): running ${t}"
    tsan_opts="halt_on_error=1"
    if [[ "${t}" == "obs_sync_test" ]]; then
      # This suite deliberately acquires mutexes in inverted order to
      # exercise the repo's own lock-order detector; TSan's
      # potential-deadlock heuristic would flag those fixture locks, so
      # it is off for this one binary. Data races stay fatal.
      tsan_opts="halt_on_error=1:detect_deadlocks=0"
    fi
    TSAN_OPTIONS="${tsan_opts}" \
      "${launcher[@]}" "${build_dir}/tests/${t}" \
      --gtest_brief=1
  done
  echo "check_sanitize(tsan): OK (no data races reported)"
  exit 0
fi

cmake --build "${build_dir}" -j "${jobs}"
# The scratch tree registers the meta-gates too; exclude them so the
# sanitize gate cannot recurse into itself (LCREC_SANITIZE is inherited).
LCREC_SANITIZE=0 \
ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1" \
UBSAN_OPTIONS="print_stacktrace=1" \
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" \
  -E "check_sanitize|check_warnings|perf_regress"
echo "check_sanitize(asan): OK (full suite clean under ASan+UBSan)"

#!/usr/bin/env bash
# Kill-and-resume demonstration of the lcrec::ckpt subsystem against a real
# experiment binary: start a checkpointed Table III run, SIGKILL it
# mid-training, then resume from the newest valid checkpoint and let it
# finish. A second, uninterrupted run of the same configuration serves as
# the reference; both runs emit JSONL metric rows that are diffed at the
# end — crash-safe training must not change the results.
#
#   scripts/ckpt_kill_resume.sh [build_dir] [kill_after_seconds]
#
# Defaults: build/ and 20 seconds. The scratch state lives under
# /tmp/lcrec_kill_resume.$$ and is removed on success.

set -uo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
kill_after="${2:-20}"
bench="${build_dir}/bench/bench_table3_overall"

if [[ ! -x "${bench}" ]]; then
  echo "ckpt_kill_resume: ${bench} not built (cmake --build ${build_dir})" >&2
  exit 2
fi

work="/tmp/lcrec_kill_resume.$$"
ckpt_dir="${work}/ckpt"
mkdir -p "${work}"

flags=(--quick --seed=19 --ckpt-dir="${ckpt_dir}" --ckpt-every=5)

echo "== reference: uninterrupted run =="
ref_ckpt="${work}/ckpt_ref"
"${bench}" --quick --seed=19 --metrics-out="${work}/reference.jsonl" \
  >"${work}/reference.log" 2>&1
echo "   done ($(wc -l <"${work}/reference.jsonl") metric rows)"

echo "== crashed run: SIGKILL after ${kill_after}s =="
"${bench}" "${flags[@]}" --metrics-out="${work}/crashed.jsonl" \
  >"${work}/crashed.log" 2>&1 &
pid=$!
sleep "${kill_after}"
if kill -0 "${pid}" 2>/dev/null; then
  kill -KILL "${pid}"
  wait "${pid}" 2>/dev/null
  echo "   killed pid ${pid}"
else
  wait "${pid}" 2>/dev/null
  echo "   run finished before the kill window; increase kill_after to" \
       "actually exercise the crash path"
fi
n_ckpt=$(find "${ckpt_dir}" -name 'ckpt-*.lckp' 2>/dev/null | wc -l)
echo "   ${n_ckpt} checkpoint file(s) survived the kill"

echo "== resumed run =="
"${bench}" "${flags[@]}" --resume --metrics-out="${work}/resumed.jsonl" \
  >"${work}/resumed.log" 2>&1
echo "   done ($(wc -l <"${work}/resumed.jsonl") metric rows)"

echo "== comparing final metrics =="
# Metric rows embed the run config (which differs in the `resume` flag), so
# compare only bench/metric/value triples.
extract() {
  grep -v '"manifest"' "$1" |
    sed 's/.*"bench":"\([^"]*\)".*"metric":"\([^"]*\)","value":\([^,}]*\).*/\1 \2 \3/' |
    sort
}
extract "${work}/reference.jsonl" >"${work}/reference.rows"
extract "${work}/resumed.jsonl" >"${work}/resumed.rows"
if diff -u "${work}/reference.rows" "${work}/resumed.rows"; then
  echo "ckpt_kill_resume: PASS — resumed run matches the uninterrupted run"
  rm -rf "${work}"
  exit 0
else
  echo "ckpt_kill_resume: FAIL — metrics diverged (state kept in ${work})" >&2
  exit 1
fi

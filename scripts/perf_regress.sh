#!/usr/bin/env bash
# Benchmark regression gate: runs bench_perfgate against the committed
# bench/baseline.json and fails on any metric outside its tolerance band.
#
# Opt-in: benchmark timings are only meaningful on a quiet machine, so it
# runs when LCREC_PERF=1 is set; otherwise it prints "[skipped]" and
# exits 0 (the CTest entry maps that marker to a SKIP).
#
#   LCREC_PERF=1 scripts/perf_regress.sh [path/to/bench_perfgate]
#   LCREC_PERF=1 ctest -R perf_regress --output-on-failure
#
# --selftest additionally verifies the gate itself: it injects a
# synthetic slowdown (LCREC_PERFGATE_SLOWDOWN_US) and requires the gate
# to FAIL, proving a real regression would be caught.
#
# To re-record the baseline after an intentional perf change, see
# EXPERIMENTS.md ("Re-recording the perf baseline").

set -euo pipefail

selftest=0
bin=""
for a in "$@"; do
  case "$a" in
    --selftest) selftest=1 ;;
    *) bin="$a" ;;
  esac
done

if [[ "${LCREC_PERF:-0}" != "1" ]]; then
  echo "perf_regress [skipped] (set LCREC_PERF=1 to enable)"
  exit 0
fi

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

if [[ -z "${bin}" ]]; then
  for candidate in "${repo_root}/build/bench/bench_perfgate" \
                   "${repo_root}/build-strict/bench/bench_perfgate"; do
    if [[ -x "${candidate}" ]]; then bin="${candidate}"; break; fi
  done
fi
if [[ -z "${bin}" || ! -x "${bin}" ]]; then
  echo "perf_regress: bench_perfgate binary not found (build it first)" >&2
  exit 2
fi

# Stamp records with the actual checked-out commit, not the sha baked in
# at configure time (which goes stale without a reconfigure).
if sha="$(git -C "${repo_root}" rev-parse --short HEAD 2>/dev/null)"; then
  export LCREC_GIT_SHA="${sha}"
fi

baseline="${repo_root}/bench/baseline.json"
out_dir="${LCREC_PERF_OUT_DIR:-$(pwd)}"
out="${out_dir}/BENCH_${LCREC_GIT_SHA:-unknown}.json"

echo "perf_regress: ${bin} vs ${baseline}"
"${bin}" --baseline="${baseline}" --out="${out}"

if [[ "${selftest}" == "1" ]]; then
  echo "perf_regress: selftest (synthetic slowdown must FAIL the gate)"
  if LCREC_PERFGATE_SLOWDOWN_US=200000 \
     "${bin}" --baseline="${baseline}" --out="${out}.selftest" --reps=3; then
    echo "perf_regress: selftest FAILED - gate passed a synthetic slowdown" >&2
    exit 1
  fi
  echo "perf_regress: selftest OK (gate rejected the slowdown)"
fi

echo "perf_regress: OK"

#include <algorithm>
#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "core/linalg.h"
#include "data/catalog.h"
#include "data/dataset.h"
#include "text/encoder.h"

namespace lcrec::data {
namespace {

TEST(Catalog, GeneratesRequestedItemCount) {
  CatalogConfig cc;
  cc.num_items = 100;
  Catalog c = Catalog::Generate(cc);
  EXPECT_EQ(c.size(), 100);
  EXPECT_GT(c.num_categories(), 0);
  EXPECT_GT(c.num_attributes(), 0);
}

TEST(Catalog, DeterministicPerSeed) {
  CatalogConfig cc;
  cc.num_items = 50;
  cc.seed = 9;
  Catalog a = Catalog::Generate(cc);
  Catalog b = Catalog::Generate(cc);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.item(i).title, b.item(i).title);
    EXPECT_EQ(a.item(i).subcategory, b.item(i).subcategory);
  }
}

TEST(Catalog, SubcategoryConsistentWithCategory) {
  CatalogConfig cc;
  cc.num_items = 200;
  Catalog c = Catalog::Generate(cc);
  int sub_per_cat = c.num_subcategories() / c.num_categories();
  for (const Item& it : c.items()) {
    EXPECT_EQ(it.subcategory / sub_per_cat, it.category);
  }
}

TEST(Catalog, AttributesAreWithinRange) {
  CatalogConfig cc;
  cc.num_items = 80;
  Catalog c = Catalog::Generate(cc);
  for (const Item& it : c.items()) {
    EXPECT_EQ(it.attributes.size(), 4u);
    for (int a : it.attributes) {
      EXPECT_GE(a, 0);
      EXPECT_LT(a, c.num_attributes());
    }
  }
}

TEST(Catalog, AllDomainsGenerateText) {
  for (Domain d : {Domain::kInstruments, Domain::kArts, Domain::kGames}) {
    CatalogConfig cc;
    cc.domain = d;
    cc.num_items = 20;
    Catalog c = Catalog::Generate(cc);
    for (int i = 0; i < 20; ++i) {
      EXPECT_FALSE(c.item(i).title.empty());
      EXPECT_FALSE(c.item(i).description.empty());
      EXPECT_FALSE(c.ItemDocument(i).empty());
    }
  }
}

TEST(Catalog, SameSubcategoryTextCloserOnAverage) {
  // The key property the RQ-VAE relies on: items in the same subcategory
  // have closer text embeddings than items in different categories.
  CatalogConfig cc;
  cc.num_items = 150;
  Catalog c = Catalog::Generate(cc);
  text::TextEncoder enc(64);
  std::vector<std::string> docs;
  for (int i = 0; i < c.size(); ++i) docs.push_back(c.ItemDocument(i));
  core::Tensor emb = enc.EncodeBatch(docs);
  core::Tensor sim = core::CosineSimilarity(emb, emb);
  double same = 0.0, diff = 0.0;
  int ns = 0, nd = 0;
  for (int i = 0; i < c.size(); ++i) {
    for (int j = i + 1; j < c.size(); ++j) {
      if (c.item(i).subcategory == c.item(j).subcategory) {
        same += sim.at(i, j);
        ++ns;
      } else if (c.item(i).category != c.item(j).category) {
        diff += sim.at(i, j);
        ++nd;
      }
    }
  }
  ASSERT_GT(ns, 0);
  ASSERT_GT(nd, 0);
  EXPECT_GT(same / ns, diff / nd + 0.15);
}

TEST(Catalog, IntentionMentionsCategoryNoun) {
  CatalogConfig cc;
  cc.num_items = 30;
  Catalog c = Catalog::Generate(cc);
  core::Rng rng(4);
  for (int i = 0; i < 30; ++i) {
    std::string intent = c.IntentionFor(i, rng);
    EXPECT_FALSE(intent.empty());
  }
}

TEST(Interactions, SequencesRespectLengthBounds) {
  CatalogConfig cc;
  cc.num_items = 100;
  Catalog c = Catalog::Generate(cc);
  InteractionConfig ic;
  ic.num_users = 100;
  auto seqs = GenerateInteractions(c, ic);
  EXPECT_EQ(seqs.size(), 100u);
  for (const auto& s : seqs) {
    EXPECT_GE(static_cast<int>(s.size()), ic.min_len);
    EXPECT_LE(static_cast<int>(s.size()), ic.max_len);
    for (int it : s) {
      EXPECT_GE(it, 0);
      EXPECT_LT(it, 100);
    }
  }
}

TEST(Interactions, SequentialStructureExists) {
  // Consecutive items share a subcategory much more often than random
  // pairs would.
  CatalogConfig cc;
  cc.num_items = 200;
  Catalog c = Catalog::Generate(cc);
  InteractionConfig ic;
  ic.num_users = 200;
  ic.stay_prob = 0.7;
  auto seqs = GenerateInteractions(c, ic);
  int64_t same = 0, total = 0;
  for (const auto& s : seqs) {
    for (size_t t = 1; t < s.size(); ++t) {
      same += c.item(s[t]).subcategory == c.item(s[t - 1]).subcategory;
      ++total;
    }
  }
  double frac = static_cast<double>(same) / total;
  EXPECT_GT(frac, 0.5);  // far above the ~1/32 random chance
}

TEST(KCore, RemovesRareItemsAndShortUsers) {
  std::vector<std::vector<int>> seqs = {
      {1, 1, 1, 1, 1, 2}, {1, 1, 1, 1, 1}, {3, 3, 3, 3},  // user 2 too short
  };
  auto filtered = KCoreFilter(seqs, 5);
  // Item 2 appears once -> dropped; item 3 appears 4 times -> dropped;
  // user 2 then has 0 items -> dropped; user 0 loses item 2 but keeps 5.
  ASSERT_EQ(filtered.size(), 2u);
  for (const auto& s : filtered) {
    EXPECT_GE(s.size(), 5u);
    for (int it : s) EXPECT_EQ(it, 1);
  }
}

TEST(KCore, IteratesUntilStable) {
  // Removing a user can push an item below threshold, which must cascade.
  std::vector<std::vector<int>> seqs;
  // Five users interacting with item 0 five times each -> survives alone.
  for (int u = 0; u < 5; ++u) seqs.push_back({0, 0, 0, 0, 0});
  // One user carrying all occurrences of item 1 (but only 4 of them).
  seqs.push_back({1, 1, 1, 1, 0});
  auto filtered = KCoreFilter(seqs, 5);
  std::set<int> items;
  for (const auto& s : filtered)
    for (int it : s) items.insert(it);
  EXPECT_TRUE(items.count(0));
  EXPECT_FALSE(items.count(1));
}

TEST(Dataset, MakeProducesValidLeaveOneOut) {
  Dataset d = Dataset::Make(Domain::kGames, 0.3, 11);
  ASSERT_GT(d.num_users(), 20);
  ASSERT_GT(d.num_items(), 20);
  for (int u = 0; u < d.num_users(); ++u) {
    const auto& seq = d.sequence(u);
    ASSERT_GE(seq.size(), 5u);
    EXPECT_EQ(d.TestTarget(u), seq.back());
    EXPECT_EQ(d.ValidTarget(u), seq[seq.size() - 2]);
    auto test_ctx = d.TestContext(u);
    EXPECT_EQ(test_ctx.back(), seq[seq.size() - 2]);
    EXPECT_LE(static_cast<int>(test_ctx.size()), d.max_seq_len());
    auto train_ctx = d.TrainContext(u);
    EXPECT_EQ(train_ctx.back(), seq[seq.size() - 3]);
  }
}

TEST(Dataset, ItemIdsAreDense) {
  Dataset d = Dataset::Make(Domain::kInstruments, 0.3, 5);
  std::set<int> used;
  for (int u = 0; u < d.num_users(); ++u)
    for (int it : d.sequence(u)) used.insert(it);
  // Every dataset item id appears in some sequence and ids are 0..n-1.
  EXPECT_EQ(static_cast<int>(used.size()), d.num_items());
  EXPECT_EQ(*used.begin(), 0);
  EXPECT_EQ(*used.rbegin(), d.num_items() - 1);
}

TEST(Dataset, RemappedItemsKeepText) {
  Dataset d = Dataset::Make(Domain::kArts, 0.3, 3);
  for (int i = 0; i < d.num_items(); ++i) {
    EXPECT_EQ(d.item(i).id, i);
    int orig = d.OriginalId(i);
    EXPECT_EQ(d.item(i).title, d.catalog().item(orig).title);
  }
}

TEST(Dataset, StatsAreConsistent) {
  Dataset d = Dataset::Make(Domain::kGames, 0.3, 11);
  DatasetStats s = d.Stats();
  EXPECT_EQ(s.num_users, d.num_users());
  EXPECT_EQ(s.num_items, d.num_items());
  EXPECT_GE(s.avg_len, 5.0);
  EXPECT_GT(s.sparsity, 0.5);
  EXPECT_LT(s.sparsity, 1.0);
}

TEST(Dataset, AllThreeDomainsBuild) {
  for (Domain dom : {Domain::kInstruments, Domain::kArts, Domain::kGames}) {
    Dataset d = Dataset::Make(dom, 0.25, 21);
    EXPECT_GT(d.num_users(), 10) << DomainName(dom);
    EXPECT_GT(d.num_items(), 10) << DomainName(dom);
  }
}

}  // namespace
}  // namespace lcrec::data

#include <gtest/gtest.h>

#include "core/linalg.h"
#include "text/encoder.h"
#include "text/vocab.h"

namespace lcrec::text {
namespace {

TEST(Tokenize, LowercasesAndSplits) {
  auto toks = Tokenize("Hello, World! 3DS");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0], "hello");
  EXPECT_EQ(toks[1], "world");
  EXPECT_EQ(toks[2], "3ds");
}

TEST(Tokenize, KeepsIndexTokensIntact) {
  auto toks = Tokenize("history: <a_124><b_192> next item");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0], "history");
  EXPECT_EQ(toks[1], "<a_124>");
  EXPECT_EQ(toks[2], "<b_192>");
  EXPECT_EQ(toks[3], "next");
}

TEST(Tokenize, UnclosedAngleBracketIsSkipped) {
  auto toks = Tokenize("a < b");
  // The lone '<' has no closing '>' and is dropped; words survive.
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "a");
  EXPECT_EQ(toks[1], "b");
}

TEST(Tokenize, EmptyString) { EXPECT_TRUE(Tokenize("").empty()); }

TEST(Vocabulary, SpecialTokensReserved) {
  Vocabulary v;
  EXPECT_EQ(v.Id("<pad>"), Vocabulary::kPad);
  EXPECT_EQ(v.Id("<bos>"), Vocabulary::kBos);
  EXPECT_EQ(v.Id("<eos>"), Vocabulary::kEos);
  EXPECT_EQ(v.Id("<unk>"), Vocabulary::kUnk);
  EXPECT_EQ(v.size(), 4);
}

TEST(Vocabulary, AddTokenIsIdempotent) {
  Vocabulary v;
  int a = v.AddToken("guitar");
  int b = v.AddToken("guitar");
  EXPECT_EQ(a, b);
  EXPECT_EQ(v.size(), 5);
}

TEST(Vocabulary, UnknownMapsToUnk) {
  Vocabulary v;
  EXPECT_EQ(v.Id("nonexistent"), Vocabulary::kUnk);
  EXPECT_FALSE(v.Contains("nonexistent"));
}

TEST(Vocabulary, EncodeDecodeRoundTrip) {
  Vocabulary v;
  v.AddToken("red");
  v.AddToken("guitar");
  v.AddToken("<a_3>");
  auto ids = v.Encode("red guitar <a_3>");
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(v.Decode(ids), "red guitar <a_3>");
}

TEST(Vocabulary, DecodeSkipsSpecials) {
  Vocabulary v;
  int w = v.AddToken("word");
  EXPECT_EQ(v.Decode({Vocabulary::kBos, w, Vocabulary::kEos}), "word");
}

TEST(TextEncoder, DeterministicAcrossInstances) {
  TextEncoder e1(32, 99), e2(32, 99);
  core::Tensor a = e1.Encode("red acoustic guitar");
  core::Tensor b = e2.Encode("red acoustic guitar");
  for (int64_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.at(i), b.at(i));
}

TEST(TextEncoder, OutputIsUnitNorm) {
  TextEncoder enc(48);
  core::Tensor e = enc.Encode("some descriptive words here");
  EXPECT_NEAR(e.SquaredNorm(), 1.0f, 1e-4f);
}

TEST(TextEncoder, SimilarTextCloserThanDissimilar) {
  TextEncoder enc(64);
  core::Tensor a = enc.Encode("acoustic guitar rosewood fretboard sustain");
  core::Tensor b = enc.Encode("acoustic guitar maple fretboard pickup");
  core::Tensor c = enc.Encode("watercolor paint pigment lightfast palette");
  core::Tensor sim_ab = core::CosineSimilarity(
      a.Reshaped({1, 64}), b.Reshaped({1, 64}));
  core::Tensor sim_ac = core::CosineSimilarity(
      a.Reshaped({1, 64}), c.Reshaped({1, 64}));
  EXPECT_GT(sim_ab.at(0), sim_ac.at(0) + 0.2f);
}

TEST(TextEncoder, BatchMatchesSingle) {
  TextEncoder enc(16);
  std::vector<std::string> docs = {"first doc", "second doc words"};
  core::Tensor batch = enc.EncodeBatch(docs);
  core::Tensor single = enc.Encode(docs[1]);
  for (int j = 0; j < 16; ++j) EXPECT_EQ(batch.at(1, j), single.at(j));
}

TEST(TextEncoder, EmptyDocIsZero) {
  TextEncoder enc(8);
  core::Tensor e = enc.Encode("...");
  EXPECT_FLOAT_EQ(e.SquaredNorm(), 0.0f);
}

}  // namespace
}  // namespace lcrec::text

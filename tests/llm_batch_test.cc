// Equivalence suite for the batched decode path: ForwardBatch must
// reproduce Forward exactly, and GenerateItemsBatch / BatchEngine must
// reproduce GenerateItems exactly — the serving layer treats batched ==
// sequential as a hard contract.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/graph.h"
#include "llm/batch.h"
#include "llm/generate.h"
#include "llm/minillm.h"
#include "obs/trace.h"
#include "quant/indexing.h"
#include "text/vocab.h"

namespace lcrec::llm {
namespace {

MiniLlmConfig TinyConfig(int vocab = 40) {
  MiniLlmConfig cfg;
  cfg.vocab_size = vocab;
  cfg.d_model = 16;
  cfg.n_heads = 2;
  cfg.n_layers = 2;
  cfg.d_ff = 32;
  cfg.max_seq = 64;
  cfg.seed = 3;
  return cfg;
}

void ExpectSameLogits(const core::Tensor& batched, const core::Tensor& alone,
                      const char* what) {
  ASSERT_EQ(batched.size(), alone.size()) << what;
  for (int64_t j = 0; j < batched.size(); ++j) {
    // Bit-identical, not approximately equal: VecMatBatch keeps VecMat's
    // per-lane accumulation order (and 1e-5 is the documented floor the
    // serving layer may rely on if a platform ever breaks exactness).
    EXPECT_EQ(batched.at(j), alone.at(j)) << what << " logit " << j;
  }
}

TEST(ForwardBatch, RaggedLanesMatchSequentialForward) {
  MiniLlm model(TinyConfig());
  std::vector<std::vector<int>> prompts = {
      {1, 4, 7}, {1, 9}, {1, 5, 6, 8, 10}, {1, 33, 2, 17}};

  // Sequential reference: each lane alone.
  std::vector<MiniLlm::KvCache> ref_caches;
  std::vector<core::Tensor> ref_logits;
  for (const auto& p : prompts) {
    ref_caches.push_back(model.MakeCache());
    ref_logits.push_back(model.Forward(ref_caches.back(), p));
  }

  std::vector<MiniLlm::KvCache> caches(prompts.size());
  std::vector<MiniLlm::KvCache*> cache_ptrs;
  for (auto& c : caches) {
    c = model.MakeCache();
    cache_ptrs.push_back(&c);
  }
  std::vector<core::Tensor> batched = model.ForwardBatch(cache_ptrs, prompts);

  ASSERT_EQ(batched.size(), prompts.size());
  for (size_t b = 0; b < prompts.size(); ++b) {
    ExpectSameLogits(batched[b], ref_logits[b], "prefill");
    EXPECT_EQ(caches[b].length, ref_caches[b].length);
  }

  // Second ragged step: continue two lanes by one token each while the
  // others sit out (the continuous-batching shape).
  core::Tensor r0 = model.Forward(ref_caches[0], {12});
  core::Tensor r2 = model.Forward(ref_caches[2], {3});
  std::vector<core::Tensor> step =
      model.ForwardBatch({&caches[0], &caches[2]}, {{12}, {3}});
  ASSERT_EQ(step.size(), 2u);
  ExpectSameLogits(step[0], r0, "decode lane 0");
  ExpectSameLogits(step[1], r2, "decode lane 2");
  EXPECT_EQ(caches[0].length, ref_caches[0].length);
  EXPECT_EQ(caches[2].length, ref_caches[2].length);
}

TEST(ForwardBatch, SingleLaneIsForward) {
  MiniLlm model(TinyConfig());
  std::vector<int> tokens = {1, 4, 17, 8, 22};
  MiniLlm::KvCache ref = model.MakeCache();
  core::Tensor want = model.Forward(ref, tokens);
  MiniLlm::KvCache cache = model.MakeCache();
  std::vector<core::Tensor> got = model.ForwardBatch({&cache}, {tokens});
  ASSERT_EQ(got.size(), 1u);
  ExpectSameLogits(got[0], want, "single lane");
}

TEST(ForwardBatch, EmptyBatchReturnsEmpty) {
  MiniLlm model(TinyConfig());
  EXPECT_TRUE(model.ForwardBatch({}, {}).empty());
}

class BatchGenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::Rng rng(5);
    indexing_ = quant::ItemIndexing::Random(12, 3, 4, rng);
    trie_ = std::make_unique<quant::PrefixTrie>(indexing_);
    for (const std::string& tok : indexing_.AllTokenStrings()) {
      vocab_.AddToken(tok);
    }
    model_ = std::make_unique<MiniLlm>(TinyConfig(vocab_.size()));
    token_map_ = std::make_unique<IndexTokenMap>(indexing_, vocab_);
  }

  std::vector<std::vector<int>> Prompts() const {
    // Distinct prompts (different KV states) sharing one trie/token map.
    return {{text::Vocabulary::kBos},
            {text::Vocabulary::kBos, 4},
            {text::Vocabulary::kBos, 5, 6},
            {text::Vocabulary::kBos, 7, 4, 5}};
  }

  text::Vocabulary vocab_;
  quant::ItemIndexing indexing_ = quant::ItemIndexing::VanillaId(1);
  std::unique_ptr<quant::PrefixTrie> trie_;
  std::unique_ptr<MiniLlm> model_;
  std::unique_ptr<IndexTokenMap> token_map_;
};

void ExpectSameRanking(const std::vector<ScoredItem>& got,
                       const std::vector<ScoredItem>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].item, want[i].item) << "rank " << i;
    EXPECT_EQ(got[i].logprob, want[i].logprob) << "rank " << i;
  }
}

TEST_F(BatchGenTest, JointDecodeMatchesSequentialPerPrompt) {
  std::vector<std::vector<int>> prompts = Prompts();
  auto batched = GenerateItemsBatch(*model_, prompts, *trie_, *token_map_,
                                    /*beam=*/8, /*top_n=*/6);
  ASSERT_EQ(batched.size(), prompts.size());
  for (size_t i = 0; i < prompts.size(); ++i) {
    auto seq = GenerateItems(*model_, prompts[i], *trie_, *token_map_, 8, 6);
    ExpectSameRanking(batched[i], seq);
  }
}

TEST_F(BatchGenTest, MidFlightAdmissionDoesNotPerturbResults) {
  // Continuous batching: a request admitted while another is mid-decode
  // must produce the same ranking as either alone.
  std::vector<std::vector<int>> prompts = Prompts();
  BatchEngine engine(*model_, *trie_, *token_map_, /*beam=*/8);
  engine.Admit(0, prompts[0], 6);
  std::vector<BatchResult> results;
  auto drain = [&](int ticks) {
    for (int t = 0; t < ticks && !engine.Idle(); ++t) {
      for (BatchResult& r : engine.Tick()) results.push_back(std::move(r));
    }
  };
  drain(2);  // prompt 0 is now mid-decode
  ASSERT_FALSE(engine.Idle());
  engine.Admit(1, prompts[1], 6);
  drain(1);
  engine.Admit(2, prompts[2], 6);
  drain(1000);  // run everything to completion
  EXPECT_TRUE(engine.Idle());
  ASSERT_EQ(results.size(), 3u);
  std::sort(results.begin(), results.end(),
            [](const BatchResult& a, const BatchResult& b) {
              return a.tag < b.tag;
            });
  for (size_t i = 0; i < results.size(); ++i) {
    auto seq = GenerateItems(*model_, prompts[i], *trie_, *token_map_, 8, 6);
    ExpectSameRanking(results[i].items, seq);
  }
}

TEST_F(BatchGenTest, TieBreaksRankTiedItemsByAscendingId) {
  // Zeroing the (tied) token-embedding table makes every logit exactly
  // 0, so every candidate and every finished item has an identical
  // log-probability: the ranking is decided purely by the tie-break
  // contract (item id ascending; beam/code ascending inside the search).
  core::Parameter* emb = model_->params().Find("tok_emb");
  ASSERT_NE(emb, nullptr);
  for (int64_t i = 0; i < emb->value.size(); ++i) emb->value.at(i) = 0.0f;

  auto run = [&] {
    return GenerateItems(*model_, {text::Vocabulary::kBos}, *trie_,
                         *token_map_, /*beam=*/12, /*top_n=*/12);
  };
  auto first = run();
  ASSERT_FALSE(first.empty());
  for (size_t i = 0; i + 1 < first.size(); ++i) {
    EXPECT_EQ(first[i].logprob, first[i + 1].logprob) << "not a tie";
    EXPECT_LT(first[i].item, first[i + 1].item) << "tie not broken by id";
  }
  // Deterministic across runs and across the batched path.
  ExpectSameRanking(run(), first);
  auto batched = GenerateItemsBatch(*model_, {{text::Vocabulary::kBos}},
                                    *trie_, *token_map_, 12, 12);
  ASSERT_EQ(batched.size(), 1u);
  ExpectSameRanking(batched[0], first);
}

TEST_F(BatchGenTest, ExpiredDeadlineRetiresLanePartialBeforeForward) {
  // A lane whose deadline has already passed must be retired as partial
  // on the next Tick() without paying any forward work — the engine's
  // side of the server's deadline-budget contract.
  BatchEngine engine(*model_, *trie_, *token_map_, /*beam=*/8);
  LaneOptions lane;
  // NowMicros is process-relative, so "1ms ago" could be negative (= no
  // deadline) in a fresh process: take "now" and let it pass instead.
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  lane.deadline_us = obs::NowMicros();
  engine.Admit(0, {text::Vocabulary::kBos}, 6, lane);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));

  std::vector<BatchResult> results = engine.Tick();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].partial);
  EXPECT_TRUE(results[0].items.empty()) << "no beam ever finished";
  EXPECT_EQ(results[0].ticks, 0) << "retired before any forward";
  EXPECT_TRUE(engine.Idle());
}

TEST_F(BatchGenTest, BeamCapMatchesSequentialAtTheCappedWidth) {
  // A capped lane is the sequential decoder at the capped width — the
  // bit-identical contract holds at EVERY beam, not just the engine's —
  // and an uncapped lane in the same batch is unperturbed by it.
  std::vector<std::vector<int>> prompts = Prompts();
  BatchEngine engine(*model_, *trie_, *token_map_, /*beam=*/8);
  LaneOptions capped;
  capped.beam_cap = 2;
  engine.Admit(0, prompts[0], 6, capped);
  engine.Admit(1, prompts[1], 6);  // full engine beam alongside

  std::vector<BatchResult> results;
  for (int t = 0; t < 1000 && !engine.Idle(); ++t) {
    for (BatchResult& r : engine.Tick()) results.push_back(std::move(r));
  }
  EXPECT_TRUE(engine.Idle());
  ASSERT_EQ(results.size(), 2u);
  std::sort(results.begin(), results.end(),
            [](const BatchResult& a, const BatchResult& b) {
              return a.tag < b.tag;
            });

  EXPECT_FALSE(results[0].partial);
  EXPECT_EQ(results[0].beam_used, 2);
  ExpectSameRanking(results[0].items,
                    GenerateItems(*model_, prompts[0], *trie_, *token_map_,
                                  /*beam=*/2, /*top_n=*/6));
  EXPECT_FALSE(results[1].partial);
  EXPECT_EQ(results[1].beam_used, 8);
  ExpectSameRanking(results[1].items,
                    GenerateItems(*model_, prompts[1], *trie_, *token_map_,
                                  /*beam=*/8, /*top_n=*/6));
}

}  // namespace
}  // namespace lcrec::llm

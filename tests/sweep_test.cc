// Cross-module parameterized property sweeps that exercise the pipeline
// pieces without any training (cheap, wide coverage).

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "quant/indexing.h"
#include "rec/metrics.h"
#include "tasks/instructions.h"
#include "text/encoder.h"
#include "text/vocab.h"

namespace lcrec {
namespace {

// ---------------------------------------------------------------------------
// Dataset invariants over (domain, scale, seed).
// ---------------------------------------------------------------------------

using DataCase = std::tuple<data::Domain, double, uint64_t>;

class DatasetSweep : public ::testing::TestWithParam<DataCase> {};

TEST_P(DatasetSweep, LeaveOneOutInvariants) {
  auto [domain, scale, seed] = GetParam();
  data::Dataset d = data::Dataset::Make(domain, scale, seed);
  ASSERT_GT(d.num_users(), 0);
  ASSERT_GT(d.num_items(), 0);
  for (int u = 0; u < d.num_users(); ++u) {
    const auto& seq = d.sequence(u);
    // 5-core: every user keeps >= 5 interactions.
    ASSERT_GE(seq.size(), 5u);
    // Split structure: train + valid + test partition the sequence.
    auto train = d.TrainItems(u);
    EXPECT_EQ(train.size() + 2, seq.size());
    EXPECT_EQ(d.ValidTarget(u), seq[seq.size() - 2]);
    EXPECT_EQ(d.TestTarget(u), seq.back());
    // Contexts are suffixes bounded by max_seq_len.
    auto ctx = d.TestContext(u);
    EXPECT_LE(static_cast<int>(ctx.size()), d.max_seq_len());
    EXPECT_TRUE(std::equal(ctx.rbegin(), ctx.rend(), seq.rbegin() + 1));
    for (int it : seq) {
      EXPECT_GE(it, 0);
      EXPECT_LT(it, d.num_items());
    }
  }
}

TEST_P(DatasetSweep, EveryItemHasFiveOccurrences) {
  auto [domain, scale, seed] = GetParam();
  data::Dataset d = data::Dataset::Make(domain, scale, seed);
  std::map<int, int> counts;
  for (int u = 0; u < d.num_users(); ++u) {
    for (int it : d.sequence(u)) ++counts[it];
  }
  for (const auto& [item, count] : counts) {
    (void)item;
    EXPECT_GE(count, 5);
  }
}

TEST_P(DatasetSweep, TextUtilitiesCoverEveryItem) {
  auto [domain, scale, seed] = GetParam();
  data::Dataset d = data::Dataset::Make(domain, scale, seed);
  core::Rng rng(seed);
  for (int i = 0; i < d.num_items(); ++i) {
    EXPECT_FALSE(d.ItemDocument(i).empty());
    EXPECT_FALSE(d.IntentionFor(i, rng).empty());
    EXPECT_FALSE(d.ReviewFor(i, rng).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Domains, DatasetSweep,
    ::testing::Combine(::testing::Values(data::Domain::kInstruments,
                                         data::Domain::kArts,
                                         data::Domain::kGames),
                       ::testing::Values(0.2, 0.4),
                       ::testing::Values(7u, 19u)));

// ---------------------------------------------------------------------------
// Indexing scheme invariants over (levels, codebook size).
// ---------------------------------------------------------------------------

using IndexCase = std::tuple<int, int>;

class RandomIndexingSweep : public ::testing::TestWithParam<IndexCase> {};

TEST_P(RandomIndexingSweep, UniqueAndTrieConsistent) {
  auto [levels, k] = GetParam();
  int items = std::min(80, k * k);  // keep the space feasible
  core::Rng rng(static_cast<uint64_t>(levels * 100 + k));
  quant::ItemIndexing idx = quant::ItemIndexing::Random(items, levels, k, rng);
  EXPECT_EQ(idx.ConflictCount(), 0);
  quant::PrefixTrie trie(idx);
  std::set<std::string> token_texts;
  for (int i = 0; i < items; ++i) {
    EXPECT_EQ(trie.ItemAt(idx.codes(i)), i);
    EXPECT_TRUE(trie.IsValidPrefix(idx.codes(i)));
    token_texts.insert(idx.ItemTokenText(i));
  }
  // Token texts are unique per item (decoding is unambiguous).
  EXPECT_EQ(token_texts.size(), static_cast<size_t>(items));
  // Walking any maximal path ends at an item.
  std::vector<int> prefix;
  while (true) {
    auto next = trie.NextCodes(prefix);
    if (next.empty()) break;
    prefix.push_back(next[0]);
  }
  EXPECT_GE(trie.ItemAt(prefix), 0);
}

INSTANTIATE_TEST_SUITE_P(Grid, RandomIndexingSweep,
                         ::testing::Combine(::testing::Values(2, 3, 5),
                                            ::testing::Values(4, 9, 16)));

// ---------------------------------------------------------------------------
// Metrics edge cases.
// ---------------------------------------------------------------------------

TEST(MetricsEdge, EmptyAccumulatorIsZero) {
  rec::RankingMetrics m;
  rec::RankingMetrics mean = m.Mean();
  EXPECT_EQ(mean.count, 0);
  EXPECT_EQ(mean.hr10, 0.0);
}

TEST(MetricsEdge, RankExactlyAtBoundary) {
  rec::RankingMetrics m;
  m.AddRank(4);  // last slot of top-5
  rec::RankingMetrics mean = m.Mean();
  EXPECT_EQ(mean.hr5, 1.0);
  m.AddRank(5);  // first slot outside top-5
  mean = m.Mean();
  EXPECT_EQ(mean.hr5, 0.5);
  EXPECT_EQ(mean.hr10, 1.0);
}

TEST(MetricsEdge, SingleItemScores) {
  std::vector<float> scores = {0.3f};
  EXPECT_EQ(rec::RankOf(scores, 0), 0);
}

// ---------------------------------------------------------------------------
// Instruction rendering over all mixtures (no training).
// ---------------------------------------------------------------------------

class MixtureSweep : public ::testing::TestWithParam<int> {};

TEST_P(MixtureSweep, EveryExampleHasPromptAndResponse) {
  int bits = GetParam();
  tasks::TaskMixture mix;
  mix.mut = bits & 1;
  mix.asy = bits & 2;
  mix.ite = bits & 4;
  mix.per = bits & 8;
  static const data::Dataset* dataset = new data::Dataset(
      data::Dataset::Make(data::Domain::kArts, 0.2, 51));
  static quant::ItemIndexing* indexing = [] {
    core::Rng rng(9);
    return new quant::ItemIndexing(
        quant::ItemIndexing::Random(200, 4, 24, rng));
  }();
  static text::Vocabulary* vocab = nullptr;
  static tasks::InstructionBuilder* builder = nullptr;
  if (builder == nullptr) {
    vocab = new text::Vocabulary();
    builder = new tasks::InstructionBuilder(dataset, indexing, vocab);
    builder->RegisterVocabulary();
  }
  core::Rng rng(static_cast<uint64_t>(bits));
  auto examples = builder->BuildEpoch(mix, rng);
  ASSERT_FALSE(examples.empty());
  for (const auto& ex : examples) {
    EXPECT_FALSE(ex.prompt.empty());
    EXPECT_FALSE(ex.response.empty());
    EXPECT_FALSE(ex.task.empty());
    for (int id : ex.prompt) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, vocab->size());
    }
    for (int id : ex.response) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, vocab->size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMixtures, MixtureSweep, ::testing::Range(0, 16));

// ---------------------------------------------------------------------------
// Text encoder determinism over dimensions.
// ---------------------------------------------------------------------------

class EncoderDimSweep : public ::testing::TestWithParam<int> {};

TEST_P(EncoderDimSweep, UnitNormAndDimension) {
  int dim = GetParam();
  text::TextEncoder enc(dim, 77);
  core::Tensor e = enc.Encode("electric guitar with maple fretboard");
  EXPECT_EQ(e.size(), dim);
  EXPECT_NEAR(e.SquaredNorm(), 1.0f, 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Dims, EncoderDimSweep,
                         ::testing::Values(8, 16, 48, 128));

}  // namespace
}  // namespace lcrec

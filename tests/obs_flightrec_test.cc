// Flight recorder (obs/flightrec.h), request timelines (obs/timeline.h),
// and TraceRecorder async spans under concurrent writers: per-thread
// event ordering, wraparound at kRingSlots, no lost events up to ring
// capacity, JSONL dump shape, and gap-free stage accounting. This suite
// runs under TSan (scripts/check_sanitize.sh tsan) — the recorder's
// claim is precisely that Record()/Snapshot() race-free by construction.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flightrec.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace {

using namespace lcrec;

TEST(FlightRecorderTest, RecordRoundTripsThroughSnapshot) {
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();
  int64_t before = fr.recorded();
  fr.Record(obs::FrKind::kMark, "roundtrip_a", 7, -3);
  fr.Record(obs::FrKind::kShed, "roundtrip_b", 42, 0);
  EXPECT_EQ(fr.recorded(), before + 2);

  std::vector<obs::FrEvent> events = fr.Snapshot();
  auto find = [&events](const char* detail) -> const obs::FrEvent* {
    for (const obs::FrEvent& e : events) {
      if (std::string(e.detail) == detail) return &e;
    }
    return nullptr;
  };
  const obs::FrEvent* a = find("roundtrip_a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->kind, obs::FrKind::kMark);
  EXPECT_EQ(a->a, 7);
  EXPECT_EQ(a->b, -3);
  EXPECT_EQ(a->tid, obs::CurrentThreadId());
  EXPECT_GT(a->ts_us, 0.0);
  const obs::FrEvent* b = find("roundtrip_b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->kind, obs::FrKind::kShed);
  EXPECT_GE(b->ts_us, a->ts_us);
}

TEST(FlightRecorderTest, SnapshotIsSortedByTimestamp) {
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();
  for (int i = 0; i < 20; ++i) fr.Record(obs::FrKind::kMark, "sorted", i, 0);
  std::vector<obs::FrEvent> events = fr.Snapshot();
  ASSERT_FALSE(events.empty());
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
}

TEST(FlightRecorderTest, WraparoundKeepsTheNewestEvents) {
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();
  const int total = static_cast<int>(obs::FlightRecorder::kRingSlots) + 50;
  // A dedicated thread gets a fresh ring, so this test controls exactly
  // what the ring holds.
  std::thread writer([&fr, total] {
    for (int i = 0; i < total; ++i) {
      fr.Record(obs::FrKind::kMark, "wrap", i, 0);
    }
  });
  writer.join();
  std::vector<obs::FrEvent> events = fr.Snapshot();
  std::set<int64_t> seen;
  for (const obs::FrEvent& e : events) {
    if (std::string(e.detail) == "wrap") seen.insert(e.a);
  }
  // Exactly the last kRingSlots survive: [50, total).
  EXPECT_EQ(seen.size(), obs::FlightRecorder::kRingSlots);
  EXPECT_EQ(seen.count(49), 0u) << "oldest events must be overwritten";
  for (int i = 50; i < total; ++i) {
    EXPECT_EQ(seen.count(i), 1u) << "lost event " << i;
  }
}

TEST(FlightRecorderTest, ConcurrentWritersLoseNothingUnderCapacity) {
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();
  // Each thread writes fewer events than one ring holds, so every event
  // must survive — the rings are per-thread, writers never contend.
  const int threads = 4;
  const int per_thread = 100;
  int64_t before = fr.recorded();
  std::vector<std::thread> writers;
  for (int t = 0; t < threads; ++t) {
    writers.emplace_back([&fr, t] {
      for (int i = 0; i < per_thread; ++i) {
        fr.Record(obs::FrKind::kBatchTick, "concurrent", t, i);
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(fr.recorded(), before + threads * per_thread);

  // Per writer: all events present and in program order (per-thread ts
  // nondecreasing, payload b strictly increasing).
  std::vector<obs::FrEvent> events = fr.Snapshot();
  for (int t = 0; t < threads; ++t) {
    std::vector<obs::FrEvent> mine;
    for (const obs::FrEvent& e : events) {
      if (std::string(e.detail) == "concurrent" && e.a == t) mine.push_back(e);
    }
    ASSERT_EQ(mine.size(), static_cast<size_t>(per_thread)) << "writer " << t;
    std::sort(mine.begin(), mine.end(),
              [](const obs::FrEvent& x, const obs::FrEvent& y) {
                return x.b < y.b;
              });
    for (int i = 0; i < per_thread; ++i) {
      EXPECT_EQ(mine[static_cast<size_t>(i)].b, i);
      if (i > 0) {
        EXPECT_LE(mine[static_cast<size_t>(i - 1)].ts_us,
                  mine[static_cast<size_t>(i)].ts_us);
      }
    }
  }
}

TEST(FlightRecorderTest, SnapshotRacesWritersSafely) {
  // The crash-dump path reads while serving threads write; TSan checks
  // the atomics discipline, the assertions check well-formedness of
  // whatever the reader observed.
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&fr, &stop] {
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        fr.Record(obs::FrKind::kShed, "race_shed", i, 0);
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    std::vector<obs::FrEvent> events = fr.Snapshot();
    for (const obs::FrEvent& e : events) {
      EXPECT_NE(e.detail, nullptr);
      EXPECT_NE(e.kind, obs::FrKind::kNone);
      EXPECT_GE(e.tid, 1);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();
}

TEST(FlightRecorderTest, WriteJsonlEmitsOneObjectPerEvent) {
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();
  fr.Record(obs::FrKind::kHealthTrip, "jsonl_probe", 1, 2);
  std::ostringstream out;
  fr.WriteJsonl(out);
  std::istringstream in(out.str());
  std::string line;
  int lines = 0;
  bool saw_probe = false;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"ts_us\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"tid\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"kind\":\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"detail\":\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"a\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"b\":"), std::string::npos) << line;
    if (line.find("\"kind\":\"health_trip\",\"detail\":\"jsonl_probe\","
                  "\"a\":1,\"b\":2") != std::string::npos) {
      saw_probe = true;
    }
  }
  EXPECT_GT(lines, 0);
  EXPECT_TRUE(saw_probe) << out.str();
}

TEST(FlightRecorderTest, KindNamesAreStable) {
  EXPECT_STREQ(obs::FrKindName(obs::FrKind::kShed), "shed");
  EXPECT_STREQ(obs::FrKindName(obs::FrKind::kSlowRequest), "slow_request");
  EXPECT_STREQ(obs::FrKindName(obs::FrKind::kHealthTrip), "health_trip");
  EXPECT_STREQ(obs::FrKindName(obs::FrKind::kBatchTick), "batch_tick");
  EXPECT_STREQ(obs::FrKindName(obs::FrKind::kCheckFail), "check_fail");
  EXPECT_STREQ(obs::FrKindName(obs::FrKind::kMark), "mark");
}

// --- RequestTimeline --------------------------------------------------------

TEST(RequestTimelineTest, StagesTileTheRequestExactly) {
  obs::RequestTimeline tl;
  double t0 = obs::NowMicros();
  tl.Begin(obs::NextRequestId(), /*sampled=*/false, "build", t0);
  tl.Mark("queue_wait");
  tl.Mark("decode");
  tl.Mark("respond");
  tl.Finish();
  ASSERT_EQ(tl.stages().size(), 4u);
  EXPECT_STREQ(tl.stages()[0].stage, "build");
  EXPECT_STREQ(tl.stages()[3].stage, "respond");
  // Gap-free: each stage starts exactly where the previous one ended,
  // so the durations sum to end - begin with zero slack.
  double walk = t0;
  for (const obs::StageSpan& s : tl.stages()) {
    EXPECT_DOUBLE_EQ(s.start_us, walk);
    EXPECT_GE(s.dur_us, 0.0);
    walk += s.dur_us;
  }
  double end = tl.stages().back().start_us + tl.stages().back().dur_us;
  EXPECT_DOUBLE_EQ(tl.TotalUs(), end - t0);
  EXPECT_TRUE(tl.finished());
}

TEST(RequestTimelineTest, FinishIsIdempotent) {
  obs::RequestTimeline tl;
  tl.Begin(1, false, "build", obs::NowMicros());
  tl.Finish();
  double dur = tl.stages().back().dur_us;
  tl.Finish();
  EXPECT_DOUBLE_EQ(tl.stages().back().dur_us, dur);
}

TEST(RequestTimelineTest, RequestIdsAreUniqueAcrossThreads) {
  const int threads = 4;
  const int per_thread = 500;
  std::vector<std::vector<uint64_t>> ids(threads);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&ids, t] {
      for (int i = 0; i < per_thread; ++i) {
        ids[static_cast<size_t>(t)].push_back(obs::NextRequestId());
      }
    });
  }
  for (auto& w : workers) w.join();
  std::set<uint64_t> all;
  for (const auto& per : ids) all.insert(per.begin(), per.end());
  EXPECT_EQ(all.size(), static_cast<size_t>(threads * per_thread));
}

TEST(RequestTimelineTest, EmitAsyncSpansProducesMatchedPairs) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Clear();
  rec.SetEnabled(true);
  obs::RequestTimeline tl;
  uint64_t id = obs::NextRequestId();
  tl.Begin(id, /*sampled=*/true, "build", obs::NowMicros());
  tl.Mark("decode");
  tl.Finish();
  tl.EmitAsyncSpans();
  rec.SetEnabled(false);

  int begins = 0, ends = 0, req_spans = 0;
  for (const obs::TraceEvent& e : rec.Events()) {
    if (e.async_id != id) continue;
    if (e.phase == 'b') ++begins;
    if (e.phase == 'e') ++ends;
    if (e.name == "req") ++req_spans;
  }
  // One enclosing "req" pair plus one pair per stage.
  EXPECT_EQ(begins, 3);
  EXPECT_EQ(ends, 3);
  EXPECT_EQ(req_spans, 2);
  rec.Clear();
}

TEST(RequestTimelineTest, UnsampledTimelineEmitsNothing) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Clear();
  rec.SetEnabled(true);
  obs::RequestTimeline tl;
  uint64_t id = obs::NextRequestId();
  tl.Begin(id, /*sampled=*/false, "build", obs::NowMicros());
  tl.Finish();
  tl.EmitAsyncSpans();
  rec.SetEnabled(false);
  for (const obs::TraceEvent& e : rec.Events()) {
    EXPECT_NE(e.async_id, id);
  }
  rec.Clear();
}

TEST(RequestTimelineTest, ConcurrentEmittersDontCorruptTheRecorder) {
  // Many request timelines finishing on different threads all emit into
  // the one global recorder; the recorder's mutex must keep the event
  // list coherent (checked structurally here, for races by TSan).
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Clear();
  rec.SetEnabled(true);
  const int threads = 4;
  const int per_thread = 25;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([per_thread] {
      for (int i = 0; i < per_thread; ++i) {
        obs::RequestTimeline tl;
        tl.Begin(obs::NextRequestId(), true, "build", obs::NowMicros());
        tl.Mark("decode");
        tl.Finish();
        tl.EmitAsyncSpans();
      }
    });
  }
  for (auto& w : workers) w.join();
  rec.SetEnabled(false);
  // 6 events per timeline (req + 2 stages, b/e each).
  std::vector<obs::TraceEvent> events = rec.Events();
  size_t async_events = 0;
  for (const obs::TraceEvent& e : events) {
    if (e.phase == 'b' || e.phase == 'e') ++async_events;
  }
  EXPECT_EQ(async_events, static_cast<size_t>(threads * per_thread * 6));
  rec.Clear();
}

TEST(RequestTimelineTest, ChromeTraceRendersAsyncPhases) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Clear();
  rec.SetEnabled(true);
  obs::RequestTimeline tl;
  tl.Begin(obs::NextRequestId(), true, "build", obs::NowMicros());
  tl.Finish();
  tl.EmitAsyncSpans();
  rec.SetEnabled(false);
  std::ostringstream out;
  rec.WriteChromeTrace(out);
  std::string json = out.str();
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"lcrec.req\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":"), std::string::npos);
  rec.Clear();
}

TEST(RequestTimelineTest, SummaryNamesEveryStage) {
  obs::RequestTimeline tl;
  tl.Begin(1, false, "build", obs::NowMicros());
  tl.Mark("decode");
  tl.Finish();
  std::string s = tl.Summary();
  EXPECT_NE(s.find("build "), std::string::npos);
  EXPECT_NE(s.find(" | decode "), std::string::npos);
}

}  // namespace

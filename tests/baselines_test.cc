#include <memory>

#include <gtest/gtest.h>

#include "baselines/bert4rec.h"
#include "baselines/caser.h"
#include "baselines/dssm.h"
#include "baselines/fdsa.h"
#include "baselines/fmlp.h"
#include "baselines/gru4rec.h"
#include "baselines/hgn.h"
#include "baselines/s3rec.h"
#include "baselines/sasrec.h"
#include "baselines/tiger.h"
#include "rec/metrics.h"
#include "rec/recommender.h"

namespace lcrec::baselines {
namespace {

/// Shared tiny dataset for all learning-sanity tests.
const data::Dataset& TinyData() {
  static const data::Dataset* d =
      new data::Dataset(data::Dataset::Make(data::Domain::kGames, 0.2, 41));
  return *d;
}

BaselineConfig QuickConfig() {
  BaselineConfig cfg;
  cfg.d_model = 32;
  cfg.d_ff = 64;
  cfg.epochs = 12;
  cfg.seed = 7;
  return cfg;
}

/// A baseline "learns" if its HR@10 clearly beats random full ranking.
void ExpectLearns(rec::ScoringRecommender& model, double factor = 2.0) {
  const data::Dataset& d = TinyData();
  model.Fit(d);
  rec::RankingMetrics m = rec::EvaluateScoring(model, d, 80);
  double random_hr10 = 10.0 / d.num_items();
  EXPECT_GT(m.hr10, random_hr10 * factor)
      << model.name() << " HR@10=" << m.hr10 << " random=" << random_hr10;
  // Scores must cover the whole catalog.
  auto scores = model.ScoreAllItems(d.TestContext(0));
  EXPECT_EQ(static_cast<int>(scores.size()), d.num_items());
}

TEST(Baselines, Gru4RecLearns) {
  Gru4Rec m(QuickConfig());
  ExpectLearns(m);
}

TEST(Baselines, SasRecLearns) {
  SasRec m(QuickConfig());
  ExpectLearns(m);
}

TEST(Baselines, Bert4RecLearns) {
  Bert4Rec m(QuickConfig());
  ExpectLearns(m);
}

TEST(Baselines, CaserLearns) {
  Caser m(QuickConfig());
  ExpectLearns(m, 1.5);
}

TEST(Baselines, HgnLearns) {
  Hgn m(QuickConfig());
  ExpectLearns(m, 1.5);
}

TEST(Baselines, FmlpLearns) {
  FmlpRec m(QuickConfig());
  ExpectLearns(m, 1.5);
}

TEST(Baselines, FdsaLearns) {
  Fdsa m(QuickConfig());
  ExpectLearns(m);
}

TEST(Baselines, S3RecLearns) {
  BaselineConfig cfg = QuickConfig();
  S3Rec m(cfg, /*pretrain_epochs=*/4);
  ExpectLearns(m);
}

TEST(Baselines, SasRecExposesItemEmbeddings) {
  SasRec m(QuickConfig());
  m.Fit(TinyData());
  const core::Tensor* emb = m.ItemEmbeddings();
  ASSERT_NE(emb, nullptr);
  EXPECT_EQ(emb->rows(), TinyData().num_items());
}

TEST(Baselines, TigerLearnsAndGeneratesValidItems) {
  Tiger::Options opt;
  opt.epochs = 8;
  opt.rqvae_epochs = 60;
  Tiger m(opt);
  const data::Dataset& d = TinyData();
  m.Fit(d);
  EXPECT_EQ(m.name(), "TIGER");
  auto ids = m.TopKIds(d.TestContext(0), 10);
  ASSERT_FALSE(ids.empty());
  for (int id : ids) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, d.num_items());
  }
  rec::RankingMetrics metrics = rec::EvaluateGenerative(
      [&](const std::vector<int>& h) { return m.TopKIds(h, 10); }, d, 60);
  EXPECT_GT(metrics.hr10, 10.0 / d.num_items());
}

TEST(Baselines, P5CidUsesCollaborativeIndices) {
  Tiger::Options opt;
  opt.source = Tiger::IndexSource::kCollaborative;
  opt.epochs = 6;
  opt.rqvae_epochs = 60;
  Tiger m(opt);
  const data::Dataset& d = TinyData();
  m.Fit(d);
  EXPECT_EQ(m.name(), "P5-CID");
  EXPECT_EQ(m.indexing().num_items(), d.num_items());
  EXPECT_EQ(m.indexing().ConflictCount(), 0);
  auto ids = m.TopKIds(d.TestContext(1), 5);
  EXPECT_FALSE(ids.empty());
}

TEST(Baselines, DssmRetrievesIntendedItems) {
  Dssm::Options opt;
  opt.epochs = 15;
  Dssm m(opt);
  const data::Dataset& d = TinyData();
  m.Fit(d);
  // Queries generated from test targets should rank the target far above
  // random on average.
  core::Rng rng(9);
  rec::RankingMetrics acc;
  for (int u = 0; u < std::min(60, d.num_users()); ++u) {
    int target = d.TestTarget(u);
    auto scores = m.ScoreQuery(d.IntentionFor(target, rng));
    acc.AddRank(rec::RankOf(scores, target));
  }
  rec::RankingMetrics mean = acc.Mean();
  EXPECT_GT(mean.hr10, 3.0 * 10.0 / d.num_items());
}

}  // namespace
}  // namespace lcrec::baselines

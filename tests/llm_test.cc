#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "llm/generate.h"
#include "llm/minillm.h"
#include "llm/trainer.h"
#include "quant/indexing.h"
#include "text/vocab.h"

namespace lcrec::llm {
namespace {

MiniLlmConfig TinyConfig(int vocab = 40) {
  MiniLlmConfig cfg;
  cfg.vocab_size = vocab;
  cfg.d_model = 16;
  cfg.n_heads = 2;
  cfg.n_layers = 2;
  cfg.d_ff = 32;
  cfg.max_seq = 64;
  cfg.seed = 3;
  return cfg;
}

TEST(MiniLlm, LogitsShape) {
  MiniLlm model(TinyConfig());
  core::Graph g;
  core::VarId logits = model.BuildLogits(g, {4, 5, 6}, false);
  EXPECT_EQ(g.val(logits).rows(), 3);
  EXPECT_EQ(g.val(logits).cols(), 40);
}

TEST(MiniLlm, CausalityFutureTokensDoNotAffectPastLogits) {
  MiniLlm model(TinyConfig());
  core::Graph g1, g2;
  core::VarId a = model.BuildLogits(g1, {4, 5, 6, 7}, false);
  core::VarId b = model.BuildLogits(g2, {4, 5, 6, 9}, false);  // last differs
  // Logits at positions 0..2 must be identical.
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 40; ++j) {
      EXPECT_FLOAT_EQ(g1.val(a).at(i, j), g2.val(b).at(i, j))
          << "position " << i;
    }
  }
}

TEST(MiniLlm, KvCacheForwardMatchesGraphForward) {
  MiniLlm model(TinyConfig());
  std::vector<int> tokens = {4, 17, 8, 22, 5, 31};
  core::Graph g;
  core::VarId logits = model.BuildLogits(g, tokens, false);
  // Incremental forward, one token at a time.
  MiniLlm::KvCache cache = model.MakeCache();
  for (size_t t = 0; t < tokens.size(); ++t) {
    core::Tensor step = model.Forward(cache, {tokens[t]});
    for (int64_t j = 0; j < 40; ++j) {
      EXPECT_NEAR(step.at(j), g.val(logits).at(static_cast<int64_t>(t), j),
                  1e-3f)
          << "pos " << t << " tok " << j;
    }
  }
}

TEST(MiniLlm, KvCacheChunkedEqualsTokenByToken) {
  MiniLlm model(TinyConfig());
  std::vector<int> tokens = {4, 17, 8, 22, 5};
  MiniLlm::KvCache c1 = model.MakeCache();
  core::Tensor all = model.Forward(c1, tokens, /*all_logits=*/true);
  MiniLlm::KvCache c2 = model.MakeCache();
  core::Tensor last;
  for (int tok : tokens) last = model.Forward(c2, {tok});
  for (int64_t j = 0; j < 40; ++j) {
    EXPECT_NEAR(all.at(4, j), last.at(j), 1e-4f);
  }
  EXPECT_EQ(c1.length, c2.length);
}

TEST(MiniLlm, NumParametersPositiveAndTied) {
  MiniLlm model(TinyConfig());
  // Tied head: vocab*d (embeddings) counted once.
  int64_t expected_emb = 40 * 16 + 64 * 16;  // tok + pos
  EXPECT_GT(model.NumParameters(), expected_emb);
  EXPECT_EQ(model.TokenEmbeddings().rows(), 40);
}

TEST(Trainer, AssembleTokensMasksPrompt) {
  TrainExample ex;
  ex.prompt = {10, 11, 12};
  ex.response = {20, 21};
  std::vector<int> tokens, targets;
  LlmTrainer::AssembleTokens(ex, 64, &tokens, &targets);
  // tokens: <bos> 10 11 12 20 21 <eos>
  ASSERT_EQ(tokens.size(), 7u);
  EXPECT_EQ(tokens[0], text::Vocabulary::kBos);
  EXPECT_EQ(tokens[6], text::Vocabulary::kEos);
  // Positions 0..2 (predicting prompt) ignored; 3 predicts 20; 4 predicts
  // 21; 5 predicts eos; 6 (last) ignored.
  EXPECT_EQ(targets[0], core::Graph::kIgnore);
  EXPECT_EQ(targets[2], core::Graph::kIgnore);
  EXPECT_EQ(targets[3], 20);
  EXPECT_EQ(targets[4], 21);
  EXPECT_EQ(targets[5], text::Vocabulary::kEos);
  EXPECT_EQ(targets[6], core::Graph::kIgnore);
}

TEST(Trainer, AssembleTokensTruncatesLongPromptFromLeft) {
  TrainExample ex;
  for (int i = 0; i < 100; ++i) ex.prompt.push_back(10 + i);
  ex.response = {5, 6};
  std::vector<int> tokens, targets;
  LlmTrainer::AssembleTokens(ex, 32, &tokens, &targets);
  EXPECT_LE(tokens.size(), 32u);
  // The most recent prompt tokens survive.
  EXPECT_EQ(tokens[1], 10 + 100 - (32 - 4));
  EXPECT_EQ(tokens[tokens.size() - 3], 5);
}

TEST(Trainer, LossDecreasesOnTinyTask) {
  // Memorize: prompt {4} -> response {5}; prompt {6} -> response {7}.
  MiniLlm model(TinyConfig(16));
  std::vector<TrainExample> data = {
      {{4}, {5}, "t"}, {{6}, {7}, "t"}, {{8}, {9}, "t"}, {{10}, {11}, "t"}};
  TrainerOptions opt;
  opt.epochs = 80;
  opt.batch_size = 2;
  opt.learning_rate = 5e-3f;
  LlmTrainer trainer(&model, opt);
  float before = trainer.EvalLoss(data);
  trainer.Train(data);
  float after = trainer.EvalLoss(data);
  EXPECT_LT(after, before * 0.3f);
}

TEST(Trainer, TrainedModelGeneratesMemorizedResponse) {
  MiniLlm model(TinyConfig(16));
  std::vector<TrainExample> data = {
      {{4}, {5}, "t"}, {{6}, {7}, "t"}, {{8}, {9}, "t"}, {{10}, {11}, "t"}};
  TrainerOptions opt;
  opt.epochs = 80;
  opt.batch_size = 4;
  opt.learning_rate = 5e-3f;
  LlmTrainer trainer(&model, opt);
  trainer.Train(data);
  std::vector<int> gen =
      GenerateText(model, {text::Vocabulary::kBos, 6}, 4,
                   text::Vocabulary::kEos);
  ASSERT_FALSE(gen.empty());
  EXPECT_EQ(gen[0], 7);
}

class ConstrainedGenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::Rng rng(5);
    indexing_ = quant::ItemIndexing::Random(12, 3, 4, rng);
    trie_ = std::make_unique<quant::PrefixTrie>(indexing_);
    // Register all index tokens in the vocabulary.
    for (const std::string& tok : indexing_.AllTokenStrings()) {
      vocab_.AddToken(tok);
    }
    MiniLlmConfig cfg = TinyConfig(vocab_.size());
    model_ = std::make_unique<MiniLlm>(cfg);
    token_map_ = std::make_unique<IndexTokenMap>(indexing_, vocab_);
  }

  text::Vocabulary vocab_;
  quant::ItemIndexing indexing_ = quant::ItemIndexing::VanillaId(1);
  std::unique_ptr<quant::PrefixTrie> trie_;
  std::unique_ptr<MiniLlm> model_;
  std::unique_ptr<IndexTokenMap> token_map_;
};

TEST_F(ConstrainedGenTest, GeneratesOnlyValidItems) {
  auto results = GenerateItems(*model_, {text::Vocabulary::kBos}, *trie_,
                               *token_map_, /*beam=*/8, /*top_n=*/8);
  ASSERT_FALSE(results.empty());
  std::set<int> seen;
  for (const ScoredItem& r : results) {
    EXPECT_GE(r.item, 0);
    EXPECT_LT(r.item, 12);
    EXPECT_TRUE(seen.insert(r.item).second) << "duplicate item";
    EXPECT_LE(r.logprob, 0.0f);
  }
}

TEST_F(ConstrainedGenTest, ScoresAreSorted) {
  auto results = GenerateItems(*model_, {text::Vocabulary::kBos}, *trie_,
                               *token_map_, 12, 12);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].logprob, results[i].logprob);
  }
}

TEST_F(ConstrainedGenTest, BeamWiderFindsAtLeastAsGoodTop1) {
  auto narrow = GenerateItems(*model_, {text::Vocabulary::kBos}, *trie_,
                              *token_map_, 1, 1);
  auto wide = GenerateItems(*model_, {text::Vocabulary::kBos}, *trie_,
                            *token_map_, 12, 1);
  ASSERT_FALSE(narrow.empty());
  ASSERT_FALSE(wide.empty());
  EXPECT_GE(wide[0].logprob, narrow[0].logprob - 1e-5f);
}

TEST_F(ConstrainedGenTest, UntrainedModelStillProducesBeamManyItems) {
  auto results = GenerateItems(*model_, {text::Vocabulary::kBos}, *trie_,
                               *token_map_, 6, 6);
  EXPECT_EQ(results.size(), 6u);
}

TEST_F(ConstrainedGenTest, ScoreContinuationMatchesManualSum) {
  std::vector<int> prompt = {text::Vocabulary::kBos};
  std::vector<int> cont = token_map_->ItemTokenIds(indexing_, 3);
  float score = ScoreContinuation(*model_, prompt, cont);
  EXPECT_LT(score, 0.0f);
  // Greedy sanity: total of per-step max logprobs bounds any continuation.
  EXPECT_GT(score, -100.0f);
}

TEST_F(ConstrainedGenTest, TrainingMakesTargetItemWin) {
  // Teach the model: <bos> -> item 5's code tokens. After training, item 5
  // must rank first in constrained generation.
  std::vector<int> target_tokens = token_map_->ItemTokenIds(indexing_, 5);
  std::vector<TrainExample> data(8, TrainExample{{}, target_tokens, "seq"});
  TrainerOptions opt;
  opt.epochs = 30;
  opt.batch_size = 4;
  opt.learning_rate = 5e-3f;
  LlmTrainer trainer(model_.get(), opt);
  trainer.Train(data);
  auto results = GenerateItems(*model_, {text::Vocabulary::kBos}, *trie_,
                               *token_map_, 4, 1);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].item, 5);
}

}  // namespace
}  // namespace lcrec::llm

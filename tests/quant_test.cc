#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/tensor.h"
#include "quant/indexing.h"
#include "quant/rqvae.h"
#include "quant/sinkhorn.h"

namespace lcrec::quant {
namespace {

core::Tensor ClusteredData(int clusters, int per_cluster, int dim,
                           core::Rng& rng, float spread = 0.05f) {
  core::Tensor data({clusters * per_cluster, dim});
  for (int c = 0; c < clusters; ++c) {
    core::Tensor center = rng.GaussianTensor({dim}, 1.0);
    for (int i = 0; i < per_cluster; ++i) {
      for (int j = 0; j < dim; ++j) {
        data.at((c * per_cluster + i) * dim + j) =
            center.at(j) + static_cast<float>(rng.Gaussian(0.0, spread));
      }
    }
  }
  return data;
}

TEST(Sinkhorn, RowMarginalsAreOne) {
  core::Rng rng(1);
  core::Tensor cost = rng.GaussianTensor({20, 5}, 1.0);
  for (int64_t i = 0; i < cost.size(); ++i) cost.at(i) = std::abs(cost.at(i));
  core::Tensor q = SinkhornKnopp(cost, 0.1, 100);
  for (int64_t i = 0; i < 20; ++i) {
    float s = 0.0f;
    for (int64_t j = 0; j < 5; ++j) s += q.at(i, j);
    EXPECT_NEAR(s, 1.0f, 1e-3f);
  }
}

TEST(Sinkhorn, ColumnMarginalsAreUniform) {
  core::Rng rng(2);
  core::Tensor cost = rng.GaussianTensor({40, 8}, 1.0);
  for (int64_t i = 0; i < cost.size(); ++i) cost.at(i) = std::abs(cost.at(i));
  core::Tensor q = SinkhornKnopp(cost, 0.1, 200);
  for (int64_t j = 0; j < 8; ++j) {
    float s = 0.0f;
    for (int64_t i = 0; i < 40; ++i) s += q.at(i, j);
    EXPECT_NEAR(s, 5.0f, 5e-2f);  // 40 / 8
  }
}

TEST(Sinkhorn, PrefersLowCostCells) {
  // 4 rows, 2 cols; rows 0,1 cheap in col 0, rows 2,3 cheap in col 1.
  core::Tensor cost({4, 2}, {0.0f, 1.0f, 0.0f, 1.0f, 1.0f, 0.0f, 1.0f, 0.0f});
  core::Tensor q = SinkhornKnopp(cost, 0.05, 200);
  EXPECT_GT(q.at(0, 0), q.at(0, 1));
  EXPECT_GT(q.at(3, 1), q.at(3, 0));
}

TEST(BalancedAssign, RespectsCapacity) {
  core::Rng rng(3);
  core::Tensor plan = rng.UniformTensor({12, 4}, 1.0);
  for (int64_t i = 0; i < plan.size(); ++i) plan.at(i) = std::abs(plan.at(i));
  std::vector<int> a = BalancedAssign(plan, 3);
  std::map<int, int> load;
  for (int c : a) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, 4);
    ++load[c];
  }
  for (const auto& [c, n] : load) {
    (void)c;
    EXPECT_LE(n, 3);
  }
}

TEST(BalancedAssign, CapacityOneIsAPermutation) {
  core::Rng rng(4);
  core::Tensor plan = rng.UniformTensor({6, 6}, 1.0);
  for (int64_t i = 0; i < plan.size(); ++i) plan.at(i) = std::abs(plan.at(i));
  std::vector<int> a = BalancedAssign(plan, 1);
  std::set<int> used(a.begin(), a.end());
  EXPECT_EQ(used.size(), 6u);
}

RqVaeConfig SmallConfig() {
  RqVaeConfig cfg;
  cfg.input_dim = 16;
  cfg.hidden_dim = 32;
  cfg.latent_dim = 8;
  cfg.levels = 3;
  cfg.codebook_size = 8;
  cfg.epochs = 60;
  cfg.batch_size = 256;
  cfg.seed = 5;
  return cfg;
}

TEST(RqVae, TrainingReducesLoss) {
  core::Rng rng(6);
  core::Tensor data = ClusteredData(8, 16, 16, rng);
  RqVae vae(SmallConfig());
  float first = vae.TrainEpoch(data);
  float last = 0.0f;
  for (int e = 0; e < 100; ++e) last = vae.TrainEpoch(data);
  EXPECT_LT(last, first * 0.85f);
}

TEST(RqVae, ReconstructionErrorDropsWithTraining) {
  core::Rng rng(7);
  core::Tensor data = ClusteredData(8, 16, 16, rng);
  RqVae vae(SmallConfig());
  vae.TrainEpoch(data);
  float before = vae.ReconstructionError(data);
  for (int e = 0; e < 50; ++e) vae.TrainEpoch(data);
  float after = vae.ReconstructionError(data);
  EXPECT_LT(after, before);
}

TEST(RqVae, QuantizeShapes) {
  core::Rng rng(8);
  core::Tensor data = ClusteredData(4, 8, 16, rng);
  RqVae vae(SmallConfig());
  vae.TrainEpoch(data);
  auto q = vae.QuantizeAll(data);
  ASSERT_EQ(q.codes.size(), 32u);
  for (const auto& c : q.codes) {
    ASSERT_EQ(c.size(), 3u);
    for (int code : c) {
      EXPECT_GE(code, 0);
      EXPECT_LT(code, 8);
    }
  }
  EXPECT_EQ(q.last_residuals.rows(), 32);
  EXPECT_EQ(q.last_residuals.cols(), 8);
}

TEST(RqVae, SimilarInputsShareFirstCode) {
  // After training on well-separated clusters, items of the same cluster
  // should mostly share their level-1 codeword (coarse-to-fine semantics).
  core::Rng rng(9);
  int clusters = 6, per = 20;
  core::Tensor data = ClusteredData(clusters, per, 16, rng, 0.02f);
  RqVaeConfig cfg = SmallConfig();
  cfg.epochs = 80;
  RqVae vae(cfg);
  vae.Train(data);
  auto q = vae.QuantizeAll(data);
  int agree = 0, total = 0;
  for (int c = 0; c < clusters; ++c) {
    std::map<int, int> votes;
    for (int i = 0; i < per; ++i) ++votes[q.codes[c * per + i][0]];
    int best = 0;
    for (const auto& [code, n] : votes) {
      (void)code;
      best = std::max(best, n);
    }
    agree += best;
    total += per;
  }
  EXPECT_GT(static_cast<double>(agree) / total, 0.7);
}

TEST(Indexing, UsmRemovesAllConflicts) {
  core::Rng rng(10);
  // Tight clusters guarantee raw RQ conflicts. The last-level codebook
  // (32) is larger than any conflicting leaf group (16), the regime the
  // paper operates in (K=256 vs. small leaf groups).
  core::Tensor data = ClusteredData(4, 16, 16, rng, 0.001f);
  RqVaeConfig cfg = SmallConfig();
  cfg.codebook_size = 32;
  cfg.epochs = 30;
  RqVae vae(cfg);
  vae.Train(data);
  // Raw nearest-neighbour quantization must collide on identical inputs.
  auto q = vae.QuantizeAll(data);
  std::map<std::vector<int>, int> uniq;
  for (const auto& code : q.codes) ++uniq[code];
  int raw_conflicts = 0;
  for (const auto& [code, cnt] : uniq) {
    (void)code;
    if (cnt > 1) raw_conflicts += cnt;
  }
  EXPECT_GT(raw_conflicts, 0);
  ItemIndexing usm = ItemIndexing::FromRqVae(vae, data, true);
  EXPECT_EQ(usm.ConflictCount(), 0);
  // USM keeps the prefix codes: only the last level is redistributed.
  for (int i = 0; i < usm.num_items(); ++i) {
    for (int h = 0; h + 1 < 3; ++h) EXPECT_EQ(usm.codes(i)[h], q.codes[i][h]);
  }
}

TEST(Indexing, NoUsmUsesSupplementaryLevel) {
  core::Rng rng(11);
  core::Tensor data = ClusteredData(2, 24, 16, rng, 0.0005f);
  RqVaeConfig cfg = SmallConfig();
  cfg.epochs = 20;
  RqVae vae(cfg);
  vae.Train(data);
  ItemIndexing idx = ItemIndexing::FromRqVae(vae, data, false);
  EXPECT_EQ(idx.ConflictCount(), 0);  // supplementary ids disambiguate
  // Some item should have a longer (supplemented) code than the base depth.
  bool any_longer = false;
  for (int i = 0; i < idx.num_items(); ++i)
    any_longer |= idx.codes(i).size() > 3;
  EXPECT_TRUE(any_longer);
}

TEST(Indexing, RandomIsUniqueAndInRange) {
  core::Rng rng(12);
  ItemIndexing idx = ItemIndexing::Random(100, 4, 8, rng);
  EXPECT_EQ(idx.ConflictCount(), 0);
  EXPECT_EQ(idx.num_items(), 100);
  for (int i = 0; i < 100; ++i) {
    for (int c : idx.codes(i)) {
      EXPECT_GE(c, 0);
      EXPECT_LT(c, 8);
    }
  }
}

TEST(Indexing, VanillaIdOneLevel) {
  ItemIndexing idx = ItemIndexing::VanillaId(10);
  EXPECT_EQ(idx.levels(), 1);
  EXPECT_EQ(idx.ConflictCount(), 0);
  EXPECT_EQ(idx.codes(7)[0], 7);
}

TEST(Indexing, TokenStringsFollowPaperFormat) {
  EXPECT_EQ(ItemIndexing::TokenString(0, 124), "<a_124>");
  EXPECT_EQ(ItemIndexing::TokenString(1, 192), "<b_192>");
  EXPECT_EQ(ItemIndexing::TokenString(3, 17), "<d_17>");
}

TEST(Indexing, ItemTokenTextConcatenatesLevels) {
  ItemIndexing idx = ItemIndexing::VanillaId(3);
  EXPECT_EQ(idx.ItemTokenText(2), "<a_2>");
  core::Rng rng(13);
  ItemIndexing multi = ItemIndexing::Random(5, 3, 4, rng);
  std::string text = multi.ItemTokenText(0);
  EXPECT_NE(text.find("<a_"), std::string::npos);
  EXPECT_NE(text.find("<b_"), std::string::npos);
  EXPECT_NE(text.find("<c_"), std::string::npos);
}

TEST(Trie, ResolvesEveryItemExactly) {
  core::Rng rng(14);
  ItemIndexing idx = ItemIndexing::Random(60, 4, 6, rng);
  PrefixTrie trie(idx);
  for (int i = 0; i < 60; ++i) {
    EXPECT_EQ(trie.ItemAt(idx.codes(i)), i);
  }
}

TEST(Trie, NextCodesMatchChildren) {
  ItemIndexing idx = ItemIndexing::VanillaId(4);
  PrefixTrie trie(idx);
  auto roots = trie.NextCodes({});
  EXPECT_EQ(roots.size(), 4u);
  EXPECT_TRUE(trie.NextCodes({0}).empty());  // complete
}

TEST(Trie, InvalidPrefixRejected) {
  core::Rng rng(15);
  ItemIndexing idx = ItemIndexing::Random(10, 3, 4, rng);
  PrefixTrie trie(idx);
  EXPECT_FALSE(trie.IsValidPrefix({99}));
  EXPECT_TRUE(trie.IsValidPrefix({}));
  EXPECT_EQ(trie.ItemAt({99, 99, 99}), -1);
}

TEST(Trie, PropertyEveryPathLeadsToAnItem) {
  // Walking the trie greedily from the root along any child chain must
  // terminate at a node holding an item.
  core::Rng rng(16);
  ItemIndexing idx = ItemIndexing::Random(40, 3, 5, rng);
  PrefixTrie trie(idx);
  std::vector<int> prefix;
  for (int step = 0; step < 3; ++step) {
    auto next = trie.NextCodes(prefix);
    ASSERT_FALSE(next.empty());
    prefix.push_back(next[static_cast<size_t>(rng.Below(next.size()))]);
  }
  EXPECT_GE(trie.ItemAt(prefix), 0);
}

}  // namespace
}  // namespace lcrec::quant

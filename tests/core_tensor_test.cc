#include "core/tensor.h"

#include <gtest/gtest.h>

namespace lcrec::core {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0);
}

TEST(Tensor, ZerosShapeAndValues) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(Tensor, ScalarItem) {
  Tensor t = Tensor::Scalar(3.5f);
  EXPECT_EQ(t.rank(), 0);
  EXPECT_EQ(t.size(), 1);
  EXPECT_FLOAT_EQ(t.item(), 3.5f);
}

TEST(Tensor, RankOneIsASingleRow) {
  Tensor t = Tensor::Ones({4});
  EXPECT_EQ(t.rows(), 1);
  EXPECT_EQ(t.cols(), 4);
}

TEST(Tensor, TwoDimensionalIndexing) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(t.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(t.at(0, 2), 3.0f);
  EXPECT_FLOAT_EQ(t.at(1, 0), 4.0f);
  EXPECT_FLOAT_EQ(t.at(1, 2), 6.0f);
}

TEST(Tensor, ReshapedPreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshaped({3, 2});
  EXPECT_EQ(r.rows(), 3);
  EXPECT_EQ(r.cols(), 2);
  EXPECT_FLOAT_EQ(r.at(2, 1), 6.0f);
}

TEST(Tensor, FillAndFull) {
  Tensor t = Tensor::Full({3}, 2.5f);
  for (int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(t.at(i), 2.5f);
  t.Fill(-1.0f);
  for (int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(t.at(i), -1.0f);
}

TEST(Tensor, Axpy) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  a.Axpy(0.5f, b);
  EXPECT_FLOAT_EQ(a.at(0), 6.0f);
  EXPECT_FLOAT_EQ(a.at(1), 12.0f);
  EXPECT_FLOAT_EQ(a.at(2), 18.0f);
}

TEST(Tensor, SquaredNorm) {
  Tensor a({2}, {3, 4});
  EXPECT_FLOAT_EQ(a.SquaredNorm(), 25.0f);
}

TEST(Tensor, SameShape) {
  EXPECT_TRUE(SameShape(Tensor::Zeros({2, 3}), Tensor::Zeros({2, 3})));
  EXPECT_FALSE(SameShape(Tensor::Zeros({2, 3}), Tensor::Zeros({3, 2})));
  EXPECT_FALSE(SameShape(Tensor::Zeros({6}), Tensor::Zeros({2, 3})));
}

TEST(Tensor, ShapeString) {
  EXPECT_EQ(Tensor::Zeros({2, 3}).ShapeString(), "[2,3]");
  EXPECT_EQ(Tensor::Scalar(1.0f).ShapeString(), "[]");
}

}  // namespace
}  // namespace lcrec::core

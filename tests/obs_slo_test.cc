// SloMonitor (obs/slo.h): burn-rate arithmetic under a fake clock,
// bucket rotation as the sliding window advances, statusz rendering,
// the periodic reporter thread, and concurrent RecordRequest. Runs in
// the TSan suite (scripts/check_sanitize.sh) alongside the flight
// recorder, since both sit on serving completion paths.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/slo.h"

namespace {

using namespace lcrec;

// Fake clock for deterministic window math. The monitor reads it under
// its own mutex from the recording thread only in these tests, but keep
// it atomic anyway so reporter-enabled tests stay race-free.
struct FakeClock {
  std::atomic<int64_t> us{0};
  std::function<double()> fn() {
    return [this] { return static_cast<double>(us.load()); };
  }
};

obs::SloOptions TestOptions(FakeClock* clock) {
  obs::SloOptions o;
  o.target_ms = 100.0;
  o.error_budget = 0.05;
  o.window_s = 60.0;
  o.sub_windows = 12;  // 5s buckets
  o.now_us = clock->fn();
  return o;
}

TEST(SloMonitorTest, EmptyWindowReadsClean) {
  FakeClock clock;
  obs::SloMonitor slo(TestOptions(&clock));
  obs::SloWindow w = slo.Window();
  EXPECT_EQ(w.total, 0);
  EXPECT_EQ(w.bad, 0);
  EXPECT_DOUBLE_EQ(w.bad_fraction, 0.0);
  EXPECT_DOUBLE_EQ(w.burn_rate, 0.0);
  EXPECT_DOUBLE_EQ(w.budget_left, 1.0);
}

TEST(SloMonitorTest, BurnRateIsBadFractionOverBudget) {
  FakeClock clock;
  obs::SloMonitor slo(TestOptions(&clock));
  // 100 requests, 2 bad: one shed, one over-target completion.
  for (int i = 0; i < 98; ++i) slo.RecordRequest(10.0, /*ok=*/true);
  slo.RecordRequest(5.0, /*ok=*/false);    // shed/error -> bad
  slo.RecordRequest(250.0, /*ok=*/true);   // over 100ms target -> bad
  obs::SloWindow w = slo.Window();
  EXPECT_EQ(w.total, 100);
  EXPECT_EQ(w.bad, 2);
  EXPECT_DOUBLE_EQ(w.bad_fraction, 0.02);
  EXPECT_DOUBLE_EQ(w.burn_rate, 0.02 / 0.05);  // 0.4
  EXPECT_DOUBLE_EQ(w.budget_left, 1.0 - 0.4);
}

TEST(SloMonitorTest, LatencyExactlyAtTargetIsGood) {
  FakeClock clock;
  obs::SloMonitor slo(TestOptions(&clock));
  slo.RecordRequest(100.0, true);
  EXPECT_EQ(slo.Window().bad, 0);
}

TEST(SloMonitorTest, BurnRateCanOverspendPastOne) {
  FakeClock clock;
  obs::SloMonitor slo(TestOptions(&clock));
  for (int i = 0; i < 10; ++i) slo.RecordRequest(500.0, true);
  obs::SloWindow w = slo.Window();
  EXPECT_DOUBLE_EQ(w.bad_fraction, 1.0);
  EXPECT_DOUBLE_EQ(w.burn_rate, 20.0);  // 1.0 / 0.05
  EXPECT_DOUBLE_EQ(w.budget_left, -19.0);
}

TEST(SloMonitorTest, OldBucketsAgeOutOfTheWindow) {
  FakeClock clock;
  obs::SloMonitor slo(TestOptions(&clock));
  // Bad burst in the first 5s bucket.
  for (int i = 0; i < 4; ++i) slo.RecordRequest(999.0, true);
  EXPECT_EQ(slo.Window().bad, 4);

  // 30s later the burst is still inside the 60s window...
  clock.us = 30 * 1000 * 1000;
  slo.RecordRequest(1.0, true);
  obs::SloWindow mid = slo.Window();
  EXPECT_EQ(mid.total, 5);
  EXPECT_EQ(mid.bad, 4);

  // ...but 90s in, the burst's bucket has rotated out and only the
  // recent good request that shares a still-live bucket could remain.
  clock.us = 90 * 1000 * 1000;
  slo.RecordRequest(1.0, true);
  obs::SloWindow late = slo.Window();
  EXPECT_EQ(late.bad, 0);
  EXPECT_LE(late.total, 2);
  EXPECT_GE(late.total, 1);
}

TEST(SloMonitorTest, RecycledBucketForgetsItsPreviousEpoch) {
  FakeClock clock;
  obs::SloOptions o = TestOptions(&clock);
  o.window_s = 12.0;
  o.sub_windows = 4;  // 3s buckets, ring of 4
  obs::SloMonitor slo(o);
  slo.RecordRequest(999.0, true);  // bad, epoch 0
  // Jump exactly one full ring ahead: epoch 4 maps onto epoch 0's slot.
  clock.us = static_cast<int64_t>(4 * 3.0 * 1e6);
  slo.RecordRequest(1.0, true);
  obs::SloWindow w = slo.Window();
  EXPECT_EQ(w.total, 1) << "stale epoch-0 counts must not leak into epoch 4";
  EXPECT_EQ(w.bad, 0);
}

TEST(SloMonitorTest, StatuszTextCarriesTheReading) {
  FakeClock clock;
  obs::SloMonitor slo(TestOptions(&clock));
  for (int i = 0; i < 19; ++i) slo.RecordRequest(1.0, true);
  slo.RecordRequest(1.0, false);
  std::string s = slo.StatuszText();
  EXPECT_NE(s.find("slo: target 100ms budget 5% window 60s"),
            std::string::npos)
      << s;
  EXPECT_NE(s.find("total 20"), std::string::npos) << s;
  EXPECT_NE(s.find("bad 1"), std::string::npos) << s;
  EXPECT_NE(s.find("bad_frac 0.0500"), std::string::npos) << s;
  EXPECT_NE(s.find("burn 1.000"), std::string::npos) << s;
  EXPECT_NE(s.find("budget_left 0.000"), std::string::npos) << s;
}

TEST(SloMonitorTest, StatuszJsonIsOneObject) {
  FakeClock clock;
  obs::SloMonitor slo(TestOptions(&clock));
  slo.RecordRequest(1.0, true);
  std::string s = slo.StatuszJson();
  EXPECT_EQ(s.front(), '{') << s;
  EXPECT_EQ(s.back(), '}') << s;
  EXPECT_NE(s.find("\"slo\":"), std::string::npos) << s;
  EXPECT_NE(s.find("\"total\":1"), std::string::npos) << s;
  EXPECT_NE(s.find("\"burn_rate\":"), std::string::npos) << s;
}

TEST(SloMonitorTest, RecordPublishesRegistryMetrics) {
  FakeClock clock;
  obs::SloMonitor slo(TestOptions(&clock));
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  int64_t base_bad = reg.GetCounter("lcrec.serve.slo.bad_requests").value();
  for (int i = 0; i < 3; ++i) slo.RecordRequest(999.0, true);
  EXPECT_EQ(reg.GetCounter("lcrec.serve.slo.bad_requests").value(),
            base_bad + 3);
  EXPECT_DOUBLE_EQ(reg.GetGauge("lcrec.serve.slo.bad_fraction").value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.GetGauge("lcrec.serve.slo.burn_rate").value(), 20.0);
  EXPECT_DOUBLE_EQ(reg.GetGauge("lcrec.serve.slo.window_total").value(), 3.0);
}

TEST(SloMonitorTest, ReporterThreadEmitsAndStopsPromptly) {
  obs::SloOptions o;  // real clock: the reporter waits on wall time
  o.report_every_s = 0.02;
  obs::SloMonitor slo(o);
  std::atomic<int> reports{0};
  std::atomic<bool> well_formed{true};
  slo.StartReporter([&](const std::string& line) {
    if (line.find("slo: target") == std::string::npos) well_formed = false;
    reports.fetch_add(1);
  });
  slo.RecordRequest(1.0, true);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (reports.load() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(reports.load(), 2);
  EXPECT_TRUE(well_formed.load());
  auto t0 = std::chrono::steady_clock::now();
  slo.StopReporter();
  auto stop_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  EXPECT_LT(stop_ms, 5000) << "StopReporter must not wait out the period";
  int settled = reports.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(reports.load(), settled) << "reporter kept running after stop";
}

TEST(SloMonitorTest, ReporterIsDisabledByDefault) {
  obs::SloOptions o;  // report_every_s = 0
  obs::SloMonitor slo(o);
  std::atomic<int> reports{0};
  slo.StartReporter([&](const std::string&) { reports.fetch_add(1); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(reports.load(), 0);
}

TEST(SloMonitorTest, ConcurrentRecordersCountEveryRequest) {
  FakeClock clock;  // frozen clock: everything lands in one bucket
  obs::SloMonitor slo(TestOptions(&clock));
  const int threads = 4;
  const int per_thread = 250;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&slo, t] {
      for (int i = 0; i < per_thread; ++i) {
        // Every 5th request is bad (over target).
        slo.RecordRequest(i % 5 == 0 ? 500.0 : 1.0, true);
      }
    });
  }
  for (auto& w : workers) w.join();
  obs::SloWindow w = slo.Window();
  EXPECT_EQ(w.total, threads * per_thread);
  EXPECT_EQ(w.bad, threads * (per_thread / 5));
}

TEST(SloMonitorTest, DestructorJoinsARunningReporter) {
  // Scope exit with an active reporter must not hang or crash.
  obs::SloOptions o;
  o.report_every_s = 0.01;
  auto slo = std::make_unique<obs::SloMonitor>(o);
  std::atomic<int> reports{0};
  slo->StartReporter([&](const std::string&) { reports.fetch_add(1); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  slo.reset();  // ~SloMonitor -> StopReporter -> join
  SUCCEED();
}

}  // namespace

#include "core/optim.h"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "core/graph.h"
#include "core/rng.h"
#include "core/serialize.h"

namespace lcrec::core {
namespace {

TEST(CosineSchedule, WarmupRampsLinearly) {
  CosineSchedule sched(1.0f, 10, 100);
  EXPECT_NEAR(sched.LrAt(0), 0.1f, 1e-6f);
  EXPECT_NEAR(sched.LrAt(4), 0.5f, 1e-6f);
  EXPECT_NEAR(sched.LrAt(9), 1.0f, 1e-6f);
}

TEST(CosineSchedule, DecaysToMinLr) {
  CosineSchedule sched(1.0f, 0, 100, 0.1f);
  EXPECT_NEAR(sched.LrAt(0), 1.0f, 1e-5f);
  EXPECT_GT(sched.LrAt(25), sched.LrAt(75));
  EXPECT_NEAR(sched.LrAt(100), 0.1f, 1e-6f);
  EXPECT_NEAR(sched.LrAt(1000), 0.1f, 1e-6f);
}

TEST(CosineSchedule, MidpointIsHalfway) {
  CosineSchedule sched(2.0f, 0, 100, 0.0f);
  EXPECT_NEAR(sched.LrAt(50), 1.0f, 1e-4f);
}

TEST(Sgd, DescendsQuadratic) {
  ParamStore store;
  Parameter* p = store.Create("x", Tensor({2}, {5.0f, -3.0f}));
  Sgd opt(store.All());
  for (int i = 0; i < 100; ++i) {
    store.ZeroGrad();
    // grad of 0.5*x^2 is x
    p->grad = p->value;
    opt.Step(0.1f);
  }
  EXPECT_NEAR(p->value.at(0), 0.0f, 1e-3f);
  EXPECT_NEAR(p->value.at(1), 0.0f, 1e-3f);
}

TEST(Sgd, MomentumAcceleratesDescent) {
  ParamStore s1, s2;
  Parameter* a = s1.Create("a", Tensor({1}, {10.0f}));
  Parameter* b = s2.Create("b", Tensor({1}, {10.0f}));
  Sgd plain(s1.All());
  Sgd momentum(s2.All(), 0.9f);
  for (int i = 0; i < 10; ++i) {
    a->grad = a->value;
    b->grad = b->value;
    plain.Step(0.01f);
    momentum.Step(0.01f);
  }
  EXPECT_LT(std::abs(b->value.at(0)), std::abs(a->value.at(0)));
}

TEST(AdamW, DescendsQuadratic) {
  ParamStore store;
  Parameter* p = store.Create("x", Tensor({2}, {5.0f, -3.0f}));
  AdamW opt(store.All());
  for (int i = 0; i < 500; ++i) {
    store.ZeroGrad();
    p->grad = p->value;
    opt.Step(0.05f);
  }
  EXPECT_NEAR(p->value.at(0), 0.0f, 1e-2f);
  EXPECT_NEAR(p->value.at(1), 0.0f, 1e-2f);
}

TEST(AdamW, WeightDecayShrinksUnusedWeights) {
  ParamStore store;
  Parameter* p = store.Create("x", Tensor({1}, {1.0f}));
  AdamW opt(store.All(), 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.1f);
  for (int i = 0; i < 50; ++i) {
    store.ZeroGrad();  // gradient is exactly zero
    opt.Step(0.1f);
  }
  EXPECT_LT(p->value.at(0), 0.7f);
  EXPECT_GT(p->value.at(0), 0.0f);
}

TEST(Optimizer, ClipGradNormScalesDown) {
  ParamStore store;
  Parameter* p = store.Create("x", Tensor({2}, {0.0f, 0.0f}));
  p->grad = Tensor({2}, {3.0f, 4.0f});  // norm 5
  Sgd opt(store.All());
  float norm = opt.ClipGradNorm(1.0f);
  EXPECT_FLOAT_EQ(norm, 5.0f);
  EXPECT_NEAR(p->grad.at(0), 0.6f, 1e-5f);
  EXPECT_NEAR(p->grad.at(1), 0.8f, 1e-5f);
}

TEST(Optimizer, ClipGradNormLeavesSmallGradients) {
  ParamStore store;
  Parameter* p = store.Create("x", Tensor({2}, {0.0f, 0.0f}));
  p->grad = Tensor({2}, {0.3f, 0.4f});
  Sgd opt(store.All());
  opt.ClipGradNorm(10.0f);
  EXPECT_FLOAT_EQ(p->grad.at(0), 0.3f);
}

/// Shared fixture logic for the optimizer-state round-trip tests: run a
/// few steps on A, serialize params + optimizer state, load both into a
/// fresh B, then apply one identical step to each — resumed training must
/// be bit-identical, not merely close.
void ApplyKnownGradsAndStep(ParamStore& store, Optimizer& opt, float lr,
                            int round) {
  for (Parameter* p : store.All()) {
    for (int64_t i = 0; i < p->grad.size(); ++i) {
      p->grad.at(i) =
          0.3f * p->value.at(i) + 0.01f * static_cast<float>(i + round);
    }
  }
  opt.Step(lr);
  store.ZeroGrad();
}

void ExpectBitIdentical(ParamStore& a, ParamStore& b) {
  ASSERT_EQ(a.All().size(), b.All().size());
  for (size_t k = 0; k < a.All().size(); ++k) {
    Parameter* pa = a.All()[k];
    Parameter* pb = b.All()[k];
    ASSERT_EQ(pa->value.size(), pb->value.size());
    for (int64_t i = 0; i < pa->value.size(); ++i) {
      EXPECT_EQ(pa->value.at(i), pb->value.at(i))
          << "param " << k << " element " << i;
    }
  }
}

TEST(AdamW, StateRoundTripResumesBitIdentically) {
  Rng rng(23);
  ParamStore a;
  a.Create("w", rng.GaussianTensor({4, 3}, 1.0));
  a.Create("b", rng.GaussianTensor({5}, 1.0));
  AdamW opt_a(a.All(), 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.01f);
  for (int round = 0; round < 3; ++round) {
    ApplyKnownGradsAndStep(a, opt_a, 0.05f, round);
  }

  std::ostringstream params_os(std::ios::binary), state_os(std::ios::binary);
  ASSERT_TRUE(SaveParamsToStream(a, params_os));
  opt_a.SaveState(state_os);

  ParamStore b;
  b.Create("w", Tensor::Zeros({4, 3}));
  b.Create("b", Tensor::Zeros({5}));
  AdamW opt_b(b.All(), 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.01f);
  std::istringstream params_is(params_os.str(), std::ios::binary);
  std::istringstream state_is(state_os.str(), std::ios::binary);
  ASSERT_TRUE(LoadParamsFromStream(b, params_is));
  ASSERT_TRUE(opt_b.LoadState(state_is));
  EXPECT_EQ(opt_b.step_count(), opt_a.step_count());

  // Identical gradients through both optimizers: with restored moments and
  // step count, the bias correction and update must agree bit for bit.
  for (int round = 3; round < 6; ++round) {
    ApplyKnownGradsAndStep(a, opt_a, 0.05f, round);
    ApplyKnownGradsAndStep(b, opt_b, 0.05f, round);
  }
  ExpectBitIdentical(a, b);
}

TEST(Sgd, MomentumStateRoundTripResumesBitIdentically) {
  Rng rng(29);
  ParamStore a;
  a.Create("w", rng.GaussianTensor({6}, 1.0));
  Sgd opt_a(a.All(), /*momentum=*/0.9f);
  for (int round = 0; round < 3; ++round) {
    ApplyKnownGradsAndStep(a, opt_a, 0.1f, round);
  }

  std::ostringstream params_os(std::ios::binary), state_os(std::ios::binary);
  ASSERT_TRUE(SaveParamsToStream(a, params_os));
  opt_a.SaveState(state_os);

  ParamStore b;
  b.Create("w", Tensor::Zeros({6}));
  Sgd opt_b(b.All(), 0.9f);
  std::istringstream params_is(params_os.str(), std::ios::binary);
  std::istringstream state_is(state_os.str(), std::ios::binary);
  ASSERT_TRUE(LoadParamsFromStream(b, params_is));
  ASSERT_TRUE(opt_b.LoadState(state_is));

  for (int round = 3; round < 6; ++round) {
    ApplyKnownGradsAndStep(a, opt_a, 0.1f, round);
    ApplyKnownGradsAndStep(b, opt_b, 0.1f, round);
  }
  ExpectBitIdentical(a, b);
}

TEST(AdamW, TruncatedStateIsRejectedWithoutMutation) {
  ParamStore a;
  a.Create("w", Tensor({2}, {1.0f, -2.0f}));
  AdamW opt_a(a.All());
  ApplyKnownGradsAndStep(a, opt_a, 0.05f, 0);
  std::ostringstream os(std::ios::binary);
  opt_a.SaveState(os);
  std::string blob = os.str();

  // Feed a fresh optimizer every strict prefix: all must be rejected, and
  // the optimizer must afterwards behave exactly like a never-touched one.
  for (size_t n = 0; n < blob.size(); n += 7) {
    ParamStore b;
    b.Create("w", Tensor({2}, {1.0f, -2.0f}));
    AdamW opt_b(b.All());
    std::istringstream is(blob.substr(0, n), std::ios::binary);
    EXPECT_FALSE(opt_b.LoadState(is)) << "prefix of " << n << " bytes loaded";
    EXPECT_EQ(opt_b.step_count(), 0);

    ParamStore c;
    c.Create("w", Tensor({2}, {1.0f, -2.0f}));
    AdamW opt_c(c.All());
    ApplyKnownGradsAndStep(b, opt_b, 0.05f, 0);
    ApplyKnownGradsAndStep(c, opt_c, 0.05f, 0);
    ExpectBitIdentical(b, c);
  }
}

TEST(AdamW, StateSizedForOtherParamsIsRejected) {
  ParamStore a;
  a.Create("w", Tensor({4}, {1.0f, 2.0f, 3.0f, 4.0f}));
  AdamW opt_a(a.All());
  ApplyKnownGradsAndStep(a, opt_a, 0.05f, 0);
  std::ostringstream os(std::ios::binary);
  opt_a.SaveState(os);

  ParamStore b;
  b.Create("w", Tensor({3}, {1.0f, 2.0f, 3.0f}));  // different size
  AdamW opt_b(b.All());
  std::istringstream is(os.str(), std::ios::binary);
  EXPECT_FALSE(opt_b.LoadState(is));
  EXPECT_EQ(opt_b.step_count(), 0);
}

TEST(Serialize, RoundTrip) {
  Rng rng(11);
  std::string path = ::testing::TempDir() + "/lcrec_params.bin";
  {
    ParamStore store;
    store.Create("a", rng.GaussianTensor({3, 4}, 1.0));
    store.Create("b", rng.GaussianTensor({5}, 1.0));
    ASSERT_TRUE(SaveParams(store, path));
  }
  Rng rng2(11);
  ParamStore loaded;
  Parameter* a = loaded.Create("a", Tensor::Zeros({3, 4}));
  Parameter* b = loaded.Create("b", Tensor::Zeros({5}));
  ASSERT_TRUE(LoadParams(loaded, path));
  Tensor ea = rng2.GaussianTensor({3, 4}, 1.0);
  Tensor eb = rng2.GaussianTensor({5}, 1.0);
  for (int64_t i = 0; i < ea.size(); ++i) EXPECT_EQ(a->value.at(i), ea.at(i));
  for (int64_t i = 0; i < eb.size(); ++i) EXPECT_EQ(b->value.at(i), eb.at(i));
}

TEST(Serialize, ShapeMismatchFails) {
  Rng rng(11);
  std::string path = ::testing::TempDir() + "/lcrec_params2.bin";
  {
    ParamStore store;
    store.Create("a", rng.GaussianTensor({3, 4}, 1.0));
    ASSERT_TRUE(SaveParams(store, path));
  }
  ParamStore loaded;
  loaded.Create("a", Tensor::Zeros({4, 3}));
  EXPECT_FALSE(LoadParams(loaded, path));
}

}  // namespace
}  // namespace lcrec::core

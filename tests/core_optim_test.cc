#include "core/optim.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/graph.h"
#include "core/rng.h"
#include "core/serialize.h"

namespace lcrec::core {
namespace {

TEST(CosineSchedule, WarmupRampsLinearly) {
  CosineSchedule sched(1.0f, 10, 100);
  EXPECT_NEAR(sched.LrAt(0), 0.1f, 1e-6f);
  EXPECT_NEAR(sched.LrAt(4), 0.5f, 1e-6f);
  EXPECT_NEAR(sched.LrAt(9), 1.0f, 1e-6f);
}

TEST(CosineSchedule, DecaysToMinLr) {
  CosineSchedule sched(1.0f, 0, 100, 0.1f);
  EXPECT_NEAR(sched.LrAt(0), 1.0f, 1e-5f);
  EXPECT_GT(sched.LrAt(25), sched.LrAt(75));
  EXPECT_NEAR(sched.LrAt(100), 0.1f, 1e-6f);
  EXPECT_NEAR(sched.LrAt(1000), 0.1f, 1e-6f);
}

TEST(CosineSchedule, MidpointIsHalfway) {
  CosineSchedule sched(2.0f, 0, 100, 0.0f);
  EXPECT_NEAR(sched.LrAt(50), 1.0f, 1e-4f);
}

TEST(Sgd, DescendsQuadratic) {
  ParamStore store;
  Parameter* p = store.Create("x", Tensor({2}, {5.0f, -3.0f}));
  Sgd opt(store.All());
  for (int i = 0; i < 100; ++i) {
    store.ZeroGrad();
    // grad of 0.5*x^2 is x
    p->grad = p->value;
    opt.Step(0.1f);
  }
  EXPECT_NEAR(p->value.at(0), 0.0f, 1e-3f);
  EXPECT_NEAR(p->value.at(1), 0.0f, 1e-3f);
}

TEST(Sgd, MomentumAcceleratesDescent) {
  ParamStore s1, s2;
  Parameter* a = s1.Create("a", Tensor({1}, {10.0f}));
  Parameter* b = s2.Create("b", Tensor({1}, {10.0f}));
  Sgd plain(s1.All());
  Sgd momentum(s2.All(), 0.9f);
  for (int i = 0; i < 10; ++i) {
    a->grad = a->value;
    b->grad = b->value;
    plain.Step(0.01f);
    momentum.Step(0.01f);
  }
  EXPECT_LT(std::abs(b->value.at(0)), std::abs(a->value.at(0)));
}

TEST(AdamW, DescendsQuadratic) {
  ParamStore store;
  Parameter* p = store.Create("x", Tensor({2}, {5.0f, -3.0f}));
  AdamW opt(store.All());
  for (int i = 0; i < 500; ++i) {
    store.ZeroGrad();
    p->grad = p->value;
    opt.Step(0.05f);
  }
  EXPECT_NEAR(p->value.at(0), 0.0f, 1e-2f);
  EXPECT_NEAR(p->value.at(1), 0.0f, 1e-2f);
}

TEST(AdamW, WeightDecayShrinksUnusedWeights) {
  ParamStore store;
  Parameter* p = store.Create("x", Tensor({1}, {1.0f}));
  AdamW opt(store.All(), 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.1f);
  for (int i = 0; i < 50; ++i) {
    store.ZeroGrad();  // gradient is exactly zero
    opt.Step(0.1f);
  }
  EXPECT_LT(p->value.at(0), 0.7f);
  EXPECT_GT(p->value.at(0), 0.0f);
}

TEST(Optimizer, ClipGradNormScalesDown) {
  ParamStore store;
  Parameter* p = store.Create("x", Tensor({2}, {0.0f, 0.0f}));
  p->grad = Tensor({2}, {3.0f, 4.0f});  // norm 5
  Sgd opt(store.All());
  float norm = opt.ClipGradNorm(1.0f);
  EXPECT_FLOAT_EQ(norm, 5.0f);
  EXPECT_NEAR(p->grad.at(0), 0.6f, 1e-5f);
  EXPECT_NEAR(p->grad.at(1), 0.8f, 1e-5f);
}

TEST(Optimizer, ClipGradNormLeavesSmallGradients) {
  ParamStore store;
  Parameter* p = store.Create("x", Tensor({2}, {0.0f, 0.0f}));
  p->grad = Tensor({2}, {0.3f, 0.4f});
  Sgd opt(store.All());
  opt.ClipGradNorm(10.0f);
  EXPECT_FLOAT_EQ(p->grad.at(0), 0.3f);
}

TEST(Serialize, RoundTrip) {
  Rng rng(11);
  std::string path = ::testing::TempDir() + "/lcrec_params.bin";
  {
    ParamStore store;
    store.Create("a", rng.GaussianTensor({3, 4}, 1.0));
    store.Create("b", rng.GaussianTensor({5}, 1.0));
    ASSERT_TRUE(SaveParams(store, path));
  }
  Rng rng2(11);
  ParamStore loaded;
  Parameter* a = loaded.Create("a", Tensor::Zeros({3, 4}));
  Parameter* b = loaded.Create("b", Tensor::Zeros({5}));
  ASSERT_TRUE(LoadParams(loaded, path));
  Tensor ea = rng2.GaussianTensor({3, 4}, 1.0);
  Tensor eb = rng2.GaussianTensor({5}, 1.0);
  for (int64_t i = 0; i < ea.size(); ++i) EXPECT_EQ(a->value.at(i), ea.at(i));
  for (int64_t i = 0; i < eb.size(); ++i) EXPECT_EQ(b->value.at(i), eb.at(i));
}

TEST(Serialize, ShapeMismatchFails) {
  Rng rng(11);
  std::string path = ::testing::TempDir() + "/lcrec_params2.bin";
  {
    ParamStore store;
    store.Create("a", rng.GaussianTensor({3, 4}, 1.0));
    ASSERT_TRUE(SaveParams(store, path));
  }
  ParamStore loaded;
  loaded.Create("a", Tensor::Zeros({4, 3}));
  EXPECT_FALSE(LoadParams(loaded, path));
}

}  // namespace
}  // namespace lcrec::core

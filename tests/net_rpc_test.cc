// Protocol-edge and lifecycle tests for net::RpcServer / RpcClient:
// round-trips, unknown methods, oversized frames (bounded reject),
// garbage byte streams, concurrent clients driving one server, the
// graceful-drain contract, and the serve::chaos conn/frame sites that
// put the wire under LCREC_CHAOS control.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "net/frame.h"
#include "net/rpc.h"
#include "net/service.h"
#include "obs/http.h"
#include "serve/chaos.h"

namespace lcrec::net {
namespace {

constexpr char kLoopback[] = "127.0.0.1";
constexpr uint32_t kEchoMethod = 42;

void RegisterEcho(RpcServer* server) {
  server->Handle(kEchoMethod,
                 [](const std::string& request, std::string* response,
                    std::string* /*error*/) {
                   *response = request;
                   return true;
                 });
  server->Handle(kMethodPing,
                 [](const std::string& request, std::string* response,
                    std::string* /*error*/) {
                   *response = request;
                   return true;
                 });
}

RpcClientOptions ClientTo(const RpcServer& server) {
  RpcClientOptions opts;
  opts.host = kLoopback;
  opts.port = server.port();
  opts.call_timeout_s = 10.0;
  return opts;
}

TEST(RpcTest, EchoRoundTrip) {
  RpcServer server;
  RegisterEcho(&server);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_GT(server.port(), 0);

  RpcClient client(ClientTo(server));
  std::string payload = "payload bytes ";
  payload.push_back('\0');  // binary-safe: embedded NUL and high bytes
  payload.push_back('\x01');
  payload.push_back('\xFF');
  std::string response;
  ASSERT_TRUE(client.Call(kEchoMethod, payload, &response, &error)) << error;
  EXPECT_EQ(response, payload);
  EXPECT_TRUE(CallPing(&client, &error)) << error;
  EXPECT_GE(server.stats().requests, 2);
  EXPECT_EQ(server.stats().bad_frames, 0);
}

TEST(RpcTest, UnknownMethodIsDefinitiveNotRetried) {
  RpcServer server;
  RegisterEcho(&server);
  ASSERT_TRUE(server.Start());

  RpcClient client(ClientTo(server));
  std::string response;
  std::string error;
  EXPECT_FALSE(client.Call(999, "x", &response, &error));
  EXPECT_NE(error.find("unknown method"), std::string::npos) << error;
  // A server error frame is an answer, not a transport failure: no
  // retries burned, and the channel is still usable.
  EXPECT_EQ(client.stats().retries, 0);
  EXPECT_EQ(client.stats().failures, 1);
  EXPECT_TRUE(client.Call(kEchoMethod, "still alive", &response, &error))
      << error;
  EXPECT_EQ(response, "still alive");
  EXPECT_EQ(server.stats().errors, 1);
}

TEST(RpcTest, OversizedFrameIsBoundedReject) {
  RpcServerOptions sopts;
  sopts.max_payload_bytes = 64;
  RpcServer server(sopts);
  RegisterEcho(&server);
  ASSERT_TRUE(server.Start());

  RpcClient client(ClientTo(server));
  std::string response;
  std::string error;
  // The server answers the offending request id with a bounded error
  // frame (it never buffers the payload), then closes the stream.
  EXPECT_FALSE(
      client.Call(kEchoMethod, std::string(4096, 'x'), &response, &error));
  EXPECT_NE(error.find("over"), std::string::npos) << error;
  EXPECT_GE(server.stats().bad_frames, 1);
  // A fresh call (new channel after the server's close) still works.
  ASSERT_TRUE(client.Call(kEchoMethod, "small", &response, &error)) << error;
  EXPECT_EQ(response, "small");
}

TEST(RpcTest, GarbageBytesCloseTheConnection) {
  RpcServer server;
  RegisterEcho(&server);
  ASSERT_TRUE(server.Start());

  // An HTTP request is garbage to the frame decoder: bad magic. The
  // server must close without writing anything (nothing sensible can be
  // answered on an untrusted stream). HttpRawExchange is the repo's
  // raw-bytes test client, so this test needs no socket calls itself.
  std::string raw_response;
  std::string error;
  ASSERT_TRUE(obs::HttpRawExchange(kLoopback, server.port(),
                                   "GET /statusz HTTP/1.1\r\n\r\n",
                                   &raw_response, &error, 10.0))
      << error;
  EXPECT_TRUE(raw_response.empty());
  EXPECT_GE(server.stats().bad_frames, 1);
  EXPECT_EQ(server.stats().requests, 0);

  // The server survives; a well-formed client is unaffected.
  RpcClient client(ClientTo(server));
  std::string response;
  ASSERT_TRUE(client.Call(kEchoMethod, "ok", &response, &error)) << error;
}

TEST(RpcTest, ConcurrentClientsAllSucceed) {
  RpcServer server;
  RegisterEcho(&server);
  ASSERT_TRUE(server.Start());

  RpcClient client(ClientTo(server));
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 16;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&client, &ok, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        const std::string payload =
            "t" + std::to_string(t) + ":" + std::to_string(i);
        std::string response;
        std::string error;
        if (client.Call(kEchoMethod, payload, &response, &error) &&
            response == payload) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok.load(), kThreads * kCallsPerThread);
  EXPECT_EQ(server.stats().requests, kThreads * kCallsPerThread);
  EXPECT_EQ(server.stats().errors, 0);
}

TEST(RpcTest, DrainFinishesInflightWorkThenRefusesNew) {
  RpcServerOptions sopts;
  sopts.dispatch_threads = 2;
  RpcServer server(sopts);
  server.Handle(kEchoMethod,
                [](const std::string& request, std::string* response,
                   std::string* /*error*/) {
                  std::this_thread::sleep_for(
                      std::chrono::milliseconds(150));
                  *response = request;
                  return true;
                });
  ASSERT_TRUE(server.Start());
  const int port = server.port();

  // Launch a slow call, then drain while it is in flight: the drain
  // contract says it completes and its response is flushed.
  std::atomic<bool> call_ok{false};
  RpcClient client(ClientTo(server));
  std::thread caller([&client, &call_ok] {
    std::string response;
    std::string error;
    call_ok.store(client.Call(kEchoMethod, "inflight", &response, &error) &&
                  response == "inflight");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  server.BeginDrain();
  EXPECT_TRUE(server.WaitDrained(/*timeout_s=*/10.0));
  caller.join();
  EXPECT_TRUE(call_ok.load());

  // The listener is gone: a new client cannot connect.
  RpcClientOptions fresh;
  fresh.host = kLoopback;
  fresh.port = port;
  fresh.connect_timeout_s = 2.0;
  fresh.max_retries = 0;
  RpcClient late(fresh);
  std::string response;
  std::string error;
  EXPECT_FALSE(late.Call(kEchoMethod, "too late", &response, &error));
  server.Stop();
}

TEST(RpcTest, DrainWithNoWorkCompletesImmediately) {
  RpcServer server;
  RegisterEcho(&server);
  ASSERT_TRUE(server.Start());
  server.BeginDrain();
  EXPECT_TRUE(server.WaitDrained(/*timeout_s=*/5.0));
  server.Stop();
}

TEST(RpcTest, ChaosConnFailIsRetriedAway) {
  RpcServer server;
  RegisterEcho(&server);
  ASSERT_TRUE(server.Start());

  // Exactly one injected connect failure: the client's first attempt
  // dies before the socket opens, the retry succeeds.
  serve::chaos::ChaosSpec spec;
  spec.site = serve::chaos::ChaosSpec::Site::kConn;
  spec.mode = serve::chaos::ChaosSpec::Mode::kFail;
  spec.rate = 1.0;
  spec.max_fires = 1;
  serve::chaos::ArmChaos({spec});

  RpcClientOptions copts = ClientTo(server);
  copts.max_retries = 3;
  copts.backoff_ms = 1.0;
  RpcClient client(copts);
  std::string response;
  std::string error;
  EXPECT_TRUE(client.Call(kEchoMethod, "through chaos", &response, &error))
      << error;
  EXPECT_EQ(response, "through chaos");
  EXPECT_GE(client.stats().retries, 1);
  EXPECT_EQ(serve::chaos::ChaosFires(), 1);
  serve::chaos::DisarmChaos();
}

TEST(RpcTest, ChaosTornFrameIsRejectedByPeerAndRetried) {
  RpcServer server;
  RegisterEcho(&server);
  ASSERT_TRUE(server.Start());

  // One torn write: half a frame ships, the connection drops. The
  // server's length/CRC checks must treat the remnant as incomplete or
  // bad — never dispatch it — and the client's retry completes the call.
  serve::chaos::ChaosSpec spec;
  spec.site = serve::chaos::ChaosSpec::Site::kFrame;
  spec.mode = serve::chaos::ChaosSpec::Mode::kTruncate;
  spec.rate = 1.0;
  spec.max_fires = 1;
  serve::chaos::ArmChaos({spec});

  RpcClientOptions copts = ClientTo(server);
  copts.max_retries = 3;
  copts.backoff_ms = 1.0;
  RpcClient client(copts);
  std::string response;
  std::string error;
  EXPECT_TRUE(client.Call(kEchoMethod, "torn once", &response, &error))
      << error;
  EXPECT_EQ(response, "torn once");
  EXPECT_GE(client.stats().retries, 1);
  EXPECT_EQ(server.stats().requests, 1);  // the remnant never dispatched
  serve::chaos::DisarmChaos();
}

TEST(RpcTest, StatuszTextReportsState) {
  RpcServer server;
  RegisterEcho(&server);
  ASSERT_TRUE(server.Start());
  RpcClient client(ClientTo(server));
  std::string response;
  std::string error;
  ASSERT_TRUE(client.Call(kEchoMethod, "x", &response, &error));
  const std::string text = server.StatuszText();
  EXPECT_NE(text.find("state serving"), std::string::npos) << text;
  EXPECT_NE(text.find("requests=1"), std::string::npos) << text;
}

}  // namespace
}  // namespace lcrec::net

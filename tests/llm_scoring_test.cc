// Consistency tests between the three LLM execution paths: the autograd
// training forward (BuildLogits), KV-cache inference (Forward), and the
// derived utilities ScoreContinuation / GenerateItems.

#include <cmath>

#include <gtest/gtest.h>

#include "llm/generate.h"
#include "llm/minillm.h"
#include "text/vocab.h"

namespace lcrec::llm {
namespace {

MiniLlmConfig Cfg(int vocab = 30) {
  MiniLlmConfig cfg;
  cfg.vocab_size = vocab;
  cfg.d_model = 16;
  cfg.n_heads = 2;
  cfg.n_layers = 2;
  cfg.d_ff = 32;
  cfg.max_seq = 48;
  cfg.seed = 11;
  return cfg;
}

float LogSoftmaxAt(const core::Tensor& logits, int64_t row, int tok) {
  int64_t v = logits.cols();
  float mx = logits.at(row, 0);
  for (int64_t j = 1; j < v; ++j) mx = std::max(mx, logits.at(row, j));
  double z = 0.0;
  for (int64_t j = 0; j < v; ++j) z += std::exp(logits.at(row, j) - mx);
  return logits.at(row, tok) - mx - static_cast<float>(std::log(z));
}

TEST(LlmScoring, ScoreContinuationMatchesTeacherForcedLogits) {
  MiniLlm model(Cfg());
  std::vector<int> prompt = {1, 5, 9};
  std::vector<int> cont = {12, 3};
  float score = ScoreContinuation(model, prompt, cont);

  // Reference: full-sequence autograd forward.
  std::vector<int> all = prompt;
  all.insert(all.end(), cont.begin(), cont.end());
  core::Graph g;
  core::VarId logits = model.BuildLogits(g, all, false);
  float expected =
      LogSoftmaxAt(g.val(logits), 2, 12) + LogSoftmaxAt(g.val(logits), 3, 3);
  EXPECT_NEAR(score, expected, 1e-3f);
}

TEST(LlmScoring, BeamSearchScoreMatchesScoreContinuation) {
  // The log-prob a beam reports for an item must equal independently
  // scoring that item's token sequence.
  text::Vocabulary vocab;
  core::Rng rng(3);
  quant::ItemIndexing idx = quant::ItemIndexing::Random(6, 3, 3, rng);
  for (const std::string& tok : idx.AllTokenStrings()) vocab.AddToken(tok);
  MiniLlm model(Cfg(vocab.size()));
  IndexTokenMap map(idx, vocab);
  quant::PrefixTrie trie(idx);

  std::vector<int> prompt = {text::Vocabulary::kBos};
  auto results = GenerateItems(model, prompt, trie, map, 32, 6);
  ASSERT_FALSE(results.empty());
  for (const ScoredItem& r : results) {
    float direct = ScoreContinuation(model, prompt, map.ItemTokenIds(idx, r.item));
    EXPECT_NEAR(r.logprob, direct, 1e-3f) << "item " << r.item;
  }
}

TEST(LlmScoring, FullBeamEnumeratesAllItemsInProbabilityOrder) {
  // With a beam at least as large as the item count, constrained search
  // is exhaustive: it returns every item, sorted by true sequence score.
  text::Vocabulary vocab;
  core::Rng rng(5);
  quant::ItemIndexing idx = quant::ItemIndexing::Random(5, 2, 4, rng);
  for (const std::string& tok : idx.AllTokenStrings()) vocab.AddToken(tok);
  MiniLlm model(Cfg(vocab.size()));
  IndexTokenMap map(idx, vocab);
  quant::PrefixTrie trie(idx);
  std::vector<int> prompt = {text::Vocabulary::kBos};
  auto results = GenerateItems(model, prompt, trie, map, 64, 5);
  ASSERT_EQ(results.size(), 5u);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].logprob, results[i].logprob);
  }
}

TEST(LlmScoring, GenerateTextIsDeterministic) {
  MiniLlm model(Cfg());
  auto a = GenerateText(model, {1, 2, 3}, 8, text::Vocabulary::kEos);
  auto b = GenerateText(model, {1, 2, 3}, 8, text::Vocabulary::kEos);
  EXPECT_EQ(a, b);
}

TEST(LlmScoring, LongerPromptStillWithinContext) {
  MiniLlm model(Cfg());
  std::vector<int> prompt(40, 4);
  auto out = GenerateText(model, prompt, 20, text::Vocabulary::kEos);
  EXPECT_LE(out.size(), 20u);  // must not crash on context exhaustion
}

}  // namespace
}  // namespace lcrec::llm

// Parameterized property tests: gradient checks swept over shapes, and
// Sinkhorn marginal properties swept over problem sizes / temperatures.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/graph.h"
#include "core/rng.h"
#include "quant/sinkhorn.h"
#include "tests/test_util.h"

namespace lcrec::core {
namespace {

using lcrec::testing::CheckGradientOf;

// ---------------------------------------------------------------------------
// Gradient property sweep: every unary op, over a grid of shapes.
// ---------------------------------------------------------------------------

enum class Op {
  kRelu,
  kSigmoid,
  kTanh,
  kSilu,
  kGelu,
  kSoftmax,
  kCausalSoftmax,
  kNormalizeRows,
  kTranspose,
  kMeanOverRows,
  kMaxOverRows,
  kRowSums,
};

std::string OpName(Op op) {
  switch (op) {
    case Op::kRelu: return "Relu";
    case Op::kSigmoid: return "Sigmoid";
    case Op::kTanh: return "Tanh";
    case Op::kSilu: return "Silu";
    case Op::kGelu: return "Gelu";
    case Op::kSoftmax: return "Softmax";
    case Op::kCausalSoftmax: return "CausalSoftmax";
    case Op::kNormalizeRows: return "NormalizeRows";
    case Op::kTranspose: return "Transpose";
    case Op::kMeanOverRows: return "MeanOverRows";
    case Op::kMaxOverRows: return "MaxOverRows";
    case Op::kRowSums: return "RowSums";
  }
  return "?";
}

using GradCase = std::tuple<Op, int, int>;  // op, rows, cols

class UnaryGradientSweep : public ::testing::TestWithParam<GradCase> {};

TEST_P(UnaryGradientSweep, MatchesFiniteDifferences) {
  auto [op, rows, cols] = GetParam();
  if (op == Op::kCausalSoftmax && cols < rows) GTEST_SKIP();
  ParamStore store;
  Rng rng(static_cast<uint64_t>(rows * 131 + cols * 17 +
                                static_cast<int>(op)));
  // MaxOverRows needs well-separated entries so finite differences do not
  // cross the argmax boundary.
  double stddev = op == Op::kMaxOverRows ? 2.0 : 0.5;
  Parameter* p = store.Create(
      "p", rng.GaussianTensor({rows, cols}, stddev));
  Tensor target = rng.GaussianTensor({rows, cols}, 0.5);
  CheckGradientOf(
      p,
      [&, op = op](Graph& g, VarId v) {
        VarId y = v;
        switch (op) {
          case Op::kRelu: y = g.Relu(v); break;
          case Op::kSigmoid: y = g.Sigmoid(v); break;
          case Op::kTanh: y = g.Tanh(v); break;
          case Op::kSilu: y = g.Silu(v); break;
          case Op::kGelu: y = g.Gelu(v); break;
          case Op::kSoftmax: y = g.Softmax(v); break;
          case Op::kCausalSoftmax: y = g.CausalSoftmax(v); break;
          case Op::kNormalizeRows: y = g.NormalizeRows(v); break;
          case Op::kTranspose: y = g.Transpose(v); break;
          case Op::kMeanOverRows: y = g.MeanOverRows(v); break;
          case Op::kMaxOverRows: y = g.MaxOverRows(v); break;
          case Op::kRowSums: y = g.RowSums(v); break;
        }
        return g.Sum(g.Square(y));
      },
      op == Op::kMaxOverRows ? 1e-3f : 1e-2f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, UnaryGradientSweep,
    ::testing::Combine(
        ::testing::Values(Op::kRelu, Op::kSigmoid, Op::kTanh, Op::kSilu,
                          Op::kGelu, Op::kSoftmax, Op::kCausalSoftmax,
                          Op::kNormalizeRows, Op::kTranspose,
                          Op::kMeanOverRows, Op::kMaxOverRows, Op::kRowSums),
        ::testing::Values(1, 3, 5), ::testing::Values(2, 4, 7)),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      return OpName(std::get<0>(info.param)) + "_r" +
             std::to_string(std::get<1>(info.param)) + "_c" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// MatMul gradient sweep over (m, k, n).
// ---------------------------------------------------------------------------

using MmCase = std::tuple<int, int, int>;

class MatMulGradientSweep : public ::testing::TestWithParam<MmCase> {};

TEST_P(MatMulGradientSweep, BothArgumentsAndBothVariants) {
  auto [m, k, n] = GetParam();
  ParamStore store;
  Rng rng(static_cast<uint64_t>(m * 100 + k * 10 + n));
  Parameter* a = store.Create("a", rng.GaussianTensor({m, k}, 0.5));
  Tensor b = rng.GaussianTensor({k, n}, 0.5);
  Tensor bt = rng.GaussianTensor({n, k}, 0.5);
  CheckGradientOf(a, [&](Graph& g, VarId v) {
    return g.Sum(g.Square(g.MatMul(v, g.Input(b))));
  });
  CheckGradientOf(a, [&](Graph& g, VarId v) {
    return g.Sum(g.Square(g.MatMulNT(v, g.Input(bt))));
  });
}

INSTANTIATE_TEST_SUITE_P(Dims, MatMulGradientSweep,
                         ::testing::Combine(::testing::Values(1, 4),
                                            ::testing::Values(2, 5),
                                            ::testing::Values(1, 3)));

// ---------------------------------------------------------------------------
// Sinkhorn marginals over sizes and temperatures.
// ---------------------------------------------------------------------------

using SinkhornCase = std::tuple<int, int, double>;  // n, k, epsilon

class SinkhornSweep : public ::testing::TestWithParam<SinkhornCase> {};

TEST_P(SinkhornSweep, MarginalsHold) {
  auto [n, k, eps] = GetParam();
  Rng rng(static_cast<uint64_t>(n * 1000 + k * 10));
  Tensor cost = rng.GaussianTensor({n, k}, 1.0);
  for (int64_t i = 0; i < cost.size(); ++i) cost.at(i) = std::abs(cost.at(i));
  Tensor q = quant::SinkhornKnopp(cost, eps, 200);
  for (int64_t i = 0; i < n; ++i) {
    float row = 0.0f;
    for (int64_t j = 0; j < k; ++j) {
      float v = q.at(i * k + j);
      EXPECT_GE(v, 0.0f);
      row += v;
    }
    EXPECT_NEAR(row, 1.0f, 5e-3f);
  }
  double col_target = static_cast<double>(n) / k;
  for (int64_t j = 0; j < k; ++j) {
    float col = 0.0f;
    for (int64_t i = 0; i < n; ++i) col += q.at(i * k + j);
    EXPECT_NEAR(col, col_target, 0.05 * col_target + 1e-2);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SinkhornSweep,
                         ::testing::Combine(::testing::Values(8, 33, 64),
                                            ::testing::Values(4, 8),
                                            ::testing::Values(0.02, 0.1,
                                                              0.5)));

// ---------------------------------------------------------------------------
// BalancedAssign feasibility sweep.
// ---------------------------------------------------------------------------

class BalancedAssignSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BalancedAssignSweep, AssignsEveryRowWithinCapacity) {
  auto [n, k] = GetParam();
  Rng rng(static_cast<uint64_t>(n + 7 * k));
  Tensor plan = rng.UniformTensor({n, k}, 1.0);
  for (int64_t i = 0; i < plan.size(); ++i) plan.at(i) = std::abs(plan.at(i));
  int capacity = (n + k - 1) / k;
  std::vector<int> a = quant::BalancedAssign(plan, capacity);
  std::vector<int> load(static_cast<size_t>(k), 0);
  for (int c : a) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, k);
    ++load[static_cast<size_t>(c)];
  }
  for (int l : load) EXPECT_LE(l, capacity);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BalancedAssignSweep,
                         ::testing::Combine(::testing::Values(3, 16, 41),
                                            ::testing::Values(4, 9)));

}  // namespace
}  // namespace lcrec::core

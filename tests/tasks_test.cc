#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "quant/indexing.h"
#include "tasks/instructions.h"
#include "text/vocab.h"

namespace lcrec::tasks {
namespace {

class InstructionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = std::make_unique<data::Dataset>(
        data::Dataset::Make(data::Domain::kGames, 0.25, 31));
    core::Rng rng(2);
    indexing_ = std::make_unique<quant::ItemIndexing>(
        quant::ItemIndexing::Random(dataset_->num_items(), 4, 32, rng));
    builder_ = std::make_unique<InstructionBuilder>(
        dataset_.get(), indexing_.get(), &vocab_);
    builder_->RegisterVocabulary();
  }

  std::unique_ptr<data::Dataset> dataset_;
  std::unique_ptr<quant::ItemIndexing> indexing_;
  text::Vocabulary vocab_;
  std::unique_ptr<InstructionBuilder> builder_;
};

TEST_F(InstructionTest, VocabularyCoversIndexTokens) {
  for (const std::string& tok : indexing_->AllTokenStrings()) {
    EXPECT_TRUE(vocab_.Contains(tok)) << tok;
  }
}

TEST_F(InstructionTest, VocabularyCoversItemText) {
  // No <unk> should appear when encoding any item document.
  for (int i = 0; i < dataset_->num_items(); ++i) {
    for (int id : vocab_.Encode(dataset_->ItemDocument(i))) {
      EXPECT_NE(id, text::Vocabulary::kUnk);
    }
  }
}

TEST_F(InstructionTest, SeqExampleTargetsItemIndices) {
  core::Rng rng(5);
  auto hist = dataset_->TrainContext(0);
  int target = dataset_->ValidTarget(0);
  llm::TrainExample ex = builder_->SeqExample(hist, target, rng);
  EXPECT_EQ(ex.task, "seq");
  EXPECT_FALSE(ex.prompt.empty());
  ASSERT_EQ(ex.response.size(), indexing_->codes(target).size());
  // Response ids decode back to the item's index tokens.
  auto toks = indexing_->ItemTokens(target);
  for (size_t h = 0; h < toks.size(); ++h) {
    EXPECT_EQ(vocab_.TokenOf(ex.response[h]), toks[h]);
  }
}

TEST_F(InstructionTest, PromptContainsNoUnk) {
  core::Rng rng(6);
  auto hist = dataset_->TrainContext(1);
  for (int rep = 0; rep < 8; ++rep) {
    llm::TrainExample ex = builder_->SeqExample(hist,
                                                dataset_->ValidTarget(1), rng);
    for (int id : ex.prompt) EXPECT_NE(id, text::Vocabulary::kUnk);
    ex = builder_->IteQueryExample(dataset_->TestTarget(1), rng);
    for (int id : ex.prompt) EXPECT_NE(id, text::Vocabulary::kUnk);
    ex = builder_->PerExample(hist, rng);
    for (int id : ex.response) EXPECT_NE(id, text::Vocabulary::kUnk);
  }
}

TEST_F(InstructionTest, MutualAlignmentExamplesAreInverse) {
  core::Rng rng(7);
  llm::TrainExample fwd = builder_->MutItemToIndexExample(3, rng);
  llm::TrainExample bwd = builder_->MutIndexToItemExample(3, rng);
  // fwd response = index tokens; bwd prompt contains the same tokens.
  std::set<int> bwd_prompt(bwd.prompt.begin(), bwd.prompt.end());
  for (int id : fwd.response) {
    EXPECT_TRUE(bwd_prompt.count(id)) << vocab_.TokenOf(id);
  }
}

TEST_F(InstructionTest, HistoryIsClampedToMaxHistory) {
  core::Rng rng(8);
  std::vector<int> long_hist(40, 0);
  for (size_t i = 0; i < long_hist.size(); ++i) {
    long_hist[i] = static_cast<int>(i % dataset_->num_items());
  }
  llm::TrainExample ex = builder_->SeqExample(long_hist, 0, rng);
  // Each history item renders `levels` index tokens; the prompt must stay
  // within max_history * levels + template words.
  int max_index_tokens = builder_->config().max_history * indexing_->levels();
  int index_tokens = 0;
  for (int id : ex.prompt) {
    if (vocab_.TokenOf(id).rfind("<a_", 0) == 0 ||
        vocab_.TokenOf(id)[0] == '<') {
      ++index_tokens;
    }
  }
  EXPECT_LE(index_tokens, max_index_tokens);
}

TEST_F(InstructionTest, BuildEpochSeqOnlyHasOnlySeq) {
  core::Rng rng(9);
  auto examples = builder_->BuildEpoch(TaskMixture::SeqOnly(), rng);
  ASSERT_FALSE(examples.empty());
  for (const auto& ex : examples) EXPECT_EQ(ex.task, "seq");
}

TEST_F(InstructionTest, BuildEpochAllContainsEveryTask) {
  core::Rng rng(10);
  auto examples = builder_->BuildEpoch(TaskMixture::All(), rng);
  std::set<std::string> tasks;
  for (const auto& ex : examples) tasks.insert(ex.task);
  EXPECT_TRUE(tasks.count("seq"));
  EXPECT_TRUE(tasks.count("mut"));
  EXPECT_TRUE(tasks.count("asy"));
  EXPECT_TRUE(tasks.count("ite"));
  EXPECT_TRUE(tasks.count("per"));
}

TEST_F(InstructionTest, EpochsDifferAcrossCalls) {
  // One-template-per-example-per-epoch: two epochs over the same data must
  // not render identical prompts everywhere.
  core::Rng rng(11);
  auto e1 = builder_->BuildEpoch(TaskMixture::SeqOnly(), rng);
  auto e2 = builder_->BuildEpoch(TaskMixture::SeqOnly(), rng);
  ASSERT_FALSE(e1.empty());
  int differing = 0;
  size_t n = std::min(e1.size(), e2.size());
  for (size_t i = 0; i < n; ++i) {
    if (e1[i].prompt != e2[i].prompt) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST_F(InstructionTest, MixtureNames) {
  EXPECT_EQ(TaskMixture::SeqOnly().Name(), "SEQ");
  EXPECT_EQ(TaskMixture::All().Name(), "SEQ+MUT+ASY+ITE+PER");
  TaskMixture m;
  m.mut = true;
  EXPECT_EQ(m.Name(), "SEQ+MUT");
}

TEST_F(InstructionTest, EvalPromptsAreStable) {
  auto hist = dataset_->TestContext(0);
  auto p1 = builder_->SeqPrompt(hist);
  auto p2 = builder_->SeqPrompt(hist);
  EXPECT_EQ(p1, p2);
  EXPECT_FALSE(builder_->IntentionPrompt("looking for a puzzle").empty());
}

TEST_F(InstructionTest, TitleOfItemPromptTruncatesLevels) {
  auto p1 = builder_->TitleOfItemPrompt(0, 1);
  auto p4 = builder_->TitleOfItemPrompt(0, 4);
  EXPECT_LT(p1.size(), p4.size());
}

}  // namespace
}  // namespace lcrec::tasks

// lcrec::serve::Server correctness: concurrent clients get exactly the
// sequential decoder's rankings, the result cache and single-flight
// dedup collapse duplicate work, and overload sheds with a reason
// instead of queueing without bound. The shed/coalesce tests park the
// scheduler (start_scheduler=false) to stage requests deterministically.
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "llm/generate.h"
#include "llm/minillm.h"
#include "obs/debugz.h"
#include "obs/sync.h"
#include "quant/indexing.h"
#include "serve/server.h"
#include "text/vocab.h"

namespace lcrec::serve {
namespace {

template <typename Pred>
bool WaitUntil(Pred pred, int timeout_ms = 10000) {
  for (int i = 0; i < timeout_ms; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::Rng rng(5);
    indexing_ = quant::ItemIndexing::Random(12, 3, 4, rng);
    trie_ = std::make_unique<quant::PrefixTrie>(indexing_);
    for (const std::string& tok : indexing_.AllTokenStrings()) {
      vocab_.AddToken(tok);
    }
    llm::MiniLlmConfig cfg;
    cfg.vocab_size = vocab_.size();
    cfg.d_model = 16;
    cfg.n_heads = 2;
    cfg.n_layers = 2;
    cfg.d_ff = 32;
    cfg.max_seq = 64;
    cfg.seed = 3;
    model_ = std::make_unique<llm::MiniLlm>(cfg);
    token_map_ = std::make_unique<llm::IndexTokenMap>(indexing_, vocab_);
  }

  PromptBuilder Builder() const {
    int vocab = vocab_.size();
    return [vocab](const std::vector<int>& history) {
      std::vector<int> prompt = {text::Vocabulary::kBos};
      for (int item : history) {
        prompt.push_back(4 + (item % (vocab - 4)));
      }
      return prompt;
    };
  }

  std::unique_ptr<Server> MakeServer(ServerOptions opts) const {
    return std::make_unique<Server>(*model_, *trie_, *token_map_, Builder(),
                                    opts);
  }

  /// What the offline decoder returns for the same request.
  std::vector<llm::ScoredItem> Reference(const RecommendRequest& req,
                                         int beam_size) const {
    return llm::GenerateItems(*model_, Builder()(req.history), *trie_,
                              *token_map_, beam_size, req.top_n);
  }

  text::Vocabulary vocab_;
  quant::ItemIndexing indexing_ = quant::ItemIndexing::VanillaId(1);
  std::unique_ptr<quant::PrefixTrie> trie_;
  std::unique_ptr<llm::MiniLlm> model_;
  std::unique_ptr<llm::IndexTokenMap> token_map_;
};

void ExpectSameRanking(const std::vector<llm::ScoredItem>& got,
                       const std::vector<llm::ScoredItem>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].item, want[i].item) << "rank " << i;
    EXPECT_EQ(got[i].logprob, want[i].logprob) << "rank " << i;
  }
}

TEST_F(ServeTest, ConcurrentClientsMatchSequentialReference) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 3;
  ServerOptions opts;
  opts.beam_size = 6;
  opts.max_batch_lanes = 4;
  auto server = MakeServer(opts);

  // Distinct histories, references computed with the offline decoder.
  std::vector<RecommendRequest> reqs;
  std::vector<std::vector<llm::ScoredItem>> want;
  for (int i = 0; i < kThreads * kPerThread; ++i) {
    RecommendRequest r;
    r.history = {i, i + 1, 2 * i};
    r.top_n = 5;
    reqs.push_back(r);
    want.push_back(Reference(r, opts.beam_size));
  }

  std::vector<RecommendResponse> got(reqs.size());
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        size_t idx = static_cast<size_t>(t * kPerThread + i);
        got[idx] = server->Recommend(reqs[idx]);
      }
    });
  }
  for (auto& c : clients) c.join();

  for (size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_EQ(got[i].status, Status::kOk) << "request " << i;
    ExpectSameRanking(got[i].items, want[i]);
  }
  ServerStats s = server->stats();
  EXPECT_EQ(s.requests, kThreads * kPerThread);
  EXPECT_EQ(s.completed, kThreads * kPerThread);
  EXPECT_EQ(s.shed_queue_full, 0);
  EXPECT_EQ(s.shed_deadline, 0);
}

TEST_F(ServeTest, ResultCacheServesRepeatsWithoutDecoding) {
  ServerOptions opts;
  opts.beam_size = 6;
  auto server = MakeServer(opts);
  RecommendRequest req;
  req.history = {3, 1, 4};
  RecommendResponse first = server->Recommend(req);
  RecommendResponse second = server->Recommend(req);
  ASSERT_EQ(first.status, Status::kOk);
  ASSERT_EQ(second.status, Status::kOk);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  ExpectSameRanking(second.items, first.items);
  ServerStats s = server->stats();
  EXPECT_EQ(s.decoded, 1);
  EXPECT_EQ(s.cache_hits, 1);
}

TEST_F(ServeTest, CacheKeyedByTopNNotJustHistory) {
  ServerOptions opts;
  opts.beam_size = 6;
  auto server = MakeServer(opts);
  RecommendRequest req;
  req.history = {3, 1, 4};
  req.top_n = 5;
  RecommendRequest wider = req;
  wider.top_n = 8;
  EXPECT_FALSE(server->Recommend(req).cache_hit);
  RecommendResponse r = server->Recommend(wider);
  EXPECT_FALSE(r.cache_hit);  // different top_n must not share an entry
  EXPECT_EQ(r.items.size(), 6u);  // beam 6 caps the completed-item list
  EXPECT_EQ(server->stats().decoded, 2);
}

TEST_F(ServeTest, IdenticalInFlightRequestsAreCoalescedSingleFlight) {
  ServerOptions opts;
  opts.beam_size = 6;
  opts.start_scheduler = false;  // stage everything, then release
  opts.inline_fast_path = false;
  opts.cache_capacity = 0;  // force the dedup to happen in flight
  auto server = MakeServer(opts);

  RecommendRequest req;
  req.history = {7, 7, 7};
  std::vector<std::thread> clients;
  std::vector<RecommendResponse> got(8);
  clients.emplace_back([&] { got[0] = server->Recommend(req); });  // leader
  ASSERT_TRUE(WaitUntil([&] { return server->queue_depth() == 1; }));
  for (int i = 1; i < 8; ++i) {
    clients.emplace_back([&, i] { got[static_cast<size_t>(i)] =
                                      server->Recommend(req); });
  }
  // All seven followers must have joined the leader before release.
  ASSERT_TRUE(WaitUntil([&] { return server->stats().coalesced == 7; }));
  server->Start();
  for (auto& c : clients) c.join();

  ServerStats s = server->stats();
  EXPECT_EQ(s.decoded, 1) << "single-flight must decode exactly once";
  EXPECT_EQ(s.completed, 8);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(got[static_cast<size_t>(i)].status, Status::kOk);
    ExpectSameRanking(got[static_cast<size_t>(i)].items, got[0].items);
  }
  int coalesced = 0;
  for (const auto& r : got) coalesced += r.coalesced ? 1 : 0;
  EXPECT_EQ(coalesced, 7);
}

TEST_F(ServeTest, FullQueueShedsWithReasonInsteadOfBlocking) {
  ServerOptions opts;
  opts.degraded_fallbacks = false;  // this test asserts the shed contract
  opts.beam_size = 6;
  opts.start_scheduler = false;
  opts.inline_fast_path = false;
  opts.cache_capacity = 0;
  opts.max_queue = 2;
  auto server = MakeServer(opts);

  // Two distinct requests fill the queue while the scheduler is parked.
  std::vector<std::thread> blocked;
  std::vector<RecommendResponse> blocked_resp(2);
  for (int i = 0; i < 2; ++i) {
    blocked.emplace_back([&, i] {
      RecommendRequest r;
      r.history = {100 + i};
      blocked_resp[static_cast<size_t>(i)] = server->Recommend(r);
    });
  }
  ASSERT_TRUE(WaitUntil([&] { return server->queue_depth() == 2; }));

  // Further distinct requests are rejected immediately with a reason.
  for (int i = 0; i < 4; ++i) {
    RecommendRequest r;
    r.history = {200 + i};
    RecommendResponse resp = server->Recommend(r);
    EXPECT_EQ(resp.status, Status::kShedQueueFull);
    EXPECT_TRUE(resp.items.empty());
  }
  EXPECT_EQ(server->stats().shed_queue_full, 4);
  EXPECT_EQ(StatusName(Status::kShedQueueFull), "shed_queue_full");

  server->Start();
  for (auto& b : blocked) b.join();
  EXPECT_EQ(blocked_resp[0].status, Status::kOk);
  EXPECT_EQ(blocked_resp[1].status, Status::kOk);
}

TEST_F(ServeTest, ExpiredDeadlineIsShedAtAdmission) {
  ServerOptions opts;
  opts.degraded_fallbacks = false;  // this test asserts the shed contract
  opts.beam_size = 6;
  opts.start_scheduler = false;
  opts.inline_fast_path = false;
  auto server = MakeServer(opts);

  RecommendResponse resp;
  std::thread client([&] {
    RecommendRequest r;
    r.history = {42};
    r.deadline_ms = 5.0;
    resp = server->Recommend(r);
  });
  ASSERT_TRUE(WaitUntil([&] { return server->queue_depth() == 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server->Start();  // the scheduler finds the request already expired
  client.join();

  EXPECT_EQ(resp.status, Status::kShedDeadline);
  EXPECT_EQ(server->stats().shed_deadline, 1);
  EXPECT_EQ(server->stats().decoded, 0);
}

TEST_F(ServeTest, IdleServerServesSingleRequestInline) {
  ServerOptions opts;
  opts.beam_size = 6;
  auto server = MakeServer(opts);
  RecommendRequest req;
  req.history = {5, 9};
  RecommendResponse resp = server->Recommend(req);
  ASSERT_EQ(resp.status, Status::kOk);
  EXPECT_TRUE(resp.inline_path);
  ExpectSameRanking(resp.items, Reference(req, opts.beam_size));
  ServerStats s = server->stats();
  EXPECT_EQ(s.inline_fast_path, 1);
  // The request never waited on the scheduler: no batching-delay tax.
  EXPECT_EQ(s.batch_ticks, 0);
}

TEST_F(ServeTest, InlineDisabledStillMatchesReference) {
  ServerOptions opts;
  opts.beam_size = 6;
  opts.inline_fast_path = false;
  auto server = MakeServer(opts);
  RecommendRequest req;
  req.history = {5, 9};
  RecommendResponse resp = server->Recommend(req);
  ASSERT_EQ(resp.status, Status::kOk);
  EXPECT_FALSE(resp.inline_path);
  ExpectSameRanking(resp.items, Reference(req, opts.beam_size));
  EXPECT_GT(server->stats().batch_ticks, 0);
}

TEST_F(ServeTest, FullLoadRunRegistersNoLockOrderCycles) {
  // Lock-discipline acceptance for the serving stack: a concurrent load
  // run exercises every serve-path mutex (state, queue, cache, slo,
  // plus the obs internals they reach), and the lock-order graph it
  // builds must contain no cycle. Report mode so a violation fails this
  // assertion with the findings text rather than aborting the binary.
  obs::SetDeadlockMode(obs::DeadlockMode::kReport);
  obs::ResetDeadlockStateForTest();
  ServerOptions opts;
  opts.beam_size = 6;
  opts.max_batch_lanes = 4;
  auto server = MakeServer(opts);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 4;
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        RecommendRequest r;
        // Half repeats (cache + single-flight paths), half distinct.
        int seed = (i % 2 == 0) ? t : 1000 + t * kPerThread + i;
        r.history = {seed, seed + 1};
        r.top_n = 5;
        RecommendResponse resp = server->Recommend(r);
        EXPECT_EQ(resp.status, Status::kOk);
      }
    });
  }
  // Introspection during load: /statusz holds the debugz registry mutex
  // while serve's section callback reads slo + queue state, the one real
  // lock nesting in the serving stack — so the run records actual
  // lock-order edges, not a trivially empty graph.
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(obs::ReadStatusz().find("serve"), std::string::npos);
  }
  for (auto& c : clients) c.join();
  server->Stop();

  bool queue_locked = false;
  for (const obs::MutexStatsRow& row : obs::MutexStatsSnapshot()) {
    if (row.name == "serve.queue") queue_locked = row.acquisitions > 0;
  }
  EXPECT_TRUE(queue_locked);  // the detector saw the serve path
  EXPECT_GT(obs::LockOrderEdgeCount(), 0u);  // the run did build a graph
  EXPECT_EQ(obs::LockOrderCycleCount(), 0);
  std::vector<std::string> findings = obs::LockOrderFindings();
  EXPECT_TRUE(findings.empty())
      << "lock-order cycles flagged during load:\n"
      << (findings.empty() ? "" : findings[0]);
}

TEST_F(ServeTest, StopReleasesQueuedWaiters) {
  ServerOptions opts;
  opts.beam_size = 6;
  opts.start_scheduler = false;
  opts.inline_fast_path = false;
  auto server = MakeServer(opts);
  RecommendResponse resp;
  std::thread client([&] {
    RecommendRequest r;
    r.history = {11};
    resp = server->Recommend(r);
  });
  ASSERT_TRUE(WaitUntil([&] { return server->queue_depth() == 1; }));
  // Start-then-stop: the scheduler drains the admitted request before
  // exiting, so the waiter gets a real answer, not a stranded wait.
  server->Start();
  server->Stop();
  client.join();
  EXPECT_EQ(resp.status, Status::kOk);
}

}  // namespace
}  // namespace lcrec::serve

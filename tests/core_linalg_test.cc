#include "core/linalg.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/tensor.h"

namespace lcrec::core {
namespace {

TEST(Linalg, MatMulMatchesHandComputed) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {5, 6, 7, 8});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Linalg, CosineSimilaritySelfIsOne) {
  Rng rng(5);
  Tensor a = rng.GaussianTensor({4, 8}, 1.0);
  Tensor s = CosineSimilarity(a, a);
  for (int64_t i = 0; i < 4; ++i) EXPECT_NEAR(s.at(i, i), 1.0f, 1e-5f);
}

TEST(Linalg, CosineSimilarityOrthogonalIsZero) {
  Tensor a({1, 2}, {1.0f, 0.0f});
  Tensor b({1, 2}, {0.0f, 1.0f});
  EXPECT_NEAR(CosineSimilarity(a, b).at(0), 0.0f, 1e-6f);
}

TEST(Linalg, SquaredDistancesMatchesDefinition) {
  Tensor a({1, 2}, {0.0f, 0.0f});
  Tensor b({2, 2}, {3.0f, 4.0f, 1.0f, 1.0f});
  Tensor d = SquaredDistances(a, b);
  EXPECT_FLOAT_EQ(d.at(0, 0), 25.0f);
  EXPECT_FLOAT_EQ(d.at(0, 1), 2.0f);
}

TEST(Linalg, SymmetricEigenRecoversDiagonal) {
  Tensor a({3, 3}, {3, 0, 0, 0, 1, 0, 0, 0, 2});
  std::vector<float> values;
  Tensor vectors;
  SymmetricEigen(a, &values, &vectors);
  EXPECT_NEAR(values[0], 3.0f, 1e-4f);
  EXPECT_NEAR(values[1], 2.0f, 1e-4f);
  EXPECT_NEAR(values[2], 1.0f, 1e-4f);
}

TEST(Linalg, SymmetricEigenReconstructsMatrix) {
  Rng rng(13);
  int64_t n = 5;
  Tensor m = rng.GaussianTensor({n, n}, 1.0);
  // Symmetrize.
  Tensor a({n, n});
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < n; ++j)
      a.at(i * n + j) = 0.5f * (m.at(i * n + j) + m.at(j * n + i));
  std::vector<float> values;
  Tensor vectors;
  SymmetricEigen(a, &values, &vectors);
  // Reconstruct A = V^T diag(w) V where rows of V are eigenvectors.
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float s = 0.0f;
      for (int64_t k = 0; k < n; ++k)
        s += vectors.at(k * n + i) * values[k] * vectors.at(k * n + j);
      EXPECT_NEAR(s, a.at(i * n + j), 1e-3f);
    }
  }
}

TEST(Pca, RecoversDominantDirection) {
  // Data stretched along (1,1)/sqrt(2) in 2-D.
  Rng rng(3);
  int64_t n = 200;
  Tensor data({n, 2});
  for (int64_t i = 0; i < n; ++i) {
    float t = static_cast<float>(rng.Gaussian()) * 5.0f;
    float noise = static_cast<float>(rng.Gaussian()) * 0.1f;
    data.at(i, 0) = t + noise;
    data.at(i, 1) = t - noise;
  }
  Pca pca(data, 1);
  float c0 = pca.components().at(0);
  float c1 = pca.components().at(1);
  EXPECT_NEAR(std::abs(c0), std::abs(c1), 0.05f);
  EXPECT_NEAR(c0 * c0 + c1 * c1, 1.0f, 1e-3f);
  EXPECT_GT(pca.explained_variance()[0], 10.0f);
}

TEST(Pca, TransformCentersData) {
  Rng rng(9);
  Tensor data = rng.GaussianTensor({50, 4}, 1.0);
  Pca pca(data, 2);
  Tensor proj = pca.Transform(data);
  EXPECT_EQ(proj.rows(), 50);
  EXPECT_EQ(proj.cols(), 2);
  // Projected data has ~zero mean.
  for (int64_t j = 0; j < 2; ++j) {
    float mu = 0.0f;
    for (int64_t i = 0; i < 50; ++i) mu += proj.at(i, j);
    EXPECT_NEAR(mu / 50.0f, 0.0f, 1e-4f);
  }
}

}  // namespace
}  // namespace lcrec::core

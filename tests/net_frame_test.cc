// Byte-level tests for the RPC wire format (net/frame.h) and the
// Recommend codecs (net/codec.h): round-trips, truncation at every
// prefix, single-bit-flip fuzzing against the CRC, bounded rejection of
// oversized frames, and the no-partial-mutation guarantee of the
// two-phase decoders.

#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "net/codec.h"
#include "net/frame.h"
#include "serve/request.h"

namespace lcrec::net {
namespace {

Frame MakeFrame(const std::string& payload) {
  Frame f;
  f.type = FrameType::kRequest;
  f.method = 7;
  f.request_id = 0x1122334455667788ull;
  f.payload = payload;
  return f;
}

/// A sentinel-filled frame: any decoder write is detectable.
Frame Sentinel() {
  Frame f;
  f.type = FrameType::kError;
  f.method = 0xDEADBEEFu;
  f.request_id = 0xCAFEBABEull;
  f.payload = "sentinel";
  return f;
}

bool IsSentinel(const Frame& f) {
  return f.type == FrameType::kError && f.method == 0xDEADBEEFu &&
         f.request_id == 0xCAFEBABEull && f.payload == "sentinel";
}

TEST(FrameTest, RoundTrip) {
  const Frame in = MakeFrame("hello, wire");
  const std::string bytes = EncodeFrame(in);
  EXPECT_EQ(bytes.size(), kFrameHeaderBytes + in.payload.size() +
                              kFrameTrailerBytes);

  Frame out;
  size_t used = 0;
  std::string error;
  ASSERT_EQ(DecodeFrame(bytes, &out, &used, &error), FrameStatus::kOk)
      << error;
  EXPECT_EQ(used, bytes.size());
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.method, in.method);
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(FrameTest, EmptyPayloadRoundTrips) {
  const std::string bytes = EncodeFrame(MakeFrame(""));
  Frame out;
  size_t used = 0;
  ASSERT_EQ(DecodeFrame(bytes, &out, &used, nullptr), FrameStatus::kOk);
  EXPECT_TRUE(out.payload.empty());
  EXPECT_EQ(used, bytes.size());
}

TEST(FrameTest, ConcatenatedFramesDecodeInSequence) {
  std::string stream;
  for (int i = 0; i < 5; ++i) {
    Frame f = MakeFrame("payload " + std::to_string(i));
    f.request_id = static_cast<uint64_t>(i);
    stream += EncodeFrame(f);
  }
  for (int i = 0; i < 5; ++i) {
    Frame out;
    size_t used = 0;
    ASSERT_EQ(DecodeFrame(stream, &out, &used, nullptr), FrameStatus::kOk);
    EXPECT_EQ(out.request_id, static_cast<uint64_t>(i));
    EXPECT_EQ(out.payload, "payload " + std::to_string(i));
    stream.erase(0, used);
  }
  EXPECT_TRUE(stream.empty());
}

TEST(FrameTest, EveryTruncationNeedsMoreAndNeverMutates) {
  const std::string bytes = EncodeFrame(MakeFrame("truncation probe"));
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Frame out = Sentinel();
    size_t used = 0xABCD;
    std::string error;
    FrameStatus st =
        DecodeFrame(bytes.data(), cut, &out, &used, &error);
    EXPECT_EQ(st, FrameStatus::kNeedMore) << "cut at " << cut;
    EXPECT_TRUE(IsSentinel(out)) << "mutated at cut " << cut;
    EXPECT_EQ(used, 0xABCDu) << "frame_len written at cut " << cut;
  }
}

TEST(FrameTest, GarbageMagicIsBad) {
  std::string bytes = EncodeFrame(MakeFrame("x"));
  bytes[0] = 'G';
  Frame out = Sentinel();
  size_t used = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(bytes, &out, &used, &error), FrameStatus::kBad);
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(IsSentinel(out));
}

TEST(FrameTest, BadVersionAndTypeAreBad) {
  {
    std::string bytes = EncodeFrame(MakeFrame("x"));
    bytes[4] = static_cast<char>(0xFF);  // version low byte
    Frame out;
    size_t used = 0;
    EXPECT_EQ(DecodeFrame(bytes, &out, &used, nullptr), FrameStatus::kBad);
  }
  {
    std::string bytes = EncodeFrame(MakeFrame("x"));
    bytes[6] = 0;  // type = 0: outside the enum
    Frame out;
    size_t used = 0;
    EXPECT_EQ(DecodeFrame(bytes, &out, &used, nullptr), FrameStatus::kBad);
  }
}

TEST(FrameTest, SingleBitFlipNeverDecodesOk) {
  // CRC32 detects every single-bit error, so no flipped frame may parse
  // as a valid frame. kBad (CRC/magic/version), kNeedMore (length grew)
  // and kTooLarge (length grew past max) are all acceptable rejections.
  const std::string bytes = EncodeFrame(MakeFrame("bit flip fuzz target"));
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = bytes;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      Frame out;
      size_t used = 0;
      std::string error;
      FrameStatus st = DecodeFrame(flipped, &out, &used, &error);
      EXPECT_NE(st, FrameStatus::kOk)
          << "bit " << bit << " of byte " << byte << " slipped through";
    }
  }
}

TEST(FrameTest, OversizedPayloadIsBoundedReject) {
  Frame big = MakeFrame(std::string(256, 'p'));
  const std::string bytes = EncodeFrame(big);
  Frame out;
  size_t used = 0xABCD;
  std::string error;
  // A ceiling below the announced payload: reject without buffering,
  // but recover the header so the server can answer the request id.
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size(), &out, &used, &error,
                        /*max_payload=*/64),
            FrameStatus::kTooLarge);
  EXPECT_EQ(out.method, big.method);
  EXPECT_EQ(out.request_id, big.request_id);
  EXPECT_TRUE(out.payload.empty());
  EXPECT_EQ(used, 0xABCDu);  // nothing consumed
  // The same bytes under the default ceiling are fine.
  EXPECT_EQ(DecodeFrame(bytes, &out, &used, &error), FrameStatus::kOk);
}

TEST(FrameTest, WireReaderBoundsChecks) {
  std::string buf;
  PutU32(&buf, 77);
  PutF64(&buf, 2.5);
  WireReader r(buf);
  uint32_t u = 0;
  double d = 0.0;
  EXPECT_TRUE(r.ReadU32(&u));
  EXPECT_EQ(u, 77u);
  EXPECT_TRUE(r.ReadF64(&d));
  EXPECT_EQ(d, 2.5);
  EXPECT_TRUE(r.done());
  uint64_t big = 123;
  EXPECT_FALSE(r.ReadU64(&big));
  EXPECT_EQ(big, 123u);  // failed reads leave the output untouched

  WireReader short_reader(buf.data(), 3);
  uint32_t v = 55;
  EXPECT_FALSE(short_reader.ReadU32(&v));
  EXPECT_EQ(v, 55u);
  std::string bytes_out = "keep";
  EXPECT_FALSE(short_reader.ReadBytes(4, &bytes_out));
  EXPECT_EQ(bytes_out, "keep");
}

TEST(CodecTest, RequestRoundTrip) {
  serve::RecommendRequest in;
  in.history = {3, 1, 4, 1, 5, 9, 2, 6};
  in.top_n = 12;
  in.deadline_ms = 37.5;
  serve::RecommendRequest out;
  std::string error;
  ASSERT_TRUE(DecodeRecommendRequest(EncodeRecommendRequest(in), &out, &error))
      << error;
  EXPECT_EQ(out.history, in.history);
  EXPECT_EQ(out.top_n, in.top_n);
  EXPECT_EQ(out.deadline_ms, in.deadline_ms);
}

TEST(CodecTest, RequestRejectsMalformedPayloads) {
  serve::RecommendRequest req;
  req.history = {1, 2, 3};
  req.top_n = 5;
  const std::string good = EncodeRecommendRequest(req);

  serve::RecommendRequest out;
  std::string error;
  // Truncated at every prefix.
  for (size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(
        DecodeRecommendRequest(good.substr(0, cut), &out, &error))
        << "cut " << cut;
  }
  // Trailing garbage.
  EXPECT_FALSE(DecodeRecommendRequest(good + "x", &out, &error));
  // Absurd history length prefix must be rejected before allocation.
  std::string huge;
  PutU32(&huge, 0xFFFFFFFFu);
  EXPECT_FALSE(DecodeRecommendRequest(huge, &out, &error));
  // top_n = 0 is out of range.
  serve::RecommendRequest zero = req;
  zero.top_n = 0;
  EXPECT_FALSE(DecodeRecommendRequest(EncodeRecommendRequest(zero), &out,
                                      &error));
}

TEST(CodecTest, RequestDecodeFailureLeavesOutputUntouched) {
  serve::RecommendRequest out;
  out.history = {42, 43};
  out.top_n = 99;
  out.deadline_ms = 7.0;
  std::string error;
  ASSERT_FALSE(DecodeRecommendRequest("garbage", &out, &error));
  EXPECT_EQ(out.history, (std::vector<int>{42, 43}));
  EXPECT_EQ(out.top_n, 99);
  EXPECT_EQ(out.deadline_ms, 7.0);
}

TEST(CodecTest, ResponseRoundTripsFullContract) {
  // Every status, every degrade tier, every flag and the full label set
  // must survive the wire bit-for-bit: a remote caller sees exactly
  // what an in-process caller sees.
  const serve::Status statuses[] = {
      serve::Status::kOk, serve::Status::kShedQueueFull,
      serve::Status::kShedDeadline, serve::Status::kShutdown,
      serve::Status::kShedDecodeFailure};
  const serve::DegradeLevel degrades[] = {
      serve::DegradeLevel::kFull, serve::DegradeLevel::kBudgetCapped,
      serve::DegradeLevel::kStaleCache, serve::DegradeLevel::kPopularity};
  const char* labels[] = {"full", "budget_capped", "partial_decode",
                          "stale_cache", "popularity"};
  for (serve::Status status : statuses) {
    for (serve::DegradeLevel degrade : degrades) {
      for (const char* label : labels) {
        serve::RecommendResponse in;
        in.status = status;
        in.degrade = degrade;
        in.degrade_label = label;
        in.cache_hit = true;
        in.coalesced = false;
        in.inline_path = true;
        in.latency_ms = 3.25;
        in.items = {{5, -0.5f}, {9, -1.25f}, {0, -3.75f}};

        serve::RecommendResponse out;
        std::string error;
        ASSERT_TRUE(DecodeRecommendResponse(EncodeRecommendResponse(in),
                                            &out, &error))
            << error;
        EXPECT_EQ(out.status, in.status);
        EXPECT_EQ(out.degrade, in.degrade);
        EXPECT_STREQ(out.degrade_label, label);
        EXPECT_EQ(out.cache_hit, in.cache_hit);
        EXPECT_EQ(out.coalesced, in.coalesced);
        EXPECT_EQ(out.inline_path, in.inline_path);
        EXPECT_EQ(out.latency_ms, in.latency_ms);
        ASSERT_EQ(out.items.size(), in.items.size());
        for (size_t i = 0; i < in.items.size(); ++i) {
          EXPECT_EQ(out.items[i].item, in.items[i].item);
          // Bit-identical floats, not approximately-equal ones.
          uint32_t a = 0, b = 0;
          std::memcpy(&a, &out.items[i].logprob, 4);
          std::memcpy(&b, &in.items[i].logprob, 4);
          EXPECT_EQ(a, b);
        }
      }
    }
  }
}

TEST(CodecTest, ResponseRejectsMalformedPayloads) {
  serve::RecommendResponse resp;
  resp.items = {{1, -0.5f}, {2, -1.0f}};
  const std::string good = EncodeRecommendResponse(resp);

  serve::RecommendResponse out;
  std::string error;
  for (size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(DecodeRecommendResponse(good.substr(0, cut), &out, &error))
        << "cut " << cut;
  }
  EXPECT_FALSE(DecodeRecommendResponse(good + "x", &out, &error));
  // Unknown status byte.
  std::string bad_status = good;
  bad_status[0] = 17;
  EXPECT_FALSE(DecodeRecommendResponse(bad_status, &out, &error));
  // Unknown degrade byte.
  std::string bad_degrade = good;
  bad_degrade[1] = 9;
  EXPECT_FALSE(DecodeRecommendResponse(bad_degrade, &out, &error));
}

TEST(CodecTest, ResponseDecodeFailureLeavesOutputUntouched) {
  serve::RecommendResponse out;
  out.status = serve::Status::kShedDeadline;
  out.items = {{11, -2.0f}};
  out.latency_ms = 4.5;
  std::string error;
  ASSERT_FALSE(DecodeRecommendResponse("nope", &out, &error));
  EXPECT_EQ(out.status, serve::Status::kShedDeadline);
  ASSERT_EQ(out.items.size(), 1u);
  EXPECT_EQ(out.items[0].item, 11);
  EXPECT_EQ(out.latency_ms, 4.5);
}

TEST(CodecTest, UnknownLabelFallsBackToTierName) {
  serve::RecommendResponse in;
  in.degrade = serve::DegradeLevel::kStaleCache;
  in.degrade_label = "some_future_label";
  serve::RecommendResponse out;
  std::string error;
  ASSERT_TRUE(
      DecodeRecommendResponse(EncodeRecommendResponse(in), &out, &error));
  EXPECT_STREQ(out.degrade_label,
               serve::DegradeLevelName(serve::DegradeLevel::kStaleCache));
}

}  // namespace
}  // namespace lcrec::net

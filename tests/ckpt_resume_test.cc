#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/gru4rec.h"
#include "core/rng.h"
#include "data/dataset.h"
#include "llm/minillm.h"
#include "llm/trainer.h"
#include "quant/rqvae.h"

namespace lcrec {
namespace {

std::string ScratchDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/lcrec_resume_" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

constexpr int kVocab = 32;

llm::MiniLlmConfig SmallLlmConfig() {
  llm::MiniLlmConfig mc;
  mc.vocab_size = kVocab;
  mc.d_model = 16;
  mc.n_heads = 2;
  mc.n_layers = 1;
  mc.d_ff = 32;
  mc.max_seq = 24;
  mc.dropout = 0.1f;  // nonzero so resume must also replay dropout masks
  mc.seed = 5;
  return mc;
}

llm::TrainerOptions BaseTrainerOptions() {
  llm::TrainerOptions opt;
  opt.epochs = 3;
  opt.batch_size = 4;
  opt.learning_rate = 1e-2f;
  opt.clip_norm = 1.0f;
  opt.seed = 9;
  return opt;
}

std::vector<llm::TrainExample> MakeExamples(int n, uint64_t seed) {
  core::Rng rng(seed);
  std::vector<llm::TrainExample> out;
  for (int i = 0; i < n; ++i) {
    llm::TrainExample ex;
    int64_t prompt_len = 3 + rng.Below(5);
    int64_t response_len = 2 + rng.Below(3);
    for (int64_t j = 0; j < prompt_len; ++j) {
      ex.prompt.push_back(static_cast<int>(4 + rng.Below(kVocab - 4)));
    }
    for (int64_t j = 0; j < response_len; ++j) {
      ex.response.push_back(static_cast<int>(4 + rng.Below(kVocab - 4)));
    }
    ex.task = "seq";
    out.push_back(std::move(ex));
  }
  return out;
}

/// The tentpole acceptance test: kill a checkpointed run mid-epoch at an
/// arbitrary step, resume it in a fresh process (fresh model + trainer
/// objects), and require the per-step loss sequence to match an
/// uninterrupted run within 1e-6.
TEST(LlmTrainerResume, KilledRunResumesWithIdenticalStepLosses) {
  std::vector<llm::TrainExample> examples = MakeExamples(24, 77);

  // Reference: one uninterrupted run, no checkpointing.
  llm::MiniLlm ref_model(SmallLlmConfig());
  llm::LlmTrainer ref(&ref_model, BaseTrainerOptions());
  ref.Train(examples);
  std::vector<float> want = ref.step_losses();
  // 24 examples / batch 4 = 6 steps per epoch, 3 epochs.
  ASSERT_EQ(want.size(), 18u);

  // Interrupted run: checkpoint every 2 steps, killed after step 5 — the
  // last save (step 4) is mid-epoch, so the resume exercises the cursor.
  std::string dir = ScratchDir("llm_equivalence");
  {
    llm::MiniLlm model(SmallLlmConfig());
    llm::TrainerOptions opt = BaseTrainerOptions();
    opt.ckpt_dir = dir;
    opt.ckpt_every = 2;
    opt.stop_after_step = 5;
    llm::LlmTrainer trainer(&model, opt);
    trainer.Train(examples);
    EXPECT_TRUE(trainer.stop_requested());
    EXPECT_EQ(trainer.step(), 5);
  }

  // Resume in fresh objects, as a restarted process would.
  llm::MiniLlm model(SmallLlmConfig());
  llm::TrainerOptions opt = BaseTrainerOptions();
  opt.ckpt_dir = dir;
  opt.ckpt_every = 2;
  opt.resume = true;
  llm::LlmTrainer trainer(&model, opt);
  trainer.Train(examples);

  const std::vector<float>& got = trainer.step_losses();
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-6f) << "step " << i;
  }
  EXPECT_EQ(trainer.epochs_done(), 3);
}

TEST(LlmTrainerResume, EpochBoundaryResumeMatchesToo) {
  std::vector<llm::TrainExample> examples = MakeExamples(16, 31);
  llm::TrainerOptions base = BaseTrainerOptions();
  base.epochs = 2;

  llm::MiniLlm ref_model(SmallLlmConfig());
  llm::LlmTrainer ref(&ref_model, base);
  ref.Train(examples);

  std::string dir = ScratchDir("llm_epoch_boundary");
  {
    llm::MiniLlm model(SmallLlmConfig());
    llm::TrainerOptions opt = base;
    // Kill exactly at the first epoch boundary (16 examples / batch 4 =
    // 4 steps per epoch), so the newest checkpoint carries no cursor.
    opt.stop_after_step = 4;
    opt.ckpt_dir = dir;
    llm::LlmTrainer trainer(&model, opt);
    trainer.Train(examples);
    EXPECT_EQ(trainer.epochs_done(), 1);
  }
  llm::MiniLlm model(SmallLlmConfig());
  llm::TrainerOptions opt = base;
  opt.ckpt_dir = dir;
  opt.resume = true;
  llm::LlmTrainer trainer(&model, opt);
  trainer.Train(examples);

  ASSERT_EQ(trainer.step_losses().size(), ref.step_losses().size());
  for (size_t i = 0; i < ref.step_losses().size(); ++i) {
    EXPECT_NEAR(trainer.step_losses()[i], ref.step_losses()[i], 1e-6f)
        << "step " << i;
  }
}

TEST(LlmTrainerHealth, NanRollsBackToLastCheckpointAndRecovers) {
  std::vector<llm::TrainExample> examples = MakeExamples(16, 55);
  std::string dir = ScratchDir("llm_health");

  llm::MiniLlm model(SmallLlmConfig());
  llm::TrainerOptions opt = BaseTrainerOptions();
  opt.epochs = 1;
  opt.ckpt_dir = dir;
  llm::LlmTrainer trainer(&model, opt);
  trainer.Train(examples);  // leaves an epoch-boundary checkpoint
  ASSERT_EQ(trainer.epochs_done(), 1);

  // Poison one weight: the next forward pass produces a NaN loss, which
  // must trip the guard before the optimizer consumes the gradients.
  core::Parameter* p = model.params().All()[0];
  p->value.at(0) = std::nanf("");
  trainer.TrainEpoch(examples);
  EXPECT_TRUE(trainer.rolled_back());
  EXPECT_EQ(trainer.health_trips(), 1);
  // The rollback restored the checkpointed (finite) weights.
  EXPECT_TRUE(std::isfinite(p->value.at(0)));

  // Training continues cleanly from the restored state.
  float mean = trainer.TrainEpoch(examples);
  EXPECT_FALSE(trainer.rolled_back());
  EXPECT_TRUE(std::isfinite(mean));
  EXPECT_EQ(trainer.epochs_done(), 2);
}

TEST(LlmTrainerHealthDeathTest, NanWithoutCheckpointAborts) {
  std::vector<llm::TrainExample> examples = MakeExamples(8, 56);
  llm::MiniLlm model(SmallLlmConfig());
  llm::LlmTrainer trainer(&model, BaseTrainerOptions());
  model.params().All()[0]->value.at(0) = std::nanf("");
  // No checkpoint to roll back to: a clean abort beats training on
  // poisoned state.
  EXPECT_DEATH(trainer.TrainEpoch(examples), "numeric_health_recoverable");
}

TEST(LlmTrainerHealthDeathTest, RetriesExhaustedAborts) {
  std::vector<llm::TrainExample> examples = MakeExamples(8, 57);
  std::string dir = ScratchDir("llm_health_exhausted");
  llm::MiniLlm model(SmallLlmConfig());
  llm::TrainerOptions opt = BaseTrainerOptions();
  opt.epochs = 1;
  opt.ckpt_dir = dir;
  opt.health_max_retries = 2;
  llm::LlmTrainer trainer(&model, opt);
  trainer.Train(examples);

  // Re-poisoning after every rollback makes recovery impossible; the
  // guard must give up after max_retries trips instead of looping.
  EXPECT_DEATH(
      {
        for (int i = 0; i < 10; ++i) {
          model.params().All()[0]->value.at(0) = std::nanf("");
          trainer.TrainEpoch(examples);
        }
      },
      "numeric_health_recoverable");
}

quant::RqVaeConfig SmallRqVaeConfig() {
  quant::RqVaeConfig cfg;
  cfg.input_dim = 8;
  cfg.hidden_dim = 16;
  cfg.latent_dim = 4;
  cfg.levels = 2;
  cfg.codebook_size = 8;
  cfg.epochs = 6;
  cfg.warmup_epochs = 3;
  cfg.batch_size = 16;
  cfg.seed = 3;
  return cfg;
}

TEST(RqVaeResume, InterruptedTrainingMatchesUninterrupted) {
  core::Rng data_rng(29);
  core::Tensor embeddings = data_rng.GaussianTensor({40, 8}, 1.0);

  quant::RqVae ref(SmallRqVaeConfig());
  ref.Train(embeddings);
  std::vector<float> want = ref.epoch_losses();
  ASSERT_EQ(want.size(), 6u);

  // "Kill" after 3 of the 6 epochs (checkpoints land every epoch).
  std::string dir = ScratchDir("rqvae");
  {
    quant::RqVaeConfig cfg = SmallRqVaeConfig();
    cfg.epochs = 3;
    cfg.ckpt_dir = dir;
    quant::RqVae partial(cfg);
    partial.Train(embeddings);
    ASSERT_EQ(partial.epochs_done(), 3);
  }

  quant::RqVaeConfig cfg = SmallRqVaeConfig();
  cfg.ckpt_dir = dir;
  cfg.resume = true;
  quant::RqVae resumed(cfg);
  resumed.Train(embeddings);

  ASSERT_EQ(resumed.epoch_losses().size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(resumed.epoch_losses()[i], want[i], 1e-6f) << "epoch " << i;
  }
}

baselines::BaselineConfig SmallBaselineConfig() {
  baselines::BaselineConfig cfg;
  cfg.d_model = 16;
  cfg.d_ff = 32;
  cfg.n_layers = 1;
  cfg.epochs = 4;
  cfg.seed = 7;
  return cfg;
}

TEST(BaselineResume, Gru4RecResumesWithIdenticalEpochLosses) {
  data::Dataset dataset = data::Dataset::Make(data::Domain::kGames, 0.2, 41);

  baselines::Gru4Rec ref(SmallBaselineConfig());
  ref.Fit(dataset);
  std::vector<float> want = ref.fit_epoch_losses();
  ASSERT_EQ(want.size(), 4u);

  std::string dir = ScratchDir("gru4rec");
  {
    baselines::BaselineConfig cfg = SmallBaselineConfig();
    cfg.epochs = 2;
    cfg.ckpt_dir = dir;
    baselines::Gru4Rec partial(cfg);
    partial.Fit(dataset);
    ASSERT_EQ(partial.fit_epochs_done(), 2);
    // Per-model subdirectory keeps co-located baselines from colliding.
    EXPECT_TRUE(std::filesystem::exists(dir + "/" + partial.name()));
  }

  baselines::BaselineConfig cfg = SmallBaselineConfig();
  cfg.ckpt_dir = dir;
  cfg.resume = true;
  baselines::Gru4Rec resumed(cfg);
  resumed.Fit(dataset);

  ASSERT_EQ(resumed.fit_epoch_losses().size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(resumed.fit_epoch_losses()[i], want[i], 1e-6f)
        << "epoch " << i;
  }
}

TEST(LlmTrainerResume, MismatchedCheckpointFallsBackToFreshStart) {
  // A checkpoint from a differently-shaped model must be rejected as a
  // whole (two-phase decode), leaving the trainer starting fresh.
  std::vector<llm::TrainExample> examples = MakeExamples(8, 58);
  std::string dir = ScratchDir("llm_mismatch");
  {
    llm::MiniLlmConfig other = SmallLlmConfig();
    other.d_model = 32;  // different parameter shapes
    other.n_heads = 4;
    llm::MiniLlm model(other);
    llm::TrainerOptions opt = BaseTrainerOptions();
    opt.epochs = 1;
    opt.ckpt_dir = dir;
    llm::LlmTrainer trainer(&model, opt);
    trainer.Train(examples);
  }
  llm::MiniLlm model(SmallLlmConfig());
  llm::TrainerOptions opt = BaseTrainerOptions();
  opt.ckpt_dir = dir;
  opt.resume = true;
  llm::LlmTrainer trainer(&model, opt);
  EXPECT_FALSE(trainer.TryResume());
  EXPECT_EQ(trainer.step(), 0);
  EXPECT_EQ(trainer.epochs_done(), 0);
}

}  // namespace
}  // namespace lcrec

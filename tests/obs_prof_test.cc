// Tests for the profiling/perf-gating layer: sampling profiler
// attribution (obs/prof.h), live span stacks (obs/trace.h), FLOP/byte
// accounting (obs/flops.h), run manifests (obs/manifest.h), the
// Prometheus exposition (obs/registry.h), and the benchmark regression
// gate (obs/perfgate.h).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "core/linalg.h"
#include "core/rng.h"
#include "core/tensor.h"
#include "obs/flops.h"
#include "obs/manifest.h"
#include "obs/perfgate.h"
#include "obs/prof.h"
#include "obs/promcheck.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace {

using namespace lcrec;

/// Keeps the CPU busy long enough for the sampler to hit this frame.
void BusyMs(double ms) {
  auto until = std::chrono::steady_clock::now() +
               std::chrono::microseconds(static_cast<int64_t>(ms * 1000));
  volatile double sink = 0.0;
  while (std::chrono::steady_clock::now() < until) {
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<double>(i);
  }
}

/// RAII guard: enables span stacks + a fresh profiler session, restores
/// the disabled state on exit so tests do not leak into each other.
struct ProfilerSession {
  explicit ProfilerSession(double hz) {
    obs::SetSpanStacksEnabled(true);
    obs::SamplingProfiler::Global().Reset();
    obs::ResetSpanCosts();
    obs::SamplingProfiler::Global().Start(hz);
  }
  ~ProfilerSession() {
    obs::SamplingProfiler::Global().Stop();
    obs::SetSpanStacksEnabled(false);
  }
};

const obs::ProfileEntry* FindEntry(const obs::ProfileReport& report,
                                   const std::string& name) {
  for (const obs::ProfileEntry& e : report.entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

TEST(LiveStackTest, TracksNestingWhenEnabled) {
  obs::SetSpanStacksEnabled(true);
  EXPECT_TRUE(obs::SpanStacksEnabled());
  EXPECT_EQ(obs::CurrentLeafSpan(), nullptr);
  {
    obs::ScopedSpan outer("stack.outer");
    EXPECT_STREQ(obs::CurrentLeafSpan(), "stack.outer");
    {
      obs::ScopedSpan inner("stack.inner");
      EXPECT_STREQ(obs::CurrentLeafSpan(), "stack.inner");
      bool found_nested = false;
      for (const obs::LiveStackSample& s : obs::SnapshotLiveSpans()) {
        if (s.frames.size() == 2 &&
            std::string(s.frames[0]) == "stack.outer" &&
            std::string(s.frames[1]) == "stack.inner") {
          found_nested = true;
        }
      }
      EXPECT_TRUE(found_nested);
    }
    EXPECT_STREQ(obs::CurrentLeafSpan(), "stack.outer");
  }
  EXPECT_EQ(obs::CurrentLeafSpan(), nullptr);
  obs::SetSpanStacksEnabled(false);
  EXPECT_EQ(obs::CurrentLeafSpan(), nullptr);
}

TEST(SamplingProfilerTest, AttributesNestedSpans) {
  ProfilerSession session(500.0);
  {
    obs::ScopedSpan outer("prof.outer");
    BusyMs(40);
    {
      obs::ScopedSpan inner("prof.inner");
      BusyMs(80);
    }
    BusyMs(10);
  }
  obs::SamplingProfiler::Global().Stop();

  obs::ProfileReport report = obs::SamplingProfiler::Global().Report();
  ASSERT_GT(report.samples, 0);
  EXPECT_DOUBLE_EQ(report.hz, 500.0);
  EXPECT_GT(report.duration_s, 0.0);

  const obs::ProfileEntry* outer = FindEntry(report, "prof.outer");
  const obs::ProfileEntry* inner = FindEntry(report, "prof.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // The outer span covers the whole window, so its total dominates;
  // the inner span burned most of the time, so it owns self samples.
  EXPECT_GT(inner->self_samples, 0);
  EXPECT_GE(outer->total_samples, inner->total_samples);
  EXPECT_EQ(inner->self_samples, inner->total_samples);
  // The profiled thread was inside a span the whole session; allow slack
  // for other registered (idle) threads from earlier tests.
  EXPECT_GE(report.AttributedFraction(), 0.5);

  // Collapsed stacks carry the nesting.
  bool found = false;
  for (const auto& kv : report.collapsed) {
    if (kv.first == "prof.outer;prof.inner" && kv.second > 0) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SamplingProfilerTest, SurvivesConcurrentSpanChurn) {
  ProfilerSession session(1000.0);
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&stop] {
      while (!stop.load()) {
        obs::ScopedSpan a("churn.a");
        obs::ScopedSpan b("churn.b");
        obs::ScopedSpan c("churn.c");
      }
    });
  }
  BusyMs(60);
  stop.store(true);
  for (std::thread& w : workers) w.join();
  obs::SamplingProfiler::Global().Stop();

  obs::ProfileReport report = obs::SamplingProfiler::Global().Report();
  EXPECT_GT(report.samples, 0);
  // Spans churn far faster than the sampler; we only require sane
  // bookkeeping, not that any particular frame was caught mid-flight.
  for (const obs::ProfileEntry& e : report.entries) {
    EXPECT_GE(e.total_samples, e.self_samples);
  }
}

TEST(SamplingProfilerTest, WritesFlatAndCollapsedOutput) {
  ProfilerSession session(500.0);
  {
    obs::ScopedSpan span("prof.report_fmt");
    BusyMs(30);
  }
  obs::SamplingProfiler::Global().Stop();

  std::ostringstream flat;
  obs::SamplingProfiler::Global().WriteFlat(flat);
  EXPECT_NE(flat.str().find("prof.report_fmt"), std::string::npos);

  std::ostringstream collapsed;
  obs::SamplingProfiler::Global().WriteCollapsed(collapsed);
  EXPECT_NE(collapsed.str().find("prof.report_fmt "), std::string::npos);
}

TEST(KernelFlopsTest, MatMulCountsExactNominalCost) {
  // 2*m*k*n FLOPs and 4*(m*k + k*n + m*n) bytes for [3,4] x [4,5].
  core::Tensor a({3, 4});
  core::Tensor b({4, 5});
  for (int64_t i = 0; i < a.size(); ++i) a.at(i) = 1.0f + i;
  for (int64_t i = 0; i < b.size(); ++i) b.at(i) = 0.5f * i;

  int64_t flops_before = obs::TotalFlops();
  int64_t bytes_before = obs::TotalBytes();
  core::Tensor c = core::MatMul(a, b);
  EXPECT_EQ(obs::TotalFlops() - flops_before, 2 * 3 * 4 * 5);
  EXPECT_EQ(obs::TotalBytes() - bytes_before,
            4 * (3 * 4 + 4 * 5 + 3 * 5));

  // Zero-heavy inputs must count the same nominal cost even though the
  // kernel skips zero multiplies.
  a.Fill(0.0f);
  flops_before = obs::TotalFlops();
  c = core::MatMul(a, b);
  EXPECT_EQ(obs::TotalFlops() - flops_before, 2 * 3 * 4 * 5);
}

TEST(KernelFlopsTest, ChargesInnermostSpanWhileProfiling) {
  obs::SetSpanStacksEnabled(true);
  obs::ResetSpanCosts();
  core::Rng rng(11);
  core::Tensor a = rng.GaussianTensor({3, 4}, 1.0);
  core::Tensor b = rng.GaussianTensor({4, 5}, 1.0);
  {
    obs::ScopedSpan span("flops.attribution");
    core::Tensor c = core::MatMul(a, b);
  }
  obs::SetSpanStacksEnabled(false);

  std::map<std::string, obs::SpanCost> costs = obs::SpanCostSnapshot();
  ASSERT_TRUE(costs.count("flops.attribution"));
  EXPECT_EQ(costs["flops.attribution"].flops, 2 * 3 * 4 * 5);
  EXPECT_EQ(costs["flops.attribution"].bytes,
            4 * (3 * 4 + 4 * 5 + 3 * 5));
}

TEST(RunManifestTest, JsonRoundTripPreservesEveryField) {
  obs::RunManifest m = obs::CollectRunManifest();
  EXPECT_FALSE(m.timestamp.empty());
  EXPECT_FALSE(m.git_sha.empty());
  EXPECT_FALSE(m.compiler.empty());
  EXPECT_GT(m.cores, 0);

  obs::RunManifest back;
  ASSERT_TRUE(obs::ParseRunManifestJson(obs::RunManifestJson(m), &back));
  EXPECT_EQ(back.timestamp, m.timestamp);
  EXPECT_EQ(back.git_sha, m.git_sha);
  EXPECT_EQ(back.compiler, m.compiler);
  EXPECT_EQ(back.flags, m.flags);
  EXPECT_EQ(back.cpu, m.cpu);
  EXPECT_EQ(back.cores, m.cores);

  // The shared JSONL header row wraps the same object.
  std::string row = obs::RunManifestHeaderRow();
  EXPECT_EQ(row.rfind("{\"manifest\":", 0), 0u);
  ASSERT_TRUE(obs::ParseRunManifestJson(row, &back));
  EXPECT_EQ(back.git_sha, m.git_sha);
}

TEST(PerfGateTest, MetricDirectionFollowsNameSuffix) {
  EXPECT_TRUE(obs::HigherIsBetter("matmul128/gflops"));
  EXPECT_TRUE(obs::HigherIsBetter("rqvae_quantize/items_per_sec"));
  EXPECT_TRUE(obs::HigherIsBetter("decode/ops_per_sec"));
  EXPECT_FALSE(obs::HigherIsBetter("matmul128/p50_ms"));
  EXPECT_FALSE(obs::HigherIsBetter("llm_decode/mean_ms"));
}

TEST(PerfGateTest, RecordJsonRoundTrips) {
  obs::PerfRecord rec;
  rec.manifest = obs::CollectRunManifest();
  rec.metrics["matmul128/p50_ms"] = {1.25, 0.4};
  rec.metrics["matmul128/gflops"] = {3.5, 0.5};

  obs::PerfRecord back;
  ASSERT_TRUE(obs::ParsePerfRecordJson(obs::PerfRecordJson(rec), &back));
  ASSERT_EQ(back.metrics.size(), 2u);
  EXPECT_DOUBLE_EQ(back.metrics["matmul128/p50_ms"].value, 1.25);
  EXPECT_DOUBLE_EQ(back.metrics["matmul128/p50_ms"].tolerance, 0.4);
  EXPECT_DOUBLE_EQ(back.metrics["matmul128/gflops"].value, 3.5);
  EXPECT_EQ(back.manifest.git_sha, rec.manifest.git_sha);

  std::string path =
      testing::TempDir() + "/lcrec_perfgate_roundtrip.json";
  ASSERT_TRUE(obs::WritePerfRecordFile(path, rec));
  obs::PerfRecord from_file;
  ASSERT_TRUE(obs::ReadPerfRecordFile(path, &from_file));
  EXPECT_EQ(from_file.metrics.size(), 2u);
  std::remove(path.c_str());
}

TEST(PerfGateTest, DoctoredBaselineTriggersFailure) {
  obs::PerfRecord baseline;
  baseline.metrics["k/p50_ms"] = {1.0, 0.25};
  baseline.metrics["k/gflops"] = {10.0, 0.25};

  // Within tolerance: passes.
  obs::PerfRecord ok = baseline;
  ok.metrics["k/p50_ms"].value = 1.2;
  ok.metrics["k/gflops"].value = 8.5;
  EXPECT_TRUE(obs::ComparePerf(baseline, ok).ok);

  // Latency regression (2x slower than the doctored baseline).
  obs::PerfRecord slow = baseline;
  slow.metrics["k/p50_ms"].value = 2.0;
  obs::PerfGateResult r = obs::ComparePerf(baseline, slow);
  EXPECT_FALSE(r.ok);
  bool flagged = false;
  for (const obs::PerfDiff& d : r.diffs) {
    if (d.name == "k/p50_ms") {
      EXPECT_TRUE(d.regressed);
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged);
  EXPECT_NE(obs::FormatPerfDiff(r).find("FAIL"), std::string::npos);
  EXPECT_NE(obs::FormatPerfDiff(r).find("REGRESSED"), std::string::npos);

  // Throughput direction: dropping gflops is a regression, raising p50
  // throughput-named metrics is not.
  obs::PerfRecord low_tput = baseline;
  low_tput.metrics["k/gflops"].value = 5.0;
  EXPECT_FALSE(obs::ComparePerf(baseline, low_tput).ok);
  obs::PerfRecord fast = baseline;
  fast.metrics["k/p50_ms"].value = 0.2;
  fast.metrics["k/gflops"].value = 40.0;
  EXPECT_TRUE(obs::ComparePerf(baseline, fast).ok);

  // A metric present in the baseline but missing now fails the gate; a
  // new metric is informational only.
  obs::PerfRecord missing = baseline;
  missing.metrics.erase("k/gflops");
  EXPECT_FALSE(obs::ComparePerf(baseline, missing).ok);
  obs::PerfRecord added = baseline;
  added.metrics["k2/p50_ms"] = {3.0, 0.25};
  obs::PerfGateResult ra = obs::ComparePerf(baseline, added);
  EXPECT_TRUE(ra.ok);
  bool saw_added = false;
  for (const obs::PerfDiff& d : ra.diffs) {
    if (d.name == "k2/p50_ms") saw_added = d.added;
  }
  EXPECT_TRUE(saw_added);
}

TEST(PrometheusTest, ExposesAllMetricTypes) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("lcrec.promtest.requests").Add(7);
  reg.GetGauge("lcrec.promtest.temp").Set(2.5);
  obs::Histogram& h =
      reg.GetHistogram("lcrec.promtest.lat_ms", {1.0, 10.0});
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(50.0);

  std::ostringstream out;
  reg.DumpPrometheus(out);
  std::string text = out.str();

  // Dots sanitize to underscores; each family gets a TYPE line.
  EXPECT_NE(text.find("# TYPE lcrec_promtest_requests counter"),
            std::string::npos);
  EXPECT_NE(text.find("lcrec_promtest_requests 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lcrec_promtest_temp gauge"),
            std::string::npos);
  EXPECT_NE(text.find("lcrec_promtest_temp 2.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lcrec_promtest_lat_ms histogram"),
            std::string::npos);
  // Buckets are cumulative with an explicit +Inf bucket.
  EXPECT_NE(text.find("lcrec_promtest_lat_ms_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("lcrec_promtest_lat_ms_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("lcrec_promtest_lat_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("lcrec_promtest_lat_ms_count 3"), std::string::npos);
  EXPECT_NE(text.find("lcrec_promtest_lat_ms_sum 55.5"), std::string::npos);
}

/// Exposition-format conformance, via the shared checker
/// (obs/promcheck.h): every line of the dump must be either a
/// `# TYPE <name> <counter|gauge|histogram>` line or a sample
/// `<name>[{le="<bound>"}] <value>`, names must match the Prometheus
/// grammar, TYPE must precede its family's samples, histogram buckets
/// must be cumulative with the +Inf bucket equal to _count, and
/// non-finite values must render as +Inf/-Inf/NaN (never JSON null).
TEST(PrometheusTest, ExpositionFormatConformance) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("lcrec.promconf.requests").Add(3);
  reg.GetGauge("lcrec.promconf.nan_gauge")
      .Set(std::numeric_limits<double>::quiet_NaN());
  reg.GetGauge("lcrec.promconf.inf_gauge")
      .Set(std::numeric_limits<double>::infinity());
  obs::Histogram& h =
      reg.GetHistogram("lcrec.promconf.lat_ms", {0.5, 1.0, 10.0});
  for (double v : {0.1, 0.7, 0.8, 5.0, 100.0}) h.Observe(v);

  std::ostringstream out;
  reg.DumpPrometheus(out);

  obs::PromCheckResult check = obs::CheckPrometheusExposition(out.str());
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_GT(check.lines, 0);
  // The registry is process-global, so every histogram any test touched
  // is in the dump; the checker verified +Inf == _count for all of them.
  EXPECT_GE(check.histograms, 1);
  EXPECT_GE(check.families, 4);
  // The NaN gauge rendered as literal NaN.
  EXPECT_NE(out.str().find("lcrec_promconf_nan_gauge NaN"),
            std::string::npos);
  EXPECT_NE(out.str().find("lcrec_promconf_inf_gauge +Inf"),
            std::string::npos);
}

/// The checker itself rejects the violations it claims to: a mutated
/// dump must fail, so "scrape passed the checker" in the live tests and
/// the CI probe is meaningful.
TEST(PrometheusTest, ExpositionCheckerRejectsViolations) {
  const std::string good =
      "# TYPE lcrec_chk_lat histogram\n"
      "lcrec_chk_lat_bucket{le=\"1\"} 1\n"
      "lcrec_chk_lat_bucket{le=\"+Inf\"} 2\n"
      "lcrec_chk_lat_sum 3.5\n"
      "lcrec_chk_lat_count 2\n";
  EXPECT_TRUE(obs::CheckPrometheusExposition(good).ok);

  struct Case {
    const char* why;
    const char* text;
  };
  const Case bad_cases[] = {
      {"blank line", "# TYPE a counter\n\na 1\n"},
      {"null value", "# TYPE a gauge\na null\n"},
      {"sample before TYPE", "a 1\n# TYPE a counter\n"},
      {"duplicate TYPE", "# TYPE a counter\n# TYPE a counter\na 1\n"},
      {"bad type", "# TYPE a summary\na 1\n"},
      {"bad name", "# TYPE 9a counter\n9a 1\n"},
      {"bad value", "# TYPE a counter\na one\n"},
      {"non-cumulative buckets",
       "# TYPE h histogram\nh_bucket{le=\"1\"} 5\n"
       "h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n"},
      {"+Inf != count",
       "# TYPE h histogram\nh_bucket{le=\"1\"} 1\n"
       "h_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n"},
      {"histogram without +Inf",
       "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
  };
  for (const Case& c : bad_cases) {
    EXPECT_FALSE(obs::CheckPrometheusExposition(c.text).ok) << c.why;
  }
}

}  // namespace

#include "ckpt/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/faultfs.h"
#include "core/graph.h"
#include "core/rng.h"
#include "core/serialize.h"
#include "core/tensor.h"
#include "obs/registry.h"

namespace lcrec::ckpt {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test so rotation / fallback tests never see
/// each other's files.
std::string ScratchDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/lcrec_ckpt_" + name;
  std::error_code ec;
  fs::remove_all(dir, ec);
  return dir;
}

Checkpoint MakeCheckpoint(int64_t step) {
  Checkpoint c;
  c.step = step;
  // Binary payloads with embedded NULs and high bytes: the container must
  // be 8-bit clean.
  c.Add("params", std::string("\x00\x01\xff\x7f nul\x00 inside", 16));
  c.Add("rng", "12345 0.5 1 0 spare");
  c.Add("trainer", std::string(64, '\xab'));
  return c;
}

void ExpectSameSections(const Checkpoint& a, const Checkpoint& b) {
  ASSERT_EQ(a.sections().size(), b.sections().size());
  for (size_t i = 0; i < a.sections().size(); ++i) {
    EXPECT_EQ(a.sections()[i].first, b.sections()[i].first);
    EXPECT_EQ(a.sections()[i].second, b.sections()[i].second);
  }
}

TEST(Crc32, MatchesKnownVector) {
  // The standard CRC-32 check value: crc32("123456789") = 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(Crc32(s, 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(Crc32, DetectsAnySingleByteChange) {
  std::string msg = "residual quantization";
  uint32_t base = Crc32(msg.data(), msg.size());
  for (size_t i = 0; i < msg.size(); ++i) {
    std::string mutated = msg;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x40);
    EXPECT_NE(Crc32(mutated.data(), mutated.size()), base) << "byte " << i;
  }
}

TEST(Checkpoint, EncodeDecodeRoundTrip) {
  Checkpoint c = MakeCheckpoint(42);
  std::string bytes = EncodeCheckpoint(c);
  Checkpoint back;
  std::string error;
  ASSERT_TRUE(DecodeCheckpoint(bytes, &back, &error)) << error;
  EXPECT_EQ(back.step, 42);
  ExpectSameSections(c, back);
  ASSERT_NE(back.Find("rng"), nullptr);
  EXPECT_EQ(*back.Find("rng"), "12345 0.5 1 0 spare");
  EXPECT_EQ(back.Find("missing"), nullptr);
}

TEST(Checkpoint, EmptyCheckpointRoundTrips) {
  Checkpoint c;
  c.step = 0;
  Checkpoint back;
  std::string error;
  ASSERT_TRUE(DecodeCheckpoint(EncodeCheckpoint(c), &back, &error)) << error;
  EXPECT_EQ(back.step, 0);
  EXPECT_TRUE(back.sections().empty());
}

TEST(Checkpoint, EveryTruncationIsRejectedWithoutCrashing) {
  std::string bytes = EncodeCheckpoint(MakeCheckpoint(7));
  for (size_t n = 0; n < bytes.size(); ++n) {
    Checkpoint out;
    std::string error;
    EXPECT_FALSE(DecodeCheckpoint(bytes.substr(0, n), &out, &error))
        << "prefix of " << n << " bytes decoded";
    EXPECT_FALSE(error.empty());
  }
}

TEST(Checkpoint, EverySingleBitFlipIsRejected) {
  std::string bytes = EncodeCheckpoint(MakeCheckpoint(7));
  // CRC-32 detects all single-bit errors, so a flip anywhere — header,
  // section names, payload bytes, or the stored crc itself — must reject.
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
    Checkpoint out;
    std::string error;
    EXPECT_FALSE(DecodeCheckpoint(mutated, &out, &error)) << "byte " << i;
  }
}

TEST(Checkpoint, TrailingGarbageIsRejected) {
  std::string bytes = EncodeCheckpoint(MakeCheckpoint(7));
  Checkpoint out;
  std::string error;
  EXPECT_FALSE(DecodeCheckpoint(bytes + "extra", &out, &error));
}

TEST(Checkpoint, FileNameIsZeroPaddedByStep) {
  EXPECT_EQ(CheckpointFileName(0), "ckpt-000000000000.lckp");
  EXPECT_EQ(CheckpointFileName(42), "ckpt-000000000042.lckp");
  // Padding keeps lexicographic order equal to step order.
  EXPECT_LT(CheckpointFileName(999), CheckpointFileName(1000));
}

TEST(CheckpointFile, WriteReadRoundTrip) {
  std::string dir = ScratchDir("file_roundtrip");
  fs::create_directories(dir);
  std::string path = dir + "/" + CheckpointFileName(3);
  Checkpoint c = MakeCheckpoint(3);
  std::string error;
  ASSERT_TRUE(WriteCheckpointFile(path, c, &error)) << error;
  Checkpoint back;
  ASSERT_TRUE(ReadCheckpointFile(path, &back, &error)) << error;
  EXPECT_EQ(back.step, 3);
  ExpectSameSections(c, back);
  // No temp file left behind by a successful write.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(SaveToDir, RotationKeepsNewestK) {
  std::string dir = ScratchDir("rotation");
  std::string error;
  for (int64_t step = 1; step <= 5; ++step) {
    ASSERT_TRUE(SaveToDir(dir, MakeCheckpoint(step), /*keep_last=*/3, &error))
        << error;
  }
  std::vector<std::string> files = ListCheckpointFiles(dir);
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(fs::path(files[0]).filename(), CheckpointFileName(3));
  EXPECT_EQ(fs::path(files[1]).filename(), CheckpointFileName(4));
  EXPECT_EQ(fs::path(files[2]).filename(), CheckpointFileName(5));
}

TEST(SaveToDir, RemovesStaleTempFiles) {
  std::string dir = ScratchDir("stale_tmp");
  fs::create_directories(dir);
  {
    std::ofstream os(dir + "/ckpt-000000000009.lckp.tmp", std::ios::binary);
    os << "half-written leftovers from a crashed writer";
  }
  std::string error;
  ASSERT_TRUE(SaveToDir(dir, MakeCheckpoint(10), 3, &error)) << error;
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
}

TEST(LoadLatestValid, FallsBackPastCorruptNewest) {
  std::string dir = ScratchDir("fallback");
  std::string error;
  ASSERT_TRUE(SaveToDir(dir, MakeCheckpoint(1), 5, &error)) << error;
  ASSERT_TRUE(SaveToDir(dir, MakeCheckpoint(2), 5, &error)) << error;
  // Corrupt the newest file in place (flip a payload byte).
  std::string newest = dir + "/" + CheckpointFileName(2);
  {
    std::fstream f(newest, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(30);
    f.put('\x5a');
  }
  int64_t skipped_before = obs::MetricsRegistry::Global()
                               .GetCounter("lcrec.ckpt.corrupt_skipped")
                               .value();
  Checkpoint out;
  std::string path;
  ASSERT_TRUE(LoadLatestValid(dir, &out, &path));
  EXPECT_EQ(out.step, 1);
  EXPECT_EQ(fs::path(path).filename(), CheckpointFileName(1));
  EXPECT_GT(obs::MetricsRegistry::Global()
                .GetCounter("lcrec.ckpt.corrupt_skipped")
                .value(),
            skipped_before);
}

TEST(LoadLatestValid, EmptyOrMissingDirFails) {
  Checkpoint out;
  EXPECT_FALSE(LoadLatestValid(ScratchDir("nonexistent"), &out));
}

TEST(FaultSpec, ParsesTheGrammar) {
  FaultSpec spec;
  ASSERT_TRUE(ParseFaultSpec("write:3:short", &spec));
  EXPECT_EQ(spec.op, FaultSpec::Op::kWrite);
  EXPECT_EQ(spec.nth, 3);
  EXPECT_EQ(spec.mode, FaultSpec::Mode::kShort);
  ASSERT_TRUE(ParseFaultSpec("rename:1:crash", &spec));
  EXPECT_EQ(spec.op, FaultSpec::Op::kRename);
  EXPECT_EQ(spec.mode, FaultSpec::Mode::kCrash);
  ASSERT_TRUE(ParseFaultSpec("fsync:2", &spec));
  EXPECT_EQ(spec.op, FaultSpec::Op::kFsync);
  EXPECT_EQ(spec.mode, FaultSpec::Mode::kFail);

  // Probabilistic mode: `<op>:p:<rate>[:<mode>]`, rate grammar shared
  // with LCREC_CHAOS via obs::ParseInjectRate.
  ASSERT_TRUE(ParseFaultSpec("write:p:0.05:enospc", &spec));
  EXPECT_EQ(spec.op, FaultSpec::Op::kWrite);
  EXPECT_EQ(spec.nth, 0);
  EXPECT_DOUBLE_EQ(spec.rate, 0.05);
  EXPECT_EQ(spec.mode, FaultSpec::Mode::kEnospc);
  ASSERT_TRUE(ParseFaultSpec("fsync:p:1", &spec));
  EXPECT_EQ(spec.op, FaultSpec::Op::kFsync);
  EXPECT_EQ(spec.nth, 0);
  EXPECT_DOUBLE_EQ(spec.rate, 1.0);
  EXPECT_EQ(spec.mode, FaultSpec::Mode::kFail);

  EXPECT_FALSE(ParseFaultSpec("", &spec));
  EXPECT_FALSE(ParseFaultSpec("write", &spec));
  EXPECT_FALSE(ParseFaultSpec("chmod:1", &spec));
  EXPECT_FALSE(ParseFaultSpec("write:0", &spec));
  EXPECT_FALSE(ParseFaultSpec("write:x", &spec));
  EXPECT_FALSE(ParseFaultSpec("write:1:explode", &spec));
  EXPECT_FALSE(ParseFaultSpec("write:p", &spec));
  EXPECT_FALSE(ParseFaultSpec("write:p:0", &spec));
  EXPECT_FALSE(ParseFaultSpec("write:p:1.5", &spec));
  EXPECT_FALSE(ParseFaultSpec("write:p:x", &spec));
  EXPECT_FALSE(ParseFaultSpec("write:p:0.5:explode", &spec));
}

/// Arms one fault, attempts a save on top of an existing good checkpoint,
/// and verifies the atomic protocol: the save fails, the previous latest
/// is still loadable, nothing half-written was published, no temp remains.
void ExpectFailedSaveLeavesDirClean(const std::string& spec_text,
                                    const std::string& dirname) {
  std::string dir = ScratchDir(dirname);
  std::string error;
  ASSERT_TRUE(SaveToDir(dir, MakeCheckpoint(1), 3, &error)) << error;

  FaultSpec spec;
  ASSERT_TRUE(ParseFaultSpec(spec_text, &spec));
  ArmFaults(spec);
  bool ok = SaveToDir(dir, MakeCheckpoint(2), 3, &error);
  DisarmFaults();
  EXPECT_FALSE(ok) << spec_text << " did not fail the save";
  EXPECT_FALSE(error.empty());

  // Only the step-1 file is published; the failed step-2 attempt left no
  // target file and no temp file.
  std::vector<std::string> files = ListCheckpointFiles(dir);
  ASSERT_EQ(files.size(), 1u) << spec_text;
  EXPECT_EQ(fs::path(files[0]).filename(), CheckpointFileName(1));
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
  Checkpoint out;
  ASSERT_TRUE(LoadLatestValid(dir, &out));
  EXPECT_EQ(out.step, 1);
}

TEST(FaultInjection, FailedWriteLeavesPreviousLatest) {
  ExpectFailedSaveLeavesDirClean("write:1:fail", "write_fail");
}

TEST(FaultInjection, TornWriteLeavesPreviousLatest) {
  ExpectFailedSaveLeavesDirClean("write:1:short", "write_short");
}

TEST(FaultInjection, EnospcLeavesPreviousLatest) {
  ExpectFailedSaveLeavesDirClean("write:1:enospc", "write_enospc");
}

TEST(FaultInjection, FailedFsyncLeavesPreviousLatest) {
  ExpectFailedSaveLeavesDirClean("fsync:1:fail", "fsync_fail");
}

TEST(FaultInjection, FailedRenameLeavesPreviousLatest) {
  ExpectFailedSaveLeavesDirClean("rename:1:fail", "rename_fail");
}

TEST(FaultInjection, ProbabilisticRateOneFailsTheSave) {
  // p-mode at rate 1 is deterministic (every write fires), so the full
  // dir-clean contract is checkable just like the nth-mode faults.
  ExpectFailedSaveLeavesDirClean("write:p:1", "write_p_always");
}

TEST(FaultInjection, ProbabilisticNegligibleRateLeavesSavesAlone) {
  // The other edge: a rate so small it will not fire in a handful of
  // draws must leave the protocol untouched (armed != failing).
  std::string dir = ScratchDir("write_p_never");
  FaultSpec spec;
  ASSERT_TRUE(ParseFaultSpec("write:p:0.000000001", &spec));
  ArmFaults(spec);
  std::string error;
  bool ok = SaveToDir(dir, MakeCheckpoint(1), 3, &error);
  DisarmFaults();
  ASSERT_TRUE(ok) << error;
  Checkpoint out;
  ASSERT_TRUE(LoadLatestValid(dir, &out));
  EXPECT_EQ(out.step, 1);
}

TEST(FaultCrashDeathTest, CrashDuringWriteNeverPublishesTornFile) {
  std::string dir = ScratchDir("write_crash");
  std::string error;
  ASSERT_TRUE(SaveToDir(dir, MakeCheckpoint(1), 3, &error)) << error;

  // The child re-arms so its operation counters start from zero, then dies
  // mid-write with half of step 2's bytes in the temp file.
  EXPECT_DEATH(
      {
        FaultSpec spec;
        ParseFaultSpec("write:1:crash", &spec);
        ArmFaults(spec);
        std::string err;
        SaveToDir(dir, MakeCheckpoint(2), 3, &err);
      },
      "injected crash");

  // Recovery sees only step 1: the torn step-2 bytes live in a .tmp that
  // readers ignore, never under the published name.
  std::vector<std::string> files = ListCheckpointFiles(dir);
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(fs::path(files[0]).filename(), CheckpointFileName(1));
  Checkpoint out;
  ASSERT_TRUE(LoadLatestValid(dir, &out));
  EXPECT_EQ(out.step, 1);

  // The next successful save reclaims the stale temp.
  ASSERT_TRUE(SaveToDir(dir, MakeCheckpoint(3), 3, &error)) << error;
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
  ASSERT_TRUE(LoadLatestValid(dir, &out));
  EXPECT_EQ(out.step, 3);
}

TEST(FaultCrashDeathTest, CrashBeforeRenameNeverPublishes) {
  std::string dir = ScratchDir("rename_crash");
  std::string error;
  ASSERT_TRUE(SaveToDir(dir, MakeCheckpoint(1), 3, &error)) << error;

  // Power loss in the window after the temp file is complete but before
  // the rename publishes it.
  EXPECT_DEATH(
      {
        FaultSpec spec;
        ParseFaultSpec("rename:1:crash", &spec);
        ArmFaults(spec);
        std::string err;
        SaveToDir(dir, MakeCheckpoint(2), 3, &err);
      },
      "injected crash");

  std::vector<std::string> files = ListCheckpointFiles(dir);
  ASSERT_EQ(files.size(), 1u);
  Checkpoint out;
  ASSERT_TRUE(LoadLatestValid(dir, &out));
  EXPECT_EQ(out.step, 1);

  ASSERT_TRUE(SaveToDir(dir, MakeCheckpoint(3), 3, &error)) << error;
  ASSERT_TRUE(LoadLatestValid(dir, &out));
  EXPECT_EQ(out.step, 3);
}

TEST(PodHelpers, RoundTripAndTruncationDetection) {
  std::ostringstream os(std::ios::binary);
  PutPod(os, static_cast<int64_t>(-7));
  PutPod(os, 2.5f);
  std::string bytes = std::move(os).str();

  std::istringstream is(bytes, std::ios::binary);
  int64_t i = 0;
  float f = 0.0f;
  ASSERT_TRUE(GetPod(is, &i));
  ASSERT_TRUE(GetPod(is, &f));
  EXPECT_EQ(i, -7);
  EXPECT_EQ(f, 2.5f);
  double trailing = 0.0;
  EXPECT_FALSE(GetPod(is, &trailing));
}

/// Byte-level fuzz of the parameter-blob reader: whatever prefix of a valid
/// blob it is fed, it must reject cleanly and leave the store untouched.
TEST(LoadParamsFuzz, TruncationNeverMutatesTheStore) {
  core::Rng rng(11);
  std::string blob;
  {
    core::ParamStore store;
    store.Create("a", rng.GaussianTensor({3, 4}, 1.0));
    store.Create("b", rng.GaussianTensor({5}, 1.0));
    std::ostringstream os(std::ios::binary);
    ASSERT_TRUE(core::SaveParamsToStream(store, os));
    blob = std::move(os).str();
  }
  for (size_t n = 0; n < blob.size(); ++n) {
    core::ParamStore target;
    core::Parameter* a = target.Create("a", core::Tensor::Zeros({3, 4}));
    core::Parameter* b = target.Create("b", core::Tensor::Zeros({5}));
    for (int64_t i = 0; i < a->value.size(); ++i) a->value.at(i) = 7.5f;
    for (int64_t i = 0; i < b->value.size(); ++i) b->value.at(i) = 7.5f;
    std::istringstream is(blob.substr(0, n), std::ios::binary);
    EXPECT_FALSE(core::LoadParamsFromStream(target, is))
        << "prefix of " << n << " bytes loaded";
    // Two-phase load: no parameter may be partially overwritten.
    for (int64_t i = 0; i < a->value.size(); ++i) {
      ASSERT_EQ(a->value.at(i), 7.5f) << "prefix " << n << " mutated a[" << i
                                      << "]";
    }
    for (int64_t i = 0; i < b->value.size(); ++i) {
      ASSERT_EQ(b->value.at(i), 7.5f) << "prefix " << n << " mutated b[" << i
                                      << "]";
    }
  }
}

TEST(LoadParamsFuzz, LateShapeMismatchLeavesEarlierParamsUntouched) {
  core::Rng rng(13);
  std::string blob;
  {
    core::ParamStore store;
    store.Create("a", rng.GaussianTensor({3, 4}, 1.0));
    store.Create("b", rng.GaussianTensor({5}, 1.0));
    std::ostringstream os(std::ios::binary);
    ASSERT_TRUE(core::SaveParamsToStream(store, os));
    blob = std::move(os).str();
  }
  core::ParamStore target;
  core::Parameter* a = target.Create("a", core::Tensor::Zeros({3, 4}));
  core::Parameter* b = target.Create("b", core::Tensor::Zeros({6}));  // wrong
  for (int64_t i = 0; i < a->value.size(); ++i) a->value.at(i) = 7.5f;
  std::istringstream is(blob, std::ios::binary);
  EXPECT_FALSE(core::LoadParamsFromStream(target, is));
  // "a" matched and parsed fine, but "b"'s mismatch must abort the whole
  // load before anything is committed.
  for (int64_t i = 0; i < a->value.size(); ++i) {
    EXPECT_EQ(a->value.at(i), 7.5f);
  }
  for (int64_t i = 0; i < b->value.size(); ++i) {
    EXPECT_EQ(b->value.at(i), 0.0f);
  }
}

TEST(LoadParamsFuzz, UnknownParameterIsRejected) {
  core::Rng rng(17);
  std::string blob;
  {
    core::ParamStore store;
    store.Create("mystery", rng.GaussianTensor({2, 2}, 1.0));
    std::ostringstream os(std::ios::binary);
    ASSERT_TRUE(core::SaveParamsToStream(store, os));
    blob = std::move(os).str();
  }
  core::ParamStore target;
  target.Create("known", core::Tensor::Zeros({2, 2}));
  std::istringstream is(blob, std::ios::binary);
  EXPECT_FALSE(core::LoadParamsFromStream(target, is));
}

}  // namespace
}  // namespace lcrec::ckpt

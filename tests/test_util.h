#ifndef LCREC_TESTS_TEST_UTIL_H_
#define LCREC_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "core/graph.h"
#include "core/rng.h"
#include "core/tensor.h"

namespace lcrec::testing {

/// Gradient check helper. `forward` builds a scalar loss var from the
/// parameter var and returns it; this helper runs backward once and
/// compares the analytic gradient against central finite differences over
/// every coordinate of the parameter.
inline void CheckGradientOf(
    core::Parameter* param,
    const std::function<core::VarId(core::Graph&, core::VarId)>& forward,
    float eps = 1e-2f, float tol = 2e-2f) {
  param->grad.Fill(0.0f);
  {
    core::Graph g;
    core::VarId p = g.Param(param);
    core::VarId loss = forward(g, p);
    ASSERT_EQ(g.val(loss).size(), 1) << "loss must be scalar";
    g.Backward(loss);
  }
  core::Tensor analytic = param->grad;

  auto eval = [&]() {
    core::Graph g;
    core::VarId p = g.Param(param);
    core::VarId loss = forward(g, p);
    return g.val(loss).item();
  };

  for (int64_t i = 0; i < param->value.size(); ++i) {
    float orig = param->value.at(i);
    param->value.at(i) = orig + eps;
    float up = eval();
    param->value.at(i) = orig - eps;
    float down = eval();
    param->value.at(i) = orig;
    float numeric = (up - down) / (2.0f * eps);
    float a = analytic.at(i);
    float denom = std::max({1.0f, std::abs(a), std::abs(numeric)});
    EXPECT_NEAR(a / denom, numeric / denom, tol)
        << "coordinate " << i << " analytic=" << a << " numeric=" << numeric;
  }
}

}  // namespace lcrec::testing

#endif  // LCREC_TESTS_TEST_UTIL_H_

// Tests of the lcrec::obs observability substrate: histogram quantile
// estimation, counter atomicity under contention, span nesting in the
// exported Chrome trace, registry export formats, and the silent-by-
// default behavior when no sink env vars are set.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/log.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace lcrec::obs {
namespace {

TEST(HistogramTest, QuantilesOfKnownDistribution) {
  // 1..1000 uniformly, into 100 linear buckets of width 10: every
  // quantile is known exactly, interpolation error is sub-bucket.
  Histogram h(Histogram::LinearBounds(0.0, 1000.0, 100));
  for (int i = 1; i <= 1000; ++i) h.Observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000);
  EXPECT_DOUBLE_EQ(h.sum(), 500500.0);
  EXPECT_NEAR(h.Quantile(0.50), 500.0, 10.0);
  EXPECT_NEAR(h.Quantile(0.95), 950.0, 10.0);
  EXPECT_NEAR(h.Quantile(0.99), 990.0, 10.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
}

TEST(HistogramTest, QuantileEdgeCases) {
  Histogram h(Histogram::ExponentialBounds(1.0, 2.0, 10));
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);  // empty
  h.Observe(3.0);
  // A single observation: every quantile collapses onto it.
  EXPECT_NEAR(h.Quantile(0.0), 3.0, 1.0);
  EXPECT_NEAR(h.Quantile(1.0), 3.0, 1e-9);
  // Overflow bucket is clamped to the observed max, not infinity.
  h.Observe(1e6);
  EXPECT_LE(h.Quantile(0.99), 1e6);
}

TEST(HistogramTest, ConcurrentObserve) {
  Histogram h(Histogram::LinearBounds(0.0, 8.0, 8));
  constexpr int kThreads = 8, kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(t % 8 + 0.5);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<int64_t>(kThreads) * kPerThread);
}

TEST(CounterTest, AtomicUnderContention) {
  Counter& c = MetricsRegistry::Global().GetCounter("test.obs.contended");
  c.Reset();
  constexpr int kThreads = 8, kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<int64_t>(kThreads) * kPerThread);
}

TEST(RegistryTest, SameNameSameInstance) {
  MetricsRegistry& r = MetricsRegistry::Global();
  Counter& a = r.GetCounter("test.obs.same");
  Counter& b = r.GetCounter("test.obs.same");
  EXPECT_EQ(&a, &b);
  Gauge& g = r.GetGauge("test.obs.gauge");
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(r.GetGauge("test.obs.gauge").value(), 2.5);
}

TEST(RegistryTest, JsonlExportContainsAllTypes) {
  MetricsRegistry& r = MetricsRegistry::Global();
  r.GetCounter("test.obs.export_counter").Add(7);
  r.GetGauge("test.obs.export_gauge").Set(1.25);
  Histogram& h = r.GetHistogram("test.obs.export_hist",
                                Histogram::LinearBounds(0.0, 10.0, 10));
  h.Reset();
  h.Observe(4.0);
  std::ostringstream out;
  r.WriteJsonl(out);
  std::string s = out.str();
  EXPECT_NE(s.find("{\"name\":\"test.obs.export_counter\",\"type\":"
                   "\"counter\",\"value\":7}"),
            std::string::npos);
  EXPECT_NE(s.find("{\"name\":\"test.obs.export_gauge\",\"type\":"
                   "\"gauge\",\"value\":1.25}"),
            std::string::npos);
  EXPECT_NE(s.find("\"name\":\"test.obs.export_hist\",\"type\":\"histogram\","
                   "\"count\":1"),
            std::string::npos);
  // Every line is one object: brace-balanced, no trailing comma.
  std::istringstream lines(s);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST(TraceTest, SpanNestingOrderInExportedJson) {
  TraceRecorder& rec = TraceRecorder::Global();
  bool was_enabled = rec.enabled();
  rec.SetEnabled(true);
  rec.Clear();
  {
    ScopedSpan outer("outer_span");
    {
      ScopedSpan inner("inner_span");
    }
  }
  rec.SetEnabled(was_enabled);

  std::vector<TraceEvent> events = rec.Events();
  ASSERT_EQ(events.size(), 2u);
  // Spans are recorded at destruction: innermost first.
  EXPECT_EQ(events[0].name, "inner_span");
  EXPECT_EQ(events[1].name, "outer_span");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_EQ(events[0].tid, events[1].tid);
  // The outer span brackets the inner one on the timeline.
  EXPECT_GE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us + 1e-3);

  std::ostringstream out;
  rec.WriteChromeTrace(out);
  std::string json = out.str();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"name\":\"inner_span\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer_span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"depth\":1}"), std::string::npos);
  size_t open = 0, close = 0;
  for (char c : json) {
    if (c == '{') ++open;
    if (c == '}') ++close;
  }
  EXPECT_EQ(open, close);
  rec.Clear();
}

TEST(TraceTest, DisabledRecorderRecordsNothing) {
  TraceRecorder& rec = TraceRecorder::Global();
  bool was_enabled = rec.enabled();
  rec.SetEnabled(false);
  rec.Clear();
  {
    ScopedSpan span("should_not_appear");
  }
  EXPECT_EQ(rec.event_count(), 0u);
  rec.SetEnabled(was_enabled);
}

TEST(SilentDefaultTest, NoSinkFilesWithoutEnvVars) {
  // The driver runs ctest with the sink env vars unset; instrumented
  // paths must then stay purely in-memory. (When a developer *does* set
  // them the premise doesn't hold, so skip.)
  if (std::getenv("LCREC_METRICS_OUT") != nullptr ||
      std::getenv("LCREC_TRACE_OUT") != nullptr) {
    GTEST_SKIP() << "sink env vars are set in this environment";
  }
  EXPECT_EQ(EnvOr("LCREC_METRICS_OUT"), "");
  EXPECT_EQ(EnvOr("LCREC_TRACE_OUT"), "");
  EXPECT_FALSE(TraceRecorder::Global().enabled());
  // Disabled writers are no-ops.
  JsonlWriter w("");
  EXPECT_FALSE(w.enabled());
  w.WriteLine("{\"dropped\":true}");
  ResultEmitter e("bench", "", "{}");
  EXPECT_FALSE(e.enabled());
  e.Emit("metric", 1.0);
  MetricsRegistry::Global().WriteJsonlFile("");  // empty path: no file
}

TEST(ResultEmitterTest, RowsFollowSharedSchema) {
  std::string path = ::testing::TempDir() + "/obs_emitter_test.jsonl";
  {
    ResultEmitter e("unit", path, "{\"scale\":0.5}");
    ASSERT_TRUE(e.enabled());
    e.Emit("model/ndcg10", 0.125);
    e.Emit("with \"quotes\"", 2.0);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string header, line1, line2;
  // Line 1 is the run-manifest header row shared by every JSONL sink.
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header.rfind("{\"manifest\":", 0), 0u);
  RunManifest m;
  EXPECT_TRUE(ParseRunManifestJson(header, &m));
  EXPECT_FALSE(m.git_sha.empty());
  ASSERT_TRUE(std::getline(in, line1));
  ASSERT_TRUE(std::getline(in, line2));
  EXPECT_EQ(line1,
            "{\"bench\":\"unit\",\"metric\":\"model/ndcg10\","
            "\"value\":0.125,\"config\":{\"scale\":0.5}}");
  EXPECT_NE(line2.find("with \\\"quotes\\\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(LogTest, ThresholdIsMonotone) {
  // Whatever LCREC_LOG_LEVEL says, enabling is monotone in severity.
  EXPECT_LE(LogEnabled(LogLevel::kDebug), LogEnabled(LogLevel::kInfo));
  EXPECT_LE(LogEnabled(LogLevel::kInfo), LogEnabled(LogLevel::kWarn));
  EXPECT_LE(LogEnabled(LogLevel::kWarn), LogEnabled(LogLevel::kError));
  if (std::getenv("LCREC_LOG_LEVEL") == nullptr) {
    // Default threshold is warn: per-epoch info diagnostics stay quiet.
    EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
    EXPECT_TRUE(LogEnabled(LogLevel::kWarn));
  }
}

TEST(ExportTest, JsonHelpers) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonNumber(0.5), "0.5");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
}

}  // namespace
}  // namespace lcrec::obs

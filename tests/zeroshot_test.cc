#include "rec/zeroshot.h"

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "rec/negatives.h"
#include "text/encoder.h"

namespace lcrec::rec {
namespace {

TEST(ZeroShotLm, FitsAndScoresFinite) {
  data::Dataset d = data::Dataset::Make(data::Domain::kGames, 0.2, 33);
  ZeroShotLm::Options opt;
  opt.epochs = 1;
  ZeroShotLm lm(opt);
  lm.Fit(d);
  float s = lm.ScoreCandidate(d.TestContext(0), d.TestTarget(0));
  EXPECT_LT(s, 0.0f);
  EXPECT_GT(s, -30.0f);
}

TEST(ZeroShotLm, ScoringIsNearChanceOnCollaborativeChoices) {
  // The zero-shot LM has no collaborative knowledge, so its pairwise
  // accuracy against random negatives should hover around chance — the
  // Table V property ("utilizing LLMs directly for recommendation is
  // often inadequate"). Guard against degenerate behaviour only.
  data::Dataset d = data::Dataset::Make(data::Domain::kGames, 0.3, 33);
  ZeroShotLm::Options opt;
  opt.epochs = 3;
  ZeroShotLm lm(opt);
  lm.Fit(d);
  core::Rng rng(4);
  auto negs = RandomNegatives(d, rng);
  double acc = PairwiseAccuracy(
      [&](const std::vector<int>& h, int item) {
        return lm.ScoreCandidate(h, item);
      },
      d, negs, 40);
  EXPECT_GT(acc, 0.25);
  EXPECT_LT(acc, 0.8);
}

TEST(ZeroShotLm, ScoringIsDeterministic) {
  data::Dataset d = data::Dataset::Make(data::Domain::kGames, 0.2, 33);
  ZeroShotLm::Options opt;
  opt.epochs = 1;
  ZeroShotLm lm(opt);
  lm.Fit(d);
  float a = lm.ScoreCandidate(d.TestContext(1), d.TestTarget(1));
  float b = lm.ScoreCandidate(d.TestContext(1), d.TestTarget(1));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace lcrec::rec

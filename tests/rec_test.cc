#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "rec/metrics.h"
#include "rec/negatives.h"
#include "rec/recommender.h"

namespace lcrec::rec {
namespace {

TEST(Metrics, AddRankHandComputed) {
  RankingMetrics m;
  m.AddRank(0);   // hit everywhere
  m.AddRank(4);   // in top5/top10, not top1
  m.AddRank(9);   // top10 only
  m.AddRank(-1);  // miss
  RankingMetrics mean = m.Mean();
  EXPECT_EQ(mean.count, 4);
  EXPECT_DOUBLE_EQ(mean.hr1, 0.25);
  EXPECT_DOUBLE_EQ(mean.hr5, 0.5);
  EXPECT_DOUBLE_EQ(mean.hr10, 0.75);
  double g0 = 1.0 / std::log2(2.0);
  double g4 = 1.0 / std::log2(6.0);
  double g9 = 1.0 / std::log2(11.0);
  EXPECT_NEAR(mean.ndcg5, (g0 + g4) / 4.0, 1e-12);
  EXPECT_NEAR(mean.ndcg10, (g0 + g4 + g9) / 4.0, 1e-12);
}

TEST(Metrics, RankOfDescendingScores) {
  std::vector<float> scores = {0.1f, 0.9f, 0.5f, 0.7f};
  EXPECT_EQ(RankOf(scores, 1), 0);
  EXPECT_EQ(RankOf(scores, 3), 1);
  EXPECT_EQ(RankOf(scores, 2), 2);
  EXPECT_EQ(RankOf(scores, 0), 3);
}

TEST(Metrics, RankOfBreaksTiesByItemId) {
  std::vector<float> scores = {0.5f, 0.5f, 0.5f};
  EXPECT_EQ(RankOf(scores, 0), 0);
  EXPECT_EQ(RankOf(scores, 1), 1);
  EXPECT_EQ(RankOf(scores, 2), 2);
}

TEST(Metrics, RankInList) {
  EXPECT_EQ(RankInList({5, 3, 8}, 3), 1);
  EXPECT_EQ(RankInList({5, 3, 8}, 9), -1);
}

/// A planted oracle: scores the true test target highest.
class OracleRecommender : public ScoringRecommender {
 public:
  explicit OracleRecommender(const data::Dataset* d) : dataset_(d) {}
  std::string name() const override { return "Oracle"; }
  void Fit(const data::Dataset&) override {}
  std::vector<float> ScoreAllItems(
      const std::vector<int>& history) const override {
    // The oracle cheats: it looks up which user this history belongs to.
    std::vector<float> scores(static_cast<size_t>(dataset_->num_items()), 0.0f);
    for (int u = 0; u < dataset_->num_users(); ++u) {
      if (dataset_->TestContext(u) == history) {
        scores[static_cast<size_t>(dataset_->TestTarget(u))] = 1.0f;
        break;
      }
    }
    return scores;
  }

 private:
  const data::Dataset* dataset_;
};

TEST(Evaluator, OracleScoresPerfectly) {
  data::Dataset d = data::Dataset::Make(data::Domain::kInstruments, 0.25, 3);
  OracleRecommender oracle(&d);
  RankingMetrics m = EvaluateScoring(oracle, d, 50);
  EXPECT_DOUBLE_EQ(m.hr1, 1.0);
  EXPECT_DOUBLE_EQ(m.ndcg10, 1.0);
}

TEST(Evaluator, GenerativeAgreesWithLists) {
  data::Dataset d = data::Dataset::Make(data::Domain::kInstruments, 0.25, 3);
  // A generator that always ranks the target second.
  auto top = [&](const std::vector<int>& history) {
    for (int u = 0; u < d.num_users(); ++u) {
      if (d.TestContext(u) == history) {
        int t = d.TestTarget(u);
        int other = t == 0 ? 1 : 0;
        return std::vector<int>{other, t};
      }
    }
    return std::vector<int>{};
  };
  RankingMetrics m = EvaluateGenerative(top, d, 40);
  EXPECT_DOUBLE_EQ(m.hr1, 0.0);
  EXPECT_DOUBLE_EQ(m.hr5, 1.0);
  EXPECT_NEAR(m.ndcg5, 1.0 / std::log2(3.0), 1e-12);
}

TEST(Negatives, RandomNegativesNeverEqualTarget) {
  data::Dataset d = data::Dataset::Make(data::Domain::kGames, 0.25, 7);
  core::Rng rng(3);
  auto negs = RandomNegatives(d, rng);
  ASSERT_EQ(static_cast<int>(negs.size()), d.num_users());
  for (int u = 0; u < d.num_users(); ++u) {
    EXPECT_NE(negs[static_cast<size_t>(u)], d.TestTarget(u));
    EXPECT_GE(negs[static_cast<size_t>(u)], 0);
    EXPECT_LT(negs[static_cast<size_t>(u)], d.num_items());
  }
}

TEST(Negatives, HardNegativesAreMostSimilar) {
  data::Dataset d = data::Dataset::Make(data::Domain::kGames, 0.25, 7);
  // Embeddings where item i and i^1 are nearly identical.
  int n = d.num_items();
  core::Rng rng(5);
  core::Tensor emb({n, 8});
  for (int i = 0; i < n; i += 2) {
    core::Tensor v = rng.GaussianTensor({8}, 1.0);
    for (int j = 0; j < 8; ++j) {
      emb.at(static_cast<int64_t>(i) * 8 + j) = v.at(j);
      if (i + 1 < n) {
        emb.at(static_cast<int64_t>(i + 1) * 8 + j) = v.at(j) + 0.001f;
      }
    }
  }
  auto negs = HardNegatives(d, emb);
  int paired = 0;
  for (int u = 0; u < d.num_users(); ++u) {
    int t = d.TestTarget(u);
    if ((t ^ 1) < n && negs[static_cast<size_t>(u)] == (t ^ 1)) ++paired;
  }
  // Almost every negative should be the planted twin.
  EXPECT_GT(static_cast<double>(paired) / d.num_users(), 0.9);
}

TEST(Negatives, PairwiseAccuracyOracleIsOne) {
  data::Dataset d = data::Dataset::Make(data::Domain::kArts, 0.25, 9);
  core::Rng rng(4);
  auto negs = RandomNegatives(d, rng);
  // Scorer that knows the answer: target of the matching user scores 1.
  auto scorer = [&](const std::vector<int>& history, int item) -> float {
    for (int u = 0; u < d.num_users(); ++u) {
      if (d.TestContext(u) == history) {
        return item == d.TestTarget(u) ? 1.0f : 0.0f;
      }
    }
    return 0.0f;
  };
  EXPECT_DOUBLE_EQ(PairwiseAccuracy(scorer, d, negs, 30), 1.0);
  // A constant scorer is exactly at chance (ties count half).
  auto constant = [](const std::vector<int>&, int) { return 0.5f; };
  EXPECT_DOUBLE_EQ(PairwiseAccuracy(constant, d, negs, 30), 0.5);
}

}  // namespace
}  // namespace lcrec::rec

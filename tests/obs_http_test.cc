// Tests for the live-introspection layer: the embedded HTTP server
// (obs/http.h), the debugz endpoint surface and registration API
// (obs/debugz.h), the recent-timeline ring (obs/timeline.h), and the
// ckpt::HealthGuard /healthz wiring — including the live-path
// Prometheus exposition conformance scrape under concurrent load.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/health.h"
#include "obs/debugz.h"
#include "obs/flightrec.h"
#include "obs/http.h"
#include "obs/promcheck.h"
#include "obs/registry.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace {

using namespace lcrec;

constexpr const char* kLoopback = "127.0.0.1";

/// A server on an ephemeral port with one /echo handler that reflects
/// its query parameters.
class ScopedEchoServer {
 public:
  explicit ScopedEchoServer(obs::HttpServerOptions options = {}) {
    server_ = std::make_unique<obs::HttpServer>(options);
    server_->Handle("/echo", [](const obs::HttpRequest& req) {
      obs::HttpResponse resp;
      resp.body = "a=" + req.Param("a") + ";b=" + req.Param("b", "none") +
                  ";n=" + std::to_string(req.NumParam("n", 5.0, 0.0, 10.0));
      return resp;
    });
    std::string error;
    started_ = server_->Start(&error);
    EXPECT_TRUE(started_) << error;
  }

  obs::HttpServer& get() { return *server_; }
  int port() const { return server_->port(); }

 private:
  std::unique_ptr<obs::HttpServer> server_;
  bool started_ = false;
};

TEST(HttpServerTest, StartStopAndEphemeralPort) {
  obs::HttpServer server;
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), -1);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  EXPECT_TRUE(server.Start());  // idempotent
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
  ASSERT_TRUE(server.Start(&error)) << error;  // restartable
  EXPECT_TRUE(server.running());
  server.Stop();
}

TEST(HttpServerTest, HandlerDispatchAndQueryParams) {
  ScopedEchoServer server;
  obs::HttpResponse resp;
  std::string error;
  ASSERT_TRUE(obs::HttpGet(kLoopback, server.port(),
                           "/echo?a=hello%20world&n=3.5", &resp, &error))
      << error;
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("a=hello world"), std::string::npos) << resp.body;
  EXPECT_NE(resp.body.find("b=none"), std::string::npos) << resp.body;
  EXPECT_NE(resp.body.find("n=3.5"), std::string::npos) << resp.body;
  // NumParam clamps to [lo, hi].
  ASSERT_TRUE(
      obs::HttpGet(kLoopback, server.port(), "/echo?n=99", &resp, &error))
      << error;
  EXPECT_NE(resp.body.find("n=10"), std::string::npos) << resp.body;
}

TEST(HttpServerTest, UnknownPathIs404) {
  ScopedEchoServer server;
  obs::HttpResponse resp;
  std::string error;
  ASSERT_TRUE(obs::HttpGet(kLoopback, server.port(), "/nope", &resp, &error))
      << error;
  EXPECT_EQ(resp.status, 404);
}

TEST(HttpServerTest, NonGetIs405) {
  ScopedEchoServer server;
  std::string raw, error;
  ASSERT_TRUE(obs::HttpRawExchange(
      kLoopback, server.port(),
      "POST /echo HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n", &raw,
      &error))
      << error;
  EXPECT_NE(raw.find("HTTP/1.1 405"), std::string::npos) << raw;
}

TEST(HttpServerTest, MalformedRequestIs400) {
  ScopedEchoServer server;
  std::string raw, error;
  ASSERT_TRUE(obs::HttpRawExchange(kLoopback, server.port(),
                                   "not-a-request\r\n\r\n", &raw, &error))
      << error;
  EXPECT_NE(raw.find("HTTP/1.1 400"), std::string::npos) << raw;
}

TEST(HttpServerTest, OversizedHeadIs431) {
  obs::HttpServerOptions options;
  options.max_request_bytes = 128;
  ScopedEchoServer server(options);
  std::string huge = "GET /echo?pad=" + std::string(512, 'x') +
                     " HTTP/1.1\r\nHost: x\r\n\r\n";
  std::string raw, error;
  ASSERT_TRUE(
      obs::HttpRawExchange(kLoopback, server.port(), huge, &raw, &error))
      << error;
  EXPECT_NE(raw.find("HTTP/1.1 431"), std::string::npos) << raw;
}

TEST(HttpServerTest, HeadRequestOmitsBody) {
  ScopedEchoServer server;
  std::string raw, error;
  ASSERT_TRUE(obs::HttpRawExchange(
      kLoopback, server.port(),
      "HEAD /echo?a=z HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
      &raw, &error))
      << error;
  EXPECT_NE(raw.find("HTTP/1.1 200"), std::string::npos) << raw;
  size_t head_end = raw.find("\r\n\r\n");
  ASSERT_NE(head_end, std::string::npos);
  EXPECT_EQ(raw.substr(head_end + 4), "");  // headers only
  EXPECT_NE(raw.find("Content-Length:"), std::string::npos) << raw;
}

TEST(RecentTimelinesTest, RingKeepsNewestOldestFirst) {
  obs::RecentTimelines& ring = obs::RecentTimelines::Global();
  ring.Clear();
  const size_t total = obs::RecentTimelines::kCapacity + 6;
  for (size_t i = 0; i < total; ++i) {
    obs::RequestTimeline t;
    t.Begin(/*request_id=*/i + 1, /*sampled=*/true, "stage",
            obs::NowMicros());
    t.Finish();
    ring.Record(t);
  }
  std::vector<obs::RequestTimeline> snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), obs::RecentTimelines::kCapacity);
  // The oldest retained id is total - capacity + 1; order is oldest-first.
  EXPECT_EQ(snap.front().request_id(),
            total - obs::RecentTimelines::kCapacity + 1);
  EXPECT_EQ(snap.back().request_id(), total);
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].request_id(), snap[i].request_id());
  }
  // Unfinished timelines are ignored.
  ring.Clear();
  obs::RequestTimeline open;
  open.Begin(999, true, "stage", obs::NowMicros());
  ring.Record(open);
  EXPECT_TRUE(ring.Snapshot().empty());
  ring.Clear();
}

TEST(DebugzTest, StatuszSectionsRegisterAndUnregister) {
  int id = obs::RegisterStatuszSection("test.section",
                                       [] { return "alpha beta\n"; });
  std::string statusz = obs::ReadStatusz();
  EXPECT_NE(statusz.find("--- test.section ---"), std::string::npos);
  EXPECT_NE(statusz.find("alpha beta"), std::string::npos);
  EXPECT_NE(statusz.find("manifest: {"), std::string::npos);
  obs::UnregisterStatuszSection(id);
  statusz = obs::ReadStatusz();
  EXPECT_EQ(statusz.find("test.section"), std::string::npos);
}

TEST(DebugzTest, HealthChecksFlipReading) {
  ckpt::ResetCkptHealthzForTest();
  obs::HealthzReading reading = obs::ReadHealthz();
  EXPECT_TRUE(reading.ok) << reading.json;
  int id = obs::RegisterHealthCheck("test.failing", [](std::string* reason) {
    *reason = "deliberately broken";
    return false;
  });
  reading = obs::ReadHealthz();
  EXPECT_FALSE(reading.ok);
  EXPECT_NE(reading.json.find("\"status\":\"unhealthy\""), std::string::npos)
      << reading.json;
  EXPECT_NE(reading.json.find("test.failing"), std::string::npos);
  EXPECT_NE(reading.json.find("deliberately broken"), std::string::npos);
  obs::UnregisterHealthCheck(id);
  EXPECT_TRUE(obs::ReadHealthz().ok);
}

/// Satellite: a tripped ckpt::HealthGuard flips /healthz to 503 with a
/// JSON reason naming the subsystem and the step the guard was last told.
TEST(DebugzTest, HealthGuardTripFlipsHealthzTo503) {
  ckpt::ResetCkptHealthzForTest();
  obs::DebugServer& debugz = obs::DebugServer::Global();
  std::string error;
  ASSERT_TRUE(debugz.Start(0, &error)) << error;

  obs::HttpResponse resp;
  ASSERT_TRUE(
      obs::HttpGet(kLoopback, debugz.port(), "/healthz", &resp, &error))
      << error;
  EXPECT_EQ(resp.status, 200) << resp.body;
  EXPECT_NE(resp.body.find("\"status\":\"ok\""), std::string::npos)
      << resp.body;

  ckpt::HealthGuard guard({/*grad_limit=*/0.0f, /*max_retries=*/3,
                           /*lr_backoff=*/0.5f},
                          "healthz_test");
  guard.NoteStep(42);
  // Recoverable trip (rollback target exists, retries remain): the guard
  // returns instead of aborting, and the process is now marked unhealthy.
  EXPECT_TRUE(guard.OnUnhealthy(std::numeric_limits<double>::quiet_NaN(),
                                1.0, /*can_rollback=*/true));

  ASSERT_TRUE(
      obs::HttpGet(kLoopback, debugz.port(), "/healthz", &resp, &error))
      << error;
  EXPECT_EQ(resp.status, 503) << resp.body;
  EXPECT_NE(resp.body.find("\"status\":\"unhealthy\""), std::string::npos)
      << resp.body;
  EXPECT_NE(resp.body.find("ckpt.health"), std::string::npos) << resp.body;
  EXPECT_NE(resp.body.find("healthz_test"), std::string::npos) << resp.body;
  EXPECT_NE(resp.body.find("step 42"), std::string::npos) << resp.body;

  ckpt::ResetCkptHealthzForTest();
  ASSERT_TRUE(
      obs::HttpGet(kLoopback, debugz.port(), "/healthz", &resp, &error))
      << error;
  EXPECT_EQ(resp.status, 200) << resp.body;
}

TEST(DebugzTest, BuiltinEndpointsServeValidPayloads) {
  ckpt::ResetCkptHealthzForTest();
  obs::DebugServer& debugz = obs::DebugServer::Global();
  std::string error;
  ASSERT_TRUE(debugz.Start(0, &error)) << error;
  int port = debugz.port();
  ASSERT_GT(port, 0);

  // Put something in every surface being scraped.
  obs::MetricsRegistry::Global()
      .GetCounter("lcrec.debugz.test_counter")
      .Add(3);
  obs::RecentTimelines::Global().Clear();
  obs::RequestTimeline t;
  t.Begin(obs::NextRequestId(), true, "build", obs::NowMicros());
  t.Mark("decode");
  t.Finish();
  obs::RecentTimelines::Global().Record(t);

  obs::HttpResponse resp;
  // Index lists the endpoints.
  ASSERT_TRUE(obs::HttpGet(kLoopback, port, "/", &resp, &error)) << error;
  EXPECT_EQ(resp.status, 200);
  for (const char* endpoint :
       {"/healthz", "/metricsz", "/varz", "/statusz", "/tracez",
        "/flightrecz", "/timelinez", "/profilez"}) {
    EXPECT_NE(resp.body.find(endpoint), std::string::npos) << endpoint;
  }

  // /metricsz parses in the shared exposition checker.
  ASSERT_TRUE(obs::HttpGet(kLoopback, port, "/metricsz", &resp, &error))
      << error;
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.content_type.find("version=0.0.4"), std::string::npos)
      << resp.content_type;
  obs::PromCheckResult check = obs::CheckPrometheusExposition(resp.body);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_NE(resp.body.find("lcrec_debugz_test_counter"), std::string::npos);

  // /varz is one JSON document over the same registry.
  ASSERT_TRUE(obs::HttpGet(kLoopback, port, "/varz", &resp, &error)) << error;
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.content_type, "application/json");
  EXPECT_EQ(resp.body.rfind("{\"manifest\":{", 0), 0u) << resp.body;
  EXPECT_NE(resp.body.find("\"metrics\":["), std::string::npos);
  EXPECT_NE(resp.body.find("\"name\":\"lcrec.debugz.test_counter\""),
            std::string::npos);

  // /statusz carries the manifest and health lines.
  ASSERT_TRUE(obs::HttpGet(kLoopback, port, "/statusz", &resp, &error))
      << error;
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("manifest: {"), std::string::npos);
  EXPECT_NE(resp.body.find("uptime_s:"), std::string::npos);
  EXPECT_NE(resp.body.find("health:"), std::string::npos);

  // /tracez reports recorder state.
  ASSERT_TRUE(obs::HttpGet(kLoopback, port, "/tracez", &resp, &error))
      << error;
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("tracing:"), std::string::npos);
  EXPECT_NE(resp.body.find("events:"), std::string::npos);

  // /flightrecz is JSONL with the flight-recorder schema.
  obs::FlightRecorder::Global().Record(obs::FrKind::kMark, "debugz_test", 7,
                                       8);
  ASSERT_TRUE(obs::HttpGet(kLoopback, port, "/flightrecz", &resp, &error))
      << error;
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.content_type, "application/x-ndjson");
  EXPECT_NE(resp.body.find("\"kind\":\"mark\""), std::string::npos)
      << resp.body;
  EXPECT_NE(resp.body.find("\"detail\":\"debugz_test\""), std::string::npos);

  // /timelinez is JSONL with the stage breakdown recorded above.
  ASSERT_TRUE(obs::HttpGet(kLoopback, port, "/timelinez", &resp, &error))
      << error;
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"request_id\":"), std::string::npos)
      << resp.body;
  EXPECT_NE(resp.body.find("\"stage\":\"decode\""), std::string::npos);
}

/// /profilez runs a bounded on-demand capture and returns collapsed
/// stacks for the spans live during the window.
TEST(DebugzTest, ProfilezCapturesLiveSpans) {
  obs::DebugServer& debugz = obs::DebugServer::Global();
  std::string error;
  ASSERT_TRUE(debugz.Start(0, &error)) << error;

  std::atomic<bool> stop{false};
  std::thread busy([&stop] {
    while (!stop.load()) {
      obs::ScopedSpan span("profilez_target");
      volatile double sink = 0.0;
      for (int i = 0; i < 50000; ++i) sink = sink + i;
    }
  });
  obs::HttpResponse resp;
  bool ok = obs::HttpGet(kLoopback, debugz.port(),
                         "/profilez?seconds=0.3&hz=400", &resp, &error);
  stop.store(true);
  busy.join();
  ASSERT_TRUE(ok) << error;
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("profilez_target"), std::string::npos)
      << resp.body;
}

/// Satellite: Prometheus exposition conformance on the live path — many
/// clients scrape /metricsz while other threads churn the registry;
/// every scrape must parse in the shared checker.
TEST(DebugzTest, ConcurrentScrapesStayConformant) {
  obs::DebugServer& debugz = obs::DebugServer::Global();
  std::string error;
  ASSERT_TRUE(debugz.Start(0, &error)) << error;
  int port = debugz.port();

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& churn_counter = reg.GetCounter("lcrec.debugz.churn");
  obs::Histogram& churn_hist = reg.GetHistogram(
      "lcrec.debugz.churn_us", obs::Histogram::ExponentialBounds(1.0, 2.0, 8));

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&stop, &churn_counter, &churn_hist] {
      double v = 0.5;
      while (!stop.load(std::memory_order_relaxed)) {
        churn_counter.Increment();
        churn_hist.Observe(v);
        v = v < 200.0 ? v * 1.1 : 0.5;
      }
    });
  }

  constexpr int kScrapers = 4;
  constexpr int kScrapesEach = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> scrapers;
  for (int s = 0; s < kScrapers; ++s) {
    scrapers.emplace_back([port, &failures] {
      for (int i = 0; i < kScrapesEach; ++i) {
        obs::HttpResponse resp;
        std::string err;
        if (!obs::HttpGet(kLoopback, port, "/metricsz", &resp, &err) ||
            resp.status != 200) {
          failures.fetch_add(1);
          continue;
        }
        obs::PromCheckResult check =
            obs::CheckPrometheusExposition(resp.body);
        if (!check.ok || check.lines == 0) {
          ADD_FAILURE() << check.error;
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : scrapers) t.join();
  stop.store(true);
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace

// Resilience layer (DESIGN.md §14): the shared injection grammar, the
// chaos injector, the circuit breaker state machine (fake clock), the
// result cache's TTL/stale tier, and the server's degradation ladder —
// including the terminal-state accounting invariant under concurrent
// chaos load. The healthy-path regression tests pin that all of this is
// inert by default: infinite TTL, closed breaker, disarmed chaos.
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "llm/generate.h"
#include "llm/minillm.h"
#include "obs/inject.h"
#include "quant/indexing.h"
#include "serve/breaker.h"
#include "serve/cache.h"
#include "serve/chaos.h"
#include "serve/server.h"
#include "text/vocab.h"

namespace lcrec::serve {
namespace {

// --- obs/inject.h: the grammar and sampler both injectors share -------------

TEST(InjectRate, ParsesRatesInZeroOneExclusiveInclusive) {
  double rate = 0.0;
  EXPECT_TRUE(obs::ParseInjectRate("0.1", &rate));
  EXPECT_DOUBLE_EQ(rate, 0.1);
  EXPECT_TRUE(obs::ParseInjectRate(".5", &rate));
  EXPECT_DOUBLE_EQ(rate, 0.5);
  EXPECT_TRUE(obs::ParseInjectRate("1", &rate));
  EXPECT_DOUBLE_EQ(rate, 1.0);

  EXPECT_FALSE(obs::ParseInjectRate("", &rate));
  EXPECT_FALSE(obs::ParseInjectRate("0", &rate));      // never-fires: reject
  EXPECT_FALSE(obs::ParseInjectRate("0.0", &rate));
  EXPECT_FALSE(obs::ParseInjectRate("1.5", &rate));    // above 1
  EXPECT_FALSE(obs::ParseInjectRate("0..5", &rate));   // two dots
  EXPECT_FALSE(obs::ParseInjectRate("-0.1", &rate));   // sign not in grammar
  EXPECT_FALSE(obs::ParseInjectRate("0.1x", &rate));
  EXPECT_FALSE(obs::ParseInjectRate("x", &rate));
}

TEST(InjectRng, SeededStreamIsReproducible) {
  obs::InjectRng a(42), b(42);
  for (int i = 0; i < 64; ++i) {
    double u = a.NextUniform();
    EXPECT_EQ(u, b.NextUniform()) << "draw " << i;
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  // Reset replays the stream from the top; a different seed diverges.
  double first = obs::InjectRng(7).NextUniform();
  a.Reset(7);
  EXPECT_EQ(a.NextUniform(), first);
  obs::InjectRng c(8);
  a.Reset(7);
  EXPECT_NE(a.NextUniform(), c.NextUniform());
}

TEST(InjectRng, FireRespectsTheRateEdges) {
  obs::InjectRng rng(1);
  EXPECT_FALSE(rng.Fire(0.0));
  EXPECT_FALSE(rng.Fire(-1.0));
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(rng.Fire(1.0));
}

// --- serve::chaos: spec grammar + the seeded injector -----------------------

TEST(ChaosSpecParse, AcceptsTheGrammar) {
  std::vector<chaos::ChaosSpec> specs;
  ASSERT_TRUE(chaos::ParseChaosSpecs("decode:fail:0.1", &specs));
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].site, chaos::ChaosSpec::Site::kDecode);
  EXPECT_EQ(specs[0].mode, chaos::ChaosSpec::Mode::kFail);
  EXPECT_DOUBLE_EQ(specs[0].rate, 0.1);

  ASSERT_TRUE(
      chaos::ParseChaosSpecs("decode:delay:0.05:40,queue:full:0.02", &specs));
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].mode, chaos::ChaosSpec::Mode::kDelay);
  EXPECT_DOUBLE_EQ(specs[0].param_ms, 40.0);
  EXPECT_EQ(specs[1].site, chaos::ChaosSpec::Site::kQueue);
  EXPECT_EQ(specs[1].mode, chaos::ChaosSpec::Mode::kFull);

  // Delay without an explicit param keeps the documented 20 ms default.
  ASSERT_TRUE(chaos::ParseChaosSpecs("decode:delay:0.5", &specs));
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_DOUBLE_EQ(specs[0].param_ms, 20.0);
}

TEST(ChaosSpecParse, RejectsMalformedSpecs) {
  std::vector<chaos::ChaosSpec> specs;
  const char* bad[] = {
      "",                      // empty
      "decode",                // missing fields
      "decode:fail",           // missing rate
      "decode:fail:0",         // rate must be in (0, 1]
      "decode:fail:2",         // rate above 1
      "boom:fail:0.1",         // unknown site
      "decode:boom:0.1",       // unknown mode
      "queue:fail:0.1",        // queue pressure is the only queue mode
      "queue:delay:0.1",       // (site/mode pairing, both directions)
      "decode:full:0.1",       // full is queue-only
      "decode:fail:0.1:20",    // param is delay-only
      "queue:full:0.1:20",     // param is delay-only
      "decode:delay:0.1:",     // empty param
      "decode:delay:0.1:2x",   // non-numeric param
      "decode:delay:0.1:0",    // zero delay
      "decode:fail:0.1:x:y",   // too many fields
      ",decode:fail:0.1",      // empty list element
      "decode:fail:0.1,",      // trailing comma
  };
  for (const char* text : bad) {
    std::vector<chaos::ChaosSpec> untouched{chaos::ChaosSpec{}};
    EXPECT_FALSE(chaos::ParseChaosSpecs(text, &untouched)) << text;
    EXPECT_EQ(untouched.size(), 1u) << text << " clobbered *specs";
  }
}

/// Every injector test disarms on scope exit: the injector is
/// process-wide and the serving tests below must start from "off".
struct ChaosScope {
  ~ChaosScope() { chaos::DisarmChaos(); }
};

TEST(ChaosInjector, SeededFiringIsCountedAndCapped) {
  ChaosScope scope;
  chaos::ChaosSpec fail;
  fail.site = chaos::ChaosSpec::Site::kDecode;
  fail.mode = chaos::ChaosSpec::Mode::kFail;
  fail.rate = 1.0;
  fail.max_fires = 2;
  chaos::ArmChaos({fail}, /*seed=*/7);
  ASSERT_TRUE(chaos::ChaosArmed());

  EXPECT_TRUE(chaos::OnDecode().fail);
  EXPECT_TRUE(chaos::OnDecode().fail);
  EXPECT_FALSE(chaos::OnDecode().fail) << "max_fires cap ignored";
  EXPECT_EQ(chaos::ChaosFires(), 2);

  chaos::DisarmChaos();
  EXPECT_FALSE(chaos::ChaosArmed());
  EXPECT_FALSE(chaos::OnDecode().fail);
  EXPECT_FALSE(chaos::OnQueueAdmit());
  EXPECT_EQ(chaos::ChaosFires(), 0) << "re-arm must reset fire counts";
}

TEST(ChaosInjector, DelayCarriesItsParamAndSitesAreIndependent) {
  ChaosScope scope;
  chaos::ChaosSpec delay;
  delay.site = chaos::ChaosSpec::Site::kDecode;
  delay.mode = chaos::ChaosSpec::Mode::kDelay;
  delay.rate = 1.0;
  delay.param_ms = 5.0;
  chaos::ChaosSpec queue;
  queue.site = chaos::ChaosSpec::Site::kQueue;
  queue.mode = chaos::ChaosSpec::Mode::kFull;
  queue.rate = 1.0;
  queue.max_fires = 1;
  chaos::ArmChaos({delay, queue}, /*seed=*/3);

  chaos::DecodeChaos action = chaos::OnDecode();
  EXPECT_FALSE(action.fail);
  EXPECT_DOUBLE_EQ(action.delay_us, 5000.0);
  EXPECT_TRUE(chaos::OnQueueAdmit());
  EXPECT_FALSE(chaos::OnQueueAdmit()) << "queue cap ignored";
  // The queue spec never answers decode consultations or vice versa.
  EXPECT_DOUBLE_EQ(chaos::OnDecode().delay_us, 5000.0);
  std::string status = chaos::ChaosStatusText();
  EXPECT_NE(status.find("decode:delay"), std::string::npos) << status;
  EXPECT_NE(status.find("queue:full"), std::string::npos) << status;
}

// --- CircuitBreaker: the state machine under a fake clock -------------------

struct BreakerHarness {
  double now_us = 0.0;
  std::vector<BreakerState> transitions;
  BreakerOptions opts;

  BreakerHarness(int failure_threshold, int success_threshold,
                 double cooldown_ms, int probes) {
    opts.failure_threshold = failure_threshold;
    opts.success_threshold = success_threshold;
    opts.open_cooldown_ms = cooldown_ms;
    opts.half_open_probes = probes;
    opts.now_us = [this] { return now_us; };
    opts.on_transition = [this](BreakerState s) { transitions.push_back(s); };
  }
};

TEST(CircuitBreakerTest, TripsOnlyAfterConsecutiveFailures) {
  BreakerHarness h(3, 1, 10.0, 1);
  CircuitBreaker breaker(h.opts);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);

  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();  // interleaved success resets the count
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow());

  breaker.RecordFailure();  // third consecutive
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.stats().trips, 1);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_EQ(breaker.stats().short_circuits, 1);
}

TEST(CircuitBreakerTest, CooldownGrantsBoundedHalfOpenProbes) {
  BreakerHarness h(1, 2, 10.0, 2);
  CircuitBreaker breaker(h.opts);
  breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.Allow()) << "still cooling down";

  h.now_us += 9.0 * 1000.0;
  EXPECT_FALSE(breaker.Allow()) << "cooldown is 10ms, only 9 elapsed";
  h.now_us += 1.0 * 1000.0;
  EXPECT_TRUE(breaker.Allow());  // promotes to half-open, probe slot 1
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.Allow());   // probe slot 2
  EXPECT_FALSE(breaker.Allow());  // probe budget exhausted
  EXPECT_EQ(breaker.stats().probes, 2);

  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen)
      << "success_threshold is 2";
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().recoveries, 1);
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreakerTest, HalfOpenProbeFailureReopensAndRestartsCooldown) {
  BreakerHarness h(1, 1, 10.0, 1);
  CircuitBreaker breaker(h.opts);
  breaker.RecordFailure();
  h.now_us += 10.0 * 1000.0;
  ASSERT_TRUE(breaker.Allow());
  ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);

  breaker.RecordFailure();  // one failed probe is enough
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.stats().trips, 2);
  EXPECT_FALSE(breaker.Allow()) << "cooldown restarted at the re-trip";
  h.now_us += 10.0 * 1000.0;
  EXPECT_TRUE(breaker.Allow());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);

  // The transition hook saw the whole journey, in order.
  ASSERT_EQ(h.transitions.size(), 5u);
  EXPECT_EQ(h.transitions[0], BreakerState::kOpen);
  EXPECT_EQ(h.transitions[1], BreakerState::kHalfOpen);
  EXPECT_EQ(h.transitions[2], BreakerState::kOpen);
  EXPECT_EQ(h.transitions[3], BreakerState::kHalfOpen);
  EXPECT_EQ(h.transitions[4], BreakerState::kClosed);
}

// --- ResultCache: TTL and the stale tier ------------------------------------

llm::ScoredItem Item(int id) { return {id, -static_cast<float>(id)}; }

TEST(ResultCacheTtl, InfiniteTtlNeverGoesStale) {
  double now_us = 0.0;
  ResultCache cache(4, /*ttl_ms=*/0.0, [&now_us] { return now_us; });
  cache.Put(1, {Item(3)});
  now_us += 1e12;  // ~11 days later
  std::vector<llm::ScoredItem> out;
  EXPECT_TRUE(cache.Get(1, &out)) << "ttl<=0 must mean fresh forever";
  double age_ms = -1.0;
  EXPECT_TRUE(cache.GetWithStaleness(1, &out, &age_ms));
  EXPECT_EQ(cache.stale_serves(), 0);
}

TEST(ResultCacheTtl, StaleEntriesMissFreshLookupsButStayServable) {
  double now_us = 0.0;
  ResultCache cache(4, /*ttl_ms=*/10.0, [&now_us] { return now_us; });
  cache.Put(1, {Item(3), Item(5)});

  std::vector<llm::ScoredItem> out;
  now_us = 5.0 * 1000.0;
  EXPECT_TRUE(cache.Get(1, &out)) << "age 5ms < ttl 10ms";

  now_us = 20.0 * 1000.0;
  EXPECT_FALSE(cache.Get(1, &out)) << "stale entries miss the fresh path";
  EXPECT_EQ(cache.size(), 1u) << "...without being evicted";

  double age_ms = 0.0;
  out.clear();
  ASSERT_TRUE(cache.GetWithStaleness(1, &out, &age_ms));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].item, 3);
  EXPECT_DOUBLE_EQ(age_ms, 20.0);
  EXPECT_EQ(cache.stale_serves(), 1);

  // A refresh re-timestamps: fresh again.
  cache.Put(1, {Item(7)});
  EXPECT_TRUE(cache.Get(1, &out));
  EXPECT_EQ(out[0].item, 7);
}

// --- Server: the degradation ladder end to end ------------------------------

void ExpectSameRanking(const std::vector<llm::ScoredItem>& got,
                       const std::vector<llm::ScoredItem>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].item, want[i].item) << "rank " << i;
    EXPECT_EQ(got[i].logprob, want[i].logprob) << "rank " << i;
  }
}

template <typename Pred>
bool WaitUntil(Pred pred, int timeout_ms = 10000) {
  for (int i = 0; i < timeout_ms; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    chaos::DisarmChaos();
    core::Rng rng(5);
    indexing_ = quant::ItemIndexing::Random(12, 3, 4, rng);
    trie_ = std::make_unique<quant::PrefixTrie>(indexing_);
    for (const std::string& tok : indexing_.AllTokenStrings()) {
      vocab_.AddToken(tok);
    }
    llm::MiniLlmConfig cfg;
    cfg.vocab_size = vocab_.size();
    cfg.d_model = 16;
    cfg.n_heads = 2;
    cfg.n_layers = 2;
    cfg.d_ff = 32;
    cfg.max_seq = 64;
    cfg.seed = 3;
    model_ = std::make_unique<llm::MiniLlm>(cfg);
    token_map_ = std::make_unique<llm::IndexTokenMap>(indexing_, vocab_);
  }

  void TearDown() override { chaos::DisarmChaos(); }

  PromptBuilder Builder() const {
    int vocab = vocab_.size();
    return [vocab](const std::vector<int>& history) {
      std::vector<int> prompt = {text::Vocabulary::kBos};
      for (int item : history) {
        prompt.push_back(4 + (item % (vocab - 4)));
      }
      return prompt;
    };
  }

  std::unique_ptr<Server> MakeServer(ServerOptions opts) const {
    return std::make_unique<Server>(*model_, *trie_, *token_map_, Builder(),
                                    opts);
  }

  std::vector<llm::ScoredItem> Reference(const RecommendRequest& req,
                                         int beam_size) const {
    return llm::GenerateItems(*model_, Builder()(req.history), *trie_,
                              *token_map_, beam_size, req.top_n);
  }

  static void AlwaysFailDecode(int max_fires = 0) {
    chaos::ChaosSpec fail;
    fail.site = chaos::ChaosSpec::Site::kDecode;
    fail.mode = chaos::ChaosSpec::Mode::kFail;
    fail.rate = 1.0;
    fail.max_fires = max_fires;
    chaos::ArmChaos({fail}, /*seed=*/1);
  }

  text::Vocabulary vocab_;
  quant::ItemIndexing indexing_ = quant::ItemIndexing::VanillaId(1);
  std::unique_ptr<quant::PrefixTrie> trie_;
  std::unique_ptr<llm::MiniLlm> model_;
  std::unique_ptr<llm::IndexTokenMap> token_map_;
};

TEST_F(ResilienceTest, PopularityTierAnswersWhenDecodeIsDown) {
  AlwaysFailDecode();
  ServerOptions opts;
  opts.beam_size = 4;
  opts.decode_retries = 1;
  opts.popularity_items = {5, 3, 9, 1};
  auto server = MakeServer(opts);

  RecommendRequest req;
  req.history = {1, 2, 3};
  req.top_n = 3;
  RecommendResponse resp = server->Recommend(req);
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.degrade, DegradeLevel::kPopularity);
  EXPECT_STREQ(resp.degrade_label, "popularity");
  ASSERT_EQ(resp.items.size(), 3u);
  EXPECT_EQ(resp.items[0].item, 5);
  EXPECT_EQ(resp.items[1].item, 3);
  EXPECT_EQ(resp.items[2].item, 9);

  ServerStats stats = server->stats();
  EXPECT_EQ(stats.degraded_popularity, 1);
  EXPECT_EQ(stats.decode_failures, 2) << "initial attempt + one retry";
  EXPECT_EQ(stats.decode_retries, 1);
  EXPECT_EQ(stats.shed_queue_full + stats.shed_deadline, 0)
      << "the ladder answered; nothing was shed";
}

TEST_F(ResilienceTest, WithoutPopularityPriorTheTierUsesIndexOrder) {
  AlwaysFailDecode();
  ServerOptions opts;
  opts.decode_retries = 0;
  auto server = MakeServer(opts);
  RecommendRequest req;
  req.history = {4};
  req.top_n = 4;
  RecommendResponse resp = server->Recommend(req);
  EXPECT_EQ(resp.status, Status::kOk);
  ASSERT_EQ(resp.items.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(resp.items[i].item, i);
}

TEST_F(ResilienceTest, StaleCacheTierBeatsThePopularityPrior) {
  ServerOptions opts;
  opts.beam_size = 4;
  opts.cache_ttl_ms = 5.0;
  opts.decode_retries = 0;
  auto server = MakeServer(opts);

  RecommendRequest req;
  req.history = {7, 8};
  req.top_n = 4;
  RecommendResponse healthy = server->Recommend(req);
  ASSERT_EQ(healthy.status, Status::kOk);
  EXPECT_EQ(healthy.degrade, DegradeLevel::kFull);
  EXPECT_STREQ(healthy.degrade_label, "full");

  // Let the cached entry age past its TTL, then break the decode path.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  AlwaysFailDecode();

  RecommendResponse degraded = server->Recommend(req);
  EXPECT_EQ(degraded.status, Status::kOk);
  EXPECT_EQ(degraded.degrade, DegradeLevel::kStaleCache);
  EXPECT_STREQ(degraded.degrade_label, "stale_cache");
  ASSERT_EQ(degraded.items.size(), healthy.items.size());
  for (size_t i = 0; i < degraded.items.size(); ++i) {
    EXPECT_EQ(degraded.items[i].item, healthy.items[i].item) << "rank " << i;
  }
  EXPECT_EQ(server->stats().degraded_stale_cache, 1);
  EXPECT_EQ(server->cache().stale_serves(), 1);
}

TEST_F(ResilienceTest, BreakerTripsToPopularityAndRecoversViaProbes) {
  AlwaysFailDecode(/*max_fires=*/2);
  ServerOptions opts;
  opts.decode_retries = 0;
  opts.breaker.failure_threshold = 2;
  opts.breaker.success_threshold = 1;
  opts.breaker.open_cooldown_ms = 30.0;
  auto server = MakeServer(opts);

  // Two failing decodes trip the breaker (distinct histories: a cache
  // hit would bypass the decode path entirely).
  for (int i = 0; i < 2; ++i) {
    RecommendRequest req;
    req.history = {100 + i};
    req.top_n = 2;
    RecommendResponse resp = server->Recommend(req);
    EXPECT_EQ(resp.status, Status::kOk);
    EXPECT_EQ(resp.degrade, DegradeLevel::kPopularity);
  }
  EXPECT_EQ(server->breaker().state(), BreakerState::kOpen);

  // While open, requests short-circuit to the fallback without decoding.
  RecommendRequest shorted;
  shorted.history = {200};
  shorted.top_n = 2;
  RecommendResponse resp = server->Recommend(shorted);
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.degrade, DegradeLevel::kPopularity);
  EXPECT_GE(server->stats().breaker_short_circuits, 1);

  // After the cooldown the injected failures are exhausted (max_fires=2),
  // so the half-open probe succeeds and closes the breaker.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  RecommendRequest probe;
  probe.history = {300};
  probe.top_n = 2;
  RecommendResponse healthy = server->Recommend(probe);
  EXPECT_EQ(healthy.status, Status::kOk);
  EXPECT_EQ(healthy.degrade, DegradeLevel::kFull);
  EXPECT_EQ(server->breaker().state(), BreakerState::kClosed);
  EXPECT_EQ(server->breaker().stats().recoveries, 1);
}

TEST_F(ResilienceTest, ExpiredDeadlineDegradesInsteadOfSheddingByDefault) {
  ServerOptions opts;
  opts.start_scheduler = false;  // park the scheduler to stage expiry
  opts.inline_fast_path = false;
  opts.popularity_items = {2, 4};
  auto server = MakeServer(opts);

  RecommendRequest req;
  req.history = {9};
  req.top_n = 2;
  req.deadline_ms = 5.0;
  RecommendResponse resp;
  std::thread client([&] { resp = server->Recommend(req); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server->Start();  // deadline long expired at admission
  client.join();

  EXPECT_EQ(resp.status, Status::kOk) << "fallbacks on: degraded, not shed";
  EXPECT_EQ(resp.degrade, DegradeLevel::kPopularity);
  ServerStats stats = server->stats();
  EXPECT_EQ(stats.shed_deadline, 0);
  EXPECT_EQ(stats.degraded_popularity, 1);
}

TEST_F(ResilienceTest, MostlyBurnedBudgetDecodesAtTheDegradedBeam) {
  ServerOptions opts;
  opts.beam_size = 8;
  opts.degraded_beam = 2;
  opts.budget_cap_fraction = 0.5;
  opts.start_scheduler = false;
  opts.inline_fast_path = false;
  auto server = MakeServer(opts);

  RecommendRequest req;
  req.history = {3, 1};
  req.top_n = 4;
  req.deadline_ms = 400.0;
  RecommendResponse resp;
  std::thread client([&] { resp = server->Recommend(req); });
  // Burn > half the budget in the queue; plenty remains for the (fast)
  // reduced-beam decode itself.
  std::this_thread::sleep_for(std::chrono::milliseconds(240));
  server->Start();
  client.join();

  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.degrade, DegradeLevel::kBudgetCapped);
  EXPECT_STREQ(resp.degrade_label, "budget_capped");
  // The capped lane is the sequential reference at the capped width —
  // the bit-identical batching contract holds at every beam.
  ExpectSameRanking(resp.items, Reference(req, opts.degraded_beam));
  EXPECT_EQ(server->stats().degraded_budget_capped, 1);
}

TEST_F(ResilienceTest, HealthyPathIsUntouchedByTheResilienceLayer) {
  // Chaos disarmed, breaker closed, infinite TTL, no deadline: responses
  // equal the offline decoder's, labeled full, with zero degrade/fault
  // accounting — the regression pin that the ladder is inert by default.
  ServerOptions opts;
  opts.beam_size = 4;
  auto server = MakeServer(opts);
  for (int i = 0; i < 6; ++i) {
    RecommendRequest req;
    req.history = {i, i + 2};
    req.top_n = 4;
    RecommendResponse resp = server->Recommend(req);
    ASSERT_EQ(resp.status, Status::kOk);
    EXPECT_EQ(resp.degrade, DegradeLevel::kFull);
    EXPECT_STREQ(resp.degrade_label, "full");
    ExpectSameRanking(resp.items, Reference(req, opts.beam_size));
  }
  ServerStats stats = server->stats();
  EXPECT_EQ(stats.degraded_budget_capped + stats.degraded_stale_cache +
                stats.degraded_popularity,
            0);
  EXPECT_EQ(stats.decode_failures, 0);
  EXPECT_EQ(stats.breaker_short_circuits, 0);
  EXPECT_EQ(server->breaker().state(), BreakerState::kClosed);
  EXPECT_EQ(server->cache().stale_serves(), 0);
}

TEST_F(ResilienceTest, TerminalStateAccountingHoldsUnderConcurrentChaos) {
  // The invariant: every admitted request ends in exactly one terminal
  // state, and the counters sum — requests == completed + sheds +
  // shutdowns — even with decode failures and queue pressure firing
  // concurrently. Distinct histories keep requests from coalescing, so
  // the response-side tier tallies must equal the server's counters.
  chaos::ChaosSpec fail;
  fail.site = chaos::ChaosSpec::Site::kDecode;
  fail.mode = chaos::ChaosSpec::Mode::kFail;
  fail.rate = 0.3;
  chaos::ChaosSpec pressure;
  pressure.site = chaos::ChaosSpec::Site::kQueue;
  pressure.mode = chaos::ChaosSpec::Mode::kFull;
  pressure.rate = 0.2;
  chaos::ArmChaos({fail, pressure}, /*seed=*/11);

  ServerOptions opts;
  opts.beam_size = 4;
  opts.decode_retries = 1;
  auto server = MakeServer(opts);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::atomic<int> ok{0}, degraded{0}, budget_capped{0}, stale{0}, pop{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        RecommendRequest req;
        req.history = {t * 1000 + i, t, i};  // unique per (t, i)
        req.top_n = 3;
        req.deadline_ms = 200.0;
        RecommendResponse resp = server->Recommend(req);
        if (resp.status == Status::kOk) ok.fetch_add(1);
        switch (resp.degrade) {
          case DegradeLevel::kFull: break;
          case DegradeLevel::kBudgetCapped:
            budget_capped.fetch_add(1);
            degraded.fetch_add(1);
            break;
          case DegradeLevel::kStaleCache:
            stale.fetch_add(1);
            degraded.fetch_add(1);
            break;
          case DegradeLevel::kPopularity:
            pop.fetch_add(1);
            degraded.fetch_add(1);
            break;
        }
      }
    });
  }
  for (auto& c : clients) c.join();

  const int total = kThreads * kPerThread;
  ServerStats stats = server->stats();
  EXPECT_EQ(ok.load(), total) << "fallbacks on: every request resolves kOk";
  EXPECT_EQ(stats.requests, total);
  EXPECT_EQ(stats.requests, stats.completed + stats.shed_queue_full +
                                stats.shed_deadline + stats.shed_shutdown)
      << "a request vanished without reaching a terminal state";
  EXPECT_EQ(stats.shed_queue_full + stats.shed_deadline + stats.shed_shutdown,
            0);
  EXPECT_EQ(stats.degraded_budget_capped, budget_capped.load());
  EXPECT_EQ(stats.degraded_stale_cache, stale.load());
  EXPECT_EQ(stats.degraded_popularity, pop.load());
  EXPECT_GT(degraded.load(), 0) << "chaos at these rates must degrade some";
}

TEST_F(ResilienceTest, FallbacksOffPreservesTheShedContract) {
  // With the ladder disabled, injected decode failures surface as
  // kShedDecodeFailure — the strict-error contract the pre-ladder tests
  // rely on, now under injected (not staged) faults.
  AlwaysFailDecode();
  ServerOptions opts;
  opts.degraded_fallbacks = false;
  opts.decode_retries = 0;
  auto server = MakeServer(opts);
  RecommendRequest req;
  req.history = {42};
  req.top_n = 2;
  RecommendResponse resp = server->Recommend(req);
  EXPECT_EQ(resp.status, Status::kShedDecodeFailure);
  EXPECT_TRUE(resp.items.empty());
  ServerStats stats = server->stats();
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.decode_failures, 1);
}

TEST_F(ResilienceTest, WatchdogFlagsAStalledSchedulerTick) {
  // One injected 120ms decode stall against a 25ms watchdog budget: the
  // watchdog (20ms poll) must catch the episode and count a fire.
  chaos::ChaosSpec stall;
  stall.site = chaos::ChaosSpec::Site::kDecode;
  stall.mode = chaos::ChaosSpec::Mode::kDelay;
  stall.rate = 1.0;
  stall.param_ms = 120.0;
  stall.max_fires = 1;
  chaos::ArmChaos({stall}, /*seed=*/1);

  ServerOptions opts;
  opts.inline_fast_path = false;  // route through the watched scheduler
  opts.watchdog_stall_ms = 25.0;
  auto server = MakeServer(opts);
  RecommendRequest req;
  req.history = {17};
  req.top_n = 2;
  RecommendResponse resp = server->Recommend(req);
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_TRUE(WaitUntil([&] { return server->stats().watchdog_fires >= 1; }))
      << "watchdog never fired on a 120ms stall";
}

}  // namespace
}  // namespace lcrec::serve

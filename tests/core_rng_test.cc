#include "core/rng.h"

#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

namespace lcrec::core {
namespace {

TEST(RngBelow, StaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t x = rng.Below(7);
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 7);
  }
  EXPECT_EQ(rng.Below(1), 0);
}

TEST(RngBelow, SmallRangeIsUniform) {
  Rng rng(5);
  const int n = 10;
  const int draws = 100000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < draws; ++i) ++counts[rng.Below(n)];
  // Each bucket expects 10000 with sd ~95; 5% slack is > 50 sigma.
  for (int k = 0; k < n; ++k) {
    EXPECT_NEAR(counts[k], draws / n, draws / n * 0.05) << "bucket " << k;
  }
}

TEST(RngBelow, NoModuloBiasNearTheWordBoundary) {
  // n = 3 * 2^61, so 2^64 = 2n + 2^62: a plain `gen() % n` maps three raw
  // values onto each residue below 2^62 but only two onto the rest, giving
  // P(x < 2^62) = 3/4 instead of the true 2^62 / n = 2/3. Rejection
  // sampling must restore 2/3.
  Rng rng(7);
  const int64_t n = int64_t{3} << 61;
  const int64_t threshold = int64_t{1} << 62;
  const int draws = 200000;
  int below = 0;
  for (int i = 0; i < draws; ++i) {
    if (rng.Below(n) < threshold) ++below;
  }
  double frac = static_cast<double>(below) / draws;
  // sd of the fraction is ~0.0011; 0.68 is > 10 sigma from 2/3 while the
  // biased implementation sits at 0.75.
  EXPECT_NEAR(frac, 2.0 / 3.0, 0.015);
  EXPECT_LT(frac, 0.70);
}

TEST(RngBetween, CoversBothEndpoints) {
  Rng rng(11);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t x = rng.Between(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    lo_seen = lo_seen || x == -2;
    hi_seen = hi_seen || x == 2;
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(RngSaveRestore, ContinuesTheExactSequence) {
  Rng a(7);
  // Advance every distribution, with an odd number of Gaussians so the
  // normal distribution is holding a cached spare deviate at save time.
  for (int i = 0; i < 5; ++i) (void)a.Uniform();
  for (int i = 0; i < 3; ++i) (void)a.Gaussian();
  for (int i = 0; i < 4; ++i) (void)a.Below(1000);

  std::ostringstream os;
  a.Save(os);
  Rng b(99);  // deliberately different seed; Restore must fully override
  std::istringstream is(os.str());
  ASSERT_TRUE(b.Restore(is));

  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.Uniform(), b.Uniform()) << "uniform draw " << i;
    EXPECT_EQ(a.Gaussian(), b.Gaussian()) << "gaussian draw " << i;
    EXPECT_EQ(a.Below(12345), b.Below(12345)) << "below draw " << i;
  }
}

TEST(RngSaveRestore, RoundTripsThroughACheckpointTwice) {
  // Save, restore, save again: the second blob restores the same stream,
  // so serialization is stable across repeated checkpoint cycles.
  Rng a(21);
  (void)a.Gaussian();
  std::ostringstream os1;
  a.Save(os1);
  Rng b(0);
  std::istringstream is1(os1.str());
  ASSERT_TRUE(b.Restore(is1));
  std::ostringstream os2;
  b.Save(os2);
  Rng c(1);
  std::istringstream is2(os2.str());
  ASSERT_TRUE(c.Restore(is2));
  for (int i = 0; i < 20; ++i) {
    double expect = a.Gaussian();
    EXPECT_EQ(b.Gaussian(), expect);
    EXPECT_EQ(c.Gaussian(), expect);
  }
}

TEST(RngSaveRestore, GarbageLeavesStateUnchanged) {
  Rng a(13);
  (void)a.Uniform();
  Rng witness = a;  // copy of the exact pre-restore state

  std::istringstream garbage("not a generator state at all");
  EXPECT_FALSE(a.Restore(garbage));
  std::istringstream empty("");
  EXPECT_FALSE(a.Restore(empty));

  // A failed restore must not perturb the stream.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.Uniform(), witness.Uniform());
    EXPECT_EQ(a.Gaussian(), witness.Gaussian());
  }
}

}  // namespace
}  // namespace lcrec::core

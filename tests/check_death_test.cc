// Death tests for the always-on check framework (core/check.h): the
// whole point of LCREC_CHECK is that it still fires in Release
// (-DNDEBUG) builds, so these tests prove the abort happens — and that
// the failure message carries the operand values and the live span
// stack — in whatever build configuration the suite runs under.

#include <gtest/gtest.h>

#include "core/check.h"
#include "core/graph.h"
#include "core/tensor.h"
#include "obs/trace.h"
#include "quant/indexing.h"
#include "text/vocab.h"

namespace {

using lcrec::core::Graph;
using lcrec::core::Tensor;
using lcrec::core::VarId;

TEST(CheckDeathTest, CheckFiresEvenWithNdebug) {
  EXPECT_DEATH(LCREC_CHECK(1 == 2), "LCREC_CHECK failed: 1 == 2");
}

TEST(CheckDeathTest, CheckOpPrintsBothOperands) {
  int lhs = 2;
  int rhs = 3;
  EXPECT_DEATH(LCREC_CHECK_EQ(lhs, rhs), "2 vs\\. 3");
}

TEST(CheckDeathTest, FailureMessageNamesLiveSpans) {
  lcrec::obs::ScopedSpan outer("death_outer");
  lcrec::obs::ScopedSpan inner("death_inner");
  EXPECT_DEATH(LCREC_CHECK(false), "death_outer > death_inner");
}

TEST(CheckDeathTest, MatMulShapeMismatchAborts) {
  Graph g;
  VarId a = g.Input(Tensor({2, 3}));
  VarId b = g.Input(Tensor({2, 3}));  // inner dims 3 vs 2: illegal
  EXPECT_DEATH(g.MatMul(a, b), "LCREC_CHECK");
}

TEST(CheckDeathTest, CheckShapePrintsBothShapes) {
  Graph g;
  VarId a = g.Input(Tensor({2, 3}));
  VarId b = g.Input(Tensor({3, 2}));
  EXPECT_DEATH(g.Add(a, b), "\\[2,3\\] vs\\. \\[3,2\\]");
}

TEST(CheckDeathTest, OutOfRangeCodebookIndexAborts) {
  lcrec::quant::ItemIndexing idx = lcrec::quant::ItemIndexing::VanillaId(4);
  EXPECT_DEATH(idx.codes(7), "item < num_items\\(\\)");
}

TEST(CheckDeathTest, VocabIdOverflowAborts) {
  lcrec::text::Vocabulary vocab;
  EXPECT_DEATH(vocab.TokenOf(vocab.size()), "id < size\\(\\)");
}

TEST(CheckDeathTest, DcheckTierMatchesBuildConfiguration) {
  Tensor t({2, 2});
#if defined(NDEBUG) && !defined(LCREC_DCHECK_ALWAYS_ON)
  // Release: DCHECK compiles to nothing, so a violated condition is not
  // evaluated and must not abort.
  LCREC_DCHECK(false);
  LCREC_DCHECK_EQ(1, 2);
  SUCCEED();
#else
  EXPECT_DEATH(t.at(100), "LCREC_CHECK failed");
  (void)t;
#endif
}

}  // namespace

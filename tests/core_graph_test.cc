#include "core/graph.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/tensor.h"
#include "tests/test_util.h"

namespace lcrec::core {
namespace {

using lcrec::testing::CheckGradientOf;

class GraphOpsTest : public ::testing::Test {
 protected:
  ParamStore store_;
  Rng rng_{7};

  Parameter* RandParam(std::vector<int64_t> shape, double stddev = 0.5) {
    return store_.Create("p", rng_.GaussianTensor(std::move(shape), stddev));
  }
};

TEST_F(GraphOpsTest, ForwardMatMulValues) {
  Graph g;
  VarId a = g.Input(Tensor({2, 3}, {1, 2, 3, 4, 5, 6}));
  VarId b = g.Input(Tensor({3, 2}, {7, 8, 9, 10, 11, 12}));
  VarId c = g.MatMul(a, b);
  EXPECT_FLOAT_EQ(g.val(c).at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(g.val(c).at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(g.val(c).at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(g.val(c).at(1, 1), 154.0f);
}

TEST_F(GraphOpsTest, ForwardMatMulNTMatchesMatMulWithTranspose) {
  Graph g;
  Tensor bt({2, 3}, {7, 9, 11, 8, 10, 12});
  VarId a = g.Input(Tensor({2, 3}, {1, 2, 3, 4, 5, 6}));
  VarId b = g.Input(bt);
  VarId c = g.MatMulNT(a, b);
  EXPECT_FLOAT_EQ(g.val(c).at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(g.val(c).at(1, 1), 154.0f);
}

TEST_F(GraphOpsTest, GradMatMul) {
  Parameter* p = RandParam({3, 4});
  Tensor other = rng_.GaussianTensor({4, 2}, 0.5);
  CheckGradientOf(p, [&](Graph& g, VarId v) {
    VarId b = g.Input(other);
    return g.Sum(g.Square(g.MatMul(v, b)));
  });
}

TEST_F(GraphOpsTest, GradMatMulSecondArg) {
  Parameter* p = RandParam({4, 2});
  Tensor other = rng_.GaussianTensor({3, 4}, 0.5);
  CheckGradientOf(p, [&](Graph& g, VarId v) {
    VarId a = g.Input(other);
    return g.Sum(g.Square(g.MatMul(a, v)));
  });
}

TEST_F(GraphOpsTest, GradMatMulNT) {
  Parameter* p = RandParam({3, 4});
  Tensor other = rng_.GaussianTensor({5, 4}, 0.5);
  CheckGradientOf(p, [&](Graph& g, VarId v) {
    VarId b = g.Input(other);
    return g.Sum(g.Square(g.MatMulNT(v, b)));
  });
  CheckGradientOf(p, [&](Graph& g, VarId v) {
    VarId a = g.Input(other);
    return g.Sum(g.Square(g.MatMulNT(a, v)));
  });
}

TEST_F(GraphOpsTest, GradAddSubMulScale) {
  Parameter* p = RandParam({2, 3});
  Tensor other = rng_.GaussianTensor({2, 3}, 0.5);
  CheckGradientOf(p, [&](Graph& g, VarId v) {
    VarId o = g.Input(other);
    VarId x = g.Add(v, o);
    x = g.Sub(x, g.Scale(v, 0.3f));
    x = g.Mul(x, v);
    x = g.AddScalar(x, 0.1f);
    return g.Sum(x);
  });
}

TEST_F(GraphOpsTest, GradActivations) {
  for (auto which : {0, 1, 2, 3, 4}) {
    Parameter* p = RandParam({2, 4});
    CheckGradientOf(p, [&, which](Graph& g, VarId v) {
      VarId y;
      switch (which) {
        case 0: y = g.Relu(v); break;
        case 1: y = g.Sigmoid(v); break;
        case 2: y = g.Tanh(v); break;
        case 3: y = g.Silu(v); break;
        default: y = g.Gelu(v); break;
      }
      return g.Sum(g.Square(y));
    });
  }
}

TEST_F(GraphOpsTest, GradExpLog) {
  Parameter* p = store_.Create("pos", Tensor({3}, {0.5f, 1.0f, 2.0f}));
  CheckGradientOf(p, [&](Graph& g, VarId v) {
    return g.Sum(g.Log(g.AddScalar(g.Exp(v), 1.0f)));
  });
}

TEST_F(GraphOpsTest, GradAddBiasAndMulRowBroadcast) {
  Parameter* p = RandParam({4});
  Tensor mat = rng_.GaussianTensor({3, 4}, 0.5);
  CheckGradientOf(p, [&](Graph& g, VarId v) {
    VarId m = g.Input(mat);
    return g.Sum(g.Square(g.AddBias(m, v)));
  });
  CheckGradientOf(p, [&](Graph& g, VarId v) {
    VarId m = g.Input(mat);
    return g.Sum(g.Square(g.MulRowBroadcast(m, v)));
  });
}

TEST_F(GraphOpsTest, GradTransposeSliceConcat) {
  Parameter* p = RandParam({4, 3});
  CheckGradientOf(p, [&](Graph& g, VarId v) {
    VarId t = g.Transpose(v);
    VarId s1 = g.SliceRows(t, 0, 2);
    VarId s2 = g.SliceRows(t, 1, 3);
    VarId c = g.ConcatRows({s1, s2});
    VarId cc = g.ConcatCols({c, c});
    VarId sc = g.SliceCols(cc, 1, 5);
    return g.Sum(g.Square(sc));
  });
}

TEST_F(GraphOpsTest, GradRowsGather) {
  Parameter* p = RandParam({5, 3});
  std::vector<int> ids = {0, 2, 2, 4};
  CheckGradientOf(p, [&](Graph& g, VarId v) {
    return g.Sum(g.Square(g.Rows(v, ids)));
  });
}

TEST_F(GraphOpsTest, GradReductions) {
  Parameter* p = RandParam({3, 4});
  CheckGradientOf(p, [&](Graph& g, VarId v) { return g.Mean(g.Square(v)); });
  CheckGradientOf(p, [&](Graph& g, VarId v) {
    return g.Sum(g.Square(g.MeanOverRows(v)));
  });
  CheckGradientOf(p, [&](Graph& g, VarId v) {
    return g.Sum(g.Square(g.SumOverRows(v)));
  });
  CheckGradientOf(p, [&](Graph& g, VarId v) {
    return g.Sum(g.Square(g.RowSums(v)));
  });
}

TEST_F(GraphOpsTest, GradMaxOverRows) {
  // Use well-separated values so finite differences don't cross the argmax.
  Parameter* p = store_.Create("m", Tensor({3, 2}, {0.1f, 0.9f, 0.5f, 0.2f,
                                                    0.95f, 0.4f}));
  CheckGradientOf(p, [&](Graph& g, VarId v) {
    return g.Sum(g.Square(g.MaxOverRows(v)));
  }, 1e-3f);
}

TEST_F(GraphOpsTest, GradLayerNorm) {
  Parameter* x = RandParam({3, 6});
  Parameter* gamma = store_.Create("g", rng_.GaussianTensor({6}, 0.3));
  Parameter* beta = store_.Create("b", rng_.GaussianTensor({6}, 0.3));
  CheckGradientOf(x, [&](Graph& g, VarId v) {
    VarId gm = g.Param(gamma);
    VarId bt = g.Param(beta);
    return g.Sum(g.Square(g.LayerNorm(v, gm, bt)));
  });
  CheckGradientOf(gamma, [&](Graph& g, VarId v) {
    VarId xv = g.Param(x);
    VarId bt = g.Param(beta);
    return g.Sum(g.Square(g.LayerNorm(xv, v, bt)));
  });
  CheckGradientOf(beta, [&](Graph& g, VarId v) {
    VarId xv = g.Param(x);
    VarId gm = g.Param(gamma);
    return g.Sum(g.Square(g.LayerNorm(xv, gm, v)));
  });
}

TEST_F(GraphOpsTest, GradRmsNorm) {
  Parameter* x = RandParam({3, 6});
  Parameter* gamma = store_.Create("g", rng_.GaussianTensor({6}, 0.3));
  CheckGradientOf(x, [&](Graph& g, VarId v) {
    VarId gm = g.Param(gamma);
    return g.Sum(g.Square(g.RmsNorm(v, gm)));
  });
  CheckGradientOf(gamma, [&](Graph& g, VarId v) {
    VarId xv = g.Param(x);
    return g.Sum(g.Square(g.RmsNorm(xv, v)));
  });
}

TEST_F(GraphOpsTest, GradNormalizeRows) {
  Parameter* x = RandParam({3, 5});
  Tensor target = rng_.GaussianTensor({3, 5}, 0.5);
  CheckGradientOf(x, [&](Graph& g, VarId v) {
    return g.MseLoss(g.NormalizeRows(v), target);
  });
}

TEST_F(GraphOpsTest, GradSoftmaxFamilies) {
  Parameter* x = RandParam({4, 4});
  Tensor target = rng_.GaussianTensor({4, 4}, 0.5);
  CheckGradientOf(x, [&](Graph& g, VarId v) {
    return g.MseLoss(g.Softmax(v), target);
  });
  CheckGradientOf(x, [&](Graph& g, VarId v) {
    return g.MseLoss(g.CausalSoftmax(v), target);
  });
  CheckGradientOf(x, [&](Graph& g, VarId v) {
    return g.MseLoss(g.MaskedSoftmax(v, {1, 2, 3, 4}), target);
  });
}

TEST_F(GraphOpsTest, CausalSoftmaxZerosFuture) {
  Graph g;
  VarId x = g.Input(rng_.GaussianTensor({3, 3}, 1.0));
  VarId p = g.CausalSoftmax(x);
  EXPECT_FLOAT_EQ(g.val(p).at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(g.val(p).at(0, 2), 0.0f);
  EXPECT_FLOAT_EQ(g.val(p).at(1, 2), 0.0f);
  // Rows sum to one over the valid prefix.
  for (int64_t i = 0; i < 3; ++i) {
    float s = 0.0f;
    for (int64_t j = 0; j < 3; ++j) s += g.val(p).at(i, j);
    EXPECT_NEAR(s, 1.0f, 1e-5f);
  }
}

TEST_F(GraphOpsTest, CausalSoftmaxWithOffsetForIncrementalDecode) {
  Graph g;
  // 1 query row against 4 keys: all keys are visible (offset = 3).
  VarId x = g.Input(rng_.GaussianTensor({1, 4}, 1.0));
  VarId p = g.CausalSoftmax(x);
  float s = 0.0f;
  for (int64_t j = 0; j < 4; ++j) s += g.val(p).at(0, j);
  EXPECT_NEAR(s, 1.0f, 1e-5f);
  EXPECT_GT(g.val(p).at(0, 3), 0.0f);
}

TEST_F(GraphOpsTest, GradSoftmaxCrossEntropy) {
  Parameter* x = RandParam({4, 5});
  std::vector<int> targets = {1, Graph::kIgnore, 0, 4};
  CheckGradientOf(x, [&](Graph& g, VarId v) {
    return g.SoftmaxCrossEntropy(v, targets);
  });
}

TEST_F(GraphOpsTest, CrossEntropyIgnoresMaskedRows) {
  Graph g;
  Tensor logits({2, 3}, {10.0f, 0.0f, 0.0f, 0.0f, 10.0f, 0.0f});
  VarId l = g.Input(logits);
  // Row 1 ignored: loss is only row 0, which predicts its target well.
  VarId loss = g.SoftmaxCrossEntropy(l, {0, Graph::kIgnore});
  EXPECT_LT(g.val(loss).item(), 0.01f);
}

TEST_F(GraphOpsTest, GradSigmoidBCE) {
  Parameter* x = RandParam({3, 4});
  Tensor targets({3, 4});
  for (int64_t i = 0; i < 12; ++i) targets.at(i) = (i % 3 == 0) ? 1.0f : 0.0f;
  CheckGradientOf(x, [&](Graph& g, VarId v) {
    return g.SigmoidBCE(v, targets);
  });
}

TEST_F(GraphOpsTest, GradMseLoss) {
  Parameter* x = RandParam({2, 3});
  Tensor target = rng_.GaussianTensor({2, 3}, 0.5);
  CheckGradientOf(x, [&](Graph& g, VarId v) {
    return g.MseLoss(v, target);
  });
  CheckGradientOf(x, [&](Graph& g, VarId v) {
    return g.MseLossVar(v, g.Input(target));
  });
}

TEST_F(GraphOpsTest, StopGradientBlocksFlow) {
  Parameter* x = RandParam({2, 2});
  x->grad.Fill(0.0f);
  Graph g;
  VarId v = g.Param(x);
  VarId loss = g.Sum(g.Square(g.StopGradient(v)));
  g.Backward(loss);
  EXPECT_FLOAT_EQ(x->grad.SquaredNorm(), 0.0f);
}

TEST_F(GraphOpsTest, GradDftFilter) {
  Parameter* x = RandParam({4, 3});
  Parameter* wre = store_.Create("wre", rng_.GaussianTensor({4, 3}, 0.4));
  Parameter* wim = store_.Create("wim", rng_.GaussianTensor({4, 3}, 0.4));
  CheckGradientOf(x, [&](Graph& g, VarId v) {
    return g.Sum(g.Square(g.DftFilter(v, g.Param(wre), g.Param(wim))));
  });
  CheckGradientOf(wre, [&](Graph& g, VarId v) {
    return g.Sum(g.Square(g.DftFilter(g.Param(x), v, g.Param(wim))));
  });
  CheckGradientOf(wim, [&](Graph& g, VarId v) {
    return g.Sum(g.Square(g.DftFilter(g.Param(x), g.Param(wre), v)));
  });
}

TEST_F(GraphOpsTest, DftFilterIdentityWhenFilterIsOne) {
  // W = 1 + 0i must reproduce the input exactly (DFT then IDFT).
  Graph g;
  Tensor x = rng_.GaussianTensor({5, 2}, 1.0);
  VarId v = g.Input(x);
  VarId wre = g.Input(Tensor::Ones({5, 2}));
  VarId wim = g.Input(Tensor::Zeros({5, 2}));
  VarId y = g.DftFilter(v, wre, wim);
  for (int64_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(g.val(y).at(i), x.at(i), 1e-4f);
}

TEST_F(GraphOpsTest, GradDropoutMaskConsistent) {
  // With p=0 or train=false dropout is identity.
  Parameter* x = RandParam({2, 3});
  Rng r(3);
  CheckGradientOf(x, [&](Graph& g, VarId v) {
    return g.Sum(g.Square(g.Dropout(v, 0.0f, r, true)));
  });
  CheckGradientOf(x, [&](Graph& g, VarId v) {
    return g.Sum(g.Square(g.Dropout(v, 0.5f, r, false)));
  });
}

TEST_F(GraphOpsTest, BackwardAccumulatesIntoSharedParam) {
  // The same parameter used twice gets the sum of both contributions.
  Parameter* x = store_.Create("x", Tensor({2}, {1.0f, 2.0f}));
  x->grad.Fill(0.0f);
  Graph g;
  VarId v = g.Param(x);
  VarId loss = g.Sum(g.Add(g.Square(v), g.Scale(v, 3.0f)));
  g.Backward(loss);
  // d/dx (x^2 + 3x) = 2x + 3
  EXPECT_FLOAT_EQ(x->grad.at(0), 5.0f);
  EXPECT_FLOAT_EQ(x->grad.at(1), 7.0f);
}

TEST_F(GraphOpsTest, ParamUsedInTwoGraphNodesAccumulates) {
  Parameter* x = store_.Create("x", Tensor({2}, {1.0f, 2.0f}));
  x->grad.Fill(0.0f);
  Graph g;
  VarId v1 = g.Param(x);
  VarId v2 = g.Param(x);
  VarId loss = g.Sum(g.Mul(v1, v2));  // x^2
  g.Backward(loss);
  EXPECT_FLOAT_EQ(x->grad.at(0), 2.0f);
  EXPECT_FLOAT_EQ(x->grad.at(1), 4.0f);
}

}  // namespace
}  // namespace lcrec::core

// Integration tests for net::Router over real worker stacks: sharding
// by user hash, bit-identical parity with a direct in-process
// serve::Server, ring-order failover when a worker dies, the
// graceful-drain handoff, and chaos-driven flaky-worker retries.

#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "gtest/gtest.h"
#include "llm/minillm.h"
#include "net/router.h"
#include "net/rpc.h"
#include "net/service.h"
#include "quant/indexing.h"
#include "serve/chaos.h"
#include "serve/request.h"
#include "serve/server.h"
#include "text/vocab.h"

namespace lcrec::net {
namespace {

/// Same tiny deterministic system as tools/lcrec_worker: every stack
/// built from it holds bit-identical weights, which is what makes
/// router-vs-direct parity an exact (not approximate) assertion.
struct System {
  text::Vocabulary vocab;
  quant::ItemIndexing indexing = quant::ItemIndexing::VanillaId(1);
  std::unique_ptr<quant::PrefixTrie> trie;
  std::unique_ptr<llm::MiniLlm> model;
  std::unique_ptr<llm::IndexTokenMap> token_map;

  explicit System(uint64_t seed = 7) {
    core::Rng rng(seed);
    indexing = quant::ItemIndexing::Random(/*items=*/48, /*levels=*/3,
                                           /*codes=*/6, rng);
    trie = std::make_unique<quant::PrefixTrie>(indexing);
    for (const std::string& tok : indexing.AllTokenStrings()) {
      vocab.AddToken(tok);
    }
    llm::MiniLlmConfig cfg;
    cfg.vocab_size = vocab.size();
    cfg.d_model = 32;
    cfg.n_heads = 4;
    cfg.n_layers = 2;
    cfg.d_ff = 64;
    cfg.max_seq = 64;
    cfg.seed = 3;
    model = std::make_unique<llm::MiniLlm>(cfg);
    token_map = std::make_unique<llm::IndexTokenMap>(indexing, vocab);
  }

  serve::PromptBuilder Builder() const {
    int v = vocab.size();
    return [v](const std::vector<int>& history) {
      std::vector<int> prompt = {text::Vocabulary::kBos};
      for (int item : history) prompt.push_back(4 + (item % (v - 4)));
      return prompt;
    };
  }
};

serve::ServerOptions ServeOptions() {
  serve::ServerOptions opts;
  opts.beam_size = 4;
  opts.slow_request_ms = 0.0;
  return opts;
}

/// One worker: a serve::Server behind a net::RpcServer, both owned.
struct WorkerStack {
  serve::Server server;
  RpcServer rpc;

  explicit WorkerStack(const System& system)
      : server(*system.model, *system.trie, *system.token_map,
               system.Builder(), ServeOptions()) {
    RegisterRecommendService(&rpc, &server);
    std::string error;
    EXPECT_TRUE(rpc.Start(&error)) << error;
  }
  ~WorkerStack() {
    rpc.Stop();
    server.Stop();
  }
  std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(rpc.port());
  }
};

RouterOptions RouterOver(const std::vector<const WorkerStack*>& workers) {
  RouterOptions opts;
  for (const WorkerStack* w : workers) opts.workers.push_back(w->endpoint());
  opts.client.max_retries = 2;
  opts.client.backoff_ms = 1.0;
  opts.client.connect_timeout_s = 2.0;
  return opts;
}

serve::RecommendRequest MakeRequest(int user) {
  serve::RecommendRequest req;
  req.history = {user % 48, (user * 7 + 3) % 48, (user * 13 + 5) % 48};
  req.top_n = 5;
  return req;
}

void ExpectSameAnswer(const serve::RecommendResponse& got,
                      const serve::RecommendResponse& want, int user) {
  EXPECT_EQ(got.status, want.status) << "user " << user;
  EXPECT_EQ(got.degrade, want.degrade) << "user " << user;
  ASSERT_EQ(got.items.size(), want.items.size()) << "user " << user;
  for (size_t i = 0; i < want.items.size(); ++i) {
    EXPECT_EQ(got.items[i].item, want.items[i].item)
        << "user " << user << " rank " << i;
    // Bit-identical scores: same weights, same deterministic decode.
    EXPECT_EQ(got.items[i].logprob, want.items[i].logprob)
        << "user " << user << " rank " << i;
  }
}

TEST(RouterTest, ParseEndpoint) {
  std::string host;
  int port = 0;
  EXPECT_TRUE(ParseEndpoint("127.0.0.1:8080", &host, &port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);
  EXPECT_FALSE(ParseEndpoint("127.0.0.1", &host, &port));
  EXPECT_FALSE(ParseEndpoint(":8080", &host, &port));
  EXPECT_FALSE(ParseEndpoint("127.0.0.1:", &host, &port));
  EXPECT_FALSE(ParseEndpoint("127.0.0.1:abc", &host, &port));
  EXPECT_FALSE(ParseEndpoint("127.0.0.1:70000", &host, &port));
}

TEST(RouterTest, UserHashIsDeterministicAndSpreads) {
  serve::RecommendRequest a = MakeRequest(1);
  serve::RecommendRequest b = MakeRequest(2);
  EXPECT_EQ(Router::UserHash(a), Router::UserHash(a));
  EXPECT_NE(Router::UserHash(a), Router::UserHash(b));
  // Over many users both shards of a 2-way split must see traffic.
  int on_shard0 = 0;
  for (int user = 0; user < 64; ++user) {
    if (Router::UserHash(MakeRequest(user)) % 2 == 0) ++on_shard0;
  }
  EXPECT_GT(on_shard0, 8);
  EXPECT_LT(on_shard0, 56);
}

TEST(RouterTest, RouterMatchesDirectServeExactly) {
  System system;
  WorkerStack a(system), b(system);
  serve::Server direct(*system.model, *system.trie, *system.token_map,
                       system.Builder(), ServeOptions());

  Router router(RouterOver({&a, &b}));
  std::string error;
  ASSERT_TRUE(router.Start(&error)) << error;
  ASSERT_EQ(router.n_shards(), 2u);

  for (int user = 0; user < 24; ++user) {
    const serve::RecommendRequest req = MakeRequest(user);
    serve::RecommendResponse via_router;
    ASSERT_TRUE(router.Forward(req, &via_router, &error))
        << "user " << user << ": " << error;
    const serve::RecommendResponse want = direct.Recommend(req);
    ExpectSameAnswer(via_router, want, user);
  }
  direct.Stop();
}

TEST(RouterTest, RequestsLandOnTheirHomeShard) {
  System system;
  WorkerStack a(system), b(system);
  Router router(RouterOver({&a, &b}));
  ASSERT_TRUE(router.Start());

  std::vector<int64_t> expected(2, 0);
  for (int user = 0; user < 32; ++user) {
    const serve::RecommendRequest req = MakeRequest(user);
    expected[router.ShardOf(req)]++;
    serve::RecommendResponse resp;
    std::string error;
    ASSERT_TRUE(router.Forward(req, &resp, &error)) << error;
  }
  const std::vector<Router::ShardStats> stats = router.shard_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].requests, expected[0]);
  EXPECT_EQ(stats[1].requests, expected[1]);
  EXPECT_EQ(stats[0].failovers + stats[1].failovers, 0);
}

TEST(RouterTest, FrontServerSpeaksTheSameProtocol) {
  // A client cannot tell a router from a worker: the full stack —
  // client → router front server → worker → serve::Server — returns
  // exactly the direct in-process answer.
  System system;
  WorkerStack a(system), b(system);
  serve::Server direct(*system.model, *system.trie, *system.token_map,
                       system.Builder(), ServeOptions());
  Router router(RouterOver({&a, &b}));
  ASSERT_TRUE(router.Start());

  RpcClientOptions copts;
  copts.host = "127.0.0.1";
  copts.port = router.port();
  RpcClient client(copts);
  std::string error;
  EXPECT_TRUE(CallPing(&client, &error)) << error;
  for (int user = 0; user < 8; ++user) {
    const serve::RecommendRequest req = MakeRequest(user);
    serve::RecommendResponse via_wire;
    ASSERT_TRUE(CallRecommend(&client, req, &via_wire, &error)) << error;
    const serve::RecommendResponse want = direct.Recommend(req);
    ExpectSameAnswer(via_wire, want, user);
  }
  direct.Stop();
}

TEST(RouterTest, FailsOverWhenAWorkerDiesHard) {
  System system;
  WorkerStack a(system), b(system);
  serve::Server direct(*system.model, *system.trie, *system.token_map,
                       system.Builder(), ServeOptions());
  Router router(RouterOver({&a, &b}));
  ASSERT_TRUE(router.Start());

  b.rpc.Stop();  // hard death: no drain, connections torn down

  int failed_over = 0;
  for (int user = 0; user < 24; ++user) {
    const serve::RecommendRequest req = MakeRequest(user);
    if (router.ShardOf(req) == 1) ++failed_over;
    serve::RecommendResponse resp;
    std::string error;
    // Every request still succeeds: shard 1's traffic rides shard 0.
    ASSERT_TRUE(router.Forward(req, &resp, &error))
        << "user " << user << ": " << error;
    ExpectSameAnswer(resp, direct.Recommend(req), user);
  }
  ASSERT_GT(failed_over, 0) << "hash spread left shard 1 unused; add users";
  const std::vector<Router::ShardStats> stats = router.shard_stats();
  EXPECT_FALSE(stats[1].healthy);
  EXPECT_EQ(stats[1].failovers, failed_over);
  EXPECT_EQ(stats[0].requests + stats[1].requests, 24);
  direct.Stop();
}

TEST(RouterTest, GracefulDrainHandsOffWithZeroFailures) {
  System system;
  WorkerStack a(system), b(system);
  Router router(RouterOver({&a, &b}));
  ASSERT_TRUE(router.Start());

  // Warm both shards so the router holds live channels to b.
  for (int user = 0; user < 8; ++user) {
    serve::RecommendResponse resp;
    std::string error;
    ASSERT_TRUE(router.Forward(MakeRequest(user), &resp, &error)) << error;
  }

  // Drain b: listener closes first, existing connections finish and
  // close. From here every request must still succeed — shard 1 traffic
  // re-resolves to shard 0.
  b.rpc.BeginDrain();
  ASSERT_TRUE(b.rpc.WaitDrained(/*timeout_s=*/10.0));
  for (int user = 0; user < 24; ++user) {
    serve::RecommendResponse resp;
    std::string error;
    ASSERT_TRUE(router.Forward(MakeRequest(user), &resp, &error))
        << "user " << user << ": " << error;
  }
}

TEST(RouterTest, ChaosFlakyWorkerIsRetriedAway) {
  System system;
  WorkerStack a(system), b(system);
  // Fresh router per arm so the injected failures hit real connect
  // attempts (channels are pooled once opened).
  Router router(RouterOver({&a, &b}));
  ASSERT_TRUE(router.Start());

  serve::chaos::ChaosSpec spec;
  spec.site = serve::chaos::ChaosSpec::Site::kConn;
  spec.mode = serve::chaos::ChaosSpec::Mode::kFail;
  spec.rate = 1.0;
  spec.max_fires = 2;
  serve::chaos::ArmChaos({spec});

  // The first request eats both injected connect failures inside the
  // client's retry-with-backoff and still lands; nothing ever surfaces
  // to the router's failover path as a lost request.
  for (int user = 0; user < 8; ++user) {
    serve::RecommendResponse resp;
    std::string error;
    ASSERT_TRUE(router.Forward(MakeRequest(user), &resp, &error))
        << "user " << user << ": " << error;
  }
  EXPECT_EQ(serve::chaos::ChaosFires(), 2);
  serve::chaos::DisarmChaos();
}

TEST(RouterTest, StatuszShowsPerShardHealth) {
  System system;
  WorkerStack a(system), b(system);
  Router router(RouterOver({&a, &b}));
  ASSERT_TRUE(router.Start());
  serve::RecommendResponse resp;
  std::string error;
  ASSERT_TRUE(router.Forward(MakeRequest(1), &resp, &error)) << error;

  const std::string text = router.StatuszText();
  EXPECT_NE(text.find("shards 2"), std::string::npos) << text;
  EXPECT_NE(text.find("shard 0 127.0.0.1:"), std::string::npos) << text;
  EXPECT_NE(text.find("shard 1 127.0.0.1:"), std::string::npos) << text;
  EXPECT_NE(text.find(" up "), std::string::npos) << text;
  EXPECT_NE(text.find("front: "), std::string::npos) << text;
}

}  // namespace
}  // namespace lcrec::net

// Lock-discipline detector tests (src/obs/sync.{h,cc}): lock-order
// cycle detection on the first cycle-creating acquisition, rank
// inversion aborts, self-deadlock aborts, contention/hold accounting,
// and the /mutexz rendering.
//
// The lock-order graph is process-global, so every test starts with
// ResetDeadlockStateForTest() and uses test-local mutex names.

#include <gtest/gtest.h>

#include <thread>

#include "obs/sync.h"
#include "obs/trace.h"

namespace lcrec::obs {
namespace {

class SyncTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetDeadlockMode(DeadlockMode::kReport);
    ResetDeadlockStateForTest();
  }
  void TearDown() override {
    ResetDeadlockStateForTest();
    SetDeadlockMode(DeadlockMode::kReport);
  }
};

TEST_F(SyncTest, ConsistentOrderRecordsEdgesButNoCycle) {
  Mutex a("test.order.a");
  Mutex b("test.order.b");
  for (int i = 0; i < 3; ++i) {
    MutexLock la(a);
    MutexLock lb(b);
  }
  EXPECT_EQ(LockOrderEdgeCount(), 1u);  // a -> b, deduped after first sight
  EXPECT_EQ(LockOrderCycleCount(), 0);
  EXPECT_TRUE(LockOrderFindings().empty());
}

TEST_F(SyncTest, CycleReportedOnFirstCycleCreatingAcquisition) {
  Mutex a("test.cycle.a");
  Mutex b("test.cycle.b");
  {
    MutexLock la(a);
    MutexLock lb(b);  // edge a -> b
  }
  {
    MutexLock lb(b);
    // First acquisition in the reversed order: detected here, at the
    // moment the cycle is created, with no second thread and no actual
    // deadlock anywhere.
    MutexLock la(a);  // edge b -> a closes the cycle
  }
  EXPECT_EQ(LockOrderCycleCount(), 1);
  std::vector<std::string> findings = LockOrderFindings();
  ASSERT_EQ(findings.size(), 1u);
  // The report names both mutexes and carries both acquisition paths:
  // the acquisition that closed the cycle and the first-seen context of
  // the conflicting edge.
  EXPECT_NE(findings[0].find("test.cycle.a"), std::string::npos);
  EXPECT_NE(findings[0].find("test.cycle.b"), std::string::npos);
  EXPECT_NE(findings[0].find("this acquisition"), std::string::npos);
  EXPECT_NE(findings[0].find("conflicting edge"), std::string::npos);
  EXPECT_NE(findings[0].find("spans:"), std::string::npos);
}

TEST_F(SyncTest, CycleReportCarriesSpanStacks) {
  Mutex a("test.spans.a");
  Mutex b("test.spans.b");
  {
    ScopedSpan span("forward.path");
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    ScopedSpan span("reverse.path");
    MutexLock lb(b);
    MutexLock la(a);
  }
  std::vector<std::string> findings = LockOrderFindings();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].find("reverse.path"), std::string::npos)
      << findings[0];
  EXPECT_NE(findings[0].find("forward.path"), std::string::npos)
      << findings[0];
}

TEST_F(SyncTest, ThreeLockCycleDetected) {
  Mutex a("test.tri.a");
  Mutex b("test.tri.b");
  Mutex c("test.tri.c");
  {
    MutexLock la(a);
    MutexLock lb(b);  // a -> b
  }
  {
    MutexLock lb(b);
    MutexLock lc(c);  // b -> c
  }
  {
    MutexLock lc(c);
    MutexLock la(a);  // c -> a: closes a -> b -> c -> a
  }
  EXPECT_EQ(LockOrderCycleCount(), 1);
  std::vector<std::string> findings = LockOrderFindings();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].find("test.tri.a"), std::string::npos);
  EXPECT_NE(findings[0].find("test.tri.b"), std::string::npos);
  EXPECT_NE(findings[0].find("test.tri.c"), std::string::npos);
}

TEST_F(SyncTest, FatalModeAbortsOnCycleNamingBothMutexes) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SetDeadlockMode(DeadlockMode::kFatal);
  Mutex a("test.fatal.a");
  Mutex b("test.fatal.b");
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  EXPECT_DEATH(
      {
        MutexLock lb(b);
        MutexLock la(a);
      },
      "lock-order cycle.*test\\.fatal\\.a.*test\\.fatal\\.b");
}

TEST_F(SyncTest, RankInversionAbortsNamingBothMutexesAndRanks) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex low("test.rank.low", 10);
  Mutex high("test.rank.high", 20);
  {
    // Correct order: ascending ranks.
    MutexLock l1(low);
    MutexLock l2(high);
  }
  EXPECT_DEATH(
      {
        MutexLock l2(high);
        MutexLock l1(low);  // rank 10 while holding rank 20
      },
      "rank inversion.*test\\.rank\\.low.*rank 10.*test\\.rank\\.high.*rank "
      "20");
}

TEST_F(SyncTest, EqualRankAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex a("test.eqrank.a", 30);
  Mutex b("test.eqrank.b", 30);
  EXPECT_DEATH(
      {
        MutexLock la(a);
        MutexLock lb(b);  // equal rank: ordering undeclared, refuse
      },
      "rank inversion");
}

TEST_F(SyncTest, SelfRelockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex a("test.relock.a");
  EXPECT_DEATH(
      {
        MutexLock l1(a);
        a.lock();  // non-recursive mutex, same thread: certain deadlock
      },
      "self-deadlock.*test\\.relock\\.a");
}

TEST_F(SyncTest, RankedThroughUnrankedIsAllowed) {
  // Anonymous mutexes do not take part in rank checks.
  Mutex low("test.mixed.low", 10);
  Mutex anon;
  Mutex high("test.mixed.high", 20);
  MutexLock l1(low);
  MutexLock l2(anon);
  MutexLock l3(high);
  EXPECT_EQ(LockOrderCycleCount(), 0);
}

TEST_F(SyncTest, OffModeTracksNothing) {
  SetDeadlockMode(DeadlockMode::kOff);
  Mutex a("test.off.a");
  Mutex b("test.off.b");
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    MutexLock lb(b);
    MutexLock la(a);  // would close a cycle if detection were on
  }
  EXPECT_EQ(LockOrderEdgeCount(), 0u);
  EXPECT_EQ(LockOrderCycleCount(), 0);
}

TEST_F(SyncTest, ContentionAndHoldAccounting) {
  Mutex mu("test.contend.mu");
  { MutexLock lock(mu); }  // one uncontended acquisition
  mu.lock();
  std::thread contender([&mu] {
    MutexLock lock(mu);  // blocks until the main thread releases
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  mu.unlock();
  contender.join();

  bool found = false;
  for (const MutexStatsRow& row : MutexStatsSnapshot()) {
    if (row.name != "test.contend.mu") continue;
    found = true;
    EXPECT_EQ(row.instances, 1);
    EXPECT_EQ(row.acquisitions, 3);
    EXPECT_GE(row.contended, 1);
    EXPECT_GT(row.wait_total_us, 0);
    EXPECT_GE(row.wait_max_us, 10000);  // blocked ~20ms
    EXPECT_GE(row.hold_max_us, 10000);  // held ~20ms
    EXPECT_GT(row.hold_total_us, 0);
  }
  EXPECT_TRUE(found);
}

TEST_F(SyncTest, StatsAggregateAcrossInstancesOfOneName) {
  for (int i = 0; i < 3; ++i) {
    Mutex mu("test.agg.mu");
    MutexLock lock(mu);
  }
  for (const MutexStatsRow& row : MutexStatsSnapshot()) {
    if (row.name != "test.agg.mu") continue;
    EXPECT_EQ(row.instances, 3);
    EXPECT_EQ(row.acquisitions, 3);
    return;
  }
  FAIL() << "test.agg.mu not in snapshot";
}

TEST_F(SyncTest, CondVarWaitDoesNotFalsePositive) {
  // A CondVar wait unlocks and relocks through Mutex::unlock/lock; the
  // relock after wakeup must not register a spurious ordering against
  // locks the waker held.
  Mutex mu("test.cv.mu");
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    UniqueLock lock(mu);
    cv.Wait(lock, [&] { return ready; });
  }
  waker.join();
  EXPECT_EQ(LockOrderCycleCount(), 0);
  EXPECT_TRUE(LockOrderFindings().empty());
}

TEST_F(SyncTest, MutexzTextRendersStatsAndFindings) {
  Mutex a("test.mutexz.a");
  Mutex b("test.mutexz.b");
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    MutexLock lb(b);
    MutexLock la(a);
  }
  std::string text = MutexzText();
  EXPECT_NE(text.find("mode report"), std::string::npos) << text;
  EXPECT_NE(text.find("test.mutexz.a"), std::string::npos);
  EXPECT_NE(text.find("\"test.mutexz.a\" -> \"test.mutexz.b\""),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lock-order cycle"), std::string::npos) << text;
  // Named system mutexes from the rank table show up too.
  EXPECT_NE(text.find("obs.metrics.registry"), std::string::npos);
}

TEST_F(SyncTest, DeadlockModeNames) {
  EXPECT_STREQ(DeadlockModeName(DeadlockMode::kOff), "off");
  EXPECT_STREQ(DeadlockModeName(DeadlockMode::kReport), "report");
  EXPECT_STREQ(DeadlockModeName(DeadlockMode::kFatal), "fatal");
}

}  // namespace
}  // namespace lcrec::obs

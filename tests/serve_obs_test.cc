// Request-level observability of lcrec::serve::Server: gap-free stage
// timelines on every path (cache hit, inline, queued, coalesced, shed),
// the timeline-sums-to-latency acceptance bound, decode attribution
// from the batch engine, Chrome async-span export for sampled requests,
// the per-server SLO monitor, and the flight-recorder black box — shed
// events must appear both in DumpFlightRecorder() and in the crash dump
// a failed LCREC_CHECK writes to stderr (death test).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/check.h"
#include "llm/minillm.h"
#include "obs/debugz.h"
#include "obs/http.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "quant/indexing.h"
#include "serve/server.h"
#include "text/vocab.h"

namespace lcrec::serve {
namespace {

template <typename Pred>
bool WaitUntil(Pred pred, int timeout_ms = 10000) {
  for (int i = 0; i < timeout_ms; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

class ServeObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::Rng rng(5);
    indexing_ = quant::ItemIndexing::Random(12, 3, 4, rng);
    trie_ = std::make_unique<quant::PrefixTrie>(indexing_);
    for (const std::string& tok : indexing_.AllTokenStrings()) {
      vocab_.AddToken(tok);
    }
    llm::MiniLlmConfig cfg;
    cfg.vocab_size = vocab_.size();
    cfg.d_model = 16;
    cfg.n_heads = 2;
    cfg.n_layers = 2;
    cfg.d_ff = 32;
    cfg.max_seq = 64;
    cfg.seed = 3;
    model_ = std::make_unique<llm::MiniLlm>(cfg);
    token_map_ = std::make_unique<llm::IndexTokenMap>(indexing_, vocab_);
  }

  PromptBuilder Builder() const {
    int vocab = vocab_.size();
    return [vocab](const std::vector<int>& history) {
      std::vector<int> prompt = {text::Vocabulary::kBos};
      for (int item : history) {
        prompt.push_back(4 + (item % (vocab - 4)));
      }
      return prompt;
    };
  }

  std::unique_ptr<Server> MakeServer(ServerOptions opts) const {
    return std::make_unique<Server>(*model_, *trie_, *token_map_, Builder(),
                                    opts);
  }

  text::Vocabulary vocab_;
  quant::ItemIndexing indexing_ = quant::ItemIndexing::VanillaId(1);
  std::unique_ptr<quant::PrefixTrie> trie_;
  std::unique_ptr<llm::MiniLlm> model_;
  std::unique_ptr<llm::IndexTokenMap> token_map_;
};

std::vector<std::string> StageNames(const RequestDebug& d) {
  std::vector<std::string> names;
  for (const obs::StageSpan& s : d.stages) names.emplace_back(s.stage);
  return names;
}

double StageSumUs(const RequestDebug& d) {
  double sum = 0.0;
  for (const obs::StageSpan& s : d.stages) sum += s.dur_us;
  return sum;
}

/// The acceptance bound: stage durations must tile the request, summing
/// to its end-to-end latency within 5% (plus a small absolute slack for
/// the sub-microsecond gap between the latency read and Finish()).
void ExpectTimelineMatchesLatency(const RecommendResponse& resp) {
  ASSERT_FALSE(resp.debug.stages.empty());
  double lat_us = resp.latency_ms * 1000.0;
  double sum_us = StageSumUs(resp.debug);
  EXPECT_LE(std::fabs(sum_us - lat_us), std::max(0.05 * lat_us, 50.0))
      << "stages sum to " << sum_us << "us but latency is " << lat_us << "us";
  // Gap-free: each stage starts exactly where the previous ended.
  for (size_t i = 1; i < resp.debug.stages.size(); ++i) {
    const obs::StageSpan& prev = resp.debug.stages[i - 1];
    EXPECT_DOUBLE_EQ(resp.debug.stages[i].start_us,
                     prev.start_us + prev.dur_us)
        << "gap before stage " << resp.debug.stages[i].stage;
  }
}

TEST_F(ServeObsTest, QueuedRequestTimelineSumsToLatency) {
  ServerOptions opts;
  opts.beam_size = 4;
  opts.inline_fast_path = false;  // force the full queued path
  opts.cache_capacity = 0;
  auto server = MakeServer(opts);
  for (int i = 0; i < 4; ++i) {
    RecommendRequest req;
    req.history = {i, i + 7};
    req.top_n = 3;
    RecommendResponse resp = server->Recommend(req);
    ASSERT_EQ(resp.status, Status::kOk);
    EXPECT_GT(resp.debug.request_id, 0u);
    ExpectTimelineMatchesLatency(resp);
    std::vector<std::string> names = StageNames(resp.debug);
    ASSERT_EQ(names.size(), 7u) << "queued path has a fixed stage set";
    EXPECT_EQ(names[0], "build");
    EXPECT_EQ(names[1], "cache_lookup");
    EXPECT_EQ(names[2], "queue_wait");
    EXPECT_EQ(names[3], "admit");
    EXPECT_EQ(names[4], "decode");
    EXPECT_EQ(names[5], "retire");
    EXPECT_EQ(names[6], "respond");
  }
}

TEST_F(ServeObsTest, InlinePathTimelineSkipsTheQueue) {
  ServerOptions opts;
  opts.beam_size = 4;
  opts.cache_capacity = 0;  // force a real decode every time
  auto server = MakeServer(opts);
  RecommendRequest req;
  req.history = {1, 2, 3};
  RecommendResponse resp = server->Recommend(req);
  ASSERT_EQ(resp.status, Status::kOk);
  ASSERT_TRUE(resp.inline_path) << "idle server must take the fast path";
  ExpectTimelineMatchesLatency(resp);
  std::vector<std::string> names = StageNames(resp.debug);
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "build");
  EXPECT_EQ(names[1], "cache_lookup");
  EXPECT_EQ(names[2], "decode");
  EXPECT_EQ(names[3], "respond");
  // Inline decode never enters the batch engine, so no tick attribution.
  EXPECT_EQ(resp.debug.decode_ticks, 0);
  EXPECT_DOUBLE_EQ(resp.debug.decode_share_us, 0.0);
}

TEST_F(ServeObsTest, CacheHitTimelineEndsAtTheLookup) {
  ServerOptions opts;
  opts.beam_size = 4;
  auto server = MakeServer(opts);
  RecommendRequest req;
  req.history = {3, 1, 4};
  RecommendResponse first = server->Recommend(req);
  ASSERT_EQ(first.status, Status::kOk);
  ASSERT_FALSE(first.cache_hit);
  RecommendResponse second = server->Recommend(req);
  ASSERT_EQ(second.status, Status::kOk);
  ASSERT_TRUE(second.cache_hit);
  EXPECT_GT(second.debug.request_id, first.debug.request_id);
  ExpectTimelineMatchesLatency(second);
  std::vector<std::string> names = StageNames(second.debug);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "build");
  EXPECT_EQ(names[1], "cache_lookup");
}

TEST_F(ServeObsTest, CoalescedFollowerGetsItsOwnWaitTimeline) {
  ServerOptions opts;
  opts.beam_size = 4;
  opts.inline_fast_path = false;
  opts.start_scheduler = false;  // stage leader + follower deterministically
  opts.cache_capacity = 0;
  auto server = MakeServer(opts);

  RecommendRequest req;
  req.history = {2, 7, 2};
  RecommendResponse leader_resp, follower_resp;
  std::thread leader([&] { leader_resp = server->Recommend(req); });
  ASSERT_TRUE(WaitUntil([&] { return server->queue_depth() == 1; }));
  std::thread follower([&] { follower_resp = server->Recommend(req); });
  ASSERT_TRUE(WaitUntil([&] { return server->stats().coalesced == 1; }));
  server->Start();
  leader.join();
  follower.join();

  ASSERT_EQ(leader_resp.status, Status::kOk);
  ASSERT_EQ(follower_resp.status, Status::kOk);
  EXPECT_FALSE(leader_resp.coalesced);
  EXPECT_TRUE(follower_resp.coalesced);
  EXPECT_NE(leader_resp.debug.request_id, follower_resp.debug.request_id);

  // The follower never queued or decoded: it parked on the leader's
  // pending, so its timeline is its own three-stage wait.
  ExpectTimelineMatchesLatency(follower_resp);
  std::vector<std::string> names = StageNames(follower_resp.debug);
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "build");
  EXPECT_EQ(names[1], "cache_lookup");
  EXPECT_EQ(names[2], "coalesce_wait");
  // The leader went through the queue and the shared decode.
  std::vector<std::string> leader_names = StageNames(leader_resp.debug);
  EXPECT_NE(std::find(leader_names.begin(), leader_names.end(), "queue_wait"),
            leader_names.end());
  EXPECT_NE(std::find(leader_names.begin(), leader_names.end(), "decode"),
            leader_names.end());
}

TEST_F(ServeObsTest, QueuedDecodeCarriesBatchAttribution) {
  ServerOptions opts;
  opts.beam_size = 4;
  opts.inline_fast_path = false;
  opts.cache_capacity = 0;
  auto server = MakeServer(opts);
  RecommendRequest req;
  req.history = {9, 8, 7};
  RecommendResponse resp = server->Recommend(req);
  ASSERT_EQ(resp.status, Status::kOk);
  EXPECT_GT(resp.debug.decode_ticks, 0)
      << "a batched decode participates in at least one tick";
  EXPECT_GT(resp.debug.decode_share_us, 0.0);
}

TEST_F(ServeObsTest, ShedRequestTimelineEndsInShed) {
  ServerOptions opts;
  opts.degraded_fallbacks = false;  // this test asserts the shed contract
  opts.beam_size = 4;
  opts.inline_fast_path = false;
  opts.start_scheduler = false;
  opts.max_queue = 1;
  opts.cache_capacity = 0;
  auto server = MakeServer(opts);

  RecommendRequest filler;
  filler.history = {1};
  std::thread blocked([&] { (void)server->Recommend(filler); });
  ASSERT_TRUE(WaitUntil([&] { return server->queue_depth() == 1; }));

  RecommendRequest req;
  req.history = {2};
  RecommendResponse resp = server->Recommend(req);
  EXPECT_EQ(resp.status, Status::kShedQueueFull);
  std::vector<std::string> names = StageNames(resp.debug);
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.back(), "shed");
  ExpectTimelineMatchesLatency(resp);

  server->Start();  // release the filler
  blocked.join();
}

TEST_F(ServeObsTest, DumpFlightRecorderContainsRecentSheds) {
  ServerOptions opts;
  opts.degraded_fallbacks = false;  // this test asserts the shed contract
  opts.beam_size = 4;
  opts.inline_fast_path = false;
  opts.start_scheduler = false;
  opts.max_queue = 1;
  opts.cache_capacity = 0;
  auto server = MakeServer(opts);

  RecommendRequest filler;
  filler.history = {1};
  std::thread blocked([&] { (void)server->Recommend(filler); });
  ASSERT_TRUE(WaitUntil([&] { return server->queue_depth() == 1; }));

  const int kSheds = 5;
  for (int i = 0; i < kSheds; ++i) {
    RecommendRequest req;
    // Distinct keys, none colliding with the filler's prompt: the
    // builder maps item ids mod (vocab-4), so {20..24} -> tokens
    // {8,9,10,11,0}-ish, never the filler's. A collision would coalesce
    // onto the parked filler and wait forever instead of shedding.
    req.history = {20 + i};
    RecommendResponse resp = server->Recommend(req);
    ASSERT_EQ(resp.status, Status::kShedQueueFull);
  }

  std::ostringstream dump;
  server->DumpFlightRecorder(dump);
  std::istringstream in(dump.str());
  std::string line;
  int shed_lines = 0;
  while (std::getline(in, line)) {
    if (line.find("\"detail\":\"shed_queue_full\"") != std::string::npos) {
      ++shed_lines;
      EXPECT_NE(line.find("\"kind\":\"shed\""), std::string::npos) << line;
    }
  }
  EXPECT_GE(shed_lines, kSheds) << dump.str();

  server->Start();
  blocked.join();
}

TEST_F(ServeObsTest, SloMonitorTracksCompletions) {
  ServerOptions opts;
  opts.beam_size = 4;
  opts.slo.target_ms = 10000.0;  // nothing here should count as bad
  auto server = MakeServer(opts);
  const int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) {
    RecommendRequest req;
    req.history = {i};
    ASSERT_EQ(server->Recommend(req).status, Status::kOk);
  }
  obs::SloWindow w = server->slo().Window();
  EXPECT_EQ(w.total, kRequests);
  EXPECT_EQ(w.bad, 0);
  EXPECT_DOUBLE_EQ(w.burn_rate, 0.0);
  std::string statusz = server->Statusz();
  EXPECT_NE(statusz.find("slo: target 10000ms"), std::string::npos) << statusz;
  EXPECT_NE(statusz.find("total 6"), std::string::npos) << statusz;
}

TEST_F(ServeObsTest, ShedsCountAgainstTheSlo) {
  ServerOptions opts;
  opts.degraded_fallbacks = false;  // this test asserts the shed contract
  opts.beam_size = 4;
  opts.inline_fast_path = false;
  opts.start_scheduler = false;
  opts.max_queue = 1;
  opts.cache_capacity = 0;
  opts.slo.target_ms = 10000.0;
  auto server = MakeServer(opts);

  RecommendRequest filler;
  filler.history = {1};
  std::thread blocked([&] { (void)server->Recommend(filler); });
  ASSERT_TRUE(WaitUntil([&] { return server->queue_depth() == 1; }));
  RecommendRequest req;
  req.history = {2};
  ASSERT_EQ(server->Recommend(req).status, Status::kShedQueueFull);
  obs::SloWindow w = server->slo().Window();
  EXPECT_GE(w.bad, 1) << "a shed is budget burn even with a lax target";
  EXPECT_GT(w.burn_rate, 0.0);
  server->Start();
  blocked.join();
}

TEST_F(ServeObsTest, SampledRequestsExportAsyncSpans) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Clear();
  ServerOptions opts;
  opts.beam_size = 4;
  opts.trace_sample_n = 1;  // sample everything
  auto server = MakeServer(opts);
  rec.SetEnabled(true);
  RecommendRequest req;
  req.history = {5, 6};
  RecommendResponse resp = server->Recommend(req);
  rec.SetEnabled(false);
  ASSERT_EQ(resp.status, Status::kOk);
  ASSERT_TRUE(resp.debug.sampled);

  int begins = 0, ends = 0;
  bool saw_req = false, saw_stage = false;
  for (const obs::TraceEvent& e : rec.Events()) {
    if (e.async_id != resp.debug.request_id) continue;
    if (e.phase == 'b') ++begins;
    if (e.phase == 'e') ++ends;
    if (e.name == "req") saw_req = true;
    if (e.name == "req.decode") saw_stage = true;
  }
  // One enclosing pair plus one pair per recorded stage.
  EXPECT_EQ(begins, static_cast<int>(resp.debug.stages.size()) + 1);
  EXPECT_EQ(begins, ends);
  EXPECT_TRUE(saw_req);
  EXPECT_TRUE(saw_stage);
  rec.Clear();
}

TEST_F(ServeObsTest, SamplingOffMeansNoDebugSampledFlag) {
  ServerOptions opts;
  opts.beam_size = 4;
  opts.trace_sample_n = 0;  // sampling disabled; timelines still built
  auto server = MakeServer(opts);
  RecommendRequest req;
  req.history = {4};
  RecommendResponse resp = server->Recommend(req);
  ASSERT_EQ(resp.status, Status::kOk);
  EXPECT_FALSE(resp.debug.sampled);
  EXPECT_FALSE(resp.debug.stages.empty());
}

/// Satellite: Statusz is a one-stop serving snapshot — SLO line plus
/// request, cache-rate, queue, batch-lane, and shed counters.
TEST_F(ServeObsTest, StatuszIsAOneStopSnapshot) {
  ServerOptions opts;
  opts.beam_size = 4;
  auto server = MakeServer(opts);
  RecommendRequest req;
  req.history = {2, 3};
  ASSERT_EQ(server->Recommend(req).status, Status::kOk);
  ASSERT_EQ(server->Recommend(req).status, Status::kOk);  // cache hit

  std::string statusz = server->Statusz();
  EXPECT_NE(statusz.find("slo: target"), std::string::npos) << statusz;
  EXPECT_NE(statusz.find("requests 2 | completed 2 | decoded 1"),
            std::string::npos)
      << statusz;
  EXPECT_NE(statusz.find("cache: hits 1 (50.0%)"), std::string::npos)
      << statusz;
  EXPECT_NE(statusz.find("queue: depth 0 / 256"), std::string::npos)
      << statusz;
  EXPECT_NE(statusz.find("batch: active_lanes"), std::string::npos)
      << statusz;
  EXPECT_NE(statusz.find("shed: queue_full 0 | deadline 0"),
            std::string::npos)
      << statusz;
}

/// Tentpole integration: a server constructed with debug_port exposes
/// its statusz section and the sampled request timelines over HTTP.
TEST_F(ServeObsTest, DebugzServesServeSectionAndTimelines) {
  obs::RecentTimelines::Global().Clear();
  ServerOptions opts;
  opts.beam_size = 4;
  opts.debug_port = 0;  // ephemeral
  auto server = MakeServer(opts);
  obs::DebugServer& debugz = obs::DebugServer::Global();
  ASSERT_TRUE(debugz.running());
  ASSERT_GT(debugz.port(), 0);

  for (int i = 0; i < 3; ++i) {
    RecommendRequest req;
    req.history = {7 + i};
    ASSERT_EQ(server->Recommend(req).status, Status::kOk);
  }

  obs::HttpResponse resp;
  std::string error;
  ASSERT_TRUE(obs::HttpGet("127.0.0.1", debugz.port(), "/statusz", &resp,
                           &error))
      << error;
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("--- serve ---"), std::string::npos) << resp.body;
  EXPECT_NE(resp.body.find("cache: hits"), std::string::npos) << resp.body;
  EXPECT_NE(resp.body.find("batch: active_lanes"), std::string::npos)
      << resp.body;

  ASSERT_TRUE(obs::HttpGet("127.0.0.1", debugz.port(), "/timelinez", &resp,
                           &error))
      << error;
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"request_id\":"), std::string::npos)
      << resp.body;
  EXPECT_NE(resp.body.find("\"stage\":\"build\""), std::string::npos)
      << resp.body;

  // A destroyed server withdraws its section instead of dangling.
  server.reset();
  ASSERT_TRUE(obs::HttpGet("127.0.0.1", debugz.port(), "/statusz", &resp,
                           &error))
      << error;
  EXPECT_EQ(resp.body.find("--- serve ---"), std::string::npos) << resp.body;
  // Join the debug thread so the later fork-based death test does not
  // inherit a live event loop.
  debugz.Stop();
}

// A crash must leave a readable black box: force a burst of sheds, then
// fail an LCREC_CHECK and require the stderr dump to contain the shed
// events recorded just before death. Threadsafe style re-executes the
// binary, so everything — server, sheds, crash — happens inside the
// death statement.
TEST_F(ServeObsTest, CrashDumpNamesTheRecentSheds) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto force_sheds_then_crash = [this] {
    ServerOptions opts;
    opts.degraded_fallbacks = false;  // shed contract
    opts.beam_size = 4;
    opts.inline_fast_path = false;
    opts.start_scheduler = false;
    opts.max_queue = 1;
    opts.cache_capacity = 0;
    auto server = MakeServer(opts);
    RecommendRequest filler;
    filler.history = {1};
    std::thread blocked([&] { (void)server->Recommend(filler); });
    blocked.detach();  // the process dies before this request resolves
    if (!WaitUntil([&] { return server->queue_depth() == 1; })) {
      std::_Exit(42);  // staging failed; don't fake the expected death
    }
    for (int i = 0; i < 4; ++i) {
      RecommendRequest req;
      req.history = {20 + i};
      (void)server->Recommend(req);
    }
    LCREC_CHECK(false);  // -> flight-recorder dump on stderr, then abort
  };
  EXPECT_DEATH(force_sheds_then_crash(),
               "flight recorder dump(.*shed_queue_full){3}");
}

}  // namespace
}  // namespace lcrec::serve

// End-to-end pipeline test on a micro configuration:
// catalog -> text embeddings -> RQ-VAE indices -> vocabulary -> alignment
// tuning -> trie-constrained generation -> full-ranking evaluation.

#include <set>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "rec/lcrec.h"
#include "rec/recommender.h"
#include "serve/server.h"

namespace lcrec::rec {
namespace {

LcRecConfig MicroConfig() {
  LcRecConfig cfg = LcRecConfig::Small();
  cfg.rqvae.epochs = 40;
  cfg.rqvae.levels = 3;
  cfg.rqvae.codebook_size = 24;
  cfg.llm.d_model = 24;
  cfg.llm.d_ff = 48;
  cfg.llm.n_heads = 4;
  cfg.llm.n_layers = 2;
  cfg.trainer.epochs = 16;
  cfg.instructions.max_history = 6;
  cfg.instructions.seq_targets_per_user = 3;
  cfg.beam_size = 10;
  cfg.seed = 13;
  return cfg;
}

class LcRecPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::Dataset(
        data::Dataset::Make(data::Domain::kGames, 0.25, 19));
    model_ = new LcRec(MicroConfig());
    model_->Fit(*dataset_);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
    model_ = nullptr;
    dataset_ = nullptr;
  }

  static data::Dataset* dataset_;
  static LcRec* model_;
};

data::Dataset* LcRecPipelineTest::dataset_ = nullptr;
LcRec* LcRecPipelineTest::model_ = nullptr;

TEST_F(LcRecPipelineTest, IndexingHasNoConflicts) {
  EXPECT_EQ(model_->indexing().ConflictCount(), 0);
  EXPECT_EQ(model_->indexing().num_items(), dataset_->num_items());
}

TEST_F(LcRecPipelineTest, TopKReturnsValidDistinctItems) {
  auto results = model_->TopK(dataset_->TestContext(0), 10);
  ASSERT_FALSE(results.empty());
  std::set<int> seen;
  for (const auto& r : results) {
    EXPECT_GE(r.item, 0);
    EXPECT_LT(r.item, dataset_->num_items());
    EXPECT_TRUE(seen.insert(r.item).second);
  }
}

TEST_F(LcRecPipelineTest, BeatsRandomRanking) {
  RankingMetrics m = EvaluateGenerative(
      [&](const std::vector<int>& h) { return model_->TopKIds(h, 10); },
      *dataset_, 60);
  // Random full ranking would give HR@10 ~= 10/num_items (< 0.2 here).
  double random_hr10 = 10.0 / dataset_->num_items();
  EXPECT_GT(m.hr10, random_hr10 * 1.8)
      << "HR@10=" << m.hr10 << " random=" << random_hr10;
}

TEST_F(LcRecPipelineTest, IntentionRetrievalRuns) {
  core::Rng rng(3);
  int target = dataset_->TestTarget(0);
  std::string intent = dataset_->IntentionFor(target, rng);
  auto results = model_->TopKFromIntention(intent, 10);
  EXPECT_FALSE(results.empty());
}

TEST_F(LcRecPipelineTest, CandidateScoringPrefersPlausibleItems) {
  // Mean per-token logprob must be a finite negative number.
  float s = model_->ScoreCandidate(dataset_->TestContext(0),
                                   dataset_->TestTarget(0), false);
  EXPECT_LT(s, 0.0f);
  EXPECT_GT(s, -50.0f);
  float st = model_->ScoreCandidate(dataset_->TestContext(0),
                                    dataset_->TestTarget(0), true);
  EXPECT_LT(st, 0.0f);
}

TEST_F(LcRecPipelineTest, TitleGenerationProducesText) {
  std::string title = model_->GenerateTitleFromIndices(0, 4);
  EXPECT_FALSE(title.empty());
}

TEST_F(LcRecPipelineTest, EmbeddingDumpsHaveExpectedShapes) {
  core::Tensor idx = model_->IndexTokenEmbeddings();
  core::Tensor txt = model_->TextTokenEmbeddings(100);
  EXPECT_GT(idx.rows(), 10);
  EXPECT_EQ(idx.cols(), model_->model().config().d_model);
  EXPECT_GT(txt.rows(), 10);
  EXPECT_LE(txt.rows(), 100);
}

TEST_F(LcRecPipelineTest, ScoreAllItemsConsistentWithTopK) {
  auto history = dataset_->TestContext(1);
  auto scores = model_->ScoreAllItems(history);
  auto top = model_->TopK(history, 1);
  ASSERT_FALSE(top.empty());
  int best = 0;
  for (int i = 1; i < dataset_->num_items(); ++i) {
    if (scores[static_cast<size_t>(i)] > scores[static_cast<size_t>(best)]) {
      best = i;
    }
  }
  EXPECT_EQ(best, top[0].item);
}

TEST_F(LcRecPipelineTest, OnlineServerMatchesOfflineTopK) {
  // The serving layer wired onto a fitted LcRec (shared model, trie,
  // token map, and prompt format) must return exactly TopK's ranking.
  serve::ServerOptions opts;
  opts.beam_size = model_->config().beam_size;
  serve::Server server(
      model_->model(), model_->trie(), model_->token_map(),
      [&](const std::vector<int>& h) { return model_->PromptTokens(h); },
      opts);
  serve::RecommendRequest req;
  req.history = dataset_->TestContext(2);
  req.top_n = 10;
  serve::RecommendResponse resp = server.Recommend(req);
  ASSERT_EQ(resp.status, serve::Status::kOk);
  auto want = model_->TopK(req.history, 10);
  ASSERT_EQ(resp.items.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(resp.items[i].item, want[i].item) << "rank " << i;
    EXPECT_EQ(resp.items[i].logprob, want[i].logprob) << "rank " << i;
  }
}

}  // namespace
}  // namespace lcrec::rec

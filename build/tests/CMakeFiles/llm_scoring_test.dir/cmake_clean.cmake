file(REMOVE_RECURSE
  "CMakeFiles/llm_scoring_test.dir/llm_scoring_test.cc.o"
  "CMakeFiles/llm_scoring_test.dir/llm_scoring_test.cc.o.d"
  "llm_scoring_test"
  "llm_scoring_test.pdb"
  "llm_scoring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm_scoring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

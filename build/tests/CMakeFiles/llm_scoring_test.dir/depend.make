# Empty dependencies file for llm_scoring_test.
# This may be replaced when dependencies are built.

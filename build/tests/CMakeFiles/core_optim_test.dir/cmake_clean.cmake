file(REMOVE_RECURSE
  "CMakeFiles/core_optim_test.dir/core_optim_test.cc.o"
  "CMakeFiles/core_optim_test.dir/core_optim_test.cc.o.d"
  "core_optim_test"
  "core_optim_test.pdb"
  "core_optim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_optim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

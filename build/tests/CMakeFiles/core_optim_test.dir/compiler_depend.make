# Empty compiler generated dependencies file for core_optim_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/core_linalg_test.dir/core_linalg_test.cc.o"
  "CMakeFiles/core_linalg_test.dir/core_linalg_test.cc.o.d"
  "core_linalg_test"
  "core_linalg_test.pdb"
  "core_linalg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_linalg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for core_linalg_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for zeroshot_test.
# This may be replaced when dependencies are built.

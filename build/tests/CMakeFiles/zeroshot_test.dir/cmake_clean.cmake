file(REMOVE_RECURSE
  "CMakeFiles/zeroshot_test.dir/zeroshot_test.cc.o"
  "CMakeFiles/zeroshot_test.dir/zeroshot_test.cc.o.d"
  "zeroshot_test"
  "zeroshot_test.pdb"
  "zeroshot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zeroshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_tensor_test[1]_include.cmake")
include("/root/repo/build/tests/core_graph_test[1]_include.cmake")
include("/root/repo/build/tests/core_optim_test[1]_include.cmake")
include("/root/repo/build/tests/core_linalg_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/quant_test[1]_include.cmake")
include("/root/repo/build/tests/llm_test[1]_include.cmake")
include("/root/repo/build/tests/tasks_test[1]_include.cmake")
include("/root/repo/build/tests/rec_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/core_property_test[1]_include.cmake")
include("/root/repo/build/tests/zeroshot_test[1]_include.cmake")
include("/root/repo/build/tests/llm_scoring_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_test[1]_include.cmake")

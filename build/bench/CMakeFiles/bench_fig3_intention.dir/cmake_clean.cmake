file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_intention.dir/bench_fig3_intention.cc.o"
  "CMakeFiles/bench_fig3_intention.dir/bench_fig3_intention.cc.o.d"
  "bench_fig3_intention"
  "bench_fig3_intention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_intention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

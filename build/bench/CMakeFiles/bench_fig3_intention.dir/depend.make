# Empty dependencies file for bench_fig3_intention.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_indexing.dir/bench_fig2_indexing.cc.o"
  "CMakeFiles/bench_fig2_indexing.dir/bench_fig2_indexing.cc.o.d"
  "bench_fig2_indexing"
  "bench_fig2_indexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_negatives.dir/bench_table5_negatives.cc.o"
  "CMakeFiles/bench_table5_negatives.dir/bench_table5_negatives.cc.o.d"
  "bench_table5_negatives"
  "bench_table5_negatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_negatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

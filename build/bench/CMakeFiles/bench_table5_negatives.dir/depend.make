# Empty dependencies file for bench_table5_negatives.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table4_ablation.cc" "bench/CMakeFiles/bench_table4_ablation.dir/bench_table4_ablation.cc.o" "gcc" "bench/CMakeFiles/bench_table4_ablation.dir/bench_table4_ablation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rec/CMakeFiles/lcrec_rec.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/lcrec_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/tasks/CMakeFiles/lcrec_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/lcrec_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/lcrec_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/lcrec_data.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/lcrec_text.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lcrec_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

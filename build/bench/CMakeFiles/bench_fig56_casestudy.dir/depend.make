# Empty dependencies file for bench_fig56_casestudy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig56_casestudy.dir/bench_fig56_casestudy.cc.o"
  "CMakeFiles/bench_fig56_casestudy.dir/bench_fig56_casestudy.cc.o.d"
  "bench_fig56_casestudy"
  "bench_fig56_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig56_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

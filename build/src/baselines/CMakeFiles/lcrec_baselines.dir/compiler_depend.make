# Empty compiler generated dependencies file for lcrec_baselines.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bert4rec.cc" "src/baselines/CMakeFiles/lcrec_baselines.dir/bert4rec.cc.o" "gcc" "src/baselines/CMakeFiles/lcrec_baselines.dir/bert4rec.cc.o.d"
  "/root/repo/src/baselines/caser.cc" "src/baselines/CMakeFiles/lcrec_baselines.dir/caser.cc.o" "gcc" "src/baselines/CMakeFiles/lcrec_baselines.dir/caser.cc.o.d"
  "/root/repo/src/baselines/common.cc" "src/baselines/CMakeFiles/lcrec_baselines.dir/common.cc.o" "gcc" "src/baselines/CMakeFiles/lcrec_baselines.dir/common.cc.o.d"
  "/root/repo/src/baselines/dssm.cc" "src/baselines/CMakeFiles/lcrec_baselines.dir/dssm.cc.o" "gcc" "src/baselines/CMakeFiles/lcrec_baselines.dir/dssm.cc.o.d"
  "/root/repo/src/baselines/encoder_util.cc" "src/baselines/CMakeFiles/lcrec_baselines.dir/encoder_util.cc.o" "gcc" "src/baselines/CMakeFiles/lcrec_baselines.dir/encoder_util.cc.o.d"
  "/root/repo/src/baselines/fdsa.cc" "src/baselines/CMakeFiles/lcrec_baselines.dir/fdsa.cc.o" "gcc" "src/baselines/CMakeFiles/lcrec_baselines.dir/fdsa.cc.o.d"
  "/root/repo/src/baselines/fmlp.cc" "src/baselines/CMakeFiles/lcrec_baselines.dir/fmlp.cc.o" "gcc" "src/baselines/CMakeFiles/lcrec_baselines.dir/fmlp.cc.o.d"
  "/root/repo/src/baselines/gru4rec.cc" "src/baselines/CMakeFiles/lcrec_baselines.dir/gru4rec.cc.o" "gcc" "src/baselines/CMakeFiles/lcrec_baselines.dir/gru4rec.cc.o.d"
  "/root/repo/src/baselines/hgn.cc" "src/baselines/CMakeFiles/lcrec_baselines.dir/hgn.cc.o" "gcc" "src/baselines/CMakeFiles/lcrec_baselines.dir/hgn.cc.o.d"
  "/root/repo/src/baselines/s3rec.cc" "src/baselines/CMakeFiles/lcrec_baselines.dir/s3rec.cc.o" "gcc" "src/baselines/CMakeFiles/lcrec_baselines.dir/s3rec.cc.o.d"
  "/root/repo/src/baselines/sasrec.cc" "src/baselines/CMakeFiles/lcrec_baselines.dir/sasrec.cc.o" "gcc" "src/baselines/CMakeFiles/lcrec_baselines.dir/sasrec.cc.o.d"
  "/root/repo/src/baselines/tiger.cc" "src/baselines/CMakeFiles/lcrec_baselines.dir/tiger.cc.o" "gcc" "src/baselines/CMakeFiles/lcrec_baselines.dir/tiger.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lcrec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/lcrec_data.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/lcrec_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/lcrec_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/rec/CMakeFiles/lcrec_rec.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/lcrec_text.dir/DependInfo.cmake"
  "/root/repo/build/src/tasks/CMakeFiles/lcrec_tasks.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/lcrec_baselines.dir/bert4rec.cc.o"
  "CMakeFiles/lcrec_baselines.dir/bert4rec.cc.o.d"
  "CMakeFiles/lcrec_baselines.dir/caser.cc.o"
  "CMakeFiles/lcrec_baselines.dir/caser.cc.o.d"
  "CMakeFiles/lcrec_baselines.dir/common.cc.o"
  "CMakeFiles/lcrec_baselines.dir/common.cc.o.d"
  "CMakeFiles/lcrec_baselines.dir/dssm.cc.o"
  "CMakeFiles/lcrec_baselines.dir/dssm.cc.o.d"
  "CMakeFiles/lcrec_baselines.dir/encoder_util.cc.o"
  "CMakeFiles/lcrec_baselines.dir/encoder_util.cc.o.d"
  "CMakeFiles/lcrec_baselines.dir/fdsa.cc.o"
  "CMakeFiles/lcrec_baselines.dir/fdsa.cc.o.d"
  "CMakeFiles/lcrec_baselines.dir/fmlp.cc.o"
  "CMakeFiles/lcrec_baselines.dir/fmlp.cc.o.d"
  "CMakeFiles/lcrec_baselines.dir/gru4rec.cc.o"
  "CMakeFiles/lcrec_baselines.dir/gru4rec.cc.o.d"
  "CMakeFiles/lcrec_baselines.dir/hgn.cc.o"
  "CMakeFiles/lcrec_baselines.dir/hgn.cc.o.d"
  "CMakeFiles/lcrec_baselines.dir/s3rec.cc.o"
  "CMakeFiles/lcrec_baselines.dir/s3rec.cc.o.d"
  "CMakeFiles/lcrec_baselines.dir/sasrec.cc.o"
  "CMakeFiles/lcrec_baselines.dir/sasrec.cc.o.d"
  "CMakeFiles/lcrec_baselines.dir/tiger.cc.o"
  "CMakeFiles/lcrec_baselines.dir/tiger.cc.o.d"
  "liblcrec_baselines.a"
  "liblcrec_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcrec_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblcrec_baselines.a"
)

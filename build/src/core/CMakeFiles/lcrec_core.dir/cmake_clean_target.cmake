file(REMOVE_RECURSE
  "liblcrec_core.a"
)

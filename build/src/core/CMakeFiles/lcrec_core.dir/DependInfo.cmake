
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/graph.cc" "src/core/CMakeFiles/lcrec_core.dir/graph.cc.o" "gcc" "src/core/CMakeFiles/lcrec_core.dir/graph.cc.o.d"
  "/root/repo/src/core/linalg.cc" "src/core/CMakeFiles/lcrec_core.dir/linalg.cc.o" "gcc" "src/core/CMakeFiles/lcrec_core.dir/linalg.cc.o.d"
  "/root/repo/src/core/optim.cc" "src/core/CMakeFiles/lcrec_core.dir/optim.cc.o" "gcc" "src/core/CMakeFiles/lcrec_core.dir/optim.cc.o.d"
  "/root/repo/src/core/rng.cc" "src/core/CMakeFiles/lcrec_core.dir/rng.cc.o" "gcc" "src/core/CMakeFiles/lcrec_core.dir/rng.cc.o.d"
  "/root/repo/src/core/serialize.cc" "src/core/CMakeFiles/lcrec_core.dir/serialize.cc.o" "gcc" "src/core/CMakeFiles/lcrec_core.dir/serialize.cc.o.d"
  "/root/repo/src/core/tensor.cc" "src/core/CMakeFiles/lcrec_core.dir/tensor.cc.o" "gcc" "src/core/CMakeFiles/lcrec_core.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/lcrec_core.dir/graph.cc.o"
  "CMakeFiles/lcrec_core.dir/graph.cc.o.d"
  "CMakeFiles/lcrec_core.dir/linalg.cc.o"
  "CMakeFiles/lcrec_core.dir/linalg.cc.o.d"
  "CMakeFiles/lcrec_core.dir/optim.cc.o"
  "CMakeFiles/lcrec_core.dir/optim.cc.o.d"
  "CMakeFiles/lcrec_core.dir/rng.cc.o"
  "CMakeFiles/lcrec_core.dir/rng.cc.o.d"
  "CMakeFiles/lcrec_core.dir/serialize.cc.o"
  "CMakeFiles/lcrec_core.dir/serialize.cc.o.d"
  "CMakeFiles/lcrec_core.dir/tensor.cc.o"
  "CMakeFiles/lcrec_core.dir/tensor.cc.o.d"
  "liblcrec_core.a"
  "liblcrec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcrec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

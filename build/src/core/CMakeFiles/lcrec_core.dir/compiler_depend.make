# Empty compiler generated dependencies file for lcrec_core.
# This may be replaced when dependencies are built.

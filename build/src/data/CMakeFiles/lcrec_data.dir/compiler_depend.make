# Empty compiler generated dependencies file for lcrec_data.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lcrec_data.dir/catalog.cc.o"
  "CMakeFiles/lcrec_data.dir/catalog.cc.o.d"
  "CMakeFiles/lcrec_data.dir/dataset.cc.o"
  "CMakeFiles/lcrec_data.dir/dataset.cc.o.d"
  "liblcrec_data.a"
  "liblcrec_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcrec_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblcrec_data.a"
)

# Empty dependencies file for lcrec_rec.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liblcrec_rec.a"
)

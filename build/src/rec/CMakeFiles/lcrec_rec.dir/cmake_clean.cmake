file(REMOVE_RECURSE
  "CMakeFiles/lcrec_rec.dir/lcrec.cc.o"
  "CMakeFiles/lcrec_rec.dir/lcrec.cc.o.d"
  "CMakeFiles/lcrec_rec.dir/metrics.cc.o"
  "CMakeFiles/lcrec_rec.dir/metrics.cc.o.d"
  "CMakeFiles/lcrec_rec.dir/negatives.cc.o"
  "CMakeFiles/lcrec_rec.dir/negatives.cc.o.d"
  "CMakeFiles/lcrec_rec.dir/recommender.cc.o"
  "CMakeFiles/lcrec_rec.dir/recommender.cc.o.d"
  "CMakeFiles/lcrec_rec.dir/zeroshot.cc.o"
  "CMakeFiles/lcrec_rec.dir/zeroshot.cc.o.d"
  "liblcrec_rec.a"
  "liblcrec_rec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcrec_rec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

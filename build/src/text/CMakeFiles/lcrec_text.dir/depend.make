# Empty dependencies file for lcrec_text.
# This may be replaced when dependencies are built.

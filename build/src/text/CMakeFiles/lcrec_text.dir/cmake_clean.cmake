file(REMOVE_RECURSE
  "CMakeFiles/lcrec_text.dir/encoder.cc.o"
  "CMakeFiles/lcrec_text.dir/encoder.cc.o.d"
  "CMakeFiles/lcrec_text.dir/vocab.cc.o"
  "CMakeFiles/lcrec_text.dir/vocab.cc.o.d"
  "liblcrec_text.a"
  "liblcrec_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcrec_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblcrec_text.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/lcrec_llm.dir/generate.cc.o"
  "CMakeFiles/lcrec_llm.dir/generate.cc.o.d"
  "CMakeFiles/lcrec_llm.dir/minillm.cc.o"
  "CMakeFiles/lcrec_llm.dir/minillm.cc.o.d"
  "CMakeFiles/lcrec_llm.dir/trainer.cc.o"
  "CMakeFiles/lcrec_llm.dir/trainer.cc.o.d"
  "liblcrec_llm.a"
  "liblcrec_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcrec_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblcrec_llm.a"
)

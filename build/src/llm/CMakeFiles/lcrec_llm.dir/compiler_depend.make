# Empty compiler generated dependencies file for lcrec_llm.
# This may be replaced when dependencies are built.

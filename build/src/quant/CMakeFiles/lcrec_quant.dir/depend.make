# Empty dependencies file for lcrec_quant.
# This may be replaced when dependencies are built.

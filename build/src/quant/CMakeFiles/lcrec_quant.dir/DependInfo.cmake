
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/indexing.cc" "src/quant/CMakeFiles/lcrec_quant.dir/indexing.cc.o" "gcc" "src/quant/CMakeFiles/lcrec_quant.dir/indexing.cc.o.d"
  "/root/repo/src/quant/rqvae.cc" "src/quant/CMakeFiles/lcrec_quant.dir/rqvae.cc.o" "gcc" "src/quant/CMakeFiles/lcrec_quant.dir/rqvae.cc.o.d"
  "/root/repo/src/quant/sinkhorn.cc" "src/quant/CMakeFiles/lcrec_quant.dir/sinkhorn.cc.o" "gcc" "src/quant/CMakeFiles/lcrec_quant.dir/sinkhorn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lcrec_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/lcrec_quant.dir/indexing.cc.o"
  "CMakeFiles/lcrec_quant.dir/indexing.cc.o.d"
  "CMakeFiles/lcrec_quant.dir/rqvae.cc.o"
  "CMakeFiles/lcrec_quant.dir/rqvae.cc.o.d"
  "CMakeFiles/lcrec_quant.dir/sinkhorn.cc.o"
  "CMakeFiles/lcrec_quant.dir/sinkhorn.cc.o.d"
  "liblcrec_quant.a"
  "liblcrec_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcrec_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblcrec_quant.a"
)

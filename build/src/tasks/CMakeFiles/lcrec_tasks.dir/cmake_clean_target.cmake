file(REMOVE_RECURSE
  "liblcrec_tasks.a"
)

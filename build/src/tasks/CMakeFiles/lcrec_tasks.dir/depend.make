# Empty dependencies file for lcrec_tasks.
# This may be replaced when dependencies are built.

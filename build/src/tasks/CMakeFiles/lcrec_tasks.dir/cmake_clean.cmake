file(REMOVE_RECURSE
  "CMakeFiles/lcrec_tasks.dir/instructions.cc.o"
  "CMakeFiles/lcrec_tasks.dir/instructions.cc.o.d"
  "liblcrec_tasks.a"
  "liblcrec_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcrec_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

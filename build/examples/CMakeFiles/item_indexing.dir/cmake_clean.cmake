file(REMOVE_RECURSE
  "CMakeFiles/item_indexing.dir/item_indexing.cpp.o"
  "CMakeFiles/item_indexing.dir/item_indexing.cpp.o.d"
  "item_indexing"
  "item_indexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/item_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

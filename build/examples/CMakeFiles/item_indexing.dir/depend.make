# Empty dependencies file for item_indexing.
# This may be replaced when dependencies are built.

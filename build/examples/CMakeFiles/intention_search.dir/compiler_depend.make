# Empty compiler generated dependencies file for intention_search.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/intention_search.dir/intention_search.cpp.o"
  "CMakeFiles/intention_search.dir/intention_search.cpp.o.d"
  "intention_search"
  "intention_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intention_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

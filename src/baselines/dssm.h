#ifndef LCREC_BASELINES_DSSM_H_
#define LCREC_BASELINES_DSSM_H_

#include <memory>
#include <string>
#include <vector>

#include "core/graph.h"
#include "core/rng.h"
#include "data/dataset.h"
#include "text/encoder.h"

namespace lcrec::baselines {

/// DSSM [Huang et al. 2013]: the two-tower retrieval baseline of
/// Figure 3. A query tower and an item tower map text embeddings (the
/// repo's deterministic encoder stands in for BERT) to a shared space;
/// relevance is scaled cosine similarity, trained with in-batch softmax
/// over (intention, target item) pairs from the training split.
class Dssm {
 public:
  struct Options {
    int text_dim = 48;
    int hidden = 64;
    int out_dim = 32;
    int epochs = 30;
    int batch = 32;
    float learning_rate = 2e-3f;
    float temperature = 10.0f;  // cosine scale
    uint64_t seed = 111;
    bool verbose = false;
  };

  explicit Dssm(const Options& options) : options_(options) {}

  void Fit(const data::Dataset& dataset);

  /// Scores every catalog item for a free-text query (higher = better).
  std::vector<float> ScoreQuery(const std::string& query) const;

  std::vector<int> TopKIds(const std::string& query, int k) const;

 private:
  core::Tensor Tower(const core::Tensor& input, bool query_tower) const;

  Options options_;
  const data::Dataset* dataset_ = nullptr;
  std::unique_ptr<text::TextEncoder> encoder_;
  core::ParamStore store_;
  core::Parameter* qw1_ = nullptr;
  core::Parameter* qb1_ = nullptr;
  core::Parameter* qw2_ = nullptr;
  core::Parameter* iw1_ = nullptr;
  core::Parameter* ib1_ = nullptr;
  core::Parameter* iw2_ = nullptr;
  core::Tensor item_vectors_;  // [n, out_dim], unit rows, cached after Fit
};

}  // namespace lcrec::baselines

#endif  // LCREC_BASELINES_DSSM_H_

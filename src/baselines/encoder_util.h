#ifndef LCREC_BASELINES_ENCODER_UTIL_H_
#define LCREC_BASELINES_ENCODER_UTIL_H_

#include <string>
#include <vector>

#include "core/graph.h"
#include "core/rng.h"

namespace lcrec::baselines {

/// Parameters of one post-LN Transformer encoder block (the SASRec /
/// BERT4Rec / FDSA / S3-Rec building block).
struct EncoderBlock {
  core::Parameter* wq;
  core::Parameter* wk;
  core::Parameter* wv;
  core::Parameter* wo;
  core::Parameter* ln1_g;
  core::Parameter* ln1_b;
  core::Parameter* w1;
  core::Parameter* b1;
  core::Parameter* w2;
  core::Parameter* b2;
  core::Parameter* ln2_g;
  core::Parameter* ln2_b;
};

/// Creates the parameters of `n_layers` encoder blocks under `prefix`.
std::vector<EncoderBlock> MakeEncoderBlocks(core::ParamStore& store,
                                            const std::string& prefix,
                                            int n_layers, int d_model,
                                            int d_ff, core::Rng& rng);

/// Applies the blocks to x ([T, d]); `causal` selects the attention mask.
core::VarId ApplyEncoder(core::Graph& g, core::VarId x,
                         const std::vector<EncoderBlock>& blocks, int n_heads,
                         bool causal);

}  // namespace lcrec::baselines

#endif  // LCREC_BASELINES_ENCODER_UTIL_H_

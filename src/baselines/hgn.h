#ifndef LCREC_BASELINES_HGN_H_
#define LCREC_BASELINES_HGN_H_

#include <string>
#include <vector>

#include "baselines/common.h"

namespace lcrec::baselines {

/// HGN [Ma et al. 2019]: hierarchical gating — a feature gate modulating
/// embedding dimensions and an instance gate weighting items in the
/// window — plus an item-item product term. The user context vector is
/// the mean of the history embeddings (stand-in for the user embedding,
/// which the leave-one-out full-ranking protocol cannot personalize for
/// unseen histories).
class Hgn : public NeuralRecommender {
 public:
  explicit Hgn(const BaselineConfig& config) : NeuralRecommender(config) {}

  std::string name() const override { return "HGN"; }
  std::vector<float> ScoreAllItems(
      const std::vector<int>& history) const override;

 protected:
  void BuildModel(const data::Dataset& dataset) override;
  core::VarId BuildUserLoss(core::Graph& g,
                            const std::vector<int>& items) override;
  core::Parameter* ItemEmbeddingParam() const override { return emb_; }

 private:
  /// Combined user state [1, d]: gated pooled window + mean context +
  /// sum of raw window embeddings (item-item term).
  core::VarId UserState(core::Graph& g, const std::vector<int>& ctx) const;

  core::Parameter* emb_ = nullptr;
  core::Parameter* w_feat_x_ = nullptr;  // feature gate (item side)
  core::Parameter* w_feat_u_ = nullptr;  // feature gate (user side)
  core::Parameter* w_inst_ = nullptr;    // instance gate vector [d]
  core::Parameter* w_inst_u_ = nullptr;  // instance gate (user side) [d]
};

}  // namespace lcrec::baselines

#endif  // LCREC_BASELINES_HGN_H_

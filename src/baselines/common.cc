#include "baselines/common.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "core/check.h"
#include "core/serialize.h"
#include "obs/log.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace lcrec::baselines {

FitTelemetry::FitTelemetry(const std::string& model)
    : epochs_(obs::MetricsRegistry::Global().GetCounter(
          "lcrec.baselines." + model + ".epochs")),
      steps_(obs::MetricsRegistry::Global().GetCounter(
          "lcrec.baselines." + model + ".steps")),
      step_time_ms_(obs::MetricsRegistry::Global().GetHistogram(
          "lcrec.baselines." + model + ".step_time_ms",
          obs::Histogram::ExponentialBounds(0.01, 2.0, 20))),
      loss_(obs::MetricsRegistry::Global().GetGauge(
          "lcrec.baselines." + model + ".loss")) {}

void FitTelemetry::RecordStep(double ms) {
  steps_.Increment();
  step_time_ms_.Observe(ms);
}

void FitTelemetry::RecordEpoch(double mean_loss) {
  epochs_.Increment();
  loss_.Set(mean_loss);
}

std::string NeuralRecommender::FitCkptDir() const {
  if (config_.ckpt_dir.empty()) return "";
  return config_.ckpt_dir + "/" + name();
}

void NeuralRecommender::EncodeFitState(ckpt::Checkpoint* c) const {
  c->step = fit_epochs_done_;
  {
    std::ostringstream os(std::ios::binary);
    core::SaveParamsToStream(store_, os);
    c->Add("params", std::move(os).str());
  }
  {
    std::ostringstream os(std::ios::binary);
    optimizer_->SaveState(os);
    c->Add("optim", std::move(os).str());
  }
  {
    std::ostringstream os;
    rng_.Save(os);
    c->Add("rng", std::move(os).str());
  }
  {
    std::ostringstream ts(std::ios::binary);
    ckpt::PutPod(ts, static_cast<int64_t>(fit_epochs_done_));
    ckpt::PutPod(ts, lr_scale_);
    ckpt::PutPod(ts, static_cast<uint64_t>(fit_epoch_losses_.size()));
    if (!fit_epoch_losses_.empty()) {
      ts.write(reinterpret_cast<const char*>(fit_epoch_losses_.data()),
               static_cast<std::streamsize>(fit_epoch_losses_.size() *
                                            sizeof(float)));
    }
    c->Add("trainer", std::move(ts).str());
  }
}

bool NeuralRecommender::DecodeFitState(const ckpt::Checkpoint& c) {
  const std::string* params = c.Find("params");
  const std::string* optim = c.Find("optim");
  const std::string* rng = c.Find("rng");
  const std::string* trainer = c.Find("trainer");
  if (!params || !optim || !rng || !trainer) {
    obs::Log(obs::LogLevel::kWarn,
             "[%s] checkpoint is missing a required section", name().c_str());
    return false;
  }
  std::istringstream ts(*trainer, std::ios::binary);
  int64_t epochs_done = 0;
  float lr_scale = 1.0f;
  uint64_t n_losses = 0;
  if (!ckpt::GetPod(ts, &epochs_done) || !ckpt::GetPod(ts, &lr_scale) ||
      !ckpt::GetPod(ts, &n_losses) || n_losses > (1u << 26)) {
    obs::Log(obs::LogLevel::kWarn, "[%s] malformed trainer section",
             name().c_str());
    return false;
  }
  std::vector<float> losses(n_losses);
  if (n_losses > 0) {
    ts.read(reinterpret_cast<char*>(losses.data()),
            static_cast<std::streamsize>(n_losses * sizeof(float)));
    if (!ts) {
      obs::Log(obs::LogLevel::kWarn, "[%s] malformed trainer section",
               name().c_str());
      return false;
    }
  }
  {
    std::istringstream is(*params, std::ios::binary);
    if (!core::LoadParamsFromStream(store_, is)) return false;
  }
  {
    std::istringstream is(*optim, std::ios::binary);
    if (!optimizer_->LoadState(is)) {
      obs::Log(obs::LogLevel::kWarn, "[%s] optimizer state rejected",
               name().c_str());
      return false;
    }
  }
  {
    std::istringstream is(*rng);
    if (!rng_.Restore(is)) {
      obs::Log(obs::LogLevel::kWarn, "[%s] rng state rejected",
               name().c_str());
      return false;
    }
  }
  fit_epochs_done_ = static_cast<int>(epochs_done);
  lr_scale_ = lr_scale;
  fit_epoch_losses_ = std::move(losses);
  return true;
}

bool NeuralRecommender::SaveFitCheckpoint() {
  ckpt::Checkpoint c;
  EncodeFitState(&c);
  std::string error;
  if (!ckpt::SaveToDir(FitCkptDir(), c, config_.ckpt_keep, &error)) {
    obs::Log(obs::LogLevel::kWarn, "[%s] checkpoint save failed: %s",
             name().c_str(), error.c_str());
    return false;
  }
  has_checkpoint_ = true;
  return true;
}

bool NeuralRecommender::TryResumeFit() {
  ckpt::Checkpoint c;
  std::string path;
  if (!ckpt::LoadLatestValid(FitCkptDir(), &c, &path)) return false;
  if (!DecodeFitState(c)) {
    obs::Log(obs::LogLevel::kWarn,
             "[%s] checkpoint %s does not match this model; starting fresh",
             name().c_str(), path.c_str());
    return false;
  }
  has_checkpoint_ = true;
  obs::Log(obs::LogLevel::kInfo, "[%s] resumed from %s (epoch %d)",
           name().c_str(), path.c_str(), fit_epochs_done_);
  return true;
}

void NeuralRecommender::RollbackFit() {
  ckpt::Checkpoint c;
  std::string path;
  const bool restored =
      ckpt::LoadLatestValid(FitCkptDir(), &c, &path) && DecodeFitState(c);
  LCREC_CHECK(restored);
  lr_scale_ *= config_.health_lr_backoff;
  rolled_back_ = true;
  obs::Log(obs::LogLevel::kWarn,
           "[%s] rolled back to %s (epoch %d); lr scale now %g",
           name().c_str(), path.c_str(), fit_epochs_done_,
           static_cast<double>(lr_scale_));
}

void NeuralRecommender::Fit(const data::Dataset& dataset) {
  obs::ScopedSpan fit_span("baselines.fit");
  FitTelemetry telemetry(name());
  dataset_ = &dataset;
  store_.Clear();
  BuildModel(dataset);
  optimizer_ = std::make_unique<core::AdamW>(store_.All(), 0.9f, 0.999f,
                                             1e-8f, config_.weight_decay);
  fit_epochs_done_ = 0;
  fit_epoch_losses_.clear();
  lr_scale_ = 1.0f;
  has_checkpoint_ = false;
  rolled_back_ = false;
  bool resumed = false;
  if (config_.resume && !config_.ckpt_dir.empty()) resumed = TryResumeFit();
  // A resumed checkpoint already contains the pretrained weights.
  if (!resumed) Pretrain(dataset);

  std::vector<int64_t> order(static_cast<size_t>(dataset.num_users()));
  while (fit_epochs_done_ < config_.epochs) {
    rolled_back_ = false;
    // Re-derive the permutation from iota every epoch so it is a function
    // of the rng state alone — a resumed run (which restores the rng but
    // not the previous epoch's order) then shuffles identically.
    std::iota(order.begin(), order.end(), 0);
    rng_.Shuffle(order);
    double total = 0.0;
    int64_t count = 0;
    int in_batch = 0;
    store_.ZeroGrad();
    for (int64_t u : order) {
      std::vector<int> items = dataset.TrainItems(static_cast<int>(u));
      if (static_cast<int>(items.size()) < 2) continue;
      if (static_cast<int>(items.size()) > dataset.max_seq_len()) {
        items.erase(items.begin(),
                    items.end() - dataset.max_seq_len());
      }
      obs::ScopedSpan step_span("baselines.user_step");
      core::Graph g;
      core::VarId loss = BuildUserLoss(g, items);
      g.Backward(loss);
      total += g.val(loss).item();
      telemetry.RecordStep(step_span.ElapsedMs());
      ++count;
      ++in_batch;
      if (in_batch == config_.batch_users || u == order.back()) {
        float inv = 1.0f / static_cast<float>(in_batch);
        for (core::Parameter* p : store_.All()) {
          for (int64_t i = 0; i < p->grad.size(); ++i) p->grad.at(i) *= inv;
        }
        optimizer_->Step(config_.learning_rate * lr_scale_);
        store_.ZeroGrad();
        in_batch = 0;
      }
    }
    double mean = total / std::max<int64_t>(1, count);
    if (!health_.Healthy(mean, 0.0)) {
      // Aborts when there is no checkpoint to fall back to or retries are
      // exhausted; otherwise reload the last good epoch and re-run it.
      health_.OnUnhealthy(mean, 0.0, has_checkpoint_);
      RollbackFit();
      continue;
    }
    ++fit_epochs_done_;
    fit_epoch_losses_.push_back(static_cast<float>(mean));
    telemetry.RecordEpoch(mean);
    if (!config_.ckpt_dir.empty() &&
        (config_.ckpt_every <= 0 ||
         fit_epochs_done_ % config_.ckpt_every == 0)) {
      SaveFitCheckpoint();
    }
    if (config_.verbose || obs::LogEnabled(obs::LogLevel::kInfo)) {
      obs::LogRaw(obs::LogLevel::kInfo, "[%s] epoch %d/%d loss %.4f",
                  name().c_str(), fit_epochs_done_, config_.epochs, mean);
    }
  }
}

const core::Tensor* NeuralRecommender::ItemEmbeddings() const {
  core::Parameter* p = ItemEmbeddingParam();
  return p == nullptr ? nullptr : &p->value;
}

std::vector<int> NeuralRecommender::Clamp(
    const std::vector<int>& history) const {
  int max_len = dataset_->max_seq_len();
  if (static_cast<int>(history.size()) <= max_len) return history;
  return std::vector<int>(history.end() - max_len, history.end());
}

std::vector<float> DotScores(const core::Tensor& repr,
                             const core::Tensor& item_embeddings) {
  int64_t n = item_embeddings.rows(), d = item_embeddings.cols();
  std::vector<float> scores(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    float s = 0.0f;
    for (int64_t j = 0; j < d; ++j) {
      s += repr.at(j) * item_embeddings.at(i * d + j);
    }
    scores[static_cast<size_t>(i)] = s;
  }
  return scores;
}

}  // namespace lcrec::baselines

#include "baselines/common.h"

#include <algorithm>
#include <numeric>

#include "obs/log.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace lcrec::baselines {

FitTelemetry::FitTelemetry(const std::string& model)
    : epochs_(obs::MetricsRegistry::Global().GetCounter(
          "lcrec.baselines." + model + ".epochs")),
      steps_(obs::MetricsRegistry::Global().GetCounter(
          "lcrec.baselines." + model + ".steps")),
      step_time_ms_(obs::MetricsRegistry::Global().GetHistogram(
          "lcrec.baselines." + model + ".step_time_ms",
          obs::Histogram::ExponentialBounds(0.01, 2.0, 20))),
      loss_(obs::MetricsRegistry::Global().GetGauge(
          "lcrec.baselines." + model + ".loss")) {}

void FitTelemetry::RecordStep(double ms) {
  steps_.Increment();
  step_time_ms_.Observe(ms);
}

void FitTelemetry::RecordEpoch(double mean_loss) {
  epochs_.Increment();
  loss_.Set(mean_loss);
}

void NeuralRecommender::Fit(const data::Dataset& dataset) {
  obs::ScopedSpan fit_span("baselines.fit");
  FitTelemetry telemetry(name());
  dataset_ = &dataset;
  store_.Clear();
  BuildModel(dataset);
  optimizer_ = std::make_unique<core::AdamW>(store_.All(), 0.9f, 0.999f,
                                             1e-8f, config_.weight_decay);
  Pretrain(dataset);

  std::vector<int64_t> order(static_cast<size_t>(dataset.num_users()));
  std::iota(order.begin(), order.end(), 0);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(order);
    double total = 0.0;
    int64_t count = 0;
    int in_batch = 0;
    store_.ZeroGrad();
    for (int64_t u : order) {
      std::vector<int> items = dataset.TrainItems(static_cast<int>(u));
      if (static_cast<int>(items.size()) < 2) continue;
      if (static_cast<int>(items.size()) > dataset.max_seq_len()) {
        items.erase(items.begin(),
                    items.end() - dataset.max_seq_len());
      }
      obs::ScopedSpan step_span("baselines.user_step");
      core::Graph g;
      core::VarId loss = BuildUserLoss(g, items);
      g.Backward(loss);
      total += g.val(loss).item();
      telemetry.RecordStep(step_span.ElapsedMs());
      ++count;
      ++in_batch;
      if (in_batch == config_.batch_users || u == order.back()) {
        float inv = 1.0f / static_cast<float>(in_batch);
        for (core::Parameter* p : store_.All()) {
          for (int64_t i = 0; i < p->grad.size(); ++i) p->grad.at(i) *= inv;
        }
        optimizer_->Step(config_.learning_rate);
        store_.ZeroGrad();
        in_batch = 0;
      }
    }
    telemetry.RecordEpoch(total / std::max<int64_t>(1, count));
    if (config_.verbose || obs::LogEnabled(obs::LogLevel::kInfo)) {
      obs::LogRaw(obs::LogLevel::kInfo, "[%s] epoch %d/%d loss %.4f",
                  name().c_str(), epoch + 1, config_.epochs,
                  total / std::max<int64_t>(1, count));
    }
  }
}

const core::Tensor* NeuralRecommender::ItemEmbeddings() const {
  core::Parameter* p = ItemEmbeddingParam();
  return p == nullptr ? nullptr : &p->value;
}

std::vector<int> NeuralRecommender::Clamp(
    const std::vector<int>& history) const {
  int max_len = dataset_->max_seq_len();
  if (static_cast<int>(history.size()) <= max_len) return history;
  return std::vector<int>(history.end() - max_len, history.end());
}

std::vector<float> DotScores(const core::Tensor& repr,
                             const core::Tensor& item_embeddings) {
  int64_t n = item_embeddings.rows(), d = item_embeddings.cols();
  std::vector<float> scores(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    float s = 0.0f;
    for (int64_t j = 0; j < d; ++j) {
      s += repr.at(j) * item_embeddings.at(i * d + j);
    }
    scores[static_cast<size_t>(i)] = s;
  }
  return scores;
}

}  // namespace lcrec::baselines

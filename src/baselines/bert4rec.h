#ifndef LCREC_BASELINES_BERT4REC_H_
#define LCREC_BASELINES_BERT4REC_H_

#include <string>
#include <vector>

#include "baselines/common.h"
#include "baselines/encoder_util.h"

namespace lcrec::baselines {

/// BERT4Rec [Sun et al. 2019]: bidirectional Transformer trained with the
/// cloze (masked item) objective. Inference appends a [MASK] to the
/// history and predicts at that position.
class Bert4Rec : public NeuralRecommender {
 public:
  explicit Bert4Rec(const BaselineConfig& config)
      : NeuralRecommender(config) {}

  std::string name() const override { return "BERT4Rec"; }
  std::vector<float> ScoreAllItems(
      const std::vector<int>& history) const override;

 protected:
  void BuildModel(const data::Dataset& dataset) override;
  core::VarId BuildUserLoss(core::Graph& g,
                            const std::vector<int>& items) override;
  core::Parameter* ItemEmbeddingParam() const override { return emb_; }

 private:
  /// Bidirectionally encoded sequence [T, d]; ids may include mask_id_.
  core::VarId Encode(core::Graph& g, const std::vector<int>& ids) const;

  float mask_prob_ = 0.3f;
  int mask_id_ = 0;  // = num_items (extra embedding row)
  core::Parameter* emb_ = nullptr;
  core::Parameter* pos_ = nullptr;
  std::vector<EncoderBlock> blocks_;
};

}  // namespace lcrec::baselines

#endif  // LCREC_BASELINES_BERT4REC_H_

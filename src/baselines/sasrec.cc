#include "baselines/sasrec.h"

#include "obs/trace.h"

namespace lcrec::baselines {

void SasRec::BuildModel(const data::Dataset& dataset) {
  int d = config().d_model;
  emb_ = store().Create("emb",
                        rng().GaussianTensor({dataset.num_items(), d}, 0.05));
  pos_ = store().Create("pos",
                        rng().GaussianTensor({dataset.max_seq_len(), d}, 0.05));
  blocks_ = MakeEncoderBlocks(store(), "sasrec", config().n_layers, d,
                              config().d_ff, rng());
}

core::VarId SasRec::EncodeSequence(core::Graph& g,
                                   const std::vector<int>& items) const {
  std::vector<int> positions(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    positions[i] = static_cast<int>(i);
  }
  core::VarId x = g.Add(g.Rows(g.Param(emb_), items),
                        g.Rows(g.Param(pos_), positions));
  return ApplyEncoder(g, x, blocks_, config().n_heads, /*causal=*/true);
}

core::VarId SasRec::BuildUserLoss(core::Graph& g,
                                  const std::vector<int>& items) {
  obs::ScopedSpan span("baselines.sasrec.loss");
  std::vector<int> inputs(items.begin(), items.end() - 1);
  std::vector<int> targets(items.begin() + 1, items.end());
  core::VarId states = EncodeSequence(g, inputs);
  core::VarId logits = g.MatMulNT(states, g.Param(emb_));
  return g.SoftmaxCrossEntropy(logits, targets);
}

std::vector<float> SasRec::ScoreAllItems(
    const std::vector<int>& history) const {
  obs::ScopedSpan span("baselines.sasrec.score");
  std::vector<int> items = Clamp(history);
  core::Graph g;
  core::VarId states = EncodeSequence(g, items);
  int64_t t = g.val(states).rows();
  core::VarId last = g.SliceRows(states, t - 1, t);
  return DotScores(g.val(last), emb_->value);
}

}  // namespace lcrec::baselines

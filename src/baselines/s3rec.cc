#include "baselines/s3rec.h"

#include <cmath>
#include <numeric>

#include "obs/log.h"

namespace lcrec::baselines {

void S3Rec::BuildModel(const data::Dataset& dataset) {
  int d = config().d_model;
  mask_id_ = dataset.num_items();
  emb_ = store().Create(
      "emb", rng().GaussianTensor({dataset.num_items() + 1, d}, 0.05));
  pos_ = store().Create("pos",
                        rng().GaussianTensor({dataset.max_seq_len(), d}, 0.05));
  attr_w_ = store().Create(
      "attr_w", rng().GaussianTensor({d, dataset.num_attributes()},
                                     1.0 / std::sqrt(d)));
  blocks_ = MakeEncoderBlocks(store(), "s3rec", config().n_layers, d,
                              config().d_ff, rng());
}

core::VarId S3Rec::EncodeSequence(core::Graph& g, const std::vector<int>& ids,
                                  bool causal) const {
  std::vector<int> positions(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) positions[i] = static_cast<int>(i);
  core::VarId x = g.Add(g.Rows(g.Param(emb_), ids),
                        g.Rows(g.Param(pos_), positions));
  return ApplyEncoder(g, x, blocks_, config().n_heads, causal);
}

void S3Rec::Pretrain(const data::Dataset& dataset) {
  core::AdamW opt(store().All(), 0.9f, 0.999f, 1e-8f, 0.0f);
  std::vector<int64_t> order(static_cast<size_t>(dataset.num_users()));
  std::iota(order.begin(), order.end(), 0);
  for (int epoch = 0; epoch < pretrain_epochs_; ++epoch) {
    rng().Shuffle(order);
    double total = 0.0;
    int64_t count = 0;
    int in_batch = 0;
    store().ZeroGrad();
    for (int64_t u : order) {
      std::vector<int> items = dataset.TrainItems(static_cast<int>(u));
      if (static_cast<int>(items.size()) < 3) continue;
      if (static_cast<int>(items.size()) > dataset.max_seq_len()) {
        items.erase(items.begin(), items.end() - dataset.max_seq_len());
      }
      core::Graph g;
      // MIP: bidirectional cloze over the sequence.
      std::vector<int> masked = items;
      std::vector<int> targets(items.size(), core::Graph::kIgnore);
      bool any = false;
      for (size_t i = 0; i < items.size(); ++i) {
        if (rng().Bernoulli(0.25)) {
          targets[i] = items[i];
          masked[i] = mask_id_;
          any = true;
        }
      }
      if (!any) {
        targets[0] = items[0];
        masked[0] = mask_id_;
      }
      core::VarId states = EncodeSequence(g, masked, /*causal=*/false);
      core::VarId item_rows = g.SliceRows(g.Param(emb_), 0, mask_id_);
      core::VarId mip =
          g.SoftmaxCrossEntropy(g.MatMulNT(states, item_rows), targets);
      // AAP: predict each item's attribute multi-hot from its embedding.
      core::VarId item_emb_rows = g.Rows(g.Param(emb_), items);
      core::VarId attr_logits = g.MatMul(item_emb_rows, g.Param(attr_w_));
      core::Tensor attr_targets(
          {static_cast<int64_t>(items.size()), dataset.num_attributes()});
      for (size_t i = 0; i < items.size(); ++i) {
        for (int a : dataset.item(items[i]).attributes) {
          attr_targets.at(static_cast<int64_t>(i) * dataset.num_attributes() +
                          a) = 1.0f;
        }
      }
      core::VarId aap = g.SigmoidBCE(attr_logits, attr_targets);
      core::VarId loss = g.Add(mip, g.Scale(aap, 0.5f));
      g.Backward(loss);
      total += g.val(loss).item();
      ++count;
      if (++in_batch == config().batch_users) {
        float inv = 1.0f / static_cast<float>(in_batch);
        for (core::Parameter* p : store().All()) {
          for (int64_t i = 0; i < p->grad.size(); ++i) p->grad.at(i) *= inv;
        }
        opt.Step(config().learning_rate);
        store().ZeroGrad();
        in_batch = 0;
      }
    }
    if (config().verbose || obs::LogEnabled(obs::LogLevel::kInfo)) {
      obs::LogRaw(obs::LogLevel::kInfo,
                  "[S3-Rec pretrain] epoch %d/%d loss %.4f", epoch + 1,
                  pretrain_epochs_, total / std::max<int64_t>(1, count));
    }
  }
}

core::VarId S3Rec::BuildUserLoss(core::Graph& g,
                                 const std::vector<int>& items) {
  std::vector<int> inputs(items.begin(), items.end() - 1);
  std::vector<int> targets(items.begin() + 1, items.end());
  core::VarId states = EncodeSequence(g, inputs, /*causal=*/true);
  core::VarId item_rows = g.SliceRows(g.Param(emb_), 0, mask_id_);
  core::VarId logits = g.MatMulNT(states, item_rows);
  return g.SoftmaxCrossEntropy(logits, targets);
}

std::vector<float> S3Rec::ScoreAllItems(
    const std::vector<int>& history) const {
  std::vector<int> items = Clamp(history);
  core::Graph g;
  core::VarId states = EncodeSequence(g, items, /*causal=*/true);
  int64_t t = g.val(states).rows();
  core::VarId last = g.SliceRows(states, t - 1, t);
  std::vector<float> scores = DotScores(g.val(last), emb_->value);
  scores.resize(static_cast<size_t>(mask_id_));
  return scores;
}

}  // namespace lcrec::baselines

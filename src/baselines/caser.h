#ifndef LCREC_BASELINES_CASER_H_
#define LCREC_BASELINES_CASER_H_

#include <string>
#include <vector>

#include "baselines/common.h"

namespace lcrec::baselines {

/// Caser [Tang & Wang 2018]: treats the last L item embeddings as an
/// L x d "image" and applies horizontal (per-window) and vertical
/// (per-dimension) convolutional filters, max-pooled and fed through a
/// fully-connected layer to produce the user state.
class Caser : public NeuralRecommender {
 public:
  explicit Caser(const BaselineConfig& config) : NeuralRecommender(config) {}

  std::string name() const override { return "Caser"; }
  std::vector<float> ScoreAllItems(
      const std::vector<int>& history) const override;

 protected:
  void BuildModel(const data::Dataset& dataset) override;
  core::VarId BuildUserLoss(core::Graph& g,
                            const std::vector<int>& items) override;
  core::Parameter* ItemEmbeddingParam() const override { return emb_; }

 private:
  static constexpr int kWindow = 5;       // L
  static constexpr int kFilters = 4;      // horizontal filters per height
  static constexpr int kVertical = 2;     // vertical filters

  /// User representation [1, d] from the last kWindow items (left-padded).
  core::VarId UserState(core::Graph& g, const std::vector<int>& ctx) const;

  int pad_id_ = 0;
  core::Parameter* emb_ = nullptr;
  std::vector<core::Parameter*> h_filters_;  // heights 2..4
  std::vector<core::Parameter*> h_biases_;
  core::Parameter* v_filter_ = nullptr;
  core::Parameter* fc_w_ = nullptr;
  core::Parameter* fc_b_ = nullptr;
};

}  // namespace lcrec::baselines

#endif  // LCREC_BASELINES_CASER_H_

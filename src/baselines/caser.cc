#include "baselines/caser.h"

#include "obs/trace.h"

#include <algorithm>
#include <cmath>

namespace lcrec::baselines {

void Caser::BuildModel(const data::Dataset& dataset) {
  int d = config().d_model;
  pad_id_ = dataset.num_items();
  emb_ = store().Create(
      "emb", rng().GaussianTensor({dataset.num_items() + 1, d}, 0.05));
  h_filters_.clear();
  h_biases_.clear();
  for (int h = 2; h <= 4; ++h) {
    h_filters_.push_back(store().Create(
        "hconv" + std::to_string(h),
        rng().GaussianTensor({static_cast<int64_t>(h) * d, kFilters},
                             1.0 / std::sqrt(h * d))));
    h_biases_.push_back(store().Create("hconv_b" + std::to_string(h),
                                       core::Tensor::Zeros({kFilters})));
  }
  v_filter_ = store().Create(
      "vconv", rng().GaussianTensor({kWindow, kVertical},
                                    1.0 / std::sqrt(kWindow)));
  int feat = 3 * kFilters + kVertical * d;
  fc_w_ = store().Create("fc_w",
                         rng().GaussianTensor({feat, d}, 1.0 / std::sqrt(feat)));
  fc_b_ = store().Create("fc_b", core::Tensor::Zeros({d}));
}

core::VarId Caser::UserState(core::Graph& g, const std::vector<int>& ctx) const {
  int d = config().d_model;
  // Left-pad to exactly kWindow ids.
  std::vector<int> ids(kWindow, pad_id_);
  int n = std::min<int>(kWindow, static_cast<int>(ctx.size()));
  for (int i = 0; i < n; ++i) {
    ids[kWindow - n + i] = ctx[ctx.size() - n + i];
  }
  core::VarId e = g.Rows(g.Param(emb_), ids);  // [L, d]
  std::vector<core::VarId> features;
  // Horizontal convolutions: window height h slides over rows; ReLU then
  // max-over-time per filter.
  for (size_t f = 0; f < h_filters_.size(); ++f) {
    int h = static_cast<int>(f) + 2;
    std::vector<core::VarId> windows;
    for (int r = 0; r + h <= kWindow; ++r) {
      core::VarId win = g.Reshape(g.SliceRows(e, r, r + h),
                                  {1, static_cast<int64_t>(h) * d});
      windows.push_back(win);
    }
    core::VarId stacked = g.ConcatRows(windows);  // [L-h+1, h*d]
    core::VarId conv = g.Relu(g.AddBias(
        g.MatMul(stacked, g.Param(h_filters_[f])), g.Param(h_biases_[f])));
    features.push_back(g.Reshape(g.MaxOverRows(conv), {1, kFilters}));
  }
  // Vertical convolution: weighted sums over rows, one per filter.
  core::VarId vt = g.MatMul(g.Transpose(g.Param(v_filter_)), e);  // [nv, d]
  features.push_back(g.Reshape(vt, {1, kVertical * static_cast<int64_t>(d)}));
  core::VarId cat = g.ConcatCols(features);
  return g.Relu(g.AddBias(g.MatMul(cat, g.Param(fc_w_)), g.Param(fc_b_)));
}

core::VarId Caser::BuildUserLoss(core::Graph& g,
                                 const std::vector<int>& items) {
  obs::ScopedSpan span("baselines.caser.loss");
  // Sliding windows: predict items[t] from items[..t).
  std::vector<core::VarId> states;
  std::vector<int> targets;
  int start = 1;
  // Cap the number of windows per user to bound epoch cost.
  int stride = std::max<int>(1, (static_cast<int>(items.size()) - 1) / 6);
  for (int t = start; t < static_cast<int>(items.size()); t += stride) {
    std::vector<int> ctx(items.begin(), items.begin() + t);
    states.push_back(UserState(g, ctx));
    targets.push_back(items[static_cast<size_t>(t)]);
  }
  core::VarId reprs = g.ConcatRows(states);
  core::VarId item_rows = g.SliceRows(g.Param(emb_), 0, pad_id_);
  core::VarId logits = g.MatMulNT(reprs, item_rows);
  return g.SoftmaxCrossEntropy(logits, targets);
}

std::vector<float> Caser::ScoreAllItems(
    const std::vector<int>& history) const {
  obs::ScopedSpan span("baselines.caser.score");
  core::Graph g;
  core::VarId state = UserState(g, history);
  std::vector<float> scores = DotScores(g.val(state), emb_->value);
  scores.resize(static_cast<size_t>(pad_id_));
  return scores;
}

}  // namespace lcrec::baselines

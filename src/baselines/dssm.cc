#include "baselines/dssm.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/log.h"

#include "core/linalg.h"
#include "core/optim.h"

namespace lcrec::baselines {

namespace {
core::Tensor MlpForward(const core::Tensor& x, const core::Tensor& w1,
                        const core::Tensor& b1, const core::Tensor& w2) {
  core::Tensor h = core::MatMul(x, w1);
  int64_t m = h.rows(), n = h.cols();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      h.at(i * n + j) = std::max(0.0f, h.at(i * n + j) + b1.at(j));
    }
  }
  core::Tensor out = core::MatMul(h, w2);
  // L2-normalize rows.
  int64_t d = out.cols();
  for (int64_t i = 0; i < out.rows(); ++i) {
    float ss = 0.0f;
    for (int64_t j = 0; j < d; ++j) ss += out.at(i * d + j) * out.at(i * d + j);
    float inv = 1.0f / (std::sqrt(ss) + 1e-8f);
    for (int64_t j = 0; j < d; ++j) out.at(i * d + j) *= inv;
  }
  return out;
}
}  // namespace

void Dssm::Fit(const data::Dataset& dataset) {
  dataset_ = &dataset;
  encoder_ = std::make_unique<text::TextEncoder>(options_.text_dim,
                                                 options_.seed);
  core::Rng rng(options_.seed + 1);
  auto init = [&](int fan_in, std::vector<int64_t> shape) {
    return rng.GaussianTensor(std::move(shape), 1.0 / std::sqrt(fan_in));
  };
  store_.Clear();
  qw1_ = store_.Create("qw1", init(options_.text_dim,
                                   {options_.text_dim, options_.hidden}));
  qb1_ = store_.Create("qb1", core::Tensor::Zeros({options_.hidden}));
  qw2_ = store_.Create("qw2", init(options_.hidden,
                                   {options_.hidden, options_.out_dim}));
  iw1_ = store_.Create("iw1", init(options_.text_dim,
                                   {options_.text_dim, options_.hidden}));
  ib1_ = store_.Create("ib1", core::Tensor::Zeros({options_.hidden}));
  iw2_ = store_.Create("iw2", init(options_.hidden,
                                   {options_.hidden, options_.out_dim}));
  core::AdamW opt(store_.All());

  // Item title embeddings (fixed inputs to the item tower).
  std::vector<std::string> titles;
  for (int i = 0; i < dataset.num_items(); ++i) {
    titles.push_back(dataset.item(i).title);
  }
  core::Tensor title_emb = encoder_->EncodeBatch(titles);

  // Training pairs: (intention for an item in the training split, item).
  std::vector<int> pool;
  for (int u = 0; u < dataset.num_users(); ++u) {
    for (int item : dataset.TrainItems(u)) pool.push_back(item);
  }
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(pool);
    double total = 0.0;
    int64_t batches = 0;
    for (size_t start = 0; start + options_.batch <= pool.size();
         start += options_.batch) {
      int b = options_.batch;
      core::Tensor q_in({b, options_.text_dim});
      core::Tensor i_in({b, options_.text_dim});
      for (int r = 0; r < b; ++r) {
        int item = pool[start + static_cast<size_t>(r)];
        core::Tensor qe = encoder_->Encode(dataset.IntentionFor(item, rng));
        for (int j = 0; j < options_.text_dim; ++j) {
          q_in.at(static_cast<int64_t>(r) * options_.text_dim + j) = qe.at(j);
          i_in.at(static_cast<int64_t>(r) * options_.text_dim + j) =
              title_emb.at(static_cast<int64_t>(item) * options_.text_dim + j);
        }
      }
      core::Graph g;
      core::VarId q = g.NormalizeRows(g.MatMul(
          g.Relu(g.AddBias(g.MatMul(g.Input(q_in), g.Param(qw1_)),
                           g.Param(qb1_))),
          g.Param(qw2_)));
      core::VarId v = g.NormalizeRows(g.MatMul(
          g.Relu(g.AddBias(g.MatMul(g.Input(i_in), g.Param(iw1_)),
                           g.Param(ib1_))),
          g.Param(iw2_)));
      core::VarId logits = g.Scale(g.MatMulNT(q, v), options_.temperature);
      std::vector<int> targets(static_cast<size_t>(b));
      std::iota(targets.begin(), targets.end(), 0);
      core::VarId loss = g.SoftmaxCrossEntropy(logits, targets);
      store_.ZeroGrad();
      g.Backward(loss);
      opt.Step(options_.learning_rate);
      total += g.val(loss).item();
      ++batches;
    }
    if (options_.verbose || obs::LogEnabled(obs::LogLevel::kInfo)) {
      obs::LogRaw(obs::LogLevel::kInfo, "[DSSM] epoch %d/%d loss %.4f",
                  epoch + 1, options_.epochs,
                  total / std::max<int64_t>(1, batches));
    }
  }
  item_vectors_ = MlpForward(title_emb, iw1_->value, ib1_->value, iw2_->value);
}

std::vector<float> Dssm::ScoreQuery(const std::string& query) const {
  core::Tensor qe = encoder_->Encode(query).Reshaped({1, options_.text_dim});
  core::Tensor q = MlpForward(qe, qw1_->value, qb1_->value, qw2_->value);
  int64_t n = item_vectors_.rows(), d = item_vectors_.cols();
  std::vector<float> scores(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    float s = 0.0f;
    for (int64_t j = 0; j < d; ++j) s += q.at(j) * item_vectors_.at(i * d + j);
    scores[static_cast<size_t>(i)] = s;
  }
  return scores;
}

std::vector<int> Dssm::TopKIds(const std::string& query, int k) const {
  std::vector<float> scores = ScoreQuery(query);
  std::vector<int> ids(scores.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::partial_sort(ids.begin(), ids.begin() + std::min<size_t>(k, ids.size()),
                    ids.end(), [&](int a, int b) {
                      return scores[static_cast<size_t>(a)] >
                             scores[static_cast<size_t>(b)];
                    });
  ids.resize(std::min<size_t>(static_cast<size_t>(k), ids.size()));
  return ids;
}

}  // namespace lcrec::baselines

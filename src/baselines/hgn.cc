#include "baselines/hgn.h"

#include "obs/trace.h"

#include <algorithm>
#include <cmath>

namespace lcrec::baselines {

void Hgn::BuildModel(const data::Dataset& dataset) {
  int d = config().d_model;
  auto init = [&](std::vector<int64_t> shape, double fan) {
    return rng().GaussianTensor(std::move(shape), 1.0 / std::sqrt(fan));
  };
  emb_ = store().Create("emb",
                        rng().GaussianTensor({dataset.num_items(), d}, 0.05));
  w_feat_x_ = store().Create("w_feat_x", init({d, d}, d));
  w_feat_u_ = store().Create("w_feat_u", init({d, d}, d));
  w_inst_ = store().Create("w_inst", init({d, 1}, d));
  w_inst_u_ = store().Create("w_inst_u", init({d, 1}, d));
}

core::VarId Hgn::UserState(core::Graph& g, const std::vector<int>& ctx) const {
  int d = config().d_model;
  constexpr int kWindow = 8;
  int n = std::min<int>(kWindow, static_cast<int>(ctx.size()));
  std::vector<int> ids(ctx.end() - n, ctx.end());
  core::VarId e = g.Rows(g.Param(emb_), ids);  // [n, d]
  core::VarId u = g.Reshape(g.MeanOverRows(e), {1, d});
  // Feature gating: Ef = E .* sigmoid(E Wx + u Wu).
  core::VarId gate_bias =
      g.Reshape(g.MatMul(u, g.Param(w_feat_u_)), {d});
  core::VarId gate = g.Sigmoid(
      g.AddBias(g.MatMul(e, g.Param(w_feat_x_)), gate_bias));
  core::VarId ef = g.Mul(e, gate);
  // Instance gating: a = sigmoid(Ef w + u wu), pooled = a^T Ef.
  core::VarId inst_bias =
      g.Reshape(g.MatMul(u, g.Param(w_inst_u_)), {1});
  core::VarId a = g.Sigmoid(
      g.AddBias(g.MatMul(ef, g.Param(w_inst_)), inst_bias));  // [n,1]
  core::VarId pooled = g.MatMul(g.Transpose(a), ef);  // [1, d]
  core::VarId pooled_mean = g.Scale(pooled, 1.0f / static_cast<float>(n));
  // Item-item term: the sum of raw window embeddings.
  core::VarId sum_raw =
      g.Scale(g.Reshape(g.SumOverRows(e), {1, d}),
              1.0f / static_cast<float>(n));
  return g.Add(g.Add(u, pooled_mean), sum_raw);
}

core::VarId Hgn::BuildUserLoss(core::Graph& g, const std::vector<int>& items) {
  obs::ScopedSpan span("baselines.hgn.loss");
  std::vector<core::VarId> states;
  std::vector<int> targets;
  int stride = std::max<int>(1, (static_cast<int>(items.size()) - 1) / 6);
  for (int t = 1; t < static_cast<int>(items.size()); t += stride) {
    std::vector<int> ctx(items.begin(), items.begin() + t);
    states.push_back(UserState(g, ctx));
    targets.push_back(items[static_cast<size_t>(t)]);
  }
  core::VarId logits = g.MatMulNT(g.ConcatRows(states), g.Param(emb_));
  return g.SoftmaxCrossEntropy(logits, targets);
}

std::vector<float> Hgn::ScoreAllItems(const std::vector<int>& history) const {
  obs::ScopedSpan span("baselines.hgn.score");
  core::Graph g;
  core::VarId state = UserState(g, history);
  return DotScores(g.val(state), emb_->value);
}

}  // namespace lcrec::baselines

#ifndef LCREC_BASELINES_FMLP_H_
#define LCREC_BASELINES_FMLP_H_

#include <string>
#include <vector>

#include "baselines/common.h"

namespace lcrec::baselines {

/// FMLP-Rec [Zhou et al. 2022]: an all-MLP model whose mixing layer is a
/// learnable filter in the frequency domain (DFT -> complex elementwise
/// filter -> inverse DFT), followed by a feed-forward block, both with
/// residual connections and LayerNorm. Since frequency filtering is
/// non-causal, training supervises only the final position.
class FmlpRec : public NeuralRecommender {
 public:
  explicit FmlpRec(const BaselineConfig& config) : NeuralRecommender(config) {}

  std::string name() const override { return "FMLP-Rec"; }
  std::vector<float> ScoreAllItems(
      const std::vector<int>& history) const override;

 protected:
  void BuildModel(const data::Dataset& dataset) override;
  core::VarId BuildUserLoss(core::Graph& g,
                            const std::vector<int>& items) override;
  core::Parameter* ItemEmbeddingParam() const override { return emb_; }

 private:
  struct Block {
    core::Parameter* w_re;
    core::Parameter* w_im;
    core::Parameter* ln1_g;
    core::Parameter* ln1_b;
    core::Parameter* w1;
    core::Parameter* b1;
    core::Parameter* w2;
    core::Parameter* b2;
    core::Parameter* ln2_g;
    core::Parameter* ln2_b;
  };

  /// Encodes a fixed-length (left-padded) window, returns the final
  /// position's representation [1, d].
  core::VarId EncodeLast(core::Graph& g, const std::vector<int>& ctx) const;

  int window_ = 0;  // fixed filter length (= max_seq_len)
  int pad_id_ = 0;
  core::Parameter* emb_ = nullptr;
  core::Parameter* pos_ = nullptr;
  std::vector<Block> blocks_;
};

}  // namespace lcrec::baselines

#endif  // LCREC_BASELINES_FMLP_H_

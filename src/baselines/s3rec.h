#ifndef LCREC_BASELINES_S3REC_H_
#define LCREC_BASELINES_S3REC_H_

#include <string>
#include <vector>

#include "baselines/common.h"
#include "baselines/encoder_util.h"

namespace lcrec::baselines {

/// S3-Rec [Zhou et al. 2020]: a SASRec-style backbone with a self-
/// supervised pretraining stage via mutual-information maximization. This
/// implementation keeps the two MIM objectives that apply to our data:
/// masked item prediction (MIP) and item-attribute prediction (AAP,
/// realized as a multi-label BCE from item embeddings to attributes),
/// followed by next-item fine-tuning.
class S3Rec : public NeuralRecommender {
 public:
  explicit S3Rec(const BaselineConfig& config, int pretrain_epochs = 10)
      : NeuralRecommender(config), pretrain_epochs_(pretrain_epochs) {}

  std::string name() const override { return "S3-Rec"; }
  std::vector<float> ScoreAllItems(
      const std::vector<int>& history) const override;

 protected:
  void BuildModel(const data::Dataset& dataset) override;
  void Pretrain(const data::Dataset& dataset) override;
  core::VarId BuildUserLoss(core::Graph& g,
                            const std::vector<int>& items) override;
  core::Parameter* ItemEmbeddingParam() const override { return emb_; }

 private:
  core::VarId EncodeSequence(core::Graph& g, const std::vector<int>& ids,
                             bool causal) const;

  int pretrain_epochs_;
  int mask_id_ = 0;
  core::Parameter* emb_ = nullptr;
  core::Parameter* pos_ = nullptr;
  core::Parameter* attr_w_ = nullptr;  // item repr -> attribute logits
  std::vector<EncoderBlock> blocks_;
};

}  // namespace lcrec::baselines

#endif  // LCREC_BASELINES_S3REC_H_

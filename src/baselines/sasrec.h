#ifndef LCREC_BASELINES_SASREC_H_
#define LCREC_BASELINES_SASREC_H_

#include <string>
#include <vector>

#include "baselines/common.h"
#include "baselines/encoder_util.h"

namespace lcrec::baselines {

/// SASRec [Kang & McAuley 2018]: unidirectional Transformer over the item
/// sequence, next-item prediction at every position, scoring by inner
/// product between the last position's representation and the (shared)
/// item embeddings.
class SasRec : public NeuralRecommender {
 public:
  explicit SasRec(const BaselineConfig& config) : NeuralRecommender(config) {}

  std::string name() const override { return "SASRec"; }
  std::vector<float> ScoreAllItems(
      const std::vector<int>& history) const override;

 protected:
  void BuildModel(const data::Dataset& dataset) override;
  core::VarId BuildUserLoss(core::Graph& g,
                            const std::vector<int>& items) override;
  core::Parameter* ItemEmbeddingParam() const override { return emb_; }

  /// Encoded sequence representations [T, d] (shared with S3-Rec).
  core::VarId EncodeSequence(core::Graph& g,
                             const std::vector<int>& items) const;

  core::Parameter* emb_ = nullptr;
  core::Parameter* pos_ = nullptr;
  std::vector<EncoderBlock> blocks_;
};

}  // namespace lcrec::baselines

#endif  // LCREC_BASELINES_SASREC_H_

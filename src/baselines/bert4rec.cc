#include "baselines/bert4rec.h"

#include "obs/trace.h"

namespace lcrec::baselines {

void Bert4Rec::BuildModel(const data::Dataset& dataset) {
  int d = config().d_model;
  mask_id_ = dataset.num_items();
  emb_ = store().Create(
      "emb", rng().GaussianTensor({dataset.num_items() + 1, d}, 0.05));
  pos_ = store().Create(
      "pos", rng().GaussianTensor({dataset.max_seq_len() + 1, d}, 0.05));
  blocks_ = MakeEncoderBlocks(store(), "bert4rec", config().n_layers, d,
                              config().d_ff, rng());
}

core::VarId Bert4Rec::Encode(core::Graph& g,
                             const std::vector<int>& ids) const {
  std::vector<int> positions(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) positions[i] = static_cast<int>(i);
  core::VarId x = g.Add(g.Rows(g.Param(emb_), ids),
                        g.Rows(g.Param(pos_), positions));
  return ApplyEncoder(g, x, blocks_, config().n_heads, /*causal=*/false);
}

core::VarId Bert4Rec::BuildUserLoss(core::Graph& g,
                                    const std::vector<int>& items) {
  obs::ScopedSpan span("baselines.bert4rec.loss");
  // Cloze objective: mask a random subset (at least one position; the
  // final position is always a candidate so train matches inference).
  std::vector<int> masked = items;
  std::vector<int> targets(items.size(), core::Graph::kIgnore);
  bool any = false;
  for (size_t i = 0; i < items.size(); ++i) {
    if (rng().Bernoulli(mask_prob_)) {
      targets[i] = items[i];
      masked[i] = mask_id_;
      any = true;
    }
  }
  if (!any) {
    size_t last = items.size() - 1;
    targets[last] = items[last];
    masked[last] = mask_id_;
  }
  core::VarId states = Encode(g, masked);
  // Score against item embeddings only (exclude the mask row).
  core::VarId item_rows = g.SliceRows(g.Param(emb_), 0, mask_id_);
  core::VarId logits = g.MatMulNT(states, item_rows);
  return g.SoftmaxCrossEntropy(logits, targets);
}

std::vector<float> Bert4Rec::ScoreAllItems(
    const std::vector<int>& history) const {
  obs::ScopedSpan span("baselines.bert4rec.score");
  std::vector<int> ids = Clamp(history);
  if (static_cast<int>(ids.size()) >= dataset()->max_seq_len() + 1) {
    ids.erase(ids.begin());
  }
  ids.push_back(mask_id_);
  core::Graph g;
  core::VarId states = Encode(g, ids);
  int64_t t = g.val(states).rows();
  core::VarId last = g.SliceRows(states, t - 1, t);
  std::vector<float> scores = DotScores(g.val(last), emb_->value);
  scores.resize(static_cast<size_t>(mask_id_));  // drop the mask row score
  return scores;
}

}  // namespace lcrec::baselines

#include "baselines/gru4rec.h"

#include "obs/trace.h"

#include <cmath>

namespace lcrec::baselines {

void Gru4Rec::BuildModel(const data::Dataset& dataset) {
  int d = config().d_model;
  auto init = [&](std::vector<int64_t> shape) {
    return rng().GaussianTensor(std::move(shape), 1.0 / std::sqrt(d));
  };
  emb_ = store().Create("emb",
                        rng().GaussianTensor({dataset.num_items(), d}, 0.05));
  wz_ = store().Create("wz", init({d, d}));
  wr_ = store().Create("wr", init({d, d}));
  wh_ = store().Create("wh", init({d, d}));
  uz_ = store().Create("uz", init({d, d}));
  ur_ = store().Create("ur", init({d, d}));
  uh_ = store().Create("uh", init({d, d}));
  bz_ = store().Create("bz", core::Tensor::Zeros({d}));
  br_ = store().Create("br", core::Tensor::Zeros({d}));
  bh_ = store().Create("bh", core::Tensor::Zeros({d}));
}

core::VarId Gru4Rec::RunGru(core::Graph& g,
                            const std::vector<int>& items) const {
  int d = config().d_model;
  core::VarId x = g.Rows(g.Param(emb_), items);
  core::VarId h = g.Input(core::Tensor::Zeros({1, d}));
  core::VarId wz = g.Param(wz_), wr = g.Param(wr_), wh = g.Param(wh_);
  core::VarId uz = g.Param(uz_), ur = g.Param(ur_), uh = g.Param(uh_);
  core::VarId bz = g.Param(bz_), br = g.Param(br_), bh = g.Param(bh_);
  std::vector<core::VarId> states;
  states.reserve(items.size());
  for (size_t t = 0; t < items.size(); ++t) {
    core::VarId xt = g.SliceRows(x, static_cast<int64_t>(t),
                                 static_cast<int64_t>(t) + 1);
    core::VarId z = g.Sigmoid(
        g.AddBias(g.Add(g.MatMul(xt, wz), g.MatMul(h, uz)), bz));
    core::VarId r = g.Sigmoid(
        g.AddBias(g.Add(g.MatMul(xt, wr), g.MatMul(h, ur)), br));
    core::VarId cand = g.Tanh(g.AddBias(
        g.Add(g.MatMul(xt, wh), g.MatMul(g.Mul(r, h), uh)), bh));
    // h = (1 - z) * h + z * cand
    core::VarId one_minus_z = g.Sub(g.Input(core::Tensor::Ones({1, d})), z);
    h = g.Add(g.Mul(one_minus_z, h), g.Mul(z, cand));
    states.push_back(h);
  }
  return g.ConcatRows(states);
}

core::VarId Gru4Rec::BuildUserLoss(core::Graph& g,
                                   const std::vector<int>& items) {
  obs::ScopedSpan span("baselines.gru4rec.loss");
  // Inputs x_1..x_{T-1}, targets x_2..x_T.
  std::vector<int> inputs(items.begin(), items.end() - 1);
  std::vector<int> targets(items.begin() + 1, items.end());
  core::VarId states = RunGru(g, inputs);
  core::VarId logits = g.MatMulNT(states, g.Param(emb_));
  return g.SoftmaxCrossEntropy(logits, targets);
}

std::vector<float> Gru4Rec::ScoreAllItems(
    const std::vector<int>& history) const {
  obs::ScopedSpan span("baselines.gru4rec.score");
  std::vector<int> items = Clamp(history);
  core::Graph g;
  core::VarId states = RunGru(g, items);
  int64_t t = g.val(states).rows();
  core::VarId last = g.SliceRows(states, t - 1, t);
  return DotScores(g.val(last), emb_->value);
}

}  // namespace lcrec::baselines

#include "baselines/tiger.h"

#include <algorithm>
#include <limits>

#include "core/check.h"
#include "core/linalg.h"
#include "llm/trainer.h"
#include "obs/trace.h"
#include "text/encoder.h"

namespace lcrec::baselines {

core::Tensor Tiger::BuildSourceEmbeddings(
    const data::Dataset& dataset) const {
  if (options_.source == IndexSource::kText) {
    text::TextEncoder encoder(options_.text_dim, options_.seed);
    std::vector<std::string> docs;
    for (int i = 0; i < dataset.num_items(); ++i) {
      docs.push_back(dataset.ItemDocument(i));
    }
    return encoder.EncodeBatch(docs);
  }
  // Collaborative indexing: co-occurrence rows within a sliding window of
  // the training sequences, PCA-reduced to text_dim.
  int n = dataset.num_items();
  core::Tensor cooc({n, n});
  constexpr int kWindow = 3;
  for (int u = 0; u < dataset.num_users(); ++u) {
    std::vector<int> items = dataset.TrainItems(u);
    for (size_t i = 0; i < items.size(); ++i) {
      for (size_t j = i + 1; j < items.size() && j <= i + kWindow; ++j) {
        cooc.at(static_cast<int64_t>(items[i]) * n + items[j]) += 1.0f;
        cooc.at(static_cast<int64_t>(items[j]) * n + items[i]) += 1.0f;
      }
    }
  }
  // Row-normalize so popularity does not dominate the geometry.
  for (int i = 0; i < n; ++i) {
    float s = 0.0f;
    for (int j = 0; j < n; ++j) s += cooc.at(static_cast<int64_t>(i) * n + j);
    if (s > 0.0f) {
      for (int j = 0; j < n; ++j) {
        cooc.at(static_cast<int64_t>(i) * n + j) /= s;
      }
    }
  }
  int dim = std::min<int>(options_.text_dim, n - 1);
  core::Pca pca(cooc, dim);
  return pca.Transform(cooc);
}

void Tiger::Fit(const data::Dataset& dataset) {
  obs::ScopedSpan span("baselines.tiger.fit");
  dataset_ = &dataset;
  core::Tensor embeddings = BuildSourceEmbeddings(dataset);

  quant::RqVaeConfig vq;
  vq.input_dim = static_cast<int>(embeddings.cols());
  vq.hidden_dim = 64;
  vq.latent_dim = 24;
  vq.levels = options_.levels;
  vq.codebook_size = options_.codebook_size;
  vq.epochs = options_.rqvae_epochs;
  vq.seed = options_.seed + 1;
  quant::RqVae vae(vq);
  vae.Train(embeddings);
  // TIGER-style conflict handling: supplementary disambiguation level.
  indexing_ = quant::ItemIndexing::FromRqVae(vae, embeddings,
                                             /*uniform_semantic_mapping=*/false);
  trie_ = std::make_unique<quant::PrefixTrie>(indexing_);

  vocab_ = text::Vocabulary();
  for (const std::string& tok : indexing_.AllTokenStrings()) {
    vocab_.AddToken(tok);
  }
  llm::MiniLlmConfig mc;
  mc.vocab_size = vocab_.size();
  mc.d_model = options_.d_model;
  mc.n_layers = options_.n_layers;
  mc.n_heads = options_.n_heads;
  mc.d_ff = options_.d_ff;
  // Long enough for max_history items of (levels + 1) tokens + target.
  mc.max_seq = (options_.max_history + 2) * (options_.levels + 2) + 4;
  mc.seed = options_.seed + 2;
  model_ = std::make_unique<llm::MiniLlm>(mc);
  token_map_ = std::make_unique<llm::IndexTokenMap>(indexing_, vocab_);

  llm::TrainerOptions topt;
  topt.epochs = 1;  // driven manually per epoch below
  topt.batch_size = 8;
  topt.learning_rate = options_.learning_rate;
  topt.seed = options_.seed + 3;
  topt.verbose = options_.verbose;
  llm::LlmTrainer trainer(model_.get(), topt);
  core::Rng rng(options_.seed + 4);
  int64_t updates =
      static_cast<int64_t>(dataset.num_users()) *
      options_.seq_targets_per_user / topt.batch_size;
  trainer.SetTotalUpdates(std::max<int64_t>(1, updates) * options_.epochs);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    std::vector<llm::TrainExample> examples;
    for (int u = 0; u < dataset.num_users(); ++u) {
      std::vector<int> items = dataset.TrainItems(u);
      int len = static_cast<int>(items.size());
      if (len < 2) continue;
      std::vector<int> positions = {len - 1};
      for (int s = 0; s < options_.seq_targets_per_user - 1 && len > 2; ++s) {
        positions.push_back(1 + static_cast<int>(rng.Below(len - 1)));
      }
      std::sort(positions.begin(), positions.end());
      positions.erase(std::unique(positions.begin(), positions.end()),
                      positions.end());
      for (int pos : positions) {
        llm::TrainExample ex;
        ex.task = "tiger";
        std::vector<int> hist(items.begin(), items.begin() + pos);
        ex.prompt = HistoryTokens(hist);
        for (const std::string& tok : indexing_.ItemTokens(items[pos])) {
          ex.response.push_back(vocab_.Id(tok));
        }
        examples.push_back(std::move(ex));
      }
    }
    rng.Shuffle(examples);
    trainer.TrainEpoch(examples);
  }
}

std::vector<int> Tiger::HistoryTokens(const std::vector<int>& history) const {
  int keep = std::min<int>(options_.max_history,
                           static_cast<int>(history.size()));
  std::vector<int> tokens;
  for (size_t i = history.size() - static_cast<size_t>(keep);
       i < history.size(); ++i) {
    for (const std::string& tok : indexing_.ItemTokens(history[i])) {
      tokens.push_back(vocab_.Id(tok));
    }
  }
  return tokens;
}

std::vector<int> Tiger::TopKIds(const std::vector<int>& history, int k) const {
  LCREC_CHECK(model_ != nullptr);
  std::vector<int> prompt = {text::Vocabulary::kBos};
  std::vector<int> hist = HistoryTokens(history);
  prompt.insert(prompt.end(), hist.begin(), hist.end());
  std::vector<int> ids;
  for (const llm::ScoredItem& s :
       llm::GenerateItems(*model_, prompt, *trie_, *token_map_,
                          options_.beam_size, k)) {
    ids.push_back(s.item);
  }
  return ids;
}

std::vector<float> Tiger::ScoreAllItems(
    const std::vector<int>& history) const {
  obs::ScopedSpan span("baselines.tiger.score");
  std::vector<float> scores(static_cast<size_t>(dataset_->num_items()),
                            -std::numeric_limits<float>::infinity());
  std::vector<int> prompt = {text::Vocabulary::kBos};
  std::vector<int> hist = HistoryTokens(history);
  prompt.insert(prompt.end(), hist.begin(), hist.end());
  for (const llm::ScoredItem& s :
       llm::GenerateItems(*model_, prompt, *trie_, *token_map_,
                          options_.beam_size, options_.beam_size)) {
    scores[static_cast<size_t>(s.item)] = s.logprob;
  }
  return scores;
}

}  // namespace lcrec::baselines

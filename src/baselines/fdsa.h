#ifndef LCREC_BASELINES_FDSA_H_
#define LCREC_BASELINES_FDSA_H_

#include <string>
#include <vector>

#include "baselines/common.h"
#include "baselines/encoder_util.h"

namespace lcrec::baselines {

/// FDSA [Zhang et al. 2019]: two self-attention streams — one over item
/// embeddings, one over item-feature embeddings (here: the sum of each
/// item's attribute embeddings) — whose final representations are
/// concatenated and projected to score the next item.
class Fdsa : public NeuralRecommender {
 public:
  explicit Fdsa(const BaselineConfig& config) : NeuralRecommender(config) {}

  std::string name() const override { return "FDSA"; }
  std::vector<float> ScoreAllItems(
      const std::vector<int>& history) const override;

 protected:
  void BuildModel(const data::Dataset& dataset) override;
  core::VarId BuildUserLoss(core::Graph& g,
                            const std::vector<int>& items) override;
  core::Parameter* ItemEmbeddingParam() const override { return emb_; }

 private:
  /// Fused per-position representations [T, d].
  core::VarId EncodeSequence(core::Graph& g,
                             const std::vector<int>& items) const;
  /// Feature embedding of a sequence: sum of attribute embeddings per item.
  core::VarId FeatureRows(core::Graph& g, const std::vector<int>& items) const;

  core::Parameter* emb_ = nullptr;
  core::Parameter* attr_emb_ = nullptr;
  core::Parameter* pos_ = nullptr;
  core::Parameter* fuse_w_ = nullptr;
  core::Parameter* fuse_b_ = nullptr;
  std::vector<EncoderBlock> item_blocks_;
  std::vector<EncoderBlock> feat_blocks_;
};

}  // namespace lcrec::baselines

#endif  // LCREC_BASELINES_FDSA_H_

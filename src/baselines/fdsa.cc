#include "baselines/fdsa.h"

#include "obs/trace.h"

#include <cmath>

namespace lcrec::baselines {

void Fdsa::BuildModel(const data::Dataset& dataset) {
  int d = config().d_model;
  emb_ = store().Create("emb",
                        rng().GaussianTensor({dataset.num_items(), d}, 0.05));
  attr_emb_ = store().Create(
      "attr_emb", rng().GaussianTensor({dataset.num_attributes(), d}, 0.05));
  pos_ = store().Create("pos",
                        rng().GaussianTensor({dataset.max_seq_len(), d}, 0.05));
  item_blocks_ = MakeEncoderBlocks(store(), "fdsa_item", config().n_layers, d,
                                   config().d_ff, rng());
  feat_blocks_ = MakeEncoderBlocks(store(), "fdsa_feat", 1, d, config().d_ff,
                                   rng());
  fuse_w_ = store().Create(
      "fuse_w", rng().GaussianTensor({2 * static_cast<int64_t>(d), d},
                                     1.0 / std::sqrt(2.0 * d)));
  fuse_b_ = store().Create("fuse_b", core::Tensor::Zeros({d}));
}

core::VarId Fdsa::FeatureRows(core::Graph& g,
                              const std::vector<int>& items) const {
  // For each position, the sum of the item's attribute embeddings. Build
  // by gathering all attribute rows then summing each item's slice.
  std::vector<core::VarId> rows;
  rows.reserve(items.size());
  core::VarId table = g.Param(attr_emb_);
  for (int item : items) {
    const auto& attrs = dataset()->item(item).attributes;
    core::VarId gathered = g.Rows(table, attrs);
    rows.push_back(
        g.Reshape(g.SumOverRows(gathered), {1, config().d_model}));
  }
  return g.ConcatRows(rows);
}

core::VarId Fdsa::EncodeSequence(core::Graph& g,
                                 const std::vector<int>& items) const {
  std::vector<int> positions(items.size());
  for (size_t i = 0; i < items.size(); ++i) positions[i] = static_cast<int>(i);
  core::VarId pos = g.Rows(g.Param(pos_), positions);
  core::VarId item_x = g.Add(g.Rows(g.Param(emb_), items), pos);
  core::VarId feat_x = g.Add(FeatureRows(g, items), pos);
  core::VarId item_h =
      ApplyEncoder(g, item_x, item_blocks_, config().n_heads, true);
  core::VarId feat_h =
      ApplyEncoder(g, feat_x, feat_blocks_, config().n_heads, true);
  core::VarId fused = g.ConcatCols({item_h, feat_h});
  return g.AddBias(g.MatMul(fused, g.Param(fuse_w_)), g.Param(fuse_b_));
}

core::VarId Fdsa::BuildUserLoss(core::Graph& g,
                                const std::vector<int>& items) {
  obs::ScopedSpan span("baselines.fdsa.loss");
  std::vector<int> inputs(items.begin(), items.end() - 1);
  std::vector<int> targets(items.begin() + 1, items.end());
  core::VarId states = EncodeSequence(g, inputs);
  core::VarId logits = g.MatMulNT(states, g.Param(emb_));
  return g.SoftmaxCrossEntropy(logits, targets);
}

std::vector<float> Fdsa::ScoreAllItems(
    const std::vector<int>& history) const {
  obs::ScopedSpan span("baselines.fdsa.score");
  std::vector<int> items = Clamp(history);
  core::Graph g;
  core::VarId states = EncodeSequence(g, items);
  int64_t t = g.val(states).rows();
  core::VarId last = g.SliceRows(states, t - 1, t);
  return DotScores(g.val(last), emb_->value);
}

}  // namespace lcrec::baselines

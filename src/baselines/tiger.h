#ifndef LCREC_BASELINES_TIGER_H_
#define LCREC_BASELINES_TIGER_H_

#include <memory>
#include <string>
#include <vector>

#include "llm/generate.h"
#include "llm/minillm.h"
#include "quant/indexing.h"
#include "quant/rqvae.h"
#include "rec/recommender.h"
#include "text/vocab.h"

namespace lcrec::baselines {

/// Generative-retrieval baselines: TIGER [Rajput et al. 2023] and P5 with
/// collaborative indexing (P5-CID [Hua et al. 2023]).
///
/// Both train a from-scratch Transformer purely on index-token sequences
/// (history indices -> target indices) with no natural-language
/// instructions — the contrast LC-Rec's Table III draws. They differ in
/// where the indices come from:
///  * TIGER: RQ-VAE semantic IDs from item *text* embeddings, conflicts
///    resolved by a supplementary level (no USM).
///  * P5-CID: collaborative indices from item co-occurrence statistics
///    (PCA-reduced co-occurrence rows quantized by the same RQ-VAE).
///
/// Substitution note (DESIGN.md): the original TIGER is an encoder-
/// decoder T5-style model; we use the repo's decoder-only backbone, which
/// preserves the generative-retrieval behaviour under test.
class Tiger : public rec::ScoringRecommender {
 public:
  enum class IndexSource { kText, kCollaborative };

  struct Options {
    IndexSource source = IndexSource::kText;
    int levels = 4;
    int codebook_size = 48;
    int rqvae_epochs = 120;
    int text_dim = 48;
    int d_model = 32;
    int n_layers = 2;
    int n_heads = 4;
    int d_ff = 96;
    int epochs = 8;
    int seq_targets_per_user = 3;
    int max_history = 8;
    int beam_size = 20;
    float learning_rate = 3e-3f;
    uint64_t seed = 91;
    bool verbose = false;
  };

  explicit Tiger(const Options& options) : options_(options) {}

  std::string name() const override {
    return options_.source == IndexSource::kText ? "TIGER" : "P5-CID";
  }
  void Fit(const data::Dataset& dataset) override;
  std::vector<float> ScoreAllItems(
      const std::vector<int>& history) const override;

  std::vector<int> TopKIds(const std::vector<int>& history, int k) const;
  const quant::ItemIndexing& indexing() const { return indexing_; }

 private:
  std::vector<int> HistoryTokens(const std::vector<int>& history) const;
  core::Tensor BuildSourceEmbeddings(const data::Dataset& dataset) const;

  Options options_;
  const data::Dataset* dataset_ = nullptr;
  quant::ItemIndexing indexing_ = quant::ItemIndexing::VanillaId(1);
  std::unique_ptr<quant::PrefixTrie> trie_;
  text::Vocabulary vocab_;
  std::unique_ptr<llm::MiniLlm> model_;
  std::unique_ptr<llm::IndexTokenMap> token_map_;
};

}  // namespace lcrec::baselines

#endif  // LCREC_BASELINES_TIGER_H_

#ifndef LCREC_BASELINES_COMMON_H_
#define LCREC_BASELINES_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/health.h"
#include "core/graph.h"
#include "core/optim.h"
#include "core/rng.h"
#include "data/dataset.h"
#include "obs/metrics.h"
#include "rec/recommender.h"

namespace lcrec::baselines {

/// Per-model training telemetry shared by every scoring baseline:
///   lcrec.baselines.<model>.epochs        counter
///   lcrec.baselines.<model>.steps         counter (per-user loss steps)
///   lcrec.baselines.<model>.step_time_ms  histogram of per-step wall time
///   lcrec.baselines.<model>.loss          gauge, latest epoch mean loss
/// Construct once per Fit (registry lookups happen here, not per step).
class FitTelemetry {
 public:
  explicit FitTelemetry(const std::string& model);

  void RecordStep(double ms);
  void RecordEpoch(double mean_loss);

 private:
  obs::Counter& epochs_;
  obs::Counter& steps_;
  obs::Histogram& step_time_ms_;
  obs::Gauge& loss_;
};

/// Shared hyper-parameters of the neural baselines (Table III rows).
struct BaselineConfig {
  int d_model = 48;
  int n_layers = 2;
  int n_heads = 2;
  int d_ff = 96;
  int epochs = 25;
  float learning_rate = 2e-3f;
  float weight_decay = 0.0f;
  int batch_users = 16;  // gradient-accumulation group
  uint64_t seed = 55;
  bool verbose = false;

  // Crash-safe checkpointing (lcrec::ckpt), epoch granularity. Each model
  // checkpoints under `<ckpt_dir>/<name()>` so baselines sharing one run
  // directory don't collide. Empty dir disables it.
  std::string ckpt_dir;
  int ckpt_every = 0;  // epochs between saves; 0 => every epoch
  int ckpt_keep = 3;
  bool resume = false;

  // Numeric-health guard: NaN/Inf epoch loss rolls back to the last good
  // checkpoint with a learning-rate backoff (see ckpt::HealthGuard).
  int health_max_retries = 3;
  float health_lr_backoff = 0.5f;
};

/// Base class implementing the shared training loop: per epoch, iterate
/// users in random order, accumulate each user's loss gradient, and apply
/// AdamW after every `batch_users` users. Subclasses define the parameter
/// set, the per-user loss and the scoring forward pass.
class NeuralRecommender : public rec::ScoringRecommender {
 public:
  explicit NeuralRecommender(const BaselineConfig& config)
      : config_(config),
        rng_(config.seed),
        health_({/*grad_limit=*/0.0f, config.health_max_retries,
                 config.health_lr_backoff},
                "baseline") {}

  void Fit(const data::Dataset& dataset) final;

  const core::Tensor* ItemEmbeddings() const override;

  /// Mean loss per completed Fit epoch (restored across resume).
  const std::vector<float>& fit_epoch_losses() const {
    return fit_epoch_losses_;
  }
  /// Completed Fit epochs (restored across resume).
  int fit_epochs_done() const { return fit_epochs_done_; }
  int health_trips() const { return health_.trips(); }

 protected:
  /// Creates parameters; called once at the start of Fit.
  virtual void BuildModel(const data::Dataset& dataset) = 0;

  /// Scalar training loss for one user's training items (>= 3 items).
  virtual core::VarId BuildUserLoss(core::Graph& g,
                                    const std::vector<int>& items) = 0;

  /// Hook for models with a pretraining stage (S3-Rec); default no-op.
  virtual void Pretrain(const data::Dataset& /*dataset*/) {}

  /// The item embedding parameter (used for scoring and for the Table V
  /// collaborative negatives); may be null for models without one.
  virtual core::Parameter* ItemEmbeddingParam() const = 0;

  const BaselineConfig& config() const { return config_; }
  const data::Dataset* dataset() const { return dataset_; }
  core::ParamStore& store() { return store_; }
  core::ParamStore& store() const { return store_; }
  core::Rng& rng() { return rng_; }
  int num_items() const { return dataset_->num_items(); }

  /// Truncates a history to the dataset's max sequence length.
  std::vector<int> Clamp(const std::vector<int>& history) const;

 private:
  /// Per-model checkpoint directory: `<config.ckpt_dir>/<name()>`, or
  /// empty when checkpointing is off.
  std::string FitCkptDir() const;
  void EncodeFitState(ckpt::Checkpoint* c) const;
  bool DecodeFitState(const ckpt::Checkpoint& c);
  bool SaveFitCheckpoint();
  bool TryResumeFit();
  void RollbackFit();

  BaselineConfig config_;
  mutable core::Rng rng_;
  mutable core::ParamStore store_;
  const data::Dataset* dataset_ = nullptr;
  std::unique_ptr<core::AdamW> optimizer_;
  ckpt::HealthGuard health_;
  int fit_epochs_done_ = 0;
  float lr_scale_ = 1.0f;
  bool has_checkpoint_ = false;
  bool rolled_back_ = false;
  std::vector<float> fit_epoch_losses_;
};

/// Scores as the dot product of a user representation with every item
/// embedding: scores = repr * E^T.
std::vector<float> DotScores(const core::Tensor& repr,
                             const core::Tensor& item_embeddings);

}  // namespace lcrec::baselines

#endif  // LCREC_BASELINES_COMMON_H_

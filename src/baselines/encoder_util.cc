#include "baselines/encoder_util.h"

#include <cmath>

namespace lcrec::baselines {

std::vector<EncoderBlock> MakeEncoderBlocks(core::ParamStore& store,
                                            const std::string& prefix,
                                            int n_layers, int d_model,
                                            int d_ff, core::Rng& rng) {
  std::vector<EncoderBlock> blocks;
  auto init = [&](int fan_in, std::vector<int64_t> shape) {
    return rng.GaussianTensor(std::move(shape), 1.0 / std::sqrt(fan_in));
  };
  for (int l = 0; l < n_layers; ++l) {
    std::string p = prefix + ".block" + std::to_string(l) + ".";
    EncoderBlock b;
    b.wq = store.Create(p + "wq", init(d_model, {d_model, d_model}));
    b.wk = store.Create(p + "wk", init(d_model, {d_model, d_model}));
    b.wv = store.Create(p + "wv", init(d_model, {d_model, d_model}));
    b.wo = store.Create(p + "wo", init(d_model, {d_model, d_model}));
    b.ln1_g = store.Create(p + "ln1_g", core::Tensor::Ones({d_model}));
    b.ln1_b = store.Create(p + "ln1_b", core::Tensor::Zeros({d_model}));
    b.w1 = store.Create(p + "w1", init(d_model, {d_model, d_ff}));
    b.b1 = store.Create(p + "b1", core::Tensor::Zeros({d_ff}));
    b.w2 = store.Create(p + "w2", init(d_ff, {d_ff, d_model}));
    b.b2 = store.Create(p + "b2", core::Tensor::Zeros({d_model}));
    b.ln2_g = store.Create(p + "ln2_g", core::Tensor::Ones({d_model}));
    b.ln2_b = store.Create(p + "ln2_b", core::Tensor::Zeros({d_model}));
    blocks.push_back(b);
  }
  return blocks;
}

core::VarId ApplyEncoder(core::Graph& g, core::VarId x,
                         const std::vector<EncoderBlock>& blocks, int n_heads,
                         bool causal) {
  int d = static_cast<int>(g.val(x).cols());
  int dh = d / n_heads;
  float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  for (const EncoderBlock& b : blocks) {
    core::VarId q = g.MatMul(x, g.Param(b.wq));
    core::VarId k = g.MatMul(x, g.Param(b.wk));
    core::VarId v = g.MatMul(x, g.Param(b.wv));
    std::vector<core::VarId> heads;
    heads.reserve(static_cast<size_t>(n_heads));
    for (int h = 0; h < n_heads; ++h) {
      core::VarId qh = g.SliceCols(q, h * dh, (h + 1) * dh);
      core::VarId kh = g.SliceCols(k, h * dh, (h + 1) * dh);
      core::VarId vh = g.SliceCols(v, h * dh, (h + 1) * dh);
      core::VarId scores = g.Scale(g.MatMulNT(qh, kh), scale);
      core::VarId probs = causal ? g.CausalSoftmax(scores) : g.Softmax(scores);
      heads.push_back(g.MatMul(probs, vh));
    }
    core::VarId attn = g.MatMul(g.ConcatCols(heads), g.Param(b.wo));
    x = g.LayerNorm(g.Add(x, attn), g.Param(b.ln1_g), g.Param(b.ln1_b));
    core::VarId ffn = g.MatMul(
        g.Relu(g.AddBias(g.MatMul(x, g.Param(b.w1)), g.Param(b.b1))),
        g.Param(b.w2));
    ffn = g.AddBias(ffn, g.Param(b.b2));
    x = g.LayerNorm(g.Add(x, ffn), g.Param(b.ln2_g), g.Param(b.ln2_b));
  }
  return x;
}

}  // namespace lcrec::baselines

#ifndef LCREC_BASELINES_GRU4REC_H_
#define LCREC_BASELINES_GRU4REC_H_

#include <string>
#include <vector>

#include "baselines/common.h"

namespace lcrec::baselines {

/// GRU4Rec [Hidasi et al. 2015]: a GRU over the item-id sequence; the
/// hidden state after the last interaction scores every item by inner
/// product with the item embedding table.
class Gru4Rec : public NeuralRecommender {
 public:
  explicit Gru4Rec(const BaselineConfig& config) : NeuralRecommender(config) {}

  std::string name() const override { return "GRU4Rec"; }
  std::vector<float> ScoreAllItems(
      const std::vector<int>& history) const override;

 protected:
  void BuildModel(const data::Dataset& dataset) override;
  core::VarId BuildUserLoss(core::Graph& g,
                            const std::vector<int>& items) override;
  core::Parameter* ItemEmbeddingParam() const override { return emb_; }

 private:
  /// Runs the GRU over `items`, returning per-step hidden states [T, d].
  core::VarId RunGru(core::Graph& g, const std::vector<int>& items) const;

  core::Parameter* emb_ = nullptr;
  core::Parameter* wz_ = nullptr;
  core::Parameter* wr_ = nullptr;
  core::Parameter* wh_ = nullptr;
  core::Parameter* uz_ = nullptr;
  core::Parameter* ur_ = nullptr;
  core::Parameter* uh_ = nullptr;
  core::Parameter* bz_ = nullptr;
  core::Parameter* br_ = nullptr;
  core::Parameter* bh_ = nullptr;
};

}  // namespace lcrec::baselines

#endif  // LCREC_BASELINES_GRU4REC_H_

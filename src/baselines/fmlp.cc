#include "baselines/fmlp.h"

#include "obs/trace.h"

#include <algorithm>
#include <cmath>

namespace lcrec::baselines {

void FmlpRec::BuildModel(const data::Dataset& dataset) {
  int d = config().d_model;
  window_ = dataset.max_seq_len();
  pad_id_ = dataset.num_items();
  emb_ = store().Create(
      "emb", rng().GaussianTensor({dataset.num_items() + 1, d}, 0.05));
  pos_ = store().Create("pos", rng().GaussianTensor({window_, d}, 0.05));
  blocks_.clear();
  for (int l = 0; l < config().n_layers; ++l) {
    std::string p = "fmlp.block" + std::to_string(l) + ".";
    Block b;
    // Identity-ish filter initialization (W ~ 1 + noise) keeps early
    // training close to a pass-through.
    core::Tensor wre = core::Tensor::Ones({window_, d});
    core::Tensor noise = rng().GaussianTensor({window_, d}, 0.02);
    wre.Axpy(1.0f, noise);
    b.w_re = store().Create(p + "w_re", wre);
    b.w_im = store().Create(p + "w_im",
                            rng().GaussianTensor({window_, d}, 0.02));
    b.ln1_g = store().Create(p + "ln1_g", core::Tensor::Ones({d}));
    b.ln1_b = store().Create(p + "ln1_b", core::Tensor::Zeros({d}));
    b.w1 = store().Create(
        p + "w1", rng().GaussianTensor({d, config().d_ff},
                                       1.0 / std::sqrt(d)));
    b.b1 = store().Create(p + "b1", core::Tensor::Zeros({config().d_ff}));
    b.w2 = store().Create(
        p + "w2", rng().GaussianTensor({config().d_ff, d},
                                       1.0 / std::sqrt(config().d_ff)));
    b.b2 = store().Create(p + "b2", core::Tensor::Zeros({d}));
    b.ln2_g = store().Create(p + "ln2_g", core::Tensor::Ones({d}));
    b.ln2_b = store().Create(p + "ln2_b", core::Tensor::Zeros({d}));
    blocks_.push_back(b);
  }
}

core::VarId FmlpRec::EncodeLast(core::Graph& g,
                                const std::vector<int>& ctx) const {
  // Left-pad to exactly window_ ids so the learned filters see a fixed
  // sequence length.
  std::vector<int> ids(static_cast<size_t>(window_), pad_id_);
  int n = std::min<int>(window_, static_cast<int>(ctx.size()));
  for (int i = 0; i < n; ++i) {
    ids[static_cast<size_t>(window_ - n + i)] = ctx[ctx.size() - n + i];
  }
  std::vector<int> positions(static_cast<size_t>(window_));
  for (int i = 0; i < window_; ++i) positions[static_cast<size_t>(i)] = i;
  core::VarId x = g.Add(g.Rows(g.Param(emb_), ids),
                        g.Rows(g.Param(pos_), positions));
  for (const Block& b : blocks_) {
    core::VarId filtered = g.DftFilter(x, g.Param(b.w_re), g.Param(b.w_im));
    x = g.LayerNorm(g.Add(x, filtered), g.Param(b.ln1_g), g.Param(b.ln1_b));
    core::VarId ffn = g.AddBias(
        g.MatMul(g.Relu(g.AddBias(g.MatMul(x, g.Param(b.w1)), g.Param(b.b1))),
                 g.Param(b.w2)),
        g.Param(b.b2));
    x = g.LayerNorm(g.Add(x, ffn), g.Param(b.ln2_g), g.Param(b.ln2_b));
  }
  return g.SliceRows(x, window_ - 1, window_);
}

core::VarId FmlpRec::BuildUserLoss(core::Graph& g,
                                   const std::vector<int>& items) {
  obs::ScopedSpan span("baselines.fmlp.loss");
  // Non-causal mixing: supervise the final position only, on a couple of
  // sampled prefixes per user.
  std::vector<core::VarId> states;
  std::vector<int> targets;
  int len = static_cast<int>(items.size());
  std::vector<int> cut_points = {len - 1};
  if (len > 3) cut_points.push_back(1 + static_cast<int>(rng().Below(len - 2)));
  for (int t : cut_points) {
    std::vector<int> ctx(items.begin(), items.begin() + t);
    states.push_back(EncodeLast(g, ctx));
    targets.push_back(items[static_cast<size_t>(t)]);
  }
  core::VarId item_rows = g.SliceRows(g.Param(emb_), 0, pad_id_);
  core::VarId logits = g.MatMulNT(g.ConcatRows(states), item_rows);
  return g.SoftmaxCrossEntropy(logits, targets);
}

std::vector<float> FmlpRec::ScoreAllItems(
    const std::vector<int>& history) const {
  obs::ScopedSpan span("baselines.fmlp.score");
  core::Graph g;
  core::VarId state = EncodeLast(g, history);
  std::vector<float> scores = DotScores(g.val(state), emb_->value);
  scores.resize(static_cast<size_t>(pad_id_));
  return scores;
}

}  // namespace lcrec::baselines

#include "llm/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>
#include <unordered_map>

#include "core/check.h"
#include "core/serialize.h"
#include "obs/debugz.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "text/vocab.h"

namespace lcrec::llm {

namespace {

/// Cached metric handles for the training loop (lcrec.llm.train.*).
/// Resolved once; afterwards every update is a relaxed atomic op.
struct TrainMetrics {
  obs::Histogram& step_time_ms;
  obs::Counter& steps;
  obs::Counter& tokens;
  obs::Gauge& loss;
  obs::Gauge& grad_norm;
  obs::Gauge& lr;
  obs::Gauge& tokens_per_sec;

  static TrainMetrics& Get() {
    static TrainMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      return new TrainMetrics{
          r.GetHistogram("lcrec.llm.train.step_time_ms",
                         obs::Histogram::ExponentialBounds(0.05, 1.6, 28)),
          r.GetCounter("lcrec.llm.train.steps"),
          r.GetCounter("lcrec.llm.train.tokens"),
          r.GetGauge("lcrec.llm.train.loss"),
          r.GetGauge("lcrec.llm.train.grad_norm"),
          r.GetGauge("lcrec.llm.train.lr"),
          r.GetGauge("lcrec.llm.train.tokens_per_sec"),
      };
    }();
    return *m;
  }
};

bool ReadFloats(std::istream& is, uint64_t n, std::vector<float>* out) {
  if (n > (1u << 26)) return false;  // implausible; reject, don't allocate
  out->resize(n);
  if (n > 0) {
    is.read(reinterpret_cast<char*>(out->data()),
            static_cast<std::streamsize>(n * sizeof(float)));
  }
  return static_cast<bool>(is);
}

}  // namespace

LlmTrainer::LlmTrainer(MiniLlm* model, const TrainerOptions& options)
    : model_(model),
      options_(options),
      rng_(options.seed),
      optimizer_(model->params().All(), 0.9f, 0.999f, 1e-8f,
                 options.weight_decay),
      health_({options.health_grad_limit, options.health_max_retries,
               options.health_lr_backoff},
              "llm") {
  // The trainer's /statusz section. The reads are unsynchronized
  // snapshots of training counters — fine for a human-facing status
  // page, but a live scrape during Train() sees them mid-update; tests
  // scrape between epochs only.
  statusz_section_id_ = obs::RegisterStatuszSection("llm.trainer", [this] {
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "step %lld | epochs_done %lld | last_epoch_loss %.4f | "
        "lr_scale %.3g | health_trips %d\n",
        static_cast<long long>(step_), static_cast<long long>(epochs_done_),
        epoch_losses_.empty() ? 0.0
                              : static_cast<double>(epoch_losses_.back()),
        static_cast<double>(lr_scale_), health_.trips());
    return std::string(buf);
  });
}

LlmTrainer::~LlmTrainer() {
  obs::UnregisterStatuszSection(statusz_section_id_);
}

void LlmTrainer::AssembleTokens(const TrainExample& example, int max_seq,
                                std::vector<int>* tokens,
                                std::vector<int>* targets) {
  // Budget: 1 (<bos>) + prompt + response + 1 (<eos>) <= max_seq.
  int response_len = static_cast<int>(example.response.size());
  int budget = max_seq - 2 - response_len;
  // A non-positive budget means the response alone exceeds the window.
  LCREC_CHECK_GT(budget, 0);
  int prompt_len = static_cast<int>(example.prompt.size());
  int keep = std::min(prompt_len, budget);
  tokens->clear();
  tokens->push_back(text::Vocabulary::kBos);
  tokens->insert(tokens->end(), example.prompt.end() - keep,
                 example.prompt.end());
  int response_start = static_cast<int>(tokens->size());
  tokens->insert(tokens->end(), example.response.begin(),
                 example.response.end());
  tokens->push_back(text::Vocabulary::kEos);

  int n = static_cast<int>(tokens->size());
  targets->assign(n, core::Graph::kIgnore);
  // Position i predicts token i+1; supervise predictions of the response
  // tokens and the final <eos>.
  for (int i = response_start - 1; i < n - 1; ++i) {
    (*targets)[i] = (*tokens)[i + 1];
  }
}

float LlmTrainer::CurrentLr() const {
  if (total_steps_ <= 0) return options_.learning_rate * lr_scale_;
  core::CosineSchedule sched(
      options_.learning_rate,
      static_cast<int64_t>(options_.warmup_fraction *
                           static_cast<float>(total_steps_)),
      total_steps_);
  return sched.LrAt(step_) * lr_scale_;
}

void LlmTrainer::EncodeState(ckpt::Checkpoint* c,
                             const std::vector<int64_t>& order, int64_t pos,
                             double loss_sum, int64_t count) const {
  c->step = step_;
  {
    std::ostringstream os(std::ios::binary);
    core::SaveParamsToStream(model_->params(), os);
    c->Add("params", std::move(os).str());
  }
  {
    std::ostringstream os(std::ios::binary);
    optimizer_.SaveState(os);
    c->Add("optim", std::move(os).str());
  }
  {
    // Shuffle rng then the model's dropout rng, space-separated text.
    std::ostringstream os;
    rng_.Save(os);
    os << ' ';
    model_->rng().Save(os);
    c->Add("rng", std::move(os).str());
  }
  {
    std::ostringstream ts(std::ios::binary);
    ckpt::PutPod(ts, step_);
    ckpt::PutPod(ts, epochs_done_);
    ckpt::PutPod(ts, total_steps_);
    ckpt::PutPod(ts, lr_scale_);
    ckpt::PutPod(ts, static_cast<uint64_t>(step_losses_.size()));
    if (!step_losses_.empty()) {
      ts.write(reinterpret_cast<const char*>(step_losses_.data()),
               static_cast<std::streamsize>(step_losses_.size() *
                                            sizeof(float)));
    }
    ckpt::PutPod(ts, static_cast<uint64_t>(epoch_losses_.size()));
    if (!epoch_losses_.empty()) {
      ts.write(reinterpret_cast<const char*>(epoch_losses_.data()),
               static_cast<std::streamsize>(epoch_losses_.size() *
                                            sizeof(float)));
    }
    const uint8_t mid = order.empty() ? 0 : 1;
    ckpt::PutPod(ts, mid);
    if (mid) {
      ckpt::PutPod(ts, static_cast<uint64_t>(order.size()));
      if (!order.empty()) {
        ts.write(reinterpret_cast<const char*>(order.data()),
                 static_cast<std::streamsize>(order.size() *
                                              sizeof(int64_t)));
      }
      ckpt::PutPod(ts, pos);
      ckpt::PutPod(ts, loss_sum);
      ckpt::PutPod(ts, count);
    }
    c->Add("trainer", std::move(ts).str());
  }
}

bool LlmTrainer::DecodeState(const ckpt::Checkpoint& c) {
  const std::string* params = c.Find("params");
  const std::string* optim = c.Find("optim");
  const std::string* rng = c.Find("rng");
  const std::string* trainer = c.Find("trainer");
  if (!params || !optim || !rng || !trainer) {
    obs::Log(obs::LogLevel::kWarn,
             "[llm] checkpoint is missing a required section");
    return false;
  }
  // Parse the trainer scalars into locals first so a malformed section
  // rejects before any state is touched; params/optim/rng each stage
  // internally and commit all-or-nothing.
  std::istringstream ts(*trainer, std::ios::binary);
  int64_t step = 0, epochs_done = 0, total_steps = 0;
  float lr_scale = 1.0f;
  uint64_t n_step = 0, n_epoch = 0;
  std::vector<float> step_losses, epoch_losses;
  uint8_t mid = 0;
  std::vector<int64_t> pending_order;
  int64_t pending_pos = 0, pending_count = 0;
  double pending_loss_sum = 0.0;
  if (!ckpt::GetPod(ts, &step) || !ckpt::GetPod(ts, &epochs_done) ||
      !ckpt::GetPod(ts, &total_steps) || !ckpt::GetPod(ts, &lr_scale) ||
      !ckpt::GetPod(ts, &n_step) || !ReadFloats(ts, n_step, &step_losses) ||
      !ckpt::GetPod(ts, &n_epoch) ||
      !ReadFloats(ts, n_epoch, &epoch_losses) || !ckpt::GetPod(ts, &mid)) {
    obs::Log(obs::LogLevel::kWarn, "[llm] malformed trainer section");
    return false;
  }
  if (mid) {
    uint64_t n_order = 0;
    if (!ckpt::GetPod(ts, &n_order) || n_order > (1u << 30)) {
      obs::Log(obs::LogLevel::kWarn, "[llm] malformed resume cursor");
      return false;
    }
    pending_order.resize(n_order);
    if (n_order > 0) {
      ts.read(reinterpret_cast<char*>(pending_order.data()),
              static_cast<std::streamsize>(n_order * sizeof(int64_t)));
    }
    if (!ts || !ckpt::GetPod(ts, &pending_pos) ||
        !ckpt::GetPod(ts, &pending_loss_sum) ||
        !ckpt::GetPod(ts, &pending_count) || pending_pos < 0 ||
        pending_pos > static_cast<int64_t>(n_order)) {
      obs::Log(obs::LogLevel::kWarn, "[llm] malformed resume cursor");
      return false;
    }
  }
  {
    std::istringstream is(*params, std::ios::binary);
    if (!core::LoadParamsFromStream(model_->params(), is)) return false;
  }
  {
    std::istringstream is(*optim, std::ios::binary);
    if (!optimizer_.LoadState(is)) {
      obs::Log(obs::LogLevel::kWarn, "[llm] optimizer state rejected");
      return false;
    }
  }
  {
    std::istringstream is(*rng);
    if (!rng_.Restore(is) || !model_->rng().Restore(is)) {
      obs::Log(obs::LogLevel::kWarn, "[llm] rng state rejected");
      return false;
    }
  }
  step_ = step;
  epochs_done_ = epochs_done;
  total_steps_ = total_steps;
  lr_scale_ = lr_scale;
  step_losses_ = std::move(step_losses);
  epoch_losses_ = std::move(epoch_losses);
  mid_epoch_pending_ = mid != 0;
  pending_order_ = std::move(pending_order);
  pending_pos_ = pending_pos;
  pending_loss_sum_ = pending_loss_sum;
  pending_count_ = pending_count;
  return true;
}

bool LlmTrainer::SaveCheckpointImpl(const std::vector<int64_t>& order,
                                    int64_t pos, double loss_sum,
                                    int64_t count) {
  ckpt::Checkpoint c;
  EncodeState(&c, order, pos, loss_sum, count);
  std::string error;
  if (!ckpt::SaveToDir(options_.ckpt_dir, c, options_.ckpt_keep, &error)) {
    obs::Log(obs::LogLevel::kWarn, "[llm] checkpoint save failed: %s",
             error.c_str());
    return false;
  }
  has_checkpoint_ = true;
  return true;
}

bool LlmTrainer::SaveCheckpoint() {
  return SaveCheckpointImpl({}, 0, 0.0, 0);
}

bool LlmTrainer::TryResume() {
  if (!CheckpointingEnabled()) return false;
  ckpt::Checkpoint c;
  std::string path;
  if (!ckpt::LoadLatestValid(options_.ckpt_dir, &c, &path)) return false;
  if (!DecodeState(c)) {
    obs::Log(obs::LogLevel::kWarn,
             "[llm] checkpoint %s does not match this trainer; starting "
             "fresh",
             path.c_str());
    return false;
  }
  has_checkpoint_ = true;
  obs::Log(obs::LogLevel::kInfo,
           "[llm] resumed from %s (step %lld, epoch %lld)", path.c_str(),
           static_cast<long long>(step_),
           static_cast<long long>(epochs_done_));
  return true;
}

void LlmTrainer::Rollback() {
  ckpt::Checkpoint c;
  std::string path;
  const bool restored =
      ckpt::LoadLatestValid(options_.ckpt_dir, &c, &path) && DecodeState(c);
  // The health guard only sends us here when has_checkpoint_; a checkpoint
  // that was valid a moment ago failing now means the training state is
  // unrecoverable.
  LCREC_CHECK(restored);
  lr_scale_ *= options_.health_lr_backoff;
  rolled_back_ = true;
  obs::Log(obs::LogLevel::kWarn,
           "[llm] rolled back to %s (step %lld); lr scale now %g",
           path.c_str(), static_cast<long long>(step_),
           static_cast<double>(lr_scale_));
}

float LlmTrainer::TrainEpoch(const std::vector<TrainExample>& examples) {
  obs::ScopedSpan epoch_span("llm.train_epoch");
  TrainMetrics& tm = TrainMetrics::Get();
  rolled_back_ = false;

  std::vector<int64_t> order;
  int64_t pos = 0;
  double total_loss = 0.0;
  int64_t count = 0;
  if (mid_epoch_pending_ && pending_order_.size() == examples.size()) {
    order = std::move(pending_order_);
    pos = pending_pos_;
    total_loss = pending_loss_sum_;
    count = pending_count_;
  } else {
    if (mid_epoch_pending_) {
      obs::Log(obs::LogLevel::kWarn,
               "[llm] resume cursor covers %zu examples but this epoch has "
               "%zu; restarting the epoch",
               pending_order_.size(), examples.size());
    }
    order.resize(examples.size());
    std::iota(order.begin(), order.end(), 0);
    rng_.Shuffle(order);
  }
  mid_epoch_pending_ = false;
  pending_order_.clear();

  const int64_t total_examples = static_cast<int64_t>(order.size());
  int in_batch = 0;
  double batch_loss_sum = 0.0;
  int64_t epoch_tokens = 0;
  // Per-task loss accumulators (Eq. 7 sums the NLL over the alignment
  // task mixture; this resolves which tasks dominate it).
  std::unordered_map<std::string, std::pair<double, int64_t>> task_loss;
  model_->params().ZeroGrad();
  std::vector<int> tokens, targets;
  double step_start_us = obs::NowMicros();
  for (; pos < total_examples; ++pos) {
    const TrainExample& example = examples[order[pos]];
    AssembleTokens(example, model_->config().max_seq, &tokens, &targets);
    core::Graph g;
    core::VarId loss = model_->BuildLoss(g, tokens, targets, /*train=*/true);
    g.Backward(loss);
    float loss_val = g.val(loss).item();
    total_loss += loss_val;
    batch_loss_sum += loss_val;
    if (!example.task.empty()) {
      auto& acc = task_loss[example.task];
      acc.first += loss_val;
      ++acc.second;
    }
    epoch_tokens += static_cast<int64_t>(tokens.size());
    tm.tokens.Add(static_cast<int64_t>(tokens.size()));
    ++count;
    ++in_batch;
    if (in_batch == options_.batch_size || pos + 1 == total_examples) {
      // Average the accumulated gradients over the batch.
      float inv = 1.0f / static_cast<float>(in_batch);
      for (core::Parameter* p : model_->params().All()) {
        for (int64_t i = 0; i < p->grad.size(); ++i) p->grad.at(i) *= inv;
      }
      float batch_mean =
          static_cast<float>(batch_loss_sum / static_cast<double>(in_batch));
      float grad_norm = 0.0f;
      if (options_.clip_norm > 0.0f) {
        grad_norm = optimizer_.ClipGradNorm(options_.clip_norm);
      }
      // Numeric health, checked before the poisoned gradients can reach
      // the parameters or the optimizer moments.
      health_.NoteStep(step_);
      if (!health_.Healthy(batch_mean, grad_norm)) {
        health_.OnUnhealthy(batch_mean, grad_norm, has_checkpoint_);
        Rollback();
        return batch_mean;  // epoch abandoned; caller re-runs it
      }
      float lr = CurrentLr();
      optimizer_.Step(lr);
      model_->params().ZeroGrad();
      step_losses_.push_back(batch_mean);
      batch_loss_sum = 0.0;
      in_batch = 0;
      ++step_;
      double now_us = obs::NowMicros();
      tm.step_time_ms.Observe((now_us - step_start_us) / 1000.0);
      step_start_us = now_us;
      tm.steps.Increment();
      tm.grad_norm.Set(grad_norm);
      tm.lr.Set(lr);
      if (CheckpointingEnabled() && options_.ckpt_every > 0 &&
          step_ % options_.ckpt_every == 0 && pos + 1 < total_examples) {
        SaveCheckpointImpl(order, pos + 1, total_loss, count);
      }
      if (options_.stop_after_step > 0 && step_ >= options_.stop_after_step) {
        stop_requested_ = true;
        ++pos;
        break;
      }
    }
  }
  if (stop_requested_ && pos < total_examples) {
    // Simulated mid-epoch kill: record nothing, exactly like a real crash.
    return static_cast<float>(total_loss / std::max<int64_t>(1, count));
  }
  float mean = static_cast<float>(total_loss / std::max<int64_t>(1, count));
  tm.loss.Set(mean);
  double epoch_s = epoch_span.ElapsedMs() / 1000.0;
  if (epoch_s > 0.0) {
    tm.tokens_per_sec.Set(static_cast<double>(epoch_tokens) / epoch_s);
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  for (const auto& kv : task_loss) {
    registry.GetGauge("lcrec.llm.train.loss." + kv.first)
        .Set(kv.second.first / static_cast<double>(kv.second.second));
  }
  epoch_losses_.push_back(mean);
  ++epochs_done_;
  if (CheckpointingEnabled()) SaveCheckpoint();
  return mean;
}

float LlmTrainer::Train(const std::vector<TrainExample>& examples) {
  obs::DebugServer::MaybeStartFromEnv();
  int64_t updates_per_epoch =
      (static_cast<int64_t>(examples.size()) + options_.batch_size - 1) /
      options_.batch_size;
  total_steps_ = updates_per_epoch * options_.epochs;
  if (options_.resume) TryResume();
  float last = epoch_losses_.empty() ? 0.0f : epoch_losses_.back();
  while (epochs_done_ < options_.epochs && !stop_requested_) {
    float mean = TrainEpoch(examples);
    if (rolled_back_) continue;  // re-run from the restored state
    if (stop_requested_) break;
    last = mean;
    if (options_.verbose || obs::LogEnabled(obs::LogLevel::kInfo)) {
      obs::LogRaw(obs::LogLevel::kInfo,
                  "[llm] epoch %lld/%d loss %.4f lr %.2e",
                  static_cast<long long>(epochs_done_), options_.epochs,
                  static_cast<double>(last),
                  static_cast<double>(CurrentLr()));
    }
  }
  return last;
}

float LlmTrainer::EvalLoss(const std::vector<TrainExample>& examples) {
  obs::ScopedSpan span("llm.eval_loss");
  double total = 0.0;
  std::vector<int> tokens, targets;
  for (const TrainExample& ex : examples) {
    AssembleTokens(ex, model_->config().max_seq, &tokens, &targets);
    core::Graph g;
    core::VarId loss = model_->BuildLoss(g, tokens, targets, /*train=*/false);
    total += g.val(loss).item();
  }
  return static_cast<float>(total / std::max<size_t>(1, examples.size()));
}

}  // namespace lcrec::llm

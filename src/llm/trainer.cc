#include "llm/trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "core/check.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "text/vocab.h"

namespace lcrec::llm {

namespace {

/// Cached metric handles for the training loop (lcrec.llm.train.*).
/// Resolved once; afterwards every update is a relaxed atomic op.
struct TrainMetrics {
  obs::Histogram& step_time_ms;
  obs::Counter& steps;
  obs::Counter& tokens;
  obs::Gauge& loss;
  obs::Gauge& grad_norm;
  obs::Gauge& lr;
  obs::Gauge& tokens_per_sec;

  static TrainMetrics& Get() {
    static TrainMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      return new TrainMetrics{
          r.GetHistogram("lcrec.llm.train.step_time_ms",
                         obs::Histogram::ExponentialBounds(0.05, 1.6, 28)),
          r.GetCounter("lcrec.llm.train.steps"),
          r.GetCounter("lcrec.llm.train.tokens"),
          r.GetGauge("lcrec.llm.train.loss"),
          r.GetGauge("lcrec.llm.train.grad_norm"),
          r.GetGauge("lcrec.llm.train.lr"),
          r.GetGauge("lcrec.llm.train.tokens_per_sec"),
      };
    }();
    return *m;
  }
};

}  // namespace

LlmTrainer::LlmTrainer(MiniLlm* model, const TrainerOptions& options)
    : model_(model),
      options_(options),
      rng_(options.seed),
      optimizer_(model->params().All(), 0.9f, 0.999f, 1e-8f,
                 options.weight_decay) {}

void LlmTrainer::AssembleTokens(const TrainExample& example, int max_seq,
                                std::vector<int>* tokens,
                                std::vector<int>* targets) {
  // Budget: 1 (<bos>) + prompt + response + 1 (<eos>) <= max_seq.
  int response_len = static_cast<int>(example.response.size());
  int budget = max_seq - 2 - response_len;
  // A non-positive budget means the response alone exceeds the window.
  LCREC_CHECK_GT(budget, 0);
  int prompt_len = static_cast<int>(example.prompt.size());
  int keep = std::min(prompt_len, budget);
  tokens->clear();
  tokens->push_back(text::Vocabulary::kBos);
  tokens->insert(tokens->end(), example.prompt.end() - keep,
                 example.prompt.end());
  int response_start = static_cast<int>(tokens->size());
  tokens->insert(tokens->end(), example.response.begin(),
                 example.response.end());
  tokens->push_back(text::Vocabulary::kEos);

  int n = static_cast<int>(tokens->size());
  targets->assign(n, core::Graph::kIgnore);
  // Position i predicts token i+1; supervise predictions of the response
  // tokens and the final <eos>.
  for (int i = response_start - 1; i < n - 1; ++i) {
    (*targets)[i] = (*tokens)[i + 1];
  }
}

float LlmTrainer::CurrentLr() const {
  if (total_steps_ <= 0) return options_.learning_rate;
  core::CosineSchedule sched(
      options_.learning_rate,
      static_cast<int64_t>(options_.warmup_fraction *
                           static_cast<float>(total_steps_)),
      total_steps_);
  return sched.LrAt(step_);
}

float LlmTrainer::TrainEpoch(const std::vector<TrainExample>& examples) {
  obs::ScopedSpan epoch_span("llm.train_epoch");
  TrainMetrics& tm = TrainMetrics::Get();

  std::vector<int64_t> order(examples.size());
  std::iota(order.begin(), order.end(), 0);
  rng_.Shuffle(order);

  double total_loss = 0.0;
  int64_t count = 0;
  int in_batch = 0;
  int64_t epoch_tokens = 0;
  // Per-task loss accumulators (Eq. 7 sums the NLL over the alignment
  // task mixture; this resolves which tasks dominate it).
  std::unordered_map<std::string, std::pair<double, int64_t>> task_loss;
  model_->params().ZeroGrad();
  std::vector<int> tokens, targets;
  double step_start_us = obs::NowMicros();
  for (int64_t idx : order) {
    const TrainExample& example = examples[idx];
    AssembleTokens(example, model_->config().max_seq, &tokens, &targets);
    core::Graph g;
    core::VarId loss = model_->BuildLoss(g, tokens, targets, /*train=*/true);
    g.Backward(loss);
    float loss_val = g.val(loss).item();
    total_loss += loss_val;
    if (!example.task.empty()) {
      auto& acc = task_loss[example.task];
      acc.first += loss_val;
      ++acc.second;
    }
    epoch_tokens += static_cast<int64_t>(tokens.size());
    tm.tokens.Add(static_cast<int64_t>(tokens.size()));
    ++count;
    ++in_batch;
    if (in_batch == options_.batch_size || count == static_cast<int64_t>(order.size())) {
      // Average the accumulated gradients over the batch.
      float inv = 1.0f / static_cast<float>(in_batch);
      for (core::Parameter* p : model_->params().All()) {
        for (int64_t i = 0; i < p->grad.size(); ++i) p->grad.at(i) *= inv;
      }
      float grad_norm = 0.0f;
      if (options_.clip_norm > 0.0f) {
        grad_norm = optimizer_.ClipGradNorm(options_.clip_norm);
      }
      float lr = CurrentLr();
      optimizer_.Step(lr);
      model_->params().ZeroGrad();
      in_batch = 0;
      ++step_;
      double now_us = obs::NowMicros();
      tm.step_time_ms.Observe((now_us - step_start_us) / 1000.0);
      step_start_us = now_us;
      tm.steps.Increment();
      tm.grad_norm.Set(grad_norm);
      tm.lr.Set(lr);
    }
  }
  float mean = static_cast<float>(total_loss / std::max<int64_t>(1, count));
  tm.loss.Set(mean);
  double epoch_s = epoch_span.ElapsedMs() / 1000.0;
  if (epoch_s > 0.0) {
    tm.tokens_per_sec.Set(static_cast<double>(epoch_tokens) / epoch_s);
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  for (const auto& kv : task_loss) {
    registry.GetGauge("lcrec.llm.train.loss." + kv.first)
        .Set(kv.second.first / static_cast<double>(kv.second.second));
  }
  epoch_losses_.push_back(mean);
  return mean;
}

float LlmTrainer::Train(const std::vector<TrainExample>& examples) {
  int64_t updates_per_epoch =
      (static_cast<int64_t>(examples.size()) + options_.batch_size - 1) /
      options_.batch_size;
  total_steps_ = updates_per_epoch * options_.epochs;
  float last = 0.0f;
  for (int e = 0; e < options_.epochs; ++e) {
    last = TrainEpoch(examples);
    if (options_.verbose || obs::LogEnabled(obs::LogLevel::kInfo)) {
      obs::LogRaw(obs::LogLevel::kInfo, "[llm] epoch %d/%d loss %.4f lr %.2e",
                  e + 1, options_.epochs, static_cast<double>(last),
                  static_cast<double>(CurrentLr()));
    }
  }
  return last;
}

float LlmTrainer::EvalLoss(const std::vector<TrainExample>& examples) {
  obs::ScopedSpan span("llm.eval_loss");
  double total = 0.0;
  std::vector<int> tokens, targets;
  for (const TrainExample& ex : examples) {
    AssembleTokens(ex, model_->config().max_seq, &tokens, &targets);
    core::Graph g;
    core::VarId loss = model_->BuildLoss(g, tokens, targets, /*train=*/false);
    total += g.val(loss).item();
  }
  return static_cast<float>(total / std::max<size_t>(1, examples.size()));
}

}  // namespace lcrec::llm

#ifndef LCREC_LLM_MINILLM_H_
#define LCREC_LLM_MINILLM_H_

#include <memory>
#include <vector>

#include "core/graph.h"
#include "core/rng.h"
#include "core/tensor.h"

namespace lcrec::llm {

struct MiniLlmConfig {
  int vocab_size = 0;   // set after the tokenizer (text + index tokens)
  int d_model = 48;
  int n_heads = 4;
  int n_layers = 2;
  int d_ff = 128;
  int max_seq = 192;
  float dropout = 0.0f;
  uint64_t seed = 23;
};

/// Decoder-only Transformer language model, the stand-in for the paper's
/// LLaMA-7B backbone. Architecture follows LLaMA's recipe at small scale:
/// pre-RMSNorm, multi-head causal self-attention, SwiGLU feed-forward,
/// learned absolute positions, and weight tying between the input
/// embedding and the output projection (so item-index token embeddings —
/// the ones visualized in Figure 4 — receive gradient from both sides).
class MiniLlm {
 public:
  explicit MiniLlm(const MiniLlmConfig& config);

  MiniLlm(const MiniLlm&) = delete;
  MiniLlm& operator=(const MiniLlm&) = delete;

  /// Builds the training graph for one token sequence and returns the
  /// scalar NLL loss var (Eq. 7). `targets[i]` is the token to predict at
  /// position i (usually tokens[i+1]) or Graph::kIgnore.
  core::VarId BuildLoss(core::Graph& g, const std::vector<int>& tokens,
                        const std::vector<int>& targets, bool train);

  /// Autograd forward producing logits [T, vocab] (used by tests and by
  /// BuildLoss).
  core::VarId BuildLogits(core::Graph& g, const std::vector<int>& tokens,
                          bool train);

  /// Incremental-decoding cache: per-layer K/V rows appended per token.
  struct KvCache {
    int length = 0;
    std::vector<std::vector<float>> k;  // [layer][length * d_model]
    std::vector<std::vector<float>> v;
  };

  KvCache MakeCache() const;

  /// Plain (non-autograd) forward of `tokens` continuing `cache`; returns
  /// the logits of every fed position as a [n, vocab] tensor when
  /// `all_logits`, else only the last position as [1, vocab]. Must match
  /// BuildLogits exactly (asserted in tests).
  core::Tensor Forward(KvCache& cache, const std::vector<int>& tokens,
                       bool all_logits = false) const;

  /// Batched decode: advances every lane's cache by its token list and
  /// returns one [1, vocab] logits tensor per lane (the logits after that
  /// lane's last fed token). Lanes may have different lengths (ragged
  /// prefill next to single-token decode); processing is step-synchronous,
  /// so the weight matrices are traversed once per step for all lanes
  /// instead of once per lane. The per-lane arithmetic keeps the exact
  /// accumulation order of Forward(), so a lane's logits are bit-identical
  /// to running it alone (asserted in tests; the serving layer relies on
  /// batched == sequential results).
  std::vector<core::Tensor> ForwardBatch(
      const std::vector<KvCache*>& caches,
      const std::vector<std::vector<int>>& tokens) const;

  /// Token embedding matrix [vocab, d_model] (tied with output head).
  const core::Tensor& TokenEmbeddings() const { return tok_emb_->value; }

  core::ParamStore& params() { return store_; }
  /// Dropout rng — checkpointed by the trainer so resumed runs replay the
  /// same dropout masks.
  core::Rng& rng() { return rng_; }
  const MiniLlmConfig& config() const { return config_; }
  int64_t NumParameters() const { return store_.TotalSize(); }

 private:
  struct Layer {
    core::Parameter* attn_norm;
    core::Parameter* wq;
    core::Parameter* wk;
    core::Parameter* wv;
    core::Parameter* wo;
    core::Parameter* ffn_norm;
    core::Parameter* w1;  // SwiGLU gate
    core::Parameter* w3;  // SwiGLU up
    core::Parameter* w2;  // SwiGLU down
  };

  MiniLlmConfig config_;
  core::Rng rng_;
  core::ParamStore store_;
  core::Parameter* tok_emb_;
  core::Parameter* pos_emb_;
  core::Parameter* final_norm_;
  std::vector<Layer> layers_;
};

}  // namespace lcrec::llm

#endif  // LCREC_LLM_MINILLM_H_

#include "llm/generate.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace lcrec::llm {

namespace {

/// Cached metric handles for constrained decoding (lcrec.llm.gen.*).
struct GenMetrics {
  obs::Histogram& latency_ms;
  obs::Counter& queries;
  obs::Counter& trie_mask_hits;   // (beam, code) expansions the trie allowed
  obs::Counter& beam_pruned;      // candidates dropped by the beam cap
  obs::Counter& token_forwards;   // single-token model forwards

  static GenMetrics& Get() {
    static GenMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      return new GenMetrics{
          r.GetHistogram("lcrec.llm.gen.latency_ms",
                         obs::Histogram::ExponentialBounds(0.1, 1.6, 28)),
          r.GetCounter("lcrec.llm.gen.queries"),
          r.GetCounter("lcrec.llm.gen.trie_mask_hits"),
          r.GetCounter("lcrec.llm.gen.beam_pruned"),
          r.GetCounter("lcrec.llm.gen.token_forwards"),
      };
    }();
    return *m;
  }
};

}  // namespace

float LogSumExp(const core::Tensor& logits) {
  int64_t n = logits.size();
  float mx = logits.at(0);
  for (int64_t i = 1; i < n; ++i) mx = std::max(mx, logits.at(i));
  double z = 0.0;
  for (int64_t i = 0; i < n; ++i) z += std::exp(logits.at(i) - mx);
  return mx + static_cast<float>(std::log(z));
}

IndexTokenMap::IndexTokenMap(const quant::ItemIndexing& indexing,
                             const text::Vocabulary& vocab) {
  for (int item = 0; item < indexing.num_items(); ++item) {
    const auto& codes = indexing.codes(item);
    if (maps_.size() < codes.size()) maps_.resize(codes.size());
    for (size_t level = 0; level < codes.size(); ++level) {
      std::string tok = quant::ItemIndexing::TokenString(
          static_cast<int>(level), codes[level]);
      // Index tokens must be in the vocabulary.
      LCREC_CHECK(vocab.Contains(tok));
      maps_[level][codes[level]] = vocab.Id(tok);
    }
  }
}

int IndexTokenMap::TokenId(int level, int code) const {
  if (level < 0 || level >= static_cast<int>(maps_.size())) return -1;
  auto it = maps_[level].find(code);
  return it == maps_[level].end() ? -1 : it->second;
}

std::vector<int> IndexTokenMap::ItemTokenIds(
    const quant::ItemIndexing& indexing, int item) const {
  const auto& codes = indexing.codes(item);
  std::vector<int> out;
  out.reserve(codes.size());
  for (size_t level = 0; level < codes.size(); ++level) {
    int id = TokenId(static_cast<int>(level), codes[level]);
    LCREC_CHECK_GE(id, 0);
    out.push_back(id);
  }
  return out;
}

std::vector<ScoredItem> GenerateItems(const MiniLlm& model,
                                      const std::vector<int>& prompt,
                                      const quant::PrefixTrie& trie,
                                      const IndexTokenMap& token_map,
                                      int beam_size, int top_n) {
  LCREC_CHECK(!prompt.empty());
  obs::ScopedSpan span("llm.generate_items");
  GenMetrics& gm = GenMetrics::Get();
  struct Beam {
    std::vector<int> codes;
    float logp = 0.0f;
    MiniLlm::KvCache cache;
    core::Tensor logits;  // [1, vocab] after the last fed token
  };

  Beam root;
  root.cache = model.MakeCache();
  root.logits = model.Forward(root.cache, prompt);
  std::vector<Beam> active;
  active.push_back(std::move(root));
  std::vector<ScoredItem> done;

  int max_depth = token_map.levels();
  for (int depth = 0; depth < max_depth && !active.empty(); ++depth) {
    std::vector<BeamCandidate> candidates;
    for (size_t b = 0; b < active.size(); ++b) {
      Beam& beam = active[b];
      std::vector<int> next = trie.NextCodes(beam.codes);
      if (next.empty()) continue;  // defensive; completed beams are removed
      float lse = LogSumExp(beam.logits);
      int level = static_cast<int>(beam.codes.size());
      for (int code : next) {
        int tok = token_map.TokenId(level, code);
        if (tok < 0) continue;
        float lp = beam.logp + (beam.logits.at(tok) - lse);
        candidates.push_back({static_cast<int>(b), code, tok, lp});
      }
    }
    gm.trie_mask_hits.Add(static_cast<int64_t>(candidates.size()));
    std::sort(candidates.begin(), candidates.end(), BeamCandidateOrder);
    if (static_cast<int>(candidates.size()) > beam_size) {
      gm.beam_pruned.Add(static_cast<int64_t>(candidates.size()) - beam_size);
      candidates.resize(beam_size);
    }
    std::vector<Beam> next_active;
    next_active.reserve(candidates.size());
    for (const BeamCandidate& c : candidates) {
      Beam child;
      child.codes = active[c.beam].codes;
      child.codes.push_back(c.code);
      child.logp = c.logp;
      child.cache = active[c.beam].cache;  // copy
      child.logits = model.Forward(child.cache, {c.token});
      gm.token_forwards.Increment();
      int item = trie.ItemAt(child.codes);
      if (item >= 0 && trie.NextCodes(child.codes).empty()) {
        done.push_back({item, child.logp});
      } else {
        next_active.push_back(std::move(child));
      }
    }
    active = std::move(next_active);
  }
  std::sort(done.begin(), done.end(), ScoredItemOrder);
  if (static_cast<int>(done.size()) > top_n) done.resize(top_n);
  gm.queries.Increment();
  gm.latency_ms.Observe(span.ElapsedMs());
  return done;
}

float ScoreContinuation(const MiniLlm& model, const std::vector<int>& prompt,
                        const std::vector<int>& continuation) {
  LCREC_CHECK(!prompt.empty());
  LCREC_CHECK(!continuation.empty());
  MiniLlm::KvCache cache = model.MakeCache();
  core::Tensor logits = model.Forward(cache, prompt);
  float total = 0.0f;
  for (size_t i = 0; i < continuation.size(); ++i) {
    total += logits.at(continuation[i]) - LogSumExp(logits);
    if (i + 1 < continuation.size()) {
      logits = model.Forward(cache, {continuation[i]});
    }
  }
  return total;
}

std::vector<int> GenerateText(const MiniLlm& model,
                              const std::vector<int>& prompt, int max_new,
                              int eos_id) {
  LCREC_CHECK(!prompt.empty());
  MiniLlm::KvCache cache = model.MakeCache();
  core::Tensor logits = model.Forward(cache, prompt);
  std::vector<int> out;
  for (int step = 0; step < max_new; ++step) {
    int best = 0;
    for (int64_t i = 1; i < logits.size(); ++i) {
      if (logits.at(i) > logits.at(best)) best = static_cast<int>(i);
    }
    if (best == eos_id) break;
    out.push_back(best);
    if (step + 1 < max_new && cache.length + 1 <= model.config().max_seq) {
      logits = model.Forward(cache, {best});
    } else {
      break;
    }
  }
  return out;
}

}  // namespace lcrec::llm

#include "llm/minillm.h"

#include <cmath>
#include <cstring>

#include "core/check.h"
#include "obs/flops.h"
#include "obs/trace.h"

namespace lcrec::llm {

MiniLlm::MiniLlm(const MiniLlmConfig& config)
    : config_(config), rng_(config.seed) {
  LCREC_CHECK_GT(config_.vocab_size, 0);
  LCREC_CHECK_EQ(config_.d_model % config_.n_heads, 0);
  int d = config_.d_model, ff = config_.d_ff;
  auto init = [&](int fan_in, std::vector<int64_t> shape) {
    return rng_.GaussianTensor(std::move(shape), 1.0 / std::sqrt(fan_in));
  };
  tok_emb_ = store_.Create("tok_emb",
                           rng_.GaussianTensor({config_.vocab_size, d}, 0.02));
  pos_emb_ =
      store_.Create("pos_emb", rng_.GaussianTensor({config_.max_seq, d}, 0.02));
  final_norm_ = store_.Create("final_norm", core::Tensor::Ones({d}));
  for (int l = 0; l < config_.n_layers; ++l) {
    std::string p = "layer" + std::to_string(l) + ".";
    Layer layer;
    layer.attn_norm = store_.Create(p + "attn_norm", core::Tensor::Ones({d}));
    layer.wq = store_.Create(p + "wq", init(d, {d, d}));
    layer.wk = store_.Create(p + "wk", init(d, {d, d}));
    layer.wv = store_.Create(p + "wv", init(d, {d, d}));
    layer.wo = store_.Create(p + "wo", init(d, {d, d}));
    layer.ffn_norm = store_.Create(p + "ffn_norm", core::Tensor::Ones({d}));
    layer.w1 = store_.Create(p + "w1", init(d, {d, ff}));
    layer.w3 = store_.Create(p + "w3", init(d, {d, ff}));
    layer.w2 = store_.Create(p + "w2", init(ff, {ff, d}));
    layers_.push_back(layer);
  }
}

core::VarId MiniLlm::BuildLogits(core::Graph& g,
                                 const std::vector<int>& tokens, bool train) {
  int t = static_cast<int>(tokens.size());
  LCREC_CHECK_GT(t, 0);
  LCREC_CHECK_LE(t, config_.max_seq);
  int heads = config_.n_heads;
  int dh = config_.d_model / heads;
  float scale = 1.0f / std::sqrt(static_cast<float>(dh));

  core::VarId emb_table = g.Param(tok_emb_);
  std::vector<int> positions(t);
  for (int i = 0; i < t; ++i) positions[i] = i;
  core::VarId x = g.Add(g.Rows(emb_table, tokens),
                        g.Rows(g.Param(pos_emb_), positions));
  for (const Layer& layer : layers_) {
    core::VarId xn = g.RmsNorm(x, g.Param(layer.attn_norm));
    core::VarId q = g.MatMul(xn, g.Param(layer.wq));
    core::VarId k = g.MatMul(xn, g.Param(layer.wk));
    core::VarId v = g.MatMul(xn, g.Param(layer.wv));
    std::vector<core::VarId> head_outs;
    head_outs.reserve(heads);
    for (int h = 0; h < heads; ++h) {
      core::VarId qh = g.SliceCols(q, h * dh, (h + 1) * dh);
      core::VarId kh = g.SliceCols(k, h * dh, (h + 1) * dh);
      core::VarId vh = g.SliceCols(v, h * dh, (h + 1) * dh);
      core::VarId scores = g.Scale(g.MatMulNT(qh, kh), scale);
      core::VarId probs = g.CausalSoftmax(scores);
      if (train && config_.dropout > 0.0f) {
        probs = g.Dropout(probs, config_.dropout, rng_, train);
      }
      head_outs.push_back(g.MatMul(probs, vh));
    }
    core::VarId attn = g.MatMul(g.ConcatCols(head_outs), g.Param(layer.wo));
    x = g.Add(x, attn);
    core::VarId fn = g.RmsNorm(x, g.Param(layer.ffn_norm));
    core::VarId gate = g.Silu(g.MatMul(fn, g.Param(layer.w1)));
    core::VarId up = g.MatMul(fn, g.Param(layer.w3));
    core::VarId ffn = g.MatMul(g.Mul(gate, up), g.Param(layer.w2));
    x = g.Add(x, ffn);
  }
  core::VarId xf = g.RmsNorm(x, g.Param(final_norm_));
  // Weight-tied output head: logits = X_f * E^T.
  return g.MatMulNT(xf, emb_table);
}

core::VarId MiniLlm::BuildLoss(core::Graph& g, const std::vector<int>& tokens,
                               const std::vector<int>& targets, bool train) {
  LCREC_CHECK_EQ(tokens.size(), targets.size());
  core::VarId logits = BuildLogits(g, tokens, train);
  return g.SoftmaxCrossEntropy(logits, targets);
}

MiniLlm::KvCache MiniLlm::MakeCache() const {
  KvCache cache;
  cache.k.resize(config_.n_layers);
  cache.v.resize(config_.n_layers);
  return cache;
}

namespace {

// y[n] = x[d] * W[d, n]
void VecMat(const float* x, const core::Tensor& w, float* y) {
  int64_t d = w.rows(), n = w.cols();
  std::memset(y, 0, sizeof(float) * static_cast<size_t>(n));
  for (int64_t p = 0; p < d; ++p) {
    float xp = x[p];
    if (xp == 0.0f) continue;
    const float* wp = w.data() + p * n;
    for (int64_t j = 0; j < n; ++j) y[j] += xp * wp[j];
  }
}

void RmsNormVec(const float* x, const core::Tensor& gamma, int d, float* y) {
  float ss = 0.0f;
  for (int i = 0; i < d; ++i) ss += x[i] * x[i];
  float ir = 1.0f / std::sqrt(ss / static_cast<float>(d) + 1e-6f);
  for (int i = 0; i < d; ++i) y[i] = x[i] * ir * gamma.at(i);
}

}  // namespace

core::Tensor MiniLlm::Forward(KvCache& cache, const std::vector<int>& tokens,
                              bool all_logits) const {
  int d = config_.d_model, heads = config_.n_heads;
  int dh = d / heads;
  float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  int n_new = static_cast<int>(tokens.size());
  LCREC_CHECK_GT(n_new, 0);
  LCREC_CHECK_LE(cache.length + n_new, config_.max_seq);
  int vocab = config_.vocab_size;
  core::Tensor out({all_logits ? n_new : 1, vocab});
  obs::ScopedSpan span("llm.decode");
  // Analytic cost, accumulated over the call: per token and layer the
  // four d*d projections (8d^2), attention over the cached context
  // (4*ctx*d), and the SwiGLU FFN (6*d*ff); plus 2*d*vocab per emitted
  // logit row. Hand-rolled loops below, so no kernel counts itself.
  int64_t acc_flops = 0, acc_bytes = 0;

  std::vector<float> x(d), xn(d), q(d), kvec(d), vvec(d), attn(d), proj(d);
  std::vector<float> gate(config_.d_ff), up(config_.d_ff), down(d);

  for (int idx = 0; idx < n_new; ++idx) {
    int tok = tokens[idx];
    int pos = cache.length;
    LCREC_CHECK_GE(tok, 0);
    LCREC_CHECK_LT(tok, vocab);
    for (int i = 0; i < d; ++i) {
      x[i] = tok_emb_->value.at(static_cast<int64_t>(tok) * d + i) +
             pos_emb_->value.at(static_cast<int64_t>(pos) * d + i);
    }
    for (int l = 0; l < config_.n_layers; ++l) {
      const Layer& layer = layers_[l];
      RmsNormVec(x.data(), layer.attn_norm->value, d, xn.data());
      VecMat(xn.data(), layer.wq->value, q.data());
      VecMat(xn.data(), layer.wk->value, kvec.data());
      VecMat(xn.data(), layer.wv->value, vvec.data());
      cache.k[l].insert(cache.k[l].end(), kvec.begin(), kvec.end());
      cache.v[l].insert(cache.v[l].end(), vvec.begin(), vvec.end());
      int ctx = pos + 1;  // rows available in the cache for this layer
      const float* kc = cache.k[l].data();
      const float* vc = cache.v[l].data();
      for (int h = 0; h < heads; ++h) {
        const float* qh = q.data() + h * dh;
        // Scores over all cached positions for this head.
        std::vector<float> s(ctx);
        float mx = -1e30f;
        for (int t = 0; t < ctx; ++t) {
          const float* kh = kc + static_cast<int64_t>(t) * d + h * dh;
          float dot = 0.0f;
          for (int c = 0; c < dh; ++c) dot += qh[c] * kh[c];
          s[t] = dot * scale;
          mx = std::max(mx, s[t]);
        }
        float z = 0.0f;
        for (int t = 0; t < ctx; ++t) {
          s[t] = std::exp(s[t] - mx);
          z += s[t];
        }
        float* ah = attn.data() + h * dh;
        std::memset(ah, 0, sizeof(float) * static_cast<size_t>(dh));
        for (int t = 0; t < ctx; ++t) {
          float w = s[t] / z;
          const float* vh = vc + static_cast<int64_t>(t) * d + h * dh;
          for (int c = 0; c < dh; ++c) ah[c] += w * vh[c];
        }
      }
      VecMat(attn.data(), layer.wo->value, proj.data());
      for (int i = 0; i < d; ++i) x[i] += proj[i];
      RmsNormVec(x.data(), layer.ffn_norm->value, d, xn.data());
      VecMat(xn.data(), layer.w1->value, gate.data());
      VecMat(xn.data(), layer.w3->value, up.data());
      for (int i = 0; i < config_.d_ff; ++i) {
        float g = gate[i];
        gate[i] = g / (1.0f + std::exp(-g)) * up[i];
      }
      VecMat(gate.data(), layer.w2->value, down.data());
      for (int i = 0; i < d; ++i) x[i] += down[i];
      acc_flops += 8LL * d * d + 4LL * ctx * d + 6LL * d * config_.d_ff;
      acc_bytes += 4LL * (4LL * d * d + 3LL * d * config_.d_ff +
                          2LL * ctx * d);
    }
    ++cache.length;
    bool want = all_logits || idx == n_new - 1;
    if (want) {
      RmsNormVec(x.data(), final_norm_->value, d, xn.data());
      int64_t row = all_logits ? idx : 0;
      const core::Tensor& e = tok_emb_->value;
      for (int vtok = 0; vtok < vocab; ++vtok) {
        float dot = 0.0f;
        const float* ev = e.data() + static_cast<int64_t>(vtok) * d;
        for (int i = 0; i < d; ++i) dot += xn[i] * ev[i];
        out.at(row * vocab + vtok) = dot;
      }
      acc_flops += 2LL * d * vocab;
      acc_bytes += 4LL * d * vocab;
    }
  }
  static obs::KernelFlops kf("llm.decode");
  kf.Add(acc_flops, acc_bytes);
  return out;
}

}  // namespace lcrec::llm

#include "llm/minillm.h"

#include <cmath>
#include <cstring>

#include "core/check.h"
#include "obs/flops.h"
#include "obs/trace.h"

namespace lcrec::llm {

MiniLlm::MiniLlm(const MiniLlmConfig& config)
    : config_(config), rng_(config.seed) {
  LCREC_CHECK_GT(config_.vocab_size, 0);
  LCREC_CHECK_EQ(config_.d_model % config_.n_heads, 0);
  int d = config_.d_model, ff = config_.d_ff;
  auto init = [&](int fan_in, std::vector<int64_t> shape) {
    return rng_.GaussianTensor(std::move(shape), 1.0 / std::sqrt(fan_in));
  };
  tok_emb_ = store_.Create("tok_emb",
                           rng_.GaussianTensor({config_.vocab_size, d}, 0.02));
  pos_emb_ =
      store_.Create("pos_emb", rng_.GaussianTensor({config_.max_seq, d}, 0.02));
  final_norm_ = store_.Create("final_norm", core::Tensor::Ones({d}));
  for (int l = 0; l < config_.n_layers; ++l) {
    std::string p = "layer" + std::to_string(l) + ".";
    Layer layer;
    layer.attn_norm = store_.Create(p + "attn_norm", core::Tensor::Ones({d}));
    layer.wq = store_.Create(p + "wq", init(d, {d, d}));
    layer.wk = store_.Create(p + "wk", init(d, {d, d}));
    layer.wv = store_.Create(p + "wv", init(d, {d, d}));
    layer.wo = store_.Create(p + "wo", init(d, {d, d}));
    layer.ffn_norm = store_.Create(p + "ffn_norm", core::Tensor::Ones({d}));
    layer.w1 = store_.Create(p + "w1", init(d, {d, ff}));
    layer.w3 = store_.Create(p + "w3", init(d, {d, ff}));
    layer.w2 = store_.Create(p + "w2", init(ff, {ff, d}));
    layers_.push_back(layer);
  }
}

core::VarId MiniLlm::BuildLogits(core::Graph& g,
                                 const std::vector<int>& tokens, bool train) {
  int t = static_cast<int>(tokens.size());
  LCREC_CHECK_GT(t, 0);
  LCREC_CHECK_LE(t, config_.max_seq);
  int heads = config_.n_heads;
  int dh = config_.d_model / heads;
  float scale = 1.0f / std::sqrt(static_cast<float>(dh));

  core::VarId emb_table = g.Param(tok_emb_);
  std::vector<int> positions(t);
  for (int i = 0; i < t; ++i) positions[i] = i;
  core::VarId x = g.Add(g.Rows(emb_table, tokens),
                        g.Rows(g.Param(pos_emb_), positions));
  for (const Layer& layer : layers_) {
    core::VarId xn = g.RmsNorm(x, g.Param(layer.attn_norm));
    core::VarId q = g.MatMul(xn, g.Param(layer.wq));
    core::VarId k = g.MatMul(xn, g.Param(layer.wk));
    core::VarId v = g.MatMul(xn, g.Param(layer.wv));
    std::vector<core::VarId> head_outs;
    head_outs.reserve(heads);
    for (int h = 0; h < heads; ++h) {
      core::VarId qh = g.SliceCols(q, h * dh, (h + 1) * dh);
      core::VarId kh = g.SliceCols(k, h * dh, (h + 1) * dh);
      core::VarId vh = g.SliceCols(v, h * dh, (h + 1) * dh);
      core::VarId scores = g.Scale(g.MatMulNT(qh, kh), scale);
      core::VarId probs = g.CausalSoftmax(scores);
      if (train && config_.dropout > 0.0f) {
        probs = g.Dropout(probs, config_.dropout, rng_, train);
      }
      head_outs.push_back(g.MatMul(probs, vh));
    }
    core::VarId attn = g.MatMul(g.ConcatCols(head_outs), g.Param(layer.wo));
    x = g.Add(x, attn);
    core::VarId fn = g.RmsNorm(x, g.Param(layer.ffn_norm));
    core::VarId gate = g.Silu(g.MatMul(fn, g.Param(layer.w1)));
    core::VarId up = g.MatMul(fn, g.Param(layer.w3));
    core::VarId ffn = g.MatMul(g.Mul(gate, up), g.Param(layer.w2));
    x = g.Add(x, ffn);
  }
  core::VarId xf = g.RmsNorm(x, g.Param(final_norm_));
  // Weight-tied output head: logits = X_f * E^T.
  return g.MatMulNT(xf, emb_table);
}

core::VarId MiniLlm::BuildLoss(core::Graph& g, const std::vector<int>& tokens,
                               const std::vector<int>& targets, bool train) {
  LCREC_CHECK_EQ(tokens.size(), targets.size());
  core::VarId logits = BuildLogits(g, tokens, train);
  return g.SoftmaxCrossEntropy(logits, targets);
}

MiniLlm::KvCache MiniLlm::MakeCache() const {
  KvCache cache;
  cache.k.resize(config_.n_layers);
  cache.v.resize(config_.n_layers);
  return cache;
}

namespace {

// y[n] = x[d] * W[d, n]
void VecMat(const float* x, const core::Tensor& w, float* y) {
  int64_t d = w.rows(), n = w.cols();
  std::memset(y, 0, sizeof(float) * static_cast<size_t>(n));
  for (int64_t p = 0; p < d; ++p) {
    float xp = x[p];
    if (xp == 0.0f) continue;
    const float* wp = w.data() + p * n;
    for (int64_t j = 0; j < n; ++j) y[j] += xp * wp[j];
  }
}

void RmsNormVec(const float* x, const core::Tensor& gamma, int d, float* y) {
  float ss = 0.0f;
  for (int i = 0; i < d; ++i) ss += x[i] * x[i];
  float ir = 1.0f / std::sqrt(ss / static_cast<float>(d) + 1e-6f);
  for (int i = 0; i < d; ++i) y[i] = x[i] * ir * gamma.at(i);
}

/// Multi-head attention of one new token's query `q` against `ctx` cached
/// K/V rows. Shared by the single-lane and batched decode paths so both
/// run identical arithmetic.
void AttendToken(const float* q, const float* kc, const float* vc, int ctx,
                 int heads, int dh, float scale, float* attn) {
  int d = heads * dh;
  for (int h = 0; h < heads; ++h) {
    const float* qh = q + h * dh;
    // Scores over all cached positions for this head.
    std::vector<float> s(static_cast<size_t>(ctx));
    float mx = -1e30f;
    for (int t = 0; t < ctx; ++t) {
      const float* kh = kc + static_cast<int64_t>(t) * d + h * dh;
      float dot = 0.0f;
      for (int c = 0; c < dh; ++c) dot += qh[c] * kh[c];
      s[t] = dot * scale;
      mx = std::max(mx, s[t]);
    }
    float z = 0.0f;
    for (int t = 0; t < ctx; ++t) {
      s[t] = std::exp(s[t] - mx);
      z += s[t];
    }
    float* ah = attn + h * dh;
    std::memset(ah, 0, sizeof(float) * static_cast<size_t>(dh));
    for (int t = 0; t < ctx; ++t) {
      float w = s[t] / z;
      const float* vh = vc + static_cast<int64_t>(t) * d + h * dh;
      for (int c = 0; c < dh; ++c) ah[c] += w * vh[c];
    }
  }
}

/// ys[b][n] = xs[b][d] * W[d, n] for every lane b. Outer loop over W's
/// rows, so each weight row is read once per step for all lanes instead
/// of once per lane (the batching win on a memory-bound decode). Per
/// lane, every ys[b][j] accumulates over p in the same order as VecMat,
/// so the result is bit-identical to lane-at-a-time VecMat calls.
void VecMatBatch(const std::vector<const float*>& xs, const core::Tensor& w,
                 const std::vector<float*>& ys) {
  int64_t d = w.rows(), n = w.cols();
  for (float* y : ys) std::memset(y, 0, sizeof(float) * static_cast<size_t>(n));
  for (int64_t p = 0; p < d; ++p) {
    const float* wp = w.data() + p * n;
    for (size_t b = 0; b < xs.size(); ++b) {
      float xp = xs[b][p];
      if (xp == 0.0f) continue;
      float* y = ys[b];
      for (int64_t j = 0; j < n; ++j) y[j] += xp * wp[j];
    }
  }
}

}  // namespace

core::Tensor MiniLlm::Forward(KvCache& cache, const std::vector<int>& tokens,
                              bool all_logits) const {
  int d = config_.d_model, heads = config_.n_heads;
  int dh = d / heads;
  float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  int n_new = static_cast<int>(tokens.size());
  LCREC_CHECK_GT(n_new, 0);
  LCREC_CHECK_LE(cache.length + n_new, config_.max_seq);
  int vocab = config_.vocab_size;
  core::Tensor out({all_logits ? n_new : 1, vocab});
  obs::ScopedSpan span("llm.decode");
  // Analytic cost, accumulated over the call: per token and layer the
  // four d*d projections (8d^2), attention over the cached context
  // (4*ctx*d), and the SwiGLU FFN (6*d*ff); plus 2*d*vocab per emitted
  // logit row. Hand-rolled loops below, so no kernel counts itself.
  int64_t acc_flops = 0, acc_bytes = 0;

  std::vector<float> x(d), xn(d), q(d), kvec(d), vvec(d), attn(d), proj(d);
  std::vector<float> gate(config_.d_ff), up(config_.d_ff), down(d);

  for (int idx = 0; idx < n_new; ++idx) {
    int tok = tokens[idx];
    int pos = cache.length;
    LCREC_CHECK_GE(tok, 0);
    LCREC_CHECK_LT(tok, vocab);
    for (int i = 0; i < d; ++i) {
      x[i] = tok_emb_->value.at(static_cast<int64_t>(tok) * d + i) +
             pos_emb_->value.at(static_cast<int64_t>(pos) * d + i);
    }
    for (int l = 0; l < config_.n_layers; ++l) {
      const Layer& layer = layers_[l];
      RmsNormVec(x.data(), layer.attn_norm->value, d, xn.data());
      VecMat(xn.data(), layer.wq->value, q.data());
      VecMat(xn.data(), layer.wk->value, kvec.data());
      VecMat(xn.data(), layer.wv->value, vvec.data());
      cache.k[l].insert(cache.k[l].end(), kvec.begin(), kvec.end());
      cache.v[l].insert(cache.v[l].end(), vvec.begin(), vvec.end());
      int ctx = pos + 1;  // rows available in the cache for this layer
      AttendToken(q.data(), cache.k[l].data(), cache.v[l].data(), ctx, heads,
                  dh, scale, attn.data());
      VecMat(attn.data(), layer.wo->value, proj.data());
      for (int i = 0; i < d; ++i) x[i] += proj[i];
      RmsNormVec(x.data(), layer.ffn_norm->value, d, xn.data());
      VecMat(xn.data(), layer.w1->value, gate.data());
      VecMat(xn.data(), layer.w3->value, up.data());
      for (int i = 0; i < config_.d_ff; ++i) {
        float g = gate[i];
        gate[i] = g / (1.0f + std::exp(-g)) * up[i];
      }
      VecMat(gate.data(), layer.w2->value, down.data());
      for (int i = 0; i < d; ++i) x[i] += down[i];
      acc_flops += 8LL * d * d + 4LL * ctx * d + 6LL * d * config_.d_ff;
      acc_bytes += 4LL * (4LL * d * d + 3LL * d * config_.d_ff +
                          2LL * ctx * d);
    }
    ++cache.length;
    bool want = all_logits || idx == n_new - 1;
    if (want) {
      RmsNormVec(x.data(), final_norm_->value, d, xn.data());
      int64_t row = all_logits ? idx : 0;
      const core::Tensor& e = tok_emb_->value;
      for (int vtok = 0; vtok < vocab; ++vtok) {
        float dot = 0.0f;
        const float* ev = e.data() + static_cast<int64_t>(vtok) * d;
        for (int i = 0; i < d; ++i) dot += xn[i] * ev[i];
        out.at(row * vocab + vtok) = dot;
      }
      acc_flops += 2LL * d * vocab;
      acc_bytes += 4LL * d * vocab;
    }
  }
  static obs::KernelFlops kf("llm.decode");
  kf.Add(acc_flops, acc_bytes);
  return out;
}

std::vector<core::Tensor> MiniLlm::ForwardBatch(
    const std::vector<KvCache*>& caches,
    const std::vector<std::vector<int>>& tokens) const {
  size_t lanes = caches.size();
  LCREC_CHECK_EQ(lanes, tokens.size());
  if (lanes == 0) return {};
  int d = config_.d_model, heads = config_.n_heads;
  int dh = d / heads;
  float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  int vocab = config_.vocab_size;
  size_t max_len = 0;
  for (size_t b = 0; b < lanes; ++b) {
    LCREC_CHECK(!tokens[b].empty());
    LCREC_CHECK(caches[b] != nullptr);
    LCREC_CHECK_LE(caches[b]->length + static_cast<int>(tokens[b].size()),
                   config_.max_seq);
    max_len = std::max(max_len, tokens[b].size());
  }
  obs::ScopedSpan span("llm.decode_batch");
  int64_t acc_flops = 0, acc_bytes = 0;

  // Lane-major scratch rows: lane b's vector for buffer `buf` is
  // buf[b * stride .. b * stride + stride).
  auto rows = [lanes](int stride) {
    return std::vector<float>(lanes * static_cast<size_t>(stride));
  };
  std::vector<float> x = rows(d), xn = rows(d), q = rows(d), k = rows(d),
                     v = rows(d), attn = rows(d), proj = rows(d),
                     gate = rows(config_.d_ff), up = rows(config_.d_ff),
                     down = rows(d);

  std::vector<core::Tensor> out(lanes);
  for (size_t b = 0; b < lanes; ++b) out[b] = core::Tensor({1, vocab});

  for (size_t step = 0; step < max_len; ++step) {
    // Lanes that still have a token to feed at this step.
    std::vector<size_t> active;
    for (size_t b = 0; b < lanes; ++b) {
      if (step < tokens[b].size()) active.push_back(b);
    }
    auto row_ptrs = [&active](std::vector<float>& buf, int stride) {
      std::vector<float*> ps;
      ps.reserve(active.size());
      for (size_t b : active) ps.push_back(buf.data() + b * stride);
      return ps;
    };
    auto crow_ptrs = [&active](const std::vector<float>& buf, int stride) {
      std::vector<const float*> ps;
      ps.reserve(active.size());
      for (size_t b : active) ps.push_back(buf.data() + b * stride);
      return ps;
    };

    for (size_t b : active) {
      int tok = tokens[b][step];
      int pos = caches[b]->length;
      LCREC_CHECK_GE(tok, 0);
      LCREC_CHECK_LT(tok, vocab);
      float* xb = x.data() + b * d;
      for (int i = 0; i < d; ++i) {
        xb[i] = tok_emb_->value.at(static_cast<int64_t>(tok) * d + i) +
                pos_emb_->value.at(static_cast<int64_t>(pos) * d + i);
      }
    }
    for (int l = 0; l < config_.n_layers; ++l) {
      const Layer& layer = layers_[l];
      for (size_t b : active) {
        RmsNormVec(x.data() + b * d, layer.attn_norm->value, d,
                   xn.data() + b * d);
      }
      VecMatBatch(crow_ptrs(xn, d), layer.wq->value, row_ptrs(q, d));
      VecMatBatch(crow_ptrs(xn, d), layer.wk->value, row_ptrs(k, d));
      VecMatBatch(crow_ptrs(xn, d), layer.wv->value, row_ptrs(v, d));
      for (size_t b : active) {
        KvCache& cache = *caches[b];
        const float* kb = k.data() + b * d;
        const float* vb = v.data() + b * d;
        cache.k[l].insert(cache.k[l].end(), kb, kb + d);
        cache.v[l].insert(cache.v[l].end(), vb, vb + d);
        int ctx = cache.length + 1;
        AttendToken(q.data() + b * d, cache.k[l].data(), cache.v[l].data(),
                    ctx, heads, dh, scale, attn.data() + b * d);
        acc_flops += 8LL * d * d + 4LL * ctx * d + 6LL * d * config_.d_ff;
        acc_bytes += 4LL * (2LL * ctx * d);
      }
      VecMatBatch(crow_ptrs(attn, d), layer.wo->value, row_ptrs(proj, d));
      for (size_t b : active) {
        float* xb = x.data() + b * d;
        const float* pb = proj.data() + b * d;
        for (int i = 0; i < d; ++i) xb[i] += pb[i];
        RmsNormVec(xb, layer.ffn_norm->value, d, xn.data() + b * d);
      }
      VecMatBatch(crow_ptrs(xn, d), layer.w1->value,
                  row_ptrs(gate, config_.d_ff));
      VecMatBatch(crow_ptrs(xn, d), layer.w3->value,
                  row_ptrs(up, config_.d_ff));
      for (size_t b : active) {
        float* gb = gate.data() + b * config_.d_ff;
        const float* ub = up.data() + b * config_.d_ff;
        for (int i = 0; i < config_.d_ff; ++i) {
          float g = gb[i];
          gb[i] = g / (1.0f + std::exp(-g)) * ub[i];
        }
      }
      VecMatBatch(crow_ptrs(gate, config_.d_ff), layer.w2->value,
                  row_ptrs(down, d));
      for (size_t b : active) {
        float* xb = x.data() + b * d;
        const float* db = down.data() + b * d;
        for (int i = 0; i < d; ++i) xb[i] += db[i];
      }
      // Weights are read once per step for all active lanes.
      acc_bytes += 4LL * (4LL * d * d + 3LL * d * config_.d_ff);
    }
    std::vector<size_t> emitting;
    for (size_t b : active) {
      ++caches[b]->length;
      if (step == tokens[b].size() - 1) {
        RmsNormVec(x.data() + b * d, final_norm_->value, d, xn.data() + b * d);
        emitting.push_back(b);
      }
    }
    if (!emitting.empty()) {
      // Output head for every lane ending at this step; each embedding
      // row is read once for all of them. Per lane the dot accumulates
      // over i in Forward()'s order.
      const core::Tensor& e = tok_emb_->value;
      for (int vtok = 0; vtok < vocab; ++vtok) {
        const float* ev = e.data() + static_cast<int64_t>(vtok) * d;
        for (size_t b : emitting) {
          const float* xb = xn.data() + b * d;
          float dot = 0.0f;
          for (int i = 0; i < d; ++i) dot += xb[i] * ev[i];
          out[b].at(vtok) = dot;
        }
      }
      acc_flops += 2LL * d * vocab * static_cast<int64_t>(emitting.size());
      acc_bytes += 4LL * d * vocab;
    }
  }
  static obs::KernelFlops kf("llm.decode_batch");
  kf.Add(acc_flops, acc_bytes);
  return out;
}

}  // namespace lcrec::llm

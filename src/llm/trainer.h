#ifndef LCREC_LLM_TRAINER_H_
#define LCREC_LLM_TRAINER_H_

#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/health.h"
#include "core/optim.h"
#include "llm/minillm.h"

namespace lcrec::llm {

/// One instruction-tuning example: prompt and target response, both as
/// vocabulary token ids. The loss covers only the response (and eos), as
/// in standard instruction tuning (Eq. 7's conditional NLL).
struct TrainExample {
  std::vector<int> prompt;
  std::vector<int> response;
  std::string task;  // diagnostic label ("seq", "mut", "asy", ...)
};

struct TrainerOptions {
  int epochs = 3;
  int batch_size = 8;       // gradient accumulation steps per update
  float learning_rate = 3e-3f;
  float weight_decay = 0.01f;
  float warmup_fraction = 0.03f;  // cosine schedule with warmup (IV-A4)
  float clip_norm = 1.0f;
  uint64_t seed = 31;
  bool verbose = false;

  // Crash-safe checkpointing (lcrec::ckpt). Empty dir => off. Checkpoints
  // capture the complete training state (params, AdamW moments, rng,
  // schedule position, per-step losses), are written atomically, and
  // rotate keeping the newest `ckpt_keep`.
  std::string ckpt_dir;
  int64_t ckpt_every = 0;  // optimizer steps between mid-epoch saves;
                           // 0 => save at epoch boundaries only
  int ckpt_keep = 3;
  bool resume = false;     // restore the newest valid checkpoint first

  // Numeric-health guard: NaN/Inf loss or gradient norm (or a norm above
  // health_grad_limit, when > 0) rolls back to the last good checkpoint
  // with the learning rate scaled by health_lr_backoff, at most
  // health_max_retries times, then aborts via LCREC_CHECK.
  float health_grad_limit = 0.0f;
  int health_max_retries = 3;
  float health_lr_backoff = 0.5f;

  // Test/fault-injection hook: stop Train() cleanly once this many
  // optimizer steps have run (0 => never). Simulates a mid-run kill at a
  // step that need not coincide with a checkpoint.
  int64_t stop_after_step = 0;
};

/// Instruction-tuning trainer for MiniLlm: AdamW, cosine LR with warmup,
/// gradient accumulation, per-epoch shuffling, periodic crash-safe
/// checkpointing with resume and numeric-health rollback.
class LlmTrainer {
 public:
  LlmTrainer(MiniLlm* model, const TrainerOptions& options);
  ~LlmTrainer();

  /// Runs the configured number of epochs (resuming from options.ckpt_dir
  /// first when options.resume is set); returns the last epoch's mean
  /// loss. Per-epoch means are kept in epoch_losses().
  float Train(const std::vector<TrainExample>& examples);

  /// One pass over the examples (shuffled); returns mean loss. When a
  /// health rollback interrupts the pass, the epoch is not recorded and
  /// rolled_back() reports true until the next TrainEpoch call.
  float TrainEpoch(const std::vector<TrainExample>& examples);

  /// Declares the total number of optimizer updates the caller will drive
  /// across all TrainEpoch calls, enabling the cosine schedule when the
  /// caller regenerates examples per epoch (the paper's one-template-per-
  /// example-per-epoch rule).
  void SetTotalUpdates(int64_t updates) { total_steps_ = updates; }

  /// Mean loss without updating (evaluation pass).
  float EvalLoss(const std::vector<TrainExample>& examples);

  /// Restores the newest valid checkpoint from options.ckpt_dir. Returns
  /// false (fresh start, reason logged) when none loads or the state does
  /// not match this model. Train() calls this when options.resume is set;
  /// callers driving TrainEpoch directly call it themselves.
  bool TryResume();

  /// Writes a checkpoint of the complete training state now. Returns
  /// false on I/O failure (training continues; failure is logged).
  bool SaveCheckpoint();

  const std::vector<float>& epoch_losses() const { return epoch_losses_; }
  /// Mean loss of every optimizer step so far (restored across resume),
  /// the sequence the resume-equivalence tests compare.
  const std::vector<float>& step_losses() const { return step_losses_; }
  int64_t step() const { return step_; }
  /// Completed epochs (restored across resume).
  int64_t epochs_done() const { return epochs_done_; }
  int health_trips() const { return health_.trips(); }
  bool stop_requested() const { return stop_requested_; }
  /// True when the last TrainEpoch ended in a health rollback (the caller
  /// should re-run the epoch); cleared at the next TrainEpoch.
  bool rolled_back() const { return rolled_back_; }

  /// Builds the token/target arrays for one example:
  /// tokens = <bos> prompt response <eos>, loss only on response + eos.
  /// Prompts longer than max_seq are truncated from the left, keeping the
  /// most recent context.
  static void AssembleTokens(const TrainExample& example, int max_seq,
                             std::vector<int>* tokens,
                             std::vector<int>* targets);

 private:
  float CurrentLr() const;
  bool CheckpointingEnabled() const { return !options_.ckpt_dir.empty(); }
  /// Serializes params + optimizer + rng + counters (+ mid-epoch cursor).
  void EncodeState(ckpt::Checkpoint* c, const std::vector<int64_t>& order,
                   int64_t pos, double loss_sum, int64_t count) const;
  bool DecodeState(const ckpt::Checkpoint& c);
  /// Mid-epoch save: `order`/`pos`/accumulators form the resume cursor
  /// (empty order => epoch-boundary save, no cursor).
  bool SaveCheckpointImpl(const std::vector<int64_t>& order, int64_t pos,
                          double loss_sum, int64_t count);
  /// Health-trip recovery: reloads the last good checkpoint and backs off
  /// the learning rate. Aborts via the guard when unrecoverable.
  void Rollback();

  MiniLlm* model_;
  TrainerOptions options_;
  core::Rng rng_;
  core::AdamW optimizer_;
  ckpt::HealthGuard health_;
  int64_t step_ = 0;
  int64_t total_steps_ = 0;  // set by Train(); 0 => constant lr
  int64_t epochs_done_ = 0;
  float lr_scale_ = 1.0f;  // health-guard backoff multiplier
  bool has_checkpoint_ = false;  // a rollback target exists on disk
  bool rolled_back_ = false;
  bool stop_requested_ = false;
  std::vector<float> epoch_losses_;
  std::vector<float> step_losses_;
  // Mid-epoch resume cursor (restored by DecodeState, consumed by the
  // next TrainEpoch): the shuffled order, the next example position, and
  // the partial-epoch loss accumulators.
  bool mid_epoch_pending_ = false;
  std::vector<int64_t> pending_order_;
  int64_t pending_pos_ = 0;
  double pending_loss_sum_ = 0.0;
  int64_t pending_count_ = 0;
  int statusz_section_id_ = -1;  // debugz /statusz registration
};

}  // namespace lcrec::llm

#endif  // LCREC_LLM_TRAINER_H_

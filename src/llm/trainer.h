#ifndef LCREC_LLM_TRAINER_H_
#define LCREC_LLM_TRAINER_H_

#include <string>
#include <vector>

#include "core/optim.h"
#include "llm/minillm.h"

namespace lcrec::llm {

/// One instruction-tuning example: prompt and target response, both as
/// vocabulary token ids. The loss covers only the response (and eos), as
/// in standard instruction tuning (Eq. 7's conditional NLL).
struct TrainExample {
  std::vector<int> prompt;
  std::vector<int> response;
  std::string task;  // diagnostic label ("seq", "mut", "asy", ...)
};

struct TrainerOptions {
  int epochs = 3;
  int batch_size = 8;       // gradient accumulation steps per update
  float learning_rate = 3e-3f;
  float weight_decay = 0.01f;
  float warmup_fraction = 0.03f;  // cosine schedule with warmup (IV-A4)
  float clip_norm = 1.0f;
  uint64_t seed = 31;
  bool verbose = false;
};

/// Instruction-tuning trainer for MiniLlm: AdamW, cosine LR with warmup,
/// gradient accumulation, per-epoch shuffling.
class LlmTrainer {
 public:
  LlmTrainer(MiniLlm* model, const TrainerOptions& options);

  /// Runs the configured number of epochs; returns the last epoch's mean
  /// loss. Per-epoch means are kept in epoch_losses().
  float Train(const std::vector<TrainExample>& examples);

  /// One pass over the examples (shuffled); returns mean loss.
  float TrainEpoch(const std::vector<TrainExample>& examples);

  /// Declares the total number of optimizer updates the caller will drive
  /// across all TrainEpoch calls, enabling the cosine schedule when the
  /// caller regenerates examples per epoch (the paper's one-template-per-
  /// example-per-epoch rule).
  void SetTotalUpdates(int64_t updates) { total_steps_ = updates; }

  /// Mean loss without updating (evaluation pass).
  float EvalLoss(const std::vector<TrainExample>& examples);

  const std::vector<float>& epoch_losses() const { return epoch_losses_; }

  /// Builds the token/target arrays for one example:
  /// tokens = <bos> prompt response <eos>, loss only on response + eos.
  /// Prompts longer than max_seq are truncated from the left, keeping the
  /// most recent context.
  static void AssembleTokens(const TrainExample& example, int max_seq,
                             std::vector<int>* tokens,
                             std::vector<int>* targets);

 private:
  float CurrentLr() const;

  MiniLlm* model_;
  TrainerOptions options_;
  core::Rng rng_;
  core::AdamW optimizer_;
  int64_t step_ = 0;
  int64_t total_steps_ = 0;  // set by Train(); 0 => constant lr
  std::vector<float> epoch_losses_;
};

}  // namespace lcrec::llm

#endif  // LCREC_LLM_TRAINER_H_

#include "llm/batch.h"

#include <algorithm>
#include <utility>

#include "core/check.h"
#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace lcrec::llm {

namespace {

/// Cached metric handles for the batched decoder (lcrec.llm.genb.*).
struct BatchMetrics {
  obs::Counter& ticks;
  obs::Counter& token_forwards;
  obs::Counter& retired;
  obs::Counter& partial;
  obs::Histogram& lanes_per_tick;

  static BatchMetrics& Get() {
    static BatchMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      return new BatchMetrics{
          r.GetCounter("lcrec.llm.genb.ticks"),
          r.GetCounter("lcrec.llm.genb.token_forwards"),
          r.GetCounter("lcrec.llm.genb.retired"),
          r.GetCounter("lcrec.llm.genb.partial"),
          r.GetHistogram("lcrec.llm.genb.lanes_per_tick",
                         obs::Histogram::LinearBounds(1.0, 32.0, 32)),
      };
    }();
    return *m;
  }
};

}  // namespace

BatchEngine::BatchEngine(const MiniLlm& model, const quant::PrefixTrie& trie,
                         const IndexTokenMap& token_map, int beam_size)
    : model_(model),
      trie_(trie),
      token_map_(token_map),
      beam_size_(beam_size),
      max_depth_(token_map.levels()) {
  LCREC_CHECK_GT(beam_size_, 0);
  LCREC_CHECK_GT(max_depth_, 0);
}

void BatchEngine::Admit(uint64_t tag, std::vector<int> prompt, int top_n) {
  Admit(tag, std::move(prompt), top_n, LaneOptions{});
}

void BatchEngine::Admit(uint64_t tag, std::vector<int> prompt, int top_n,
                        const LaneOptions& opts) {
  LCREC_CHECK(!prompt.empty());
  LCREC_CHECK_GT(top_n, 0);
  LCREC_CHECK_GE(opts.beam_cap, 0);
  Lane lane;
  lane.tag = tag;
  lane.top_n = top_n;
  lane.prompt = std::move(prompt);
  lane.deadline_us = opts.deadline_us;
  lane.beam = opts.beam_cap > 0 ? std::min(opts.beam_cap, beam_size_)
                                : beam_size_;
  lanes_.push_back(std::move(lane));
}

BatchResult BatchEngine::RetireLane(Lane& lane, bool partial) {
  std::sort(lane.done.begin(), lane.done.end(), ScoredItemOrder);
  if (static_cast<int>(lane.done.size()) > lane.top_n) {
    lane.done.resize(static_cast<size_t>(lane.top_n));
  }
  BatchMetrics& bm = BatchMetrics::Get();
  bm.retired.Increment();
  if (partial) bm.partial.Increment();
  return {lane.tag, std::move(lane.done), lane.ticks,
          lane.decode_us,   partial,      lane.beam};
}

std::vector<BatchResult> BatchEngine::Tick() {
  if (lanes_.empty()) return {};
  obs::ScopedSpan span("llm.batch_tick");
  double tick_start_us = obs::NowMicros();

  // Phase 0: retire lanes whose deadline has already passed before
  // spending any forward work on them. They return whatever beams
  // finished on earlier ticks (partial decode).
  std::vector<BatchResult> finished;
  {
    std::vector<Lane> live;
    live.reserve(lanes_.size());
    for (Lane& lane : lanes_) {
      if (lane.deadline_us > 0.0 && tick_start_us >= lane.deadline_us) {
        finished.push_back(RetireLane(lane, /*partial=*/true));
      } else {
        live.push_back(std::move(lane));
      }
    }
    lanes_ = std::move(live);
  }
  if (lanes_.empty()) return finished;

  BatchMetrics& bm = BatchMetrics::Get();
  bm.ticks.Increment();
  bm.lanes_per_tick.Observe(static_cast<double>(lanes_.size()));

  // Phase 1: plan this tick's work per lane — a prompt prefill for fresh
  // lanes, or one child beam per surviving candidate for running lanes.
  // The candidate construction mirrors GenerateItems() exactly.
  size_t n = lanes_.size();
  std::vector<std::vector<BeamCandidate>> cands(n);
  std::vector<std::vector<Beam>> children(n);
  // Lanes that run a candidate expansion this tick (vs a prompt
  // prefill). One expansion == one iteration of GenerateItems()'s depth
  // loop, so completion below follows exactly its loop-exit rule.
  std::vector<bool> expanding(n, false);
  for (size_t i = 0; i < n; ++i) {
    Lane& lane = lanes_[i];
    expanding[i] = lane.prefilled;
    if (!lane.prefilled) {
      Beam root;
      root.cache = model_.MakeCache();
      lane.active.clear();
      lane.active.push_back(std::move(root));
      continue;
    }
    std::vector<BeamCandidate>& cand = cands[i];
    for (size_t b = 0; b < lane.active.size(); ++b) {
      Beam& beam = lane.active[b];
      std::vector<int> next = trie_.NextCodes(beam.codes);
      if (next.empty()) continue;  // defensive; completed beams are removed
      float lse = LogSumExp(beam.logits);
      int level = static_cast<int>(beam.codes.size());
      for (int code : next) {
        int tok = token_map_.TokenId(level, code);
        if (tok < 0) continue;
        float lp = beam.logp + (beam.logits.at(tok) - lse);
        cand.push_back({static_cast<int>(b), code, tok, lp});
      }
    }
    std::sort(cand.begin(), cand.end(), BeamCandidateOrder);
    if (static_cast<int>(cand.size()) > lane.beam) {
      cand.resize(static_cast<size_t>(lane.beam));
    }
    children[i].reserve(cand.size());
    for (const BeamCandidate& c : cand) {
      Beam child;
      child.codes = lane.active[static_cast<size_t>(c.beam)].codes;
      child.codes.push_back(c.code);
      child.logp = c.logp;
      child.cache = lane.active[static_cast<size_t>(c.beam)].cache;  // copy
      children[i].push_back(std::move(child));
    }
  }

  // Phase 2: one batched forward over every planned unit. Pointers are
  // gathered only now, after all per-lane vectors stopped growing.
  struct Unit {
    size_t lane;
    int child;  // -1 => prompt prefill
  };
  std::vector<Unit> units;
  std::vector<MiniLlm::KvCache*> caches;
  std::vector<std::vector<int>> toks;
  int64_t fed_tokens = 0;
  for (size_t i = 0; i < n; ++i) {
    Lane& lane = lanes_[i];
    if (!expanding[i]) {
      units.push_back({i, -1});
      caches.push_back(&lane.active[0].cache);
      toks.push_back(lane.prompt);
      fed_tokens += static_cast<int64_t>(lane.prompt.size());
      continue;
    }
    for (size_t j = 0; j < children[i].size(); ++j) {
      units.push_back({i, static_cast<int>(j)});
      caches.push_back(&children[i][j].cache);
      toks.push_back({cands[i][j].token});
      ++fed_tokens;
    }
  }
  if (!units.empty()) {
    std::vector<core::Tensor> logits = model_.ForwardBatch(caches, toks);
    bm.token_forwards.Add(fed_tokens);
    for (size_t u = 0; u < units.size(); ++u) {
      Lane& lane = lanes_[units[u].lane];
      if (units[u].child < 0) {
        lane.active[0].logits = std::move(logits[u]);
        lane.prefilled = true;
        lane.prompt.clear();
        lane.prompt.shrink_to_fit();
      } else {
        children[units[u].lane][static_cast<size_t>(units[u].child)].logits =
            std::move(logits[u]);
      }
    }
  }

  // Fair-share tick attribution: the batched forward serves all lanes
  // at once, so each active lane is charged an equal 1/n slice of the
  // tick's wall time. Summed over concurrently-running lanes this
  // reconstructs the engine's actual decode time.
  double tick_share_us = (obs::NowMicros() - tick_start_us) /
                         static_cast<double>(n);
  obs::FlightRecorder::Global().Record(obs::FrKind::kBatchTick, "batch_tick",
                                       static_cast<int64_t>(n), fed_tokens);

  // Phase 3: retire completed children, advance depths, finish lanes.
  std::vector<Lane> still_running;
  still_running.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Lane& lane = lanes_[i];
    ++lane.ticks;
    lane.decode_us += tick_share_us;
    bool complete = false;
    if (expanding[i]) {
      std::vector<Beam> next_active;
      next_active.reserve(children[i].size());
      for (Beam& child : children[i]) {
        int item = trie_.ItemAt(child.codes);
        if (item >= 0 && trie_.NextCodes(child.codes).empty()) {
          lane.done.push_back({item, child.logp});
        } else {
          next_active.push_back(std::move(child));
        }
      }
      lane.active = std::move(next_active);
      ++lane.depth;
      complete = lane.depth >= max_depth_ || lane.active.empty();
    }
    if (complete) {
      finished.push_back(RetireLane(lane, /*partial=*/false));
    } else {
      still_running.push_back(std::move(lane));
    }
  }
  lanes_ = std::move(still_running);
  return finished;
}

std::vector<std::vector<ScoredItem>> GenerateItemsBatch(
    const MiniLlm& model, const std::vector<std::vector<int>>& prompts,
    const quant::PrefixTrie& trie, const IndexTokenMap& token_map,
    int beam_size, int top_n) {
  BatchEngine engine(model, trie, token_map, beam_size);
  for (size_t i = 0; i < prompts.size(); ++i) {
    engine.Admit(static_cast<uint64_t>(i), prompts[i], top_n);
  }
  std::vector<std::vector<ScoredItem>> out(prompts.size());
  while (!engine.Idle()) {
    for (BatchResult& r : engine.Tick()) {
      out[static_cast<size_t>(r.tag)] = std::move(r.items);
    }
  }
  return out;
}

}  // namespace lcrec::llm

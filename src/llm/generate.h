#ifndef LCREC_LLM_GENERATE_H_
#define LCREC_LLM_GENERATE_H_

#include <unordered_map>
#include <vector>

#include "llm/minillm.h"
#include "quant/indexing.h"
#include "text/vocab.h"

namespace lcrec::llm {

/// Maps (level, code) pairs of an ItemIndexing to LLM vocabulary token
/// ids. The index tokens must already be registered in the vocabulary.
class IndexTokenMap {
 public:
  IndexTokenMap(const quant::ItemIndexing& indexing,
                const text::Vocabulary& vocab);

  /// Vocabulary id of the token for (level, code), or -1 if unknown.
  int TokenId(int level, int code) const;

  /// Encodes an item's code sequence into vocabulary token ids.
  std::vector<int> ItemTokenIds(const quant::ItemIndexing& indexing,
                                int item) const;

  int levels() const { return static_cast<int>(maps_.size()); }

 private:
  std::vector<std::unordered_map<int, int>> maps_;  // per level: code -> id
};

struct ScoredItem {
  int item = -1;
  float logprob = 0.0f;
};

/// One candidate expansion of a beam during constrained search.
struct BeamCandidate {
  int beam = 0;   // index into the active beam set
  int code = 0;   // trie code being appended
  int token = 0;  // vocabulary id of that code's token
  float logp = 0.0f;
};

/// The deterministic ordering contract of constrained decoding, shared
/// by the sequential and batched paths so both return bit-identical
/// rankings. Log-prob ties are broken structurally (parent beam, then
/// code / item id), never by allocation or sort-implementation order.
inline bool BeamCandidateOrder(const BeamCandidate& a,
                               const BeamCandidate& b) {
  if (a.logp != b.logp) return a.logp > b.logp;
  if (a.beam != b.beam) return a.beam < b.beam;
  return a.code < b.code;
}

inline bool ScoredItemOrder(const ScoredItem& a, const ScoredItem& b) {
  if (a.logprob != b.logprob) return a.logprob > b.logprob;
  return a.item < b.item;
}

/// log softmax normalizer of a [1, vocab] logits row. Shared by the
/// sequential and batched constrained decoders (identical arithmetic is
/// part of the equivalence contract).
float LogSumExp(const core::Tensor& logits);

/// Trie-constrained beam search over item-index tokens (Section III-D2):
/// at every step, only tokens continuing a valid item prefix keep their
/// probability; everything else is masked. Returns up to `top_n` complete
/// items ranked by sequence log-probability.
std::vector<ScoredItem> GenerateItems(const MiniLlm& model,
                                      const std::vector<int>& prompt,
                                      const quant::PrefixTrie& trie,
                                      const IndexTokenMap& token_map,
                                      int beam_size = 20, int top_n = 10);

/// Total log-likelihood of `continuation` given `prompt` (teacher-forced),
/// used for the pairwise ranking probes of Table V.
float ScoreContinuation(const MiniLlm& model, const std::vector<int>& prompt,
                        const std::vector<int>& continuation);

/// Greedy free-text generation until `eos_id` or `max_new` tokens; returns
/// the generated ids (without the prompt, without eos). Used by the case
/// studies of Figures 5-6.
std::vector<int> GenerateText(const MiniLlm& model,
                              const std::vector<int>& prompt, int max_new,
                              int eos_id);

}  // namespace lcrec::llm

#endif  // LCREC_LLM_GENERATE_H_

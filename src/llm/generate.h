#ifndef LCREC_LLM_GENERATE_H_
#define LCREC_LLM_GENERATE_H_

#include <unordered_map>
#include <vector>

#include "llm/minillm.h"
#include "quant/indexing.h"
#include "text/vocab.h"

namespace lcrec::llm {

/// Maps (level, code) pairs of an ItemIndexing to LLM vocabulary token
/// ids. The index tokens must already be registered in the vocabulary.
class IndexTokenMap {
 public:
  IndexTokenMap(const quant::ItemIndexing& indexing,
                const text::Vocabulary& vocab);

  /// Vocabulary id of the token for (level, code), or -1 if unknown.
  int TokenId(int level, int code) const;

  /// Encodes an item's code sequence into vocabulary token ids.
  std::vector<int> ItemTokenIds(const quant::ItemIndexing& indexing,
                                int item) const;

  int levels() const { return static_cast<int>(maps_.size()); }

 private:
  std::vector<std::unordered_map<int, int>> maps_;  // per level: code -> id
};

struct ScoredItem {
  int item = -1;
  float logprob = 0.0f;
};

/// Trie-constrained beam search over item-index tokens (Section III-D2):
/// at every step, only tokens continuing a valid item prefix keep their
/// probability; everything else is masked. Returns up to `top_n` complete
/// items ranked by sequence log-probability.
std::vector<ScoredItem> GenerateItems(const MiniLlm& model,
                                      const std::vector<int>& prompt,
                                      const quant::PrefixTrie& trie,
                                      const IndexTokenMap& token_map,
                                      int beam_size = 20, int top_n = 10);

/// Total log-likelihood of `continuation` given `prompt` (teacher-forced),
/// used for the pairwise ranking probes of Table V.
float ScoreContinuation(const MiniLlm& model, const std::vector<int>& prompt,
                        const std::vector<int>& continuation);

/// Greedy free-text generation until `eos_id` or `max_new` tokens; returns
/// the generated ids (without the prompt, without eos). Used by the case
/// studies of Figures 5-6.
std::vector<int> GenerateText(const MiniLlm& model,
                              const std::vector<int>& prompt, int max_new,
                              int eos_id);

}  // namespace lcrec::llm

#endif  // LCREC_LLM_GENERATE_H_

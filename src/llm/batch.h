#ifndef LCREC_LLM_BATCH_H_
#define LCREC_LLM_BATCH_H_

#include <cstdint>
#include <vector>

#include "llm/generate.h"
#include "llm/minillm.h"
#include "quant/indexing.h"

namespace lcrec::llm {

/// Result of one finished decode lane, with its share of the batch cost:
/// every tick the lane was active charges it tick_duration/active_lanes,
/// so decode_us across concurrently-retired lanes sums to the engine's
/// actual forward time — the attribution the serving timeline reports.
struct BatchResult {
  uint64_t tag = 0;  // caller-supplied id from Admit()
  std::vector<ScoredItem> items;
  int ticks = 0;          // ticks this lane participated in
  double decode_us = 0.0; // fair-share decode time across those ticks
  /// True when the lane was retired at its deadline before the search
  /// completed: `items` holds whatever finished beams existed by then
  /// (possibly none). Deadline enforcement is tick-granular, so a lane
  /// overshoots its deadline by at most one tick.
  bool partial = false;
  int beam_used = 0;      // effective beam width the lane ran with
};

/// Per-lane knobs for Admit(). Defaults reproduce the unconstrained
/// engine exactly (no deadline, engine-wide beam).
struct LaneOptions {
  /// Absolute retire-by time (obs::NowMicros base). At the first tick
  /// that starts past this, the lane is retired with partial results.
  /// 0 = no deadline.
  double deadline_us = 0.0;
  /// Beam-width cap for this lane; 0 = the engine's beam_size. A capped
  /// lane trades recall for ticks — the budget-capped degrade tier.
  int beam_cap = 0;
};

/// Continuous-batching engine for trie-constrained beam search: every
/// admitted request becomes a lane holding its own beam set, and each
/// Tick() runs ONE batched model forward (MiniLlm::ForwardBatch) over
/// the pending token expansions of every lane, then advances each lane
/// by one trie level (or by its prompt prefill). Lanes finish
/// independently and new lanes can be admitted between any two ticks,
/// so a long prefill never drains the batch — the scheduler keeps the
/// matmuls occupied with whatever work exists (InferLLM-style
/// request-level batching).
///
/// Per lane, the candidate scoring, ordering (BeamCandidateOrder /
/// ScoredItemOrder), pruning, and forward arithmetic are exactly those
/// of the sequential GenerateItems(), so a lane's result is
/// bit-identical to decoding it alone (asserted in tests; the serving
/// layer depends on this).
///
/// Not thread-safe: one thread drives Admit()/Tick() (the serve
/// scheduler or a test loop).
class BatchEngine {
 public:
  BatchEngine(const MiniLlm& model, const quant::PrefixTrie& trie,
              const IndexTokenMap& token_map, int beam_size);

  /// Adds a decode lane. `tag` is an opaque caller id returned with the
  /// lane's BatchResult; `prompt` must be non-empty.
  void Admit(uint64_t tag, std::vector<int> prompt, int top_n);
  /// Adds a decode lane with a deadline budget and/or beam cap.
  void Admit(uint64_t tag, std::vector<int> prompt, int top_n,
             const LaneOptions& opts);

  int ActiveLanes() const { return static_cast<int>(lanes_.size()); }
  bool Idle() const { return lanes_.empty(); }

  /// Runs one batched forward over every lane's pending work and
  /// returns the lanes that completed their search this tick. No-op
  /// (empty result) when idle.
  std::vector<BatchResult> Tick();

 private:
  struct Beam {
    std::vector<int> codes;
    float logp = 0.0f;
    MiniLlm::KvCache cache;
    core::Tensor logits;  // [1, vocab] after the last fed token
  };
  struct Lane {
    uint64_t tag = 0;
    int top_n = 0;
    std::vector<int> prompt;  // fed on the lane's first tick
    bool prefilled = false;
    int depth = 0;
    int ticks = 0;           // tick-attribution accumulators (BatchResult)
    double decode_us = 0.0;
    double deadline_us = 0.0;  // absolute; 0 = none
    int beam = 0;              // effective beam width (<= engine beam)
    std::vector<Beam> active;
    std::vector<ScoredItem> done;
  };

  /// Sorts/caps `lane.done` and moves it into a BatchResult.
  BatchResult RetireLane(Lane& lane, bool partial);

  const MiniLlm& model_;
  const quant::PrefixTrie& trie_;
  const IndexTokenMap& token_map_;
  int beam_size_;
  int max_depth_;
  std::vector<Lane> lanes_;
};

/// Decodes `prompts` jointly through a BatchEngine; results are indexed
/// like `prompts`. Identical output to calling GenerateItems() per
/// prompt, at batched-forward cost.
std::vector<std::vector<ScoredItem>> GenerateItemsBatch(
    const MiniLlm& model, const std::vector<std::vector<int>>& prompts,
    const quant::PrefixTrie& trie, const IndexTokenMap& token_map,
    int beam_size = 20, int top_n = 10);

}  // namespace lcrec::llm

#endif  // LCREC_LLM_BATCH_H_

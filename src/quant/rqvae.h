#ifndef LCREC_QUANT_RQVAE_H_
#define LCREC_QUANT_RQVAE_H_

#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/health.h"
#include "core/graph.h"
#include "core/optim.h"
#include "core/rng.h"
#include "core/tensor.h"

namespace lcrec::quant {

struct RqVaeConfig {
  int input_dim = 64;
  int hidden_dim = 96;
  int latent_dim = 32;   // paper: codebook vector dimension 32
  int levels = 4;        // paper: H = 4 index levels
  int codebook_size = 64;  // paper: 256; smaller default fits small catalogs
  float beta = 0.25f;    // commitment coefficient of Eq. (4)
  bool uniform_last_level = true;  // train-time USM at level H (Algorithm 1)
  double sinkhorn_epsilon = 0.05;
  int sinkhorn_iterations = 50;
  int epochs = 150;
  int warmup_epochs = 200;  // plain autoencoder warmup before quantization
  int batch_size = 1024;
  float learning_rate = 1e-3f;
  uint64_t seed = 17;

  // Crash-safe checkpointing (lcrec::ckpt), epoch granularity. Empty dir
  // disables it.
  std::string ckpt_dir;
  int ckpt_every = 0;  // epochs between saves; 0 => every epoch
  int ckpt_keep = 3;
  bool resume = false;

  // Numeric-health guard (see ckpt::HealthGuard): NaN/Inf epoch loss rolls
  // back to the last good checkpoint with a learning-rate backoff.
  int health_max_retries = 3;
  float health_lr_backoff = 0.5f;
};

/// Residual-Quantized Variational AutoEncoder (Section III-B1) with the
/// uniform-semantic-mapping variant of the last quantization level
/// (Section III-B2, Algorithm 1).
///
/// The encoder/decoder are MLPs with ReLU activations; codebooks are
/// H x [K, latent] learnable cluster centers. Training optimizes
/// L = ||e - e_hat||^2 + sum_h ||sg[r_h] - v_h||^2 + beta ||r_h - sg[v_h]||^2
/// (Eqs. 3-5) with a straight-through estimator feeding the decoder.
class RqVae {
 public:
  explicit RqVae(const RqVaeConfig& config);

  /// Result of quantizing a batch: per-row codes at each level plus the
  /// residual vectors entering the last level (used for conflict
  /// resolution downstream).
  struct QuantizeResult {
    std::vector<std::vector<int>> codes;  // [n][levels]
    core::Tensor last_residuals;          // [n, latent]
  };

  /// Initializes codebooks from data (greedy residual sampling), then
  /// trains for config.epochs. Returns the final epoch's average loss.
  float Train(const core::Tensor& embeddings);

  /// One epoch over shuffled batches; returns mean total loss.
  float TrainEpoch(const core::Tensor& embeddings);

  /// Encodes inputs to latent space (no gradients).
  core::Tensor EncodeLatent(const core::Tensor& embeddings) const;

  /// Nearest-neighbour residual quantization, Eq. (1)-(2) (no USM).
  QuantizeResult QuantizeAll(const core::Tensor& embeddings) const;

  /// Mean reconstruction MSE through quantize + decode.
  float ReconstructionError(const core::Tensor& embeddings) const;

  /// Decodes quantized latents back to the embedding space.
  core::Tensor DecodeLatent(const core::Tensor& z_hat) const;

  const core::Tensor& codebook(int level) const {
    return codebooks_.at(level)->value;
  }
  const RqVaeConfig& config() const { return config_; }

  /// Restores the newest valid checkpoint from config.ckpt_dir; returns
  /// false (fresh start) when none validates. Train() calls this when
  /// config.resume is set.
  bool TryResume();
  /// Writes a checkpoint of the full training state now (logged, never
  /// fatal on I/O failure).
  bool SaveCheckpoint();

  /// Completed quantized-training epochs (restored across resume).
  int epochs_done() const { return epochs_done_; }
  /// Mean loss per completed epoch (restored across resume).
  const std::vector<float>& epoch_losses() const { return epoch_losses_; }
  int health_trips() const { return health_.trips(); }

 private:
  void InitializeCodebooks(const core::Tensor& embeddings);
  /// Publishes lcrec.quant.rqvae.* gauges (reconstruction error, per-level
  /// codebook utilization and perplexity) after training.
  void RecordQuantizationMetrics(const core::Tensor& embeddings,
                                 float train_loss) const;
  float TrainBatch(const core::Tensor& batch);
  /// Reconstruction-only step (no quantization), used during warmup so the
  /// latent space is information-preserving before codebooks are seeded.
  float TrainAutoencoderBatch(const core::Tensor& batch);
  bool CheckpointingEnabled() const { return !config_.ckpt_dir.empty(); }
  void EncodeState(ckpt::Checkpoint* c) const;
  bool DecodeState(const ckpt::Checkpoint& c);
  /// Health-trip recovery: reload the last good checkpoint, back off lr.
  void Rollback();

  RqVaeConfig config_;
  core::Rng rng_;
  core::ParamStore store_;
  core::Parameter* enc_w1_;
  core::Parameter* enc_b1_;
  core::Parameter* enc_w2_;
  core::Parameter* enc_b2_;
  core::Parameter* dec_w1_;
  core::Parameter* dec_b1_;
  core::Parameter* dec_w2_;
  core::Parameter* dec_b2_;
  std::vector<core::Parameter*> codebooks_;
  std::unique_ptr<core::AdamW> optimizer_;
  ckpt::HealthGuard health_;
  bool codebooks_initialized_ = false;
  int warmup_done_ = 0;   // autoencoder warmup epochs completed
  int epochs_done_ = 0;   // quantized-training epochs completed
  float lr_scale_ = 1.0f;
  bool has_checkpoint_ = false;
  bool rolled_back_ = false;
  std::vector<float> epoch_losses_;
};

}  // namespace lcrec::quant

#endif  // LCREC_QUANT_RQVAE_H_

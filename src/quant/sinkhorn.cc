#include "quant/sinkhorn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.h"
#include "obs/flops.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace lcrec::quant {

core::Tensor SinkhornKnopp(const core::Tensor& cost, double epsilon,
                           int iterations) {
  obs::ScopedSpan span("quant.sinkhorn");
  int64_t n = cost.rows(), k = cost.cols();
  LCREC_CHECK_GT(n, 0);
  LCREC_CHECK_GT(k, 0);
  // Gibbs kernel (3nk) + 4nk per scaling iteration + final plan (2nk).
  static obs::KernelFlops kf("quant.sinkhorn");
  kf.Add((5 + 4 * static_cast<int64_t>(iterations)) * n * k,
         8 * n * k * (1 + iterations));
  // Work in double; shift costs per row for numerical stability.
  std::vector<double> g(static_cast<size_t>(n * k));
  for (int64_t i = 0; i < n; ++i) {
    double row_min = cost.at(i * k);
    for (int64_t j = 1; j < k; ++j)
      row_min = std::min(row_min, static_cast<double>(cost.at(i * k + j)));
    for (int64_t j = 0; j < k; ++j)
      g[i * k + j] = std::exp(-(cost.at(i * k + j) - row_min) / epsilon);
  }
  std::vector<double> u(n, 1.0), v(k, 1.0);
  double col_target = static_cast<double>(n) / static_cast<double>(k);
  for (int it = 0; it < iterations; ++it) {
    // Column scaling: sum_i u_i g_ik v_k = n/K.
    for (int64_t j = 0; j < k; ++j) {
      double s = 0.0;
      for (int64_t i = 0; i < n; ++i) s += u[i] * g[i * k + j];
      v[j] = s > 1e-300 ? col_target / s : 0.0;
    }
    // Row scaling: sum_k u_i g_ik v_k = 1.
    for (int64_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (int64_t j = 0; j < k; ++j) s += g[i * k + j] * v[j];
      u[i] = s > 1e-300 ? 1.0 / s : 0.0;
    }
  }
  core::Tensor q({n, k});
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < k; ++j)
      q.at(i * k + j) = static_cast<float>(u[i] * g[i * k + j] * v[j]);

  // Convergence telemetry: worst deviation of the transport plan's
  // marginals from their targets (row sums 1, column sums n/K), relative
  // to the target. Zero means the plan is exactly doubly "stochastic".
  {
    double residual = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (int64_t j = 0; j < k; ++j) s += q.at(i * k + j);
      residual = std::max(residual, std::abs(s - 1.0));
    }
    for (int64_t j = 0; j < k; ++j) {
      double s = 0.0;
      for (int64_t i = 0; i < n; ++i) s += q.at(i * k + j);
      residual = std::max(residual, std::abs(s - col_target) / col_target);
    }
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    static obs::Counter& calls = registry.GetCounter("lcrec.quant.sinkhorn.calls");
    static obs::Counter& iters =
        registry.GetCounter("lcrec.quant.sinkhorn.iterations");
    static obs::Gauge& marginal_residual =
        registry.GetGauge("lcrec.quant.sinkhorn.marginal_residual");
    calls.Increment();
    iters.Add(iterations);
    marginal_residual.Set(residual);
  }
  return q;
}

std::vector<int> BalancedAssign(const core::Tensor& plan, int capacity) {
  int64_t n = plan.rows(), k = plan.cols();
  LCREC_CHECK_LE(n, k * static_cast<int64_t>(capacity));
  struct Entry {
    float weight;
    int row;
    int col;
  };
  std::vector<Entry> entries;
  entries.reserve(static_cast<size_t>(n * k));
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < k; ++j)
      entries.push_back({plan.at(i * k + j), static_cast<int>(i),
                         static_cast<int>(j)});
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.weight > b.weight; });
  std::vector<int> assignment(n, -1);
  std::vector<int> load(k, 0);
  int64_t assigned = 0;
  for (const Entry& e : entries) {
    if (assigned == n) break;
    if (assignment[e.row] != -1 || load[e.col] >= capacity) continue;
    assignment[e.row] = e.col;
    ++load[e.col];
    ++assigned;
  }
  LCREC_CHECK_EQ(assigned, n);
  return assignment;
}

}  // namespace lcrec::quant

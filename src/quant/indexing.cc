#include "quant/indexing.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "core/check.h"
#include "core/linalg.h"
#include "quant/sinkhorn.h"

namespace lcrec::quant {

std::string IndexSchemeName(IndexScheme scheme) {
  switch (scheme) {
    case IndexScheme::kLcRec: return "LC-Rec";
    case IndexScheme::kNoUsm: return "LC-Rec w/o USM";
    case IndexScheme::kRandom: return "Random Indices";
    case IndexScheme::kVanillaId: return "Vanilla ID";
  }
  return "Unknown";
}

ItemIndexing ItemIndexing::FromRqVae(const RqVae& vae,
                                     const core::Tensor& embeddings,
                                     bool uniform_semantic_mapping) {
  RqVae::QuantizeResult q = vae.QuantizeAll(embeddings);
  int n = static_cast<int>(q.codes.size());
  int levels = vae.config().levels;
  int k = vae.config().codebook_size;
  int lat = vae.config().latent_dim;

  ItemIndexing idx;
  idx.codes_ = q.codes;
  idx.levels_ = levels;
  idx.codebook_size_ = k;

  // Group items by full code sequence to find conflicts.
  std::map<std::vector<int>, std::vector<int>> groups;
  for (int i = 0; i < n; ++i) groups[q.codes[i]].push_back(i);

  if (uniform_semantic_mapping) {
    // Section III-B2 two-stage process: for each group of conflicting
    // items, redistribute the last-level codewords by solving Eq. (6)
    // restricted to that group's residual vectors.
    // Groups are keyed by the shared (levels-1)-prefix so that items that
    // would collide after reassignment are handled together.
    std::map<std::vector<int>, std::vector<int>> by_prefix;
    for (const auto& [code, members] : groups) {
      if (members.size() < 2) continue;  // no conflict
      std::vector<int> prefix(code.begin(), code.end() - 1);
      auto& bucket = by_prefix[prefix];
      bucket.insert(bucket.end(), members.begin(), members.end());
    }
    const core::Tensor& cb = vae.codebook(levels - 1);
    for (const auto& [prefix, members] : by_prefix) {
      (void)prefix;
      // Include every item sharing this prefix (also currently unique
      // ones) so reassignment cannot create new collisions.
      std::set<int> taken;  // codes already used by non-conflicting items
      for (int i = 0; i < n; ++i) {
        if (std::equal(prefix.begin(), prefix.end(), q.codes[i].begin()) &&
            std::find(members.begin(), members.end(), i) == members.end()) {
          taken.insert(q.codes[i].back());
        }
      }
      // Candidate codes: all codes not taken by unique holders.
      std::vector<int> candidates;
      for (int c = 0; c < k; ++c)
        if (!taken.count(c)) candidates.push_back(c);
      if (candidates.empty()) continue;  // degenerate; keep conflicts
      int m = static_cast<int>(members.size());
      core::Tensor cost({m, static_cast<int64_t>(candidates.size())});
      for (int r = 0; r < m; ++r) {
        for (size_t c = 0; c < candidates.size(); ++c) {
          float s = 0.0f;
          for (int d = 0; d < lat; ++d) {
            float diff =
                q.last_residuals.at(static_cast<int64_t>(members[r]) * lat + d) -
                cb.at(static_cast<int64_t>(candidates[c]) * lat + d);
            s += diff * diff;
          }
          cost.at(r * static_cast<int64_t>(candidates.size()) +
                  static_cast<int64_t>(c)) = s;
        }
      }
      int capacity = (m + static_cast<int>(candidates.size()) - 1) /
                     static_cast<int>(candidates.size());
      core::Tensor plan = SinkhornKnopp(cost, 0.05, 60);
      std::vector<int> assign = BalancedAssign(plan, capacity);
      for (int r = 0; r < m; ++r)
        idx.codes_[members[r]].back() = candidates[assign[r]];
    }
  } else {
    // TIGER-style conflict handling: append a supplementary level that
    // enumerates the members of each conflicting leaf.
    for (auto& [code, members] : groups) {
      (void)code;
      if (members.size() < 2) continue;
      for (size_t r = 0; r < members.size(); ++r) {
        idx.codes_[members[r]].push_back(static_cast<int>(r));
      }
    }
    idx.levels_ = levels + 1;  // worst-case depth
  }
  return idx;
}

ItemIndexing ItemIndexing::Random(int num_items, int levels, int codebook_size,
                                  core::Rng& rng) {
  ItemIndexing idx;
  idx.levels_ = levels;
  idx.codebook_size_ = codebook_size;
  std::set<std::vector<int>> seen;
  idx.codes_.reserve(num_items);
  for (int i = 0; i < num_items; ++i) {
    std::vector<int> code(levels);
    do {
      for (int h = 0; h < levels; ++h)
        code[h] = static_cast<int>(rng.Below(codebook_size));
    } while (seen.count(code));
    seen.insert(code);
    idx.codes_.push_back(std::move(code));
  }
  return idx;
}

ItemIndexing ItemIndexing::VanillaId(int num_items) {
  ItemIndexing idx;
  idx.levels_ = 1;
  idx.codebook_size_ = num_items;
  idx.codes_.reserve(num_items);
  for (int i = 0; i < num_items; ++i) idx.codes_.push_back({i});
  return idx;
}

const std::vector<int>& ItemIndexing::codes(int item) const {
  LCREC_CHECK_GE(item, 0);
  LCREC_CHECK_LT(item, num_items());
  return codes_[item];
}

int ItemIndexing::ConflictCount() const {
  std::map<std::vector<int>, int> counts;
  for (const auto& c : codes_) ++counts[c];
  int conflicts = 0;
  for (const auto& [c, n] : counts) {
    (void)c;
    if (n > 1) conflicts += n;
  }
  return conflicts;
}

std::string ItemIndexing::TokenString(int level, int code) {
  // Levels are spelled <a_..> through <z_..>; a code outside the level's
  // codebook means a corrupted index upstream.
  LCREC_CHECK_GE(level, 0);
  LCREC_CHECK_LT(level, 26);
  LCREC_CHECK_GE(code, 0);
  std::ostringstream os;
  os << "<" << static_cast<char>('a' + level) << "_" << code << ">";
  return os.str();
}

std::vector<std::string> ItemIndexing::AllTokenStrings() const {
  std::set<std::pair<int, int>> used;
  for (const auto& code : codes_) {
    for (size_t h = 0; h < code.size(); ++h)
      used.insert({static_cast<int>(h), code[h]});
  }
  std::vector<std::string> out;
  out.reserve(used.size());
  for (const auto& [level, c] : used) out.push_back(TokenString(level, c));
  return out;
}

std::vector<std::string> ItemIndexing::ItemTokens(int item) const {
  const auto& code = codes(item);
  std::vector<std::string> out;
  out.reserve(code.size());
  for (size_t h = 0; h < code.size(); ++h)
    out.push_back(TokenString(static_cast<int>(h), code[h]));
  return out;
}

std::string ItemIndexing::ItemTokenText(int item) const {
  std::string out;
  for (const std::string& tok : ItemTokens(item)) out += tok;
  return out;
}

PrefixTrie::PrefixTrie(const ItemIndexing& indexing) {
  nodes_.push_back(TrieNode{});
  num_items_ = indexing.num_items();
  for (int item = 0; item < indexing.num_items(); ++item) {
    int node = 0;
    for (int code : indexing.codes(item)) {
      auto it = nodes_[node].children.find(code);
      if (it == nodes_[node].children.end()) {
        int next = static_cast<int>(nodes_.size());
        nodes_[node].children.emplace(code, next);
        nodes_.push_back(TrieNode{});
        node = next;
      } else {
        node = it->second;
      }
    }
    // If two items share a full code sequence (unresolved conflict), the
    // later one wins; ConflictCount() on the indexing reports this.
    nodes_[node].item = item;
  }
}

int PrefixTrie::Walk(const std::vector<int>& prefix) const {
  int node = 0;
  for (int code : prefix) {
    auto it = nodes_[node].children.find(code);
    if (it == nodes_[node].children.end()) return -1;
    node = it->second;
  }
  return node;
}

std::vector<int> PrefixTrie::NextCodes(const std::vector<int>& prefix) const {
  int node = Walk(prefix);
  std::vector<int> out;
  if (node < 0) return out;
  out.reserve(nodes_[node].children.size());
  for (const auto& [code, child] : nodes_[node].children) {
    (void)child;
    out.push_back(code);
  }
  return out;
}

int PrefixTrie::ItemAt(const std::vector<int>& codes) const {
  int node = Walk(codes);
  return node < 0 ? -1 : nodes_[node].item;
}

bool PrefixTrie::IsValidPrefix(const std::vector<int>& prefix) const {
  return Walk(prefix) >= 0;
}

}  // namespace lcrec::quant

#ifndef LCREC_QUANT_INDEXING_H_
#define LCREC_QUANT_INDEXING_H_

#include <map>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/tensor.h"
#include "quant/rqvae.h"

namespace lcrec::quant {

/// How the last-level conflicts of the RQ index tree are handled
/// (Figure 2's ablation axis) or which non-semantic scheme is used.
enum class IndexScheme {
  kLcRec,          // RQ-VAE + uniform semantic mapping (the paper's method)
  kNoUsm,          // RQ-VAE + supplementary disambiguation level (TIGER-style)
  kRandom,         // multi-level random codes, conflict-free by construction
  kVanillaId,      // one unique single-level id per item
};

std::string IndexSchemeName(IndexScheme scheme);

/// The learned index of a full item set: each item maps to a short code
/// sequence ("item indices", e.g. <a_66><b_197><c_236><d_223>). Code
/// sequences may have different lengths across schemes (kNoUsm appends a
/// disambiguation level to conflicting items only).
class ItemIndexing {
 public:
  /// Builds the paper's indexing from a trained RQ-VAE: quantize all item
  /// embeddings (Eq. 1), then redistribute the last-level codewords of
  /// each group of conflicting items via Sinkhorn-Knopp (Eq. 6).
  static ItemIndexing FromRqVae(const RqVae& vae,
                                const core::Tensor& embeddings,
                                bool uniform_semantic_mapping = true);

  /// Multi-level random indices (ablation baseline in Figure 2). Codes
  /// are resampled until every item is unique.
  static ItemIndexing Random(int num_items, int levels, int codebook_size,
                             core::Rng& rng);

  /// Traditional vanilla item ids: one level, one distinct code per item.
  static ItemIndexing VanillaId(int num_items);

  int num_items() const { return static_cast<int>(codes_.size()); }
  int levels() const { return levels_; }
  int codebook_size() const { return codebook_size_; }

  /// Code sequence of one item; aborts on an out-of-range item id.
  const std::vector<int>& codes(int item) const;

  /// Number of items whose code sequence equals another item's.
  int ConflictCount() const;

  /// Token string for level `level`, code `code`: "<a_12>", "<b_7>", ...
  static std::string TokenString(int level, int code);

  /// All distinct token strings used by this indexing, level-major.
  std::vector<std::string> AllTokenStrings() const;

  /// Token strings of one item's code sequence.
  std::vector<std::string> ItemTokens(int item) const;

  /// Item tokens concatenated, e.g. "<a_66><b_197><c_236><d_223>".
  std::string ItemTokenText(int item) const;

 private:
  std::vector<std::vector<int>> codes_;
  int levels_ = 0;
  int codebook_size_ = 0;
};

/// Prefix tree over the code sequences of an ItemIndexing, used for
/// constrained beam search (Section III-D2: probabilities of tokens that
/// would produce illegal item indices are masked out).
class PrefixTrie {
 public:
  explicit PrefixTrie(const ItemIndexing& indexing);

  /// Valid next codes after the given prefix; empty if the prefix is
  /// complete or invalid.
  std::vector<int> NextCodes(const std::vector<int>& prefix) const;

  /// Item id for a complete code sequence, or -1.
  int ItemAt(const std::vector<int>& codes) const;

  /// True if `prefix` is a prefix (proper or complete) of some item.
  bool IsValidPrefix(const std::vector<int>& prefix) const;

  int num_items() const { return num_items_; }

 private:
  struct TrieNode {
    std::map<int, int> children;  // code -> node index
    int item = -1;                // complete item id at this node
  };
  int Walk(const std::vector<int>& prefix) const;  // node index or -1

  std::vector<TrieNode> nodes_;
  int num_items_ = 0;
};

}  // namespace lcrec::quant

#endif  // LCREC_QUANT_INDEXING_H_

#include "quant/rqvae.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>
#include <string>

#include "core/check.h"
#include "core/linalg.h"
#include "core/serialize.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "quant/sinkhorn.h"

namespace lcrec::quant {

namespace {

/// Plain (non-autograd) affine + ReLU helpers for inference paths.
core::Tensor Affine(const core::Tensor& x, const core::Tensor& w,
                    const core::Tensor& b) {
  core::Tensor out = core::MatMul(x, w);
  int64_t m = out.rows(), n = out.cols();
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) out.at(i * n + j) += b.at(j);
  return out;
}

void ReluInPlace(core::Tensor& t) {
  for (int64_t i = 0; i < t.size(); ++i) t.at(i) = std::max(0.0f, t.at(i));
}

/// Nearest codebook row for each row of `r` under squared L2.
std::vector<int> NearestCode(const core::Tensor& r, const core::Tensor& cb) {
  core::Tensor d = core::SquaredDistances(r, cb);
  int64_t n = d.rows(), k = d.cols();
  std::vector<int> codes(n);
  for (int64_t i = 0; i < n; ++i) {
    int best = 0;
    float bv = d.at(i * k);
    for (int64_t j = 1; j < k; ++j) {
      if (d.at(i * k + j) < bv) {
        bv = d.at(i * k + j);
        best = static_cast<int>(j);
      }
    }
    codes[i] = best;
  }
  return codes;
}

}  // namespace

RqVae::RqVae(const RqVaeConfig& config)
    : config_(config),
      rng_(config.seed),
      health_({/*grad_limit=*/0.0f, config.health_max_retries,
               config.health_lr_backoff},
              "rqvae") {
  int in = config_.input_dim, hid = config_.hidden_dim, lat = config_.latent_dim;
  auto init = [&](int fan_in, std::vector<int64_t> shape) {
    return rng_.GaussianTensor(std::move(shape), 1.0 / std::sqrt(fan_in));
  };
  enc_w1_ = store_.Create("enc_w1", init(in, {in, hid}));
  enc_b1_ = store_.Create("enc_b1", core::Tensor::Zeros({hid}));
  enc_w2_ = store_.Create("enc_w2", init(hid, {hid, lat}));
  enc_b2_ = store_.Create("enc_b2", core::Tensor::Zeros({lat}));
  dec_w1_ = store_.Create("dec_w1", init(lat, {lat, hid}));
  dec_b1_ = store_.Create("dec_b1", core::Tensor::Zeros({hid}));
  dec_w2_ = store_.Create("dec_w2", init(hid, {hid, in}));
  dec_b2_ = store_.Create("dec_b2", core::Tensor::Zeros({in}));
  for (int h = 0; h < config_.levels; ++h) {
    codebooks_.push_back(store_.Create(
        "codebook_" + std::to_string(h),
        rng_.GaussianTensor({config_.codebook_size, lat}, 0.05)));
  }
  optimizer_ = std::make_unique<core::AdamW>(store_.All(), 0.9f, 0.999f,
                                             1e-8f, 0.0f);
}

core::Tensor RqVae::EncodeLatent(const core::Tensor& embeddings) const {
  core::Tensor h = Affine(embeddings, enc_w1_->value, enc_b1_->value);
  ReluInPlace(h);
  return Affine(h, enc_w2_->value, enc_b2_->value);
}

core::Tensor RqVae::DecodeLatent(const core::Tensor& z_hat) const {
  core::Tensor h = Affine(z_hat, dec_w1_->value, dec_b1_->value);
  ReluInPlace(h);
  return Affine(h, dec_w2_->value, dec_b2_->value);
}

void RqVae::InitializeCodebooks(const core::Tensor& embeddings) {
  // Residual k-means initialization: at each level, run Lloyd iterations
  // (k-means++-style seeding) on the current residuals so the codebooks
  // start as genuine cluster centers — this is what makes the level-1
  // codes capture coarse semantics (category/subcategory structure).
  core::Tensor r = EncodeLatent(embeddings);
  int64_t n = r.rows();
  int lat = config_.latent_dim, k = config_.codebook_size;
  for (int h = 0; h < config_.levels; ++h) {
    core::Tensor& cb = codebooks_[h]->value;
    // k-means++ seeding: first center random, rest sampled proportional to
    // squared distance from the nearest chosen center.
    std::vector<int64_t> seeds;
    seeds.push_back(rng_.Below(n));
    std::vector<double> best_d(static_cast<size_t>(n),
                               std::numeric_limits<double>::max());
    auto update_best = [&](int64_t center_row) {
      for (int64_t i = 0; i < n; ++i) {
        double s = 0.0;
        for (int c = 0; c < lat; ++c) {
          double diff = r.at(i * lat + c) - r.at(center_row * lat + c);
          s += diff * diff;
        }
        best_d[static_cast<size_t>(i)] =
            std::min(best_d[static_cast<size_t>(i)], s);
      }
    };
    update_best(seeds[0]);
    while (static_cast<int>(seeds.size()) < k) {
      double total = 0.0;
      for (double w : best_d) total += w;
      int64_t pick;
      if (total <= 1e-20) {
        pick = rng_.Below(n);
      } else {
        pick = rng_.Categorical(best_d);
      }
      seeds.push_back(pick);
      update_best(pick);
    }
    for (int j = 0; j < k; ++j) {
      for (int c = 0; c < lat; ++c) {
        cb.at(static_cast<int64_t>(j) * lat + c) =
            r.at(seeds[static_cast<size_t>(j)] * lat + c) +
            static_cast<float>(rng_.Gaussian(0.0, 1e-4));
      }
    }
    // Lloyd iterations.
    std::vector<int> codes;
    for (int iter = 0; iter < 15; ++iter) {
      codes = NearestCode(r, cb);
      core::Tensor sums({k, lat});
      std::vector<int64_t> counts(static_cast<size_t>(k), 0);
      for (int64_t i = 0; i < n; ++i) {
        ++counts[static_cast<size_t>(codes[i])];
        for (int c = 0; c < lat; ++c) {
          sums.at(static_cast<int64_t>(codes[i]) * lat + c) +=
              r.at(i * lat + c);
        }
      }
      for (int j = 0; j < k; ++j) {
        if (counts[static_cast<size_t>(j)] == 0) continue;  // keep seed
        for (int c = 0; c < lat; ++c) {
          cb.at(static_cast<int64_t>(j) * lat + c) =
              sums.at(static_cast<int64_t>(j) * lat + c) /
              static_cast<float>(counts[static_cast<size_t>(j)]);
        }
      }
    }
    codes = NearestCode(r, cb);
    for (int64_t i = 0; i < n; ++i) {
      for (int c = 0; c < lat; ++c) {
        r.at(i * lat + c) -= cb.at(static_cast<int64_t>(codes[i]) * lat + c);
      }
    }
  }
  codebooks_initialized_ = true;
}

float RqVae::TrainBatch(const core::Tensor& batch) {
  int64_t n = batch.rows();
  int lat = config_.latent_dim;
  core::Graph g;
  core::VarId e = g.Input(batch);
  core::VarId h1 = g.Relu(g.AddBias(g.MatMul(e, g.Param(enc_w1_)),
                                    g.Param(enc_b1_)));
  core::VarId z = g.AddBias(g.MatMul(h1, g.Param(enc_w2_)), g.Param(enc_b2_));

  core::VarId r = z;
  core::VarId rq_loss = g.Input(core::Tensor::Scalar(0.0f));
  core::Tensor z_hat_val({n, lat});
  for (int level = 0; level < config_.levels; ++level) {
    const core::Tensor& r_val = g.val(r);
    const core::Tensor& cb_val = codebooks_[level]->value;
    std::vector<int> codes;
    bool last = level == config_.levels - 1;
    if (last && config_.uniform_last_level &&
        n <= static_cast<int64_t>(config_.codebook_size) *
                 ((n + config_.codebook_size - 1) / config_.codebook_size)) {
      // Algorithm 1 line 6: solve Eq. (6) over the batch via Sinkhorn-Knopp.
      core::Tensor cost = core::SquaredDistances(r_val, cb_val);
      core::Tensor plan = SinkhornKnopp(cost, config_.sinkhorn_epsilon,
                                        config_.sinkhorn_iterations);
      int capacity = static_cast<int>((n + config_.codebook_size - 1) /
                                      config_.codebook_size);
      codes = BalancedAssign(plan, capacity);
    } else {
      codes = NearestCode(r_val, cb_val);
    }
    core::VarId cb = g.Param(codebooks_[level]);
    core::VarId v = g.Rows(cb, codes);
    // Eq. (4): codebook term pulls centers to residuals; commitment term
    // pulls residuals to centers.
    core::VarId codebook_term = g.MseLossVar(g.StopGradient(r), v);
    core::VarId commit_term = g.MseLossVar(r, g.StopGradient(v));
    rq_loss = g.Add(rq_loss,
                    g.Add(codebook_term, g.Scale(commit_term, config_.beta)));
    // Accumulate z_hat (values only; decoder gradient bypasses the
    // quantizer via the straight-through estimator below).
    const core::Tensor& v_val = g.val(v);
    for (int64_t i = 0; i < n * lat; ++i) z_hat_val.at(i) += v_val.at(i);
    r = g.Sub(r, g.StopGradient(v));
  }

  // Straight-through: decoder input = z + sg(z_hat - z).
  core::Tensor delta = z_hat_val;
  delta.Axpy(-1.0f, g.val(z));
  core::VarId dec_in = g.Add(z, g.Input(delta));
  core::VarId d1 = g.Relu(g.AddBias(g.MatMul(dec_in, g.Param(dec_w1_)),
                                    g.Param(dec_b1_)));
  core::VarId e_hat = g.AddBias(g.MatMul(d1, g.Param(dec_w2_)),
                                g.Param(dec_b2_));
  core::VarId recon = g.MseLoss(e_hat, batch);
  core::VarId loss = g.Add(recon, rq_loss);

  store_.ZeroGrad();
  g.Backward(loss);
  optimizer_->Step(config_.learning_rate * lr_scale_);
  return g.val(loss).item();
}

float RqVae::TrainEpoch(const core::Tensor& embeddings) {
  rolled_back_ = false;
  if (!codebooks_initialized_) InitializeCodebooks(embeddings);
  int64_t n = embeddings.rows();
  int in = config_.input_dim;
  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng_.Shuffle(order);
  float total = 0.0f;
  int batches = 0;
  for (int64_t start = 0; start < n; start += config_.batch_size) {
    int64_t end = std::min<int64_t>(n, start + config_.batch_size);
    core::Tensor batch({end - start, in});
    for (int64_t i = start; i < end; ++i)
      for (int j = 0; j < in; ++j)
        batch.at((i - start) * in + j) = embeddings.at(order[i] * in + j);
    total += TrainBatch(batch);
    ++batches;
  }
  float mean = total / static_cast<float>(std::max(1, batches));
  if (!health_.Healthy(mean, 0.0)) {
    health_.OnUnhealthy(mean, 0.0, has_checkpoint_);
    Rollback();
    return mean;  // epoch abandoned; caller re-runs it
  }
  epoch_losses_.push_back(mean);
  ++epochs_done_;
  if (CheckpointingEnabled() &&
      (config_.ckpt_every <= 0 || epochs_done_ % config_.ckpt_every == 0)) {
    SaveCheckpoint();
  }
  return mean;
}

float RqVae::TrainAutoencoderBatch(const core::Tensor& batch) {
  core::Graph g;
  core::VarId e = g.Input(batch);
  core::VarId h1 = g.Relu(g.AddBias(g.MatMul(e, g.Param(enc_w1_)),
                                    g.Param(enc_b1_)));
  core::VarId z = g.AddBias(g.MatMul(h1, g.Param(enc_w2_)), g.Param(enc_b2_));
  core::VarId d1 = g.Relu(g.AddBias(g.MatMul(z, g.Param(dec_w1_)),
                                    g.Param(dec_b1_)));
  core::VarId e_hat = g.AddBias(g.MatMul(d1, g.Param(dec_w2_)),
                                g.Param(dec_b2_));
  core::VarId loss = g.MseLoss(e_hat, batch);
  store_.ZeroGrad();
  g.Backward(loss);
  optimizer_->Step(config_.learning_rate * lr_scale_);
  return g.val(loss).item();
}

void RqVae::EncodeState(ckpt::Checkpoint* c) const {
  c->step = epochs_done_;
  {
    std::ostringstream os(std::ios::binary);
    core::SaveParamsToStream(const_cast<core::ParamStore&>(store_), os);
    c->Add("params", std::move(os).str());
  }
  {
    std::ostringstream os(std::ios::binary);
    optimizer_->SaveState(os);
    c->Add("optim", std::move(os).str());
  }
  {
    std::ostringstream os;
    rng_.Save(os);
    c->Add("rng", std::move(os).str());
  }
  {
    std::ostringstream ts(std::ios::binary);
    ckpt::PutPod(ts, static_cast<int64_t>(epochs_done_));
    ckpt::PutPod(ts, static_cast<int64_t>(warmup_done_));
    ckpt::PutPod(ts, static_cast<uint8_t>(codebooks_initialized_ ? 1 : 0));
    ckpt::PutPod(ts, lr_scale_);
    ckpt::PutPod(ts, static_cast<uint64_t>(epoch_losses_.size()));
    if (!epoch_losses_.empty()) {
      ts.write(reinterpret_cast<const char*>(epoch_losses_.data()),
               static_cast<std::streamsize>(epoch_losses_.size() *
                                            sizeof(float)));
    }
    c->Add("trainer", std::move(ts).str());
  }
}

bool RqVae::DecodeState(const ckpt::Checkpoint& c) {
  const std::string* params = c.Find("params");
  const std::string* optim = c.Find("optim");
  const std::string* rng = c.Find("rng");
  const std::string* trainer = c.Find("trainer");
  if (!params || !optim || !rng || !trainer) {
    obs::Log(obs::LogLevel::kWarn,
             "[rqvae] checkpoint is missing a required section");
    return false;
  }
  std::istringstream ts(*trainer, std::ios::binary);
  int64_t epochs_done = 0, warmup_done = 0;
  uint8_t initialized = 0;
  float lr_scale = 1.0f;
  uint64_t n_losses = 0;
  if (!ckpt::GetPod(ts, &epochs_done) || !ckpt::GetPod(ts, &warmup_done) ||
      !ckpt::GetPod(ts, &initialized) || !ckpt::GetPod(ts, &lr_scale) ||
      !ckpt::GetPod(ts, &n_losses) || n_losses > (1u << 26)) {
    obs::Log(obs::LogLevel::kWarn, "[rqvae] malformed trainer section");
    return false;
  }
  std::vector<float> losses(n_losses);
  if (n_losses > 0) {
    ts.read(reinterpret_cast<char*>(losses.data()),
            static_cast<std::streamsize>(n_losses * sizeof(float)));
    if (!ts) {
      obs::Log(obs::LogLevel::kWarn, "[rqvae] malformed trainer section");
      return false;
    }
  }
  {
    std::istringstream is(*params, std::ios::binary);
    if (!core::LoadParamsFromStream(store_, is)) return false;
  }
  {
    std::istringstream is(*optim, std::ios::binary);
    if (!optimizer_->LoadState(is)) {
      obs::Log(obs::LogLevel::kWarn, "[rqvae] optimizer state rejected");
      return false;
    }
  }
  {
    std::istringstream is(*rng);
    if (!rng_.Restore(is)) {
      obs::Log(obs::LogLevel::kWarn, "[rqvae] rng state rejected");
      return false;
    }
  }
  epochs_done_ = static_cast<int>(epochs_done);
  warmup_done_ = static_cast<int>(warmup_done);
  codebooks_initialized_ = initialized != 0;
  lr_scale_ = lr_scale;
  epoch_losses_ = std::move(losses);
  return true;
}

bool RqVae::SaveCheckpoint() {
  ckpt::Checkpoint c;
  EncodeState(&c);
  std::string error;
  if (!ckpt::SaveToDir(config_.ckpt_dir, c, config_.ckpt_keep, &error)) {
    obs::Log(obs::LogLevel::kWarn, "[rqvae] checkpoint save failed: %s",
             error.c_str());
    return false;
  }
  has_checkpoint_ = true;
  return true;
}

bool RqVae::TryResume() {
  if (!CheckpointingEnabled()) return false;
  ckpt::Checkpoint c;
  std::string path;
  if (!ckpt::LoadLatestValid(config_.ckpt_dir, &c, &path)) return false;
  if (!DecodeState(c)) {
    obs::Log(obs::LogLevel::kWarn,
             "[rqvae] checkpoint %s does not match this model; starting "
             "fresh",
             path.c_str());
    return false;
  }
  has_checkpoint_ = true;
  obs::Log(obs::LogLevel::kInfo, "[rqvae] resumed from %s (epoch %d)",
           path.c_str(), epochs_done_);
  return true;
}

void RqVae::Rollback() {
  ckpt::Checkpoint c;
  std::string path;
  const bool restored =
      ckpt::LoadLatestValid(config_.ckpt_dir, &c, &path) && DecodeState(c);
  LCREC_CHECK(restored);
  lr_scale_ *= config_.health_lr_backoff;
  rolled_back_ = true;
  obs::Log(obs::LogLevel::kWarn,
           "[rqvae] rolled back to %s (epoch %d); lr scale now %g",
           path.c_str(), epochs_done_, static_cast<double>(lr_scale_));
}

float RqVae::Train(const core::Tensor& embeddings) {
  obs::ScopedSpan span("quant.rqvae_train");
  if (config_.resume) TryResume();
  // Warmup: train the autoencoder alone so the latent space preserves the
  // input geometry; only then seed the codebooks by residual k-means.
  // A resumed run that already initialized its codebooks skips this.
  while (warmup_done_ < config_.warmup_epochs && !codebooks_initialized_) {
    TrainAutoencoderBatch(embeddings);
    ++warmup_done_;
    if (CheckpointingEnabled() && config_.ckpt_every > 0 &&
        warmup_done_ % config_.ckpt_every == 0) {
      SaveCheckpoint();
    }
  }
  float last = epoch_losses_.empty() ? 0.0f : epoch_losses_.back();
  while (epochs_done_ < config_.epochs) {
    float mean = TrainEpoch(embeddings);
    if (rolled_back_) continue;  // re-run from the restored state
    last = mean;
  }
  RecordQuantizationMetrics(embeddings, last);
  return last;
}

void RqVae::RecordQuantizationMetrics(const core::Tensor& embeddings,
                                      float train_loss) const {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("lcrec.quant.rqvae.train_loss").Set(train_loss);
  registry.GetGauge("lcrec.quant.rqvae.recon_mse")
      .Set(ReconstructionError(embeddings));
  // Per-level code usage: utilization (fraction of codebook rows that
  // index at least one item) and perplexity (effective number of codes,
  // exp of the code-distribution entropy; K means perfectly uniform).
  QuantizeResult q = QuantizeAll(embeddings);
  int64_t n = static_cast<int64_t>(q.codes.size());
  if (n == 0) return;
  for (int h = 0; h < config_.levels; ++h) {
    std::vector<int64_t> counts(static_cast<size_t>(config_.codebook_size), 0);
    for (int64_t i = 0; i < n; ++i) ++counts[static_cast<size_t>(q.codes[i][h])];
    int used = 0;
    double entropy = 0.0;
    for (int64_t c : counts) {
      if (c == 0) continue;
      ++used;
      double p = static_cast<double>(c) / static_cast<double>(n);
      entropy -= p * std::log(p);
    }
    std::string suffix = ".l" + std::to_string(h);
    registry.GetGauge("lcrec.quant.rqvae.codebook_util" + suffix)
        .Set(static_cast<double>(used) /
             static_cast<double>(config_.codebook_size));
    registry.GetGauge("lcrec.quant.rqvae.codebook_perplexity" + suffix)
        .Set(std::exp(entropy));
  }
}

RqVae::QuantizeResult RqVae::QuantizeAll(const core::Tensor& embeddings) const {
  obs::ScopedSpan span("quant.rqvae_quantize");
  core::Tensor r = EncodeLatent(embeddings);
  int64_t n = r.rows();
  int lat = config_.latent_dim;
  QuantizeResult result;
  result.codes.assign(static_cast<size_t>(n),
                      std::vector<int>(config_.levels, 0));
  for (int h = 0; h < config_.levels; ++h) {
    if (h == config_.levels - 1) result.last_residuals = r;
    const core::Tensor& cb = codebooks_[h]->value;
    std::vector<int> codes = NearestCode(r, cb);
    for (int64_t i = 0; i < n; ++i) {
      result.codes[i][h] = codes[i];
      for (int c = 0; c < lat; ++c)
        r.at(i * lat + c) -= cb.at(static_cast<int64_t>(codes[i]) * lat + c);
    }
  }
  return result;
}

float RqVae::ReconstructionError(const core::Tensor& embeddings) const {
  QuantizeResult q = QuantizeAll(embeddings);
  int64_t n = embeddings.rows();
  int lat = config_.latent_dim;
  core::Tensor z_hat({n, lat});
  for (int64_t i = 0; i < n; ++i) {
    for (int h = 0; h < config_.levels; ++h) {
      const core::Tensor& cb = codebooks_[h]->value;
      for (int c = 0; c < lat; ++c)
        z_hat.at(i * lat + c) +=
            cb.at(static_cast<int64_t>(q.codes[i][h]) * lat + c);
    }
  }
  core::Tensor e_hat = DecodeLatent(z_hat);
  double mse = 0.0;
  for (int64_t i = 0; i < embeddings.size(); ++i) {
    double d = e_hat.at(i) - embeddings.at(i);
    mse += d * d;
  }
  return static_cast<float>(mse / embeddings.size());
}

}  // namespace lcrec::quant

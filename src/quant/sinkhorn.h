#ifndef LCREC_QUANT_SINKHORN_H_
#define LCREC_QUANT_SINKHORN_H_

#include <vector>

#include "core/tensor.h"

namespace lcrec::quant {

/// Solves the entropy-regularized optimal-transport problem of Eq. (6):
///
///   min_Q  sum_{i,k} Q[i,k] * cost[i,k]
///   s.t.   sum_k Q[i,k] = 1        (each residual fully assigned)
///          sum_i Q[i,k] = n / K    (uniform codeword usage)
///
/// via the Sinkhorn-Knopp algorithm [Cuturi 2013]: Q = diag(u) G diag(v)
/// with G = exp(-cost / epsilon), alternately scaling rows and columns.
/// Returns the transport plan Q ([n, K], rows sum to 1).
core::Tensor SinkhornKnopp(const core::Tensor& cost, double epsilon = 0.05,
                           int iterations = 60);

/// Converts a transport plan into a hard balanced assignment: processes
/// (row, column) pairs by descending plan weight and gives each row its
/// best still-available column, where each column can hold at most
/// `capacity` rows. Requires n <= K * capacity.
std::vector<int> BalancedAssign(const core::Tensor& plan, int capacity);

}  // namespace lcrec::quant

#endif  // LCREC_QUANT_SINKHORN_H_

#include "text/encoder.h"

#include <cmath>
#include <unordered_map>

#include "core/rng.h"
#include "text/vocab.h"

namespace lcrec::text {

namespace {
uint64_t HashString(const std::string& s, uint64_t seed) {
  // FNV-1a with seed mixing.
  uint64_t h = 1469598103934665603ull ^ (seed * 0x9E3779B97F4A7C15ull);
  for (char c : s) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return h;
}
}  // namespace

TextEncoder::TextEncoder(int dim, uint64_t seed) : dim_(dim), seed_(seed) {}

core::Tensor TextEncoder::WordVector(const std::string& word) const {
  auto it = cache_.find(word);
  if (it != cache_.end()) return it->second;
  core::Rng rng(HashString(word, seed_));
  core::Tensor v = rng.GaussianTensor({dim_}, 1.0);
  cache_.emplace(word, v);
  return v;
}

core::Tensor TextEncoder::Encode(const std::string& doc) const {
  std::vector<std::string> words = Tokenize(doc);
  core::Tensor out({dim_});
  if (words.empty()) return out;
  // Damped term frequency: each word contributes sqrt(count) times its
  // unit direction, which keeps highly repeated words from dominating.
  std::unordered_map<std::string, int> counts;
  for (const std::string& w : words) ++counts[w];
  for (const auto& [w, c] : counts) {
    core::Tensor v = WordVector(w);
    float weight = std::sqrt(static_cast<float>(c));
    out.Axpy(weight, v);
  }
  float norm = std::sqrt(out.SquaredNorm());
  if (norm > 1e-12f) {
    for (int64_t i = 0; i < out.size(); ++i) out.at(i) /= norm;
  }
  return out;
}

core::Tensor TextEncoder::EncodeBatch(const std::vector<std::string>& docs) const {
  core::Tensor out({static_cast<int64_t>(docs.size()), dim_});
  for (size_t i = 0; i < docs.size(); ++i) {
    core::Tensor e = Encode(docs[i]);
    for (int j = 0; j < dim_; ++j)
      out.at(static_cast<int64_t>(i) * dim_ + j) = e.at(j);
  }
  return out;
}

}  // namespace lcrec::text

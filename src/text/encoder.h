#ifndef LCREC_TEXT_ENCODER_H_
#define LCREC_TEXT_ENCODER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/tensor.h"

namespace lcrec::text {

/// Deterministic text-embedding model standing in for the frozen LLaMA
/// encoder used by the paper to embed item titles + descriptions
/// (Section IV-A4: "utilize LLaMA to encode the title and description of
/// the item ... and use mean pooling").
///
/// Each distinct word is assigned a fixed Gaussian vector from a hash-
/// seeded RNG; a document embedding is the tf-damped mean of its word
/// vectors, L2-normalized. Documents that share many words (items in the
/// same synthetic category/platform) therefore land close together, which
/// is the only property the downstream RQ-VAE relies on.
class TextEncoder {
 public:
  /// `dim` is the output embedding size; `seed` fixes all word vectors.
  explicit TextEncoder(int dim = 64, uint64_t seed = 1234);

  /// Embeds a document (title + description concatenation).
  core::Tensor Encode(const std::string& doc) const;

  /// Embeds a batch of documents into a [n, dim] matrix.
  core::Tensor EncodeBatch(const std::vector<std::string>& docs) const;

  int dim() const { return dim_; }

 private:
  core::Tensor WordVector(const std::string& word) const;

  int dim_;
  uint64_t seed_;
  mutable std::unordered_map<std::string, core::Tensor> cache_;
};

}  // namespace lcrec::text

#endif  // LCREC_TEXT_ENCODER_H_

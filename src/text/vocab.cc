#include "text/vocab.h"

#include <cctype>

#include "core/check.h"

namespace lcrec::text {

std::vector<std::string> Tokenize(const std::string& s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    char c = s[i];
    if (c == '<') {
      // Angle-bracketed span: scan to the matching '>'.
      size_t j = s.find('>', i);
      if (j != std::string::npos) {
        out.push_back(s.substr(i, j - i + 1));
        i = j + 1;
        continue;
      }
      ++i;
      continue;
    }
    if (std::isalnum(static_cast<unsigned char>(c))) {
      size_t j = i;
      std::string word;
      while (j < s.size() &&
             (std::isalnum(static_cast<unsigned char>(s[j])) || s[j] == '\'')) {
        word.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(s[j]))));
        ++j;
      }
      out.push_back(std::move(word));
      i = j;
      continue;
    }
    ++i;  // punctuation / whitespace
  }
  return out;
}

Vocabulary::Vocabulary() {
  AddToken("<pad>");
  AddToken("<bos>");
  AddToken("<eos>");
  AddToken("<unk>");
}

int Vocabulary::AddToken(const std::string& token) {
  auto it = index_.find(token);
  if (it != index_.end()) return it->second;
  int id = static_cast<int>(tokens_.size());
  tokens_.push_back(token);
  index_.emplace(token, id);
  return id;
}

const std::string& Vocabulary::TokenOf(int id) const {
  LCREC_CHECK_GE(id, 0);
  LCREC_CHECK_LT(id, size());
  return tokens_[id];
}

int Vocabulary::Id(const std::string& token) const {
  auto it = index_.find(token);
  return it == index_.end() ? kUnk : it->second;
}

bool Vocabulary::Contains(const std::string& token) const {
  return index_.count(token) > 0;
}

std::vector<int> Vocabulary::Encode(const std::string& s) const {
  std::vector<int> ids;
  for (const std::string& tok : Tokenize(s)) ids.push_back(Id(tok));
  return ids;
}

std::string Vocabulary::Decode(const std::vector<int>& ids) const {
  std::string out;
  for (int id : ids) {
    if (id == kPad || id == kBos || id == kEos) continue;
    if (id < 0 || id >= size()) continue;
    if (!out.empty()) out.push_back(' ');
    out += tokens_[id];
  }
  return out;
}

}  // namespace lcrec::text

#ifndef LCREC_TEXT_VOCAB_H_
#define LCREC_TEXT_VOCAB_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace lcrec::text {

/// Word-level tokenizer. Lowercases, splits on whitespace/punctuation, and
/// keeps angle-bracketed spans such as "<a_12>" intact as single tokens so
/// item-index tokens survive tokenization (Section III-C uses tokens like
/// <a_124><b_192>... inside natural-language instructions).
std::vector<std::string> Tokenize(const std::string& s);

/// Token vocabulary with reserved special tokens. Item-index tokens are
/// appended with AddToken after the text vocabulary is built, mirroring
/// how LC-Rec appends OOV index tokens to the LLaMA tokenizer.
class Vocabulary {
 public:
  static constexpr int kPad = 0;
  static constexpr int kBos = 1;
  static constexpr int kEos = 2;
  static constexpr int kUnk = 3;

  Vocabulary();

  /// Adds a token if absent; returns its id either way.
  int AddToken(const std::string& token);

  /// Id of a token, or kUnk if absent.
  int Id(const std::string& token) const;

  bool Contains(const std::string& token) const;

  /// Token string for a valid id; aborts on a vocab-id overflow (a
  /// generated id outside [0, size()), e.g. from a stale vocabulary).
  const std::string& TokenOf(int id) const;

  int size() const { return static_cast<int>(tokens_.size()); }

  /// Encodes text into token ids (without bos/eos).
  std::vector<int> Encode(const std::string& s) const;

  /// Decodes ids into a space-joined string, skipping pad/bos/eos.
  std::string Decode(const std::vector<int>& ids) const;

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace lcrec::text

#endif  // LCREC_TEXT_VOCAB_H_

#ifndef LCREC_DATA_CATALOG_H_
#define LCREC_DATA_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.h"

namespace lcrec::data {

/// The three evaluation domains, analogues of the paper's Amazon subsets
/// "Musical Instruments", "Arts, Crafts and Sewing" and "Video Games"
/// (Table II).
enum class Domain { kInstruments, kArts, kGames };

std::string DomainName(Domain d);

/// An item with latent structure (category/subcategory/brand/platform)
/// and generated text. The latent fields drive both the text generator
/// (language semantics) and the interaction generator (collaborative
/// semantics), so the two semantic spaces are correlated but not
/// identical — the property probed by the paper's Table V.
struct Item {
  int id = 0;
  int category = 0;
  int subcategory = 0;  // global subcategory id
  int brand = 0;
  int platform = 0;
  std::vector<int> attributes;  // global attribute ids (for FDSA/S3-Rec)
  std::string title;
  std::string description;
};

struct CatalogConfig {
  Domain domain = Domain::kGames;
  int num_items = 400;
  int num_brands = 12;
  uint64_t seed = 42;
};

/// A generated item catalog.
class Catalog {
 public:
  static Catalog Generate(const CatalogConfig& config);

  const std::vector<Item>& items() const { return items_; }
  const Item& item(int id) const { return items_.at(id); }
  int size() const { return static_cast<int>(items_.size()); }

  int num_categories() const { return num_categories_; }
  int num_subcategories() const { return num_subcategories_; }
  int num_attributes() const { return num_attributes_; }
  Domain domain() const { return config_.domain; }

  /// Title + description, the document embedded for index learning.
  std::string ItemDocument(int id) const;

  /// A synthetic user-intention query for the item, standing in for the
  /// GPT-3.5-extracted intentions of Section III-C3b. Mentions the item's
  /// latent feature words plus noise, so it is correlated with — but not a
  /// copy of — the description.
  std::string IntentionFor(int id, core::Rng& rng) const;

  /// A short review for the item (source text the paper distills with
  /// GPT-3.5; kept for completeness and used by tests).
  std::string ReviewFor(int id, core::Rng& rng) const;

  /// A preference summary for a set of items (Section III-C3c analogue).
  std::string PreferenceSummary(const std::vector<int>& item_ids,
                                core::Rng& rng) const;

 private:
  CatalogConfig config_;
  std::vector<Item> items_;
  int num_categories_ = 0;
  int num_subcategories_ = 0;
  int num_attributes_ = 0;

  // Word pools (filled by Generate).
  std::vector<std::string> category_nouns_;
  std::vector<std::vector<std::string>> subcat_adjectives_;  // per category
  std::vector<std::vector<std::string>> subcat_features_;    // per global subcat
  std::vector<std::string> brand_names_;
  std::vector<std::string> platform_names_;
};

}  // namespace lcrec::data

#endif  // LCREC_DATA_CATALOG_H_

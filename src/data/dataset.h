#ifndef LCREC_DATA_DATASET_H_
#define LCREC_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/catalog.h"

namespace lcrec::data {

struct InteractionConfig {
  int num_users = 800;
  double mean_extra_len = 5.0;  // sequence length is min_len + Geometric(mean)
  int min_len = 5;
  int max_len = 40;
  double stay_prob = 0.62;      // Markov probability of staying in the same
                                // subcategory between consecutive interactions
  double pop_exponent = 0.9;    // Zipf popularity skew within a subcategory
  int prefs_per_user = 3;       // number of preferred subcategories per user
  uint64_t seed = 7;
};

/// Generates user interaction sequences over a catalog. Each user has a
/// small set of preferred subcategories; consecutive interactions stay in
/// the same subcategory with `stay_prob` (the sequential/collaborative
/// signal every baseline learns) and item choice within a subcategory is
/// popularity-skewed.
std::vector<std::vector<int>> GenerateInteractions(
    const Catalog& catalog, const InteractionConfig& config);

/// Iterative 5-core filtering: repeatedly drops users with fewer than
/// `min_count` interactions and items with fewer than `min_count`
/// occurrences (Section IV-A1). Item ids are NOT remapped here.
std::vector<std::vector<int>> KCoreFilter(
    std::vector<std::vector<int>> sequences, int min_count = 5);

struct DatasetStats {
  int num_users = 0;
  int num_items = 0;
  int64_t num_interactions = 0;
  double sparsity = 0.0;  // 1 - interactions / (users * items)
  double avg_len = 0.0;
};

/// A fully prepared evaluation dataset: filtered catalog (item ids
/// remapped to a dense range), user sequences, and the leave-one-out
/// protocol of Section IV-A3.
class Dataset {
 public:
  /// Builds a dataset for one of the three domains: generates the
  /// catalog, samples interactions, 5-core filters, and remaps item ids.
  /// `scale` multiplies users/items relative to the default config
  /// (1.0 keeps bench runs laptop-sized).
  static Dataset Make(Domain domain, double scale = 1.0, uint64_t seed = 7);

  /// Builds from explicit configs (used by tests).
  static Dataset Build(const Catalog& catalog,
                       std::vector<std::vector<int>> sequences,
                       int max_seq_len = 20);

  const std::string& name() const { return name_; }
  const std::vector<Item>& items() const { return items_; }
  const Item& item(int id) const { return items_.at(id); }
  int num_items() const { return static_cast<int>(items_.size()); }
  int num_users() const { return static_cast<int>(sequences_.size()); }
  int num_categories() const { return num_categories_; }
  int num_subcategories() const { return num_subcategories_; }
  int num_attributes() const { return num_attributes_; }
  int max_seq_len() const { return max_seq_len_; }
  Domain domain() const { return domain_; }

  /// Full chronological sequence of a user (length >= 5).
  const std::vector<int>& sequence(int user) const {
    return sequences_.at(user);
  }

  // Leave-one-out protocol (Section IV-A3): last item = test, second to
  // last = validation, rest = training. All contexts are truncated to the
  // most recent `max_seq_len` items.

  /// Training context for predicting the validation item.
  std::vector<int> TrainContext(int user) const;
  /// All items available for training (sequence minus the last two).
  std::vector<int> TrainItems(int user) const;
  int ValidTarget(int user) const;
  /// Context for the test prediction (everything but the last item).
  std::vector<int> TestContext(int user) const;
  int TestTarget(int user) const;

  std::string ItemDocument(int id) const;
  std::string IntentionFor(int id, core::Rng& rng) const;
  std::string ReviewFor(int id, core::Rng& rng) const;
  std::string PreferenceSummary(const std::vector<int>& ids,
                                core::Rng& rng) const;
  const Catalog& catalog() const { return catalog_; }
  /// Maps a dataset item id back to the id in the original catalog.
  int OriginalId(int id) const { return original_ids_.at(id); }

  DatasetStats Stats() const;

 private:
  std::string name_;
  Domain domain_ = Domain::kGames;
  Catalog catalog_;  // original (unfiltered) catalog, kept for text utils
  std::vector<Item> items_;
  std::vector<int> original_ids_;
  std::vector<std::vector<int>> sequences_;
  int max_seq_len_ = 20;
  int num_categories_ = 0;
  int num_subcategories_ = 0;
  int num_attributes_ = 0;
};

}  // namespace lcrec::data

#endif  // LCREC_DATA_DATASET_H_

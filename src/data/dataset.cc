#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/check.h"

namespace lcrec::data {

std::vector<std::vector<int>> GenerateInteractions(
    const Catalog& catalog, const InteractionConfig& config) {
  core::Rng rng(config.seed);
  int num_sub = catalog.num_subcategories();

  // Bucket items by subcategory with Zipf popularity inside each bucket.
  std::vector<std::vector<int>> by_sub(num_sub);
  for (const Item& it : catalog.items()) by_sub[it.subcategory].push_back(it.id);
  std::vector<std::vector<double>> pop(num_sub);
  for (int s = 0; s < num_sub; ++s) {
    pop[s].resize(by_sub[s].size());
    for (size_t r = 0; r < by_sub[s].size(); ++r) {
      pop[s][r] = 1.0 / std::pow(static_cast<double>(r + 1),
                                 config.pop_exponent);
    }
  }

  std::vector<std::vector<int>> sequences;
  sequences.reserve(config.num_users);
  for (int u = 0; u < config.num_users; ++u) {
    // Preferred subcategories (non-empty ones only).
    std::vector<int> prefs;
    int guard = 0;
    while (static_cast<int>(prefs.size()) < config.prefs_per_user &&
           guard++ < 1000) {
      int s = static_cast<int>(rng.Below(num_sub));
      if (by_sub[s].empty()) continue;
      if (std::find(prefs.begin(), prefs.end(), s) == prefs.end())
        prefs.push_back(s);
    }
    if (prefs.empty()) continue;

    int len = config.min_len;
    // Geometric tail with the configured mean.
    double p = 1.0 / (1.0 + config.mean_extra_len);
    while (len < config.max_len && !rng.Bernoulli(p)) ++len;

    std::vector<int> seq;
    seq.reserve(len);
    int cur_sub = prefs[rng.Below(prefs.size())];
    int last_item = -1;
    for (int t = 0; t < len; ++t) {
      if (t > 0 && !rng.Bernoulli(config.stay_prob)) {
        cur_sub = prefs[rng.Below(prefs.size())];
      }
      const auto& bucket = by_sub[cur_sub];
      int item = bucket[rng.Categorical(pop[cur_sub])];
      if (item == last_item && bucket.size() > 1) {
        item = bucket[rng.Categorical(pop[cur_sub])];
      }
      seq.push_back(item);
      last_item = item;
    }
    sequences.push_back(std::move(seq));
  }
  return sequences;
}

std::vector<std::vector<int>> KCoreFilter(
    std::vector<std::vector<int>> sequences, int min_count) {
  bool changed = true;
  while (changed) {
    changed = false;
    std::unordered_map<int, int> item_count;
    for (const auto& seq : sequences)
      for (int it : seq) ++item_count[it];
    // Drop rare items from sequences.
    for (auto& seq : sequences) {
      size_t before = seq.size();
      seq.erase(std::remove_if(seq.begin(), seq.end(),
                               [&](int it) {
                                 return item_count[it] < min_count;
                               }),
                seq.end());
      if (seq.size() != before) changed = true;
    }
    // Drop short users.
    size_t before_users = sequences.size();
    sequences.erase(
        std::remove_if(sequences.begin(), sequences.end(),
                       [&](const std::vector<int>& s) {
                         return static_cast<int>(s.size()) < min_count;
                       }),
        sequences.end());
    if (sequences.size() != before_users) changed = true;
  }
  return sequences;
}

Dataset Dataset::Make(Domain domain, double scale, uint64_t seed) {
  CatalogConfig cc;
  cc.domain = domain;
  cc.seed = seed;
  InteractionConfig ic;
  ic.seed = seed + 1;
  // Long-tail regime matching the paper's operating point: item count on
  // the order of the user count and a flat within-subcategory popularity,
  // so many items have only a handful of interactions. This is the regime
  // where semantic indices share statistical strength across items while
  // per-item ID embeddings starve (the paper's sparsity is 99.9%+ with
  // ~20 interactions per item).
  ic.pop_exponent = 0.45;
  ic.stay_prob = 0.65;
  // Relative sizes mirror Table II: Games > Arts > Instruments.
  switch (domain) {
    case Domain::kInstruments:
      cc.num_items = static_cast<int>(300 * scale);
      ic.num_users = static_cast<int>(320 * scale);
      break;
    case Domain::kArts:
      cc.num_items = static_cast<int>(500 * scale);
      ic.num_users = static_cast<int>(480 * scale);
      break;
    case Domain::kGames:
      cc.num_items = static_cast<int>(420 * scale);
      ic.num_users = static_cast<int>(420 * scale);
      ic.mean_extra_len = 5.5;
      break;
  }
  Catalog catalog = Catalog::Generate(cc);
  auto sequences = GenerateInteractions(catalog, ic);
  sequences = KCoreFilter(std::move(sequences), 5);
  return Build(catalog, std::move(sequences));
}

Dataset Dataset::Build(const Catalog& catalog,
                       std::vector<std::vector<int>> sequences,
                       int max_seq_len) {
  Dataset d;
  d.domain_ = catalog.domain();
  d.name_ = DomainName(catalog.domain());
  d.catalog_ = catalog;
  d.max_seq_len_ = max_seq_len;
  d.num_categories_ = catalog.num_categories();
  d.num_subcategories_ = catalog.num_subcategories();
  d.num_attributes_ = catalog.num_attributes();

  // Remap surviving items to a dense id range.
  std::unordered_map<int, int> remap;
  for (const auto& seq : sequences) {
    for (int it : seq) {
      if (!remap.count(it)) {
        int new_id = static_cast<int>(remap.size());
        remap.emplace(it, new_id);
      }
    }
  }
  d.items_.resize(remap.size());
  d.original_ids_.resize(remap.size());
  for (const auto& [orig, mapped] : remap) {
    Item item = catalog.item(orig);
    item.id = mapped;
    d.items_[mapped] = std::move(item);
    d.original_ids_[mapped] = orig;
  }
  d.sequences_ = std::move(sequences);
  for (auto& seq : d.sequences_)
    for (int& it : seq) it = remap.at(it);
  return d;
}

namespace {
std::vector<int> Tail(const std::vector<int>& v, size_t drop_back,
                      int max_len) {
  LCREC_CHECK_GE(v.size(), drop_back);
  size_t end = v.size() - drop_back;
  size_t start = end > static_cast<size_t>(max_len)
                     ? end - static_cast<size_t>(max_len)
                     : 0;
  return std::vector<int>(v.begin() + static_cast<int64_t>(start),
                          v.begin() + static_cast<int64_t>(end));
}
}  // namespace

std::vector<int> Dataset::TrainContext(int user) const {
  return Tail(sequences_.at(user), 2, max_seq_len_);
}

std::vector<int> Dataset::TrainItems(int user) const {
  const auto& seq = sequences_.at(user);
  return std::vector<int>(seq.begin(), seq.end() - 2);
}

int Dataset::ValidTarget(int user) const {
  const auto& seq = sequences_.at(user);
  return seq[seq.size() - 2];
}

std::vector<int> Dataset::TestContext(int user) const {
  return Tail(sequences_.at(user), 1, max_seq_len_);
}

int Dataset::TestTarget(int user) const { return sequences_.at(user).back(); }

std::string Dataset::ItemDocument(int id) const {
  const Item& it = items_.at(id);
  return it.title + " . " + it.description;
}

std::string Dataset::IntentionFor(int id, core::Rng& rng) const {
  return catalog_.IntentionFor(original_ids_.at(id), rng);
}

std::string Dataset::ReviewFor(int id, core::Rng& rng) const {
  return catalog_.ReviewFor(original_ids_.at(id), rng);
}

std::string Dataset::PreferenceSummary(const std::vector<int>& ids,
                                       core::Rng& rng) const {
  std::vector<int> orig;
  orig.reserve(ids.size());
  for (int id : ids) orig.push_back(original_ids_.at(id));
  return catalog_.PreferenceSummary(orig, rng);
}

DatasetStats Dataset::Stats() const {
  DatasetStats s;
  s.num_users = num_users();
  s.num_items = num_items();
  for (const auto& seq : sequences_) s.num_interactions += seq.size();
  if (s.num_users > 0 && s.num_items > 0) {
    s.sparsity = 1.0 - static_cast<double>(s.num_interactions) /
                           (static_cast<double>(s.num_users) * s.num_items);
    s.avg_len = static_cast<double>(s.num_interactions) / s.num_users;
  }
  return s;
}

}  // namespace lcrec::data

#include "data/catalog.h"

#include <cassert>
#include <sstream>

namespace lcrec::data {

namespace {

struct DomainPools {
  std::vector<std::string> category_nouns;
  std::vector<std::vector<std::string>> subcat_adjectives;  // 4 per category
  std::vector<std::string> feature_words;  // shared pool, sliced per subcat
  std::vector<std::string> usage_words;
  std::vector<std::string> platforms;
};

DomainPools PoolsFor(Domain domain) {
  DomainPools p;
  switch (domain) {
    case Domain::kInstruments:
      p.category_nouns = {"guitar", "keyboard", "drum",      "violin",
                          "microphone", "amplifier", "ukulele", "saxophone"};
      p.subcat_adjectives = {
          {"acoustic", "electric", "classical", "bass"},
          {"digital", "stage", "portable", "weighted"},
          {"electronic", "snare", "practice", "junior"},
          {"student", "professional", "intermediate", "silent"},
          {"condenser", "dynamic", "wireless", "studio"},
          {"tube", "solid", "mini", "stereo"},
          {"soprano", "concert", "tenor", "baritone"},
          {"alto", "curved", "vintage", "lacquered"}};
      p.feature_words = {
          "rosewood",  "maple",    "sustain",   "pickup",   "fretboard",
          "polyphony", "pedal",    "hammer",    "midi",     "cymbal",
          "kickdrum",  "mesh",     "bow",       "string",   "chinrest",
          "cardioid",  "shockmount", "phantom", "preamp",   "gain",
          "reverb",    "overdrive", "wattage",  "tremolo",  "mahogany",
          "aquila",    "geared",   "reed",      "mouthpiece", "engraving",
          "brass",     "keys"};
      p.usage_words = {"practice", "recording", "gigs",     "lessons",
                       "studio",   "touring",   "beginners", "orchestra"};
      p.platforms = {"series one", "series two", "pro line", "studio line",
                     "classic line"};
      break;
    case Domain::kArts:
      p.category_nouns = {"paint",  "brush",  "canvas", "yarn",
                          "marker", "clay",   "fabric", "sketchbook"};
      p.subcat_adjectives = {
          {"acrylic", "watercolor", "oil", "gouache"},
          {"round", "flat", "detail", "fan"},
          {"stretched", "rolled", "panel", "linen"},
          {"wool", "cotton", "chunky", "sock"},
          {"alcohol", "chalk", "fine", "brushtip"},
          {"polymer", "air", "ceramic", "modeling"},
          {"quilting", "felt", "denim", "printed"},
          {"spiral", "hardcover", "toned", "mixed"}};
      p.feature_words = {
          "pigment",  "lightfast", "viscosity", "bristle", "ferrule",
          "handle",   "gesso",     "primed",    "weave",   "skein",
          "ply",      "gauge",     "nib",       "blendable", "archival",
          "kiln",     "glaze",     "texture",   "bolt",    "selvage",
          "gsm",      "spiralbound", "acidfree", "palette", "varnish",
          "medium",   "swatch",    "stencil",   "easel",   "fixative",
          "crochet",  "needle"};
      p.usage_words = {"portraits", "landscapes", "crafting", "knitting",
                       "journaling", "sculpting", "quilting", "sketching"};
      p.platforms = {"starter kit", "studio set", "artist set", "value pack",
                     "premium kit"};
      break;
    case Domain::kGames:
      p.category_nouns = {"action",  "adventure", "puzzle", "racing",
                          "sports",  "strategy",  "shooter", "roleplaying"};
      p.subcat_adjectives = {
          {"stealth", "platformer", "hack", "openworld"},
          {"narrative", "survival", "pointclick", "exploration"},
          {"logic", "match", "physics", "word"},
          {"arcade", "simulation", "kart", "rally"},
          {"basketball", "soccer", "skateboarding", "golf"},
          {"turnbased", "realtime", "citybuilder", "tower"},
          {"tactical", "arena", "looter", "retro"},
          {"fantasy", "scifi", "dungeon", "collector"}};
      p.feature_words = {
          "multiplayer", "campaign",  "coop",      "crafting", "skilltree",
          "bosses",      "sidequests", "leaderboard", "drift",  "nitro",
          "stadium",     "roster",    "season",    "hexgrid",  "resources",
          "loadout",     "ranked",    "respawn",   "dungeons", "loot",
          "classes",     "mounts",    "photomode", "sandbox",  "speedrun",
          "achievements", "checkpoints", "powerups", "combo",  "physics",
          "roguelike",   "permadeath"};
      p.usage_words = {"families", "veterans", "casuals",   "collectors",
                       "speedrunners", "parties", "completionists", "kids"};
      p.platforms = {"playstation", "xbox", "switch", "pc", "handheld"};
      break;
  }
  return p;
}

std::vector<std::string> MakeBrandNames(Domain domain, int n, core::Rng& rng) {
  static const char* kPrefix[] = {"nova", "astra", "peak", "blue", "iron",
                                  "lumen", "echo",  "terra", "vivid", "solar",
                                  "zephyr", "ember", "quartz", "raven", "atlas",
                                  "orion"};
  static const char* kSuffix[] = {"works", "craft", "sonic", "forge",
                                  "labs",  "line",  "gear",  "studio"};
  (void)domain;
  std::vector<std::string> names;
  names.reserve(n);
  for (int i = 0; i < n; ++i) {
    std::string name = std::string(kPrefix[i % 16]) +
                       kSuffix[(i / 16 + static_cast<int>(rng.Below(8))) % 8];
    names.push_back(name);
  }
  return names;
}

}  // namespace

std::string DomainName(Domain d) {
  switch (d) {
    case Domain::kInstruments: return "Instruments";
    case Domain::kArts: return "Arts";
    case Domain::kGames: return "Games";
  }
  return "Unknown";
}

Catalog Catalog::Generate(const CatalogConfig& config) {
  Catalog c;
  c.config_ = config;
  core::Rng rng(config.seed);
  DomainPools pools = PoolsFor(config.domain);

  int num_cat = static_cast<int>(pools.category_nouns.size());
  int sub_per_cat = static_cast<int>(pools.subcat_adjectives[0].size());
  c.num_categories_ = num_cat;
  c.num_subcategories_ = num_cat * sub_per_cat;
  c.category_nouns_ = pools.category_nouns;
  c.subcat_adjectives_ = pools.subcat_adjectives;
  c.brand_names_ = MakeBrandNames(config.domain, config.num_brands, rng);
  c.platform_names_ = pools.platforms;

  // Each global subcategory gets a signature slice of feature words so
  // textual similarity mirrors the latent hierarchy.
  c.subcat_features_.resize(c.num_subcategories_);
  int fw = static_cast<int>(pools.feature_words.size());
  for (int s = 0; s < c.num_subcategories_; ++s) {
    for (int k = 0; k < 4; ++k) {
      c.subcat_features_[s].push_back(pools.feature_words[(s * 3 + k) % fw]);
    }
  }

  // Attribute id space: categories, then subcategories, then brands, then
  // platforms.
  int attr_cat0 = 0;
  int attr_sub0 = num_cat;
  int attr_brand0 = attr_sub0 + c.num_subcategories_;
  int attr_plat0 = attr_brand0 + config.num_brands;
  c.num_attributes_ =
      attr_plat0 + static_cast<int>(c.platform_names_.size());

  c.items_.reserve(config.num_items);
  int num_plat = static_cast<int>(c.platform_names_.size());
  for (int i = 0; i < config.num_items; ++i) {
    Item item;
    item.id = i;
    item.category = static_cast<int>(rng.Below(num_cat));
    int local_sub = static_cast<int>(rng.Below(sub_per_cat));
    item.subcategory = item.category * sub_per_cat + local_sub;
    item.brand = static_cast<int>(rng.Below(config.num_brands));
    item.platform = static_cast<int>(rng.Below(num_plat));
    item.attributes = {attr_cat0 + item.category, attr_sub0 + item.subcategory,
                       attr_brand0 + item.brand, attr_plat0 + item.platform};

    const std::string& noun = pools.category_nouns[item.category];
    const std::string& adj = pools.subcat_adjectives[item.category][local_sub];
    const std::string& brand = c.brand_names_[item.brand];
    const std::string& plat = c.platform_names_[item.platform];
    const auto& feats = c.subcat_features_[item.subcategory];

    std::ostringstream title;
    title << brand << " " << adj << " " << noun << " " << plat << " edition "
          << (i % 97 + 1);
    item.title = title.str();

    std::ostringstream desc;
    desc << "the " << adj << " " << noun << " from " << brand
         << " comes with " << feats[rng.Below(feats.size())] << " and "
         << feats[rng.Below(feats.size())] << ". this " << adj << " " << noun
         << " offers " << feats[rng.Below(feats.size())] << " plus "
         << feats[rng.Below(feats.size())] << " designed for "
         << pools.usage_words[rng.Below(pools.usage_words.size())]
         << ". part of the " << plat << " lineup.";
    item.description = desc.str();

    c.items_.push_back(std::move(item));
  }
  return c;
}

std::string Catalog::ItemDocument(int id) const {
  const Item& it = items_.at(id);
  return it.title + " . " + it.description;
}

std::string Catalog::IntentionFor(int id, core::Rng& rng) const {
  const Item& it = items_.at(id);
  int local_sub = it.subcategory % static_cast<int>(subcat_adjectives_[0].size());
  const auto& feats = subcat_features_[it.subcategory];
  std::ostringstream os;
  static const char* kLead[] = {"looking for", "i want", "searching for",
                                "need"};
  os << kLead[rng.Below(4)] << " a "
     << subcat_adjectives_[it.category][local_sub] << " "
     << category_nouns_[it.category] << " with "
     << feats[rng.Below(feats.size())] << " and "
     << feats[rng.Below(feats.size())];
  if (rng.Bernoulli(0.5)) {
    os << " from the " << platform_names_[it.platform] << " lineup";
  }
  return os.str();
}

std::string Catalog::ReviewFor(int id, core::Rng& rng) const {
  const Item& it = items_.at(id);
  const auto& feats = subcat_features_[it.subcategory];
  std::ostringstream os;
  static const char* kOpen[] = {"i love this", "really enjoy this",
                                "great", "solid"};
  int local_sub = it.subcategory % static_cast<int>(subcat_adjectives_[0].size());
  os << kOpen[rng.Below(4)] << " "
     << subcat_adjectives_[it.category][local_sub] << " "
     << category_nouns_[it.category] << " because of the "
     << feats[rng.Below(feats.size())] << ". the "
     << feats[rng.Below(feats.size())] << " works well.";
  return os.str();
}

std::string Catalog::PreferenceSummary(const std::vector<int>& item_ids,
                                       core::Rng& rng) const {
  // Tally the dominant category/subcategory of the history, then render a
  // summary sentence naming their signature vocabulary.
  std::vector<int> cat_count(num_categories_, 0);
  std::vector<int> sub_count(num_subcategories_, 0);
  for (int id : item_ids) {
    const Item& it = items_.at(id);
    ++cat_count[it.category];
    ++sub_count[it.subcategory];
  }
  int best_cat = 0, best_sub = 0;
  for (int i = 0; i < num_categories_; ++i)
    if (cat_count[i] > cat_count[best_cat]) best_cat = i;
  for (int s = 0; s < num_subcategories_; ++s)
    if (sub_count[s] > sub_count[best_sub]) best_sub = s;
  int local_sub = best_sub % static_cast<int>(subcat_adjectives_[0].size());
  int sub_cat = best_sub / static_cast<int>(subcat_adjectives_[0].size());
  const auto& feats = subcat_features_[best_sub];
  std::ostringstream os;
  os << "the user mostly enjoys " << category_nouns_[best_cat]
     << " items and prefers " << subcat_adjectives_[sub_cat][local_sub]
     << " styles featuring " << feats[rng.Below(feats.size())];
  return os.str();
}

}  // namespace lcrec::data

#ifndef LCREC_TASKS_INSTRUCTIONS_H_
#define LCREC_TASKS_INSTRUCTIONS_H_

#include <string>
#include <vector>

#include "core/rng.h"
#include "data/dataset.h"
#include "llm/trainer.h"
#include "quant/indexing.h"
#include "text/vocab.h"

namespace lcrec::tasks {

/// Which alignment tasks participate in the tuning mixture. The five
/// flags correspond to the rows of Table IV: SEQ, +MUT, +ASY, +ITE, +PER.
struct TaskMixture {
  bool seq = true;   // III-C1  sequential item prediction
  bool mut = false;  // III-C2  explicit index<->language alignment
  bool asy = false;  // III-C3a asymmetric item prediction
  bool ite = false;  // III-C3b item prediction from user intention
  bool per = false;  // III-C3c personalized preference inference

  static TaskMixture SeqOnly() { return TaskMixture{}; }
  static TaskMixture All() { return TaskMixture{true, true, true, true, true}; }
  std::string Name() const;
};

struct InstructionConfig {
  int max_history = 10;       // items rendered into a history prompt
  int seq_targets_per_user = 3;  // sampled SEQ positions per user per epoch
  int max_text_response = 14;    // cap on text-response token count
};

/// Renders instruction-tuning examples for every task of Section III-C and
/// the evaluation prompts, and owns the shared vocabulary registration.
///
/// Section III-D1 / IV-A4 sampling rule: each task has several templates;
/// within an epoch every example is rendered with exactly one randomly
/// sampled template ("a single data is combined with one sampled
/// instruction template and appears only once").
class InstructionBuilder {
 public:
  InstructionBuilder(const data::Dataset* dataset,
                     const quant::ItemIndexing* indexing,
                     text::Vocabulary* vocab,
                     const InstructionConfig& config = {});

  /// Registers every template word, catalog word, generator word and item
  /// index token in the vocabulary. Must run before the LLM is built.
  void RegisterVocabulary();

  /// Builds one epoch of examples under the mixture, freshly sampling
  /// templates (and stochastic text) each call.
  std::vector<llm::TrainExample> BuildEpoch(const TaskMixture& mixture,
                                            core::Rng& rng) const;

  // --- Per-task example builders (also used directly by tests) -----------

  /// SEQ: index history -> next item indices.
  llm::TrainExample SeqExample(const std::vector<int>& history, int target,
                               core::Rng& rng) const;
  /// MUT forward: title/description -> indices.
  llm::TrainExample MutItemToIndexExample(int item, core::Rng& rng) const;
  /// MUT backward: indices -> title.
  llm::TrainExample MutIndexToItemExample(int item, core::Rng& rng) const;
  /// ASY 1: index history -> target title.
  llm::TrainExample AsyTitleExample(const std::vector<int>& history,
                                    int target, core::Rng& rng) const;
  /// ASY 2: index history -> expected item description/features.
  llm::TrainExample AsyDescriptionExample(const std::vector<int>& history,
                                          int target, core::Rng& rng) const;
  /// ASY 3: title history -> target indices.
  llm::TrainExample AsyTitleHistoryExample(const std::vector<int>& history,
                                           int target, core::Rng& rng) const;
  /// ITE 1: instant intention query -> indices.
  llm::TrainExample IteQueryExample(int target, core::Rng& rng) const;
  /// ITE 2: history + intention -> indices.
  llm::TrainExample IteHistoryExample(const std::vector<int>& history,
                                      int target, core::Rng& rng) const;
  /// PER: index history -> preference summary text.
  llm::TrainExample PerExample(const std::vector<int>& history,
                               core::Rng& rng) const;

  // --- Evaluation prompts --------------------------------------------------

  /// Canonical SEQ prompt for full-ranking evaluation.
  std::vector<int> SeqPrompt(const std::vector<int>& history) const;
  /// Intention-retrieval prompt (Figure 3).
  std::vector<int> IntentionPrompt(const std::string& intention) const;
  /// "what is the title of item {indices}" prompt, truncated to the first
  /// `levels` index tokens (Figure 5a / Figure 6 case study).
  std::vector<int> TitleOfItemPrompt(int item, int levels) const;
  /// Ranking prompt asking to pick the next item; candidates appended by
  /// the Table V probe via ScoreContinuation.
  std::vector<int> NextItemPrompt(const std::vector<int>& history,
                                  bool titles) const;

  /// Index token ids of an item (the generation target).
  std::vector<int> ItemIndexTokens(int item) const;
  /// Title token ids of an item.
  std::vector<int> ItemTitleTokens(int item) const;

  const text::Vocabulary& vocab() const { return *vocab_; }
  const InstructionConfig& config() const { return config_; }

 private:
  std::string HistoryIndexText(const std::vector<int>& history) const;
  std::string HistoryTitleText(const std::vector<int>& history) const;
  std::vector<int> Encode(const std::string& s) const;
  std::vector<int> EncodeResponse(const std::string& s) const;
  std::vector<int> ClampHistory(const std::vector<int>& history) const;

  const data::Dataset* dataset_;
  const quant::ItemIndexing* indexing_;
  text::Vocabulary* vocab_;
  InstructionConfig config_;
};

}  // namespace lcrec::tasks

#endif  // LCREC_TASKS_INSTRUCTIONS_H_

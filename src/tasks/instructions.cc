#include "tasks/instructions.h"

#include <algorithm>

#include "core/check.h"

namespace lcrec::tasks {

namespace {

/// Template pools. Placeholders: {hist} {titles} {title} {desc} {query}
/// are substituted by the builders; index tokens survive tokenization.
const std::vector<std::string>& SeqTemplates() {
  static const std::vector<std::string> kTemplates = {
      "user history : {hist} . recommend the next item",
      "here are the user's historical interactions : {hist} . try to "
      "recommend another item to the user",
      "the user interacted with {hist} in order . predict the next item",
      "given interactions {hist} , what item comes next",
  };
  return kTemplates;
}

const std::vector<std::string>& MutToIndexTemplates() {
  static const std::vector<std::string> kTemplates = {
      "an item is called {title} and described as {desc} . which item is it",
      "which item has the title {title} and description {desc}",
      "identify the item named {title} . {desc}",
  };
  return kTemplates;
}

const std::vector<std::string>& MutToItemTemplates() {
  static const std::vector<std::string> kTemplates = {
      "please tell me the title of item {item}",
      "what is item {item} called",
      "give the name of the item {item}",
  };
  return kTemplates;
}

const std::vector<std::string>& AsyTitleTemplates() {
  static const std::vector<std::string> kTemplates = {
      "based on the user's interactions {hist} , predict the title of the "
      "next item",
      "history {hist} . name the item the user may need next",
  };
  return kTemplates;
}

const std::vector<std::string>& AsyDescTemplates() {
  static const std::vector<std::string> kTemplates = {
      "here is the interaction history {hist} . what features does the user "
      "expect from the next item",
      "history {hist} . describe the features of the next item",
  };
  return kTemplates;
}

const std::vector<std::string>& AsyTitleHistTemplates() {
  static const std::vector<std::string> kTemplates = {
      "given the title sequence {titles} , recommend a suitable next item",
      "the user bought {titles} . predict the next item",
  };
  return kTemplates;
}

const std::vector<std::string>& IteQueryTemplates() {
  static const std::vector<std::string> kTemplates = {
      "suppose you are a search engine . a user searches {query} . select "
      "an item for the query",
      "a user wants {query} . respond with an item",
  };
  return kTemplates;
}

const std::vector<std::string>& IteHistTemplates() {
  static const std::vector<std::string> kTemplates = {
      "the user interacted with {hist} and now wants {query} . recommend an "
      "item meeting these criteria",
      "history {hist} . the user desires {query} . pick an item",
  };
  return kTemplates;
}

const std::vector<std::string>& PerTemplates() {
  static const std::vector<std::string> kTemplates = {
      "estimate the user's preferences from the history {hist}",
      "using the interactions {hist} , describe what the user prefers",
  };
  return kTemplates;
}

std::string Substitute(std::string tmpl, const std::string& key,
                       const std::string& value) {
  size_t pos;
  while ((pos = tmpl.find(key)) != std::string::npos) {
    tmpl.replace(pos, key.size(), value);
  }
  return tmpl;
}

std::string Pick(const std::vector<std::string>& pool, core::Rng& rng) {
  return pool[static_cast<size_t>(rng.Below(pool.size()))];
}

}  // namespace

std::string TaskMixture::Name() const {
  if (!mut && !asy && !ite && !per) return "SEQ";
  std::string name = "SEQ";
  if (mut) name += "+MUT";
  if (asy) name += "+ASY";
  if (ite) name += "+ITE";
  if (per) name += "+PER";
  return name;
}

InstructionBuilder::InstructionBuilder(const data::Dataset* dataset,
                                       const quant::ItemIndexing* indexing,
                                       text::Vocabulary* vocab,
                                       const InstructionConfig& config)
    : dataset_(dataset), indexing_(indexing), vocab_(vocab), config_(config) {}

void InstructionBuilder::RegisterVocabulary() {
  auto add_all = [&](const std::string& s) {
    for (const std::string& tok : text::Tokenize(s)) vocab_->AddToken(tok);
  };
  for (const auto& pool :
       {SeqTemplates(), MutToIndexTemplates(), MutToItemTemplates(),
        AsyTitleTemplates(), AsyDescTemplates(), AsyTitleHistTemplates(),
        IteQueryTemplates(), IteHistTemplates(), PerTemplates()}) {
    for (const std::string& t : pool) add_all(t);
  }
  core::Rng rng(99);
  for (int i = 0; i < dataset_->num_items(); ++i) {
    add_all(dataset_->ItemDocument(i));
    // Sample the stochastic generators a few times so every lead/connector
    // word in their pools is registered.
    for (int r = 0; r < 4; ++r) {
      add_all(dataset_->IntentionFor(i, rng));
      add_all(dataset_->ReviewFor(i, rng));
    }
  }
  for (int u = 0; u < std::min(dataset_->num_users(), 64); ++u) {
    add_all(dataset_->PreferenceSummary(dataset_->TrainItems(u), rng));
  }
  for (const std::string& tok : indexing_->AllTokenStrings()) {
    vocab_->AddToken(tok);
  }
}

std::vector<int> InstructionBuilder::Encode(const std::string& s) const {
  return vocab_->Encode(s);
}

std::vector<int> InstructionBuilder::EncodeResponse(const std::string& s) const {
  std::vector<int> ids = vocab_->Encode(s);
  if (static_cast<int>(ids.size()) > config_.max_text_response) {
    ids.resize(config_.max_text_response);
  }
  return ids;
}

std::vector<int> InstructionBuilder::ClampHistory(
    const std::vector<int>& history) const {
  int keep = std::min<int>(config_.max_history,
                           static_cast<int>(history.size()));
  return std::vector<int>(history.end() - keep, history.end());
}

std::string InstructionBuilder::HistoryIndexText(
    const std::vector<int>& history) const {
  std::string out;
  for (int item : ClampHistory(history)) out += indexing_->ItemTokenText(item);
  return out;
}

std::string InstructionBuilder::HistoryTitleText(
    const std::vector<int>& history) const {
  std::string out;
  bool first = true;
  for (int item : ClampHistory(history)) {
    if (!first) out += " , ";
    out += dataset_->item(item).title;
    first = false;
  }
  return out;
}

std::vector<int> InstructionBuilder::ItemIndexTokens(int item) const {
  std::vector<int> ids;
  for (const std::string& tok : indexing_->ItemTokens(item)) {
    LCREC_CHECK(vocab_->Contains(tok));
    ids.push_back(vocab_->Id(tok));
  }
  return ids;
}

std::vector<int> InstructionBuilder::ItemTitleTokens(int item) const {
  return EncodeResponse(dataset_->item(item).title);
}

llm::TrainExample InstructionBuilder::SeqExample(
    const std::vector<int>& history, int target, core::Rng& rng) const {
  llm::TrainExample ex;
  ex.task = "seq";
  ex.prompt = Encode(Substitute(Pick(SeqTemplates(), rng), "{hist}",
                                HistoryIndexText(history)));
  ex.response = ItemIndexTokens(target);
  return ex;
}

llm::TrainExample InstructionBuilder::MutItemToIndexExample(
    int item, core::Rng& rng) const {
  llm::TrainExample ex;
  ex.task = "mut";
  std::string t = Pick(MutToIndexTemplates(), rng);
  t = Substitute(t, "{title}", dataset_->item(item).title);
  t = Substitute(t, "{desc}", dataset_->item(item).description);
  ex.prompt = Encode(t);
  ex.response = ItemIndexTokens(item);
  return ex;
}

llm::TrainExample InstructionBuilder::MutIndexToItemExample(
    int item, core::Rng& rng) const {
  llm::TrainExample ex;
  ex.task = "mut";
  ex.prompt = Encode(Substitute(Pick(MutToItemTemplates(), rng), "{item}",
                                indexing_->ItemTokenText(item)));
  ex.response = ItemTitleTokens(item);
  return ex;
}

llm::TrainExample InstructionBuilder::AsyTitleExample(
    const std::vector<int>& history, int target, core::Rng& rng) const {
  llm::TrainExample ex;
  ex.task = "asy";
  ex.prompt = Encode(Substitute(Pick(AsyTitleTemplates(), rng), "{hist}",
                                HistoryIndexText(history)));
  ex.response = ItemTitleTokens(target);
  return ex;
}

llm::TrainExample InstructionBuilder::AsyDescriptionExample(
    const std::vector<int>& history, int target, core::Rng& rng) const {
  llm::TrainExample ex;
  ex.task = "asy";
  ex.prompt = Encode(Substitute(Pick(AsyDescTemplates(), rng), "{hist}",
                                HistoryIndexText(history)));
  ex.response = EncodeResponse(dataset_->item(target).description);
  return ex;
}

llm::TrainExample InstructionBuilder::AsyTitleHistoryExample(
    const std::vector<int>& history, int target, core::Rng& rng) const {
  llm::TrainExample ex;
  ex.task = "asy";
  ex.prompt = Encode(Substitute(Pick(AsyTitleHistTemplates(), rng), "{titles}",
                                HistoryTitleText(history)));
  ex.response = ItemIndexTokens(target);
  return ex;
}

llm::TrainExample InstructionBuilder::IteQueryExample(int target,
                                                      core::Rng& rng) const {
  llm::TrainExample ex;
  ex.task = "ite";
  ex.prompt = Encode(Substitute(Pick(IteQueryTemplates(), rng), "{query}",
                                dataset_->IntentionFor(target, rng)));
  ex.response = ItemIndexTokens(target);
  return ex;
}

llm::TrainExample InstructionBuilder::IteHistoryExample(
    const std::vector<int>& history, int target, core::Rng& rng) const {
  llm::TrainExample ex;
  ex.task = "ite";
  std::string t = Pick(IteHistTemplates(), rng);
  t = Substitute(t, "{hist}", HistoryIndexText(history));
  t = Substitute(t, "{query}", dataset_->IntentionFor(target, rng));
  ex.prompt = Encode(t);
  ex.response = ItemIndexTokens(target);
  return ex;
}

llm::TrainExample InstructionBuilder::PerExample(
    const std::vector<int>& history, core::Rng& rng) const {
  llm::TrainExample ex;
  ex.task = "per";
  ex.prompt = Encode(Substitute(Pick(PerTemplates(), rng), "{hist}",
                                HistoryIndexText(history)));
  ex.response = EncodeResponse(dataset_->PreferenceSummary(
      ClampHistory(history), rng));
  return ex;
}

std::vector<llm::TrainExample> InstructionBuilder::BuildEpoch(
    const TaskMixture& mixture, core::Rng& rng) const {
  std::vector<llm::TrainExample> out;
  const int users = dataset_->num_users();
  for (int u = 0; u < users; ++u) {
    std::vector<int> items = dataset_->TrainItems(u);
    int len = static_cast<int>(items.size());
    if (mixture.seq) {
      // The final training position is always included; earlier positions
      // are sampled to bound the epoch size.
      std::vector<int> positions;
      positions.push_back(len - 1);
      for (int s = 0; s < config_.seq_targets_per_user - 1 && len > 2; ++s) {
        positions.push_back(1 + static_cast<int>(rng.Below(len - 1)));
      }
      std::sort(positions.begin(), positions.end());
      positions.erase(std::unique(positions.begin(), positions.end()),
                      positions.end());
      for (int pos : positions) {
        std::vector<int> hist(items.begin(), items.begin() + pos);
        out.push_back(SeqExample(hist, items[pos], rng));
      }
    }
    if (mixture.asy && len >= 2) {
      std::vector<int> hist(items.begin(), items.end() - 1);
      int target = items.back();
      switch (rng.Below(3)) {
        case 0: out.push_back(AsyTitleExample(hist, target, rng)); break;
        case 1: out.push_back(AsyDescriptionExample(hist, target, rng)); break;
        default: out.push_back(AsyTitleHistoryExample(hist, target, rng));
      }
    }
    if (mixture.ite && len >= 2) {
      std::vector<int> hist(items.begin(), items.end() - 1);
      int target = items.back();
      if (rng.Bernoulli(0.5)) {
        out.push_back(IteQueryExample(target, rng));
      } else {
        out.push_back(IteHistoryExample(hist, target, rng));
      }
    }
    if (mixture.per) {
      out.push_back(PerExample(items, rng));
    }
  }
  if (mixture.mut) {
    for (int item = 0; item < dataset_->num_items(); ++item) {
      if (rng.Bernoulli(0.5)) {
        out.push_back(MutItemToIndexExample(item, rng));
      } else {
        out.push_back(MutIndexToItemExample(item, rng));
      }
    }
  }
  rng.Shuffle(out);
  return out;
}

std::vector<int> InstructionBuilder::SeqPrompt(
    const std::vector<int>& history) const {
  return Encode(Substitute(SeqTemplates()[0], "{hist}",
                           HistoryIndexText(history)));
}

std::vector<int> InstructionBuilder::IntentionPrompt(
    const std::string& intention) const {
  return Encode(Substitute(IteQueryTemplates()[0], "{query}", intention));
}

std::vector<int> InstructionBuilder::TitleOfItemPrompt(int item,
                                                       int levels) const {
  const auto& codes = indexing_->codes(item);
  int keep = std::min<int>(levels, static_cast<int>(codes.size()));
  std::string prefix;
  for (int h = 0; h < keep; ++h) {
    prefix += quant::ItemIndexing::TokenString(h, codes[h]);
  }
  return Encode(Substitute(MutToItemTemplates()[0], "{item}", prefix));
}

std::vector<int> InstructionBuilder::NextItemPrompt(
    const std::vector<int>& history, bool titles) const {
  if (titles) {
    return Encode(Substitute(AsyTitleHistTemplates()[0], "{titles}",
                             HistoryTitleText(history)));
  }
  return SeqPrompt(history);
}

}  // namespace lcrec::tasks

#ifndef LCREC_SERVE_BREAKER_H_
#define LCREC_SERVE_BREAKER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "obs/sync.h"

namespace lcrec::serve {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState s);

struct BreakerOptions {
  /// Consecutive decode failures that trip the breaker open.
  int failure_threshold = 5;
  /// Consecutive half-open probe successes that close it again.
  int success_threshold = 2;
  /// How long the breaker stays open before letting probes through.
  double open_cooldown_ms = 250.0;
  /// Probes allowed in flight at once while half-open.
  int half_open_probes = 1;
  /// Clock override for tests (microseconds, NowMicros time base).
  /// Defaults to obs::NowMicros.
  std::function<double()> now_us;
  /// Invoked on every state transition with the new state (under the
  /// breaker lock — keep it cheap and lock-free: flight events, metric
  /// bumps).
  std::function<void(BreakerState)> on_transition;
};

/// Counters snapshot; see CircuitBreaker::stats().
struct BreakerStats {
  int64_t trips = 0;           // -> open transitions
  int64_t recoveries = 0;      // half-open -> closed transitions
  int64_t short_circuits = 0;  // Allow() == false decisions
  int64_t probes = 0;          // half-open probe slots granted
};

/// Circuit breaker over the decode path. Closed is the healthy state:
/// every request passes and consecutive failures are counted. Reaching
/// failure_threshold trips the breaker open — requests short-circuit to
/// the fallback tier without touching the engine. After open_cooldown_ms
/// the breaker turns half-open: a bounded number of probe requests run
/// the real decode, and success_threshold consecutive successes close
/// the breaker (any probe failure re-opens it and restarts the
/// cooldown).
///
/// Success/failure is reported only for decode *outcomes* (a retired
/// lane, an exhausted retry loop, a deadline timeout inside the engine).
/// Cache hits and sheds never touch the breaker: they say nothing about
/// engine health.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(const BreakerOptions& opts);

  /// Decision point, consulted before a decode attempt. True = run the
  /// real decode (and report the outcome back); false = short-circuit
  /// to fallback. Open->half-open promotion happens here once the
  /// cooldown elapses.
  bool Allow();

  /// Reports a decode outcome previously admitted by Allow().
  void RecordSuccess();
  void RecordFailure();

  BreakerState state() const;
  BreakerStats stats() const;

  /// One-line "breaker: closed failures=0/5 trips=0 ..." for /statusz.
  std::string StatusText() const;

 private:
  bool AllowLocked(double now) LCREC_REQUIRES(mu_);
  void TripLocked(double now) LCREC_REQUIRES(mu_);
  void SetStateLocked(BreakerState next) LCREC_REQUIRES(mu_);

  const BreakerOptions opts_;
  mutable obs::Mutex mu_;  // rank 26: above server.state (20), below metrics
  BreakerState state_ LCREC_GUARDED_BY(mu_) = BreakerState::kClosed;
  int consecutive_failures_ LCREC_GUARDED_BY(mu_) = 0;
  int consecutive_successes_ LCREC_GUARDED_BY(mu_) = 0;
  int probes_inflight_ LCREC_GUARDED_BY(mu_) = 0;
  double opened_us_ LCREC_GUARDED_BY(mu_) = 0.0;
  BreakerStats stats_ LCREC_GUARDED_BY(mu_);
};

}  // namespace lcrec::serve

#endif  // LCREC_SERVE_BREAKER_H_

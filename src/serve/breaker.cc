#include "serve/breaker.h"

#include <cstdio>

#include "obs/trace.h"

namespace lcrec::serve {

const char* BreakerStateName(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(const BreakerOptions& opts)
    : opts_(opts), mu_("serve.breaker", 26) {}

void CircuitBreaker::SetStateLocked(BreakerState next) {
  if (state_ == next) return;
  state_ = next;
  if (opts_.on_transition) opts_.on_transition(next);
}

bool CircuitBreaker::Allow() {
  double now = opts_.now_us ? opts_.now_us() : obs::NowMicros();
  obs::MutexLock lock(mu_);
  bool ok = AllowLocked(now);
  if (!ok) stats_.short_circuits++;
  return ok;
}

bool CircuitBreaker::AllowLocked(double now) {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen: {
      if (now - opened_us_ < opts_.open_cooldown_ms * 1000.0) return false;
      SetStateLocked(BreakerState::kHalfOpen);
      consecutive_successes_ = 0;
      probes_inflight_ = 0;
      [[fallthrough]];
    }
    case BreakerState::kHalfOpen: {
      if (probes_inflight_ >= opts_.half_open_probes) return false;
      probes_inflight_++;
      stats_.probes++;
      return true;
    }
  }
  return true;
}

void CircuitBreaker::TripLocked(double now) {
  SetStateLocked(BreakerState::kOpen);
  opened_us_ = now;
  consecutive_failures_ = 0;
  consecutive_successes_ = 0;
  probes_inflight_ = 0;
  stats_.trips++;
}

void CircuitBreaker::RecordSuccess() {
  obs::MutexLock lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kHalfOpen:
      if (probes_inflight_ > 0) probes_inflight_--;
      consecutive_successes_++;
      if (consecutive_successes_ >= opts_.success_threshold) {
        SetStateLocked(BreakerState::kClosed);
        consecutive_failures_ = 0;
        consecutive_successes_ = 0;
        stats_.recoveries++;
      }
      break;
    case BreakerState::kOpen:
      // A success reported after the breaker tripped (the outcome raced
      // the trip). Ignore: recovery goes through half-open probes.
      break;
  }
}

void CircuitBreaker::RecordFailure() {
  double now = opts_.now_us ? opts_.now_us() : obs::NowMicros();
  obs::MutexLock lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      consecutive_failures_++;
      if (consecutive_failures_ >= opts_.failure_threshold) TripLocked(now);
      break;
    case BreakerState::kHalfOpen:
      // One failed probe is enough evidence the engine is still sick.
      TripLocked(now);
      break;
    case BreakerState::kOpen:
      break;
  }
}

BreakerState CircuitBreaker::state() const {
  obs::MutexLock lock(mu_);
  return state_;
}

BreakerStats CircuitBreaker::stats() const {
  obs::MutexLock lock(mu_);
  return stats_;
}

std::string CircuitBreaker::StatusText() const {
  obs::MutexLock lock(mu_);
  char line[160];
  std::snprintf(line, sizeof(line),
                "breaker: %s failures=%d/%d trips=%lld recoveries=%lld "
                "short_circuits=%lld probes=%lld",
                BreakerStateName(state_), consecutive_failures_,
                opts_.failure_threshold,
                static_cast<long long>(stats_.trips),
                static_cast<long long>(stats_.recoveries),
                static_cast<long long>(stats_.short_circuits),
                static_cast<long long>(stats_.probes));
  return line;
}

}  // namespace lcrec::serve

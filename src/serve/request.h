#ifndef LCREC_SERVE_REQUEST_H_
#define LCREC_SERVE_REQUEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "llm/generate.h"
#include "obs/timeline.h"

namespace lcrec::serve {

/// One online recommendation query: the user's recent item-id history,
/// how many items to return, and an optional latency budget.
struct RecommendRequest {
  std::vector<int> history;  // item ids, oldest first
  int top_n = 10;
  /// Latency budget in milliseconds from submission; 0 = no deadline.
  /// Checked at admission: a request whose budget expires while it waits
  /// in the queue is shed (rejected with a reason) instead of decoded
  /// late — under overload the queue sheds rather than collapses.
  double deadline_ms = 0.0;
};

enum class Status {
  kOk = 0,
  kShedQueueFull,     // admission queue at capacity
  kShedDeadline,      // deadline expired before decoding started
  kShutdown,          // server stopped while the request waited
  kShedDecodeFailure, // decode failed past its retry budget (or the
                      // breaker was open) with fallbacks disabled
};

std::string StatusName(Status s);

/// The degradation ladder: which serving tier produced a kOk response.
/// Level 0 is the healthy full decode; each higher level trades result
/// quality for availability, and the server walks down the ladder only
/// as far as it must. Every kOk response is labeled with its tier (see
/// RecommendResponse::degrade / degrade_label) so clients and the
/// lcrec.serve.degrade.* metrics can tell a real ranking from a
/// fallback.
enum class DegradeLevel {
  kFull = 0,        // full constrained beam decode
  kBudgetCapped,    // reduced beam or deadline-truncated partial decode
  kStaleCache,      // TTL-expired result-cache entry
  kPopularity,      // precomputed popularity prior (always available)
};

const char* DegradeLevelName(DegradeLevel level);

/// Per-request observability payload carried back on every response:
/// the request's identity, its gap-free stage breakdown (stage durations
/// sum to latency_ms by construction — see obs::RequestTimeline), and
/// the fair-share decode attribution from the batch engine.
struct RequestDebug {
  uint64_t request_id = 0;
  bool sampled = false;  // exported as Chrome async spans when tracing
  std::vector<obs::StageSpan> stages;
  int decode_ticks = 0;         // batch ticks this request participated in
  double decode_share_us = 0.0; // its 1/lanes share of those ticks' time
};

struct RecommendResponse {
  Status status = Status::kOk;
  std::vector<llm::ScoredItem> items;  // ranked, empty unless kOk
  bool cache_hit = false;      // served from the result cache
  bool coalesced = false;      // joined an identical in-flight request
  bool inline_path = false;    // decoded on the caller thread (idle server)
  double latency_ms = 0.0;     // submission to completion, wall clock
  /// Which ladder tier served this response (kFull on every healthy
  /// path). Meaningful only for kOk.
  DegradeLevel degrade = DegradeLevel::kFull;
  /// Human-readable tier label: the DegradeLevelName, except
  /// "partial_decode" for a level-1 response truncated by its deadline
  /// (vs "budget_capped" for a reduced-beam decode that ran to
  /// completion).
  const char* degrade_label = "full";
  RequestDebug debug;
};

}  // namespace lcrec::serve

#endif  // LCREC_SERVE_REQUEST_H_

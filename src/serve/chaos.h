#ifndef LCREC_SERVE_CHAOS_H_
#define LCREC_SERVE_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lcrec::serve::chaos {

/// Chaos-injection layer for the serving path — the serving twin of
/// ckpt::faultfs. The server consults the functions below at its
/// injection points; whether anything fires is decided here, from a
/// process-wide injector armed either from the `LCREC_CHAOS` environment
/// variable (parsed lazily on first use; `LCREC_CHAOS_SEED` seeds the
/// draw stream) or programmatically via ArmChaos. The env literal and
/// every injection decision live in this file only (lcrec_lint's
/// chaos-site rule pins it), so production code paths contain calls, not
/// scattered getenv checks.
///
/// Spec grammar (comma-separated list; rate grammar shared with
/// LCREC_FAULT's p-mode via obs/inject.h):
///
///   LCREC_CHAOS=<site>:<mode>:<rate>[:<param_ms>][,<spec>...]
///     site   decode | queue | conn | frame
///     mode   delay  (decode: a latency spike of param_ms, default
///                    20 ms — a stalled batch tick; conn: a slow
///                    connect — network latency)
///            fail   (decode: the decode attempt errors; the server's
///                    retry/breaker/fallback machinery reacts.
///                    conn: the RPC connect attempt fails — a dead or
///                    flapping worker; the client's retry-with-backoff
///                    and the router's failover react)
///            full   (queue only: admission behaves as if the queue
///                    were at capacity — queue pressure)
///            truncate (frame only: an outbound RPC frame is cut short
///                    mid-send and the connection dropped — a torn
///                    write; the peer's CRC/length checks must reject
///                    the partial frame, never misparse it)
///     rate   fire probability in (0, 1] per consultation
///
/// Examples: `LCREC_CHAOS=decode:fail:0.1`,
///           `LCREC_CHAOS=decode:delay:0.05:40,queue:full:0.02`,
///           `LCREC_CHAOS=conn:fail:0.3,frame:truncate:0.05`.
struct ChaosSpec {
  enum class Site { kDecode, kQueue, kConn, kFrame };
  enum class Mode { kDelay, kFail, kFull, kTruncate };
  Site site = Site::kDecode;
  Mode mode = Mode::kFail;
  double rate = 0.0;
  double param_ms = 20.0;  // delay amplitude
  /// Programmatic-only cap on how often this spec fires (0 = unlimited).
  /// Tests use it to stage exactly one stall or N failures.
  int max_fires = 0;
};

/// Parses the grammar above into `specs` (replaced, not appended).
/// False on malformed input (and `specs` is left untouched).
bool ParseChaosSpecs(const std::string& text, std::vector<ChaosSpec>* specs);

/// Arms the process-wide injector with `specs` and restarts the seeded
/// draw stream. An empty list disarms.
void ArmChaos(const std::vector<ChaosSpec>& specs, uint64_t seed = 1);

/// Re-reads LCREC_CHAOS / LCREC_CHAOS_SEED (unset disarms).
void ArmChaosFromEnv();

/// Disarms injection; subsequent consultations are no-ops.
void DisarmChaos();

/// True when at least one spec is armed (after lazy env parsing).
bool ChaosArmed();

/// Total injections fired since the last (re-)arm.
int64_t ChaosFires();

/// One-line arming summary for /statusz ("chaos: off" or the spec list
/// with fire counts).
std::string ChaosStatusText();

/// Decision for one decode attempt. At most one action fires per
/// consultation; `delay_us` and `fail` are mutually exclusive.
struct DecodeChaos {
  bool fail = false;
  double delay_us = 0.0;
};

/// Consulted once per decode attempt (inline decode or scheduler
/// admission). Returns the injected action, if any.
DecodeChaos OnDecode();

/// Consulted once per queue admission. True = simulate a full queue.
bool OnQueueAdmit();

/// Decision for one RPC connect attempt (net::RpcChannel). Mirrors
/// DecodeChaos: at most one action per consultation.
struct ConnChaos {
  bool fail = false;
  double delay_us = 0.0;
};

/// Consulted once per outbound RPC connect.
ConnChaos OnNetConnect();

/// Consulted once per outbound RPC frame. True = truncate the frame
/// mid-send and drop the connection (torn write).
bool OnNetFrameSend();

}  // namespace lcrec::serve::chaos

#endif  // LCREC_SERVE_CHAOS_H_

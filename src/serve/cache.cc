#include "serve/cache.h"

namespace lcrec::serve {

uint64_t RequestKey(const std::vector<int>& prompt_tokens, int top_n,
                    int beam_size) {
  // FNV-1a over the token stream plus the result-shaping parameters.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xffull;
      h *= 1099511628211ull;
    }
  };
  for (int tok : prompt_tokens) mix(static_cast<uint64_t>(tok));
  mix(0x746f706eull);  // domain separator between tokens and parameters
  mix(static_cast<uint64_t>(top_n));
  mix(static_cast<uint64_t>(beam_size));
  return h;
}

bool ResultCache::Get(uint64_t key, std::vector<llm::ScoredItem>* out) {
  if (capacity_ == 0) return false;
  obs::UniqueLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++hits_;
  *out = it->second->items;
  return true;
}

void ResultCache::Put(uint64_t key, const std::vector<llm::ScoredItem>& items) {
  if (capacity_ == 0) return;
  obs::UniqueLock lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->items = items;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front({key, items});
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

size_t ResultCache::size() const {
  obs::UniqueLock lock(mu_);
  return lru_.size();
}

int64_t ResultCache::hits() const {
  obs::UniqueLock lock(mu_);
  return hits_;
}

int64_t ResultCache::misses() const {
  obs::UniqueLock lock(mu_);
  return misses_;
}

}  // namespace lcrec::serve

#include "serve/cache.h"

#include "obs/trace.h"

namespace lcrec::serve {

uint64_t RequestKey(const std::vector<int>& prompt_tokens, int top_n,
                    int beam_size) {
  // FNV-1a over the token stream plus the result-shaping parameters.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xffull;
      h *= 1099511628211ull;
    }
  };
  for (int tok : prompt_tokens) mix(static_cast<uint64_t>(tok));
  mix(0x746f706eull);  // domain separator between tokens and parameters
  mix(static_cast<uint64_t>(top_n));
  mix(static_cast<uint64_t>(beam_size));
  return h;
}

ResultCache::ResultCache(size_t capacity, double ttl_ms,
                         std::function<double()> now_us)
    : capacity_(capacity), ttl_ms_(ttl_ms), now_us_(std::move(now_us)) {}

double ResultCache::Now() const {
  return now_us_ ? now_us_() : obs::NowMicros();
}

bool ResultCache::FreshLocked(const Entry& e, double now) const {
  if (ttl_ms_ <= 0.0) return true;  // infinite TTL: nothing ever stales
  return now - e.put_us <= ttl_ms_ * 1000.0;
}

bool ResultCache::Get(uint64_t key, std::vector<llm::ScoredItem>* out) {
  if (capacity_ == 0) return false;
  double now = Now();
  obs::UniqueLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end() || !FreshLocked(*it->second, now)) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++hits_;
  *out = it->second->items;
  return true;
}

bool ResultCache::GetWithStaleness(uint64_t key,
                                   std::vector<llm::ScoredItem>* out,
                                   double* age_ms) {
  if (capacity_ == 0) return false;
  double now = Now();
  obs::UniqueLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);
  if (!FreshLocked(*it->second, now)) ++stale_serves_;
  *out = it->second->items;
  *age_ms = (now - it->second->put_us) / 1000.0;
  return true;
}

void ResultCache::Put(uint64_t key, const std::vector<llm::ScoredItem>& items) {
  if (capacity_ == 0) return;
  double now = Now();
  obs::UniqueLock lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->items = items;
    it->second->put_us = now;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front({key, items, now});
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

size_t ResultCache::size() const {
  obs::UniqueLock lock(mu_);
  return lru_.size();
}

int64_t ResultCache::hits() const {
  obs::UniqueLock lock(mu_);
  return hits_;
}

int64_t ResultCache::misses() const {
  obs::UniqueLock lock(mu_);
  return misses_;
}

int64_t ResultCache::stale_serves() const {
  obs::UniqueLock lock(mu_);
  return stale_serves_;
}

}  // namespace lcrec::serve

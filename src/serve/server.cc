#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "core/check.h"
#include "obs/debugz.h"
#include "obs/flightrec.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "serve/chaos.h"

namespace lcrec::serve {

namespace {

/// Cached metric handles for the online server (lcrec.serve.*).
struct ServeMetrics {
  obs::Counter& requests;
  obs::Counter& completed;
  obs::Counter& cache_hits;
  obs::Counter& coalesced;
  obs::Counter& inline_fast_path;
  obs::Counter& shed_queue_full;
  obs::Counter& shed_deadline;
  obs::Counter& batch_ticks;
  obs::Counter& degrade_budget_capped;
  obs::Counter& degrade_stale_cache;
  obs::Counter& degrade_popularity;
  obs::Counter& breaker_trips;
  obs::Counter& breaker_short_circuits;
  obs::Counter& decode_failures;
  obs::Counter& decode_retries;
  obs::Counter& watchdog_fires;
  obs::Gauge& queue_depth;
  obs::Histogram& latency_ms;
  obs::Histogram& batch_occupancy;

  static ServeMetrics& Get() {
    static ServeMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      return new ServeMetrics{
          r.GetCounter("lcrec.serve.requests"),
          r.GetCounter("lcrec.serve.completed"),
          r.GetCounter("lcrec.serve.cache_hits"),
          r.GetCounter("lcrec.serve.coalesced"),
          r.GetCounter("lcrec.serve.inline_fast_path"),
          r.GetCounter("lcrec.serve.shed_queue_full"),
          r.GetCounter("lcrec.serve.shed_deadline"),
          r.GetCounter("lcrec.serve.batch_ticks"),
          r.GetCounter("lcrec.serve.degrade.budget_capped"),
          r.GetCounter("lcrec.serve.degrade.stale_cache"),
          r.GetCounter("lcrec.serve.degrade.popularity"),
          r.GetCounter("lcrec.serve.breaker.trips"),
          r.GetCounter("lcrec.serve.breaker.short_circuits"),
          r.GetCounter("lcrec.serve.decode.failures"),
          r.GetCounter("lcrec.serve.decode.retries"),
          r.GetCounter("lcrec.serve.watchdog.fires"),
          r.GetGauge("lcrec.serve.queue_depth"),
          r.GetHistogram("lcrec.serve.latency_ms",
                         obs::Histogram::ExponentialBounds(0.05, 1.6, 32)),
          r.GetHistogram("lcrec.serve.batch_occupancy",
                         obs::Histogram::LinearBounds(1.0, 32.0, 32)),
      };
    }();
    return *m;
  }
};

RecommendResponse MakeShed(Status status) {
  RecommendResponse resp;
  resp.status = status;
  return resp;
}

void SleepUs(double us) {
  if (us <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(us)));
}

/// Wraps the user's breaker options so every state transition also lands
/// in the flight recorder and the lcrec.serve.breaker.* metrics.
BreakerOptions WithBreakerTelemetry(BreakerOptions opts) {
  std::function<void(BreakerState)> user_hook = opts.on_transition;
  opts.on_transition = [user_hook](BreakerState s) {
    obs::FlightRecorder::Global().Record(obs::FrKind::kBreaker,
                                         BreakerStateName(s));
    if (s == BreakerState::kOpen) {
      ServeMetrics::Get().breaker_trips.Increment();
    }
    if (user_hook) user_hook(s);
  };
  return opts;
}

}  // namespace

std::string StatusName(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kShedQueueFull:
      return "shed_queue_full";
    case Status::kShedDeadline:
      return "shed_deadline";
    case Status::kShutdown:
      return "shutdown";
    case Status::kShedDecodeFailure:
      return "shed_decode_failure";
  }
  return "unknown";
}

const char* DegradeLevelName(DegradeLevel level) {
  switch (level) {
    case DegradeLevel::kFull:
      return "full";
    case DegradeLevel::kBudgetCapped:
      return "budget_capped";
    case DegradeLevel::kStaleCache:
      return "stale_cache";
    case DegradeLevel::kPopularity:
      return "popularity";
  }
  return "unknown";
}

Server::Server(const llm::MiniLlm& model, const quant::PrefixTrie& trie,
               const llm::IndexTokenMap& token_map,
               PromptBuilder prompt_builder, ServerOptions options)
    : model_(model),
      trie_(trie),
      token_map_(token_map),
      prompt_builder_(std::move(prompt_builder)),
      options_(options),
      cache_(options.cache_capacity, options.cache_ttl_ms),
      queue_(static_cast<size_t>(std::max(options.max_queue, 1))),
      slo_(options.slo),
      engine_(model, trie, token_map, options.beam_size),
      breaker_(WithBreakerTelemetry(options.breaker)) {
  LCREC_CHECK(prompt_builder_ != nullptr);
  LCREC_CHECK_GT(options_.max_batch_lanes, 0);
  LCREC_CHECK_GT(options_.top_n_cap, 0);
  LCREC_CHECK_GT(options_.degraded_beam, 0);
  LCREC_CHECK_GE(options_.decode_retries, 0);
  slo_.StartReporter();  // no-op unless options.slo.report_every_s > 0
  if (options_.debug_port >= 0) {
    std::string error;
    if (!obs::DebugServer::Global().Start(options_.debug_port, &error)) {
      obs::Log(obs::LogLevel::kWarn, "[serve] debugz start failed: %s",
               error.c_str());
    }
  }
  obs::DebugServer::MaybeStartFromEnv();
  statusz_section_id_ = obs::RegisterStatuszSection(
      "serve", [this] { return Statusz(); });
  if (options_.start_scheduler) Start();
}

Server::~Server() {
  // Unregister before any member teardown: the debug server's thread may
  // be inside Statusz() right now, and RegisterStatusz's contract is that
  // unregistration (which takes the same registry lock the dispatcher
  // holds while calling sections) is the destructor's first act.
  obs::UnregisterStatuszSection(statusz_section_id_);
  Stop();
}

void Server::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  scheduler_ = std::thread([this] { SchedulerLoop(); });
  if (options_.watchdog_stall_ms > 0.0 && !watchdog_.joinable()) {
    {
      obs::UniqueLock lock(watchdog_mu_);
      watchdog_stop_ = false;
    }
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

void Server::Stop() {
  queue_.Close();
  if (scheduler_.joinable()) scheduler_.join();
  if (watchdog_.joinable()) {
    {
      obs::UniqueLock lock(watchdog_mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.NotifyAll();
    watchdog_.join();
  }
  running_.store(false);
}

RecommendResponse Server::Recommend(const RecommendRequest& request) {
  double t0_us = obs::NowMicros();
  ServeMetrics& sm = ServeMetrics::Get();
  sm.requests.Increment();
  stats_.requests.fetch_add(1, std::memory_order_relaxed);

  uint64_t request_id = obs::NextRequestId();
  bool sampled =
      options_.trace_sample_n > 0 &&
      request_id % static_cast<uint64_t>(options_.trace_sample_n) == 0;
  obs::RequestTimeline timeline;
  timeline.Begin(request_id, sampled, "build", t0_us);

  int top_n = std::min(std::max(request.top_n, 1), options_.top_n_cap);
  std::vector<int> prompt = prompt_builder_(request.history);
  timeline.Mark("cache_lookup");
  uint64_t key = RequestKey(prompt, top_n, options_.beam_size);

  RecommendResponse resp;
  if (cache_.Get(key, &resp.items)) {
    resp.cache_hit = true;
    resp.latency_ms = (obs::NowMicros() - t0_us) / 1000.0;
    sm.cache_hits.Increment();
    stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    timeline.Finish();
    resp.debug.request_id = timeline.request_id();
    resp.debug.sampled = timeline.sampled();
    resp.debug.stages = timeline.stages();
    timeline.EmitAsyncSpans();
    if (timeline.sampled()) obs::RecentTimelines::Global().Record(timeline);
    FinishRequest(&resp);
    return resp;
  }

  // Single-flight: an identical request already being decoded absorbs
  // this one; only the first submitter (the leader) pays for admission.
  PendingPtr pending;
  bool leader = false;
  {
    obs::UniqueLock lock(state_mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      pending = it->second;
    } else {
      pending = std::make_shared<Pending>();
      pending->key = key;
      pending->prompt = std::move(prompt);
      pending->top_n = top_n;
      pending->submit_us = t0_us;
      pending->deadline_ms = request.deadline_ms;
      inflight_[key] = pending;
      leader = true;
    }
  }
  if (!leader) {
    sm.coalesced.Increment();
    stats_.coalesced.fetch_add(1, std::memory_order_relaxed);
    // The follower keeps its own timeline (one coalesce_wait stage); the
    // leader's is the one inside `pending`.
    timeline.Mark("coalesce_wait");
    return WaitDone(pending, t0_us, /*coalesced=*/true, &timeline);
  }
  pending->timeline = std::move(timeline);

  // Inline fast path: with an empty queue and no lane in flight there is
  // nothing to batch with, so decoding on this thread skips the
  // scheduler handoff entirely. The emptiness check is racy by design —
  // a miss only costs one request the (correct) queued path.
  if (options_.inline_fast_path && queue_.empty() &&
      active_lanes_.load(std::memory_order_relaxed) == 0) {
    sm.inline_fast_path.Increment();
    stats_.inline_fast_path.fetch_add(1, std::memory_order_relaxed);
    pending->timeline.Mark("decode");
    DecodeInline(pending);
    return WaitDone(pending, t0_us, /*coalesced=*/false, &pending->timeline);
  }

  pending->timeline.Mark("queue_wait");
  // chaos::OnQueueAdmit simulates queue pressure: an injected "full"
  // admission takes exactly the real queue-full path.
  if (chaos::OnQueueAdmit() || !queue_.TryPush(pending)) {
    if (queue_.closed()) {
      stats_.shed_shutdown.fetch_add(1, std::memory_order_relaxed);
      pending->timeline.Mark("shed");
      // Resolve (not just return): followers may already be parked on
      // this pending and must observe the shed too.
      Resolve(pending, MakeShed(Status::kShutdown));
    } else {
      DegradeOrShed(pending, Status::kShedQueueFull, "shed_queue_full");
    }
    return WaitDone(pending, t0_us, /*coalesced=*/false, &pending->timeline);
  }
  sm.queue_depth.Set(static_cast<double>(queue_.size()));
  return WaitDone(pending, t0_us, /*coalesced=*/false, &pending->timeline);
}

RecommendResponse Server::WaitDone(const PendingPtr& pending, double t0_us,
                                   bool coalesced,
                                   obs::RequestTimeline* timeline) {
  RecommendResponse resp;
  {
    obs::UniqueLock lock(state_mu_);
    done_cv_.Wait(lock, [&pending] { return pending->done; });
    resp = pending->response;  // copy — followers share the resolution
  }
  resp.coalesced = coalesced;
  resp.latency_ms = (obs::NowMicros() - t0_us) / 1000.0;
  // Safe: once `done` was observed, nothing else touches this timeline —
  // the scheduler's last Mark happened before Resolve (state_mu_), and a
  // follower's local timeline was never shared at all.
  timeline->Finish();
  resp.debug.request_id = timeline->request_id();
  resp.debug.sampled = timeline->sampled();
  resp.debug.stages = timeline->stages();
  timeline->EmitAsyncSpans();
  if (timeline->sampled()) obs::RecentTimelines::Global().Record(*timeline);
  FinishRequest(&resp);
  return resp;
}

void Server::FinishRequest(RecommendResponse* resp) {
  ServeMetrics& sm = ServeMetrics::Get();
  sm.latency_ms.Observe(resp->latency_ms);
  bool ok = resp->status == Status::kOk;
  if (ok) {
    sm.completed.Increment();
    stats_.completed.fetch_add(1, std::memory_order_relaxed);
  }
  slo_.RecordRequest(resp->latency_ms, ok);
  if (options_.slow_request_ms > 0.0 &&
      resp->latency_ms >= options_.slow_request_ms) {
    obs::FlightRecorder::Global().Record(
        obs::FrKind::kSlowRequest, "slow_request",
        static_cast<int64_t>(resp->debug.request_id),
        static_cast<int64_t>(resp->latency_ms * 1000.0));
  }
}

void Server::DumpFlightRecorder(std::ostream& out) const {
  obs::FlightRecorder::Global().WriteJsonl(out);
}

void Server::Resolve(const PendingPtr& pending, RecommendResponse response) {
  {
    obs::UniqueLock lock(state_mu_);
    pending->response = std::move(response);
    pending->done = true;
    auto it = inflight_.find(pending->key);
    if (it != inflight_.end() && it->second == pending) inflight_.erase(it);
  }
  done_cv_.NotifyAll();
}

bool Server::PassChaosDecode() {
  ServeMetrics& sm = ServeMetrics::Get();
  for (int attempt = 0;; ++attempt) {
    chaos::DecodeChaos c = chaos::OnDecode();
    if (c.delay_us > 0.0) SleepUs(c.delay_us);  // injected latency spike
    if (!c.fail) return true;
    sm.decode_failures.Increment();
    stats_.decode_failures.fetch_add(1, std::memory_order_relaxed);
    if (attempt >= options_.decode_retries) return false;
    sm.decode_retries.Increment();
    stats_.decode_retries.fetch_add(1, std::memory_order_relaxed);
    SleepUs(options_.retry_backoff_ms * 1000.0 *
            static_cast<double>(attempt + 1));  // linear backoff
  }
}

std::vector<llm::ScoredItem> Server::PopularityFallback(int top_n) const {
  std::vector<llm::ScoredItem> items;
  size_t n = static_cast<size_t>(std::max(top_n, 0));
  if (!options_.popularity_items.empty()) {
    for (size_t i = 0; i < options_.popularity_items.size() && items.size() < n;
         ++i) {
      items.push_back({options_.popularity_items[i], -static_cast<float>(i)});
    }
    return items;
  }
  // No prior configured: item ids in index order keep the tier available.
  int num_items = trie_.num_items();
  for (int i = 0; i < num_items && items.size() < n; ++i) {
    items.push_back({i, -static_cast<float>(i)});
  }
  return items;
}

void Server::ResolveDegraded(const PendingPtr& pending, RecommendResponse resp,
                             const char* label) {
  ServeMetrics& sm = ServeMetrics::Get();
  resp.degrade_label = label;
  switch (resp.degrade) {
    case DegradeLevel::kBudgetCapped:
      sm.degrade_budget_capped.Increment();
      stats_.degraded_budget_capped.fetch_add(1, std::memory_order_relaxed);
      break;
    case DegradeLevel::kStaleCache:
      sm.degrade_stale_cache.Increment();
      stats_.degraded_stale_cache.fetch_add(1, std::memory_order_relaxed);
      break;
    case DegradeLevel::kPopularity:
      sm.degrade_popularity.Increment();
      stats_.degraded_popularity.fetch_add(1, std::memory_order_relaxed);
      break;
    case DegradeLevel::kFull:
      break;
  }
  if (resp.degrade != DegradeLevel::kFull) {
    obs::FlightRecorder::Global().Record(
        obs::FrKind::kDegrade, label,
        static_cast<int64_t>(pending->timeline.request_id()),
        static_cast<int64_t>(resp.degrade));
  }
  Resolve(pending, std::move(resp));
}

void Server::DegradeOrShed(const PendingPtr& pending, Status shed_status,
                           const char* reason) {
  ServeMetrics& sm = ServeMetrics::Get();
  if (!options_.degraded_fallbacks) {
    switch (shed_status) {
      case Status::kShedQueueFull:
        sm.shed_queue_full.Increment();
        stats_.shed_queue_full.fetch_add(1, std::memory_order_relaxed);
        break;
      case Status::kShedDeadline:
        stats_.shed_deadline.fetch_add(1, std::memory_order_relaxed);
        sm.shed_deadline.Increment();
        break;
      case Status::kShedDecodeFailure:
        // Counted via decode_failures when the attempt failed.
        break;
      case Status::kShutdown:
        stats_.shed_shutdown.fetch_add(1, std::memory_order_relaxed);
        break;
      case Status::kOk:
        break;
    }
    obs::FlightRecorder::Global().Record(
        obs::FrKind::kShed, reason,
        static_cast<int64_t>(pending->timeline.request_id()),
        static_cast<int64_t>(queue_.size()));
    pending->timeline.Mark("shed");
    Resolve(pending, MakeShed(shed_status));
    return;
  }
  pending->timeline.Mark("degrade");
  RecommendResponse resp;
  resp.status = Status::kOk;
  double age_ms = 0.0;
  if (cache_.GetWithStaleness(pending->key, &resp.items, &age_ms)) {
    // The entry may be fresh (e.g. an identical request completed since
    // the healthy lookup): still a level-2 serve — this request's own
    // decode never ran, and the tier label must say so.
    resp.degrade = DegradeLevel::kStaleCache;
    ResolveDegraded(pending, std::move(resp), "stale_cache");
    return;
  }
  resp.items = PopularityFallback(pending->top_n);
  resp.degrade = DegradeLevel::kPopularity;
  ResolveDegraded(pending, std::move(resp), "popularity");
}

void Server::DecodeInline(const PendingPtr& pending) {
  ServeMetrics& sm = ServeMetrics::Get();
  if (!breaker_.Allow()) {
    sm.breaker_short_circuits.Increment();
    stats_.breaker_short_circuits.fetch_add(1, std::memory_order_relaxed);
    DegradeOrShed(pending, Status::kShedDecodeFailure, "breaker_open");
    return;
  }
  if (!PassChaosDecode()) {
    breaker_.RecordFailure();
    DegradeOrShed(pending, Status::kShedDecodeFailure, "decode_failed");
    return;
  }
  if (pending->deadline_ms > 0.0 && options_.degraded_fallbacks) {
    // Deadline-bearing inline decode: run a private one-lane engine so
    // the deadline budget is enforced tick by tick (partial decode
    // instead of a late full one).
    double deadline_us = pending->submit_us + pending->deadline_ms * 1000.0;
    double remaining_us = deadline_us - obs::NowMicros();
    llm::LaneOptions lane;
    lane.deadline_us = deadline_us;
    if (remaining_us <
        options_.budget_cap_fraction * pending->deadline_ms * 1000.0) {
      lane.beam_cap = options_.degraded_beam;
      pending->beam_capped = true;
    }
    llm::BatchEngine local(model_, trie_, token_map_, options_.beam_size);
    local.Admit(1, pending->prompt, pending->top_n, lane);
    llm::BatchResult result;
    while (!local.Idle()) {
      for (llm::BatchResult& r : local.Tick()) result = std::move(r);
    }
    stats_.decoded.fetch_add(1, std::memory_order_relaxed);
    if (result.partial) {
      breaker_.RecordFailure();
      if (result.items.empty()) {
        DegradeOrShed(pending, Status::kShedDeadline, "deadline_decode");
        return;
      }
      pending->timeline.Mark("respond");
      RecommendResponse resp;
      resp.status = Status::kOk;
      resp.inline_path = true;
      resp.degrade = DegradeLevel::kBudgetCapped;
      resp.items = std::move(result.items);
      ResolveDegraded(pending, std::move(resp), "partial_decode");
      return;
    }
    breaker_.RecordSuccess();
    pending->timeline.Mark("respond");
    // Only a full-beam, complete decode may populate the cache: the key
    // hashes the full beam width, and degraded rankings must never
    // impersonate full ones.
    if (result.beam_used == options_.beam_size) {
      cache_.Put(pending->key, result.items);
    }
    RecommendResponse resp;
    resp.status = Status::kOk;
    resp.inline_path = true;
    if (pending->beam_capped) {
      resp.degrade = DegradeLevel::kBudgetCapped;
      resp.items = std::move(result.items);
      ResolveDegraded(pending, std::move(resp), "budget_capped");
      return;
    }
    resp.items = std::move(result.items);
    Resolve(pending, std::move(resp));
    return;
  }
  std::vector<llm::ScoredItem> items =
      llm::GenerateItems(model_, pending->prompt, trie_, token_map_,
                         options_.beam_size, pending->top_n);
  breaker_.RecordSuccess();
  stats_.decoded.fetch_add(1, std::memory_order_relaxed);
  pending->timeline.Mark("respond");
  cache_.Put(pending->key, items);
  RecommendResponse resp;
  resp.status = Status::kOk;
  resp.inline_path = true;
  resp.items = std::move(items);
  Resolve(pending, std::move(resp));
}

void Server::AdmitOrShed(PendingPtr pending,
                         std::unordered_map<uint64_t, PendingPtr>* by_tag) {
  pending->timeline.Mark("admit");  // closes queue_wait at pop time
  double now_us = obs::NowMicros();
  if (pending->deadline_ms > 0.0) {
    double waited_ms = (now_us - pending->submit_us) / 1000.0;
    if (waited_ms > pending->deadline_ms) {
      DegradeOrShed(pending, Status::kShedDeadline, "shed_deadline");
      return;
    }
  }
  if (!breaker_.Allow()) {
    ServeMetrics::Get().breaker_short_circuits.Increment();
    stats_.breaker_short_circuits.fetch_add(1, std::memory_order_relaxed);
    DegradeOrShed(pending, Status::kShedDecodeFailure, "breaker_open");
    return;
  }
  if (!PassChaosDecode()) {
    breaker_.RecordFailure();
    DegradeOrShed(pending, Status::kShedDecodeFailure, "decode_failed");
    return;
  }
  llm::LaneOptions lane;
  if (pending->deadline_ms > 0.0 && options_.degraded_fallbacks) {
    // Thread the deadline budget into the engine: the lane retires (with
    // partial results) at the first tick past its deadline, and a lane
    // admitted with most of its budget already burned decodes at the
    // reduced beam — fewer forwards per tick buys more depth per ms.
    lane.deadline_us = pending->submit_us + pending->deadline_ms * 1000.0;
    double remaining_us = lane.deadline_us - now_us;
    if (remaining_us <
        options_.budget_cap_fraction * pending->deadline_ms * 1000.0) {
      lane.beam_cap = options_.degraded_beam;
      pending->beam_capped = true;
    }
  }
  uint64_t tag = next_tag_.fetch_add(1, std::memory_order_relaxed);
  pending->timeline.Mark("decode");
  engine_.Admit(tag, std::move(pending->prompt), pending->top_n, lane);
  (*by_tag)[tag] = std::move(pending);
}

void Server::SchedulerLoop() {
  ServeMetrics& sm = ServeMetrics::Get();
  // Maps engine lane tags back to waiting requests. Scheduler-local: no
  // other thread touches the engine or this table.
  std::unordered_map<uint64_t, PendingPtr> by_tag;
  while (true) {
    if (engine_.Idle()) {
      active_lanes_.store(0, std::memory_order_relaxed);
      tick_start_us_.store(0.0, std::memory_order_relaxed);  // parked
      PendingPtr first;
      if (!queue_.Pop(&first)) break;  // closed and drained
      tick_start_us_.store(obs::NowMicros(), std::memory_order_relaxed);
      AdmitOrShed(std::move(first), &by_tag);
    } else {
      // New work episode: the watchdog measures from here, so a stuck
      // admission or tick below is a stall, an empty queue is not.
      tick_start_us_.store(obs::NowMicros(), std::memory_order_relaxed);
    }
    // Continuous batching: top up free lanes from the queue every tick,
    // so retiring requests make room without draining the batch.
    PendingPtr extra;
    while (engine_.ActiveLanes() < options_.max_batch_lanes &&
           queue_.TryPop(&extra)) {
      AdmitOrShed(std::move(extra), &by_tag);
    }
    sm.queue_depth.Set(static_cast<double>(queue_.size()));
    if (engine_.Idle()) continue;  // everything popped hit its deadline
    active_lanes_.store(engine_.ActiveLanes(), std::memory_order_relaxed);
    sm.batch_occupancy.Observe(static_cast<double>(engine_.ActiveLanes()));
    sm.batch_ticks.Increment();
    stats_.batch_ticks.fetch_add(1, std::memory_order_relaxed);
    std::vector<llm::BatchResult> done = engine_.Tick();
    active_lanes_.store(engine_.ActiveLanes(), std::memory_order_relaxed);
    for (llm::BatchResult& r : done) {
      auto it = by_tag.find(r.tag);
      if (it == by_tag.end()) continue;
      PendingPtr p = std::move(it->second);
      by_tag.erase(it);
      stats_.decoded.fetch_add(1, std::memory_order_relaxed);
      p->timeline.Mark("retire");
      if (r.partial) {
        // Deadline budget exhausted mid-decode: the engine is too slow
        // for this request's budget — a breaker-visible outcome.
        breaker_.RecordFailure();
        if (r.items.empty() || !options_.degraded_fallbacks) {
          DegradeOrShed(p, Status::kShedDeadline, "deadline_decode");
          continue;
        }
        RecommendResponse resp;
        resp.status = Status::kOk;
        resp.degrade = DegradeLevel::kBudgetCapped;
        resp.items = std::move(r.items);
        resp.debug.decode_ticks = r.ticks;
        resp.debug.decode_share_us = r.decode_us;
        p->timeline.Mark("respond");
        ResolveDegraded(p, std::move(resp), "partial_decode");
        continue;
      }
      breaker_.RecordSuccess();
      // Degraded (reduced-beam) rankings never enter the cache: the key
      // hashes the full beam width.
      if (r.beam_used == options_.beam_size) cache_.Put(p->key, r.items);
      RecommendResponse resp;
      resp.status = Status::kOk;
      resp.items = std::move(r.items);
      resp.debug.decode_ticks = r.ticks;
      resp.debug.decode_share_us = r.decode_us;
      p->timeline.Mark("respond");  // resolve-to-wakeup latency
      if (p->beam_capped) {
        resp.degrade = DegradeLevel::kBudgetCapped;
        ResolveDegraded(p, std::move(resp), "budget_capped");
      } else {
        Resolve(p, std::move(resp));
      }
    }
  }
  tick_start_us_.store(0.0, std::memory_order_relaxed);
  // Defensive: the loop only exits with an idle engine, so by_tag should
  // be empty; release any stragglers rather than strand their waiters.
  for (auto& [tag, p] : by_tag) {
    stats_.shed_shutdown.fetch_add(1, std::memory_order_relaxed);
    Resolve(p, MakeShed(Status::kShutdown));
  }
  by_tag.clear();
}

void Server::WatchdogLoop() {
  // Fires once per stall episode: remembers the episode start it fired
  // for, and re-arms when the scheduler moves on to a new episode.
  double fired_for_us = 0.0;
  obs::UniqueLock lock(watchdog_mu_);
  while (true) {
    bool stop = watchdog_cv_.WaitFor(
        lock, std::chrono::milliseconds(20), [this] { return watchdog_stop_; });
    if (stop) return;
    double start = tick_start_us_.load(std::memory_order_relaxed);
    if (start == 0.0 || start == fired_for_us) continue;
    double stalled_us = obs::NowMicros() - start;
    if (stalled_us < options_.watchdog_stall_ms * 1000.0) continue;
    fired_for_us = start;
    stats_.watchdog_fires.fetch_add(1, std::memory_order_relaxed);
    ServeMetrics::Get().watchdog_fires.Increment();
    obs::FlightRecorder::Global().Record(
        obs::FrKind::kWatchdog, "scheduler_stall",
        static_cast<int64_t>(stalled_us),
        static_cast<int64_t>(options_.watchdog_stall_ms * 1000.0));
    obs::Log(obs::LogLevel::kWarn,
             "[serve] watchdog: scheduler stalled for %.1f ms "
             "(threshold %.1f ms), dumping flight recorder",
             stalled_us / 1000.0, options_.watchdog_stall_ms);
    obs::FlightRecorder::Global().DumpToStderr("serve watchdog");
  }
}

std::string Server::Statusz() const {
  ServerStats s = stats();
  auto rate = [&s](int64_t n) {
    return s.requests > 0
               ? 100.0 * static_cast<double>(n) /
                     static_cast<double>(s.requests)
               : 0.0;
  };
  char line[256];
  std::string out = slo_.StatuszText();
  if (out.empty() || out.back() != '\n') out += "\n";
  std::snprintf(line, sizeof(line),
                "requests %lld | completed %lld | decoded %lld\n",
                static_cast<long long>(s.requests),
                static_cast<long long>(s.completed),
                static_cast<long long>(s.decoded));
  out += line;
  std::snprintf(
      line, sizeof(line),
      "cache: hits %lld (%.1f%%) | coalesced %lld (%.1f%%) | "
      "inline %lld (%.1f%%)\n",
      static_cast<long long>(s.cache_hits), rate(s.cache_hits),
      static_cast<long long>(s.coalesced), rate(s.coalesced),
      static_cast<long long>(s.inline_fast_path), rate(s.inline_fast_path));
  out += line;
  std::snprintf(line, sizeof(line), "queue: depth %zu / %d\n", queue_.size(),
                options_.max_queue);
  out += line;
  std::snprintf(line, sizeof(line),
                "batch: active_lanes %d / %d | ticks %lld\n",
                active_lanes_.load(std::memory_order_relaxed),
                options_.max_batch_lanes,
                static_cast<long long>(s.batch_ticks));
  out += line;
  std::snprintf(line, sizeof(line),
                "shed: queue_full %lld | deadline %lld | shutdown %lld\n",
                static_cast<long long>(s.shed_queue_full),
                static_cast<long long>(s.shed_deadline),
                static_cast<long long>(s.shed_shutdown));
  out += line;
  std::snprintf(line, sizeof(line),
                "degrade: budget_capped %lld | stale_cache %lld | "
                "popularity %lld\n",
                static_cast<long long>(s.degraded_budget_capped),
                static_cast<long long>(s.degraded_stale_cache),
                static_cast<long long>(s.degraded_popularity));
  out += line;
  out += breaker_.StatusText();
  out += "\n";
  std::snprintf(line, sizeof(line),
                "decode faults: failures %lld | retries %lld | "
                "watchdog_fires %lld | cache_stale_serves %lld\n",
                static_cast<long long>(s.decode_failures),
                static_cast<long long>(s.decode_retries),
                static_cast<long long>(s.watchdog_fires),
                static_cast<long long>(cache_.stale_serves()));
  out += line;
  out += chaos::ChaosStatusText();
  out += "\n";
  return out;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.requests = stats_.requests.load(std::memory_order_relaxed);
  s.completed = stats_.completed.load(std::memory_order_relaxed);
  s.decoded = stats_.decoded.load(std::memory_order_relaxed);
  s.cache_hits = stats_.cache_hits.load(std::memory_order_relaxed);
  s.coalesced = stats_.coalesced.load(std::memory_order_relaxed);
  s.inline_fast_path = stats_.inline_fast_path.load(std::memory_order_relaxed);
  s.shed_queue_full = stats_.shed_queue_full.load(std::memory_order_relaxed);
  s.shed_deadline = stats_.shed_deadline.load(std::memory_order_relaxed);
  s.batch_ticks = stats_.batch_ticks.load(std::memory_order_relaxed);
  s.degraded_budget_capped =
      stats_.degraded_budget_capped.load(std::memory_order_relaxed);
  s.degraded_stale_cache =
      stats_.degraded_stale_cache.load(std::memory_order_relaxed);
  s.degraded_popularity =
      stats_.degraded_popularity.load(std::memory_order_relaxed);
  s.shed_shutdown = stats_.shed_shutdown.load(std::memory_order_relaxed);
  s.decode_failures = stats_.decode_failures.load(std::memory_order_relaxed);
  s.decode_retries = stats_.decode_retries.load(std::memory_order_relaxed);
  s.breaker_short_circuits =
      stats_.breaker_short_circuits.load(std::memory_order_relaxed);
  s.watchdog_fires = stats_.watchdog_fires.load(std::memory_order_relaxed);
  return s;
}

}  // namespace lcrec::serve

#include "serve/server.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "core/check.h"
#include "obs/debugz.h"
#include "obs/flightrec.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace lcrec::serve {

namespace {

/// Cached metric handles for the online server (lcrec.serve.*).
struct ServeMetrics {
  obs::Counter& requests;
  obs::Counter& completed;
  obs::Counter& cache_hits;
  obs::Counter& coalesced;
  obs::Counter& inline_fast_path;
  obs::Counter& shed_queue_full;
  obs::Counter& shed_deadline;
  obs::Counter& batch_ticks;
  obs::Gauge& queue_depth;
  obs::Histogram& latency_ms;
  obs::Histogram& batch_occupancy;

  static ServeMetrics& Get() {
    static ServeMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      return new ServeMetrics{
          r.GetCounter("lcrec.serve.requests"),
          r.GetCounter("lcrec.serve.completed"),
          r.GetCounter("lcrec.serve.cache_hits"),
          r.GetCounter("lcrec.serve.coalesced"),
          r.GetCounter("lcrec.serve.inline_fast_path"),
          r.GetCounter("lcrec.serve.shed_queue_full"),
          r.GetCounter("lcrec.serve.shed_deadline"),
          r.GetCounter("lcrec.serve.batch_ticks"),
          r.GetGauge("lcrec.serve.queue_depth"),
          r.GetHistogram("lcrec.serve.latency_ms",
                         obs::Histogram::ExponentialBounds(0.05, 1.6, 32)),
          r.GetHistogram("lcrec.serve.batch_occupancy",
                         obs::Histogram::LinearBounds(1.0, 32.0, 32)),
      };
    }();
    return *m;
  }
};

RecommendResponse MakeShed(Status status) {
  RecommendResponse resp;
  resp.status = status;
  return resp;
}

}  // namespace

std::string StatusName(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kShedQueueFull:
      return "shed_queue_full";
    case Status::kShedDeadline:
      return "shed_deadline";
    case Status::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

Server::Server(const llm::MiniLlm& model, const quant::PrefixTrie& trie,
               const llm::IndexTokenMap& token_map,
               PromptBuilder prompt_builder, ServerOptions options)
    : model_(model),
      trie_(trie),
      token_map_(token_map),
      prompt_builder_(std::move(prompt_builder)),
      options_(options),
      cache_(options.cache_capacity),
      queue_(static_cast<size_t>(std::max(options.max_queue, 1))),
      slo_(options.slo),
      engine_(model, trie, token_map, options.beam_size) {
  LCREC_CHECK(prompt_builder_ != nullptr);
  LCREC_CHECK_GT(options_.max_batch_lanes, 0);
  LCREC_CHECK_GT(options_.top_n_cap, 0);
  slo_.StartReporter();  // no-op unless options.slo.report_every_s > 0
  if (options_.debug_port >= 0) {
    std::string error;
    if (!obs::DebugServer::Global().Start(options_.debug_port, &error)) {
      obs::Log(obs::LogLevel::kWarn, "[serve] debugz start failed: %s",
               error.c_str());
    }
  }
  obs::DebugServer::MaybeStartFromEnv();
  statusz_section_id_ = obs::RegisterStatuszSection(
      "serve", [this] { return Statusz(); });
  if (options_.start_scheduler) Start();
}

Server::~Server() {
  // Unregister before any member teardown: the debug server's thread may
  // be inside Statusz() right now, and RegisterStatusz's contract is that
  // unregistration (which takes the same registry lock the dispatcher
  // holds while calling sections) is the destructor's first act.
  obs::UnregisterStatuszSection(statusz_section_id_);
  Stop();
}

void Server::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  scheduler_ = std::thread([this] { SchedulerLoop(); });
}

void Server::Stop() {
  queue_.Close();
  if (scheduler_.joinable()) scheduler_.join();
  running_.store(false);
}

RecommendResponse Server::Recommend(const RecommendRequest& request) {
  double t0_us = obs::NowMicros();
  ServeMetrics& sm = ServeMetrics::Get();
  sm.requests.Increment();
  stats_.requests.fetch_add(1, std::memory_order_relaxed);

  uint64_t request_id = obs::NextRequestId();
  bool sampled =
      options_.trace_sample_n > 0 &&
      request_id % static_cast<uint64_t>(options_.trace_sample_n) == 0;
  obs::RequestTimeline timeline;
  timeline.Begin(request_id, sampled, "build", t0_us);

  int top_n = std::min(std::max(request.top_n, 1), options_.top_n_cap);
  std::vector<int> prompt = prompt_builder_(request.history);
  timeline.Mark("cache_lookup");
  uint64_t key = RequestKey(prompt, top_n, options_.beam_size);

  RecommendResponse resp;
  if (cache_.Get(key, &resp.items)) {
    resp.cache_hit = true;
    resp.latency_ms = (obs::NowMicros() - t0_us) / 1000.0;
    sm.cache_hits.Increment();
    stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    timeline.Finish();
    resp.debug.request_id = timeline.request_id();
    resp.debug.sampled = timeline.sampled();
    resp.debug.stages = timeline.stages();
    timeline.EmitAsyncSpans();
    if (timeline.sampled()) obs::RecentTimelines::Global().Record(timeline);
    FinishRequest(&resp);
    return resp;
  }

  // Single-flight: an identical request already being decoded absorbs
  // this one; only the first submitter (the leader) pays for admission.
  PendingPtr pending;
  bool leader = false;
  {
    obs::UniqueLock lock(state_mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      pending = it->second;
    } else {
      pending = std::make_shared<Pending>();
      pending->key = key;
      pending->prompt = std::move(prompt);
      pending->top_n = top_n;
      pending->submit_us = t0_us;
      pending->deadline_ms = request.deadline_ms;
      inflight_[key] = pending;
      leader = true;
    }
  }
  if (!leader) {
    sm.coalesced.Increment();
    stats_.coalesced.fetch_add(1, std::memory_order_relaxed);
    // The follower keeps its own timeline (one coalesce_wait stage); the
    // leader's is the one inside `pending`.
    timeline.Mark("coalesce_wait");
    return WaitDone(pending, t0_us, /*coalesced=*/true, &timeline);
  }
  pending->timeline = std::move(timeline);

  // Inline fast path: with an empty queue and no lane in flight there is
  // nothing to batch with, so decoding on this thread skips the
  // scheduler handoff entirely. The emptiness check is racy by design —
  // a miss only costs one request the (correct) queued path.
  if (options_.inline_fast_path && queue_.empty() &&
      active_lanes_.load(std::memory_order_relaxed) == 0) {
    sm.inline_fast_path.Increment();
    stats_.inline_fast_path.fetch_add(1, std::memory_order_relaxed);
    pending->timeline.Mark("decode");
    DecodeInline(pending);
    return WaitDone(pending, t0_us, /*coalesced=*/false, &pending->timeline);
  }

  pending->timeline.Mark("queue_wait");
  if (!queue_.TryPush(pending)) {
    Status shed = queue_.closed() ? Status::kShutdown : Status::kShedQueueFull;
    if (shed == Status::kShedQueueFull) {
      sm.shed_queue_full.Increment();
      stats_.shed_queue_full.fetch_add(1, std::memory_order_relaxed);
      obs::FlightRecorder::Global().Record(
          obs::FrKind::kShed, "shed_queue_full",
          static_cast<int64_t>(request_id),
          static_cast<int64_t>(queue_.size()));
    }
    pending->timeline.Mark("shed");
    // Resolve (not just return): followers may already be parked on this
    // pending and must observe the shed too.
    Resolve(pending, MakeShed(shed));
    return WaitDone(pending, t0_us, /*coalesced=*/false, &pending->timeline);
  }
  sm.queue_depth.Set(static_cast<double>(queue_.size()));
  return WaitDone(pending, t0_us, /*coalesced=*/false, &pending->timeline);
}

RecommendResponse Server::WaitDone(const PendingPtr& pending, double t0_us,
                                   bool coalesced,
                                   obs::RequestTimeline* timeline) {
  RecommendResponse resp;
  {
    obs::UniqueLock lock(state_mu_);
    done_cv_.Wait(lock, [&pending] { return pending->done; });
    resp = pending->response;  // copy — followers share the resolution
  }
  resp.coalesced = coalesced;
  resp.latency_ms = (obs::NowMicros() - t0_us) / 1000.0;
  // Safe: once `done` was observed, nothing else touches this timeline —
  // the scheduler's last Mark happened before Resolve (state_mu_), and a
  // follower's local timeline was never shared at all.
  timeline->Finish();
  resp.debug.request_id = timeline->request_id();
  resp.debug.sampled = timeline->sampled();
  resp.debug.stages = timeline->stages();
  timeline->EmitAsyncSpans();
  if (timeline->sampled()) obs::RecentTimelines::Global().Record(*timeline);
  FinishRequest(&resp);
  return resp;
}

void Server::FinishRequest(RecommendResponse* resp) {
  ServeMetrics& sm = ServeMetrics::Get();
  sm.latency_ms.Observe(resp->latency_ms);
  bool ok = resp->status == Status::kOk;
  if (ok) {
    sm.completed.Increment();
    stats_.completed.fetch_add(1, std::memory_order_relaxed);
  }
  slo_.RecordRequest(resp->latency_ms, ok);
  if (options_.slow_request_ms > 0.0 &&
      resp->latency_ms >= options_.slow_request_ms) {
    obs::FlightRecorder::Global().Record(
        obs::FrKind::kSlowRequest, "slow_request",
        static_cast<int64_t>(resp->debug.request_id),
        static_cast<int64_t>(resp->latency_ms * 1000.0));
  }
}

void Server::DumpFlightRecorder(std::ostream& out) const {
  obs::FlightRecorder::Global().WriteJsonl(out);
}

void Server::Resolve(const PendingPtr& pending, RecommendResponse response) {
  {
    obs::UniqueLock lock(state_mu_);
    pending->response = std::move(response);
    pending->done = true;
    auto it = inflight_.find(pending->key);
    if (it != inflight_.end() && it->second == pending) inflight_.erase(it);
  }
  done_cv_.NotifyAll();
}

void Server::DecodeInline(const PendingPtr& pending) {
  std::vector<llm::ScoredItem> items =
      llm::GenerateItems(model_, pending->prompt, trie_, token_map_,
                         options_.beam_size, pending->top_n);
  stats_.decoded.fetch_add(1, std::memory_order_relaxed);
  pending->timeline.Mark("respond");
  cache_.Put(pending->key, items);
  RecommendResponse resp;
  resp.status = Status::kOk;
  resp.inline_path = true;
  resp.items = std::move(items);
  Resolve(pending, std::move(resp));
}

void Server::AdmitOrShed(PendingPtr pending,
                         std::unordered_map<uint64_t, PendingPtr>* by_tag) {
  pending->timeline.Mark("admit");  // closes queue_wait at pop time
  if (pending->deadline_ms > 0.0) {
    double waited_ms = (obs::NowMicros() - pending->submit_us) / 1000.0;
    if (waited_ms > pending->deadline_ms) {
      ServeMetrics::Get().shed_deadline.Increment();
      stats_.shed_deadline.fetch_add(1, std::memory_order_relaxed);
      obs::FlightRecorder::Global().Record(
          obs::FrKind::kShed, "shed_deadline",
          static_cast<int64_t>(pending->timeline.request_id()),
          static_cast<int64_t>(waited_ms * 1000.0));
      pending->timeline.Mark("shed");
      Resolve(pending, MakeShed(Status::kShedDeadline));
      return;
    }
  }
  uint64_t tag = next_tag_.fetch_add(1, std::memory_order_relaxed);
  pending->timeline.Mark("decode");
  engine_.Admit(tag, std::move(pending->prompt), pending->top_n);
  (*by_tag)[tag] = std::move(pending);
}

void Server::SchedulerLoop() {
  ServeMetrics& sm = ServeMetrics::Get();
  // Maps engine lane tags back to waiting requests. Scheduler-local: no
  // other thread touches the engine or this table.
  std::unordered_map<uint64_t, PendingPtr> by_tag;
  while (true) {
    if (engine_.Idle()) {
      active_lanes_.store(0, std::memory_order_relaxed);
      PendingPtr first;
      if (!queue_.Pop(&first)) break;  // closed and drained
      AdmitOrShed(std::move(first), &by_tag);
    }
    // Continuous batching: top up free lanes from the queue every tick,
    // so retiring requests make room without draining the batch.
    PendingPtr extra;
    while (engine_.ActiveLanes() < options_.max_batch_lanes &&
           queue_.TryPop(&extra)) {
      AdmitOrShed(std::move(extra), &by_tag);
    }
    sm.queue_depth.Set(static_cast<double>(queue_.size()));
    if (engine_.Idle()) continue;  // everything popped hit its deadline
    active_lanes_.store(engine_.ActiveLanes(), std::memory_order_relaxed);
    sm.batch_occupancy.Observe(static_cast<double>(engine_.ActiveLanes()));
    sm.batch_ticks.Increment();
    stats_.batch_ticks.fetch_add(1, std::memory_order_relaxed);
    std::vector<llm::BatchResult> done = engine_.Tick();
    active_lanes_.store(engine_.ActiveLanes(), std::memory_order_relaxed);
    for (llm::BatchResult& r : done) {
      auto it = by_tag.find(r.tag);
      if (it == by_tag.end()) continue;
      PendingPtr p = std::move(it->second);
      by_tag.erase(it);
      stats_.decoded.fetch_add(1, std::memory_order_relaxed);
      p->timeline.Mark("retire");
      cache_.Put(p->key, r.items);
      RecommendResponse resp;
      resp.status = Status::kOk;
      resp.items = std::move(r.items);
      resp.debug.decode_ticks = r.ticks;
      resp.debug.decode_share_us = r.decode_us;
      p->timeline.Mark("respond");  // resolve-to-wakeup latency
      Resolve(p, std::move(resp));
    }
  }
  // Defensive: the loop only exits with an idle engine, so by_tag should
  // be empty; release any stragglers rather than strand their waiters.
  for (auto& [tag, p] : by_tag) {
    Resolve(p, MakeShed(Status::kShutdown));
  }
  by_tag.clear();
}

std::string Server::Statusz() const {
  ServerStats s = stats();
  auto rate = [&s](int64_t n) {
    return s.requests > 0
               ? 100.0 * static_cast<double>(n) /
                     static_cast<double>(s.requests)
               : 0.0;
  };
  char line[256];
  std::string out = slo_.StatuszText();
  if (out.empty() || out.back() != '\n') out += "\n";
  std::snprintf(line, sizeof(line),
                "requests %lld | completed %lld | decoded %lld\n",
                static_cast<long long>(s.requests),
                static_cast<long long>(s.completed),
                static_cast<long long>(s.decoded));
  out += line;
  std::snprintf(
      line, sizeof(line),
      "cache: hits %lld (%.1f%%) | coalesced %lld (%.1f%%) | "
      "inline %lld (%.1f%%)\n",
      static_cast<long long>(s.cache_hits), rate(s.cache_hits),
      static_cast<long long>(s.coalesced), rate(s.coalesced),
      static_cast<long long>(s.inline_fast_path), rate(s.inline_fast_path));
  out += line;
  std::snprintf(line, sizeof(line), "queue: depth %zu / %d\n", queue_.size(),
                options_.max_queue);
  out += line;
  std::snprintf(line, sizeof(line),
                "batch: active_lanes %d / %d | ticks %lld\n",
                active_lanes_.load(std::memory_order_relaxed),
                options_.max_batch_lanes,
                static_cast<long long>(s.batch_ticks));
  out += line;
  std::snprintf(line, sizeof(line),
                "shed: queue_full %lld | deadline %lld\n",
                static_cast<long long>(s.shed_queue_full),
                static_cast<long long>(s.shed_deadline));
  out += line;
  return out;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.requests = stats_.requests.load(std::memory_order_relaxed);
  s.completed = stats_.completed.load(std::memory_order_relaxed);
  s.decoded = stats_.decoded.load(std::memory_order_relaxed);
  s.cache_hits = stats_.cache_hits.load(std::memory_order_relaxed);
  s.coalesced = stats_.coalesced.load(std::memory_order_relaxed);
  s.inline_fast_path = stats_.inline_fast_path.load(std::memory_order_relaxed);
  s.shed_queue_full = stats_.shed_queue_full.load(std::memory_order_relaxed);
  s.shed_deadline = stats_.shed_deadline.load(std::memory_order_relaxed);
  s.batch_ticks = stats_.batch_ticks.load(std::memory_order_relaxed);
  return s;
}

}  // namespace lcrec::serve

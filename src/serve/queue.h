#ifndef LCREC_SERVE_QUEUE_H_
#define LCREC_SERVE_QUEUE_H_

#include <cstddef>
#include <deque>
#include <utility>

#include "core/check.h"
#include "obs/sync.h"

namespace lcrec::serve {

/// Bounded multi-producer/multi-consumer FIFO, the server's admission
/// queue. Pushes never block: TryPush() fails immediately at capacity so
/// the caller can shed load instead of stacking unbounded waiters
/// (reject-with-reason, never queue collapse). Pops block until an
/// element or Close().
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    LCREC_CHECK_GT(capacity, 0u);
  }

  /// False when the queue is full or closed.
  bool TryPush(T value) {
    {
      obs::UniqueLock lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    ready_.NotifyOne();
    return true;
  }

  /// Blocks until an element arrives or the queue is closed. False only
  /// on closed-and-drained.
  bool Pop(T* out) {
    obs::UniqueLock lock(mu_);
    ready_.Wait(lock, [this]() LCREC_REQUIRES(mu_) {
      return closed_ || !items_.empty();
    });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Non-blocking pop; false when empty (or closed and drained).
  bool TryPop(T* out) {
    obs::UniqueLock lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  size_t size() const {
    obs::UniqueLock lock(mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

  /// Unblocks every Pop(); subsequent pushes fail. Queued elements can
  /// still be drained via Pop()/TryPop().
  void Close() {
    {
      obs::UniqueLock lock(mu_);
      closed_ = true;
    }
    ready_.NotifyAll();
  }

  bool closed() const {
    obs::UniqueLock lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable obs::Mutex mu_{"serve.queue", 24};
  obs::CondVar ready_;
  std::deque<T> items_ LCREC_GUARDED_BY(mu_);
  bool closed_ LCREC_GUARDED_BY(mu_) = false;
};

}  // namespace lcrec::serve

#endif  // LCREC_SERVE_QUEUE_H_

#include "serve/chaos.h"

#include <atomic>
#include <cstdlib>
#include <vector>

#include "obs/inject.h"
#include "obs/log.h"
#include "obs/sync.h"

namespace lcrec::serve::chaos {

namespace {

/// One armed spec plus its fire counter. Counters are read by
/// ChaosStatusText and the max_fires cap.
struct ArmedSpec {
  ChaosSpec spec;
  std::atomic<int> fires{0};
};

struct Injector {
  // Guards (re-)arming only; the consultation fast path reads `armed`
  // and walks immutable `specs` without the lock. Re-arming while the
  // server is live is a test-only pattern and tests quiesce first.
  obs::Mutex arm_mu{"serve.chaos.arm", 28};
  std::vector<ArmedSpec*> specs;
  obs::InjectRng rng{1};
  std::atomic<bool> armed{false};
  bool env_checked = false;
};

Injector& G() {
  static Injector* g = new Injector;
  return *g;
}

void ArmLocked(Injector& g, const std::vector<ChaosSpec>& specs,
               uint64_t seed) {
  for (ArmedSpec* s : g.specs) delete s;
  g.specs.clear();
  g.specs.reserve(specs.size());
  for (const ChaosSpec& s : specs) {
    ArmedSpec* armed = new ArmedSpec;
    armed->spec = s;
    g.specs.push_back(armed);
  }
  g.rng.Reset(seed);
  g.armed.store(!g.specs.empty(), std::memory_order_release);
}

void EnsureEnvParsed() {
  Injector& g = G();
  obs::MutexLock lock(g.arm_mu);
  if (g.env_checked) return;
  g.env_checked = true;
  const char* env = std::getenv("LCREC_CHAOS");
  if (env == nullptr || env[0] == '\0') return;
  std::vector<ChaosSpec> specs;
  if (!ParseChaosSpecs(env, &specs)) {
    obs::Log(obs::LogLevel::kWarn,
             "[serve] malformed LCREC_CHAOS spec \"%s\" ignored", env);
    return;
  }
  uint64_t seed = 1;
  if (const char* s = std::getenv("LCREC_CHAOS_SEED")) {
    seed = static_cast<uint64_t>(std::atoll(s));
  }
  ArmLocked(g, specs, seed);
  obs::Log(obs::LogLevel::kInfo, "[serve] chaos injection armed: %s", env);
}

/// True when `s` fires this consultation: Bernoulli draw at s->spec.rate,
/// subject to the optional max_fires cap.
bool SpecFires(Injector& g, ArmedSpec* s) {
  if (!g.rng.Fire(s->spec.rate)) return false;
  if (s->spec.max_fires > 0) {
    // CAS loop so concurrent callers can neither overshoot the cap nor
    // inflate the fire counter with capped (non-firing) attempts.
    int cur = s->fires.load(std::memory_order_relaxed);
    do {
      if (cur >= s->spec.max_fires) return false;
    } while (!s->fires.compare_exchange_weak(cur, cur + 1,
                                             std::memory_order_relaxed));
    return true;
  }
  s->fires.fetch_add(1, std::memory_order_relaxed);
  return true;
}

const char* SiteName(ChaosSpec::Site site) {
  switch (site) {
    case ChaosSpec::Site::kDecode: return "decode";
    case ChaosSpec::Site::kQueue: return "queue";
    case ChaosSpec::Site::kConn: return "conn";
    case ChaosSpec::Site::kFrame: return "frame";
  }
  return "?";
}

const char* ModeName(ChaosSpec::Mode mode) {
  switch (mode) {
    case ChaosSpec::Mode::kDelay: return "delay";
    case ChaosSpec::Mode::kFail: return "fail";
    case ChaosSpec::Mode::kFull: return "full";
    case ChaosSpec::Mode::kTruncate: return "truncate";
  }
  return "?";
}

/// Splits `text` on `sep`, keeping empty pieces (so "a::b" parses as a
/// malformed middle field rather than silently collapsing).
std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool ParseOneSpec(const std::string& text, ChaosSpec* spec) {
  std::vector<std::string> fields = Split(text, ':');
  if (fields.size() < 3 || fields.size() > 4) return false;
  ChaosSpec out;
  if (fields[0] == "decode") {
    out.site = ChaosSpec::Site::kDecode;
  } else if (fields[0] == "queue") {
    out.site = ChaosSpec::Site::kQueue;
  } else if (fields[0] == "conn") {
    out.site = ChaosSpec::Site::kConn;
  } else if (fields[0] == "frame") {
    out.site = ChaosSpec::Site::kFrame;
  } else {
    return false;
  }
  if (fields[1] == "delay") {
    out.mode = ChaosSpec::Mode::kDelay;
  } else if (fields[1] == "fail") {
    out.mode = ChaosSpec::Mode::kFail;
  } else if (fields[1] == "full") {
    out.mode = ChaosSpec::Mode::kFull;
  } else if (fields[1] == "truncate") {
    out.mode = ChaosSpec::Mode::kTruncate;
  } else {
    return false;
  }
  // Mode/site compatibility: decode and conn take delay|fail, queue
  // pressure is queue-only, torn writes are frame-only.
  switch (out.site) {
    case ChaosSpec::Site::kDecode:
    case ChaosSpec::Site::kConn:
      if (out.mode != ChaosSpec::Mode::kDelay &&
          out.mode != ChaosSpec::Mode::kFail) {
        return false;
      }
      break;
    case ChaosSpec::Site::kQueue:
      if (out.mode != ChaosSpec::Mode::kFull) return false;
      break;
    case ChaosSpec::Site::kFrame:
      if (out.mode != ChaosSpec::Mode::kTruncate) return false;
      break;
  }
  if (!obs::ParseInjectRate(fields[2], &out.rate)) return false;
  if (fields.size() == 4) {
    if (out.mode != ChaosSpec::Mode::kDelay) return false;
    const std::string& ms = fields[3];
    if (ms.empty()) return false;
    for (char c : ms) {
      if (c < '0' || c > '9') return false;
    }
    out.param_ms = std::atof(ms.c_str());
    if (out.param_ms <= 0.0) return false;
  }
  *spec = out;
  return true;
}

}  // namespace

bool ParseChaosSpecs(const std::string& text, std::vector<ChaosSpec>* specs) {
  if (text.empty()) return false;
  std::vector<ChaosSpec> out;
  for (const std::string& piece : Split(text, ',')) {
    ChaosSpec spec;
    if (!ParseOneSpec(piece, &spec)) return false;
    out.push_back(spec);
  }
  *specs = out;
  return true;
}

void ArmChaos(const std::vector<ChaosSpec>& specs, uint64_t seed) {
  Injector& g = G();
  obs::MutexLock lock(g.arm_mu);
  g.env_checked = true;  // explicit arm overrides the env
  ArmLocked(g, specs, seed);
}

void ArmChaosFromEnv() {
  Injector& g = G();
  {
    obs::MutexLock lock(g.arm_mu);
    ArmLocked(g, {}, 1);
    g.env_checked = false;
  }
  EnsureEnvParsed();
}

void DisarmChaos() { ArmChaos({}, 1); }

bool ChaosArmed() {
  EnsureEnvParsed();
  return G().armed.load(std::memory_order_acquire);
}

int64_t ChaosFires() {
  Injector& g = G();
  obs::MutexLock lock(g.arm_mu);
  int64_t total = 0;
  for (const ArmedSpec* s : g.specs) {
    total += s->fires.load(std::memory_order_relaxed);
  }
  return total;
}

std::string ChaosStatusText() {
  EnsureEnvParsed();
  Injector& g = G();
  obs::MutexLock lock(g.arm_mu);
  if (g.specs.empty()) return "chaos: off";
  std::string out = "chaos:";
  for (const ArmedSpec* s : g.specs) {
    out += ' ';
    out += SiteName(s->spec.site);
    out += ':';
    out += ModeName(s->spec.mode);
    out += ":" + std::to_string(s->spec.rate) + " fires=" +
           std::to_string(s->fires.load(std::memory_order_relaxed));
  }
  return out;
}

DecodeChaos OnDecode() {
  DecodeChaos action;
  Injector& g = G();
  if (!ChaosArmed()) return action;
  for (ArmedSpec* s : g.specs) {
    if (s->spec.site != ChaosSpec::Site::kDecode) continue;
    if (!SpecFires(g, s)) continue;
    if (s->spec.mode == ChaosSpec::Mode::kFail) {
      action.fail = true;
    } else {
      action.delay_us = s->spec.param_ms * 1000.0;
    }
    return action;  // at most one action per consultation
  }
  return action;
}

bool OnQueueAdmit() {
  Injector& g = G();
  if (!ChaosArmed()) return false;
  for (ArmedSpec* s : g.specs) {
    if (s->spec.site != ChaosSpec::Site::kQueue) continue;
    if (SpecFires(g, s)) return true;
  }
  return false;
}

ConnChaos OnNetConnect() {
  ConnChaos action;
  Injector& g = G();
  if (!ChaosArmed()) return action;
  for (ArmedSpec* s : g.specs) {
    if (s->spec.site != ChaosSpec::Site::kConn) continue;
    if (!SpecFires(g, s)) continue;
    if (s->spec.mode == ChaosSpec::Mode::kFail) {
      action.fail = true;
    } else {
      action.delay_us = s->spec.param_ms * 1000.0;
    }
    return action;  // at most one action per consultation
  }
  return action;
}

bool OnNetFrameSend() {
  Injector& g = G();
  if (!ChaosArmed()) return false;
  for (ArmedSpec* s : g.specs) {
    if (s->spec.site != ChaosSpec::Site::kFrame) continue;
    if (SpecFires(g, s)) return true;
  }
  return false;
}

}  // namespace lcrec::serve::chaos

#ifndef LCREC_SERVE_CACHE_H_
#define LCREC_SERVE_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "llm/generate.h"
#include "obs/sync.h"

namespace lcrec::serve {

/// Cache key of one recommendation query: a 64-bit FNV-1a hash over the
/// prompt token ids, the requested top_n, and the beam width (two
/// requests only share results when all three agree).
uint64_t RequestKey(const std::vector<int>& prompt_tokens, int top_n,
                    int beam_size);

/// Thread-safe LRU cache of decoded recommendation lists. Capacity 0
/// disables caching (Get always misses, Put is a no-op), so call sites
/// need no guards. Keys are RequestKey() hashes; a collision would serve
/// the wrong list, which at 64 bits over thousands of live entries is
/// vanishingly unlikely (and bounded by the LRU horizon).
class ResultCache {
 public:
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  /// True on hit; copies the cached ranking into `out` and refreshes the
  /// entry's recency.
  bool Get(uint64_t key, std::vector<llm::ScoredItem>* out);

  /// Inserts or refreshes `items` under `key`, evicting the least
  /// recently used entry when full.
  void Put(uint64_t key, const std::vector<llm::ScoredItem>& items);

  size_t size() const;
  int64_t hits() const;
  int64_t misses() const;

 private:
  struct Entry {
    uint64_t key = 0;
    std::vector<llm::ScoredItem> items;
  };

  const size_t capacity_;
  mutable obs::Mutex mu_{"serve.cache", 22};
  // Most-recently-used at the front; map values point into the list.
  std::list<Entry> lru_ LCREC_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_
      LCREC_GUARDED_BY(mu_);
  int64_t hits_ LCREC_GUARDED_BY(mu_) = 0;
  int64_t misses_ LCREC_GUARDED_BY(mu_) = 0;
};

}  // namespace lcrec::serve

#endif  // LCREC_SERVE_CACHE_H_

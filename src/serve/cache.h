#ifndef LCREC_SERVE_CACHE_H_
#define LCREC_SERVE_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "llm/generate.h"
#include "obs/sync.h"

namespace lcrec::serve {

/// Cache key of one recommendation query: a 64-bit FNV-1a hash over the
/// prompt token ids, the requested top_n, and the beam width (two
/// requests only share results when all three agree).
uint64_t RequestKey(const std::vector<int>& prompt_tokens, int top_n,
                    int beam_size);

/// Thread-safe LRU cache of decoded recommendation lists. Capacity 0
/// disables caching (Get always misses, Put is a no-op), so call sites
/// need no guards. Keys are RequestKey() hashes; a collision would serve
/// the wrong list, which at 64 bits over thousands of live entries is
/// vanishingly unlikely (and bounded by the LRU horizon).
///
/// Entries carry their insertion time. With a finite TTL, Get() serves
/// only fresh entries — but a stale entry is NOT evicted: it stays
/// servable through GetWithStaleness() so the degradation ladder can
/// prefer a stale ranking over no ranking when the engine is sick. With
/// the default infinite TTL (`ttl_ms <= 0`) every entry is fresh forever
/// and behaviour is identical to the pre-TTL cache.
class ResultCache {
 public:
  /// `ttl_ms <= 0` = infinite. `now_us` is a test clock override
  /// (microseconds, obs::NowMicros base).
  explicit ResultCache(size_t capacity, double ttl_ms = 0.0,
                       std::function<double()> now_us = {});

  /// True on a FRESH hit; copies the cached ranking into `out` and
  /// refreshes the entry's recency. A stale entry counts as a miss here
  /// (without eviction).
  bool Get(uint64_t key, std::vector<llm::ScoredItem>* out);

  /// True on any hit, fresh or stale; `*age_ms` gets the entry's age.
  /// Serving a stale entry bumps stale_serves(). Recency is refreshed
  /// either way (a stale entry being served is still in demand).
  bool GetWithStaleness(uint64_t key, std::vector<llm::ScoredItem>* out,
                        double* age_ms);

  /// Inserts or refreshes `items` under `key` (timestamped now),
  /// evicting the least recently used entry when full.
  void Put(uint64_t key, const std::vector<llm::ScoredItem>& items);

  size_t size() const;
  int64_t hits() const;
  int64_t misses() const;
  /// Stale entries served through GetWithStaleness().
  int64_t stale_serves() const;

 private:
  struct Entry {
    uint64_t key = 0;
    std::vector<llm::ScoredItem> items;
    double put_us = 0.0;  // insertion/refresh time
  };

  double Now() const;
  bool FreshLocked(const Entry& e, double now) const LCREC_REQUIRES(mu_);

  const size_t capacity_;
  const double ttl_ms_;
  const std::function<double()> now_us_;
  mutable obs::Mutex mu_{"serve.cache", 22};
  // Most-recently-used at the front; map values point into the list.
  std::list<Entry> lru_ LCREC_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_
      LCREC_GUARDED_BY(mu_);
  int64_t hits_ LCREC_GUARDED_BY(mu_) = 0;
  int64_t misses_ LCREC_GUARDED_BY(mu_) = 0;
  int64_t stale_serves_ LCREC_GUARDED_BY(mu_) = 0;
};

}  // namespace lcrec::serve

#endif  // LCREC_SERVE_CACHE_H_

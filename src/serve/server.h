#ifndef LCREC_SERVE_SERVER_H_
#define LCREC_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "llm/batch.h"
#include "llm/generate.h"
#include "llm/minillm.h"
#include "obs/slo.h"
#include "obs/sync.h"
#include "obs/timeline.h"
#include "quant/indexing.h"
#include "serve/cache.h"
#include "serve/queue.h"
#include "serve/request.h"

namespace lcrec::serve {

/// Maps a user's item-id history to the LLM prompt tokens to decode
/// from (BOS included) — e.g. LcRec wires
/// tasks::InstructionBuilder::SeqPrompt here. Must be callable from any
/// client thread concurrently.
using PromptBuilder =
    std::function<std::vector<int>(const std::vector<int>&)>;

struct ServerOptions {
  int beam_size = 8;
  int top_n_cap = 50;            // requests asking for more are clamped
  int max_queue = 256;           // admission queue capacity
  int max_batch_lanes = 8;       // decode lanes batched per tick
  size_t cache_capacity = 1024;  // result-cache entries; 0 disables
  /// When the queue is empty and no lane is in flight, decode on the
  /// calling thread instead of paying a scheduler handoff — p50 at low
  /// QPS must not tax requests with batching delay.
  bool inline_fast_path = true;
  /// Tests set false to stage requests while the scheduler is parked,
  /// then call Start() to release them deterministically.
  bool start_scheduler = true;
  /// Completions at or above this latency record a kSlowRequest flight-
  /// recorder event (with the request id), so a crash dump names the
  /// recent tail. <= 0 disables.
  double slow_request_ms = 250.0;
  /// Every Nth request is marked `sampled` and, when the global
  /// TraceRecorder is enabled, exported as Chrome async spans. 1 samples
  /// everything (the timelines themselves are always built); <= 0
  /// disables sampling.
  int trace_sample_n = 1;
  /// Latency SLO tracked by the server's burn-rate monitor
  /// (lcrec.serve.slo.* metrics; Statusz()).
  obs::SloOptions slo;
  /// >= 0 starts the process-wide obs::DebugServer on this port (0 =
  /// ephemeral) so the server is live-inspectable over HTTP (/statusz,
  /// /metricsz, ...). -1 leaves the debug surface to the LCREC_DEBUG_PORT
  /// env (checked either way). Start failure is logged, never fatal.
  int debug_port = -1;
};

/// Per-server counters (the global lcrec.serve.* metrics aggregate
/// across servers; tests want this instance's view).
struct ServerStats {
  int64_t requests = 0;
  int64_t completed = 0;        // responses with status kOk
  int64_t decoded = 0;          // beam searches actually executed
  int64_t cache_hits = 0;
  int64_t coalesced = 0;        // joined an identical in-flight request
  int64_t inline_fast_path = 0;
  int64_t shed_queue_full = 0;
  int64_t shed_deadline = 0;
  int64_t batch_ticks = 0;
};

/// In-process online recommendation server: many client threads call
/// Recommend(); a scheduler thread forms continuous batches over a
/// bounded admission queue and drives the shared BatchEngine, retiring
/// finished requests and admitting new ones without draining the batch.
/// Identical concurrent requests are deduplicated single-flight, and
/// completed rankings land in an LRU result cache.
///
/// The model, trie, and token map must outlive the server.
class Server {
 public:
  Server(const llm::MiniLlm& model, const quant::PrefixTrie& trie,
         const llm::IndexTokenMap& token_map, PromptBuilder prompt_builder,
         ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Launches the scheduler thread (no-op when already running).
  void Start();

  /// Closes admission, drains already-admitted work, and joins the
  /// scheduler. Blocked Recommend() callers whose requests were neither
  /// decoded nor shed receive kShutdown.
  void Stop();

  /// Blocking; safe from any thread. Returns a ranked item list or a
  /// shed/shutdown status with the reason encoded in `status`.
  RecommendResponse Recommend(const RecommendRequest& request);

  ServerStats stats() const;
  size_t queue_depth() const { return queue_.size(); }

  /// This server's SLO reading (burn rate over the sliding window).
  const obs::SloMonitor& slo() const { return slo_; }

  /// One-stop serving snapshot: the SLO window reading plus request,
  /// cache (hit/coalesce/inline rates), queue, batch-lane, and shed
  /// counters. Served live as the "serve" section of debugz /statusz.
  std::string Statusz() const;

  /// Writes the process flight-recorder ring (recent sheds, batch ticks,
  /// slow requests...) as JSONL — the same black box the LCREC_CHECK
  /// failure handler dumps to stderr on a crash.
  void DumpFlightRecorder(std::ostream& out) const;

 private:
  /// One admitted request. Shared between the submitting client thread,
  /// identical-request followers, and the scheduler.
  struct Pending {
    uint64_t key = 0;
    std::vector<int> prompt;
    int top_n = 0;
    double submit_us = 0.0;    // obs::NowMicros at submission
    double deadline_ms = 0.0;  // 0 = none
    RecommendResponse response;
    bool done = false;
    /// The leader's timeline. Handed between the leader thread and the
    /// scheduler across existing happens-before edges (queue push/pop,
    /// then Resolve's state_mu_); followers never touch it — each
    /// follower keeps its own local timeline.
    obs::RequestTimeline timeline;
  };
  using PendingPtr = std::shared_ptr<Pending>;

  void SchedulerLoop();
  /// Admits one popped request into the engine (recording its lane tag
  /// in `by_tag`), or sheds it when its deadline already expired.
  /// Scheduler thread only.
  void AdmitOrShed(PendingPtr pending,
                   std::unordered_map<uint64_t, PendingPtr>* by_tag);
  /// Publishes `response` on `pending`, removes it from the in-flight
  /// table, and wakes every waiter.
  void Resolve(const PendingPtr& pending, RecommendResponse response);
  /// Decodes sequentially on the calling thread (fast path).
  void DecodeInline(const PendingPtr& pending);
  /// Blocks until `pending` resolves, then finishes `timeline` (this
  /// caller's own — the leader passes &pending->timeline, a follower its
  /// local one), fills the response's debug breakdown from it, and
  /// accounts completion (latency metric, SLO, slow-request flight
  /// event).
  RecommendResponse WaitDone(const PendingPtr& pending, double t0_us,
                             bool coalesced, obs::RequestTimeline* timeline);
  /// Completion bookkeeping shared by WaitDone and the cache-hit path.
  void FinishRequest(RecommendResponse* resp);

  const llm::MiniLlm& model_;
  const quant::PrefixTrie& trie_;
  const llm::IndexTokenMap& token_map_;
  PromptBuilder prompt_builder_;
  ServerOptions options_;

  ResultCache cache_;
  BoundedQueue<PendingPtr> queue_;
  obs::SloMonitor slo_;
  llm::BatchEngine engine_;  // scheduler thread only (after Start)
  std::atomic<int> active_lanes_{0};
  std::atomic<uint64_t> next_tag_{1};

  obs::Mutex state_mu_{"serve.server.state", 20};
  obs::CondVar done_cv_;
  std::unordered_map<uint64_t, PendingPtr> inflight_
      LCREC_GUARDED_BY(state_mu_);

  std::thread scheduler_;
  std::atomic<bool> running_{false};
  int statusz_section_id_ = -1;  // debugz /statusz registration

  struct AtomicStats {
    std::atomic<int64_t> requests{0}, completed{0}, decoded{0};
    std::atomic<int64_t> cache_hits{0}, coalesced{0}, inline_fast_path{0};
    std::atomic<int64_t> shed_queue_full{0}, shed_deadline{0};
    std::atomic<int64_t> batch_ticks{0};
  };
  AtomicStats stats_;
};

}  // namespace lcrec::serve

#endif  // LCREC_SERVE_SERVER_H_

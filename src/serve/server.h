#ifndef LCREC_SERVE_SERVER_H_
#define LCREC_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "llm/batch.h"
#include "llm/generate.h"
#include "llm/minillm.h"
#include "obs/slo.h"
#include "obs/sync.h"
#include "obs/timeline.h"
#include "quant/indexing.h"
#include "serve/breaker.h"
#include "serve/cache.h"
#include "serve/queue.h"
#include "serve/request.h"

namespace lcrec::serve {

/// Maps a user's item-id history to the LLM prompt tokens to decode
/// from (BOS included) — e.g. LcRec wires
/// tasks::InstructionBuilder::SeqPrompt here. Must be callable from any
/// client thread concurrently.
using PromptBuilder =
    std::function<std::vector<int>(const std::vector<int>&)>;

struct ServerOptions {
  int beam_size = 8;
  int top_n_cap = 50;            // requests asking for more are clamped
  int max_queue = 256;           // admission queue capacity
  int max_batch_lanes = 8;       // decode lanes batched per tick
  size_t cache_capacity = 1024;  // result-cache entries; 0 disables
  /// When the queue is empty and no lane is in flight, decode on the
  /// calling thread instead of paying a scheduler handoff — p50 at low
  /// QPS must not tax requests with batching delay.
  bool inline_fast_path = true;
  /// Tests set false to stage requests while the scheduler is parked,
  /// then call Start() to release them deterministically.
  bool start_scheduler = true;
  /// Completions at or above this latency record a kSlowRequest flight-
  /// recorder event (with the request id), so a crash dump names the
  /// recent tail. <= 0 disables.
  double slow_request_ms = 250.0;
  /// Every Nth request is marked `sampled` and, when the global
  /// TraceRecorder is enabled, exported as Chrome async spans. 1 samples
  /// everything (the timelines themselves are always built); <= 0
  /// disables sampling.
  int trace_sample_n = 1;
  /// Latency SLO tracked by the server's burn-rate monitor
  /// (lcrec.serve.slo.* metrics; Statusz()).
  obs::SloOptions slo;
  /// >= 0 starts the process-wide obs::DebugServer on this port (0 =
  /// ephemeral) so the server is live-inspectable over HTTP (/statusz,
  /// /metricsz, ...). -1 leaves the debug surface to the LCREC_DEBUG_PORT
  /// env (checked either way). Start failure is logged, never fatal.
  int debug_port = -1;

  // --- resilience (the degradation ladder; DESIGN.md §14) ---

  /// Master switch for the degradation ladder. True (default): a request
  /// that would be shed or fail its decode is instead answered from the
  /// next ladder tier (stale cache, then popularity prior), and a
  /// deadline-bearing request is budget-managed inside the engine
  /// (reduced beam / partial decode) rather than running past its
  /// deadline. False restores strict shed semantics — requests fail
  /// with a reason instead of degrading (tests of the shed contract,
  /// and callers that prefer an error over a fallback ranking).
  bool degraded_fallbacks = true;
  /// Result-cache freshness horizon; <= 0 = infinite (default: TTL off,
  /// cache behaviour identical to earlier versions). Stale entries stop
  /// satisfying the healthy-path lookup but remain servable by the
  /// stale-cache degrade tier.
  double cache_ttl_ms = 0.0;
  /// Beam width of the budget-capped tier.
  int degraded_beam = 2;
  /// When a deadline-bearing request reaches admission with less than
  /// this fraction of its budget remaining, it decodes at degraded_beam
  /// instead of beam_size (fewer candidate forwards per tick => fewer
  /// ticks to the deadline get more depth).
  double budget_cap_fraction = 0.5;
  /// Transient decode failures are retried this many times (with
  /// retry_backoff_ms between attempts) before the request falls back.
  int decode_retries = 1;
  double retry_backoff_ms = 1.0;
  /// Circuit breaker over the decode path (always active; with
  /// default thresholds it only trips under sustained failure).
  BreakerOptions breaker;
  /// Scheduler watchdog: a batch tick (or admission step) stuck longer
  /// than this dumps the flight recorder to stderr and counts a
  /// watchdog fire. <= 0 disables the watchdog thread.
  double watchdog_stall_ms = 1000.0;
  /// Popularity prior for the last-resort fallback tier: item ids,
  /// most popular first (precompute top-K by interaction frequency).
  /// Empty = fall back to item ids in index order, which keeps the tier
  /// always available even without a prior.
  std::vector<int> popularity_items;
};

/// Per-server counters (the global lcrec.serve.* metrics aggregate
/// across servers; tests want this instance's view).
struct ServerStats {
  int64_t requests = 0;
  int64_t completed = 0;        // responses with status kOk (any tier)
  int64_t decoded = 0;          // beam searches actually executed
  int64_t cache_hits = 0;
  int64_t coalesced = 0;        // joined an identical in-flight request
  int64_t inline_fast_path = 0;
  int64_t shed_queue_full = 0;
  int64_t shed_deadline = 0;
  int64_t batch_ticks = 0;
  // Degradation-ladder accounting. completed == full-tier responses +
  // the three counters below; requests == completed + sheds + shutdowns
  // (the terminal-state invariant, asserted in serve_resilience_test).
  int64_t degraded_budget_capped = 0;  // level 1 (incl. partial decodes)
  int64_t degraded_stale_cache = 0;    // level 2
  int64_t degraded_popularity = 0;     // level 3
  int64_t shed_shutdown = 0;           // resolved kShutdown
  int64_t decode_failures = 0;   // decode attempts lost to (injected) faults
  int64_t decode_retries = 0;    // retry attempts after such a failure
  int64_t breaker_short_circuits = 0;  // requests the open breaker diverted
  int64_t watchdog_fires = 0;          // scheduler stalls detected
};

/// In-process online recommendation server: many client threads call
/// Recommend(); a scheduler thread forms continuous batches over a
/// bounded admission queue and drives the shared BatchEngine, retiring
/// finished requests and admitting new ones without draining the batch.
/// Identical concurrent requests are deduplicated single-flight, and
/// completed rankings land in an LRU result cache.
///
/// The model, trie, and token map must outlive the server.
class Server {
 public:
  Server(const llm::MiniLlm& model, const quant::PrefixTrie& trie,
         const llm::IndexTokenMap& token_map, PromptBuilder prompt_builder,
         ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Launches the scheduler thread (no-op when already running).
  void Start();

  /// Closes admission, drains already-admitted work, and joins the
  /// scheduler. Blocked Recommend() callers whose requests were neither
  /// decoded nor shed receive kShutdown.
  void Stop();

  /// Blocking; safe from any thread. Returns a ranked item list or a
  /// shed/shutdown status with the reason encoded in `status`.
  RecommendResponse Recommend(const RecommendRequest& request);

  ServerStats stats() const;
  size_t queue_depth() const { return queue_.size(); }

  /// This server's SLO reading (burn rate over the sliding window).
  const obs::SloMonitor& slo() const { return slo_; }

  /// The decode-path circuit breaker (state/stats for tests, statusz).
  const CircuitBreaker& breaker() const { return breaker_; }

  /// The result cache (hit/stale counters for tests).
  const ResultCache& cache() const { return cache_; }

  /// One-stop serving snapshot: the SLO window reading plus request,
  /// cache (hit/coalesce/inline rates), queue, batch-lane, and shed
  /// counters. Served live as the "serve" section of debugz /statusz.
  std::string Statusz() const;

  /// Writes the process flight-recorder ring (recent sheds, batch ticks,
  /// slow requests...) as JSONL — the same black box the LCREC_CHECK
  /// failure handler dumps to stderr on a crash.
  void DumpFlightRecorder(std::ostream& out) const;

 private:
  /// One admitted request. Shared between the submitting client thread,
  /// identical-request followers, and the scheduler.
  struct Pending {
    uint64_t key = 0;
    std::vector<int> prompt;
    int top_n = 0;
    double submit_us = 0.0;    // obs::NowMicros at submission
    double deadline_ms = 0.0;  // 0 = none
    bool beam_capped = false;  // admitted at degraded_beam (budget tier)
    RecommendResponse response;
    bool done = false;
    /// The leader's timeline. Handed between the leader thread and the
    /// scheduler across existing happens-before edges (queue push/pop,
    /// then Resolve's state_mu_); followers never touch it — each
    /// follower keeps its own local timeline.
    obs::RequestTimeline timeline;
  };
  using PendingPtr = std::shared_ptr<Pending>;

  void SchedulerLoop();
  /// Admits one popped request into the engine (recording its lane tag
  /// in `by_tag`), or sheds it when its deadline already expired.
  /// Scheduler thread only.
  void AdmitOrShed(PendingPtr pending,
                   std::unordered_map<uint64_t, PendingPtr>* by_tag);
  /// Publishes `response` on `pending`, removes it from the in-flight
  /// table, and wakes every waiter.
  void Resolve(const PendingPtr& pending, RecommendResponse response);
  /// Decodes sequentially on the calling thread (fast path).
  void DecodeInline(const PendingPtr& pending);
  /// Blocks until `pending` resolves, then finishes `timeline` (this
  /// caller's own — the leader passes &pending->timeline, a follower its
  /// local one), fills the response's debug breakdown from it, and
  /// accounts completion (latency metric, SLO, slow-request flight
  /// event).
  RecommendResponse WaitDone(const PendingPtr& pending, double t0_us,
                             bool coalesced, obs::RequestTimeline* timeline);
  /// Completion bookkeeping shared by WaitDone and the cache-hit path.
  void FinishRequest(RecommendResponse* resp);
  /// Walks the fallback tiers for a request that cannot get a (full)
  /// decode: stale cache, then the popularity prior. With
  /// degraded_fallbacks off, sheds with `shed_status` instead.
  /// `reason` labels the flight event / shed metrics.
  void DegradeOrShed(const PendingPtr& pending, Status shed_status,
                     const char* reason);
  /// Labels + accounts a degraded kOk response and resolves it.
  void ResolveDegraded(const PendingPtr& pending, RecommendResponse resp,
                       const char* label);
  /// Runs the chaos decode gauntlet for one decode attempt: sleeps
  /// through injected latency, retries injected failures up to
  /// decode_retries. False = the attempt failed permanently.
  bool PassChaosDecode();
  /// The always-available level-3 ranking.
  std::vector<llm::ScoredItem> PopularityFallback(int top_n) const;
  void WatchdogLoop();

  const llm::MiniLlm& model_;
  const quant::PrefixTrie& trie_;
  const llm::IndexTokenMap& token_map_;
  PromptBuilder prompt_builder_;
  ServerOptions options_;

  ResultCache cache_;
  BoundedQueue<PendingPtr> queue_;
  obs::SloMonitor slo_;
  llm::BatchEngine engine_;  // scheduler thread only (after Start)
  CircuitBreaker breaker_;
  std::atomic<int> active_lanes_{0};
  std::atomic<uint64_t> next_tag_{1};
  /// NowMicros when the scheduler's current work episode (admission +
  /// tick) started; 0 while parked on the queue. The watchdog reads it
  /// to detect a stuck tick.
  std::atomic<double> tick_start_us_{0.0};

  obs::Mutex state_mu_{"serve.server.state", 20};
  obs::CondVar done_cv_;
  std::unordered_map<uint64_t, PendingPtr> inflight_
      LCREC_GUARDED_BY(state_mu_);

  std::thread scheduler_;
  std::thread watchdog_;
  std::atomic<bool> running_{false};
  obs::Mutex watchdog_mu_;  // anonymous: only guards the stop flag/cv
  obs::CondVar watchdog_cv_;
  bool watchdog_stop_ LCREC_GUARDED_BY(watchdog_mu_) = false;
  int statusz_section_id_ = -1;  // debugz /statusz registration

  struct AtomicStats {
    std::atomic<int64_t> requests{0}, completed{0}, decoded{0};
    std::atomic<int64_t> cache_hits{0}, coalesced{0}, inline_fast_path{0};
    std::atomic<int64_t> shed_queue_full{0}, shed_deadline{0};
    std::atomic<int64_t> batch_ticks{0};
    std::atomic<int64_t> degraded_budget_capped{0}, degraded_stale_cache{0};
    std::atomic<int64_t> degraded_popularity{0}, shed_shutdown{0};
    std::atomic<int64_t> decode_failures{0}, decode_retries{0};
    std::atomic<int64_t> breaker_short_circuits{0}, watchdog_fires{0};
  };
  AtomicStats stats_;
};

}  // namespace lcrec::serve

#endif  // LCREC_SERVE_SERVER_H_

#ifndef LCREC_CORE_GRAPH_H_
#define LCREC_CORE_GRAPH_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/tensor.h"

namespace lcrec::core {

/// A trainable parameter: value plus accumulated gradient. Parameters are
/// owned by a ParamStore and referenced by Graphs built per training step.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;  // Same shape as value; zeroed by ParamStore::ZeroGrad().
};

/// Owns the parameters of a model. Pointer stability is guaranteed
/// (std::deque), so Parameter* handles remain valid for the store's
/// lifetime.
class ParamStore {
 public:
  ParamStore() = default;
  ParamStore(const ParamStore&) = delete;
  ParamStore& operator=(const ParamStore&) = delete;

  /// Creates a parameter initialized with `init`; gradient starts at zero.
  Parameter* Create(const std::string& name, Tensor init);

  /// All parameters in creation order.
  std::vector<Parameter*> All();

  void ZeroGrad();

  /// Total number of scalar parameters.
  int64_t TotalSize() const;

  size_t Count() const { return params_.size(); }

  /// Finds a parameter by name; returns nullptr if absent.
  Parameter* Find(const std::string& name);

  /// Removes every parameter (invalidates previously returned pointers).
  void Clear() { params_.clear(); }

 private:
  std::deque<Parameter> params_;
};

/// Variable handle inside a Graph.
using VarId = int32_t;

/// Dynamic reverse-mode automatic differentiation over Tensors.
///
/// Usage: build a fresh Graph per training step, call ops to construct the
/// forward computation (values are computed eagerly), then call
/// Backward(loss) to propagate gradients into every Parameter that
/// participated. All ops validate shapes with assert.
class Graph {
 public:
  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  // --- Leaf creation -----------------------------------------------------

  /// A constant input (no gradient tracked).
  VarId Input(Tensor value);

  /// A trainable parameter; Backward accumulates into p->grad.
  VarId Param(Parameter* p);

  // --- Elementwise / arithmetic ------------------------------------------

  VarId Add(VarId a, VarId b);          // same shape
  VarId Sub(VarId a, VarId b);          // same shape
  VarId Mul(VarId a, VarId b);          // elementwise, same shape
  VarId Scale(VarId a, float c);        // c * a
  VarId AddScalar(VarId a, float c);    // a + c
  VarId AddBias(VarId a, VarId bias);   // [m,n] + [n] broadcast over rows
  VarId MulRowBroadcast(VarId a, VarId row);  // [m,n] * [n] per row

  VarId Relu(VarId a);
  VarId Sigmoid(VarId a);
  VarId Tanh(VarId a);
  VarId Silu(VarId a);  // x * sigmoid(x)
  VarId Gelu(VarId a);  // tanh approximation
  VarId Exp(VarId a);
  VarId Log(VarId a);   // requires positive inputs
  VarId Square(VarId a);

  // --- Linear algebra ----------------------------------------------------

  VarId MatMul(VarId a, VarId b);    // [m,k] x [k,n] -> [m,n]
  VarId MatMulNT(VarId a, VarId b);  // [m,k] x [n,k]^T -> [m,n]
  VarId Transpose(VarId a);          // [m,n] -> [n,m]

  // --- Shape ops ----------------------------------------------------------

  VarId Reshape(VarId a, std::vector<int64_t> shape);
  VarId SliceRows(VarId a, int64_t r0, int64_t r1);  // rows [r0, r1)
  VarId SliceCols(VarId a, int64_t c0, int64_t c1);  // cols [c0, c1)
  VarId ConcatRows(const std::vector<VarId>& parts);  // same #cols
  VarId ConcatCols(const std::vector<VarId>& parts);  // same #rows

  /// Gathers rows of `table` by index (with repetitions allowed). Works
  /// for any var, in particular embedding tables: backward scatter-adds.
  VarId Rows(VarId table, const std::vector<int>& ids);

  // --- Reductions ----------------------------------------------------------

  VarId Sum(VarId a);           // -> scalar
  VarId Mean(VarId a);          // -> scalar
  VarId MeanOverRows(VarId a);  // [m,n] -> [n]
  VarId SumOverRows(VarId a);   // [m,n] -> [n]
  VarId MaxOverRows(VarId a);   // [m,n] -> [n], argmax routing in backward
  VarId RowSums(VarId a);       // [m,n] -> [m]

  // --- Normalization / regularization --------------------------------------

  /// Row-wise layer norm with learnable gain/bias (both shape [n]).
  VarId LayerNorm(VarId x, VarId gamma, VarId beta, float eps = 1e-5f);

  /// Row-wise RMS norm with learnable gain (shape [n]).
  VarId RmsNorm(VarId x, VarId gamma, float eps = 1e-6f);

  /// L2-normalizes each row to unit norm.
  VarId NormalizeRows(VarId x, float eps = 1e-8f);

  /// Inverted dropout; identity when !train or p == 0.
  VarId Dropout(VarId x, float p, Rng& rng, bool train);

  // --- Softmax / losses -----------------------------------------------------

  /// Row-wise softmax over the full row.
  VarId Softmax(VarId a);

  /// Row-wise softmax where row i attends only to columns [0, i] (causal
  /// self-attention mask on a square score matrix).
  VarId CausalSoftmax(VarId a);

  /// Row-wise softmax with an explicit per-row valid length; columns at or
  /// beyond the length get probability 0.
  VarId MaskedSoftmax(VarId a, std::vector<int> valid_len);

  /// Mean softmax cross-entropy. `targets[i]` is the class of row i, or
  /// kIgnore to exclude the row from the loss. Returns a scalar.
  static constexpr int kIgnore = -1;
  VarId SoftmaxCrossEntropy(VarId logits, std::vector<int> targets);

  /// Mean binary cross-entropy with logits against a dense 0/1 target.
  VarId SigmoidBCE(VarId logits, Tensor targets);

  /// Mean squared error (mean over all elements) against a constant.
  VarId MseLoss(VarId pred, Tensor target);

  /// Mean squared error between two vars.
  VarId MseLossVar(VarId pred, VarId target);

  // --- Special ops -----------------------------------------------------------

  /// Identity forward, zero backward (the sg[.] operator of Eq. 4).
  VarId StopGradient(VarId a);

  /// FMLP-Rec learnable frequency-domain filter: y = Re(IDFT(W .* DFT(x)))
  /// along the row (sequence) axis. `w_re`/`w_im` have the same shape as x.
  VarId DftFilter(VarId x, VarId w_re, VarId w_im);

  // --- Execution ---------------------------------------------------------------

  /// Runs reverse-mode accumulation from `root` (must be scalar) and
  /// flushes gradients of Param leaves into their Parameter::grad.
  void Backward(VarId root);

  const Tensor& val(VarId id) const;
  /// Gradient of a var after Backward; empty tensor if it received none.
  const Tensor& grad_of(VarId id) const;

  size_t NodeCount() const { return nodes_.size(); }

 private:
  struct Node {
    Tensor value;
    Tensor grad;  // lazily allocated
    Parameter* param = nullptr;
    std::function<void(Graph&)> backfn;  // may be empty for leaves
  };

  VarId AddNode(Tensor value, std::function<void(Graph&)> backfn);
  Tensor& GradRef(VarId id);  // allocates zeros on first touch
  bool HasGrad(VarId id) const;

  std::deque<Node> nodes_;
};

}  // namespace lcrec::core

#endif  // LCREC_CORE_GRAPH_H_

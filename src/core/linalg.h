#ifndef LCREC_CORE_LINALG_H_
#define LCREC_CORE_LINALG_H_

#include <cstdint>
#include <vector>

#include "core/tensor.h"

namespace lcrec::core {

/// Plain (non-autograd) helpers used by evaluation, indexing and analysis
/// code paths.

/// out = a[m,k] * b[k,n].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// out = a[m,k] * b[n,k]^T.
Tensor MatMulNT(const Tensor& a, const Tensor& b);

/// Cosine similarity between rows of `a` and rows of `b` -> [ma, mb].
Tensor CosineSimilarity(const Tensor& a, const Tensor& b);

/// Squared euclidean distances between rows of `a` and rows of `b`.
Tensor SquaredDistances(const Tensor& a, const Tensor& b);

/// Principal component analysis via covariance + Jacobi eigen-solver.
/// Returns the top-k components and can project data onto them.
class Pca {
 public:
  /// Fits on the rows of `data` ([n, d], n >= 2).
  Pca(const Tensor& data, int k);

  /// Projects rows of `data` onto the fitted components -> [n, k].
  Tensor Transform(const Tensor& data) const;

  /// Explained variance of each kept component (descending).
  const std::vector<float>& explained_variance() const { return eigvals_; }

  /// Component matrix [k, d].
  const Tensor& components() const { return components_; }

 private:
  int k_;
  std::vector<float> mean_;
  std::vector<float> eigvals_;
  Tensor components_;
};

/// Symmetric eigen-decomposition by cyclic Jacobi rotations.
/// `a` is [n,n] symmetric; outputs eigenvalues (descending) and the
/// corresponding eigenvectors as rows of `vectors`.
void SymmetricEigen(const Tensor& a, std::vector<float>* values,
                    Tensor* vectors, int max_sweeps = 50);

}  // namespace lcrec::core

#endif  // LCREC_CORE_LINALG_H_

#include "core/tensor.h"

#include <numeric>
#include <sstream>

#include "core/check.h"

namespace lcrec::core {

namespace {
int64_t NumElements(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    LCREC_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)), data_(NumElements(shape_), 0.0f) {}

Tensor::Tensor(std::vector<int64_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  LCREC_CHECK_EQ(static_cast<int64_t>(data_.size()), NumElements(shape_));
}

Tensor Tensor::Scalar(float v) { return Tensor({}, {v}); }

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::Ones(std::vector<int64_t> shape) {
  return Full(std::move(shape), 1.0f);
}

Tensor Tensor::Full(std::vector<int64_t> shape, float v) {
  Tensor t(std::move(shape));
  t.Fill(v);
  return t;
}

int64_t Tensor::rows() const {
  if (shape_.empty()) return 1;
  if (shape_.size() == 1) return 1;
  return shape_[0];
}

int64_t Tensor::cols() const {
  if (shape_.empty()) return 1;
  return shape_.back();
}

float Tensor::item() const {
  LCREC_CHECK_EQ(data_.size(), 1u);
  return data_[0];
}

Tensor Tensor::Reshaped(std::vector<int64_t> shape) const {
  LCREC_CHECK_EQ(NumElements(shape), size());
  return Tensor(std::move(shape), data_);
}

void Tensor::Fill(float v) {
  for (float& x : data_) x = v;
}

void Tensor::Axpy(float alpha, const Tensor& other) {
  LCREC_CHECK_EQ(size(), other.size());
  for (int64_t i = 0; i < size(); ++i) data_[i] += alpha * other.data_[i];
}

float Tensor::SquaredNorm() const {
  float s = 0.0f;
  for (float x : data_) s += x * x;
  return s;
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ",";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

bool SameShape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

}  // namespace lcrec::core

#ifndef LCREC_CORE_CHECK_H_
#define LCREC_CORE_CHECK_H_

#include <sstream>
#include <string>

/// Always-on invariant checking. Unlike `assert()`, these macros survive
/// `-DNDEBUG` Release builds — the configuration every paper benchmark
/// runs in — so a silent shape mismatch aborts instead of corrupting
/// gradients. On failure the handler prints the expression, both operand
/// values (for the _OP forms), the live `obs` span stack of the failing
/// thread (so a failed matmul check names the training phase that called
/// it), and calls `std::abort()`.
///
/// Tiers:
///   LCREC_CHECK*   — always on; use for argument validation, shape
///                    checks, and anything outside per-element loops.
///   LCREC_DCHECK*  — compiled out under NDEBUG unless
///                    LCREC_DCHECK_ALWAYS_ON is defined; use only for
///                    per-element inner-loop checks where LCREC_CHECK
///                    measurably regresses the perf-gate suite.
///
/// The out-of-line failure path is compiled into lcrec_obs (the root
/// library of the dependency graph) so that every target, including
/// lcrec_obs itself, can use these macros; see src/obs/CMakeLists.txt.

#if defined(__GNUC__) || defined(__clang__)
#define LCREC_PREDICT_FALSE(x) (__builtin_expect(static_cast<bool>(x), 0))
#else
#define LCREC_PREDICT_FALSE(x) (static_cast<bool>(x))
#endif

namespace lcrec::core::check_internal {

/// Cold failure sink: prints `kind` + `expr` (+ `detail` when non-empty)
/// with file:line and the calling thread's live span stack, then aborts.
[[noreturn]] void CheckFailed(const char* file, int line, const char* kind,
                              const char* expr, const std::string& detail);

template <typename T>
std::string CheckValueString(const T& v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

inline std::string CheckValueString(bool v) { return v ? "true" : "false"; }

template <typename A, typename B>
[[noreturn]] void CheckOpFailed(const char* file, int line, const char* expr,
                                const A& a, const B& b) {
  CheckFailed(file, line, "LCREC_CHECK", expr,
              CheckValueString(a) + " vs. " + CheckValueString(b));
}

/// Works on anything with shape()/ShapeString() (core::Tensor, without
/// making this header depend on tensor.h).
template <typename A, typename B>
[[noreturn]] void CheckShapeFailed(const char* file, int line,
                                   const char* expr, const A& a, const B& b) {
  CheckFailed(file, line, "LCREC_CHECK_SHAPE", expr,
              a.ShapeString() + " vs. " + b.ShapeString());
}

}  // namespace lcrec::core::check_internal

#define LCREC_CHECK(cond)                                \
  (LCREC_PREDICT_FALSE(!(cond))                          \
       ? ::lcrec::core::check_internal::CheckFailed(     \
             __FILE__, __LINE__, "LCREC_CHECK", #cond, \
             std::string())                              \
       : (void)0)

#define LCREC_CHECK_OP_(op, a, b)                                       \
  do {                                                                  \
    auto&& lcrec_check_a_ = (a);                                        \
    auto&& lcrec_check_b_ = (b);                                        \
    if (LCREC_PREDICT_FALSE(!(lcrec_check_a_ op lcrec_check_b_))) {     \
      ::lcrec::core::check_internal::CheckOpFailed(                     \
          __FILE__, __LINE__, #a " " #op " " #b, lcrec_check_a_,        \
          lcrec_check_b_);                                              \
    }                                                                   \
  } while (0)

#define LCREC_CHECK_EQ(a, b) LCREC_CHECK_OP_(==, a, b)
#define LCREC_CHECK_NE(a, b) LCREC_CHECK_OP_(!=, a, b)
#define LCREC_CHECK_GE(a, b) LCREC_CHECK_OP_(>=, a, b)
#define LCREC_CHECK_GT(a, b) LCREC_CHECK_OP_(>, a, b)
#define LCREC_CHECK_LE(a, b) LCREC_CHECK_OP_(<=, a, b)
#define LCREC_CHECK_LT(a, b) LCREC_CHECK_OP_(<, a, b)

/// Aborts with both full shapes unless a and b have identical shapes.
#define LCREC_CHECK_SHAPE(a, b)                                            \
  do {                                                                     \
    const auto& lcrec_shape_a_ = (a);                                      \
    const auto& lcrec_shape_b_ = (b);                                      \
    if (LCREC_PREDICT_FALSE(lcrec_shape_a_.shape() !=                      \
                            lcrec_shape_b_.shape())) {                     \
      ::lcrec::core::check_internal::CheckShapeFailed(                     \
          __FILE__, __LINE__, #a " same shape as " #b, lcrec_shape_a_,     \
          lcrec_shape_b_);                                                 \
    }                                                                      \
  } while (0)

#if !defined(NDEBUG) || defined(LCREC_DCHECK_ALWAYS_ON)

#define LCREC_DCHECK(cond) LCREC_CHECK(cond)
#define LCREC_DCHECK_EQ(a, b) LCREC_CHECK_EQ(a, b)
#define LCREC_DCHECK_NE(a, b) LCREC_CHECK_NE(a, b)
#define LCREC_DCHECK_GE(a, b) LCREC_CHECK_GE(a, b)
#define LCREC_DCHECK_GT(a, b) LCREC_CHECK_GT(a, b)
#define LCREC_DCHECK_LE(a, b) LCREC_CHECK_LE(a, b)
#define LCREC_DCHECK_LT(a, b) LCREC_CHECK_LT(a, b)
#define LCREC_DCHECK_SHAPE(a, b) LCREC_CHECK_SHAPE(a, b)

#else  // NDEBUG && !LCREC_DCHECK_ALWAYS_ON

/// Type-checked but never evaluated: operands must still compile, so a
/// DCHECK cannot silently rot, but the Release hot path pays nothing.
#define LCREC_DCHECK_NOOP_1_(cond) \
  do {                             \
    if (false) {                   \
      (void)(cond);                \
    }                              \
  } while (0)
#define LCREC_DCHECK_NOOP_2_(a, b) \
  do {                             \
    if (false) {                   \
      (void)(a);                   \
      (void)(b);                   \
    }                              \
  } while (0)

#define LCREC_DCHECK(cond) LCREC_DCHECK_NOOP_1_(cond)
#define LCREC_DCHECK_EQ(a, b) LCREC_DCHECK_NOOP_2_(a, b)
#define LCREC_DCHECK_NE(a, b) LCREC_DCHECK_NOOP_2_(a, b)
#define LCREC_DCHECK_GE(a, b) LCREC_DCHECK_NOOP_2_(a, b)
#define LCREC_DCHECK_GT(a, b) LCREC_DCHECK_NOOP_2_(a, b)
#define LCREC_DCHECK_LE(a, b) LCREC_DCHECK_NOOP_2_(a, b)
#define LCREC_DCHECK_LT(a, b) LCREC_DCHECK_NOOP_2_(a, b)
#define LCREC_DCHECK_SHAPE(a, b) LCREC_DCHECK_NOOP_2_(a, b)

#endif  // NDEBUG && !LCREC_DCHECK_ALWAYS_ON

#endif  // LCREC_CORE_CHECK_H_

#include "core/optim.h"

#include <cmath>
#include <istream>
#include <ostream>

namespace lcrec::core {

namespace {

// Tensor-list (de)serialization shared by the optimizer states. Each
// tensor is written as u64 element count + raw floats; loading stages
// everything and validates sizes before committing, so a failed load
// never leaves the optimizer half-restored.

void WriteTensorList(std::ostream& os, const std::vector<Tensor>& list) {
  uint64_t n = list.size();
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const Tensor& t : list) {
    uint64_t size = static_cast<uint64_t>(t.size());
    os.write(reinterpret_cast<const char*>(&size), sizeof(size));
    os.write(reinterpret_cast<const char*>(t.data()),
             static_cast<std::streamsize>(sizeof(float) * t.size()));
  }
}

bool ReadTensorListInto(std::istream& is, std::vector<Tensor>* list) {
  uint64_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!is || n != list->size()) return false;
  std::vector<Tensor> staged;
  staged.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t size = 0;
    is.read(reinterpret_cast<char*>(&size), sizeof(size));
    if (!is || size != static_cast<uint64_t>((*list)[i].size())) return false;
    Tensor t((*list)[i].shape());
    is.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(sizeof(float) * t.size()));
    if (!is) return false;
    staged.push_back(std::move(t));
  }
  *list = std::move(staged);
  return true;
}

}  // namespace

CosineSchedule::CosineSchedule(float peak_lr, int64_t warmup_steps,
                               int64_t total_steps, float min_lr)
    : peak_lr_(peak_lr),
      warmup_steps_(warmup_steps),
      total_steps_(total_steps),
      min_lr_(min_lr) {}

float CosineSchedule::LrAt(int64_t step) const {
  if (warmup_steps_ > 0 && step < warmup_steps_) {
    return peak_lr_ * static_cast<float>(step + 1) /
           static_cast<float>(warmup_steps_);
  }
  if (step >= total_steps_) return min_lr_;
  double progress = static_cast<double>(step - warmup_steps_) /
                    static_cast<double>(std::max<int64_t>(1, total_steps_ - warmup_steps_));
  double cos_factor = 0.5 * (1.0 + std::cos(3.141592653589793 * progress));
  return static_cast<float>(min_lr_ + (peak_lr_ - min_lr_) * cos_factor);
}

void Optimizer::SaveState(std::ostream&) const {}

bool Optimizer::LoadState(std::istream&) { return true; }

float Optimizer::ClipGradNorm(float max_norm) {
  double total = 0.0;
  for (Parameter* p : params_) total += p->grad.SquaredNorm();
  float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    float scale = max_norm / norm;
    for (Parameter* p : params_) {
      for (int64_t i = 0; i < p->grad.size(); ++i) p->grad.at(i) *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Parameter*> params, float momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (Parameter* p : params_) velocity_.push_back(Tensor::Zeros(p->value.shape()));
  }
}

void Sgd::Step(float lr) {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    if (momentum_ > 0.0f) {
      Tensor& v = velocity_[i];
      for (int64_t j = 0; j < v.size(); ++j) {
        v.at(j) = momentum_ * v.at(j) + p->grad.at(j);
        p->value.at(j) -= lr * v.at(j);
      }
    } else {
      p->value.Axpy(-lr, p->grad);
    }
  }
}

void Sgd::SaveState(std::ostream& os) const { WriteTensorList(os, velocity_); }

bool Sgd::LoadState(std::istream& is) {
  return ReadTensorListInto(is, &velocity_);
}

AdamW::AdamW(std::vector<Parameter*> params, float beta1, float beta2,
             float eps, float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.push_back(Tensor::Zeros(p->value.shape()));
    v_.push_back(Tensor::Zeros(p->value.shape()));
  }
}

void AdamW::SaveState(std::ostream& os) const {
  os.write(reinterpret_cast<const char*>(&t_), sizeof(t_));
  WriteTensorList(os, m_);
  WriteTensorList(os, v_);
}

bool AdamW::LoadState(std::istream& is) {
  int64_t t = 0;
  is.read(reinterpret_cast<char*>(&t), sizeof(t));
  if (!is || t < 0) return false;
  std::vector<Tensor> m = m_, v = v_;
  if (!ReadTensorListInto(is, &m) || !ReadTensorListInto(is, &v)) return false;
  t_ = t;
  m_ = std::move(m);
  v_ = std::move(v);
  return true;
}

void AdamW::Step(float lr) {
  ++t_;
  float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (int64_t j = 0; j < p->value.size(); ++j) {
      float g = p->grad.at(j);
      m.at(j) = beta1_ * m.at(j) + (1.0f - beta1_) * g;
      v.at(j) = beta2_ * v.at(j) + (1.0f - beta2_) * g * g;
      float mhat = m.at(j) / bc1;
      float vhat = v.at(j) / bc2;
      // Decoupled weight decay (AdamW): applied directly to the weights.
      p->value.at(j) -= lr * (mhat / (std::sqrt(vhat) + eps_) +
                              weight_decay_ * p->value.at(j));
    }
  }
}

}  // namespace lcrec::core

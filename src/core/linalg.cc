#include "core/linalg.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.h"
#include "obs/flops.h"

namespace lcrec::core {

Tensor MatMul(const Tensor& a, const Tensor& b) {
  int64_t m = a.rows(), k = a.cols(), n = b.cols();
  LCREC_CHECK_EQ(b.rows(), k);
  // Nominal model cost (2mnk / full operand traffic) even though the
  // kernel skips zero rows: ratios against peak stay well-defined.
  static obs::KernelFlops kf("core.matmul");
  kf.Add(2 * m * k * n, 4 * (m * k + k * n + m * n));
  Tensor out({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      float aip = a.at(i * k + p);
      if (aip == 0.0f) continue;
      for (int64_t j = 0; j < n; ++j)
        out.at(i * n + j) += aip * b.at(p * n + j);
    }
  }
  return out;
}

Tensor MatMulNT(const Tensor& a, const Tensor& b) {
  int64_t m = a.rows(), k = a.cols(), n = b.rows();
  LCREC_CHECK_EQ(b.cols(), k);
  static obs::KernelFlops kf("core.matmul_nt");
  kf.Add(2 * m * k * n, 4 * (m * k + n * k + m * n));
  Tensor out({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float s = 0.0f;
      for (int64_t p = 0; p < k; ++p) s += a.at(i * k + p) * b.at(j * k + p);
      out.at(i * n + j) = s;
    }
  }
  return out;
}

Tensor CosineSimilarity(const Tensor& a, const Tensor& b) {
  LCREC_CHECK_EQ(a.cols(), b.cols());
  int64_t ma = a.rows(), mb = b.rows(), d = a.cols();
  // Row norms + final scaling; the inner MatMulNT counts itself.
  static obs::KernelFlops kf("core.cosine_sim");
  kf.Add(2 * (ma + mb) * d + 2 * ma * mb, 4 * ((ma + mb) * d + ma * mb));
  std::vector<float> na(ma), nb(mb);
  for (int64_t i = 0; i < ma; ++i) {
    float s = 0.0f;
    for (int64_t j = 0; j < d; ++j) s += a.at(i * d + j) * a.at(i * d + j);
    na[i] = std::sqrt(s) + 1e-12f;
  }
  for (int64_t i = 0; i < mb; ++i) {
    float s = 0.0f;
    for (int64_t j = 0; j < d; ++j) s += b.at(i * d + j) * b.at(i * d + j);
    nb[i] = std::sqrt(s) + 1e-12f;
  }
  Tensor out = MatMulNT(a, b);
  for (int64_t i = 0; i < ma; ++i)
    for (int64_t j = 0; j < mb; ++j) out.at(i * mb + j) /= na[i] * nb[j];
  return out;
}

Tensor SquaredDistances(const Tensor& a, const Tensor& b) {
  LCREC_CHECK_EQ(a.cols(), b.cols());
  int64_t ma = a.rows(), mb = b.rows(), d = a.cols();
  static obs::KernelFlops kf("core.sqdist");
  kf.Add(3 * ma * mb * d, 4 * (ma * d + mb * d + ma * mb));
  Tensor out({ma, mb});
  for (int64_t i = 0; i < ma; ++i) {
    for (int64_t j = 0; j < mb; ++j) {
      float s = 0.0f;
      for (int64_t p = 0; p < d; ++p) {
        float diff = a.at(i * d + p) - b.at(j * d + p);
        s += diff * diff;
      }
      out.at(i * mb + j) = s;
    }
  }
  return out;
}

void SymmetricEigen(const Tensor& a, std::vector<float>* values,
                    Tensor* vectors, int max_sweeps) {
  int64_t n = a.rows();
  LCREC_CHECK_EQ(a.cols(), n);
  // Work in double for numerical robustness.
  std::vector<double> m(static_cast<size_t>(n * n));
  for (int64_t i = 0; i < n * n; ++i) m[i] = a.at(i);
  std::vector<double> v(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int64_t p = 0; p < n; ++p)
      for (int64_t q = p + 1; q < n; ++q) off += m[p * n + q] * m[p * n + q];
    if (off < 1e-20) break;
    for (int64_t p = 0; p < n; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        double apq = m[p * n + q];
        if (std::abs(apq) < 1e-18) continue;
        double app = m[p * n + p], aqq = m[q * n + q];
        double theta = 0.5 * (aqq - app) / apq;
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        for (int64_t i = 0; i < n; ++i) {
          double mip = m[i * n + p], miq = m[i * n + q];
          m[i * n + p] = c * mip - s * miq;
          m[i * n + q] = s * mip + c * miq;
        }
        for (int64_t i = 0; i < n; ++i) {
          double mpi = m[p * n + i], mqi = m[q * n + i];
          m[p * n + i] = c * mpi - s * mqi;
          m[q * n + i] = s * mpi + c * mqi;
        }
        for (int64_t i = 0; i < n; ++i) {
          double vip = v[i * n + p], viq = v[i * n + q];
          v[i * n + p] = c * vip - s * viq;
          v[i * n + q] = s * vip + c * viq;
        }
      }
    }
  }
  // Sort by eigenvalue descending.
  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
    return m[x * n + x] > m[y * n + y];
  });
  values->resize(n);
  *vectors = Tensor({n, n});
  for (int64_t r = 0; r < n; ++r) {
    int64_t src = order[r];
    (*values)[r] = static_cast<float>(m[src * n + src]);
    for (int64_t i = 0; i < n; ++i)
      vectors->at(r * n + i) = static_cast<float>(v[i * n + src]);
  }
}

Pca::Pca(const Tensor& data, int k) : k_(k) {
  int64_t n = data.rows(), d = data.cols();
  LCREC_CHECK_GE(n, 2);
  LCREC_CHECK_GE(k, 1);
  LCREC_CHECK_LE(k, d);
  mean_.assign(static_cast<size_t>(d), 0.0f);
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < d; ++j) mean_[j] += data.at(i * d + j);
  for (int64_t j = 0; j < d; ++j) mean_[j] /= static_cast<float>(n);

  Tensor cov({d, d});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t p = 0; p < d; ++p) {
      float xp = data.at(i * d + p) - mean_[p];
      if (xp == 0.0f) continue;
      for (int64_t q = 0; q < d; ++q) {
        cov.at(p * d + q) += xp * (data.at(i * d + q) - mean_[q]);
      }
    }
  }
  for (int64_t i = 0; i < d * d; ++i) cov.at(i) /= static_cast<float>(n - 1);

  std::vector<float> values;
  Tensor vectors;
  SymmetricEigen(cov, &values, &vectors);
  eigvals_.assign(values.begin(), values.begin() + k_);
  components_ = Tensor({k_, d});
  for (int64_t r = 0; r < k_; ++r)
    for (int64_t j = 0; j < d; ++j)
      components_.at(r * d + j) = vectors.at(r * d + j);
}

Tensor Pca::Transform(const Tensor& data) const {
  int64_t n = data.rows(), d = data.cols();
  LCREC_CHECK_EQ(d, static_cast<int64_t>(mean_.size()));
  Tensor centered({n, d});
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < d; ++j)
      centered.at(i * d + j) = data.at(i * d + j) - mean_[j];
  return MatMulNT(centered, components_);
}

}  // namespace lcrec::core

#include "core/check.h"

#include <cstdlib>
#include <vector>

#include "obs/flightrec.h"
#include "obs/log.h"
#include "obs/sync.h"
#include "obs/trace.h"

namespace lcrec::core::check_internal {

void CheckFailed(const char* file, int line, const char* kind,
                 const char* expr, const std::string& detail) {
  // The dump below takes obs mutexes with arbitrary locks already held;
  // keep the lock-discipline detector out of its own abort path.
  obs::sync_internal::BypassCurrentThread();
  std::string msg = std::string(kind) + " failed: " + expr;
  if (!detail.empty()) msg += " (" + detail + ")";
  obs::LogRaw(obs::LogLevel::kError, "%s at %s:%d", msg.c_str(), file, line);
  const std::vector<const char*>& frames = obs::CurrentThreadSpanFrames();
  if (frames.empty()) {
    obs::LogRaw(obs::LogLevel::kError,
                "  span stack: (no live spans on this thread)");
  } else {
    std::string stack;
    for (const char* f : frames) {
      if (!stack.empty()) stack += " > ";
      stack += f;
    }
    obs::LogRaw(obs::LogLevel::kError, "  span stack: %s", stack.c_str());
  }
  // Black-box dump: whatever the process was doing recently (sheds,
  // batch ticks, health trips) goes to stderr before the abort, so a
  // crash in production serving leaves a debuggable record.
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();
  fr.Record(obs::FrKind::kCheckFail, kind, line, 0);
  fr.DumpToStderr(msg.c_str());
  std::abort();
}

}  // namespace lcrec::core::check_internal

#ifndef LCREC_CORE_TENSOR_H_
#define LCREC_CORE_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/check.h"

namespace lcrec::core {

/// Dense row-major float32 tensor. Supports rank 0 (scalar), 1 (vector)
/// and 2 (matrix); rank-2 is the workhorse for every model in this repo.
///
/// The class is a passive value type: all learning machinery (gradients,
/// graph bookkeeping) lives in `Graph` (graph.h), not here.
class Tensor {
 public:
  Tensor() = default;

  /// Creates a zero-filled tensor of the given shape.
  explicit Tensor(std::vector<int64_t> shape);

  /// Creates a tensor of the given shape from a flat row-major buffer.
  Tensor(std::vector<int64_t> shape, std::vector<float> data);

  /// Convenience factories.
  static Tensor Scalar(float v);
  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Ones(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float v);

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  bool empty() const { return data_.empty() && shape_.empty(); }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  int rank() const { return static_cast<int>(shape_.size()); }
  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(int i) const { return shape_.at(i); }

  /// Number of rows/cols when viewed as a matrix. A rank-1 tensor is
  /// treated as a single row; a scalar as 1x1.
  int64_t rows() const;
  int64_t cols() const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  // Element access is on every inner loop in the repo, so bounds are
  // debug-tier only (LCREC_DCHECK): free in Release, fatal in debug and
  // LCREC_DCHECK_ALWAYS_ON builds.
  float& at(int64_t i) {
    LCREC_DCHECK_GE(i, 0);
    LCREC_DCHECK_LT(i, size());
    return data_[i];
  }
  float at(int64_t i) const {
    LCREC_DCHECK_GE(i, 0);
    LCREC_DCHECK_LT(i, size());
    return data_[i];
  }
  float& at(int64_t r, int64_t c) { return at(r * cols() + c); }
  float at(int64_t r, int64_t c) const { return at(r * cols() + c); }

  /// Scalar access; requires size() == 1.
  float item() const;

  /// Returns a tensor with identical data and a new shape (same size).
  Tensor Reshaped(std::vector<int64_t> shape) const;

  void Fill(float v);

  /// In-place axpy: this += alpha * other. Shapes must match.
  void Axpy(float alpha, const Tensor& other);

  /// Squared L2 norm of all elements.
  float SquaredNorm() const;

  std::string ShapeString() const;

 private:
  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

/// True if the two shapes are identical.
bool SameShape(const Tensor& a, const Tensor& b);

}  // namespace lcrec::core

#endif  // LCREC_CORE_TENSOR_H_

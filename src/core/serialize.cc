#include "core/serialize.h"

#include <cstdint>
#include <fstream>
#include <vector>

namespace lcrec::core {

namespace {
constexpr uint32_t kMagic = 0x4C435243;  // "LCRC"

void WriteU64(std::ostream& os, uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU64(std::istream& is, uint64_t* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(is);
}
}  // namespace

bool SaveParams(ParamStore& store, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  uint32_t magic = kMagic;
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  auto params = store.All();
  WriteU64(os, params.size());
  for (Parameter* p : params) {
    WriteU64(os, p->name.size());
    os.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    WriteU64(os, p->value.shape().size());
    for (int64_t d : p->value.shape()) WriteU64(os, static_cast<uint64_t>(d));
    os.write(reinterpret_cast<const char*>(p->value.data()),
             static_cast<std::streamsize>(sizeof(float) * p->value.size()));
  }
  return static_cast<bool>(os);
}

bool LoadParams(ParamStore& store, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!is || magic != kMagic) return false;
  uint64_t count = 0;
  if (!ReadU64(is, &count)) return false;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    if (!ReadU64(is, &name_len)) return false;
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    uint64_t rank = 0;
    if (!ReadU64(is, &rank)) return false;
    std::vector<int64_t> shape(rank);
    for (uint64_t r = 0; r < rank; ++r) {
      uint64_t d = 0;
      if (!ReadU64(is, &d)) return false;
      shape[r] = static_cast<int64_t>(d);
    }
    Parameter* p = store.Find(name);
    if (p == nullptr || p->value.shape() != shape) return false;
    is.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(sizeof(float) * p->value.size()));
    if (!is) return false;
  }
  return true;
}

}  // namespace lcrec::core

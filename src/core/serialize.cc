#include "core/serialize.h"

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#include "obs/log.h"

namespace lcrec::core {

namespace {
constexpr uint32_t kMagic = 0x4C435243;  // "LCRC"

void WriteU64(std::ostream& os, uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU64(std::istream& is, uint64_t* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(is);
}
}  // namespace

bool SaveParamsToStream(ParamStore& store, std::ostream& os) {
  uint32_t magic = kMagic;
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  auto params = store.All();
  WriteU64(os, params.size());
  for (Parameter* p : params) {
    WriteU64(os, p->name.size());
    os.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    WriteU64(os, p->value.shape().size());
    for (int64_t d : p->value.shape()) WriteU64(os, static_cast<uint64_t>(d));
    os.write(reinterpret_cast<const char*>(p->value.data()),
             static_cast<std::streamsize>(sizeof(float) * p->value.size()));
  }
  return static_cast<bool>(os);
}

bool LoadParamsFromStream(ParamStore& store, std::istream& is) {
  uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!is || magic != kMagic) {
    obs::Log(obs::LogLevel::kWarn,
             "[serialize] rejected: bad magic 0x%08x (want 0x%08x)",
             magic, kMagic);
    return false;
  }
  uint64_t count = 0;
  if (!ReadU64(is, &count)) {
    obs::Log(obs::LogLevel::kWarn,
             "[serialize] rejected: short read in parameter count");
    return false;
  }
  // Stage every tensor before touching the store, so a blob that fails
  // at parameter k never partially mutates parameters 0..k-1.
  std::vector<std::pair<Parameter*, Tensor>> staged;
  staged.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    if (!ReadU64(is, &name_len)) {
      obs::Log(obs::LogLevel::kWarn,
               "[serialize] rejected: short read in name length of "
               "parameter %llu/%llu",
               static_cast<unsigned long long>(i),
               static_cast<unsigned long long>(count));
      return false;
    }
    // An absurd name length means a corrupt length field; bail before a
    // multi-gigabyte allocation.
    if (name_len > (1u << 20)) {
      obs::Log(obs::LogLevel::kWarn,
               "[serialize] rejected: implausible name length %llu",
               static_cast<unsigned long long>(name_len));
      return false;
    }
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    if (!is) {
      obs::Log(obs::LogLevel::kWarn,
               "[serialize] rejected: short read in name of parameter "
               "%llu/%llu",
               static_cast<unsigned long long>(i),
               static_cast<unsigned long long>(count));
      return false;
    }
    uint64_t rank = 0;
    if (!ReadU64(is, &rank) || rank > 8) {
      obs::Log(obs::LogLevel::kWarn,
               "[serialize] rejected: short read or bad rank for \"%s\"",
               name.c_str());
      return false;
    }
    std::vector<int64_t> shape(rank);
    for (uint64_t r = 0; r < rank; ++r) {
      uint64_t d = 0;
      if (!ReadU64(is, &d)) {
        obs::Log(obs::LogLevel::kWarn,
                 "[serialize] rejected: short read in shape of \"%s\"",
                 name.c_str());
        return false;
      }
      shape[r] = static_cast<int64_t>(d);
    }
    Parameter* p = store.Find(name);
    if (p == nullptr) {
      obs::Log(obs::LogLevel::kWarn,
               "[serialize] rejected: unknown parameter \"%s\"",
               name.c_str());
      return false;
    }
    if (p->value.shape() != shape) {
      std::string want = p->value.ShapeString();
      obs::Log(obs::LogLevel::kWarn,
               "[serialize] rejected: shape mismatch for \"%s\" (file has "
               "rank %llu, store wants %s)",
               name.c_str(), static_cast<unsigned long long>(rank),
               want.c_str());
      return false;
    }
    Tensor value(shape);
    is.read(reinterpret_cast<char*>(value.data()),
            static_cast<std::streamsize>(sizeof(float) * value.size()));
    if (!is) {
      obs::Log(obs::LogLevel::kWarn,
               "[serialize] rejected: short read in data of \"%s\"",
               name.c_str());
      return false;
    }
    staged.emplace_back(p, std::move(value));
  }
  for (auto& [p, value] : staged) p->value = std::move(value);
  return true;
}

bool SaveParams(ParamStore& store, const std::string& path) {
  std::ofstream os(path, std::ios::binary);  // lint:allow(ckpt-bypass)
  if (!os) {
    obs::Log(obs::LogLevel::kWarn, "[serialize] cannot open \"%s\": %s",
             path.c_str(), std::strerror(errno));
    return false;
  }
  if (!SaveParamsToStream(store, os)) {
    obs::Log(obs::LogLevel::kWarn, "[serialize] write to \"%s\" failed: %s",
             path.c_str(), std::strerror(errno));
    return false;
  }
  return true;
}

bool LoadParams(ParamStore& store, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    obs::Log(obs::LogLevel::kWarn, "[serialize] cannot open \"%s\": %s",
             path.c_str(), std::strerror(errno));
    return false;
  }
  return LoadParamsFromStream(store, is);
}

}  // namespace lcrec::core

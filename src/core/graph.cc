#include "core/graph.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/check.h"
#include "obs/flops.h"

namespace lcrec::core {

namespace {

// C += A[m,k] * B[k,n]
void MmAccum(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      float aip = ai[p];
      if (aip == 0.0f) continue;
      const float* bp = b + p * n;
      for (int64_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

// C += A[m,k] * B[n,k]^T
void MmNtAccum(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* bj = b + j * k;
      float s = 0.0f;
      for (int64_t p = 0; p < k; ++p) s += ai[p] * bj[p];
      ci[j] += s;
    }
  }
}

// C += A[k,m]^T * B[k,n]
void MmTnAccum(const float* a, const float* b, float* c, int64_t k, int64_t m,
               int64_t n) {
  for (int64_t p = 0; p < k; ++p) {
    const float* ap = a + p * m;
    const float* bp = b + p * n;
    for (int64_t i = 0; i < m; ++i) {
      float aip = ap[i];
      if (aip == 0.0f) continue;
      float* ci = c + i * n;
      for (int64_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ParamStore
// ---------------------------------------------------------------------------

Parameter* ParamStore::Create(const std::string& name, Tensor init) {
  params_.push_back(Parameter{name, std::move(init), Tensor()});
  Parameter& p = params_.back();
  p.grad = Tensor::Zeros(p.value.shape());
  return &p;
}

std::vector<Parameter*> ParamStore::All() {
  std::vector<Parameter*> out;
  out.reserve(params_.size());
  for (Parameter& p : params_) out.push_back(&p);
  return out;
}

void ParamStore::ZeroGrad() {
  for (Parameter& p : params_) p.grad.Fill(0.0f);
}

int64_t ParamStore::TotalSize() const {
  int64_t n = 0;
  for (const Parameter& p : params_) n += p.value.size();
  return n;
}

Parameter* ParamStore::Find(const std::string& name) {
  for (Parameter& p : params_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Graph basics
// ---------------------------------------------------------------------------

VarId Graph::AddNode(Tensor value, std::function<void(Graph&)> backfn) {
  nodes_.push_back(Node{std::move(value), Tensor(), nullptr, std::move(backfn)});
  return static_cast<VarId>(nodes_.size()) - 1;
}

const Tensor& Graph::val(VarId id) const { return nodes_[id].value; }

const Tensor& Graph::grad_of(VarId id) const { return nodes_[id].grad; }

Tensor& Graph::GradRef(VarId id) {
  Node& n = nodes_[id];
  if (n.grad.empty() && n.value.size() > 0) {
    n.grad = Tensor::Zeros(n.value.shape());
  }
  return n.grad;
}

bool Graph::HasGrad(VarId id) const { return !nodes_[id].grad.empty(); }

VarId Graph::Input(Tensor value) { return AddNode(std::move(value), {}); }

VarId Graph::Param(Parameter* p) {
  VarId id = AddNode(p->value, {});
  nodes_[id].param = p;
  return id;
}

void Graph::Backward(VarId root) {
  LCREC_CHECK_EQ(nodes_[root].value.size(), 1u);
  GradRef(root).Fill(1.0f);
  for (VarId i = static_cast<VarId>(nodes_.size()) - 1; i >= 0; --i) {
    Node& n = nodes_[i];
    if (n.grad.empty()) continue;  // no gradient flowed here
    if (n.backfn) n.backfn(*this);
    if (n.param != nullptr) n.param->grad.Axpy(1.0f, n.grad);
  }
}

// ---------------------------------------------------------------------------
// Elementwise
// ---------------------------------------------------------------------------

VarId Graph::Add(VarId a, VarId b) {
  LCREC_CHECK_SHAPE(val(a), val(b));
  Tensor out = val(a);
  out.Axpy(1.0f, val(b));
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, a, b](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    g.GradRef(a).Axpy(1.0f, gout);
    g.GradRef(b).Axpy(1.0f, gout);
  };
  return id;
}

VarId Graph::Sub(VarId a, VarId b) {
  LCREC_CHECK_SHAPE(val(a), val(b));
  Tensor out = val(a);
  out.Axpy(-1.0f, val(b));
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, a, b](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    g.GradRef(a).Axpy(1.0f, gout);
    g.GradRef(b).Axpy(-1.0f, gout);
  };
  return id;
}

VarId Graph::Mul(VarId a, VarId b) {
  LCREC_CHECK_SHAPE(val(a), val(b));
  Tensor out = val(a);
  for (int64_t i = 0; i < out.size(); ++i) out.at(i) *= val(b).at(i);
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, a, b](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    Tensor& ga = g.GradRef(a);
    Tensor& gb = g.GradRef(b);
    const Tensor& va = g.val(a);
    const Tensor& vb = g.val(b);
    for (int64_t i = 0; i < gout.size(); ++i) {
      ga.at(i) += gout.at(i) * vb.at(i);
      gb.at(i) += gout.at(i) * va.at(i);
    }
  };
  return id;
}

VarId Graph::Scale(VarId a, float c) {
  Tensor out = val(a);
  for (int64_t i = 0; i < out.size(); ++i) out.at(i) *= c;
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, a, c](Graph& g) {
    g.GradRef(a).Axpy(c, g.nodes_[id].grad);
  };
  return id;
}

VarId Graph::AddScalar(VarId a, float c) {
  Tensor out = val(a);
  for (int64_t i = 0; i < out.size(); ++i) out.at(i) += c;
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, a](Graph& g) {
    g.GradRef(a).Axpy(1.0f, g.nodes_[id].grad);
  };
  return id;
}

VarId Graph::AddBias(VarId a, VarId bias) {
  const Tensor& va = val(a);
  const Tensor& vb = val(bias);
  LCREC_CHECK_EQ(vb.size(), va.cols());
  Tensor out = va;
  int64_t m = va.rows(), n = va.cols();
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) out.at(i * n + j) += vb.at(j);
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, a, bias](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    g.GradRef(a).Axpy(1.0f, gout);
    Tensor& gb = g.GradRef(bias);
    int64_t m = gout.rows(), n = gout.cols();
    for (int64_t i = 0; i < m; ++i)
      for (int64_t j = 0; j < n; ++j) gb.at(j) += gout.at(i * n + j);
  };
  return id;
}

VarId Graph::MulRowBroadcast(VarId a, VarId row) {
  const Tensor& va = val(a);
  const Tensor& vr = val(row);
  LCREC_CHECK_EQ(vr.size(), va.cols());
  Tensor out = va;
  int64_t m = va.rows(), n = va.cols();
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) out.at(i * n + j) *= vr.at(j);
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, a, row](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    const Tensor& va = g.val(a);
    const Tensor& vr = g.val(row);
    Tensor& ga = g.GradRef(a);
    Tensor& gr = g.GradRef(row);
    int64_t m = gout.rows(), n = gout.cols();
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        ga.at(i * n + j) += gout.at(i * n + j) * vr.at(j);
        gr.at(j) += gout.at(i * n + j) * va.at(i * n + j);
      }
    }
  };
  return id;
}

VarId Graph::Relu(VarId a) {
  Tensor out = val(a);
  for (int64_t i = 0; i < out.size(); ++i) out.at(i) = std::max(0.0f, out.at(i));
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, a](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    const Tensor& va = g.val(a);
    Tensor& ga = g.GradRef(a);
    for (int64_t i = 0; i < gout.size(); ++i)
      if (va.at(i) > 0.0f) ga.at(i) += gout.at(i);
  };
  return id;
}

VarId Graph::Sigmoid(VarId a) {
  Tensor out = val(a);
  for (int64_t i = 0; i < out.size(); ++i)
    out.at(i) = 1.0f / (1.0f + std::exp(-out.at(i)));
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, a](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    const Tensor& y = g.val(id);
    Tensor& ga = g.GradRef(a);
    for (int64_t i = 0; i < gout.size(); ++i)
      ga.at(i) += gout.at(i) * y.at(i) * (1.0f - y.at(i));
  };
  return id;
}

VarId Graph::Tanh(VarId a) {
  Tensor out = val(a);
  for (int64_t i = 0; i < out.size(); ++i) out.at(i) = std::tanh(out.at(i));
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, a](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    const Tensor& y = g.val(id);
    Tensor& ga = g.GradRef(a);
    for (int64_t i = 0; i < gout.size(); ++i)
      ga.at(i) += gout.at(i) * (1.0f - y.at(i) * y.at(i));
  };
  return id;
}

VarId Graph::Silu(VarId a) {
  Tensor out = val(a);
  for (int64_t i = 0; i < out.size(); ++i) {
    float x = out.at(i);
    out.at(i) = x / (1.0f + std::exp(-x));
  }
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, a](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    const Tensor& va = g.val(a);
    Tensor& ga = g.GradRef(a);
    for (int64_t i = 0; i < gout.size(); ++i) {
      float x = va.at(i);
      float s = 1.0f / (1.0f + std::exp(-x));
      ga.at(i) += gout.at(i) * (s + x * s * (1.0f - s));
    }
  };
  return id;
}

VarId Graph::Gelu(VarId a) {
  constexpr float kC = 0.7978845608f;  // sqrt(2/pi)
  Tensor out = val(a);
  for (int64_t i = 0; i < out.size(); ++i) {
    float x = out.at(i);
    out.at(i) = 0.5f * x * (1.0f + std::tanh(kC * (x + 0.044715f * x * x * x)));
  }
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, a](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    const Tensor& va = g.val(a);
    Tensor& ga = g.GradRef(a);
    for (int64_t i = 0; i < gout.size(); ++i) {
      float x = va.at(i);
      float u = kC * (x + 0.044715f * x * x * x);
      float t = std::tanh(u);
      float du = kC * (1.0f + 3.0f * 0.044715f * x * x);
      float d = 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
      ga.at(i) += gout.at(i) * d;
    }
  };
  return id;
}

VarId Graph::Exp(VarId a) {
  Tensor out = val(a);
  for (int64_t i = 0; i < out.size(); ++i) out.at(i) = std::exp(out.at(i));
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, a](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    const Tensor& y = g.val(id);
    Tensor& ga = g.GradRef(a);
    for (int64_t i = 0; i < gout.size(); ++i) ga.at(i) += gout.at(i) * y.at(i);
  };
  return id;
}

VarId Graph::Log(VarId a) {
  Tensor out = val(a);
  for (int64_t i = 0; i < out.size(); ++i) out.at(i) = std::log(out.at(i));
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, a](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    const Tensor& va = g.val(a);
    Tensor& ga = g.GradRef(a);
    for (int64_t i = 0; i < gout.size(); ++i) ga.at(i) += gout.at(i) / va.at(i);
  };
  return id;
}

VarId Graph::Square(VarId a) { return Mul(a, a); }

// ---------------------------------------------------------------------------
// Linear algebra
// ---------------------------------------------------------------------------

VarId Graph::MatMul(VarId a, VarId b) {
  const Tensor& va = val(a);
  const Tensor& vb = val(b);
  int64_t m = va.rows(), k = va.cols(), n = vb.cols();
  LCREC_CHECK_EQ(vb.rows(), k);
  static obs::KernelFlops kf("graph.matmul");
  kf.Add(2 * m * k * n, 4 * (m * k + k * n + m * n));
  Tensor out({m, n});
  MmAccum(va.data(), vb.data(), out.data(), m, k, n);
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, a, b, m, k, n](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    // dA += dC * B^T ; dB += A^T * dC
    static obs::KernelFlops bkf("graph.matmul_bwd");
    bkf.Add(4 * m * k * n, 8 * (m * k + k * n + m * n));
    MmNtAccum(gout.data(), g.val(b).data(), g.GradRef(a).data(), m, n, k);
    MmTnAccum(g.val(a).data(), gout.data(), g.GradRef(b).data(), m, k, n);
  };
  return id;
}

VarId Graph::MatMulNT(VarId a, VarId b) {
  const Tensor& va = val(a);
  const Tensor& vb = val(b);
  int64_t m = va.rows(), k = va.cols(), n = vb.rows();
  LCREC_CHECK_EQ(vb.cols(), k);
  static obs::KernelFlops kf("graph.matmul_nt");
  kf.Add(2 * m * k * n, 4 * (m * k + n * k + m * n));
  Tensor out({m, n});
  MmNtAccum(va.data(), vb.data(), out.data(), m, k, n);
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, a, b, m, k, n](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    // C = A * B^T: dA += dC * B ; dB += dC^T * A
    static obs::KernelFlops bkf("graph.matmul_nt_bwd");
    bkf.Add(4 * m * k * n, 8 * (m * k + n * k + m * n));
    MmAccum(gout.data(), g.val(b).data(), g.GradRef(a).data(), m, n, k);
    MmTnAccum(gout.data(), g.val(a).data(), g.GradRef(b).data(), m, n, k);
  };
  return id;
}

VarId Graph::Transpose(VarId a) {
  const Tensor& va = val(a);
  int64_t m = va.rows(), n = va.cols();
  Tensor out({n, m});
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) out.at(j * m + i) = va.at(i * n + j);
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, a, m, n](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    Tensor& ga = g.GradRef(a);
    for (int64_t i = 0; i < m; ++i)
      for (int64_t j = 0; j < n; ++j) ga.at(i * n + j) += gout.at(j * m + i);
  };
  return id;
}

// ---------------------------------------------------------------------------
// Shape ops
// ---------------------------------------------------------------------------

VarId Graph::Reshape(VarId a, std::vector<int64_t> shape) {
  Tensor out = val(a).Reshaped(std::move(shape));
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, a](Graph& g) {
    g.GradRef(a).Axpy(1.0f, g.nodes_[id].grad.Reshaped(g.val(a).shape()));
  };
  return id;
}

VarId Graph::SliceRows(VarId a, int64_t r0, int64_t r1) {
  const Tensor& va = val(a);
  int64_t n = va.cols();
  LCREC_CHECK_GE(r0, 0);
  LCREC_CHECK_LE(r0, r1);
  LCREC_CHECK_LE(r1, va.rows());
  Tensor out({r1 - r0, n});
  std::memcpy(out.data(), va.data() + r0 * n,
              sizeof(float) * static_cast<size_t>((r1 - r0) * n));
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, a, r0, r1, n](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    Tensor& ga = g.GradRef(a);
    for (int64_t i = 0; i < r1 - r0; ++i)
      for (int64_t j = 0; j < n; ++j)
        ga.at((r0 + i) * n + j) += gout.at(i * n + j);
  };
  return id;
}

VarId Graph::SliceCols(VarId a, int64_t c0, int64_t c1) {
  const Tensor& va = val(a);
  int64_t m = va.rows(), n = va.cols();
  LCREC_CHECK_GE(c0, 0);
  LCREC_CHECK_LE(c0, c1);
  LCREC_CHECK_LE(c1, n);
  Tensor out({m, c1 - c0});
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = c0; j < c1; ++j)
      out.at(i * (c1 - c0) + (j - c0)) = va.at(i * n + j);
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, a, c0, c1, m, n](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    Tensor& ga = g.GradRef(a);
    for (int64_t i = 0; i < m; ++i)
      for (int64_t j = c0; j < c1; ++j)
        ga.at(i * n + j) += gout.at(i * (c1 - c0) + (j - c0));
  };
  return id;
}

VarId Graph::ConcatRows(const std::vector<VarId>& parts) {
  LCREC_CHECK(!parts.empty());
  int64_t n = val(parts[0]).cols();
  int64_t m = 0;
  for (VarId p : parts) {
    LCREC_CHECK_EQ(val(p).cols(), n);
    m += val(p).rows();
  }
  Tensor out({m, n});
  int64_t r = 0;
  for (VarId p : parts) {
    const Tensor& vp = val(p);
    std::memcpy(out.data() + r * n, vp.data(),
                sizeof(float) * static_cast<size_t>(vp.size()));
    r += vp.rows();
  }
  VarId id = AddNode(std::move(out), {});
  std::vector<VarId> ps = parts;
  nodes_[id].backfn = [id, ps, n](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    int64_t r = 0;
    for (VarId p : ps) {
      Tensor& gp = g.GradRef(p);
      int64_t rows = g.val(p).rows();
      for (int64_t i = 0; i < rows * n; ++i) gp.at(i) += gout.at(r * n + i);
      r += rows;
    }
  };
  return id;
}

VarId Graph::ConcatCols(const std::vector<VarId>& parts) {
  LCREC_CHECK(!parts.empty());
  int64_t m = val(parts[0]).rows();
  int64_t n = 0;
  for (VarId p : parts) {
    LCREC_CHECK_EQ(val(p).rows(), m);
    n += val(p).cols();
  }
  Tensor out({m, n});
  int64_t c = 0;
  for (VarId p : parts) {
    const Tensor& vp = val(p);
    int64_t pc = vp.cols();
    for (int64_t i = 0; i < m; ++i)
      for (int64_t j = 0; j < pc; ++j) out.at(i * n + c + j) = vp.at(i * pc + j);
    c += pc;
  }
  VarId id = AddNode(std::move(out), {});
  std::vector<VarId> ps = parts;
  nodes_[id].backfn = [id, ps, m, n](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    int64_t c = 0;
    for (VarId p : ps) {
      Tensor& gp = g.GradRef(p);
      int64_t pc = g.val(p).cols();
      for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < pc; ++j)
          gp.at(i * pc + j) += gout.at(i * n + c + j);
      c += pc;
    }
  };
  return id;
}

VarId Graph::Rows(VarId table, const std::vector<int>& ids) {
  const Tensor& vt = val(table);
  int64_t n = vt.cols();
  Tensor out({static_cast<int64_t>(ids.size()), n});
  for (size_t i = 0; i < ids.size(); ++i) {
    LCREC_CHECK_GE(ids[i], 0);
    LCREC_CHECK_LT(ids[i], vt.rows());
    std::memcpy(out.data() + static_cast<int64_t>(i) * n,
                vt.data() + static_cast<int64_t>(ids[i]) * n,
                sizeof(float) * static_cast<size_t>(n));
  }
  VarId id = AddNode(std::move(out), {});
  std::vector<int> ids_copy = ids;
  nodes_[id].backfn = [id, table, ids_copy, n](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    Tensor& gt = g.GradRef(table);
    for (size_t i = 0; i < ids_copy.size(); ++i)
      for (int64_t j = 0; j < n; ++j)
        gt.at(static_cast<int64_t>(ids_copy[i]) * n + j) +=
            gout.at(static_cast<int64_t>(i) * n + j);
  };
  return id;
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

VarId Graph::Sum(VarId a) {
  float s = 0.0f;
  for (int64_t i = 0; i < val(a).size(); ++i) s += val(a).at(i);
  VarId id = AddNode(Tensor::Scalar(s), {});
  nodes_[id].backfn = [id, a](Graph& g) {
    float go = g.nodes_[id].grad.item();
    Tensor& ga = g.GradRef(a);
    for (int64_t i = 0; i < ga.size(); ++i) ga.at(i) += go;
  };
  return id;
}

VarId Graph::Mean(VarId a) {
  int64_t sz = val(a).size();
  return Scale(Sum(a), 1.0f / static_cast<float>(sz));
}

VarId Graph::MeanOverRows(VarId a) {
  int64_t m = val(a).rows();
  return Scale(SumOverRows(a), 1.0f / static_cast<float>(m));
}

VarId Graph::SumOverRows(VarId a) {
  const Tensor& va = val(a);
  int64_t m = va.rows(), n = va.cols();
  Tensor out({n});
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) out.at(j) += va.at(i * n + j);
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, a, m, n](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    Tensor& ga = g.GradRef(a);
    for (int64_t i = 0; i < m; ++i)
      for (int64_t j = 0; j < n; ++j) ga.at(i * n + j) += gout.at(j);
  };
  return id;
}

VarId Graph::MaxOverRows(VarId a) {
  const Tensor& va = val(a);
  int64_t m = va.rows(), n = va.cols();
  LCREC_CHECK_GT(m, 0);
  Tensor out({n});
  std::vector<int64_t> argmax(n, 0);
  for (int64_t j = 0; j < n; ++j) {
    float best = va.at(j);
    for (int64_t i = 1; i < m; ++i) {
      if (va.at(i * n + j) > best) {
        best = va.at(i * n + j);
        argmax[j] = i;
      }
    }
    out.at(j) = best;
  }
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, a, argmax, n](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    Tensor& ga = g.GradRef(a);
    for (int64_t j = 0; j < n; ++j) ga.at(argmax[j] * n + j) += gout.at(j);
  };
  return id;
}

VarId Graph::RowSums(VarId a) {
  const Tensor& va = val(a);
  int64_t m = va.rows(), n = va.cols();
  Tensor out({m});
  for (int64_t i = 0; i < m; ++i) {
    float s = 0.0f;
    for (int64_t j = 0; j < n; ++j) s += va.at(i * n + j);
    out.at(i) = s;
  }
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, a, m, n](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    Tensor& ga = g.GradRef(a);
    for (int64_t i = 0; i < m; ++i)
      for (int64_t j = 0; j < n; ++j) ga.at(i * n + j) += gout.at(i);
  };
  return id;
}

// ---------------------------------------------------------------------------
// Normalization
// ---------------------------------------------------------------------------

VarId Graph::LayerNorm(VarId x, VarId gamma, VarId beta, float eps) {
  const Tensor& vx = val(x);
  int64_t m = vx.rows(), n = vx.cols();
  LCREC_CHECK_EQ(val(gamma).size(), n);
  LCREC_CHECK_EQ(val(beta).size(), n);
  Tensor out({m, n});
  std::vector<float> inv_std(m), mean(m);
  for (int64_t i = 0; i < m; ++i) {
    float mu = 0.0f;
    for (int64_t j = 0; j < n; ++j) mu += vx.at(i * n + j);
    mu /= static_cast<float>(n);
    float var = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      float d = vx.at(i * n + j) - mu;
      var += d * d;
    }
    var /= static_cast<float>(n);
    float is = 1.0f / std::sqrt(var + eps);
    mean[i] = mu;
    inv_std[i] = is;
    for (int64_t j = 0; j < n; ++j) {
      float xhat = (vx.at(i * n + j) - mu) * is;
      out.at(i * n + j) = xhat * val(gamma).at(j) + val(beta).at(j);
    }
  }
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, x, gamma, beta, eps, m, n, mean,
                       inv_std](Graph& g) {
    (void)eps;
    const Tensor& gout = g.nodes_[id].grad;
    const Tensor& vx = g.val(x);
    const Tensor& vg = g.val(gamma);
    Tensor& gx = g.GradRef(x);
    Tensor& gg = g.GradRef(gamma);
    Tensor& gb = g.GradRef(beta);
    for (int64_t i = 0; i < m; ++i) {
      float is = inv_std[i], mu = mean[i];
      // dxhat_j = gout_j * gamma_j
      float sum_dxhat = 0.0f, sum_dxhat_xhat = 0.0f;
      for (int64_t j = 0; j < n; ++j) {
        float xhat = (vx.at(i * n + j) - mu) * is;
        float dxhat = gout.at(i * n + j) * vg.at(j);
        sum_dxhat += dxhat;
        sum_dxhat_xhat += dxhat * xhat;
        gg.at(j) += gout.at(i * n + j) * xhat;
        gb.at(j) += gout.at(i * n + j);
      }
      for (int64_t j = 0; j < n; ++j) {
        float xhat = (vx.at(i * n + j) - mu) * is;
        float dxhat = gout.at(i * n + j) * vg.at(j);
        gx.at(i * n + j) += is * (dxhat - sum_dxhat / static_cast<float>(n) -
                                  xhat * sum_dxhat_xhat / static_cast<float>(n));
      }
    }
  };
  return id;
}

VarId Graph::RmsNorm(VarId x, VarId gamma, float eps) {
  const Tensor& vx = val(x);
  int64_t m = vx.rows(), n = vx.cols();
  LCREC_CHECK_EQ(val(gamma).size(), n);
  Tensor out({m, n});
  std::vector<float> inv_rms(m);
  for (int64_t i = 0; i < m; ++i) {
    float ss = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      float v = vx.at(i * n + j);
      ss += v * v;
    }
    float ir = 1.0f / std::sqrt(ss / static_cast<float>(n) + eps);
    inv_rms[i] = ir;
    for (int64_t j = 0; j < n; ++j)
      out.at(i * n + j) = vx.at(i * n + j) * ir * val(gamma).at(j);
  }
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, x, gamma, m, n, inv_rms](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    const Tensor& vx = g.val(x);
    const Tensor& vg = g.val(gamma);
    Tensor& gx = g.GradRef(x);
    Tensor& gg = g.GradRef(gamma);
    for (int64_t i = 0; i < m; ++i) {
      float ir = inv_rms[i];
      float dot = 0.0f;  // sum_j gout_j * gamma_j * x_j
      for (int64_t j = 0; j < n; ++j) {
        dot += gout.at(i * n + j) * vg.at(j) * vx.at(i * n + j);
        gg.at(j) += gout.at(i * n + j) * vx.at(i * n + j) * ir;
      }
      for (int64_t j = 0; j < n; ++j) {
        gx.at(i * n + j) +=
            ir * (gout.at(i * n + j) * vg.at(j) -
                  vx.at(i * n + j) * ir * ir * dot / static_cast<float>(n));
      }
    }
  };
  return id;
}

VarId Graph::NormalizeRows(VarId x, float eps) {
  const Tensor& vx = val(x);
  int64_t m = vx.rows(), n = vx.cols();
  Tensor out({m, n});
  std::vector<float> inv_norm(m);
  for (int64_t i = 0; i < m; ++i) {
    float ss = 0.0f;
    for (int64_t j = 0; j < n; ++j) ss += vx.at(i * n + j) * vx.at(i * n + j);
    float in = 1.0f / (std::sqrt(ss) + eps);
    inv_norm[i] = in;
    for (int64_t j = 0; j < n; ++j) out.at(i * n + j) = vx.at(i * n + j) * in;
  }
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, x, m, n, inv_norm](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    const Tensor& y = g.val(id);
    Tensor& gx = g.GradRef(x);
    for (int64_t i = 0; i < m; ++i) {
      float in = inv_norm[i];
      float dot = 0.0f;
      for (int64_t j = 0; j < n; ++j) dot += gout.at(i * n + j) * y.at(i * n + j);
      for (int64_t j = 0; j < n; ++j)
        gx.at(i * n + j) += in * (gout.at(i * n + j) - y.at(i * n + j) * dot);
    }
  };
  return id;
}

VarId Graph::Dropout(VarId x, float p, Rng& rng, bool train) {
  if (!train || p <= 0.0f) return x;
  const Tensor& vx = val(x);
  Tensor out = vx;
  std::vector<float> mask(static_cast<size_t>(vx.size()));
  float scale = 1.0f / (1.0f - p);
  for (int64_t i = 0; i < vx.size(); ++i) {
    mask[i] = rng.Bernoulli(p) ? 0.0f : scale;
    out.at(i) *= mask[i];
  }
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, x, mask](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    Tensor& gx = g.GradRef(x);
    for (int64_t i = 0; i < gout.size(); ++i)
      gx.at(i) += gout.at(i) * mask[i];
  };
  return id;
}

// ---------------------------------------------------------------------------
// Softmax family
// ---------------------------------------------------------------------------

VarId Graph::Softmax(VarId a) {
  int64_t m = val(a).rows(), n = val(a).cols();
  std::vector<int> full(m, static_cast<int>(n));
  return MaskedSoftmax(a, std::move(full));
}

VarId Graph::CausalSoftmax(VarId a) {
  int64_t m = val(a).rows();
  LCREC_CHECK_GE(val(a).cols(), m);
  // Row i attends to columns [0, offset + i] where offset handles the case
  // of incremental decoding (cols > rows).
  int64_t offset = val(a).cols() - m;
  std::vector<int> lens(m);
  for (int64_t i = 0; i < m; ++i) lens[i] = static_cast<int>(offset + i + 1);
  return MaskedSoftmax(a, std::move(lens));
}

VarId Graph::MaskedSoftmax(VarId a, std::vector<int> valid_len) {
  const Tensor& va = val(a);
  int64_t m = va.rows(), n = va.cols();
  LCREC_CHECK_EQ(static_cast<int64_t>(valid_len.size()), m);
  // ~5 flops per valid element: max scan, exp, subtract, sum, divide.
  static obs::KernelFlops kf("graph.softmax");
  int64_t valid = 0;
  for (int v : valid_len) valid += v;
  kf.Add(5 * valid, 8 * valid);
  Tensor out({m, n});
  for (int64_t i = 0; i < m; ++i) {
    int len = valid_len[i];
    LCREC_CHECK_GE(len, 1);
    LCREC_CHECK_LE(len, n);
    float mx = va.at(i * n);
    for (int j = 1; j < len; ++j) mx = std::max(mx, va.at(i * n + j));
    float z = 0.0f;
    for (int j = 0; j < len; ++j) {
      float e = std::exp(va.at(i * n + j) - mx);
      out.at(i * n + j) = e;
      z += e;
    }
    for (int j = 0; j < len; ++j) out.at(i * n + j) /= z;
    for (int64_t j = len; j < n; ++j) out.at(i * n + j) = 0.0f;
  }
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, a, valid_len, m, n](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    const Tensor& y = g.val(id);
    Tensor& ga = g.GradRef(a);
    for (int64_t i = 0; i < m; ++i) {
      int len = valid_len[i];
      float dot = 0.0f;
      for (int j = 0; j < len; ++j) dot += gout.at(i * n + j) * y.at(i * n + j);
      for (int j = 0; j < len; ++j)
        ga.at(i * n + j) += y.at(i * n + j) * (gout.at(i * n + j) - dot);
    }
  };
  return id;
}

VarId Graph::SoftmaxCrossEntropy(VarId logits, std::vector<int> targets) {
  const Tensor& vl = val(logits);
  int64_t m = vl.rows(), n = vl.cols();
  LCREC_CHECK_EQ(static_cast<int64_t>(targets.size()), m);
  static obs::KernelFlops kf("graph.softmax_xent");
  kf.Add(5 * m * n, 8 * m * n);
  Tensor probs({m, n});
  double loss = 0.0;
  int64_t count = 0;
  for (int64_t i = 0; i < m; ++i) {
    float mx = vl.at(i * n);
    for (int64_t j = 1; j < n; ++j) mx = std::max(mx, vl.at(i * n + j));
    float z = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      float e = std::exp(vl.at(i * n + j) - mx);
      probs.at(i * n + j) = e;
      z += e;
    }
    for (int64_t j = 0; j < n; ++j) probs.at(i * n + j) /= z;
    int t = targets[i];
    if (t == kIgnore) continue;
    LCREC_CHECK_GE(t, 0);
    LCREC_CHECK_LT(t, n);
    loss -= std::log(std::max(1e-12f, probs.at(i * n + t)));
    ++count;
  }
  if (count == 0) count = 1;
  VarId id =
      AddNode(Tensor::Scalar(static_cast<float>(loss / count)), {});
  nodes_[id].backfn = [id, logits, targets, probs, m, n, count](Graph& g) {
    float go = g.nodes_[id].grad.item() / static_cast<float>(count);
    Tensor& gl = g.GradRef(logits);
    for (int64_t i = 0; i < m; ++i) {
      int t = targets[i];
      if (t == kIgnore) continue;
      for (int64_t j = 0; j < n; ++j)
        gl.at(i * n + j) += go * (probs.at(i * n + j) - (j == t ? 1.0f : 0.0f));
    }
  };
  return id;
}

VarId Graph::SigmoidBCE(VarId logits, Tensor targets) {
  const Tensor& vl = val(logits);
  LCREC_CHECK_SHAPE(vl, targets);
  int64_t sz = vl.size();
  double loss = 0.0;
  Tensor sig(vl.shape());
  for (int64_t i = 0; i < sz; ++i) {
    float x = vl.at(i);
    float s = 1.0f / (1.0f + std::exp(-x));
    sig.at(i) = s;
    float t = targets.at(i);
    // Numerically stable: log(1+exp(-|x|)) + max(x,0) - t*x
    loss += std::log1p(std::exp(-std::abs(x))) + std::max(x, 0.0f) - t * x;
  }
  VarId id = AddNode(Tensor::Scalar(static_cast<float>(loss / sz)), {});
  nodes_[id].backfn = [id, logits, targets, sig, sz](Graph& g) {
    float go = g.nodes_[id].grad.item() / static_cast<float>(sz);
    Tensor& gl = g.GradRef(logits);
    for (int64_t i = 0; i < sz; ++i)
      gl.at(i) += go * (sig.at(i) - targets.at(i));
  };
  return id;
}

VarId Graph::MseLoss(VarId pred, Tensor target) {
  const Tensor& vp = val(pred);
  LCREC_CHECK_SHAPE(vp, target);
  int64_t sz = vp.size();
  double loss = 0.0;
  for (int64_t i = 0; i < sz; ++i) {
    float d = vp.at(i) - target.at(i);
    loss += d * d;
  }
  VarId id = AddNode(Tensor::Scalar(static_cast<float>(loss / sz)), {});
  nodes_[id].backfn = [id, pred, target, sz](Graph& g) {
    float go = g.nodes_[id].grad.item() * 2.0f / static_cast<float>(sz);
    const Tensor& vp = g.val(pred);
    Tensor& gp = g.GradRef(pred);
    for (int64_t i = 0; i < sz; ++i)
      gp.at(i) += go * (vp.at(i) - target.at(i));
  };
  return id;
}

VarId Graph::MseLossVar(VarId pred, VarId target) {
  VarId diff = Sub(pred, target);
  return Mean(Mul(diff, diff));
}

// ---------------------------------------------------------------------------
// Special ops
// ---------------------------------------------------------------------------

VarId Graph::StopGradient(VarId a) {
  return AddNode(val(a), {});  // value copy, no backward
}

VarId Graph::DftFilter(VarId x, VarId w_re, VarId w_im) {
  const Tensor& vx = val(x);
  int64_t L = vx.rows(), d = vx.cols();
  LCREC_CHECK_EQ(val(w_re).rows(), L);
  LCREC_CHECK_EQ(val(w_re).cols(), d);
  LCREC_CHECK_EQ(val(w_im).rows(), L);
  LCREC_CHECK_EQ(val(w_im).cols(), d);

  // Precompute DFT cos/sin tables: C[k][t] = cos(2*pi*k*t/L).
  std::vector<float> ct(static_cast<size_t>(L * L)),
      st(static_cast<size_t>(L * L));
  const double two_pi = 6.283185307179586;
  for (int64_t k = 0; k < L; ++k) {
    for (int64_t t = 0; t < L; ++t) {
      double ang = two_pi * static_cast<double>(k * t) / static_cast<double>(L);
      ct[k * L + t] = static_cast<float>(std::cos(ang));
      st[k * L + t] = static_cast<float>(std::sin(ang));
    }
  }
  // Forward DFT along rows (sequence axis), per column.
  auto dft = [&](const Tensor& in, Tensor& out_re, Tensor& out_im) {
    for (int64_t k = 0; k < L; ++k) {
      for (int64_t j = 0; j < d; ++j) {
        float re = 0.0f, im = 0.0f;
        for (int64_t t = 0; t < L; ++t) {
          float v = in.at(t * d + j);
          re += ct[k * L + t] * v;
          im -= st[k * L + t] * v;
        }
        out_re.at(k * d + j) = re;
        out_im.at(k * d + j) = im;
      }
    }
  };
  Tensor xre({L, d}), xim({L, d});
  dft(vx, xre, xim);
  // Y = W .* X (complex)
  const Tensor& wre = val(w_re);
  const Tensor& wim = val(w_im);
  Tensor yre({L, d}), yim({L, d});
  for (int64_t i = 0; i < L * d; ++i) {
    yre.at(i) = wre.at(i) * xre.at(i) - wim.at(i) * xim.at(i);
    yim.at(i) = wre.at(i) * xim.at(i) + wim.at(i) * xre.at(i);
  }
  // y = Re(IDFT(Y)) = (1/L) sum_k [cos * Yre - sin * Yim]
  Tensor out({L, d});
  float inv_l = 1.0f / static_cast<float>(L);
  for (int64_t t = 0; t < L; ++t) {
    for (int64_t j = 0; j < d; ++j) {
      float s = 0.0f;
      for (int64_t k = 0; k < L; ++k) {
        s += ct[k * L + t] * yre.at(k * d + j) - st[k * L + t] * yim.at(k * d + j);
      }
      out.at(t * d + j) = s * inv_l;
    }
  }
  VarId id = AddNode(std::move(out), {});
  nodes_[id].backfn = [id, x, w_re, w_im, L, d, ct, st, xre, xim](Graph& g) {
    const Tensor& gout = g.nodes_[id].grad;
    float inv_l = 1.0f / static_cast<float>(L);
    // Adjoint of y = (1/L)(Dre Yre - Dim Yim), Dre[t][k]=cos, Dim[t][k]=sin:
    // dYre[k] = (1/L) sum_t cos(kt) * dy[t]; dYim[k] = -(1/L) sum_t sin(kt)*dy[t]
    Tensor dyre({L, d}), dyim({L, d});
    for (int64_t k = 0; k < L; ++k) {
      for (int64_t j = 0; j < d; ++j) {
        float re = 0.0f, im = 0.0f;
        for (int64_t t = 0; t < L; ++t) {
          re += ct[k * L + t] * gout.at(t * d + j);
          im -= st[k * L + t] * gout.at(t * d + j);
        }
        dyre.at(k * d + j) = re * inv_l;
        dyim.at(k * d + j) = im * inv_l;
      }
    }
    // Adjoint of complex multiply Y = W .* X:
    const Tensor& wre = g.val(w_re);
    const Tensor& wim = g.val(w_im);
    Tensor& gwre = g.GradRef(w_re);
    Tensor& gwim = g.GradRef(w_im);
    Tensor dxre({L, d}), dxim({L, d});
    for (int64_t i = 0; i < L * d; ++i) {
      gwre.at(i) += dyre.at(i) * xre.at(i) + dyim.at(i) * xim.at(i);
      gwim.at(i) += -dyre.at(i) * xim.at(i) + dyim.at(i) * xre.at(i);
      dxre.at(i) = dyre.at(i) * wre.at(i) + dyim.at(i) * wim.at(i);
      dxim.at(i) = -dyre.at(i) * wim.at(i) + dyim.at(i) * wre.at(i);
    }
    // Adjoint of forward DFT Xre = Cre x, Xim = Cim x with
    // Cre[k][t]=cos(kt), Cim[k][t]=-sin(kt):
    Tensor& gx = g.GradRef(x);
    for (int64_t t = 0; t < L; ++t) {
      for (int64_t j = 0; j < d; ++j) {
        float s = 0.0f;
        for (int64_t k = 0; k < L; ++k) {
          s += ct[k * L + t] * dxre.at(k * d + j) -
               st[k * L + t] * dxim.at(k * d + j);
        }
        gx.at(t * d + j) += s;
      }
    }
  };
  return id;
}

}  // namespace lcrec::core

#ifndef LCREC_CORE_RNG_H_
#define LCREC_CORE_RNG_H_

#include <cstdint>
#include <iosfwd>
#include <random>
#include <vector>

#include "core/check.h"
#include "core/tensor.h"

namespace lcrec::core {

/// Deterministic random number generator used across the whole project.
/// Every dataset, model init and training loop takes an explicit Rng (or
/// seed) so that all experiments are exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : gen_(seed) {}

  /// Uniform in [0, 1).
  double Uniform() { return unit_(gen_); }

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Standard normal.
  double Gaussian() { return normal_(gen_); }
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Uniform integer in [0, n). Requires n > 0. Rejection sampling: raw
  /// draws below 2^64 mod n are rejected so every residue class keeps an
  /// equal share of the remaining 2^64 - (2^64 mod n) values (a plain
  /// `gen_() % n` over-weights small values once n stops dividing 2^64).
  int64_t Below(int64_t n) {
    LCREC_DCHECK_GT(n, 0);
    uint64_t un = static_cast<uint64_t>(n);
    // (-un) % un == 2^64 mod un in two's complement.
    uint64_t reject_below = (0 - un) % un;
    uint64_t x = gen_();
    while (x < reject_below) x = gen_();
    return static_cast<int64_t>(x % un);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Between(int64_t lo, int64_t hi) { return lo + Below(hi - lo + 1); }

  bool Bernoulli(double p) { return Uniform() < p; }

  /// Samples an index from an (unnormalized, non-negative) weight vector.
  int64_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (int64_t i = static_cast<int64_t>(v.size()) - 1; i > 0; --i) {
      std::swap(v[i], v[Below(i + 1)]);
    }
  }

  /// Samples k distinct indices from [0, n). Requires k <= n.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  /// Tensor filled with N(0, stddev^2).
  Tensor GaussianTensor(std::vector<int64_t> shape, double stddev);

  /// Tensor filled with U(-a, a).
  Tensor UniformTensor(std::vector<int64_t> shape, double a);

  /// Serializes the full generator state — the mt19937_64 stream plus the
  /// distribution state (including the normal distribution's cached spare
  /// deviate) — as text, so a restored Rng continues the exact sequence.
  void Save(std::ostream& os) const;

  /// Restores state written by Save. Returns false (state unchanged) on a
  /// parse failure.
  bool Restore(std::istream& is);

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace lcrec::core

#endif  // LCREC_CORE_RNG_H_

#ifndef LCREC_CORE_OPTIM_H_
#define LCREC_CORE_OPTIM_H_

#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "core/graph.h"
#include "core/tensor.h"

namespace lcrec::core {

/// Cosine learning-rate schedule with linear warmup, as used for the
/// LC-Rec fine-tuning runs (Section IV-A4).
class CosineSchedule {
 public:
  CosineSchedule(float peak_lr, int64_t warmup_steps, int64_t total_steps,
                 float min_lr = 0.0f);

  float LrAt(int64_t step) const;

 private:
  float peak_lr_;
  int64_t warmup_steps_;
  int64_t total_steps_;
  float min_lr_;
};

/// Abstract optimizer over a fixed set of parameters.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently stored in the
  /// parameters, then the caller is expected to ZeroGrad().
  virtual void Step(float lr) = 0;

  /// Clips the global gradient norm to `max_norm`; returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

  /// Serializes the optimizer's internal state (moments, velocities, step
  /// count) so a resumed run takes bit-identical steps. The parameter
  /// values themselves are NOT included — checkpoint those separately via
  /// core/serialize. The base optimizer is stateless.
  virtual void SaveState(std::ostream& os) const;

  /// Restores state written by SaveState. Returns false (state unchanged)
  /// when the blob is truncated or sized for a different parameter set.
  virtual bool LoadState(std::istream& is);

 protected:
  std::vector<Parameter*> params_;
};

/// Plain SGD (optionally with momentum).
class Sgd : public Optimizer {
 public:
  explicit Sgd(std::vector<Parameter*> params, float momentum = 0.0f);
  void Step(float lr) override;
  void SaveState(std::ostream& os) const override;
  bool LoadState(std::istream& is) override;

 private:
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// AdamW: Adam with decoupled weight decay, the optimizer used for both
/// the RQ-VAE (lr 1e-3) and the LLM fine-tuning (lr 5e-5, wd 0.01).
class AdamW : public Optimizer {
 public:
  AdamW(std::vector<Parameter*> params, float beta1 = 0.9f,
        float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void Step(float lr) override;
  void SaveState(std::ostream& os) const override;
  bool LoadState(std::istream& is) override;

  int64_t step_count() const { return t_; }

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace lcrec::core

#endif  // LCREC_CORE_OPTIM_H_

#include "core/rng.h"

#include <istream>
#include <numeric>
#include <ostream>

#include "core/check.h"

namespace lcrec::core {

int64_t Rng::Categorical(const std::vector<double>& weights) {
  LCREC_CHECK(!weights.empty());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  LCREC_CHECK_GT(total, 0.0);
  double u = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  LCREC_CHECK_LE(k, n);
  std::vector<int64_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  // Partial Fisher-Yates: only the first k positions need shuffling.
  for (int64_t i = 0; i < k; ++i) {
    std::swap(idx[i], idx[i + Below(n - i)]);
  }
  idx.resize(k);
  return idx;
}

Tensor Rng::GaussianTensor(std::vector<int64_t> shape, double stddev) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t.at(i) = static_cast<float>(Gaussian(0.0, stddev));
  }
  return t;
}

Tensor Rng::UniformTensor(std::vector<int64_t> shape, double a) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t.at(i) = static_cast<float>(Uniform(-a, a));
  }
  return t;
}

void Rng::Save(std::ostream& os) const {
  // The standard guarantees operator<< / operator>> round-trip engine and
  // distribution state, including normal_distribution's saved deviate.
  os << gen_ << ' ' << unit_ << ' ' << normal_;
}

bool Rng::Restore(std::istream& is) {
  std::mt19937_64 gen;
  std::uniform_real_distribution<double> unit;
  std::normal_distribution<double> normal;
  if (!(is >> gen >> unit >> normal)) return false;
  gen_ = gen;
  unit_ = unit;
  normal_ = normal;
  return true;
}

}  // namespace lcrec::core

#ifndef LCREC_CORE_SERIALIZE_H_
#define LCREC_CORE_SERIALIZE_H_

#include <string>

#include "core/graph.h"

namespace lcrec::core {

/// Saves every parameter (name, shape, data) to a binary checkpoint file.
/// Returns false on I/O failure.
bool SaveParams(ParamStore& store, const std::string& path);

/// Loads a checkpoint produced by SaveParams. Parameters are matched by
/// name; shapes must agree. Returns false on I/O failure, unknown
/// parameter, or shape mismatch.
bool LoadParams(ParamStore& store, const std::string& path);

}  // namespace lcrec::core

#endif  // LCREC_CORE_SERIALIZE_H_

#ifndef LCREC_CORE_SERIALIZE_H_
#define LCREC_CORE_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "core/graph.h"

namespace lcrec::core {

/// Writes every parameter (name, shape, data) in the LCRC binary format
/// to `os`. Returns false on stream failure.
bool SaveParamsToStream(ParamStore& store, std::ostream& os);

/// Reads an LCRC parameter blob from `is` into `store`. Parameters are
/// matched by name; shapes must agree. The load is two-phase: the whole
/// blob is parsed and validated into staging tensors first, and `store`
/// is only mutated after every parameter checked out — a truncated or
/// mismatched blob never leaves the store partially overwritten. Every
/// rejection reason (bad magic, short read, unknown parameter, shape
/// mismatch) is reported through obs::Log at warn level.
bool LoadParamsFromStream(ParamStore& store, std::istream& is);

/// Saves every parameter to a binary checkpoint file.
/// Returns false on I/O failure (reason logged via obs::Log).
bool SaveParams(ParamStore& store, const std::string& path);

/// Loads a checkpoint produced by SaveParams. Parameters are matched by
/// name; shapes must agree. Returns false on I/O failure, unknown
/// parameter, or shape mismatch; the reason is logged via obs::Log and
/// the store is left untouched on any failure.
bool LoadParams(ParamStore& store, const std::string& path);

}  // namespace lcrec::core

#endif  // LCREC_CORE_SERIALIZE_H_

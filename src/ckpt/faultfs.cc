#include "ckpt/faultfs.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/inject.h"
#include "obs/log.h"

namespace lcrec::ckpt {

namespace {

struct Injector {
  FaultSpec spec;
  std::atomic<int> writes{0};
  std::atomic<int> fsyncs{0};
  std::atomic<int> renames{0};
  obs::InjectRng rng{1};  // probabilistic-mode draw stream
  bool armed = false;
  bool env_checked = false;
};

Injector& G() {
  static Injector* g = new Injector;
  return *g;
}

void EnsureEnvParsed() {
  Injector& g = G();
  if (g.env_checked) return;
  g.env_checked = true;
  const char* env = std::getenv("LCREC_FAULT");
  if (env == nullptr || env[0] == '\0') return;
  FaultSpec spec;
  if (ParseFaultSpec(env, &spec)) {
    if (const char* seed = std::getenv("LCREC_FAULT_SEED")) {
      spec.seed = static_cast<uint64_t>(std::atoll(seed));
    }
    g.spec = spec;
    g.rng.Reset(spec.seed);
    g.armed = true;
    obs::Log(obs::LogLevel::kInfo, "[ckpt] fault injection armed: %s", env);
  } else {
    obs::Log(obs::LogLevel::kWarn, "[ckpt] malformed LCREC_FAULT spec "
             "\"%s\" ignored", env);
  }
}

/// Returns the armed mode when this call is the nth occurrence of `op`,
/// else kFail with `fire` false.
bool Fire(FaultSpec::Op op, FaultSpec::Mode* mode) {
  EnsureEnvParsed();
  Injector& g = G();
  if (!g.armed || g.spec.op != op) return false;
  std::atomic<int>* counter = nullptr;
  switch (op) {
    case FaultSpec::Op::kWrite: counter = &g.writes; break;
    case FaultSpec::Op::kFsync: counter = &g.fsyncs; break;
    case FaultSpec::Op::kRename: counter = &g.renames; break;
    case FaultSpec::Op::kNone: return false;
  }
  if (g.spec.rate > 0.0) {
    counter->fetch_add(1);
    if (!g.rng.Fire(g.spec.rate)) return false;
  } else {
    int n = counter->fetch_add(1) + 1;
    if (n != g.spec.nth) return false;
  }
  *mode = g.spec.mode;
  return true;
}

[[noreturn]] void CrashNow(const char* what) {
  // Simulated power loss: no cleanup, no stack unwinding.
  obs::Log(obs::LogLevel::kError, "[ckpt] injected crash at %s", what);
  std::abort();
}

}  // namespace

bool ParseFaultSpec(const std::string& text, FaultSpec* spec) {
  FaultSpec out;
  size_t c1 = text.find(':');
  if (c1 == std::string::npos) return false;
  std::string op = text.substr(0, c1);
  if (op == "write") {
    out.op = FaultSpec::Op::kWrite;
  } else if (op == "fsync") {
    out.op = FaultSpec::Op::kFsync;
  } else if (op == "rename") {
    out.op = FaultSpec::Op::kRename;
  } else {
    return false;
  }
  size_t c2 = text.find(':', c1 + 1);
  std::string nth = text.substr(c1 + 1, c2 == std::string::npos
                                            ? std::string::npos
                                            : c2 - c1 - 1);
  if (nth.empty()) return false;
  if (nth == "p") {
    // Probabilistic form: <op>:p:<rate>[:<mode>] — the rate takes the
    // count field's place and the tail shifts right by one.
    if (c2 == std::string::npos) return false;
    size_t c3 = text.find(':', c2 + 1);
    std::string rate = text.substr(c2 + 1, c3 == std::string::npos
                                               ? std::string::npos
                                               : c3 - c2 - 1);
    if (!obs::ParseInjectRate(rate, &out.rate)) return false;
    c2 = c3;  // the optional mode now starts after the rate
  } else {
    for (char c : nth) {
      if (c < '0' || c > '9') return false;
    }
    out.nth = std::atoi(nth.c_str());
    if (out.nth <= 0) return false;
  }
  if (c2 != std::string::npos) {
    std::string mode = text.substr(c2 + 1);
    if (mode == "fail") {
      out.mode = FaultSpec::Mode::kFail;
    } else if (mode == "short") {
      out.mode = FaultSpec::Mode::kShort;
    } else if (mode == "enospc") {
      out.mode = FaultSpec::Mode::kEnospc;
    } else if (mode == "crash") {
      out.mode = FaultSpec::Mode::kCrash;
    } else {
      return false;
    }
  }
  *spec = out;
  return true;
}

void ArmFaults(const FaultSpec& spec) {
  Injector& g = G();
  g.spec = spec;
  g.armed = spec.op != FaultSpec::Op::kNone;
  g.env_checked = true;  // explicit arm overrides the env
  g.rng.Reset(spec.seed);
  g.writes.store(0);
  g.fsyncs.store(0);
  g.renames.store(0);
}

void ArmFaultsFromEnv() {
  Injector& g = G();
  g.armed = false;
  g.env_checked = false;
  g.writes.store(0);
  g.fsyncs.store(0);
  g.renames.store(0);
  EnsureEnvParsed();
}

void DisarmFaults() { ArmFaults(FaultSpec{}); }

FaultyFile::~FaultyFile() {
  if (fd_ >= 0) ::close(fd_);
}

bool FaultyFile::Open(const std::string& path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    error_ = "open " + path + ": " + std::strerror(errno);
    return false;
  }
  return true;
}

bool FaultyFile::Write(const void* data, size_t n) {
  if (fd_ < 0) {
    error_ = "write on closed file";
    return false;
  }
  FaultSpec::Mode mode;
  if (Fire(FaultSpec::Op::kWrite, &mode)) {
    switch (mode) {
      case FaultSpec::Mode::kFail:
        error_ = "write: injected EIO";
        return false;
      case FaultSpec::Mode::kShort:
        (void)!::write(fd_, data, n / 2);
        error_ = "write: injected torn write";
        return false;
      case FaultSpec::Mode::kEnospc:
        (void)!::write(fd_, data, n / 2);
        error_ = std::string("write: injected ") + std::strerror(ENOSPC);
        return false;
      case FaultSpec::Mode::kCrash:
        (void)!::write(fd_, data, n / 2);
        CrashNow("write");
    }
  }
  const char* p = static_cast<const char*>(data);
  size_t left = n;
  while (left > 0) {
    ssize_t w = ::write(fd_, p, left);
    if (w < 0) {
      if (errno == EINTR) continue;
      error_ = std::string("write: ") + std::strerror(errno);
      return false;
    }
    p += w;
    left -= static_cast<size_t>(w);
  }
  return true;
}

bool FaultyFile::Sync() {
  if (fd_ < 0) {
    error_ = "fsync on closed file";
    return false;
  }
  FaultSpec::Mode mode;
  if (Fire(FaultSpec::Op::kFsync, &mode)) {
    if (mode == FaultSpec::Mode::kCrash) CrashNow("fsync");
    error_ = "fsync: injected failure";
    return false;
  }
  if (::fsync(fd_) != 0) {
    error_ = std::string("fsync: ") + std::strerror(errno);
    return false;
  }
  return true;
}

bool FaultyFile::Close() {
  if (fd_ < 0) return true;
  int rc = ::close(fd_);
  fd_ = -1;
  if (rc != 0) {
    error_ = std::string("close: ") + std::strerror(errno);
    return false;
  }
  return true;
}

bool FaultyRename(const std::string& from, const std::string& to,
                  std::string* error) {
  FaultSpec::Mode mode;
  if (Fire(FaultSpec::Op::kRename, &mode)) {
    // Crash BEFORE the rename: the temp file is fully written but the
    // checkpoint was never published — the recovery-critical window.
    if (mode == FaultSpec::Mode::kCrash) CrashNow("rename");
    *error = "rename: injected failure";
    return false;
  }
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    *error = "rename " + from + " -> " + to + ": " + std::strerror(errno);
    return false;
  }
  return true;
}

bool SyncDir(const std::string& dir, std::string* error) {
  FaultSpec::Mode mode;
  if (Fire(FaultSpec::Op::kFsync, &mode)) {
    if (mode == FaultSpec::Mode::kCrash) CrashNow("dir fsync");
    *error = "dir fsync: injected failure";
    return false;
  }
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    *error = "open dir " + dir + ": " + std::strerror(errno);
    return false;
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    *error = "fsync dir " + dir + ": " + std::strerror(errno);
    return false;
  }
  return true;
}

}  // namespace lcrec::ckpt

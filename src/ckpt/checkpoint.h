#ifndef LCREC_CKPT_CHECKPOINT_H_
#define LCREC_CKPT_CHECKPOINT_H_

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace lcrec::ckpt {

/// Versioned, CRC32-checksummed checkpoint container (see DESIGN.md
/// "Fault tolerance & checkpointing"). A checkpoint is a step number plus
/// an ordered list of named binary sections; components (params,
/// optimizer, rng, trainer counters) each own one section. On disk:
///
///   u32 magic "LCKP"   u32 version   u64 step   u64 section_count
///   per section:  u64 name_len, name bytes, u64 payload_len, payload
///   u32 crc32 over every byte after the magic and before the crc
///
/// Files are published atomically: encode to memory, write to
/// `<name>.tmp`, fsync, rename onto `ckpt-<step>.lckp`, fsync the
/// directory. A reader therefore only ever observes complete files, and
/// the CRC rejects any torn or bit-flipped content that survives a crash.
class Checkpoint {
 public:
  int64_t step = 0;

  void Add(std::string name, std::string bytes) {
    sections_.emplace_back(std::move(name), std::move(bytes));
  }

  /// Payload of section `name`, or nullptr when absent.
  const std::string* Find(const std::string& name) const {
    for (const auto& [n, bytes] : sections_) {
      if (n == name) return &bytes;
    }
    return nullptr;
  }

  const std::vector<std::pair<std::string, std::string>>& sections() const {
    return sections_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `n` bytes.
uint32_t Crc32(const void* data, size_t n);

/// Serializes to the on-disk byte layout (header + sections + crc).
std::string EncodeCheckpoint(const Checkpoint& c);

/// Parses and validates an encoded checkpoint. Rejects (with *error set)
/// on bad magic, unknown version, CRC mismatch, or any truncated field —
/// without crashing, whatever the input bytes are.
bool DecodeCheckpoint(const std::string& bytes, Checkpoint* out,
                      std::string* error);

/// Canonical file name for a step: "ckpt-000000000042.lckp". Zero-padded
/// so lexicographic order equals step order.
std::string CheckpointFileName(int64_t step);

/// Atomic single-file write (temp + fsync + rename + dir fsync), subject
/// to fault injection (ckpt/faultfs.h). On failure the target is left
/// untouched; a stale temp file may remain and is ignored by readers.
bool WriteCheckpointFile(const std::string& path, const Checkpoint& c,
                         std::string* error);

/// Reads + validates one checkpoint file.
bool ReadCheckpointFile(const std::string& path, Checkpoint* out,
                        std::string* error);

/// All `ckpt-*.lckp` paths in `dir`, ascending by step.
std::vector<std::string> ListCheckpointFiles(const std::string& dir);

/// Writes `c` into `dir` (created if needed), removes stale temp files,
/// and prunes old checkpoints down to the newest `keep_last`. Updates the
/// lcrec.ckpt.* metrics.
bool SaveToDir(const std::string& dir, const Checkpoint& c, int keep_last,
               std::string* error);

/// Loads the newest checkpoint in `dir` that validates, skipping (and
/// logging) truncated or corrupt ones. Returns false when none is valid.
bool LoadLatestValid(const std::string& dir, Checkpoint* out,
                     std::string* loaded_path = nullptr);

/// POD helpers for building section payloads.
template <typename T>
void PutPod(std::ostream& os, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool GetPod(std::istream& is, T* v) {
  static_assert(std::is_trivially_copyable_v<T>);
  is.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(is);
}

}  // namespace lcrec::ckpt

#endif  // LCREC_CKPT_CHECKPOINT_H_

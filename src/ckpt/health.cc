#include "ckpt/health.h"

#include <cmath>
#include <utility>

#include "core/check.h"
#include "obs/flightrec.h"
#include "obs/log.h"
#include "obs/registry.h"

namespace lcrec::ckpt {

HealthGuard::HealthGuard(const HealthOptions& options, std::string subsystem)
    : options_(options), subsystem_(std::move(subsystem)) {}

bool HealthGuard::Healthy(double loss, double grad_norm) const {
  if (!std::isfinite(loss) || !std::isfinite(grad_norm)) return false;
  if (options_.grad_limit > 0.0f && grad_norm > options_.grad_limit) {
    return false;
  }
  return true;
}

bool HealthGuard::OnUnhealthy(double loss, double grad_norm,
                              bool can_rollback) {
  ++trips_;
  obs::MetricsRegistry::Global()
      .GetCounter("lcrec.ckpt.health_trips")
      .Increment();
  obs::Log(obs::LogLevel::kWarn,
           "[%s] numeric health trip %d/%d: loss %g grad_norm %g",
           subsystem_.c_str(), trips_, options_.max_retries,
           loss, grad_norm);
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();
  fr.Record(obs::FrKind::kHealthTrip, "health_trip", trips_,
            options_.max_retries);
  // A health trip is exactly the moment the recent-event record matters:
  // dump it while the process is still alive (the unrecoverable branch
  // below aborts through LCREC_CHECK, which dumps again — harmless).
  fr.DumpToStderr("numeric health trip");
  const bool numeric_health_recoverable =
      can_rollback && trips_ <= options_.max_retries;
  // Clean abort: no checkpoint to roll back to (or retries exhausted)
  // means every later step would train on poisoned state.
  LCREC_CHECK(numeric_health_recoverable);
  obs::MetricsRegistry::Global()
      .GetCounter("lcrec.ckpt.rollbacks")
      .Increment();
  return true;
}

}  // namespace lcrec::ckpt

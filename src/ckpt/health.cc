#include "ckpt/health.h"

#include <cmath>
#include <cstdio>
#include <utility>

#include "core/check.h"
#include "obs/debugz.h"
#include "obs/flightrec.h"
#include "obs/log.h"
#include "obs/registry.h"
#include "obs/sync.h"

namespace lcrec::ckpt {

namespace {

/// Process-wide trip record behind the "ckpt.health" healthz check: any
/// guard instance that trips marks the whole process unhealthy (a
/// trainer that had to roll back is exactly what an operator probing
/// /healthz wants surfaced), until ResetCkptHealthzForTest().
struct HealthzState {
  obs::Mutex mu{"ckpt.health", 40};
  int trips LCREC_GUARDED_BY(mu) = 0;
  int64_t last_step LCREC_GUARDED_BY(mu) = -1;
  std::string last_subsystem LCREC_GUARDED_BY(mu);

  static HealthzState& Get() {
    static HealthzState* state = [] {
      auto* s = new HealthzState();
      obs::RegisterHealthCheck("ckpt.health", [s](std::string* reason) {
        obs::MutexLock lock(s->mu);
        if (s->trips == 0) return true;
        char buf[160];
        if (s->last_step >= 0) {
          std::snprintf(buf, sizeof(buf),
                        "%d health trip(s), last in %s at step %lld",
                        s->trips, s->last_subsystem.c_str(),
                        static_cast<long long>(s->last_step));
        } else {
          std::snprintf(buf, sizeof(buf), "%d health trip(s), last in %s",
                        s->trips, s->last_subsystem.c_str());
        }
        *reason = buf;
        return false;
      });
      return s;
    }();
    return *state;
  }

  void RecordTrip(const std::string& subsystem, int64_t step) {
    obs::MutexLock lock(mu);
    ++trips;
    last_step = step;
    last_subsystem = subsystem;
  }
};

}  // namespace

void ResetCkptHealthzForTest() {
  HealthzState& s = HealthzState::Get();
  obs::MutexLock lock(s.mu);
  s.trips = 0;
  s.last_step = -1;
  s.last_subsystem.clear();
}

HealthGuard::HealthGuard(const HealthOptions& options, std::string subsystem)
    : options_(options), subsystem_(std::move(subsystem)) {
  // Materialize the healthz registration now, not at first trip: a probe
  // must see "ckpt.health: ok" while the guarded trainer is healthy.
  HealthzState::Get();
}

bool HealthGuard::Healthy(double loss, double grad_norm) const {
  if (!std::isfinite(loss) || !std::isfinite(grad_norm)) return false;
  if (options_.grad_limit > 0.0f && grad_norm > options_.grad_limit) {
    return false;
  }
  return true;
}

bool HealthGuard::OnUnhealthy(double loss, double grad_norm,
                              bool can_rollback) {
  ++trips_;
  HealthzState::Get().RecordTrip(subsystem_, step_);
  obs::MetricsRegistry::Global()
      .GetCounter("lcrec.ckpt.health_trips")
      .Increment();
  obs::Log(obs::LogLevel::kWarn,
           "[%s] numeric health trip %d/%d: loss %g grad_norm %g",
           subsystem_.c_str(), trips_, options_.max_retries,
           loss, grad_norm);
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();
  fr.Record(obs::FrKind::kHealthTrip, "health_trip", trips_,
            options_.max_retries);
  // A health trip is exactly the moment the recent-event record matters:
  // dump it while the process is still alive (the unrecoverable branch
  // below aborts through LCREC_CHECK, which dumps again — harmless).
  fr.DumpToStderr("numeric health trip");
  const bool numeric_health_recoverable =
      can_rollback && trips_ <= options_.max_retries;
  // Clean abort: no checkpoint to roll back to (or retries exhausted)
  // means every later step would train on poisoned state.
  LCREC_CHECK(numeric_health_recoverable);
  obs::MetricsRegistry::Global()
      .GetCounter("lcrec.ckpt.rollbacks")
      .Increment();
  return true;
}

}  // namespace lcrec::ckpt

#include "ckpt/checkpoint.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "ckpt/faultfs.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace fs = std::filesystem;

namespace lcrec::ckpt {

namespace {

constexpr uint32_t kMagic = 0x504B434C;  // "LCKP" little-endian
constexpr uint32_t kVersion = 1;
constexpr const char* kSuffix = ".lckp";
constexpr const char* kTmpSuffix = ".tmp";

/// Cached lcrec.ckpt.* metric handles.
struct CkptMetrics {
  obs::Counter& saves;
  obs::Counter& save_failures;
  obs::Counter& loads;
  obs::Counter& load_failures;
  obs::Counter& corrupt_skipped;
  obs::Gauge& last_step;
  obs::Gauge& bytes;
  obs::Histogram& save_ms;

  static CkptMetrics& Get() {
    static CkptMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      return new CkptMetrics{
          r.GetCounter("lcrec.ckpt.saves"),
          r.GetCounter("lcrec.ckpt.save_failures"),
          r.GetCounter("lcrec.ckpt.loads"),
          r.GetCounter("lcrec.ckpt.load_failures"),
          r.GetCounter("lcrec.ckpt.corrupt_skipped"),
          r.GetGauge("lcrec.ckpt.last_step"),
          r.GetGauge("lcrec.ckpt.bytes"),
          r.GetHistogram("lcrec.ckpt.save_ms",
                         obs::Histogram::ExponentialBounds(0.05, 1.8, 24)),
      };
    }();
    return *m;
  }
};

struct ByteReader {
  const std::string& s;
  size_t pos = 0;

  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadBytes(std::string* out, size_t n) {
    if (pos + n > s.size() || pos + n < pos) return false;
    out->assign(s, pos, n);
    pos += n;
    return true;
  }
  bool ReadRaw(void* v, size_t n) {
    if (pos + n > s.size()) return false;
    std::memcpy(v, s.data() + pos, n);
    pos += n;
    return true;
  }
};

void Append(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

void AppendU32(std::string* out, uint32_t v) { Append(out, &v, sizeof(v)); }
void AppendU64(std::string* out, uint64_t v) { Append(out, &v, sizeof(v)); }

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::string EncodeCheckpoint(const Checkpoint& c) {
  std::string out;
  AppendU32(&out, kMagic);
  AppendU32(&out, kVersion);
  AppendU64(&out, static_cast<uint64_t>(c.step));
  AppendU64(&out, c.sections().size());
  for (const auto& [name, bytes] : c.sections()) {
    AppendU64(&out, name.size());
    Append(&out, name.data(), name.size());
    AppendU64(&out, bytes.size());
    Append(&out, bytes.data(), bytes.size());
  }
  // CRC over everything after the magic (version included, so a reader
  // of a future format revision still rejects cleanly on version skew
  // even before interpreting it).
  uint32_t crc = Crc32(out.data() + sizeof(uint32_t),
                       out.size() - sizeof(uint32_t));
  AppendU32(&out, crc);
  return out;
}

bool DecodeCheckpoint(const std::string& bytes, Checkpoint* out,
                      std::string* error) {
  constexpr size_t kMinSize = 3 * sizeof(uint32_t) + 2 * sizeof(uint64_t);
  if (bytes.size() < kMinSize) {
    *error = "truncated: " + std::to_string(bytes.size()) + " bytes";
    return false;
  }
  ByteReader r{bytes};
  uint32_t magic = 0;
  (void)r.ReadU32(&magic);
  if (magic != kMagic) {
    *error = "bad magic";
    return false;
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  uint32_t actual_crc =
      Crc32(bytes.data() + sizeof(uint32_t),
            bytes.size() - 2 * sizeof(uint32_t));
  if (stored_crc != actual_crc) {
    *error = "crc mismatch";
    return false;
  }
  uint32_t version = 0;
  (void)r.ReadU32(&version);
  if (version != kVersion) {
    *error = "unsupported version " + std::to_string(version);
    return false;
  }
  const size_t payload_end = bytes.size() - sizeof(uint32_t);
  uint64_t step = 0, count = 0;
  if (!r.ReadU64(&step) || !r.ReadU64(&count)) {
    *error = "truncated header";
    return false;
  }
  Checkpoint c;
  c.step = static_cast<int64_t>(step);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0, payload_len = 0;
    std::string name, payload;
    if (!r.ReadU64(&name_len) || name_len > payload_end - r.pos ||
        !r.ReadBytes(&name, name_len) || !r.ReadU64(&payload_len) ||
        payload_len > payload_end - r.pos ||
        !r.ReadBytes(&payload, payload_len)) {
      *error = "truncated section " + std::to_string(i);
      return false;
    }
    c.Add(std::move(name), std::move(payload));
  }
  if (r.pos != payload_end) {
    *error = "trailing bytes after sections";
    return false;
  }
  *out = std::move(c);
  return true;
}

std::string CheckpointFileName(int64_t step) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%012" PRId64, step);
  return std::string(buf) + kSuffix;
}

bool WriteCheckpointFile(const std::string& path, const Checkpoint& c,
                         std::string* error) {
  std::string bytes = EncodeCheckpoint(c);
  std::string tmp = path + kTmpSuffix;
  FaultyFile f;
  if (!f.Open(tmp) || !f.Write(bytes.data(), bytes.size()) || !f.Sync() ||
      !f.Close()) {
    *error = f.error();
    std::error_code ec;
    fs::remove(tmp, ec);
    return false;
  }
  if (!FaultyRename(tmp, path, error)) {
    std::error_code ec;
    fs::remove(tmp, ec);
    return false;
  }
  std::string dir = fs::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  if (!SyncDir(dir, error)) return false;
  CkptMetrics::Get().bytes.Set(static_cast<double>(bytes.size()));
  return true;
}

bool ReadCheckpointFile(const std::string& path, Checkpoint* out,
                        std::string* error) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    *error = "cannot open " + path;
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  if (is.bad()) {
    *error = "read error on " + path;
    return false;
  }
  return DecodeCheckpoint(bytes, out, error);
}

std::vector<std::string> ListCheckpointFiles(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.rfind("ckpt-", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, kSuffix) == 0) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

bool SaveToDir(const std::string& dir, const Checkpoint& c, int keep_last,
               std::string* error) {
  obs::ScopedSpan span("ckpt.save");
  CkptMetrics& m = CkptMetrics::Get();
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    *error = "cannot create " + dir + ": " + ec.message();
    m.save_failures.Increment();
    return false;
  }
  // Remove temp leftovers from a previous crashed writer; they were never
  // published, so deleting them can only reclaim space.
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, kTmpSuffix) == 0) {
      std::error_code rm_ec;
      fs::remove(entry.path(), rm_ec);
    }
  }
  std::string path = dir + "/" + CheckpointFileName(c.step);
  if (!WriteCheckpointFile(path, c, error)) {
    m.save_failures.Increment();
    obs::Log(obs::LogLevel::kWarn, "[ckpt] save of step %lld failed: %s",
             static_cast<long long>(c.step), error->c_str());
    return false;
  }
  // Keep-last-K rotation; the newly published file is always retained.
  if (keep_last > 0) {
    std::vector<std::string> files = ListCheckpointFiles(dir);
    for (size_t i = 0;
         i + static_cast<size_t>(keep_last) < files.size() &&
         files[i] != path;
         ++i) {
      std::error_code rm_ec;
      fs::remove(files[i], rm_ec);
    }
  }
  m.saves.Increment();
  m.last_step.Set(static_cast<double>(c.step));
  m.save_ms.Observe(span.ElapsedMs());
  return true;
}

bool LoadLatestValid(const std::string& dir, Checkpoint* out,
                     std::string* loaded_path) {
  obs::ScopedSpan span("ckpt.load");
  CkptMetrics& m = CkptMetrics::Get();
  std::vector<std::string> files = ListCheckpointFiles(dir);
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    std::string error;
    if (ReadCheckpointFile(*it, out, &error)) {
      if (loaded_path != nullptr) *loaded_path = *it;
      m.loads.Increment();
      return true;
    }
    m.corrupt_skipped.Increment();
    obs::Log(obs::LogLevel::kWarn,
             "[ckpt] skipping invalid checkpoint %s: %s", it->c_str(),
             error.c_str());
  }
  m.load_failures.Increment();
  return false;
}

}  // namespace lcrec::ckpt

#ifndef LCREC_CKPT_FAULTFS_H_
#define LCREC_CKPT_FAULTFS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace lcrec::ckpt {

/// Fault-injection layer under the checkpoint writer. Every write, fsync,
/// and rename the checkpoint protocol performs goes through the helpers
/// below, which consult a process-wide injector armed either from the
/// `LCREC_FAULT` environment variable (parsed lazily on first use) or
/// programmatically via ArmFaults (death tests re-arm inside the child so
/// operation counters start from zero).
///
/// Spec grammar:   LCREC_FAULT=<op>:<nth>[:<mode>]
///            or   LCREC_FAULT=<op>:p:<rate>[:<mode>]
///   op    write | fsync | rename
///   nth   1-based count of that operation across the process
///   p     probabilistic mode: each matching operation fires with
///         probability <rate> in (0, 1], drawn from a seeded stream
///         (LCREC_FAULT_SEED, default 1) — the same rate grammar and
///         sampler as serve::chaos (obs/inject.h), so the two injectors
///         read identically
///   mode  fail    return an error, no side effect        (default)
///         short   torn write: half the bytes land, then error
///         enospc  torn write, then "no space left on device"
///         crash   simulate power loss via std::abort() — writes land
///                 half their bytes first; renames abort BEFORE the
///                 rename (crash after the temp file, before publish)
///
/// Examples: `LCREC_FAULT=write:3:short`, `LCREC_FAULT=rename:1:crash`,
/// `LCREC_FAULT=write:p:0.05:enospc`.
struct FaultSpec {
  enum class Op { kNone, kWrite, kFsync, kRename };
  enum class Mode { kFail, kShort, kEnospc, kCrash };
  Op op = Op::kNone;
  int nth = 0;         // deterministic mode; 0 when probabilistic
  double rate = 0.0;   // probabilistic mode; 0 when deterministic
  uint64_t seed = 1;   // probabilistic draw stream
  Mode mode = Mode::kFail;
};

/// Parses the grammar above. Returns false on malformed input.
bool ParseFaultSpec(const std::string& text, FaultSpec* spec);

/// Arms the process-wide injector and resets its operation counters.
void ArmFaults(const FaultSpec& spec);

/// Re-reads LCREC_FAULT (empty/unset disarms) and resets counters.
void ArmFaultsFromEnv();

/// Disarms injection; subsequent file operations run natively.
void DisarmFaults();

/// A write-only POSIX file handle whose operations are subject to fault
/// injection. All methods return false and record error() on failure.
class FaultyFile {
 public:
  FaultyFile() = default;
  FaultyFile(const FaultyFile&) = delete;
  FaultyFile& operator=(const FaultyFile&) = delete;
  ~FaultyFile();

  /// Opens `path` for writing (created/truncated).
  bool Open(const std::string& path);
  /// Writes all `n` bytes (or fails; a torn write reports failure after
  /// landing a prefix of the bytes).
  bool Write(const void* data, size_t n);
  /// fsync(): flushes file contents to stable storage.
  bool Sync();
  bool Close();

  const std::string& error() const { return error_; }

 private:
  int fd_ = -1;
  std::string error_;
};

/// rename(), subject to injection.
bool FaultyRename(const std::string& from, const std::string& to,
                  std::string* error);

/// Opens `dir` and fsyncs it so a completed rename is durable. Counted
/// as an fsync operation by the injector.
bool SyncDir(const std::string& dir, std::string* error);

}  // namespace lcrec::ckpt

#endif  // LCREC_CKPT_FAULTFS_H_

#ifndef LCREC_CKPT_HEALTH_H_
#define LCREC_CKPT_HEALTH_H_

#include <string>

namespace lcrec::ckpt {

/// Numeric-health policy shared by the trainers: a NaN/Inf loss, a
/// NaN/Inf gradient norm, or a gradient-norm spike above `grad_limit`
/// trips the guard. Each trip is counted (lcrec.ckpt.health_trips) and
/// logged; the trainer is expected to roll back to its last good
/// checkpoint and back off the learning rate by `lr_backoff`. When no
/// checkpoint is available, or after `max_retries` trips, the guard
/// aborts the process via the LCREC_CHECK machinery instead of letting a
/// poisoned model keep training.
struct HealthOptions {
  float grad_limit = 0.0f;  // absolute grad-norm ceiling; 0 disables
  int max_retries = 3;
  float lr_backoff = 0.5f;
};

class HealthGuard {
 public:
  HealthGuard(const HealthOptions& options, std::string subsystem);

  /// True when loss and grad_norm are finite and below the spike limit.
  bool Healthy(double loss, double grad_norm) const;

  /// Tells the guard where the trainer is, so a later trip can be
  /// attributed to a step in the process-wide healthz state. Cheap; call
  /// once per step before the Healthy() check.
  void NoteStep(int64_t step) { step_ = step; }

  /// Call on an unhealthy step. Logs, bumps the trip counters, publishes
  /// the trip to the process healthz state (debugz /healthz flips to 503
  /// naming the subsystem and step), and returns true when the caller
  /// should roll back and retry (a checkpoint exists and retries
  /// remain). Aborts via LCREC_CHECK when recovery is impossible:
  /// `can_rollback` false or retries exhausted.
  bool OnUnhealthy(double loss, double grad_norm, bool can_rollback);

  int trips() const { return trips_; }
  const HealthOptions& options() const { return options_; }

 private:
  HealthOptions options_;
  std::string subsystem_;
  int trips_ = 0;
  int64_t step_ = -1;  // last NoteStep position; -1 = never told
};

/// Clears the process-wide health-trip state behind the "ckpt.health"
/// healthz check, so tests that force a trip don't poison every later
/// healthz reading in the same process.
void ResetCkptHealthzForTest();

}  // namespace lcrec::ckpt

#endif  // LCREC_CKPT_HEALTH_H_

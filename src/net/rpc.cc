#include "net/rpc.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "core/check.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "serve/chaos.h"

namespace lcrec::net {

namespace {

/// Cached metric handles for the RPC layer (lcrec.net.*). Process-wide:
/// a router process aggregates its front server and every worker
/// channel into the same counters.
struct NetMetrics {
  obs::Counter& requests;
  obs::Counter& errors;      // error frames sent
  obs::Counter& bad_frames;  // garbage magic / CRC / oversized / type
  obs::Histogram& handle_us;
  obs::Counter& client_calls;
  obs::Counter& client_retries;
  obs::Counter& client_failures;

  static NetMetrics& Get() {
    static NetMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      return new NetMetrics{
          r.GetCounter("lcrec.net.rpc.requests"),
          r.GetCounter("lcrec.net.rpc.errors"),
          r.GetCounter("lcrec.net.rpc.bad_frames"),
          r.GetHistogram("lcrec.net.rpc.handle_us",
                         obs::Histogram::ExponentialBounds(10.0, 2.0, 24)),
          r.GetCounter("lcrec.net.client.calls"),
          r.GetCounter("lcrec.net.client.retries"),
          r.GetCounter("lcrec.net.client.failures"),
      };
    }();
    return *m;
  }
};

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void SleepUs(double us) {
  if (us <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(us)));
}

}  // namespace

// ---------------------------------------------------------------------------
// RpcServer

RpcServer::RpcServer(RpcServerOptions options) : options_(std::move(options)) {
  LCREC_CHECK_GT(options_.max_connections, 0);
  LCREC_CHECK_GT(options_.dispatch_threads, 0);
  LCREC_CHECK_GT(options_.max_payload_bytes, size_t{0});
}

RpcServer::~RpcServer() { Stop(); }

void RpcServer::Handle(uint32_t method, RpcHandler handler) {
  obs::MutexLock lock(handlers_mu_);
  handlers_[method] = std::move(handler);
}

bool RpcServer::Start(std::string* error) {
  auto fail = [this, error](const std::string& why) {
    if (error != nullptr) *error = why + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    for (int& fd : wake_fds_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    return false;
  };
  if (running()) return true;

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.bind_host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad bind host '" + options_.bind_host + "'";
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, options_.max_connections) != 0) {
    return fail("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return fail("getsockname");
  }
  if (!SetNonBlocking(listen_fd_)) return fail("fcntl");
  if (::pipe(wake_fds_) != 0) return fail("pipe");
  SetNonBlocking(wake_fds_[0]);

  {
    obs::MutexLock lock(work_mu_);
    stopping_ = false;
  }
  {
    obs::MutexLock lock(drain_mu_);
    drained_ = false;
  }
  draining_.store(false, std::memory_order_release);
  inflight_.store(0, std::memory_order_release);
  port_.store(ntohs(addr.sin_port), std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { Loop(); });
  dispatchers_.reserve(static_cast<size_t>(options_.dispatch_threads));
  for (int i = 0; i < options_.dispatch_threads; ++i) {
    dispatchers_.emplace_back([this] { DispatchLoop(); });
  }
  return true;
}

void RpcServer::BeginDrain() {
  if (!running()) return;
  draining_.store(true, std::memory_order_release);
  WakeLoop();
}

bool RpcServer::WaitDrained(double timeout_s) {
  obs::UniqueLock lock(drain_mu_);
  return drain_cv_.WaitFor(
      lock,
      std::chrono::microseconds(static_cast<int64_t>(timeout_s * 1e6)),
      [this]() LCREC_REQUIRES(drain_mu_) { return drained_; });
}

void RpcServer::Stop() {
  const bool was_running =
      running_.exchange(false, std::memory_order_acq_rel);
  if (loop_thread_.joinable()) {
    WakeLoop();
    loop_thread_.join();
  }
  {
    obs::MutexLock lock(work_mu_);
    stopping_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
  dispatchers_.clear();
  for (int& fd : wake_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  if (was_running) port_.store(-1, std::memory_order_release);
}

RpcServer::Stats RpcServer::stats() const {
  Stats s;
  s.conns_accepted = conns_accepted_.load(std::memory_order_relaxed);
  s.conns_dropped = conns_dropped_.load(std::memory_order_relaxed);
  s.frames_in = frames_in_.load(std::memory_order_relaxed);
  s.bad_frames = bad_frames_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  return s;
}

std::string RpcServer::StatuszText() const {
  Stats s = stats();
  std::string out;
  out += "port " + std::to_string(port()) + " state ";
  out += !running() ? "stopped" : (draining() ? "draining" : "serving");
  out += "\nconns accepted=" + std::to_string(s.conns_accepted) +
         " dropped=" + std::to_string(s.conns_dropped);
  out += "\nframes in=" + std::to_string(s.frames_in) +
         " bad=" + std::to_string(s.bad_frames);
  out += "\nrequests=" + std::to_string(s.requests) +
         " errors=" + std::to_string(s.errors) +
         " inflight=" + std::to_string(inflight_.load(std::memory_order_relaxed));
  out += "\n";
  return out;
}

void RpcServer::WakeLoop() {
  if (wake_fds_[1] < 0) return;
  char byte = 'x';
  ssize_t ignored = ::write(wake_fds_[1], &byte, 1);
  (void)ignored;
}

RpcServer::Conn* RpcServer::FindConn(uint64_t id) {
  for (Conn& c : conns_) {
    if (c.id == id) return &c;
  }
  return nullptr;
}

void RpcServer::QueueErrorFrame(Conn* conn, uint32_t method,
                                uint64_t request_id, const std::string& text) {
  Frame f;
  f.type = FrameType::kError;
  f.method = method;
  f.request_id = request_id;
  f.payload = text;
  conn->out += EncodeFrame(f);
  errors_.fetch_add(1, std::memory_order_relaxed);
  NetMetrics::Get().errors.Increment();
}

bool RpcServer::ReadFrames(Conn* conn) {
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->in.append(buf, static_cast<size_t>(n));
      conn->last_active_us = obs::NowMicros();
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  if (conn->closing) return true;  // already rejecting; ignore the bytes
  for (;;) {
    Frame f;
    size_t used = 0;
    std::string err;
    FrameStatus st =
        DecodeFrame(conn->in.data(), conn->in.size(), &f, &used, &err,
                    options_.max_payload_bytes);
    if (st == FrameStatus::kNeedMore) break;
    if (st == FrameStatus::kBad) {
      // The byte stream itself is untrustworthy (garbage magic, CRC
      // mismatch): nothing sensible can be answered on it. Close.
      bad_frames_.fetch_add(1, std::memory_order_relaxed);
      NetMetrics::Get().bad_frames.Increment();
      return false;
    }
    if (st == FrameStatus::kTooLarge) {
      // Bounded reject: the header is intact, so answer the request id
      // with an error frame, then close without buffering the payload.
      bad_frames_.fetch_add(1, std::memory_order_relaxed);
      NetMetrics::Get().bad_frames.Increment();
      QueueErrorFrame(conn, f.method, f.request_id,
                      "frame payload over " +
                          std::to_string(options_.max_payload_bytes) +
                          " bytes");
      conn->closing = true;
      conn->in.clear();
      break;
    }
    conn->in.erase(0, used);
    if (f.type != FrameType::kRequest) {
      bad_frames_.fetch_add(1, std::memory_order_relaxed);
      NetMetrics::Get().bad_frames.Increment();
      return false;
    }
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    requests_.fetch_add(1, std::memory_order_relaxed);
    NetMetrics::Get().requests.Increment();
    conn->inflight++;
    inflight_.fetch_add(1, std::memory_order_acq_rel);
    {
      obs::MutexLock lock(work_mu_);
      work_.push_back(Work{conn->id, std::move(f)});
    }
    work_cv_.NotifyOne();
  }
  return true;
}

bool RpcServer::WriteSome(Conn* conn) {
  while (conn->sent < conn->out.size()) {
    ssize_t n = ::send(conn->fd, conn->out.data() + conn->sent,
                       conn->out.size() - conn->sent, MSG_NOSIGNAL);
    if (n > 0) {
      conn->sent += static_cast<size_t>(n);
      conn->last_active_us = obs::NowMicros();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  // Fully flushed: reclaim the buffer (it only ever grows by append).
  conn->out.clear();
  conn->sent = 0;
  return true;
}

void RpcServer::MergeCompletions() {
  std::vector<Completion> done;
  {
    obs::MutexLock lock(done_mu_);
    done.swap(done_);
  }
  for (Completion& c : done) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    Conn* conn = FindConn(c.conn_id);
    if (conn == nullptr) continue;  // connection died while the handler ran
    conn->inflight--;
    conn->out += c.bytes;
    conn->last_active_us = obs::NowMicros();
  }
}

void RpcServer::AcceptPending() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN/EINTR/...: back to poll
    if (conns_.size() >= static_cast<size_t>(options_.max_connections)) {
      // Over capacity: refuse outright. A binary-protocol peer treats
      // the closed connection as a transport failure and backs off.
      conns_dropped_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    SetNonBlocking(fd);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Conn conn;
    conn.id = next_conn_id_++;
    conn.fd = fd;
    conn.last_active_us = obs::NowMicros();
    conns_.push_back(std::move(conn));
    conns_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void RpcServer::Loop() {
  std::vector<pollfd> pfds;
  for (;;) {
    pfds.clear();
    pfds.push_back({wake_fds_[0], POLLIN, 0});
    size_t listen_idx = 0;  // 0 = listener absent (index 0 is the pipe)
    if (listen_fd_ >= 0) {
      listen_idx = pfds.size();
      pfds.push_back({listen_fd_, POLLIN, 0});
    }
    const size_t conn_base = pfds.size();
    for (const Conn& c : conns_) {
      short events = POLLIN;
      if (c.sent < c.out.size()) events |= POLLOUT;
      pfds.push_back({c.fd, events, 0});
    }
    int rc = ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/250);
    if (!running_.load(std::memory_order_acquire)) break;
    if (rc < 0 && errno != EINTR) break;

    if ((pfds[0].revents & POLLIN) != 0) {
      char buf[64];
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }

    // Drain step 1: close the listener so the router re-resolves the
    // shard; queued work keeps flowing below until the backlog is dry.
    if (draining_.load(std::memory_order_acquire) && listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      listen_idx = 0;
    }

    MergeCompletions();

    const bool draining = draining_.load(std::memory_order_acquire);
    const double now = obs::NowMicros();
    size_t keep = 0;
    for (size_t i = 0; i < conns_.size(); ++i) {
      Conn& c = conns_[i];
      const short rev = pfds[conn_base + i].revents;
      bool alive = (rev & POLLNVAL) == 0;
      if (alive && (rev & POLLIN) != 0) alive = ReadFrames(&c);
      if (alive && c.sent < c.out.size() &&
          (rev & (POLLOUT | POLLERR | POLLHUP)) != 0) {
        alive = WriteSome(&c);
      }
      const bool flushed = c.sent >= c.out.size();
      if (alive && (rev & (POLLERR | POLLHUP)) != 0 && (rev & POLLIN) == 0 &&
          flushed) {
        alive = false;
      }
      if (alive && flushed && c.inflight == 0 && (c.closing || draining)) {
        alive = false;  // drain step 2: quiet connection, polite close
      }
      if (alive && c.inflight == 0 &&
          now - c.last_active_us > options_.idle_timeout_s * 1e6) {
        alive = false;
      }
      if (alive) {
        if (keep != i) conns_[keep] = std::move(c);
        ++keep;
      } else {
        ::close(c.fd);
      }
    }
    conns_.resize(keep);

    if (listen_idx != 0 && (pfds[listen_idx].revents & POLLIN) != 0) {
      AcceptPending();
    }

    // Drain step 3: every connection closed, every dispatched request
    // completed and flushed — the worker is quiet. Announce and exit.
    if (draining && conns_.empty() &&
        inflight_.load(std::memory_order_acquire) == 0) {
      obs::Log(obs::LogLevel::kInfo, "[net] rpc server on port %d drained",
               port());
      {
        obs::MutexLock lock(drain_mu_);
        drained_ = true;
      }
      drain_cv_.NotifyAll();
      break;
    }
  }
  for (Conn& c : conns_) ::close(c.fd);
  conns_.clear();
}

void RpcServer::DispatchLoop() {
  for (;;) {
    Work w;
    {
      obs::UniqueLock lock(work_mu_);
      work_cv_.Wait(lock, [this]() LCREC_REQUIRES(work_mu_) {
        return stopping_ || !work_.empty();
      });
      if (work_.empty()) return;  // stopping and no backlog left
      w = std::move(work_.front());
      work_.pop_front();
    }
    const double t0 = obs::NowMicros();
    RpcHandler handler;
    {
      obs::MutexLock lock(handlers_mu_);
      auto it = handlers_.find(w.frame.method);
      if (it != handlers_.end()) handler = it->second;
    }
    Frame out;
    out.method = w.frame.method;
    out.request_id = w.frame.request_id;
    std::string response;
    std::string err;
    if (handler == nullptr) {
      out.type = FrameType::kError;
      out.payload = "unknown method " + std::to_string(w.frame.method);
      errors_.fetch_add(1, std::memory_order_relaxed);
      NetMetrics::Get().errors.Increment();
    } else if (handler(w.frame.payload, &response, &err)) {
      out.type = FrameType::kResponse;
      out.payload = std::move(response);
    } else {
      out.type = FrameType::kError;
      out.payload = err.empty() ? "handler failed" : err;
      errors_.fetch_add(1, std::memory_order_relaxed);
      NetMetrics::Get().errors.Increment();
    }
    NetMetrics::Get().handle_us.Observe(obs::NowMicros() - t0);
    {
      obs::MutexLock lock(done_mu_);
      done_.push_back(Completion{w.conn_id, EncodeFrame(out)});
    }
    WakeLoop();
  }
}

// ---------------------------------------------------------------------------
// RpcChannel

RpcChannel::RpcChannel(std::string host, int port,
                       const RpcClientOptions& options)
    : host_(std::move(host)), port_(port), options_(options) {}

RpcChannel::~RpcChannel() { Close(); }

void RpcChannel::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  in_.clear();
}

bool RpcChannel::Connect(std::string* error) {
  auto fail = [this, error](const std::string& why) {
    Close();
    if (error != nullptr) *error = why;
    return false;
  };
  if (fd_ >= 0) return true;

  const serve::chaos::ConnChaos chaos = serve::chaos::OnNetConnect();
  if (chaos.delay_us > 0.0) SleepUs(chaos.delay_us);
  if (chaos.fail) return fail("chaos: injected connect failure");

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  if (inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    return fail("bad host '" + host_ + "'");
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return fail("socket failed");
  SetNonBlocking(fd_);
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) return fail("connect failed");
    pollfd p{fd_, POLLOUT, 0};
    if (::poll(&p, 1, static_cast<int>(options_.connect_timeout_s * 1000.0)) <=
        0) {
      return fail("connect timeout");
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &len);
    if (soerr != 0) return fail("connect refused");
  }
  return true;
}

bool RpcChannel::SendAll(const std::string& bytes, double deadline_us,
                         std::string* error) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd_, POLLOUT, 0};
      int wait_ms =
          static_cast<int>((deadline_us - obs::NowMicros()) / 1000.0);
      if (wait_ms <= 0 || ::poll(&p, 1, wait_ms) <= 0) {
        if (error != nullptr) *error = "send timeout";
        return false;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (error != nullptr) *error = "send failed";
    return false;
  }
  return true;
}

bool RpcChannel::Call(uint32_t method, const std::string& request,
                      std::string* response, std::string* error) {
  auto fail = [this, error](const std::string& why) {
    Close();
    if (error != nullptr) *error = why;
    return false;
  };
  if (fd_ < 0 && !Connect(error)) return false;

  Frame req;
  req.type = FrameType::kRequest;
  req.method = method;
  req.request_id = next_request_id_++;
  req.payload = request;
  const std::string bytes = EncodeFrame(req);
  const double deadline_us =
      obs::NowMicros() + options_.call_timeout_s * 1e6;

  if (serve::chaos::OnNetFrameSend()) {
    // Torn write: ship a prefix of the frame and drop the connection.
    // The peer's length/CRC checks must reject it; this caller fails
    // over to the retry path.
    SendAll(bytes.substr(0, bytes.size() / 2), deadline_us, nullptr);
    return fail("chaos: torn frame");
  }
  if (!SendAll(bytes, deadline_us, error)) {
    Close();
    return false;
  }

  for (;;) {
    Frame f;
    size_t used = 0;
    std::string err;
    FrameStatus st =
        DecodeFrame(in_, &f, &used, &err, options_.max_payload_bytes);
    if (st == FrameStatus::kOk) {
      in_.erase(0, used);
      // A response to an earlier call this channel abandoned (timeout)
      // can still be in the stream; skip until our id comes up.
      if (f.request_id != req.request_id) continue;
      if (f.type == FrameType::kResponse) {
        *response = std::move(f.payload);
        return true;
      }
      if (f.type == FrameType::kError) {
        // A definitive answer, not a transport failure: the channel
        // stays connected, and RpcClient will not retry.
        if (error != nullptr) {
          *error = f.payload.empty() ? "rpc error" : f.payload;
        }
        return false;
      }
      return fail("unexpected frame type");
    }
    if (st == FrameStatus::kBad || st == FrameStatus::kTooLarge) {
      return fail("bad response frame: " + err);
    }
    // kNeedMore: pull more bytes within the call budget.
    char buf[4096];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      in_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return fail("connection closed by server");
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd p{fd_, POLLIN, 0};
      int wait_ms =
          static_cast<int>((deadline_us - obs::NowMicros()) / 1000.0);
      if (wait_ms <= 0 || ::poll(&p, 1, wait_ms) <= 0) {
        return fail("call timeout");
      }
      continue;
    }
    if (errno == EINTR) continue;
    return fail("recv failed");
  }
}

// ---------------------------------------------------------------------------
// RpcClient

RpcClient::RpcClient(RpcClientOptions options) : options_(std::move(options)) {
  LCREC_CHECK_GE(options_.max_retries, 0);
}

RpcClient::~RpcClient() = default;

RpcClient::Stats RpcClient::stats() const {
  Stats s;
  s.calls = calls_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.failures = failures_.load(std::memory_order_relaxed);
  return s;
}

bool RpcClient::Call(uint32_t method, const std::string& request,
                     std::string* response, std::string* error) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  NetMetrics::Get().client_calls.Increment();
  double backoff_ms = options_.backoff_ms;
  std::string last_error = "rpc call failed";
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      NetMetrics::Get().client_retries.Increment();
      SleepUs(backoff_ms * 1000.0);
      backoff_ms *= 2.0;
    }
    std::unique_ptr<RpcChannel> channel;
    {
      obs::MutexLock lock(pool_mu_);
      if (!pool_.empty()) {
        channel = std::move(pool_.back());
        pool_.pop_back();
      }
    }
    if (channel == nullptr) {
      channel =
          std::make_unique<RpcChannel>(options_.host, options_.port, options_);
    }
    std::string err;
    const bool ok = channel->Call(method, request, response, &err);
    if (ok || channel->connected()) {
      // Success, or a definitive server error frame: either way the
      // channel is healthy — return it to the pool and stop retrying.
      {
        obs::MutexLock lock(pool_mu_);
        pool_.push_back(std::move(channel));
      }
      if (!ok) {
        failures_.fetch_add(1, std::memory_order_relaxed);
        NetMetrics::Get().client_failures.Increment();
        if (error != nullptr) *error = err;
      }
      return ok;
    }
    last_error = err;  // transport failure: channel closed itself; retry
  }
  failures_.fetch_add(1, std::memory_order_relaxed);
  NetMetrics::Get().client_failures.Increment();
  if (error != nullptr) {
    *error = last_error + " (after " + std::to_string(options_.max_retries) +
             " retries)";
  }
  return false;
}

}  // namespace lcrec::net

#ifndef LCREC_NET_ROUTER_H_
#define LCREC_NET_ROUTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/rpc.h"
#include "net/service.h"
#include "obs/sync.h"
#include "serve/request.h"

namespace lcrec::net {

/// Shards Recommend traffic across N model-worker processes by user
/// hash. The router is itself an RpcServer speaking the same protocol,
/// so a client cannot tell a router from a single worker — the fan-out
/// is an implementation detail behind one port.
///
/// Failure handling: a worker call that fails after the client's own
/// retry-with-backoff marks the shard down for `reprobe_after_ms` and
/// the request fails over to the next alive worker in ring order (a
/// draining worker refuses new connections, so its in-flight requests
/// finish on the old connection while new ones re-resolve — zero
/// dropped requests across a graceful worker shutdown). Down shards are
/// re-probed by real traffic after the cooldown.
struct RouterOptions {
  /// Worker endpoints, "host:port". Shard i = workers[i].
  std::vector<std::string> workers;
  /// The front listener (port 0 = ephemeral).
  RpcServerOptions server;
  /// Per-worker channel defaults; host/port are overridden per shard.
  RpcClientOptions client;
  /// How long a failed shard stays out of the rotation.
  double reprobe_after_ms = 500.0;
};

class Router {
 public:
  explicit Router(RouterOptions options);
  ~Router();

  bool Start(std::string* error = nullptr);
  void BeginDrain();
  bool WaitDrained(double timeout_s);
  void Stop();

  int port() const { return server_.port(); }
  size_t n_shards() const { return shards_.size(); }

  /// FNV-1a over the history bytes: the request's user identity.
  static uint64_t UserHash(const serve::RecommendRequest& request);
  size_t ShardOf(const serve::RecommendRequest& request) const;

  /// Routes one request: home shard first, ring-order failover across
  /// the remaining workers. Also the front server's Recommend handler.
  bool Forward(const serve::RecommendRequest& request,
               serve::RecommendResponse* response, std::string* error);

  struct ShardStats {
    std::string endpoint;
    bool healthy = true;
    int64_t requests = 0;   // served by this shard
    int64_t failures = 0;   // failed calls against this shard
    int64_t failovers = 0;  // home requests this shard lost to another
  };
  std::vector<ShardStats> shard_stats() const;

  /// Per-shard health block for the router's debugz /statusz
  /// ("net.router" section): one "shard <i> <endpoint> <up|down> ..."
  /// line per worker, then the front server's own counters.
  std::string StatuszText() const;

 private:
  struct Shard {
    std::string host;
    int port = 0;
    std::unique_ptr<RpcClient> client;
    bool healthy = true;          // under mu_
    double dead_until_us = 0.0;   // under mu_
    int64_t requests = 0;         // under mu_
    int64_t failures = 0;         // under mu_
    int64_t failovers = 0;        // under mu_
  };

  RouterOptions options_;
  RpcServer server_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Guards shard health + counters. Never held across a worker call:
  /// Forward snapshots the rotation under the lock, releases, then does
  /// socket I/O (rank 19 sits above the client pool's 18 — see the rank
  /// comment in rpc.h — and I/O under a router-wide lock would
  /// serialize the fan-out anyway).
  mutable obs::Mutex mu_{"net.router", 19};
};

/// Parses "host:port" (host may be a dotted quad only — the net layer
/// is resolver-free by design). False on malformed input.
bool ParseEndpoint(const std::string& text, std::string* host, int* port);

}  // namespace lcrec::net

#endif  // LCREC_NET_ROUTER_H_

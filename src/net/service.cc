#include "net/service.h"

#include <utility>

#include "net/codec.h"
#include "serve/server.h"

namespace lcrec::net {

void RegisterRecommendService(RpcServer* rpc, serve::Server* server) {
  rpc->Handle(kMethodPing,
              [](const std::string& request, std::string* response,
                 std::string* /*error*/) {
                *response = request;
                return true;
              });
  rpc->Handle(kMethodRecommend,
              [server](const std::string& request, std::string* response,
                       std::string* error) {
                serve::RecommendRequest req;
                if (!DecodeRecommendRequest(request, &req, error)) {
                  return false;  // malformed payload → error frame
                }
                *response = EncodeRecommendResponse(server->Recommend(req));
                return true;
              });
}

bool CallRecommend(RpcClient* client, const serve::RecommendRequest& request,
                   serve::RecommendResponse* response, std::string* error) {
  std::string payload;
  if (!client->Call(kMethodRecommend, EncodeRecommendRequest(request),
                    &payload, error)) {
    return false;
  }
  serve::RecommendResponse decoded;
  if (!DecodeRecommendResponse(payload, &decoded, error)) return false;
  *response = std::move(decoded);
  return true;
}

bool CallPing(RpcClient* client, std::string* error) {
  std::string payload;
  if (!client->Call(kMethodPing, "ping", &payload, error)) return false;
  if (payload != "ping") {
    if (error != nullptr) *error = "ping payload mismatch";
    return false;
  }
  return true;
}

}  // namespace lcrec::net

#include "net/codec.h"

#include <cstring>
#include <utility>
#include <vector>

#include "llm/generate.h"
#include "net/frame.h"

namespace lcrec::net {
namespace {

// Streams are untrusted: a length prefix is only believed after it is
// checked against the bytes actually present (WireReader) AND against a
// sanity ceiling, so a flipped length bit cannot force a huge allocation.
constexpr uint32_t kMaxHistoryLen = 1u << 16;
constexpr uint32_t kMaxItems = 1u << 16;
constexpr uint32_t kMaxLabelLen = 64;

constexpr uint8_t kFlagCacheHit = 1u << 0;
constexpr uint8_t kFlagCoalesced = 1u << 1;
constexpr uint8_t kFlagInlinePath = 1u << 2;

/// Re-interns a wire label into the closed set of static label strings
/// the serving ladder emits (RecommendResponse::degrade_label points at
/// static storage, so the decoded string must not own the bytes).
const char* InternLabel(const std::string& label,
                        serve::DegradeLevel degrade) {
  static const char* kLabels[] = {"full", "budget_capped", "partial_decode",
                                  "stale_cache", "popularity"};
  for (const char* known : kLabels) {
    if (label == known) return known;
  }
  return serve::DegradeLevelName(degrade);
}

bool Fail(std::string* error, const char* what) {
  if (error) *error = what;
  return false;
}

}  // namespace

std::string EncodeRecommendRequest(const serve::RecommendRequest& req) {
  std::string out;
  out.reserve(12 + 4 * req.history.size() + 8);
  PutU32(&out, static_cast<uint32_t>(req.history.size()));
  for (int id : req.history) PutI32(&out, id);
  PutI32(&out, req.top_n);
  PutF64(&out, req.deadline_ms);
  return out;
}

bool DecodeRecommendRequest(const std::string& payload,
                            serve::RecommendRequest* out, std::string* error) {
  WireReader r(payload);
  uint32_t n = 0;
  if (!r.ReadU32(&n)) return Fail(error, "request: truncated history length");
  if (n > kMaxHistoryLen) return Fail(error, "request: history too long");
  if (r.remaining() < 4u * n + 4 + 8) {
    return Fail(error, "request: truncated body");
  }
  std::vector<int> history(n);
  for (uint32_t i = 0; i < n; ++i) {
    int32_t id = 0;
    if (!r.ReadI32(&id)) return Fail(error, "request: truncated history");
    history[i] = id;
  }
  int32_t top_n = 0;
  double deadline_ms = 0.0;
  if (!r.ReadI32(&top_n)) return Fail(error, "request: truncated top_n");
  if (!r.ReadF64(&deadline_ms)) {
    return Fail(error, "request: truncated deadline");
  }
  if (!r.done()) return Fail(error, "request: trailing bytes");
  if (top_n <= 0 || top_n > static_cast<int32_t>(kMaxItems)) {
    return Fail(error, "request: top_n out of range");
  }
  out->history = std::move(history);
  out->top_n = top_n;
  out->deadline_ms = deadline_ms;
  return true;
}

std::string EncodeRecommendResponse(const serve::RecommendResponse& resp) {
  std::string out;
  out.reserve(32 + 8 * resp.items.size());
  PutU8(&out, static_cast<uint8_t>(resp.status));
  PutU8(&out, static_cast<uint8_t>(resp.degrade));
  uint8_t flags = 0;
  if (resp.cache_hit) flags |= kFlagCacheHit;
  if (resp.coalesced) flags |= kFlagCoalesced;
  if (resp.inline_path) flags |= kFlagInlinePath;
  PutU8(&out, flags);
  const std::string label = resp.degrade_label ? resp.degrade_label : "full";
  PutU8(&out, static_cast<uint8_t>(label.size()));
  out.append(label);
  PutF64(&out, resp.latency_ms);
  PutU32(&out, static_cast<uint32_t>(resp.items.size()));
  for (const llm::ScoredItem& it : resp.items) {
    PutI32(&out, it.item);
    PutF32(&out, it.logprob);
  }
  return out;
}

bool DecodeRecommendResponse(const std::string& payload,
                             serve::RecommendResponse* out,
                             std::string* error) {
  WireReader r(payload);
  uint8_t status = 0, degrade = 0, flags = 0, label_len = 0;
  if (!r.ReadU8(&status) || !r.ReadU8(&degrade) || !r.ReadU8(&flags) ||
      !r.ReadU8(&label_len)) {
    return Fail(error, "response: truncated header");
  }
  if (status > static_cast<uint8_t>(serve::Status::kShedDecodeFailure)) {
    return Fail(error, "response: unknown status");
  }
  if (degrade > static_cast<uint8_t>(serve::DegradeLevel::kPopularity)) {
    return Fail(error, "response: unknown degrade level");
  }
  if (label_len > kMaxLabelLen) return Fail(error, "response: label too long");
  std::string label;
  if (!r.ReadBytes(label_len, &label)) {
    return Fail(error, "response: truncated label");
  }
  double latency_ms = 0.0;
  if (!r.ReadF64(&latency_ms)) return Fail(error, "response: truncated latency");
  uint32_t n_items = 0;
  if (!r.ReadU32(&n_items)) return Fail(error, "response: truncated item count");
  if (n_items > kMaxItems) return Fail(error, "response: too many items");
  if (r.remaining() != 8u * n_items) {
    return Fail(error, "response: item bytes mismatch");
  }
  std::vector<llm::ScoredItem> items(n_items);
  for (uint32_t i = 0; i < n_items; ++i) {
    if (!r.ReadI32(&items[i].item) || !r.ReadF32(&items[i].logprob)) {
      return Fail(error, "response: truncated items");
    }
  }

  out->status = static_cast<serve::Status>(status);
  out->degrade = static_cast<serve::DegradeLevel>(degrade);
  out->cache_hit = (flags & kFlagCacheHit) != 0;
  out->coalesced = (flags & kFlagCoalesced) != 0;
  out->inline_path = (flags & kFlagInlinePath) != 0;
  out->degrade_label = InternLabel(label, out->degrade);
  out->latency_ms = latency_ms;
  out->items = std::move(items);
  return true;
}

}  // namespace lcrec::net

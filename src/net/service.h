#ifndef LCREC_NET_SERVICE_H_
#define LCREC_NET_SERVICE_H_

#include <cstdint>
#include <string>

#include "net/rpc.h"
#include "serve/request.h"

namespace lcrec::serve {
class Server;
}  // namespace lcrec::serve

namespace lcrec::net {

/// Method ids for the lcrec RPC surface. Wire-stable: append, never
/// renumber.
inline constexpr uint32_t kMethodPing = 1;
inline constexpr uint32_t kMethodRecommend = 2;

/// Registers the serving surface on `rpc`:
///   Ping       — echoes its payload (liveness + round-trip probe).
///   Recommend  — codec.h request/response around server->Recommend.
/// `server` must outlive `rpc`. Handlers run on the RPC dispatcher
/// pool, so concurrent remote callers reach the batch engine
/// concurrently, exactly like in-process threads.
void RegisterRecommendService(RpcServer* rpc, serve::Server* server);

/// Client-side convenience: one Recommend over `client`. On transport
/// or server failure returns false with `*error` set and `*response`
/// untouched; a shed (kShedQueueFull etc.) is a successful call whose
/// response carries the shed status, same as in-process.
bool CallRecommend(RpcClient* client, const serve::RecommendRequest& request,
                   serve::RecommendResponse* response, std::string* error);

/// Liveness probe: Ping round-trip with a small payload.
bool CallPing(RpcClient* client, std::string* error);

}  // namespace lcrec::net

#endif  // LCREC_NET_SERVICE_H_

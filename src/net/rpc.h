#ifndef LCREC_NET_RPC_H_
#define LCREC_NET_RPC_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "obs/sync.h"

namespace lcrec::net {

/// Binary RPC endpoints over the frame format in frame.h. The server is
/// the same single poll-loop shape as obs::HttpServer (PR 7) — one
/// non-blocking event thread, a self-pipe for wakeups — with one
/// addition: handlers run on a small dispatcher pool and complete
/// through a completion queue, because Recommend blocks for a batch
/// tick and a blocking handler inside the poll loop would serialize the
/// very concurrency the batch engine exists to exploit.
///
/// Mutex ranks here sit at 14–19, below every serve-layer rank (20+):
/// dispatcher threads call into serve::Server with no net lock held, so
/// net → serve acquisition is always rank-increasing (DESIGN.md §13).

/// Request handler: decode `request`, fill `*response` (opaque payload
/// bytes) and return true, or fill `*error` and return false (the
/// caller receives an error frame carrying the text). Runs on a
/// dispatcher thread; must be thread-safe and may block.
using RpcHandler =
    std::function<bool(const std::string& request, std::string* response,
                       std::string* error)>;

struct RpcServerOptions {
  std::string bind_host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; read back via port()
  int max_connections = 64;
  size_t max_payload_bytes = kDefaultMaxPayload;
  double idle_timeout_s = 60.0;
  /// Handler pool width. Recommend-bearing servers want this at or
  /// above the batch engine's lane count so the wire can fill a batch.
  int dispatch_threads = 8;
};

class RpcServer {
 public:
  explicit RpcServer(RpcServerOptions options = {});
  ~RpcServer();

  /// Registers `handler` for `method`. Call before Start.
  void Handle(uint32_t method, RpcHandler handler);

  bool Start(std::string* error = nullptr);

  /// Graceful drain (the worker half of the router handoff): closes the
  /// listener immediately — new connects are refused and the router
  /// re-resolves the shard — then lets queued and in-flight requests
  /// finish and their responses flush before connections close. The
  /// loop exits once quiet; call WaitDrained to observe that, then Stop.
  void BeginDrain();

  /// True once a drain completed (all work done, responses flushed,
  /// connections closed). False on timeout.
  bool WaitDrained(double timeout_s);

  /// Hard stop: ends the loop (without waiting for in-flight work to be
  /// delivered), joins every thread, closes every fd. Idempotent; the
  /// destructor calls it.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }
  /// Bound port, or -1 when not running.
  int port() const { return port_.load(std::memory_order_acquire); }

  struct Stats {
    int64_t conns_accepted = 0;
    int64_t conns_dropped = 0;  // over max_connections
    int64_t frames_in = 0;      // valid request frames
    int64_t bad_frames = 0;     // garbage magic / CRC / oversized / type
    int64_t requests = 0;       // dispatched to a handler
    int64_t errors = 0;         // error frames sent
  };
  Stats stats() const;

  /// One text block for a debugz /statusz section ("net.rpc").
  std::string StatuszText() const;

 private:
  struct Conn {
    uint64_t id = 0;
    int fd = -1;
    std::string in;
    std::string out;
    size_t sent = 0;
    int inflight = 0;       // requests dispatched, response not yet queued
    bool closing = false;   // flush out, then close (protocol violation)
    double last_active_us = 0.0;
  };
  struct Work {
    uint64_t conn_id = 0;
    Frame frame;
  };
  struct Completion {
    uint64_t conn_id = 0;
    std::string bytes;
  };

  void Loop();
  void DispatchLoop();
  void WakeLoop();
  void AcceptPending();
  /// Returns false when the connection must close.
  bool ReadFrames(Conn* conn);
  bool WriteSome(Conn* conn);
  void MergeCompletions();
  Conn* FindConn(uint64_t id);
  void QueueErrorFrame(Conn* conn, uint32_t method, uint64_t request_id,
                       const std::string& text);

  RpcServerOptions options_;

  mutable obs::Mutex handlers_mu_{"net.rpc.handlers", 14};
  std::map<uint32_t, RpcHandler> handlers_;

  obs::Mutex work_mu_{"net.rpc.work", 15};
  obs::CondVar work_cv_;
  std::deque<Work> work_;
  bool stopping_ = false;  // under work_mu_

  obs::Mutex done_mu_{"net.rpc.done", 16};
  std::vector<Completion> done_;

  obs::Mutex drain_mu_{"net.rpc.drain", 17};
  obs::CondVar drain_cv_;
  bool drained_ = false;  // under drain_mu_

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<int> port_{-1};
  std::atomic<int> inflight_{0};  // enqueue → completion merged

  std::atomic<int64_t> conns_accepted_{0};
  std::atomic<int64_t> conns_dropped_{0};
  std::atomic<int64_t> frames_in_{0};
  std::atomic<int64_t> bad_frames_{0};
  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> errors_{0};

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};
  uint64_t next_conn_id_ = 1;        // loop thread only
  std::vector<Conn> conns_;          // loop thread only
  std::thread loop_thread_;
  std::vector<std::thread> dispatchers_;
};

struct RpcClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  double connect_timeout_s = 5.0;
  double call_timeout_s = 30.0;
  /// Additional attempts after a failed call (connect failure, torn
  /// frame, timeout, server error frame is NOT retried — it is a
  /// definitive answer). Recommend is idempotent, so replaying a
  /// possibly-executed request is safe.
  int max_retries = 2;
  /// First retry backoff; doubles per attempt.
  double backoff_ms = 5.0;
  size_t max_payload_bytes = kDefaultMaxPayload;
};

/// One TCP connection speaking the frame protocol. Not thread-safe; one
/// outstanding call at a time (RpcClient pools channels for
/// concurrency). Consults the serve::chaos conn/frame sites so
/// LCREC_CHAOS reaches the wire.
class RpcChannel {
 public:
  RpcChannel(std::string host, int port, const RpcClientOptions& options);
  ~RpcChannel();

  bool Connect(std::string* error);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// One request/response exchange. On an error frame, fills `*error`
  /// with the server's text and returns false (channel stays usable).
  /// On a transport failure the channel closes itself.
  bool Call(uint32_t method, const std::string& request,
            std::string* response, std::string* error);

 private:
  bool SendAll(const std::string& bytes, double deadline_us,
               std::string* error);

  std::string host_;
  int port_;
  RpcClientOptions options_;
  int fd_ = -1;
  std::string in_;
  uint64_t next_request_id_ = 1;
};

/// Thread-safe client: a pool of channels to one endpoint, with
/// retry-with-backoff around transport failures. Concurrent Calls each
/// borrow (or open) their own channel, so N callers drive N sockets —
/// which is what lets a remote worker's batch engine form real batches.
class RpcClient {
 public:
  explicit RpcClient(RpcClientOptions options);
  ~RpcClient();

  bool Call(uint32_t method, const std::string& request,
            std::string* response, std::string* error);

  const RpcClientOptions& options() const { return options_; }

  struct Stats {
    int64_t calls = 0;
    int64_t retries = 0;
    int64_t failures = 0;  // calls that failed after every retry
  };
  Stats stats() const;

 private:
  RpcClientOptions options_;
  obs::Mutex pool_mu_{"net.rpc.client", 18};
  std::vector<std::unique_ptr<RpcChannel>> pool_;
  std::atomic<int64_t> calls_{0};
  std::atomic<int64_t> retries_{0};
  std::atomic<int64_t> failures_{0};
};

}  // namespace lcrec::net

#endif  // LCREC_NET_RPC_H_
